//! Allowlist (`lint-allow.txt`) and panic ratchet (`panics-allow.txt`)
//! parsing and application.
//!
//! The two files have different semantics on purpose:
//!
//! * `lint-allow.txt` — open-ended exemptions: `check path-prefix` pairs.
//!   A finding matching an entry is suppressed. Entries that suppress
//!   nothing are *stale* and fail `--check-stale`.
//! * `panics-allow.txt` — a **ratchet**: `check file count` triples. Up to
//!   `count` findings of `check` in exactly `file` are tolerated; one more
//!   fails the build. Fewer than `count` is *stale* (the file must be
//!   shrunk to match reality). Together the two directions mean the file
//!   tracks the real panic inventory exactly and can only go down.

use crate::findings::Finding;
use std::collections::BTreeMap;

/// One allowlist entry: findings of `check` under `path_prefix` are
/// accepted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// The rule being allowed.
    pub check: String,
    /// Workspace-relative path prefix the exemption covers.
    pub path_prefix: String,
}

/// Parses `lint-allow.txt` content: one `check path-prefix` pair per line,
/// `#` starts a comment, blank lines ignored.
pub fn parse_allowlist(text: &str) -> Vec<AllowEntry> {
    let mut entries = Vec::new();
    for line in text.lines() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut it = line.split_whitespace();
        if let (Some(check), Some(prefix)) = (it.next(), it.next()) {
            entries.push(AllowEntry {
                check: check.to_string(),
                path_prefix: prefix.to_string(),
            });
        }
    }
    entries
}

/// True when `f` is covered by some allowlist entry (same check, file
/// under the entry's path prefix).
pub fn is_allowed(f: &Finding, allow: &[AllowEntry]) -> bool {
    allow
        .iter()
        .any(|a| a.check == f.check && f.file.starts_with(&a.path_prefix))
}

/// One ratchet entry: up to `count` findings of `check` in `file`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RatchetEntry {
    /// The panic check being tolerated (`panic-unwrap`, `panic-index`, …).
    pub check: String,
    /// Exact workspace-relative file path.
    pub file: String,
    /// Tolerated finding count — the ratchet value.
    pub count: usize,
}

/// Parses `panics-allow.txt`: `check file count` triples, `#` comments.
/// Lines with a malformed count are reported as errors, not ignored — a
/// typo must not silently widen the ratchet.
pub fn parse_ratchet(text: &str) -> Result<Vec<RatchetEntry>, String> {
    let mut entries = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut it = line.split_whitespace();
        let (Some(check), Some(file), Some(count)) = (it.next(), it.next(), it.next()) else {
            return Err(format!(
                "panics-allow.txt:{}: expected `check file count`, got `{raw}`",
                idx + 1
            ));
        };
        let count: usize = count.parse().map_err(|_| {
            format!(
                "panics-allow.txt:{}: bad count `{count}` in `{raw}`",
                idx + 1
            )
        })?;
        entries.push(RatchetEntry {
            check: check.to_string(),
            file: file.to_string(),
            count,
        });
    }
    Ok(entries)
}

/// Outcome of applying both allow files to the raw finding set.
#[derive(Debug, Default)]
pub struct Applied {
    /// Findings that survive (report these; nonzero ⇒ exit 1).
    pub kept: Vec<Finding>,
    /// Number of findings suppressed by either file.
    pub suppressed: usize,
    /// Stale-entry descriptions: allow entries that suppress nothing and
    /// ratchet entries whose count exceeds reality.
    pub stale: Vec<String>,
}

/// Applies the allowlist to non-panic findings and the ratchet to panic
/// findings (checks named `panic-*`), computing staleness for both.
pub fn apply(findings: Vec<Finding>, allow: &[AllowEntry], ratchet: &[RatchetEntry]) -> Applied {
    let mut out = Applied::default();

    // Panic findings grouped per (check, file) for ratchet comparison.
    let mut panic_groups: BTreeMap<(String, String), Vec<Finding>> = BTreeMap::new();
    let mut allow_hits = vec![0usize; allow.len()];

    for f in findings {
        if f.check.starts_with("panic-") {
            panic_groups
                .entry((f.check.to_string(), f.file.clone()))
                .or_default()
                .push(f);
            continue;
        }
        let covering = allow
            .iter()
            .position(|a| a.check == f.check && f.file.starts_with(&a.path_prefix));
        match covering {
            Some(i) => {
                allow_hits[i] += 1;
                out.suppressed += 1;
            }
            None => out.kept.push(f),
        }
    }

    for (i, entry) in allow.iter().enumerate() {
        if allow_hits[i] == 0 {
            out.stale.push(format!(
                "lint-allow.txt entry `{} {}` matches no finding",
                entry.check, entry.path_prefix
            ));
        }
    }

    for ((check, file), group) in &panic_groups {
        let budget = ratchet
            .iter()
            .find(|r| &r.check == check && &r.file == file)
            .map_or(0, |r| r.count);
        let n = group.len();
        if n <= budget {
            out.suppressed += n;
            if n < budget {
                out.stale.push(format!(
                    "panics-allow.txt entry `{check} {file} {budget}` is stale: only {n} findings remain — ratchet it down"
                ));
            }
        } else {
            out.kept.extend(group.iter().cloned());
        }
    }
    for r in ratchet {
        if !panic_groups.contains_key(&(r.check.clone(), r.file.clone())) {
            out.stale.push(format!(
                "panics-allow.txt entry `{} {} {}` is stale: no findings remain — delete it",
                r.check, r.file, r.count
            ));
        }
    }
    out
}

/// Renders the current panic findings as fresh `panics-allow.txt` content
/// (used by `--write-ratchet` to bootstrap or re-true the ratchet).
pub fn render_ratchet(findings: &[Finding]) -> String {
    let mut groups: BTreeMap<(&str, &'static str), usize> = BTreeMap::new();
    for f in findings {
        if f.check.starts_with("panic-") {
            *groups.entry((f.file.as_str(), f.check)).or_default() += 1;
        }
    }
    let mut s = String::from(
        "# mlpart-analyzer panic ratchet: `check file count` triples.\n\
         # CI fails when a file gains findings beyond its count; --check-stale\n\
         # fails when a count exceeds reality. The numbers can only go down.\n",
    );
    for ((file, check), n) in groups {
        s.push_str(&format!("{check} {file} {n}\n"));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(file: &str, check: &'static str) -> Finding {
        Finding {
            file: file.into(),
            line: 1,
            check,
            snippet: String::new(),
            context: None,
        }
    }

    #[test]
    fn allowlist_parsing_and_matching() {
        let allow = parse_allowlist(
            "# comment\n\nwall-clock crates/exec/src/lib.rs # telemetry\nid-truncation crates/kway/src/\n",
        );
        assert_eq!(allow.len(), 2);
        assert!(is_allowed(
            &mk("crates/exec/src/lib.rs", "wall-clock"),
            &allow
        ));
        assert!(!is_allowed(
            &mk("crates/exec/src/lib.rs", "default-hasher"),
            &allow
        ));
        assert!(is_allowed(
            &mk("crates/kway/src/lib.rs", "id-truncation"),
            &allow
        ));
    }

    #[test]
    fn ratchet_parses_and_rejects_bad_counts() {
        let r = parse_ratchet("# hdr\npanic-index crates/fm/src/engine.rs 12\n").unwrap();
        assert_eq!(
            r,
            vec![RatchetEntry {
                check: "panic-index".into(),
                file: "crates/fm/src/engine.rs".into(),
                count: 12
            }]
        );
        assert!(parse_ratchet("panic-index crates/fm/src/engine.rs twelve\n").is_err());
        assert!(parse_ratchet("panic-index crates/fm/src/engine.rs\n").is_err());
    }

    #[test]
    fn ratchet_tolerates_up_to_count_and_fails_beyond() {
        let ratchet = vec![RatchetEntry {
            check: "panic-unwrap".into(),
            file: "a.rs".into(),
            count: 2,
        }];
        // Exactly at budget: suppressed, no stale.
        let out = apply(
            vec![mk("a.rs", "panic-unwrap"), mk("a.rs", "panic-unwrap")],
            &[],
            &ratchet,
        );
        assert!(out.kept.is_empty());
        assert_eq!(out.suppressed, 2);
        assert!(out.stale.is_empty());
        // One over: every finding in the group is reported.
        let out = apply(
            vec![
                mk("a.rs", "panic-unwrap"),
                mk("a.rs", "panic-unwrap"),
                mk("a.rs", "panic-unwrap"),
            ],
            &[],
            &ratchet,
        );
        assert_eq!(out.kept.len(), 3);
    }

    #[test]
    fn ratchet_staleness_both_directions() {
        let ratchet = vec![
            RatchetEntry {
                check: "panic-unwrap".into(),
                file: "a.rs".into(),
                count: 3,
            },
            RatchetEntry {
                check: "panic-index".into(),
                file: "gone.rs".into(),
                count: 1,
            },
        ];
        let out = apply(vec![mk("a.rs", "panic-unwrap")], &[], &ratchet);
        assert!(out.kept.is_empty());
        assert_eq!(out.stale.len(), 2, "{:?}", out.stale);
        assert!(out.stale[0].contains("only 1 findings remain"));
        assert!(out.stale[1].contains("no findings remain"));
    }

    #[test]
    fn stale_allow_entry_reported() {
        let allow = parse_allowlist("wall-clock crates/nowhere/\n");
        let out = apply(vec![mk("a.rs", "default-hasher")], &allow, &[]);
        assert_eq!(out.kept.len(), 1);
        assert_eq!(out.stale.len(), 1);
        assert!(out.stale[0].contains("matches no finding"));
    }

    #[test]
    fn render_ratchet_is_sorted_and_grouped() {
        let findings = vec![
            mk("b.rs", "panic-index"),
            mk("a.rs", "panic-unwrap"),
            mk("a.rs", "panic-unwrap"),
            mk("a.rs", "wall-clock"), // non-panic: excluded
        ];
        let text = render_ratchet(&findings);
        let lines: Vec<&str> = text.lines().filter(|l| !l.starts_with('#')).collect();
        assert_eq!(lines, ["panic-unwrap a.rs 2", "panic-index b.rs 1"]);
    }
}
