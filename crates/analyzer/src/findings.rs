//! Finding type, deterministic ordering, and the JSONL output format.
//!
//! The JSON shape is pinned by `schemas/analyzer-findings.schema.json`
//! (`mlpart-analyzer-findings-v1`): one object per line, fields in fixed
//! order, findings sorted by `(file, line, check)` — so two runs over the
//! same tree produce byte-identical output, and CI diffs are meaningful.

/// One rule violation at a specific source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path with forward slashes, e.g.
    /// `crates/fm/src/engine.rs`.
    pub file: String,
    /// 1-indexed line number.
    pub line: usize,
    /// The violated rule, e.g. `default-hasher` or `panic-unwrap`.
    pub check: &'static str,
    /// The offending source line, trimmed.
    pub snippet: String,
    /// Name of the enclosing function, when the outline found one.
    pub context: Option<String>,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.check, self.snippet
        )?;
        if let Some(ctx) = &self.context {
            write!(f, " (in fn {ctx})")?;
        }
        Ok(())
    }
}

impl Finding {
    /// Renders the finding as one `mlpart-analyzer-findings-v1` JSON line.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(128);
        s.push_str("{\"v\":1,\"file\":\"");
        json_escape_into(&self.file, &mut s);
        s.push_str("\",\"line\":");
        s.push_str(&self.line.to_string());
        s.push_str(",\"check\":\"");
        json_escape_into(self.check, &mut s);
        s.push_str("\",\"snippet\":\"");
        json_escape_into(&self.snippet, &mut s);
        s.push('"');
        if let Some(ctx) = &self.context {
            s.push_str(",\"context\":\"");
            json_escape_into(ctx, &mut s);
            s.push('"');
        }
        s.push('}');
        s
    }
}

/// Sorts findings into the canonical order and drops duplicates that point
/// at the same `(file, line, check)` (e.g. an aliased import whose `use`
/// line names both the original and the alias).
pub fn canonicalize(findings: &mut Vec<Finding>) {
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.check, a.snippet.as_str()).cmp(&(
            b.file.as_str(),
            b.line,
            b.check,
            b.snippet.as_str(),
        ))
    });
    findings.dedup_by(|a, b| a.file == b.file && a.line == b.line && a.check == b.check);
}

/// Escapes `s` for inclusion in a JSON string literal.
fn json_escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_line_shape() {
        let f = Finding {
            file: "crates/fm/src/engine.rs".into(),
            line: 7,
            check: "panic-unwrap",
            snippet: "x.unwrap()".into(),
            context: Some("apply_move".into()),
        };
        assert_eq!(
            f.to_json(),
            "{\"v\":1,\"file\":\"crates/fm/src/engine.rs\",\"line\":7,\
             \"check\":\"panic-unwrap\",\"snippet\":\"x.unwrap()\",\
             \"context\":\"apply_move\"}"
        );
    }

    #[test]
    fn json_escapes_quotes_and_newlines() {
        let f = Finding {
            file: "a.rs".into(),
            line: 1,
            check: "panic-expect",
            snippet: "x.expect(\"bad \\ value\")".into(),
            context: None,
        };
        let j = f.to_json();
        assert!(j.contains("\\\"bad \\\\ value\\\""));
        assert!(!j.contains("\"context\""));
    }

    /// Every check name the passes can emit must be listed in the committed
    /// schema's enum, so `--format json` output always validates.
    #[test]
    fn schema_enum_covers_every_check() {
        let schema = std::fs::read_to_string(
            std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("../../schemas/analyzer-findings.schema.json"),
        )
        .expect("schemas/analyzer-findings.schema.json exists");
        assert!(schema.contains("mlpart-analyzer-findings-v1"));
        for check in [
            "panic-unwrap",
            "panic-expect",
            "panic-macro",
            "panic-index",
            "default-hasher",
            "entropy-rng",
            "wall-clock",
            "id-truncation",
            "debug-print",
            "ungated-hook",
        ] {
            assert!(
                schema.contains(&format!("\"{check}\"")),
                "schema enum is missing {check}"
            );
        }
    }

    #[test]
    fn canonical_order_and_dedup() {
        let mk = |file: &str, line, check: &'static str| Finding {
            file: file.into(),
            line,
            check,
            snippet: String::new(),
            context: None,
        };
        let mut v = vec![
            mk("b.rs", 1, "wall-clock"),
            mk("a.rs", 9, "wall-clock"),
            mk("a.rs", 2, "default-hasher"),
            mk("a.rs", 2, "default-hasher"),
        ];
        canonicalize(&mut v);
        assert_eq!(v.len(), 3);
        assert_eq!(v[0].file, "a.rs");
        assert_eq!(v[0].line, 2);
        assert_eq!(v[2].file, "b.rs");
    }
}
