//! A hand-rolled, std-only Rust lexer producing a spanned token stream.
//!
//! The lexer recognizes exactly what the analysis passes need to reason
//! about source structure without a full parser: identifiers (including raw
//! `r#ident` forms), lifetimes, string/char/number literals (including raw
//! and byte strings), and single-character punctuation. Comments (line,
//! nested block, and doc) are consumed and never become tokens, so no pass
//! can be fooled by banned constructs quoted in documentation — the failure
//! mode of the regex scanner this engine replaces.
//!
//! Every token carries its 1-indexed source line, so findings point at real
//! locations even across multi-line literals and block comments.

/// The kind of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `HashMap`, `r#type` → `type`).
    Ident,
    /// Lifetime (`'a`, `'static`) — distinguished from char literals.
    Lifetime,
    /// String literal of any flavor (`"…"`, `r#"…"#`, `b"…"`, `c"…"`).
    Str,
    /// Character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// Numeric literal (`42`, `0xFF`, `1.5e3`, `7usize`).
    Num,
    /// A single punctuation character (`{`, `[`, `:`, `!`, …). Multi-char
    /// operators appear as consecutive `Punct` tokens; the passes match on
    /// the characters they need (`::` is two `:` tokens).
    Punct(char),
}

/// One lexed token: kind, text, and the 1-indexed line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokKind,
    /// The token text. For `Ident` this is the identifier itself (raw
    /// identifiers are stripped of the `r#` prefix); for literals the full
    /// source text; for `Punct` the single character.
    pub text: String,
    /// 1-indexed line the token starts on.
    pub line: usize,
}

impl Token {
    /// True when this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True when this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

/// Lexes `src` into a token stream. Comments and whitespace are dropped;
/// lines are tracked across everything, including multi-line strings.
///
/// The lexer is total: unrecognized bytes become `Punct` tokens rather than
/// errors, so a file that rustc would reject still produces a best-effort
/// stream (the passes only ever run on files rustc already accepted).
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
    out: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek(0)?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }

    fn push(&mut self, kind: TokKind, text: String, line: usize) {
        self.out.push(Token { kind, text, line });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(b) = self.peek(0) {
            let line = self.line;
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'r' | b'b' | b'c' if self.raw_or_byte_literal(line) => {}
                b'"' => self.string_literal(line),
                b'\'' => self.char_or_lifetime(line),
                b'0'..=b'9' => self.number(line),
                _ if is_ident_start(b) => self.ident(line),
                _ => {
                    self.bump();
                    self.push(TokKind::Punct(b as char), (b as char).to_string(), line);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        while let Some(b) = self.peek(0) {
            if b == b'\n' {
                break;
            }
            self.bump();
        }
    }

    fn block_comment(&mut self) {
        // Rust block comments nest.
        self.bump();
        self.bump();
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
    }

    /// Handles `r"…"`, `r#"…"#`, `r#ident`, `b"…"`, `b'…'`, `br"…"`,
    /// `c"…"` prefixed forms. Returns true when it consumed something.
    fn raw_or_byte_literal(&mut self, line: usize) -> bool {
        let start = self.pos;
        let first = self.peek(0).unwrap_or(0);
        let mut i = 1;
        // Optional second prefix letter (`br`, `rb` does not exist; keep it
        // simple: `b` may be followed by `r`).
        if first == b'b' && self.peek(i) == Some(b'r') {
            i += 1;
        }
        let mut hashes = 0usize;
        while self.peek(i) == Some(b'#') {
            hashes += 1;
            i += 1;
        }
        match self.peek(i) {
            Some(b'"') => {
                // Raw (or plain byte/c) string: consume prefix + opening quote.
                for _ in 0..=i {
                    self.bump();
                }
                let raw = hashes > 0 || (first == b'r' || self.bytes[start + 1] == b'r');
                self.consume_string_body(raw, hashes);
                let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
                self.push(TokKind::Str, text, line);
                true
            }
            Some(b'\'') if first == b'b' && hashes == 0 && i == 1 => {
                // Byte char literal b'x'.
                self.bump();
                self.char_or_lifetime(line);
                true
            }
            _ if hashes == 1 && first == b'r' && self.peek(2).is_some_and(is_ident_start) => {
                // Raw identifier r#ident: lex as a plain identifier.
                self.bump();
                self.bump();
                self.ident(line);
                true
            }
            _ => false, // plain identifier starting with r/b/c
        }
    }

    fn string_literal(&mut self, line: usize) {
        let start = self.pos;
        self.bump(); // opening quote
        self.consume_string_body(false, 0);
        let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
        self.push(TokKind::Str, text, line);
    }

    /// Consumes a string body up to and including its closing delimiter.
    /// `raw` bodies have no escapes; `hashes` is the `#` count for raw forms.
    fn consume_string_body(&mut self, raw: bool, hashes: usize) {
        loop {
            match self.peek(0) {
                None => break,
                Some(b'\\') if !raw => {
                    self.bump();
                    self.bump();
                }
                Some(b'"') => {
                    self.bump();
                    if !raw || (0..hashes).all(|k| self.peek(k) == Some(b'#')) {
                        for _ in 0..hashes {
                            self.bump();
                        }
                        break;
                    }
                }
                Some(_) => {
                    self.bump();
                }
            }
        }
    }

    /// Disambiguates char literals (`'x'`, `'\n'`) from lifetimes (`'a`).
    fn char_or_lifetime(&mut self, line: usize) {
        let start = self.pos;
        self.bump(); // opening quote
        let is_char = matches!(
            (self.peek(0), self.peek(1)),
            (Some(b'\\'), _) | (Some(_), Some(b'\''))
        );
        if is_char {
            if self.peek(0) == Some(b'\\') {
                self.bump();
                self.bump();
                // Escapes like \u{1F600} and \x7F span extra bytes.
                while self.peek(0).is_some() && self.peek(0) != Some(b'\'') {
                    self.bump();
                }
            } else {
                self.bump();
            }
            self.bump(); // closing quote
            let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
            self.push(TokKind::Char, text, line);
        } else {
            // Lifetime: consume identifier characters.
            while self.peek(0).is_some_and(is_ident_continue) {
                self.bump();
            }
            let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
            self.push(TokKind::Lifetime, text, line);
        }
    }

    fn number(&mut self, line: usize) {
        let start = self.pos;
        // Numbers never matter to the passes beyond existing as single
        // tokens; consume the maximal plausible literal (digits, hex/bin
        // prefixes, underscores, type suffixes, exponent, one dot — but not
        // `1..2` range syntax or `x.method()`).
        self.bump();
        while let Some(b) = self.peek(0) {
            let continues = b.is_ascii_alphanumeric()
                || b == b'_'
                || (b == b'.' && self.peek(1).is_some_and(|n| n.is_ascii_digit()));
            if !continues {
                break;
            }
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
        self.push(TokKind::Num, text, line);
    }

    fn ident(&mut self, line: usize) {
        let start = self.pos;
        while self.peek(0).is_some_and(is_ident_continue) {
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
        self.push(TokKind::Ident, text, line);
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_punct() {
        let t = kinds("let x = foo::bar(1);");
        assert_eq!(t[0], (TokKind::Ident, "let".into()));
        assert_eq!(t[1], (TokKind::Ident, "x".into()));
        assert_eq!(t[2], (TokKind::Punct('='), "=".into()));
        assert!(t.iter().any(|(k, s)| *k == TokKind::Num && s == "1"));
        assert_eq!(
            t.iter().filter(|(k, _)| *k == TokKind::Punct(':')).count(),
            2
        );
    }

    #[test]
    fn comments_vanish_but_lines_advance() {
        let toks = lex("// HashMap here\n/* thread_rng()\n   nested /* ok */ */\nInstant");
        assert_eq!(toks.len(), 1);
        assert!(toks[0].is_ident("Instant"));
        assert_eq!(toks[0].line, 4);
    }

    #[test]
    fn strings_do_not_hide_following_code() {
        let toks = lex(r#"let s = "// not a comment"; Instant::now()"#);
        assert!(toks.iter().any(|t| t.is_ident("Instant")));
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Str).count(), 1);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let toks = lex(r##"let s = r#"quote " inside"#; HashMap"##);
        assert!(toks.iter().any(|t| t.is_ident("HashMap")));
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Str).count(), 1);
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        let chars: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::Char).collect();
        assert_eq!(lifetimes.len(), 2);
        assert_eq!(chars.len(), 2);
    }

    #[test]
    fn raw_identifiers_strip_prefix() {
        let toks = lex("let r#type = 1;");
        assert!(toks.iter().any(|t| t.is_ident("type")));
    }

    #[test]
    fn multiline_string_tracks_lines() {
        let toks = lex("let s = \"a\nb\nc\";\nInstant");
        let inst = toks.iter().find(|t| t.is_ident("Instant")).unwrap();
        assert_eq!(inst.line, 4);
    }

    #[test]
    fn numbers_do_not_eat_ranges_or_methods() {
        let toks = lex("for i in 0..10 { x.0.len() }");
        let nums: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(nums, ["0", "10", "0"]);
    }

    #[test]
    fn byte_strings_and_chars() {
        let toks = lex(r#"let a = b"bytes"; let c = b'x'; let r = br"raw";"#);
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Str).count(), 2);
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Char).count(), 1);
    }
}
