//! `mlpart-analyzer`: token-aware static analysis for the mlpart workspace.
//!
//! The partitioner's headline contract is bit-exact reproducibility: the
//! same `(netlist, config, seed)` must produce the same partition on every
//! machine, thread count, and feature set — and the ROADMAP's production
//! target adds a second contract, panic-freedom on arbitrary inputs in the
//! pipeline crates. This crate enforces both statically. It supersedes the
//! PR 3 line-regex lint (`mlpart-lint`) with a real engine: a hand-rolled
//! std-only lexer ([`lexer`]) produces a spanned token stream, a structural
//! outline ([`outline`]) recovers `#[cfg]` regions, `use`-alias bindings,
//! and fn spans, and four passes ([`passes`]) run over them:
//!
//! * **determinism lints** — `default-hasher` (HashMap/HashSet, including
//!   through `use ... as` renames), `entropy-rng` (`thread_rng` /
//!   `from_entropy`), `wall-clock` (`Instant`/`SystemTime` outside
//!   whitelisted telemetry sites), `id-truncation` (`as u8`/`as u16`,
//!   `.len() as u32`, `.index() as u32`), `debug-print` (`dbg!`/`println!`
//!   in library code);
//! * **panic-path inventory** — `panic-unwrap`/`panic-expect`/
//!   `panic-macro`/`panic-index` over the six pipeline crates, enforced by
//!   the `panics-allow.txt` ratchet that can only shrink;
//! * **feature-gate hygiene** — `ungated-hook`: every `mlpart_obs::` /
//!   `mlpart_audit::` / `mlpart_fault::` mention in library code must sit
//!   inside a matching `#[cfg(feature = ...)]` region (or a module gated at
//!   its `mod` declaration), so hooks provably compile out;
//! * **staleness** — allow/ratchet entries that no longer match reality
//!   fail `--check-stale`, so exemptions can't rot.
//!
//! Known-legitimate determinism sites are declared in `lint-allow.txt`;
//! residual panic sites in `panics-allow.txt`. The binary
//! (`cargo run -p mlpart-analyzer`) exits 0 when clean, 1 on findings, 2 on
//! operational errors, and emits `--format text|json` (JSONL pinned by
//! `schemas/analyzer-findings.schema.json`).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod allow;
pub mod findings;
pub mod lexer;
pub mod outline;
pub mod passes;

pub use allow::{
    apply, is_allowed, parse_allowlist, parse_ratchet, render_ratchet, AllowEntry, Applied,
    RatchetEntry,
};
pub use findings::{canonicalize, Finding};
pub use passes::Scope;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// In-workspace stand-in crates (vendored API shims, not algorithm code)
/// and this crate itself — excluded from scanning.
const SKIP_CRATES: &[&str] = &["rand", "proptest", "criterion", "analyzer"];

/// The pipeline library crates under the panic-freedom, gate-hygiene, and
/// no-debug-print contracts. The bench harness (static-shape table math on
/// a terminal it owns) and the hook crates themselves (obs, audit, fault —
/// they *are* the gated implementation) are deliberately out. The facade
/// (CLI + checkpoint codec) gets the panic inventory only — see
/// [`analyze_workspace`] — because its IO and argument paths promise typed
/// errors, never panics.
const LIBRARY_CRATES: &[&str] = &["cluster", "core", "exec", "fm", "hypergraph", "kway"];

/// Analyzes one source text under `scope`, returning canonically ordered
/// findings. `file` is the workspace-relative label stamped on findings.
pub fn analyze_source(file: &str, text: &str, scope: &Scope) -> Vec<Finding> {
    let toks = lexer::lex(text);
    let outline = outline::build(&toks);
    let mut f = passes::analyze(file, text, &toks, &outline, scope);
    canonicalize(&mut f);
    f
}

/// Collects the `.rs` files under `dir`, recursively, in sorted order.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<io::Result<_>>()?;
    entries.sort_by_key(|e| e.path());
    for entry in entries {
        let path = entry.path();
        if path.is_dir() {
            rust_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Features a file inherits from a `#[cfg(feature = "...")] mod x;`
/// declaration in its crate's `lib.rs`. `rel_in_src` is the path below
/// `src/` (`audit.rs`, `audit/mod.rs`, `audit/deep.rs` all map to the
/// top-level module `audit`).
fn inherited_features(gated: &[outline::GatedMod], rel_in_src: &Path) -> Vec<String> {
    let Some(first) = rel_in_src.components().next() else {
        return Vec::new();
    };
    let first = first.as_os_str().to_string_lossy();
    let module = first.strip_suffix(".rs").unwrap_or(&first);
    gated
        .iter()
        .filter(|g| g.name == module)
        .flat_map(|g| g.features.iter().cloned())
        .collect()
}

/// Analyzes every scanned crate's `src/` tree plus the facade's root
/// `src/`, returning all findings in canonical order (allow files not yet
/// applied).
pub fn analyze_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<_> = fs::read_dir(&crates_dir)?.collect::<io::Result<_>>()?;
    crate_dirs.sort_by_key(|e| e.path());
    for entry in crate_dirs {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy().into_owned();
        if !path.is_dir() || SKIP_CRATES.contains(&name.as_str()) {
            continue;
        }
        let src = path.join("src");
        if !src.is_dir() {
            continue;
        }
        let is_library = LIBRARY_CRATES.contains(&name.as_str());
        // Gated `mod` declarations in the crate root let included files
        // inherit their feature requirement.
        let gated_mods = if is_library {
            let lib_rs = src.join("lib.rs");
            match fs::read_to_string(&lib_rs) {
                Ok(text) => {
                    let toks = lexer::lex(&text);
                    outline::build(&toks).gated_mods
                }
                Err(_) => Vec::new(),
            }
        } else {
            Vec::new()
        };
        let mut files = Vec::new();
        rust_files(&src, &mut files)?;
        for file in files {
            let rel = file
                .strip_prefix(root)
                .unwrap_or(&file)
                .to_string_lossy()
                .replace('\\', "/");
            let rel_in_src = file.strip_prefix(&src).unwrap_or(&file);
            let scope = Scope {
                panics: is_library,
                gates: is_library,
                debug_print: is_library,
                inherited_features: inherited_features(&gated_mods, rel_in_src),
            };
            let text = fs::read_to_string(&file)?;
            findings.extend(analyze_source(&rel, &text, &scope));
        }
    }
    let facade_src = root.join("src");
    if facade_src.is_dir() {
        let mut files = Vec::new();
        rust_files(&facade_src, &mut files)?;
        for file in files {
            let rel = file
                .strip_prefix(root)
                .unwrap_or(&file)
                .to_string_lossy()
                .replace('\\', "/");
            let text = fs::read_to_string(&file)?;
            // The facade's IO and argument paths promise typed errors:
            // panic inventory on, hook-gate/debug-print checks off (it is
            // the terminal owner that prints and wires the gated hooks).
            let scope = Scope {
                panics: true,
                ..Scope::default()
            };
            findings.extend(analyze_source(&rel, &text, &scope));
        }
    }
    canonicalize(&mut findings);
    Ok(findings)
}

/// Full analyzer run: scan the workspace, apply `lint-allow.txt` and
/// `panics-allow.txt`, and compute staleness. I/O failures and malformed
/// ratchet lines surface as errors (→ exit 2 in the binary).
pub fn run(root: &Path) -> io::Result<Applied> {
    let allow = match fs::read_to_string(root.join("lint-allow.txt")) {
        Ok(text) => parse_allowlist(&text),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    let ratchet = match fs::read_to_string(root.join("panics-allow.txt")) {
        Ok(text) => {
            parse_ratchet(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    let all = analyze_workspace(root)?;
    Ok(apply(all, &allow, &ratchet))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workspace_root() -> PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
    }

    /// The seeded PR 3 fixture contains every banned determinism pattern;
    /// each class must still be reported by the token-aware engine.
    #[test]
    fn banned_fixture_trips_every_determinism_check() {
        let text = include_str!("../fixtures/banned.rs.fixture");
        let f = analyze_source("fixtures/banned.rs", text, &Scope::default());
        for check in [
            "default-hasher",
            "entropy-rng",
            "wall-clock",
            "id-truncation",
        ] {
            assert!(
                f.iter().any(|f| f.check == check),
                "{check} not reported: {f:?}"
            );
        }
    }

    /// Aliased imports defeat the old regex lint; the outline's alias map
    /// must catch the *usage* lines, not just the `use` line.
    #[test]
    fn aliased_fixture_caught_at_usage_sites() {
        let text = include_str!("../fixtures/aliased.rs.fixture");
        let f = analyze_source("fixtures/aliased.rs", text, &Scope::default());
        let usage_lines: Vec<usize> = f
            .iter()
            .filter(|f| f.check == "default-hasher" && f.snippet.contains("Map::new"))
            .map(|f| f.line)
            .collect();
        assert!(!usage_lines.is_empty(), "aliased usage not flagged: {f:?}");
        assert!(
            f.iter()
                .any(|f| f.check == "entropy-rng" && f.snippet.contains("fresh_rng()")),
            "aliased thread_rng call not flagged: {f:?}"
        );
    }

    /// Un-gated hook calls must be reported; properly gated ones must not.
    #[test]
    fn ungated_obs_fixture_flags_only_the_naked_call() {
        let text = include_str!("../fixtures/ungated_obs.rs.fixture");
        let scope = Scope {
            gates: true,
            ..Scope::default()
        };
        let f = analyze_source("fixtures/ungated_obs.rs", text, &scope);
        let hooks: Vec<&Finding> = f.iter().filter(|f| f.check == "ungated-hook").collect();
        assert_eq!(hooks.len(), 2, "{f:?}");
        assert!(hooks.iter().all(|f| f.snippet.contains("naked")));
    }

    /// Allocation-tracking hook sites need the stricter `obs-alloc` gate:
    /// both the weakly-gated (`obs` only) and naked calls are reported,
    /// while the properly gated one and the plain span hook are not.
    #[test]
    fn ungated_alloc_fixture_flags_weak_gates() {
        let text = include_str!("../fixtures/ungated_alloc.rs.fixture");
        let scope = Scope {
            gates: true,
            ..Scope::default()
        };
        let f = analyze_source("fixtures/ungated_alloc.rs", text, &scope);
        let hooks: Vec<&Finding> = f.iter().filter(|f| f.check == "ungated-hook").collect();
        assert_eq!(hooks.len(), 2, "{f:?}");
        assert!(hooks.iter().any(|f| f.snippet.contains("snapshot")));
        assert!(hooks.iter().any(|f| f.snippet.contains("peak_bytes")));
    }

    /// A fresh unwrap/index in pipeline code shows up in the panic
    /// inventory; the same code inside `#[cfg(test)]` does not.
    #[test]
    fn panics_fixture_inventoried_outside_tests_only() {
        let text = include_str!("../fixtures/panics.rs.fixture");
        let scope = Scope {
            panics: true,
            ..Scope::default()
        };
        let f = analyze_source("fixtures/panics.rs", text, &scope);
        let checks: Vec<&str> = f.iter().map(|f| f.check).collect();
        assert_eq!(
            checks,
            ["panic-unwrap", "panic-expect", "panic-macro", "panic-index"],
            "{f:?}"
        );
        assert!(
            f.iter().all(|f| !f.snippet.contains("fine_in_tests")),
            "test-region code must be exempt: {f:?}"
        );
    }

    /// The real workspace must scan clean under its committed allow files
    /// with zero stale entries — the acceptance gate
    /// `cargo run -p mlpart-analyzer -- --check-stale` enforces in CI.
    #[test]
    fn workspace_is_clean_and_allow_files_are_fresh() {
        let out = run(&workspace_root()).expect("analyzer scan");
        assert!(
            out.kept.is_empty(),
            "analyzer findings:\n{}",
            out.kept
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
        assert!(
            out.stale.is_empty(),
            "stale allow entries:\n{}",
            out.stale.join("\n")
        );
        // The allow files are load-bearing: telemetry + residual panic
        // sites exist and are tracked.
        assert!(out.suppressed > 0, "expected suppressed findings");
    }

    /// The observability crate funnels every monotonic-clock read through
    /// `clock.rs`; the allowlist entry is that single file, not a crate-wide
    /// blanket, so a stray `Instant` anywhere else in `mlpart-obs` fails the
    /// lint. This test pins both halves of that contract.
    #[test]
    fn obs_clock_reads_are_confined_to_clock_rs() {
        let root = workspace_root();
        let findings = analyze_workspace(&root).expect("analyzer scan");
        let obs_wall: Vec<&Finding> = findings
            .iter()
            .filter(|f| f.check == "wall-clock" && f.file.starts_with("crates/obs/"))
            .collect();
        assert!(
            !obs_wall.is_empty(),
            "expected the obs clock site to be scanned, not skipped"
        );
        assert!(
            obs_wall.iter().all(|f| f.file == "crates/obs/src/clock.rs"),
            "obs clock reads outside clock.rs: {obs_wall:?}"
        );
        let allow_text = fs::read_to_string(root.join("lint-allow.txt")).expect("allowlist exists");
        let obs_entries: Vec<AllowEntry> = parse_allowlist(&allow_text)
            .into_iter()
            .filter(|a| a.path_prefix.starts_with("crates/obs"))
            .collect();
        assert_eq!(
            obs_entries,
            vec![AllowEntry {
                check: "wall-clock".into(),
                path_prefix: "crates/obs/src/clock.rs".into(),
            }],
            "the obs exemption must stay a single-file wall-clock entry"
        );
    }

    /// The committed ratchet must match `render_ratchet` of the live scan
    /// byte-for-byte below the comment header — the `--write-ratchet`
    /// output is the single source of truth for the numbers.
    #[test]
    fn committed_ratchet_matches_live_inventory() {
        let root = workspace_root();
        let findings = analyze_workspace(&root).expect("analyzer scan");
        let rendered = render_ratchet(&findings);
        let committed =
            fs::read_to_string(root.join("panics-allow.txt")).expect("panics-allow.txt exists");
        let strip = |s: &str| {
            s.lines()
                .filter(|l| !l.trim_start().starts_with('#') && !l.trim().is_empty())
                .map(|l| l.split('#').next().unwrap_or("").trim().to_string())
                .collect::<Vec<_>>()
        };
        assert_eq!(
            strip(&committed),
            strip(&rendered),
            "panics-allow.txt is out of date; regenerate with --write-ratchet"
        );
    }
}
