//! `mlpart-analyzer` CLI.
//!
//! Exit contract: 0 = clean, 1 = findings (or stale allow entries with
//! `--check-stale`), 2 = operational error (I/O, malformed ratchet, bad
//! arguments).

use mlpart_analyzer::{analyze_workspace, render_ratchet, run};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "\
mlpart-analyzer: token-aware static analysis for the mlpart workspace

USAGE:
    mlpart-analyzer [OPTIONS]

OPTIONS:
    --format <text|json>   Output format for findings (default: text).
                           json emits one mlpart-analyzer-findings-v1
                           object per line (schemas/analyzer-findings.schema.json).
    --check-stale          Also fail (exit 1) when a lint-allow.txt or
                           panics-allow.txt entry matches no finding.
    --write-ratchet        Regenerate panics-allow.txt from the live panic
                           inventory, then exit 0.
    --root <PATH>          Workspace root (default: the source checkout).
    --help                 Show this help.

EXIT CODES:
    0  workspace is clean
    1  findings (or, with --check-stale, stale allow entries)
    2  operational error";

struct Args {
    format_json: bool,
    check_stale: bool,
    write_ratchet: bool,
    root: PathBuf,
}

fn parse_args() -> Result<Option<Args>, String> {
    let mut args = Args {
        format_json: false,
        check_stale: false,
        write_ratchet: false,
        root: Path::new(env!("CARGO_MANIFEST_DIR")).join("../.."),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--help" | "-h" => return Ok(None),
            "--check-stale" => args.check_stale = true,
            "--write-ratchet" => args.write_ratchet = true,
            "--format" => match it.next().as_deref() {
                Some("text") => args.format_json = false,
                Some("json") => args.format_json = true,
                other => {
                    return Err(format!(
                        "--format expects `text` or `json`, got {:?}",
                        other.unwrap_or("<missing>")
                    ))
                }
            },
            "--root" => match it.next() {
                Some(p) => args.root = PathBuf::from(p),
                None => return Err("--root expects a path".into()),
            },
            other => return Err(format!("unknown argument `{other}` (see --help)")),
        }
    }
    Ok(Some(args))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(Some(args)) => args,
        Ok(None) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            eprintln!("mlpart-analyzer: error: {e}");
            return ExitCode::from(2);
        }
    };
    match exec(&args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("mlpart-analyzer: error: {e}");
            ExitCode::from(2)
        }
    }
}

fn exec(args: &Args) -> std::io::Result<ExitCode> {
    if args.write_ratchet {
        let findings = analyze_workspace(&args.root)?;
        let text = render_ratchet(&findings);
        let path = args.root.join("panics-allow.txt");
        std::fs::write(&path, &text)?;
        let entries = text.lines().filter(|l| !l.starts_with('#')).count();
        eprintln!(
            "mlpart-analyzer: wrote {} with {entries} ratchet entries",
            path.display()
        );
        return Ok(ExitCode::SUCCESS);
    }

    let out = run(&args.root)?;
    for f in &out.kept {
        if args.format_json {
            println!("{}", f.to_json());
        } else {
            println!("{f}");
        }
    }
    let stale_fails = args.check_stale && !out.stale.is_empty();
    if stale_fails {
        for s in &out.stale {
            eprintln!("mlpart-analyzer: stale: {s}");
        }
    }
    eprintln!(
        "mlpart-analyzer: {} finding(s), {} suppressed, {} stale allow entr{}",
        out.kept.len(),
        out.suppressed,
        out.stale.len(),
        if out.stale.len() == 1 { "y" } else { "ies" },
    );
    if !out.kept.is_empty() || stale_fails {
        Ok(ExitCode::FAILURE)
    } else {
        Ok(ExitCode::SUCCESS)
    }
}
