//! Lightweight structural outline over the token stream.
//!
//! The outline extracts exactly the structure the passes need — no full
//! parse: `#[cfg(...)]` regions with their positive feature set and
//! test-ness, `use`-alias resolution (including grouped imports and
//! `as` renames), function spans (for finding context labels), and
//! body-less gated `mod` declarations (so a file can inherit gating from
//! the `#[cfg(feature = "...")] mod x;` line that includes it).
//!
//! Attribute attachment uses a heuristic that covers real Rust without a
//! grammar: an attribute's region starts after any immediately following
//! attributes and ends at the first `;` or `,` at relative depth 0, when
//! the enclosing group closes, or after the first `{ ... }` group closes
//! (continuing through `else` chains).

use crate::lexer::{TokKind, Token};

/// A conditionally-compiled token range.
#[derive(Debug, Clone)]
pub struct CfgRegion {
    /// First token index covered (inclusive).
    pub start: usize,
    /// One past the last token index covered.
    pub end: usize,
    /// Positive feature names: `feature = "x"` terms not under `not(...)`.
    pub features: Vec<String>,
    /// True for `#[cfg(test)]` regions and `#[test]` functions.
    pub is_test: bool,
}

/// A function item: name and the token range from `fn` through its body.
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// Function name as written at the definition site.
    pub name: String,
    /// Token index of the `fn` keyword.
    pub start: usize,
    /// Token index of the body's closing brace (or the `;` of a decl).
    pub end: usize,
}

/// A body-less `mod name;` declaration carrying `#[cfg(feature = ...)]`.
#[derive(Debug, Clone)]
pub struct GatedMod {
    /// Module name from the declaration.
    pub name: String,
    /// Positive feature names guarding the declaration.
    pub features: Vec<String>,
}

/// Structural facts about one source file.
#[derive(Debug, Default)]
pub struct Outline {
    /// Attribute-gated token ranges, in source order.
    pub regions: Vec<CfgRegion>,
    /// `alias → full path` pairs from `use` trees, e.g.
    /// `("Map", "std::collections::HashMap")`. Plain imports are recorded
    /// too (`("HashMap", "std::collections::HashMap")`).
    pub aliases: Vec<(String, String)>,
    /// Function items, in source order.
    pub fns: Vec<FnSpan>,
    /// Body-less `mod` declarations carrying feature gates.
    pub gated_mods: Vec<GatedMod>,
}

impl Outline {
    /// True when token `idx` sits inside a region gated on `feature`.
    pub fn in_feature(&self, idx: usize, feature: &str) -> bool {
        self.regions
            .iter()
            .any(|r| r.start <= idx && idx < r.end && r.features.iter().any(|f| f == feature))
    }

    /// True when token `idx` is inside test-only code.
    pub fn in_test(&self, idx: usize) -> bool {
        self.regions
            .iter()
            .any(|r| r.start <= idx && idx < r.end && r.is_test)
    }

    /// Name of the innermost function containing token `idx`, if any.
    pub fn enclosing_fn(&self, idx: usize) -> Option<&str> {
        self.fns
            .iter()
            .filter(|f| f.start <= idx && idx < f.end)
            .min_by_key(|f| f.end - f.start)
            .map(|f| f.name.as_str())
    }

    /// Resolves an identifier through the `use`-alias map: returns the
    /// full imported path when `name` was bound by a `use`, else `name`.
    pub fn resolve<'a>(&'a self, name: &'a str) -> &'a str {
        self.aliases
            .iter()
            .find(|(alias, _)| alias == name)
            .map(|(_, path)| path.as_str())
            .unwrap_or(name)
    }
}

/// Builds the outline for one file's token stream.
pub fn build(toks: &[Token]) -> Outline {
    let mut out = Outline::default();
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('#') {
            if toks.get(i + 1).is_some_and(|t| t.is_punct('!'))
                && toks.get(i + 2).is_some_and(|t| t.is_punct('['))
            {
                // Inner attribute `#![...]`: a cfg here gates the whole file.
                let close = matching_bracket(toks, i + 2);
                let meta = parse_meta(&toks[i + 3..close]);
                if meta.is_cfg && (!meta.features.is_empty() || meta.is_test) {
                    out.regions.push(CfgRegion {
                        start: 0,
                        end: toks.len(),
                        features: meta.features,
                        is_test: meta.is_test,
                    });
                }
                i = close + 1;
                continue;
            }
            if toks.get(i + 1).is_some_and(|t| t.is_punct('[')) {
                let close = matching_bracket(toks, i + 1);
                let meta = parse_meta(&toks[i + 2..close]);
                if meta.is_cfg && (!meta.features.is_empty() || meta.is_test) {
                    let start = skip_attributes(toks, close + 1);
                    let end = attachment_end(toks, start);
                    if let Some(name) = bodyless_mod_name(&toks[start..end]) {
                        if !meta.features.is_empty() {
                            out.gated_mods.push(GatedMod {
                                name,
                                features: meta.features.clone(),
                            });
                        }
                    }
                    out.regions.push(CfgRegion {
                        start,
                        end,
                        features: meta.features,
                        is_test: meta.is_test,
                    });
                }
                i = close + 1;
                continue;
            }
        }
        if t.is_ident("use") {
            i = parse_use(toks, i + 1, &mut out.aliases);
            continue;
        }
        if t.is_ident("fn") {
            if let Some(name_tok) = toks.get(i + 1) {
                if name_tok.kind == TokKind::Ident {
                    let end = fn_end(toks, i);
                    out.fns.push(FnSpan {
                        name: name_tok.text.clone(),
                        start: i,
                        end,
                    });
                }
            }
        }
        i += 1;
    }
    out
}

/// Index of the `]` matching the `[` at `open`.
fn matching_bracket(toks: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return k;
            }
        }
    }
    toks.len().saturating_sub(1)
}

/// Skips consecutive outer attributes starting at `i`; returns the index
/// of the first non-attribute token (the attachment target).
fn skip_attributes(toks: &[Token], mut i: usize) -> usize {
    while toks.get(i).is_some_and(|t| t.is_punct('#'))
        && toks.get(i + 1).is_some_and(|t| t.is_punct('['))
    {
        i = matching_bracket(toks, i + 1) + 1;
    }
    i
}

/// One past the last token of the item/statement starting at `start`.
fn attachment_end(toks: &[Token], start: usize) -> usize {
    let mut depth = 0i32;
    let mut opened_brace = false;
    let mut k = start;
    while k < toks.len() {
        match toks[k].kind {
            TokKind::Punct(c @ ('(' | '[' | '{')) => {
                if c == '{' && depth == 0 {
                    opened_brace = true;
                }
                depth += 1;
            }
            TokKind::Punct(c @ (')' | ']' | '}')) => {
                depth -= 1;
                if depth < 0 {
                    return k; // enclosing group closed before the item ended
                }
                if c == '}' && depth == 0 && opened_brace {
                    if toks.get(k + 1).is_some_and(|t| t.is_ident("else")) {
                        k += 1; // `if {} else {}` chains continue the item
                    } else {
                        return k + 1;
                    }
                }
            }
            TokKind::Punct(';' | ',') if depth == 0 => return k + 1,
            _ => {}
        }
        k += 1;
    }
    toks.len()
}

/// For a region holding `pub? mod name ;` with no body: the mod name.
fn bodyless_mod_name(toks: &[Token]) -> Option<String> {
    if toks.iter().any(|t| t.is_punct('{')) {
        return None;
    }
    let pos = toks.iter().position(|t| t.is_ident("mod"))?;
    let name = toks.get(pos + 1)?;
    (name.kind == TokKind::Ident).then(|| name.text.clone())
}

struct Meta {
    is_cfg: bool,
    features: Vec<String>,
    is_test: bool,
}

/// Parses attribute meta tokens (the part between `[` and `]`).
/// `feature = "x"` terms under `not(...)` are excluded from the positive
/// set; a bare `test` (as in `#[test]` or `#[cfg(test)]`) marks test-ness.
fn parse_meta(toks: &[Token]) -> Meta {
    let mut meta = Meta {
        is_cfg: false,
        features: Vec::new(),
        is_test: false,
    };
    let Some(first) = toks.first() else {
        return meta;
    };
    if first.is_ident("test") && toks.len() == 1 {
        meta.is_cfg = true; // treat #[test] as a test region marker
        meta.is_test = true;
        return meta;
    }
    if !first.is_ident("cfg") {
        return meta; // cfg_attr, derive, doc, ... — not a region
    }
    meta.is_cfg = true;
    let mut depth = 0usize;
    let mut not_depths: Vec<usize> = Vec::new();
    let mut k = 0;
    while k < toks.len() {
        let t = &toks[k];
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            while not_depths.last().is_some_and(|d| *d >= depth) {
                not_depths.pop();
            }
            depth = depth.saturating_sub(1);
        } else if t.is_ident("not") && toks.get(k + 1).is_some_and(|t| t.is_punct('(')) {
            not_depths.push(depth + 1);
        } else if not_depths.is_empty() {
            if t.is_ident("feature")
                && toks.get(k + 1).is_some_and(|t| t.is_punct('='))
                && toks.get(k + 2).is_some_and(|t| t.kind == TokKind::Str)
            {
                meta.features.push(str_value(&toks[k + 2].text));
                k += 3;
                continue;
            }
            if t.is_ident("test") {
                meta.is_test = true;
            }
        }
        k += 1;
    }
    meta
}

/// The value of a string-literal token (`"obs"` → `obs`).
fn str_value(text: &str) -> String {
    let first = text.find('"').map(|p| p + 1).unwrap_or(0);
    let last = text.rfind('"').unwrap_or(text.len());
    if first <= last {
        text[first..last].to_string()
    } else {
        String::new()
    }
}

/// One past the end of the fn starting at token `fn_idx` (at the body's
/// closing `}` or the declaration's `;`).
fn fn_end(toks: &[Token], fn_idx: usize) -> usize {
    let mut depth = 0i32;
    let mut k = fn_idx;
    while k < toks.len() {
        match toks[k].kind {
            TokKind::Punct('(' | '[') => depth += 1,
            TokKind::Punct(')' | ']') => depth -= 1,
            TokKind::Punct('{') if depth == 0 => {
                // Body found: match braces to its end.
                let mut b = 0i32;
                while k < toks.len() {
                    match toks[k].kind {
                        TokKind::Punct('{') => b += 1,
                        TokKind::Punct('}') => {
                            b -= 1;
                            if b == 0 {
                                return k + 1;
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
                return toks.len();
            }
            TokKind::Punct(';') if depth == 0 => return k + 1,
            _ => {}
        }
        k += 1;
    }
    toks.len()
}

/// Parses one use-tree starting at `i` (just past `use` or a `::` inside a
/// group), recording `(alias, full_path)` leaves. Returns the index of the
/// terminator it stopped at (`,`, `}`, or just past `;`).
fn parse_use(toks: &[Token], mut i: usize, aliases: &mut Vec<(String, String)>) -> usize {
    let mut path: Vec<String> = Vec::new();
    loop {
        let Some(t) = toks.get(i) else {
            return i;
        };
        if t.kind == TokKind::Ident && !t.is_ident("as") {
            path.push(t.text.clone());
            i += 1;
        } else if t.is_punct(':') && toks.get(i + 1).is_some_and(|t| t.is_punct(':')) {
            i += 2;
            if toks.get(i).is_some_and(|t| t.is_punct('{')) {
                // Group: parse each branch with the current prefix.
                i += 1;
                loop {
                    i = parse_use_branch(toks, i, &path, aliases);
                    match toks.get(i) {
                        Some(t) if t.is_punct(',') => i += 1,
                        Some(t) if t.is_punct('}') => {
                            i += 1;
                            break;
                        }
                        _ => break,
                    }
                }
                // After a group the tree is done; skip to past `;`.
                while toks
                    .get(i)
                    .is_some_and(|t| !t.is_punct(';') && !t.is_punct(',') && !t.is_punct('}'))
                {
                    i += 1;
                }
                if toks.get(i).is_some_and(|t| t.is_punct(';')) {
                    i += 1;
                }
                return i;
            }
            if toks.get(i).is_some_and(|t| t.is_punct('*')) {
                i += 1; // glob: nothing to record
            }
        } else if t.is_ident("as") {
            if let Some(alias) = toks.get(i + 1) {
                if alias.kind == TokKind::Ident {
                    record_leaf(aliases, Some(alias.text.clone()), &path);
                    i += 2;
                    continue;
                }
            }
            i += 1;
        } else {
            // Terminator (`;`, `,`, `}`): record a plain leaf if no alias
            // was seen and the path names something.
            if !path.is_empty() && !aliases_ends_with(aliases, &path) {
                record_leaf(aliases, None, &path);
            }
            if t.is_punct(';') {
                return i + 1;
            }
            return i;
        }
    }
}

/// Parses one branch of a `{...}` group with prefix `prefix`.
fn parse_use_branch(
    toks: &[Token],
    mut i: usize,
    prefix: &[String],
    aliases: &mut Vec<(String, String)>,
) -> usize {
    let mut path = prefix.to_vec();
    loop {
        let Some(t) = toks.get(i) else {
            return i;
        };
        if t.kind == TokKind::Ident && !t.is_ident("as") {
            path.push(t.text.clone());
            i += 1;
        } else if t.is_punct(':') && toks.get(i + 1).is_some_and(|t| t.is_punct(':')) {
            i += 2;
            if toks.get(i).is_some_and(|t| t.is_punct('{')) {
                // Nested group.
                i += 1;
                loop {
                    i = parse_use_branch(toks, i, &path, aliases);
                    match toks.get(i) {
                        Some(t) if t.is_punct(',') => i += 1,
                        Some(t) if t.is_punct('}') => {
                            i += 1;
                            return i;
                        }
                        _ => return i,
                    }
                }
            }
            if toks.get(i).is_some_and(|t| t.is_punct('*')) {
                i += 1;
            }
        } else if t.is_ident("as") {
            if let Some(alias) = toks.get(i + 1) {
                if alias.kind == TokKind::Ident {
                    record_leaf(aliases, Some(alias.text.clone()), &path);
                    return i + 2;
                }
            }
            i += 1;
        } else {
            if path.len() > prefix.len() {
                record_leaf(aliases, None, &path);
            }
            return i;
        }
    }
}

fn record_leaf(aliases: &mut Vec<(String, String)>, alias: Option<String>, path: &[String]) {
    let mut path = path.to_vec();
    if path.last().is_some_and(|s| s == "self") {
        path.pop(); // `use x::{self, y}`: the self leaf binds the parent name
    }
    let Some(last) = path.last().cloned() else {
        return;
    };
    let name = alias.unwrap_or(last);
    aliases.push((name, path.join("::")));
}

/// True when the last recorded alias already covers `path` (avoids a
/// duplicate record when a terminator follows an `as` clause).
fn aliases_ends_with(aliases: &[(String, String)], path: &[String]) -> bool {
    aliases.last().is_some_and(|(_, p)| *p == path.join("::"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn outline_of(src: &str) -> (Vec<crate::lexer::Token>, Outline) {
        let toks = lex(src);
        let o = build(&toks);
        (toks, o)
    }

    fn idx_of(toks: &[crate::lexer::Token], name: &str) -> usize {
        toks.iter().position(|t| t.is_ident(name)).unwrap()
    }

    #[test]
    fn cfg_feature_region_covers_statement() {
        let src = r#"
            fn f() {
                #[cfg(feature = "obs")]
                let _span = mlpart_obs::span("x");
                other();
            }
        "#;
        let (toks, o) = outline_of(src);
        assert!(o.in_feature(idx_of(&toks, "mlpart_obs"), "obs"));
        assert!(!o.in_feature(idx_of(&toks, "other"), "obs"));
    }

    #[test]
    fn cfg_region_covers_block_and_fn() {
        let src = r#"
            #[cfg(feature = "audit")]
            fn hooked() { mlpart_audit::check(); }
            fn plain() { naked(); }
        "#;
        let (toks, o) = outline_of(src);
        assert!(o.in_feature(idx_of(&toks, "mlpart_audit"), "audit"));
        assert!(!o.in_feature(idx_of(&toks, "naked"), "audit"));
    }

    #[test]
    fn not_feature_is_excluded() {
        let src = r#"
            #[cfg(not(feature = "obs"))]
            fn f() { body(); }
        "#;
        let (toks, o) = outline_of(src);
        assert!(!o.in_feature(idx_of(&toks, "body"), "obs"));
    }

    #[test]
    fn any_with_not_keeps_only_positive() {
        let src = r#"
            #[cfg(any(feature = "obs", not(feature = "audit")))]
            fn f() { body(); }
        "#;
        let (toks, o) = outline_of(src);
        let i = idx_of(&toks, "body");
        assert!(o.in_feature(i, "obs"));
        assert!(!o.in_feature(i, "audit"));
    }

    #[test]
    fn test_regions_cover_cfg_test_mod_and_test_fn() {
        let src = r#"
            fn lib_code() { a.unwrap(); }
            #[cfg(test)]
            mod tests {
                fn helper() { b.unwrap(); }
            }
            #[test]
            fn unit() { c.unwrap(); }
        "#;
        let (toks, o) = outline_of(src);
        assert!(!o.in_test(idx_of(&toks, "a")));
        assert!(o.in_test(idx_of(&toks, "b")));
        assert!(o.in_test(idx_of(&toks, "c")));
    }

    #[test]
    fn inner_cfg_gates_whole_file() {
        let src = "#![cfg(feature = \"fault\")]\nfn f() { body(); }";
        let (toks, o) = outline_of(src);
        assert!(o.in_feature(idx_of(&toks, "body"), "fault"));
    }

    #[test]
    fn stacked_attributes_attach_to_same_item() {
        let src = r#"
            #[cfg(feature = "obs")]
            #[allow(dead_code)]
            fn f() { body(); }
            fn g() { after(); }
        "#;
        let (toks, o) = outline_of(src);
        assert!(o.in_feature(idx_of(&toks, "body"), "obs"));
        assert!(!o.in_feature(idx_of(&toks, "after"), "obs"));
    }

    #[test]
    fn region_ends_at_comma_inside_enum() {
        let src = r#"
            enum E {
                #[cfg(feature = "obs")]
                Traced(u32),
                Plain(u32),
            }
        "#;
        let (toks, o) = outline_of(src);
        assert!(o.in_feature(idx_of(&toks, "Traced"), "obs"));
        assert!(!o.in_feature(idx_of(&toks, "Plain"), "obs"));
    }

    #[test]
    fn gated_mod_declaration_recorded() {
        let src = r#"
            #[cfg(feature = "audit")]
            pub mod audit;
            mod plain;
        "#;
        let (_, o) = outline_of(src);
        assert_eq!(o.gated_mods.len(), 1);
        assert_eq!(o.gated_mods[0].name, "audit");
        assert_eq!(o.gated_mods[0].features, ["audit"]);
    }

    #[test]
    fn use_aliases_resolve() {
        let src = r#"
            use std::collections::HashMap as Map;
            use std::collections::{BTreeMap, HashSet as Set};
            use rand::prelude::*;
            use crate::engine::{self, Engine};
        "#;
        let (_, o) = outline_of(src);
        assert_eq!(o.resolve("Map"), "std::collections::HashMap");
        assert_eq!(o.resolve("Set"), "std::collections::HashSet");
        assert_eq!(o.resolve("BTreeMap"), "std::collections::BTreeMap");
        assert_eq!(o.resolve("Engine"), "crate::engine::Engine");
        assert_eq!(o.resolve("engine"), "crate::engine");
        assert_eq!(o.resolve("Unknown"), "Unknown");
    }

    #[test]
    fn enclosing_fn_is_innermost() {
        let src = r#"
            fn outer() {
                fn inner() { body(); }
                tail();
            }
        "#;
        let (toks, o) = outline_of(src);
        assert_eq!(o.enclosing_fn(idx_of(&toks, "body")), Some("inner"));
        assert_eq!(o.enclosing_fn(idx_of(&toks, "tail")), Some("outer"));
    }

    #[test]
    fn else_chain_stays_in_region() {
        let src = r#"
            fn f() {
                #[cfg(feature = "obs")]
                if a { x(); } else { y(); }
                after();
            }
        "#;
        let (toks, o) = outline_of(src);
        assert!(o.in_feature(idx_of(&toks, "y"), "obs"));
        assert!(!o.in_feature(idx_of(&toks, "after"), "obs"));
    }
}
