//! The analysis passes: determinism lints, panic-path inventory, and
//! feature-gate hygiene, all running over one file's token stream and
//! outline.
//!
//! Every pass is a pure function of `(tokens, outline, scope)`; the scope
//! says which passes apply to this file (panic checks only run on the six
//! pipeline crates, gate checks only on library code) and which features
//! the file inherits from a gated `mod` declaration in its crate root.

use crate::findings::Finding;
use crate::lexer::{TokKind, Token};
use crate::outline::Outline;

/// Which passes apply to the file being analyzed, plus inherited gating.
#[derive(Debug, Clone, Default)]
pub struct Scope {
    /// Run the panic-path inventory (pipeline library crates only).
    pub panics: bool,
    /// Run feature-gate hygiene (library crates with optional hook deps).
    pub gates: bool,
    /// Deny `dbg!`/`println!` outside tests (library crates).
    pub debug_print: bool,
    /// Features the whole file is gated on via `#[cfg(feature = "...")]
    /// mod name;` in the crate root — e.g. `fm::audit` inherits `audit`.
    pub inherited_features: Vec<String>,
}

/// Identifiers that disqualify the preceding-token heuristic for slice
/// indexing: `let [a, b] = …` is a pattern, `return [x]` an array literal.
const NON_INDEX_PREV: &[&str] = &[
    "let", "in", "return", "as", "mut", "ref", "box", "move", "if", "else", "match", "while",
    "for", "loop", "break", "continue", "where", "impl", "dyn", "use", "pub", "fn", "const",
    "static", "struct", "enum", "trait", "mod", "unsafe", "extern", "crate", "self", "Self",
    "super", "yield", "async", "await", "become",
];

/// Macro names whose invocation panics.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Hook-crate roots and the cargo feature each must be gated behind.
/// Sub-paths can demand a *stricter* gate than the crate root; see
/// [`hook_feature`].
const HOOK_ROOTS: &[(&str, &str)] = &[
    ("mlpart_obs", "obs"),
    ("mlpart_audit", "audit"),
    ("mlpart_fault", "fault"),
];

/// The feature a hook-path token at `i` must be gated behind, or `None`
/// when `toks[i]` is not a hook root. Most hook sites need the crate-level
/// feature from [`HOOK_ROOTS`]; `mlpart_obs::alloc::…` — the allocation
/// tracker — only exists under `obs-alloc`, so a plain `obs` gate would
/// still break the build and the stricter gate is required.
fn hook_feature(toks: &[Token], i: usize) -> Option<&'static str> {
    let (_, feature) = HOOK_ROOTS.iter().find(|(root, _)| toks[i].is_ident(root))?;
    if toks[i].is_ident("mlpart_obs")
        && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
        && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
        && toks.get(i + 3).is_some_and(|t| t.is_ident("alloc"))
    {
        return Some("obs-alloc");
    }
    Some(feature)
}

/// Runs every applicable pass over one file. `src` is only used to attach
/// trimmed line snippets to findings.
pub fn analyze(
    file: &str,
    src: &str,
    toks: &[Token],
    outline: &Outline,
    scope: &Scope,
) -> Vec<Finding> {
    let lines: Vec<&str> = src.lines().collect();
    let mut findings = Vec::new();
    let mut hit = |check: &'static str, idx: usize, toks: &[Token], outline: &Outline| {
        let line = toks[idx].line;
        findings.push(Finding {
            file: file.to_string(),
            line,
            check,
            snippet: lines.get(line - 1).map_or("", |l| l.trim()).to_string(),
            context: outline.enclosing_fn(idx).map(str::to_string),
        });
    };

    for (i, t) in toks.iter().enumerate() {
        // --- determinism lints (alias-aware, whole scanned tree) ---
        if t.kind == TokKind::Ident {
            let resolved = outline.resolve(&t.text);
            let last = resolved.rsplit("::").next().unwrap_or(resolved);
            match last {
                "HashMap" | "HashSet" => hit("default-hasher", i, toks, outline),
                "thread_rng" | "from_entropy" => hit("entropy-rng", i, toks, outline),
                "Instant" | "SystemTime" => hit("wall-clock", i, toks, outline),
                _ => {}
            }
        }
        if t.is_ident("as") {
            if let Some(ty) = toks.get(i + 1) {
                let truncating = match ty.text.as_str() {
                    // Always id-sized-or-smaller: any cast to these wraps.
                    "u8" | "u16" => ty.kind == TokKind::Ident,
                    // `as u32` only when fed from a usize-producing call:
                    // `.len() as u32` / `.index() as u32`.
                    "u32" => {
                        ty.kind == TokKind::Ident
                            && toks.get(i.wrapping_sub(1)).is_some_and(|t| t.is_punct(')'))
                            && toks.get(i.wrapping_sub(2)).is_some_and(|t| t.is_punct('('))
                            && toks
                                .get(i.wrapping_sub(3))
                                .is_some_and(|t| t.is_ident("len") || t.is_ident("index"))
                            && toks.get(i.wrapping_sub(4)).is_some_and(|t| t.is_punct('.'))
                    }
                    _ => false,
                };
                if truncating {
                    hit("id-truncation", i, toks, outline);
                }
            }
        }

        // --- debug prints in library code (non-test) ---
        if scope.debug_print
            && (t.is_ident("dbg") || t.is_ident("println"))
            && toks.get(i + 1).is_some_and(|t| t.is_punct('!'))
            && !outline.in_test(i)
        {
            hit("debug-print", i, toks, outline);
        }

        // --- panic-path inventory (pipeline crates, non-test) ---
        if scope.panics && !outline.in_test(i) {
            if (t.is_ident("unwrap") || t.is_ident("expect"))
                && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
                && i > 0
                && toks[i - 1].is_punct('.')
            {
                let check = if t.is_ident("unwrap") {
                    "panic-unwrap"
                } else {
                    "panic-expect"
                };
                hit(check, i, toks, outline);
            }
            if t.kind == TokKind::Ident
                && PANIC_MACROS.contains(&t.text.as_str())
                && toks.get(i + 1).is_some_and(|t| t.is_punct('!'))
            {
                hit("panic-macro", i, toks, outline);
            }
            if t.is_punct('[') && i > 0 {
                let prev = &toks[i - 1];
                let indexes = match prev.kind {
                    TokKind::Ident => !NON_INDEX_PREV.contains(&prev.text.as_str()),
                    TokKind::Punct(']') | TokKind::Punct(')') => true,
                    _ => false,
                };
                if indexes {
                    hit("panic-index", i, toks, outline);
                }
            }
        }

        // --- feature-gate hygiene ---
        if scope.gates && t.kind == TokKind::Ident && !outline.in_test(i) {
            if let Some(feature) = hook_feature(toks, i) {
                let gated = outline.in_feature(i, feature)
                    || scope.inherited_features.iter().any(|f| f == feature);
                if !gated {
                    hit("ungated-hook", i, toks, outline);
                }
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::outline;

    fn run(src: &str, scope: &Scope) -> Vec<Finding> {
        let toks = lex(src);
        let o = outline::build(&toks);
        let mut f = analyze("x.rs", src, &toks, &o, scope);
        crate::findings::canonicalize(&mut f);
        f
    }

    fn checks(src: &str, scope: &Scope) -> Vec<&'static str> {
        run(src, scope).into_iter().map(|f| f.check).collect()
    }

    #[test]
    fn flags_default_hasher() {
        let src = "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, u64> = HashMap::new(); }\n";
        let f = run(src, &Scope::default());
        assert!(f.iter().all(|f| f.check == "default-hasher"));
        assert_eq!(f[0].line, 1);
        assert!(f.len() >= 2);
    }

    #[test]
    fn flags_aliased_hash_map_usage() {
        let src = "use std::collections::HashMap as Map;\nfn f() { let m = Map::new(); }\n";
        let f = run(src, &Scope::default());
        assert!(
            f.iter().any(|f| f.check == "default-hasher" && f.line == 2),
            "aliased usage line not flagged: {f:?}"
        );
    }

    #[test]
    fn flags_grouped_alias() {
        let src =
            "use std::collections::{BTreeMap, HashSet as Fast};\nfn f() { let s = Fast::new(); }\n";
        let f = run(src, &Scope::default());
        assert!(f.iter().any(|f| f.check == "default-hasher" && f.line == 2));
    }

    #[test]
    fn flags_entropy_rng_and_wall_clock() {
        let src = "fn f() {\nlet r = rand::thread_rng();\nlet s = SmallRng::from_entropy();\nlet t = std::time::Instant::now();\nlet u = SystemTime::now();\n}\n";
        let c = checks(src, &Scope::default());
        assert_eq!(
            c,
            ["entropy-rng", "entropy-rng", "wall-clock", "wall-clock"]
        );
    }

    #[test]
    fn flags_truncating_casts_token_aware() {
        let src = "fn f() {\nlet a = x as u8;\nlet b = y as u16;\nlet c = v.len() as u32;\nlet d = m.index() as u32;\n}\n";
        let c = checks(src, &Scope::default());
        assert_eq!(c.iter().filter(|c| **c == "id-truncation").count(), 4);
    }

    #[test]
    fn widening_casts_are_fine() {
        let src = "fn f() { let a = x as u64; let b = y as usize; let c = z as u32; }\n";
        assert!(run(src, &Scope::default()).is_empty());
    }

    #[test]
    fn comments_and_doc_examples_do_not_trip() {
        let src = "/// let m = HashMap::new(); // doc example\n// thread_rng() as u8\n/* Instant::now() */\nfn f() {}\n";
        assert!(run(src, &Scope::default()).is_empty());
    }

    #[test]
    fn strings_do_not_hide_code() {
        let src = "fn f() { let s = \"//\"; let t = std::time::Instant::now(); }\n";
        let c = checks(src, &Scope::default());
        assert_eq!(c, ["wall-clock"]);
    }

    fn panic_scope() -> Scope {
        Scope {
            panics: true,
            ..Scope::default()
        }
    }

    #[test]
    fn panic_inventory_catches_each_kind() {
        let src = r#"
            fn f(v: &[u32], o: Option<u32>) -> u32 {
                let a = o.unwrap();
                let b = o.expect("present");
                if v.is_empty() { panic!("empty"); }
                if a > 9 { unreachable!(); }
                v[0] + b
            }
        "#;
        let c = checks(src, &panic_scope());
        assert_eq!(
            c,
            [
                "panic-unwrap",
                "panic-expect",
                "panic-macro",
                "panic-macro",
                "panic-index"
            ]
        );
    }

    #[test]
    fn panic_checks_skip_tests() {
        let src = r#"
            fn lib(v: &[u32]) -> u32 { v[0] }
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { let x = Some(1).unwrap(); assert_eq!(x, data[0]); }
            }
        "#;
        let f = run(src, &panic_scope());
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].check, "panic-index");
        assert_eq!(f[0].context.as_deref(), Some("lib"));
    }

    #[test]
    fn index_heuristic_skips_patterns_attrs_and_types() {
        let src = r#"
            #[derive(Debug)]
            struct S { a: [u32; 4] }
            fn f(s: &S, v: Vec<u32>) -> u32 {
                let [x, y] = [1, 2];
                let arr = [0u32; 8];
                s.a[0]
                    + v[1]
                    + x + y
                    + arr[2]
            }
        "#;
        let c = checks(src, &panic_scope());
        assert_eq!(c, ["panic-index", "panic-index", "panic-index"]);
    }

    #[test]
    fn unwrap_or_variants_are_not_panics() {
        let src = "fn f(o: Option<u32>) -> u32 { o.unwrap_or(0) + o.unwrap_or_default() + o.unwrap_or_else(|| 1) }\n";
        assert!(run(src, &panic_scope()).is_empty());
    }

    fn gate_scope() -> Scope {
        Scope {
            gates: true,
            ..Scope::default()
        }
    }

    #[test]
    fn gated_hooks_pass_ungated_fail() {
        let src = r#"
            fn f() {
                #[cfg(feature = "obs")]
                let _span = mlpart_obs::span("match");
                mlpart_audit::check_partition(&p);
            }
        "#;
        let f = run(src, &gate_scope());
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].check, "ungated-hook");
        assert!(f[0].snippet.contains("mlpart_audit"));
    }

    #[test]
    fn inherited_module_gating_counts() {
        let src = "pub fn hook() { mlpart_audit::check(); }\n";
        let mut scope = gate_scope();
        let f = run(src, &scope);
        assert_eq!(f.len(), 1);
        scope.inherited_features = vec!["audit".into()];
        assert!(run(src, &scope).is_empty());
    }

    #[test]
    fn alloc_hook_requires_the_stricter_obs_alloc_gate() {
        // A crate-level `obs` gate is not enough for the allocation
        // tracker: the `alloc` module only compiles under `obs-alloc`.
        let under_obs = r#"
            fn f() {
                #[cfg(feature = "obs")]
                {
                    mlpart_obs::alloc::reset_thread_tallies();
                }
            }
        "#;
        assert_eq!(checks(under_obs, &gate_scope()), ["ungated-hook"]);
        let under_alloc = r#"
            fn f() {
                #[cfg(feature = "obs-alloc")]
                {
                    mlpart_obs::alloc::reset_thread_tallies();
                }
            }
        "#;
        assert!(run(under_alloc, &gate_scope()).is_empty());
    }

    #[test]
    fn metrics_hook_needs_only_the_obs_gate() {
        let src = r#"
            fn f() {
                #[cfg(feature = "obs")]
                {
                    let r = mlpart_obs::metrics::Registry::from_trace(&t);
                }
            }
        "#;
        assert!(run(src, &gate_scope()).is_empty());
    }

    #[test]
    fn inherited_obs_alloc_module_gating_counts() {
        let src = "pub fn hook() { mlpart_obs::alloc::snapshot(); }\n";
        let mut scope = gate_scope();
        assert_eq!(checks(src, &scope), ["ungated-hook"]);
        // Inheriting plain `obs` from a gated `mod` is still not enough…
        scope.inherited_features = vec!["obs".into()];
        assert_eq!(checks(src, &scope), ["ungated-hook"]);
        // …but inheriting `obs-alloc` is.
        scope.inherited_features = vec!["obs-alloc".into()];
        assert!(run(src, &scope).is_empty());
    }

    #[test]
    fn gated_use_import_is_fine_ungated_is_not() {
        let gated = "#[cfg(feature = \"fault\")]\nuse mlpart_fault::plan::Plan;\n";
        assert!(run(gated, &gate_scope()).is_empty());
        let ungated = "use mlpart_fault::plan::Plan;\n";
        assert_eq!(checks(ungated, &gate_scope()), ["ungated-hook"]);
    }

    #[test]
    fn debug_print_denied_outside_tests() {
        let src = r#"
            fn f() {
                println!("cut = {}", cut);
                dbg!(cut);
            }
            #[cfg(test)]
            mod tests {
                fn t() { println!("ok in tests"); }
            }
        "#;
        let scope = Scope {
            debug_print: true,
            ..Scope::default()
        };
        let c = checks(src, &scope);
        assert_eq!(c, ["debug-print", "debug-print"]);
    }
}
