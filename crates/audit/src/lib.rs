//! Runtime invariant auditor for the mlpart workspace.
//!
//! The paper's results hinge on internal consistency that release builds
//! normally only spot-check: CSR hypergraphs must stay mirror-consistent,
//! gain buckets must agree with recomputed FM gains, and Definition-2
//! projection must preserve cut bit-exactly at every uncoarsening level.
//! This crate is Part A of the workspace's verification layer: structure
//! checkers that algorithm crates invoke at phase boundaries behind the
//! `audit` cargo feature plus an `MLPART_AUDIT=1` environment gate.
//!
//! Checkers return a structured [`AuditError`] (structure, check, level,
//! pass, offending module/net) instead of panicking; the call sites funnel
//! failures through [`enforce`], which formats the report before aborting.
//!
//! Checkers for engine-internal state (`RefineState`, k-way gain tables)
//! live inside `mlpart-fm` / `mlpart-kway` behind their own `audit`
//! features — they need private context this crate cannot see — and reuse
//! the [`AuditError`] type and the [`enabled`]/[`enforce`] gates from here.
//!
//! # Examples
//!
//! ```
//! use mlpart_audit::{audit_hypergraph, Audit};
//! use mlpart_hypergraph::HypergraphBuilder;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = HypergraphBuilder::with_unit_areas(4);
//! b.add_net([0usize, 1])?;
//! b.add_net([1usize, 2, 3])?;
//! let h = b.build()?;
//! assert!(audit_hypergraph(&h).is_ok());
//! assert!(h.audit().is_ok()); // same check via the trait
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use mlpart_hypergraph::{metrics, Hypergraph, Partition};
use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// A structured audit failure: which structure broke which invariant, where.
///
/// `level` and `pass` are attached by call sites that know their multilevel
/// or FM-pass context; `module`/`net` identify the offending element when
/// the checker can localize the violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditError {
    /// The audited structure, e.g. `"Hypergraph"` or `"RefineState"`.
    pub structure: &'static str,
    /// The violated invariant, e.g. `"pins-dedup"` or `"gain-recompute"`.
    pub check: &'static str,
    /// Human-readable specifics (expected vs. observed values).
    pub detail: String,
    /// Offending module index, when localizable.
    pub module: Option<usize>,
    /// Offending net index, when localizable.
    pub net: Option<usize>,
    /// Multilevel hierarchy level, when known by the call site.
    pub level: Option<usize>,
    /// Refinement pass number, when known by the call site.
    pub pass: Option<usize>,
}

impl AuditError {
    /// Creates an error with no location attached.
    pub fn new(structure: &'static str, check: &'static str, detail: String) -> Self {
        AuditError {
            structure,
            check,
            detail,
            module: None,
            net: None,
            level: None,
            pass: None,
        }
    }

    /// Attaches the offending module index.
    #[must_use]
    pub fn with_module(mut self, v: usize) -> Self {
        self.module = Some(v);
        self
    }

    /// Attaches the offending net index.
    #[must_use]
    pub fn with_net(mut self, e: usize) -> Self {
        self.net = Some(e);
        self
    }

    /// Attaches the multilevel level index.
    #[must_use]
    pub fn with_level(mut self, level: usize) -> Self {
        self.level = Some(level);
        self
    }

    /// Attaches the refinement pass number.
    #[must_use]
    pub fn with_pass(mut self, pass: usize) -> Self {
        self.pass = Some(pass);
        self
    }
}

impl fmt::Display for AuditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "audit[{}::{}]", self.structure, self.check)?;
        if let Some(level) = self.level {
            write!(f, " level={level}")?;
        }
        if let Some(pass) = self.pass {
            write!(f, " pass={pass}")?;
        }
        if let Some(v) = self.module {
            write!(f, " module={v}")?;
        }
        if let Some(e) = self.net {
            write!(f, " net={e}")?;
        }
        write!(f, ": {}", self.detail)
    }
}

impl std::error::Error for AuditError {}

/// Result of one audit: `Ok(())` or the first violation found.
pub type AuditResult = Result<(), AuditError>;

/// A structure that can verify its own invariants from scratch.
pub trait Audit {
    /// Recomputes every invariant of `self` and reports the first violation.
    fn audit(&self) -> AuditResult;
}

// Runtime gate: 0 = follow MLPART_AUDIT, 1 = forced on, 2 = forced off.
static FORCE: AtomicU8 = AtomicU8::new(0);

/// True when phase-boundary audits should run.
///
/// Reads `MLPART_AUDIT` once (`"1"` enables) and caches the answer, so the
/// per-call cost inside refinement loops is one atomic load. Tests may
/// override the environment with [`force_enabled`].
pub fn enabled() -> bool {
    match FORCE.load(Ordering::Relaxed) {
        1 => return true,
        2 => return false,
        _ => {}
    }
    static ENV: OnceLock<bool> = OnceLock::new();
    *ENV.get_or_init(|| std::env::var("MLPART_AUDIT").is_ok_and(|v| v == "1"))
}

/// Overrides the `MLPART_AUDIT` environment gate for the whole process.
///
/// Intended for tests that must exercise audit hooks deterministically
/// regardless of the environment. Affects every thread. `false` returns to
/// following the environment (rather than forcing audits off), so a test
/// binary running under `MLPART_AUDIT=1` keeps auditing after the
/// forced-on test finishes.
pub fn force_enabled(on: bool) {
    FORCE.store(if on { 1 } else { 0 }, Ordering::Relaxed);
}

/// Aborts with the formatted report if an audit failed.
///
/// # Panics
///
/// Panics with the [`AuditError`] display form on `Err`.
pub fn enforce(result: AuditResult) {
    if let Err(e) = result {
        panic!("MLPART_AUDIT failure: {e}");
    }
}

/// Equality check on a tracked counter vs. its from-scratch recomputation
/// (e.g. the incremental `cut` against `best_cut` after rollback).
pub fn check_counter(
    structure: &'static str,
    check: &'static str,
    got: u64,
    want: u64,
) -> AuditResult {
    if got == want {
        Ok(())
    } else {
        Err(AuditError::new(
            structure,
            check,
            format!("tracked value {got} != recomputed {want}"),
        ))
    }
}

/// Abstract incidence view so [`audit_hypergraph`] can run both on the real
/// CSR [`Hypergraph`] and on a deliberately corrupted [`RawIncidence`] in
/// negative tests (the builder refuses to construct ill-formed graphs, so
/// corruption has to come in through a side door).
pub trait HypergraphView {
    /// Number of modules.
    fn view_modules(&self) -> usize;
    /// Number of nets.
    fn view_nets(&self) -> usize;
    /// Pin list of net `e` as raw module indices.
    fn view_pins(&self, e: usize) -> Vec<u32>;
    /// Incident-net list of module `v` as raw net indices.
    fn view_incident(&self, v: usize) -> Vec<u32>;
    /// Area of module `v`.
    fn view_area(&self, v: usize) -> u64;
    /// The structure's *cached* total area (checked against the sum).
    fn view_total_area(&self) -> u64;
    /// The structure's *cached* maximum module area.
    fn view_max_area(&self) -> u64;
    /// Weight of net `e`.
    fn view_net_weight(&self, e: usize) -> u32;
}

impl HypergraphView for Hypergraph {
    fn view_modules(&self) -> usize {
        self.num_modules()
    }
    fn view_nets(&self) -> usize {
        self.num_nets()
    }
    fn view_pins(&self, e: usize) -> Vec<u32> {
        self.pins(mlpart_hypergraph::NetId::new(e))
            .iter()
            .map(|v| v.raw())
            .collect()
    }
    fn view_incident(&self, v: usize) -> Vec<u32> {
        self.nets(mlpart_hypergraph::ModuleId::new(v))
            .iter()
            .map(|e| e.raw())
            .collect()
    }
    fn view_area(&self, v: usize) -> u64 {
        self.area(mlpart_hypergraph::ModuleId::new(v))
    }
    fn view_total_area(&self) -> u64 {
        self.total_area()
    }
    fn view_max_area(&self) -> u64 {
        self.max_area()
    }
    fn view_net_weight(&self, e: usize) -> u32 {
        self.net_weight(mlpart_hypergraph::NetId::new(e))
    }
}

/// A plain-vector incidence structure for audit tests and fixtures.
///
/// Unlike [`Hypergraph`] this can represent *broken* incidence — duplicate
/// pins, one-sided edges, stale cached totals — which is exactly what the
/// negative tests need to prove each checker fires.
#[derive(Debug, Clone, Default)]
pub struct RawIncidence {
    /// Pin lists per net.
    pub net_pins: Vec<Vec<u32>>,
    /// Incident-net lists per module.
    pub mod_nets: Vec<Vec<u32>>,
    /// Module areas.
    pub areas: Vec<u64>,
    /// Net weights.
    pub net_weights: Vec<u32>,
    /// Cached total area (what the real structure would have memoized).
    pub total_area: u64,
    /// Cached maximum module area.
    pub max_area: u64,
}

impl RawIncidence {
    /// Builds a well-formed raw view from a real hypergraph, ready for a
    /// test to corrupt one field of.
    pub fn from_hypergraph(h: &Hypergraph) -> Self {
        RawIncidence {
            net_pins: (0..h.num_nets()).map(|e| h.view_pins(e)).collect(),
            mod_nets: (0..h.num_modules()).map(|v| h.view_incident(v)).collect(),
            areas: h.areas().to_vec(),
            net_weights: h.net_weights().to_vec(),
            total_area: h.total_area(),
            max_area: h.max_area(),
        }
    }
}

impl HypergraphView for RawIncidence {
    fn view_modules(&self) -> usize {
        self.mod_nets.len()
    }
    fn view_nets(&self) -> usize {
        self.net_pins.len()
    }
    fn view_pins(&self, e: usize) -> Vec<u32> {
        self.net_pins[e].clone()
    }
    fn view_incident(&self, v: usize) -> Vec<u32> {
        self.mod_nets[v].clone()
    }
    fn view_area(&self, v: usize) -> u64 {
        self.areas[v]
    }
    fn view_total_area(&self) -> u64 {
        self.total_area
    }
    fn view_max_area(&self) -> u64 {
        self.max_area
    }
    fn view_net_weight(&self, e: usize) -> u32 {
        self.net_weights[e]
    }
}

const HG: &str = "Hypergraph";

/// Full CSR well-formedness audit: deduplicated pin lists with in-range
/// indices (the builder dedups but keeps insertion order, so pins are *not*
/// required to be sorted), strictly ascending incident-net lists,
/// mirror-consistent module↔net incidence in both directions, net sizes
/// ≥ 2, positive net weights, and cached area totals that match a
/// from-scratch recomputation. Runs in `O(pins · max degree)`.
pub fn audit_hypergraph<H: HypergraphView>(h: &H) -> AuditResult {
    let n = h.view_modules();
    let m = h.view_nets();

    for e in 0..m {
        let pins = h.view_pins(e);
        if pins.len() < 2 {
            return Err(AuditError::new(
                HG,
                "net-size",
                format!(
                    "net has {} pins; sub-2-pin nets must be dropped",
                    pins.len()
                ),
            )
            .with_net(e));
        }
        if h.view_net_weight(e) == 0 {
            return Err(
                AuditError::new(HG, "net-weight", "net weight is zero".to_string()).with_net(e),
            );
        }
        let mut sorted_pins = pins.clone();
        sorted_pins.sort_unstable();
        if sorted_pins.windows(2).any(|w| w[0] == w[1]) {
            return Err(AuditError::new(
                HG,
                "pins-dedup",
                "pin list contains a duplicate module".to_string(),
            )
            .with_net(e));
        }
        for &v in &pins {
            if (v as usize) >= n {
                return Err(AuditError::new(
                    HG,
                    "pin-range",
                    format!("pin {v} out of range for {n} modules"),
                )
                .with_net(e));
            }
            // Mirror: the pin's module must list this net.
            if !h.view_incident(v as usize).contains(&(e as u32)) {
                return Err(AuditError::new(
                    HG,
                    "mirror-module",
                    format!("net lists pin {v}, but module {v} does not list the net"),
                )
                .with_net(e)
                .with_module(v as usize));
            }
        }
    }

    let mut pin_count_by_nets = 0usize;
    for v in 0..n {
        let incident = h.view_incident(v);
        pin_count_by_nets += incident.len();
        for w in incident.windows(2) {
            if w[0] >= w[1] {
                return Err(AuditError::new(
                    HG,
                    "nets-sorted",
                    format!(
                        "incident-net list not strictly ascending at {} .. {}",
                        w[0], w[1]
                    ),
                )
                .with_module(v));
            }
        }
        for &e in &incident {
            if (e as usize) >= m {
                return Err(AuditError::new(
                    HG,
                    "net-range",
                    format!("incident net {e} out of range for {m} nets"),
                )
                .with_module(v));
            }
            // Mirror: the listed net must contain this module as a pin
            // (linear scan — pin lists keep insertion order).
            if !h.view_pins(e as usize).contains(&(v as u32)) {
                return Err(AuditError::new(
                    HG,
                    "mirror-net",
                    format!("module lists net {e}, but net {e} does not list the module"),
                )
                .with_module(v)
                .with_net(e as usize));
            }
        }
    }

    let pin_count_by_pins: usize = (0..m).map(|e| h.view_pins(e).len()).sum();
    if pin_count_by_nets != pin_count_by_pins {
        return Err(AuditError::new(
            HG,
            "pin-count",
            format!(
                "module side counts {pin_count_by_nets} pins, net side counts {pin_count_by_pins}"
            ),
        ));
    }

    let total: u64 = (0..n).map(|v| h.view_area(v)).sum();
    if total != h.view_total_area() {
        return Err(AuditError::new(
            HG,
            "total-area",
            format!(
                "cached total area {} != recomputed {total}",
                h.view_total_area()
            ),
        ));
    }
    let max = (0..n).map(|v| h.view_area(v)).max().unwrap_or(0);
    if max != h.view_max_area() {
        return Err(AuditError::new(
            HG,
            "max-area",
            format!("cached max area {} != recomputed {max}", h.view_max_area()),
        ));
    }
    Ok(())
}

impl Audit for Hypergraph {
    fn audit(&self) -> AuditResult {
        audit_hypergraph(self)
    }
}

/// Partition-vs-hypergraph consistency: assignment length, part ids in
/// range, and the balance counters (`part_areas`) equal to a from-scratch
/// per-part area recount.
pub fn audit_partition(h: &Hypergraph, p: &Partition) -> AuditResult {
    const ST: &str = "Partition";
    let k = p.k() as usize;
    if p.assignment().len() != h.num_modules() {
        return Err(AuditError::new(
            ST,
            "assignment-len",
            format!(
                "{} assignments for {} modules",
                p.assignment().len(),
                h.num_modules()
            ),
        ));
    }
    if p.part_areas().len() != k {
        return Err(AuditError::new(
            ST,
            "areas-len",
            format!("{} area counters for k={k}", p.part_areas().len()),
        ));
    }
    let mut areas = vec![0u64; k];
    for v in h.modules() {
        let part = p.part(v) as usize;
        if part >= k {
            return Err(AuditError::new(
                ST,
                "part-range",
                format!("assigned to part {part} with k={k}"),
            )
            .with_module(v.index()));
        }
        areas[part] += h.area(v);
    }
    for (part, (&tracked, &recount)) in p.part_areas().iter().zip(areas.iter()).enumerate() {
        if tracked != recount {
            return Err(AuditError::new(
                ST,
                "balance-counter",
                format!("part {part} tracks area {tracked}, recount gives {recount}"),
            ));
        }
    }
    Ok(())
}

/// Cluster-map legality per Definition 1: the map is *total* (every fine
/// module maps to an in-range cluster) and *surjective* (every cluster id
/// receives at least one module).
pub fn audit_cluster_map(map: &[u32], num_clusters: usize) -> AuditResult {
    const ST: &str = "Clustering";
    if num_clusters == 0 && !map.is_empty() {
        return Err(AuditError::new(
            ST,
            "total",
            format!("{} modules mapped into zero clusters", map.len()),
        ));
    }
    let mut hit = vec![false; num_clusters];
    for (v, &c) in map.iter().enumerate() {
        if (c as usize) >= num_clusters {
            return Err(AuditError::new(
                ST,
                "total",
                format!("maps to cluster {c}, only {num_clusters} exist"),
            )
            .with_module(v));
        }
        hit[c as usize] = true;
    }
    if let Some(empty) = hit.iter().position(|&b| !b) {
        return Err(AuditError::new(
            ST,
            "surjective",
            format!("cluster {empty} receives no module"),
        ));
    }
    Ok(())
}

/// Definition-2 projection legality: the fine solution must be exactly the
/// coarse solution pulled back through the cluster map — same `k`,
/// per-module agreement `fine_p(v) = coarse_p(map(v))`, per-part areas
/// preserved, and **cut preserved bit-exactly**.
pub fn audit_projection(
    fine: &Hypergraph,
    fine_p: &Partition,
    coarse: &Hypergraph,
    coarse_p: &Partition,
    map: &[u32],
) -> AuditResult {
    const ST: &str = "Projection";
    audit_cluster_map(map, coarse.num_modules())?;
    if map.len() != fine.num_modules() {
        return Err(AuditError::new(
            ST,
            "map-len",
            format!(
                "cluster map covers {} of {} fine modules",
                map.len(),
                fine.num_modules()
            ),
        ));
    }
    if fine_p.k() != coarse_p.k() {
        return Err(AuditError::new(
            ST,
            "k-mismatch",
            format!("fine k={} vs coarse k={}", fine_p.k(), coarse_p.k()),
        ));
    }
    for v in fine.modules() {
        let cluster = map[v.index()];
        let want = coarse_p.part(mlpart_hypergraph::ModuleId::from(cluster));
        if fine_p.part(v) != want {
            return Err(AuditError::new(
                ST,
                "pullback",
                format!(
                    "fine module in part {}, its cluster {cluster} in part {want}",
                    fine_p.part(v)
                ),
            )
            .with_module(v.index()));
        }
    }
    if fine_p.part_areas() != coarse_p.part_areas() {
        return Err(AuditError::new(
            ST,
            "area-preserved",
            format!(
                "fine part areas {:?} != coarse part areas {:?}",
                fine_p.part_areas(),
                coarse_p.part_areas()
            ),
        ));
    }
    let fine_cut = metrics::cut(fine, fine_p);
    let coarse_cut = metrics::cut(coarse, coarse_p);
    if fine_cut != coarse_cut {
        return Err(AuditError::new(
            ST,
            "cut-preserved",
            format!("projected cut {fine_cut} != coarse cut {coarse_cut} (Definition 2)"),
        ));
    }
    Ok(())
}

/// Constraint legality: every *fixed* module sits on exactly the part it was
/// pinned to. Run after every refinement phase and at every level of a
/// projection so a pin violated deep in the V-cycle is caught where it
/// happens, not at the end.
pub fn audit_fixed_assignment(
    p: &Partition,
    fixed: &[(mlpart_hypergraph::ModuleId, mlpart_hypergraph::PartId)],
) -> AuditResult {
    const ST: &str = "Constraints";
    for &(v, part) in fixed {
        if v.index() >= p.assignment().len() {
            return Err(AuditError::new(
                ST,
                "fixed-range",
                format!(
                    "fixed module out of range ({} modules)",
                    p.assignment().len()
                ),
            )
            .with_module(v.index()));
        }
        if part >= p.k() {
            return Err(AuditError::new(
                ST,
                "fixed-range",
                format!("pinned to part {part} with k={}", p.k()),
            )
            .with_module(v.index()));
        }
        if p.part(v) != part {
            return Err(AuditError::new(
                ST,
                "fixed-immovable",
                format!("pinned to part {part} but assigned to part {}", p.part(v)),
            )
            .with_module(v.index()));
        }
    }
    Ok(())
}

/// Constraint legality: every part's area lies inside its `[lo, hi]` window.
/// `bounds` is supplied as parallel `lo`/`hi` slices (one entry per part) so
/// this crate stays decoupled from the constraints type that owns them.
pub fn audit_part_bounds(p: &Partition, lo: &[u64], hi: &[u64]) -> AuditResult {
    const ST: &str = "Constraints";
    if lo.len() != p.k() as usize || hi.len() != p.k() as usize {
        return Err(AuditError::new(
            ST,
            "bounds-shape",
            format!("{}/{} window entries for k={}", lo.len(), hi.len(), p.k()),
        ));
    }
    for (part, &area) in p.part_areas().iter().enumerate() {
        if area < lo[part] || area > hi[part] {
            return Err(AuditError::new(
                ST,
                "part-bounds",
                format!(
                    "part {part} has area {area}, outside its window [{}, {}]",
                    lo[part], hi[part]
                ),
            ));
        }
    }
    Ok(())
}

/// Repair legality for the balance-repair pass: a repaired solution must
/// (a) land every part inside its `[lo, hi]` window, (b) leave every fixed
/// terminal on its pinned part, and (c) report a cut that matches a
/// from-scratch recount. Run after `repair_to_feasible` on any solution
/// the driver is about to emit.
pub fn audit_repair(
    h: &Hypergraph,
    p: &Partition,
    lo: &[u64],
    hi: &[u64],
    fixed: &[(mlpart_hypergraph::ModuleId, mlpart_hypergraph::PartId)],
    claimed_cut: u64,
) -> AuditResult {
    const ST: &str = "Repair";
    audit_fixed_assignment(p, fixed)?;
    audit_part_bounds(p, lo, hi)?;
    let actual = metrics::cut(h, p);
    if actual != claimed_cut {
        return Err(AuditError::new(
            ST,
            "cut-recount",
            format!("repair claims cut {claimed_cut}, recount says {actual}"),
        ));
    }
    Ok(())
}

/// Multi-start scatter legality for `mlpart-exec`: `claims[i]` counts how
/// many workers claimed start `i`; the work-stealing contract is exactly
/// once each.
pub fn audit_start_claims(claims: &[u32]) -> AuditResult {
    const ST: &str = "ExecScatter";
    for (i, &c) in claims.iter().enumerate() {
        if c != 1 {
            return Err(AuditError::new(
                ST,
                "claimed-once",
                format!("start {i} claimed {c} times; every start must be claimed exactly once"),
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlpart_hypergraph::HypergraphBuilder;

    fn sample() -> Hypergraph {
        let mut b = HypergraphBuilder::with_unit_areas(6);
        b.add_net([0usize, 1]).unwrap();
        b.add_net([1usize, 2, 3]).unwrap();
        b.add_net([3usize, 4, 5]).unwrap();
        b.add_net([0usize, 5]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn real_hypergraph_passes() {
        let h = sample();
        assert_eq!(h.audit(), Ok(()));
        assert_eq!(audit_hypergraph(&RawIncidence::from_hypergraph(&h)), Ok(()));
    }

    #[test]
    fn fixed_assignment_checker_accepts_and_rejects() {
        use mlpart_hypergraph::ModuleId;
        let h = sample();
        let p = Partition::from_assignment(&h, 2, vec![0, 0, 0, 1, 1, 1]).unwrap();
        let pins = vec![(ModuleId::new(0), 0), (ModuleId::new(4), 1)];
        assert_eq!(audit_fixed_assignment(&p, &pins), Ok(()));
        let bad = vec![(ModuleId::new(0), 1)];
        let e = audit_fixed_assignment(&p, &bad).unwrap_err();
        assert_eq!(e.check, "fixed-immovable");
        assert_eq!(e.module, Some(0));
        let oob = vec![(ModuleId::new(99), 0)];
        assert_eq!(
            audit_fixed_assignment(&p, &oob).unwrap_err().check,
            "fixed-range"
        );
        let bad_part = vec![(ModuleId::new(0), 7)];
        assert_eq!(
            audit_fixed_assignment(&p, &bad_part).unwrap_err().check,
            "fixed-range"
        );
    }

    #[test]
    fn part_bounds_checker_accepts_and_rejects() {
        let h = sample();
        let p = Partition::from_assignment(&h, 2, vec![0, 0, 0, 1, 1, 1]).unwrap();
        assert_eq!(audit_part_bounds(&p, &[2, 2], &[4, 4]), Ok(()));
        let e = audit_part_bounds(&p, &[4, 2], &[6, 4]).unwrap_err();
        assert_eq!(e.check, "part-bounds");
        assert!(e.detail.contains("part 0"), "{e}");
        assert_eq!(
            audit_part_bounds(&p, &[0], &[9]).unwrap_err().check,
            "bounds-shape"
        );
    }

    #[test]
    fn repair_checker_accepts_and_rejects() {
        use mlpart_hypergraph::ModuleId;
        let h = sample();
        let p = Partition::from_assignment(&h, 2, vec![0, 0, 0, 1, 1, 1]).unwrap();
        let good_cut = metrics::cut(&h, &p);
        let pins = vec![(ModuleId::new(0), 0)];
        assert_eq!(
            audit_repair(&h, &p, &[2, 2], &[4, 4], &pins, good_cut),
            Ok(())
        );
        // A lying cut claim is caught by the recount.
        let e = audit_repair(&h, &p, &[2, 2], &[4, 4], &pins, good_cut + 1).unwrap_err();
        assert_eq!(e.check, "cut-recount");
        // Out-of-window parts and violated pins fail through the shared
        // checkers.
        assert_eq!(
            audit_repair(&h, &p, &[4, 2], &[6, 4], &pins, good_cut)
                .unwrap_err()
                .check,
            "part-bounds"
        );
        let bad_pin = vec![(ModuleId::new(0), 1)];
        assert_eq!(
            audit_repair(&h, &p, &[2, 2], &[4, 4], &bad_pin, good_cut)
                .unwrap_err()
                .check,
            "fixed-immovable"
        );
    }

    #[test]
    fn accepts_unsorted_pin_order() {
        // The builder keeps pin insertion order, so reversed pins are legal
        // as long as both mirror directions agree.
        let mut raw = RawIncidence::from_hypergraph(&sample());
        raw.net_pins[1].reverse();
        assert_eq!(audit_hypergraph(&raw), Ok(()));
    }

    #[test]
    fn detects_duplicate_pin() {
        let mut raw = RawIncidence::from_hypergraph(&sample());
        raw.net_pins[1][1] = raw.net_pins[1][0];
        let err = audit_hypergraph(&raw).unwrap_err();
        assert_eq!(err.check, "pins-dedup");
        assert_eq!(err.net, Some(1));
    }

    #[test]
    fn detects_one_sided_edge() {
        let mut raw = RawIncidence::from_hypergraph(&sample());
        // Net 1 keeps its pin on module 2, but module 2 forgets net 1.
        raw.mod_nets[2].retain(|&e| e != 1);
        let err = audit_hypergraph(&raw).unwrap_err();
        assert_eq!(err.check, "mirror-module");
        assert_eq!((err.net, err.module), (Some(1), Some(2)));
    }

    #[test]
    fn detects_phantom_incidence() {
        let mut raw = RawIncidence::from_hypergraph(&sample());
        // Module 0 claims membership in net 1, which does not list it.
        raw.mod_nets[0] = vec![0, 1, 3];
        let err = audit_hypergraph(&raw).unwrap_err();
        assert_eq!(err.check, "mirror-net");
        assert_eq!((err.module, err.net), (Some(0), Some(1)));
    }

    #[test]
    fn detects_stale_total_area() {
        let mut raw = RawIncidence::from_hypergraph(&sample());
        raw.total_area += 7;
        assert_eq!(audit_hypergraph(&raw).unwrap_err().check, "total-area");
    }

    #[test]
    fn detects_stale_max_area() {
        let mut raw = RawIncidence::from_hypergraph(&sample());
        raw.areas[3] = 5; // real max changes, cache keeps claiming 1
        raw.total_area += 4;
        assert_eq!(audit_hypergraph(&raw).unwrap_err().check, "max-area");
    }

    #[test]
    fn detects_undersized_net() {
        let mut raw = RawIncidence::from_hypergraph(&sample());
        raw.net_pins[0].pop();
        assert_eq!(audit_hypergraph(&raw).unwrap_err().check, "net-size");
    }

    #[test]
    fn detects_zero_weight() {
        let mut raw = RawIncidence::from_hypergraph(&sample());
        raw.net_weights[2] = 0;
        assert_eq!(audit_hypergraph(&raw).unwrap_err().check, "net-weight");
    }

    #[test]
    fn partition_consistent_passes() {
        let h = sample();
        let p = Partition::from_assignment(&h, 2, vec![0, 0, 0, 1, 1, 1]).unwrap();
        assert_eq!(audit_partition(&h, &p), Ok(()));
    }

    #[test]
    fn partition_balance_counter_mismatch_fires() {
        let h = sample();
        // Build the partition against a different-area hypergraph: its
        // cached part areas no longer match a recount against `h`.
        let mut b = HypergraphBuilder::new(vec![3u64; 6]);
        b.add_net([0usize, 1]).unwrap();
        b.add_net([4usize, 5]).unwrap();
        let other = b.build().unwrap();
        let p = Partition::from_assignment(&other, 2, vec![0, 0, 0, 1, 1, 1]).unwrap();
        let err = audit_partition(&h, &p).unwrap_err();
        assert_eq!(err.check, "balance-counter");
    }

    #[test]
    fn cluster_map_total_and_surjective() {
        assert_eq!(audit_cluster_map(&[0, 1, 1, 0], 2), Ok(()));
        let err = audit_cluster_map(&[0, 3, 1, 0], 2).unwrap_err();
        assert_eq!(err.check, "total");
        assert_eq!(err.module, Some(1));
        let err = audit_cluster_map(&[0, 0, 2, 0], 3).unwrap_err();
        assert_eq!(err.check, "surjective");
    }

    #[test]
    fn projection_pullback_violation_fires() {
        let fine = sample();
        let mut b = HypergraphBuilder::new(vec![2u64, 2, 2]);
        b.add_net([0usize, 1]).unwrap();
        b.add_net([0usize, 2]).unwrap();
        b.add_net([1usize, 2]).unwrap();
        let coarse = b.build().unwrap();
        let map = [0u32, 0, 1, 1, 2, 2];
        let coarse_p = Partition::from_assignment(&coarse, 2, vec![0, 1, 1]).unwrap();
        let good = Partition::from_assignment(&fine, 2, vec![0, 0, 1, 1, 1, 1]).unwrap();
        assert_eq!(
            audit_projection(&fine, &good, &coarse, &coarse_p, &map),
            Ok(())
        );

        let bad = Partition::from_assignment(&fine, 2, vec![0, 1, 1, 1, 1, 1]).unwrap();
        let err = audit_projection(&fine, &bad, &coarse, &coarse_p, &map).unwrap_err();
        assert_eq!(err.check, "pullback");
        assert_eq!(err.module, Some(1));
    }

    #[test]
    fn projection_cut_violation_fires() {
        // Fine: one 2-pin net crossing the cut. "Coarse": same two modules
        // but no nets at all — pullback holds vacuously, cut differs.
        let mut b = HypergraphBuilder::with_unit_areas(2);
        b.add_net([0usize, 1]).unwrap();
        let fine = b.build().unwrap();
        let coarse = HypergraphBuilder::with_unit_areas(2).build().unwrap();
        let map = [0u32, 1];
        let fine_p = Partition::from_assignment(&fine, 2, vec![0, 1]).unwrap();
        let coarse_p = Partition::from_assignment(&coarse, 2, vec![0, 1]).unwrap();
        let err = audit_projection(&fine, &fine_p, &coarse, &coarse_p, &map).unwrap_err();
        assert_eq!(err.check, "cut-preserved");
    }

    #[test]
    fn start_claims_exactly_once() {
        assert_eq!(audit_start_claims(&[1, 1, 1]), Ok(()));
        assert_eq!(
            audit_start_claims(&[1, 0, 1]).unwrap_err().check,
            "claimed-once"
        );
        assert_eq!(
            audit_start_claims(&[1, 2, 1]).unwrap_err().check,
            "claimed-once"
        );
    }

    #[test]
    fn counter_check_and_enforce() {
        assert_eq!(check_counter("RefineState", "cut-rollback", 4, 4), Ok(()));
        let err = check_counter("RefineState", "cut-rollback", 4, 5).unwrap_err();
        let msg = format!("{}", err.with_level(2).with_pass(1));
        assert!(msg.contains("RefineState::cut-rollback"), "{msg}");
        assert!(msg.contains("level=2"), "{msg}");
        assert!(msg.contains("pass=1"), "{msg}");
    }

    #[test]
    #[should_panic(expected = "MLPART_AUDIT failure")]
    fn enforce_panics_with_report() {
        enforce(Err(AuditError::new("X", "y", "boom".into())));
    }
}
