//! Criterion benches for the flat iterative engines (paper Tables II & III):
//! FM with each bucket policy, and CLIP, on a small suite circuit. The
//! wall-clock columns of those tables come from these code paths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mlpart_bench::algos;
use mlpart_fm::BucketPolicy;
use mlpart_gen::by_name;
use mlpart_hypergraph::rng::seeded_rng;

fn bench_table2_policies(c: &mut Criterion) {
    let h = by_name("balu").expect("in suite").generate(1997);
    let mut group = c.benchmark_group("table2_fm_bucket_policy");
    group.sample_size(10);
    for policy in [BucketPolicy::Lifo, BucketPolicy::Fifo, BucketPolicy::Random] {
        group.bench_with_input(
            BenchmarkId::from_parameter(policy),
            &policy,
            |b, &policy| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    let mut rng = seeded_rng(seed);
                    algos::fm_with_policy(&h, policy, &mut rng)
                });
            },
        );
    }
    group.finish();
}

fn bench_table3_fm_vs_clip(c: &mut Criterion) {
    let h = by_name("primary1").expect("in suite").generate(1997);
    let mut group = c.benchmark_group("table3_fm_vs_clip");
    group.sample_size(10);
    group.bench_function("fm", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut rng = seeded_rng(seed);
            algos::fm(&h, &mut rng)
        });
    });
    group.bench_function("clip", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut rng = seeded_rng(seed);
            algos::clip(&h, &mut rng)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_table2_policies, bench_table3_fm_vs_clip);
criterion_main!(benches);
