//! Criterion benches for the multilevel algorithm (paper Tables IV-VI and
//! Figure 4): full ML runs at each matching ratio, plus the coarsening phase
//! in isolation — the CPU columns of those tables come from these paths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mlpart_bench::algos;
use mlpart_core::{Hierarchy, MlConfig};
use mlpart_gen::by_name;
use mlpart_hypergraph::rng::seeded_rng;

fn bench_table4_clip_vs_ml(c: &mut Criterion) {
    let h = by_name("balu").expect("in suite").generate(1997);
    let mut group = c.benchmark_group("table4_clip_vs_ml");
    group.sample_size(10);
    group.bench_function("clip", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut rng = seeded_rng(seed);
            algos::clip(&h, &mut rng)
        });
    });
    group.bench_function("ml_f", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut rng = seeded_rng(seed);
            algos::ml_f(&h, 1.0, &mut rng)
        });
    });
    group.bench_function("ml_c", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut rng = seeded_rng(seed);
            algos::ml_c(&h, 1.0, &mut rng)
        });
    });
    group.finish();
}

fn bench_tables56_matching_ratio(c: &mut Criterion) {
    let h = by_name("primary1").expect("in suite").generate(1997);
    let mut group = c.benchmark_group("tables56_ml_c_by_ratio");
    group.sample_size(10);
    for ratio in [1.0, 0.5, 0.33] {
        group.bench_with_input(BenchmarkId::from_parameter(ratio), &ratio, |b, &r| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut rng = seeded_rng(seed);
                algos::ml_c(&h, r, &mut rng)
            });
        });
    }
    group.finish();
}

fn bench_coarsening_phase(c: &mut Criterion) {
    let h = by_name("primary2").expect("in suite").generate(1997);
    let mut group = c.benchmark_group("coarsening_phase");
    group.sample_size(10);
    for ratio in [1.0, 0.5] {
        group.bench_with_input(BenchmarkId::from_parameter(ratio), &ratio, |b, &r| {
            let cfg = MlConfig::default().with_ratio(r);
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut rng = seeded_rng(seed);
                Hierarchy::coarsen(&h, &cfg, &[], &mut rng).num_levels()
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_table4_clip_vs_ml,
    bench_tables56_matching_ratio,
    bench_coarsening_phase
);
criterion_main!(benches);
