//! Criterion benches for the multilevel algorithm (paper Tables IV-VI and
//! Figure 4): full ML runs at each matching ratio, plus the coarsening phase
//! in isolation — the CPU columns of those tables come from these paths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mlpart_bench::algos;
use mlpart_core::{Hierarchy, MlConfig};
use mlpart_fm::{refine, refine_in, FmConfig, RefineWorkspace};
use mlpart_gen::by_name;
use mlpart_hypergraph::rng::seeded_rng;
use mlpart_hypergraph::Partition;

fn bench_table4_clip_vs_ml(c: &mut Criterion) {
    let h = by_name("balu").expect("in suite").generate(1997);
    let mut group = c.benchmark_group("table4_clip_vs_ml");
    group.sample_size(10);
    group.bench_function("clip", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut rng = seeded_rng(seed);
            algos::clip(&h, &mut rng)
        });
    });
    group.bench_function("ml_f", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut rng = seeded_rng(seed);
            algos::ml_f(&h, 1.0, &mut rng)
        });
    });
    group.bench_function("ml_c", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut rng = seeded_rng(seed);
            algos::ml_c(&h, 1.0, &mut rng)
        });
    });
    group.finish();
}

fn bench_tables56_matching_ratio(c: &mut Criterion) {
    let h = by_name("primary1").expect("in suite").generate(1997);
    let mut group = c.benchmark_group("tables56_ml_c_by_ratio");
    group.sample_size(10);
    for ratio in [1.0, 0.5, 0.33] {
        group.bench_with_input(BenchmarkId::from_parameter(ratio), &ratio, |b, &r| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut rng = seeded_rng(seed);
                algos::ml_c(&h, r, &mut rng)
            });
        });
    }
    group.finish();
}

fn bench_coarsening_phase(c: &mut Criterion) {
    let h = by_name("primary2").expect("in suite").generate(1997);
    let mut group = c.benchmark_group("coarsening_phase");
    group.sample_size(10);
    for ratio in [1.0, 0.5] {
        group.bench_with_input(BenchmarkId::from_parameter(ratio), &ratio, |b, &r| {
            let cfg = MlConfig::default().with_ratio(r);
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut rng = seeded_rng(seed);
                Hierarchy::coarsen(&h, &cfg, &[], &mut rng).num_levels()
            });
        });
    }
    group.finish();
}

fn bench_refine_workspace(c: &mut Criterion) {
    // The allocation-reuse effect of `RefineWorkspace` on the uncoarsening
    // hot path: a multilevel run refines once per level, walking netlists
    // from ~T modules at the coarsest level up to |V₀|, so model it as that
    // exact burst over a real hierarchy. `fresh_per_call` re-allocates the
    // gain/bucket machinery for every call (the pre-workspace behavior);
    // `reused_workspace` binds one workspace repeatedly. Same seeds,
    // bit-identical cuts — only allocation differs; the coarse (small)
    // levels are where binding fresh state costs a visible fraction.
    let h = by_name("primary1").expect("in suite").generate(1997);
    let ml_cfg = MlConfig::default().with_ratio(0.5);
    let mut rng = seeded_rng(7);
    let hier = Hierarchy::coarsen(&h, &ml_cfg, &[], &mut rng);
    // Coarsest → finest, the order the V-cycle refines them.
    let levels: Vec<&mlpart_hypergraph::Hypergraph> = (1..=hier.num_levels())
        .rev()
        .map(|i| hier.level(i))
        .chain(std::iter::once(&h))
        .collect();
    let cfg = FmConfig::default();
    const V_CYCLES: usize = 4;
    let mut group = c.benchmark_group("refine_workspace");
    group.sample_size(10);
    group.bench_function("fresh_per_call", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut rng = seeded_rng(seed);
            let mut total = 0u64;
            for _ in 0..V_CYCLES {
                for lh in &levels {
                    let mut p = Partition::random(lh, 2, &mut rng);
                    total += refine(lh, &mut p, &cfg, &mut rng).cut;
                }
            }
            total
        });
    });
    group.bench_function("reused_workspace", |b| {
        let mut ws = RefineWorkspace::new();
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut rng = seeded_rng(seed);
            let mut total = 0u64;
            for _ in 0..V_CYCLES {
                for lh in &levels {
                    let mut p = Partition::random(lh, 2, &mut rng);
                    total += refine_in(lh, &mut p, &cfg, &mut rng, &mut ws).cut;
                }
            }
            total
        });
    });
    // The same comparison isolated where it matters most: a burst of calls
    // on the coarsest netlist (~threshold modules), where binding fresh
    // scratch state is a visible fraction of each call.
    let coarsest = levels[0];
    const COARSE_CALLS: usize = 256;
    group.bench_function("coarse_fresh_per_call", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut rng = seeded_rng(seed);
            let mut total = 0u64;
            for _ in 0..COARSE_CALLS {
                let mut p = Partition::random(coarsest, 2, &mut rng);
                total += refine(coarsest, &mut p, &cfg, &mut rng).cut;
            }
            total
        });
    });
    group.bench_function("coarse_reused_workspace", |b| {
        let mut ws = RefineWorkspace::new();
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut rng = seeded_rng(seed);
            let mut total = 0u64;
            for _ in 0..COARSE_CALLS {
                let mut p = Partition::random(coarsest, 2, &mut rng);
                total += refine_in(coarsest, &mut p, &cfg, &mut rng, &mut ws).cut;
            }
            total
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_table4_clip_vs_ml,
    bench_tables56_matching_ratio,
    bench_coarsening_phase,
    bench_refine_workspace
);
criterion_main!(benches);
