//! Criterion benches for 4-way partitioning (paper Table IX): multilevel
//! quadrisection, the flat k-way engine, and the GORDIAN-analogue placer.

use criterion::{criterion_group, criterion_main, Criterion};
use mlpart_bench::algos;
use mlpart_gen::by_name;
use mlpart_hypergraph::rng::seeded_rng;
use mlpart_place::{gordian_quadrisection, PlacerConfig};

fn bench_table9_quadrisection(c: &mut Criterion) {
    let (h, pads) = by_name("balu").expect("in suite").generate_with_pads(1997);
    let mut group = c.benchmark_group("table9_quadrisection");
    group.sample_size(10);
    group.bench_function("ml4", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut rng = seeded_rng(seed);
            algos::ml4(&h, &[], &mut rng)
        });
    });
    group.bench_function("fm4", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut rng = seeded_rng(seed);
            algos::fm4(&h, &mut rng)
        });
    });
    group.bench_function("gordian", |b| {
        b.iter(|| gordian_quadrisection(&h, &pads, &PlacerConfig::default()).0)
    });
    group.bench_function("gordian_l", |b| {
        b.iter(|| gordian_quadrisection(&h, &pads, &PlacerConfig::gordian_l()).0)
    });
    group.finish();
}

criterion_group!(benches, bench_table9_quadrisection);
criterion_main!(benches);
