//! Criterion microbenches for the substrate operations every experiment is
//! built from: netlist construction, matching, inducing, cut evaluation,
//! and a single FM pass. These bound the per-table costs and catch
//! performance regressions in the data structures.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mlpart_cluster::{induce, match_clusters, MatchConfig};
use mlpart_fm::{refine, FmConfig};
use mlpart_gen::by_name;
use mlpart_hypergraph::rng::seeded_rng;
use mlpart_hypergraph::{metrics, Partition};

fn bench_substrates(c: &mut Criterion) {
    let circuit = by_name("primary2").expect("in suite");
    let h = circuit.generate(1997);
    let mut group = c.benchmark_group("substrates");
    group.sample_size(20);
    group.throughput(Throughput::Elements(h.num_pins() as u64));

    group.bench_function("generate", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            circuit.generate(seed)
        });
    });

    group.bench_function("match_r1", |b| {
        let mut rng = seeded_rng(0);
        b.iter(|| match_clusters(&h, &MatchConfig::default(), &mut rng));
    });

    let mut rng = seeded_rng(1);
    let clustering = match_clusters(&h, &MatchConfig::default(), &mut rng);
    group.bench_function("induce", |b| {
        b.iter(|| induce(&h, &clustering));
    });

    let p = Partition::random(&h, 2, &mut rng);
    group.bench_function("cut", |b| {
        b.iter(|| metrics::cut(&h, &p));
    });

    group.bench_function("fm_refine_from_random", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut rng = seeded_rng(seed);
            let mut p = Partition::random(&h, 2, &mut rng);
            refine(&h, &mut p, &FmConfig::default(), &mut rng).cut
        });
    });

    // §V's fast bucket reinitialization: identical results, less per-pass
    // setup — this pair quantifies the saving.
    group.bench_function("fm_refine_incremental_reinit", |b| {
        let cfg = FmConfig {
            incremental_reinit: true,
            ..FmConfig::default()
        };
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut rng = seeded_rng(seed);
            let mut p = Partition::random(&h, 2, &mut rng);
            refine(&h, &mut p, &cfg, &mut rng).cut
        });
    });
    group.finish();
}

criterion_group!(benches, bench_substrates);
criterion_main!(benches);
