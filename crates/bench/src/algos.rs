//! One-call wrappers around every algorithm the tables compare, so each
//! harness binary stays declarative.
//!
//! Every wrapper with an `_in` twin routes through the engines' `*_in`
//! workspace-reuse entry points; results are bit-identical either way (the
//! `*_in` contract), so the parallel runner can hand each worker thread one
//! long-lived [`RefineWorkspace`] without changing any table number.

use mlpart_core::{
    ml_bipartition_constrained_in, ml_bipartition_in, ml_kway_constrained_in, ml_kway_in,
    recursive_ml_partition_budgeted_in, BudgetMeter, MlConfig, MlKwayConfig,
};
use mlpart_fm::{fm_partition_in, BucketPolicy, Engine, FmConfig, RefineWorkspace};
use mlpart_hypergraph::rng::MlRng;
use mlpart_hypergraph::{Constraints, Hypergraph, ModuleId, PartId, Partition};
use mlpart_kway::{kway_partition_in, KwayConfig};
use mlpart_lsmc::{lsmc_bipartition, lsmc_kway, LsmcConfig, LsmcKwayConfig};
use mlpart_place::{gordian_quadrisection, PlacerConfig};

/// Flat FM with the given bucket policy; returns the cut.
pub fn fm_with_policy(h: &Hypergraph, policy: BucketPolicy, rng: &mut MlRng) -> u64 {
    fm_with_policy_in(h, policy, rng, &mut RefineWorkspace::new())
}

/// [`fm_with_policy`] through a caller-owned workspace.
pub fn fm_with_policy_in(
    h: &Hypergraph,
    policy: BucketPolicy,
    rng: &mut MlRng,
    ws: &mut RefineWorkspace,
) -> u64 {
    let cfg = FmConfig {
        policy,
        ..FmConfig::default()
    };
    fm_partition_in(h, None, &cfg, rng, ws).1.cut
}

/// Flat FM (LIFO buckets); Table III baseline.
pub fn fm(h: &Hypergraph, rng: &mut MlRng) -> u64 {
    fm_in(h, rng, &mut RefineWorkspace::new())
}

/// [`fm`] through a caller-owned workspace.
pub fn fm_in(h: &Hypergraph, rng: &mut MlRng, ws: &mut RefineWorkspace) -> u64 {
    fm_with_policy_in(h, BucketPolicy::Lifo, rng, ws)
}

/// Flat CLIP (LIFO buckets); Tables III/IV baseline.
pub fn clip(h: &Hypergraph, rng: &mut MlRng) -> u64 {
    clip_in(h, rng, &mut RefineWorkspace::new())
}

/// [`clip`] through a caller-owned workspace.
pub fn clip_in(h: &Hypergraph, rng: &mut MlRng, ws: &mut RefineWorkspace) -> u64 {
    let cfg = FmConfig {
        engine: Engine::Clip,
        ..FmConfig::default()
    };
    fm_partition_in(h, None, &cfg, rng, ws).1.cut
}

/// `ML_F` with matching ratio `r`.
pub fn ml_f(h: &Hypergraph, r: f64, rng: &mut MlRng) -> u64 {
    ml_f_in(h, r, rng, &mut RefineWorkspace::new())
}

/// [`ml_f`] through a caller-owned workspace.
pub fn ml_f_in(h: &Hypergraph, r: f64, rng: &mut MlRng, ws: &mut RefineWorkspace) -> u64 {
    ml_bipartition_in(h, &MlConfig::fm().with_ratio(r), rng, ws)
        .1
        .cut
}

/// `ML_C` with matching ratio `r`.
pub fn ml_c(h: &Hypergraph, r: f64, rng: &mut MlRng) -> u64 {
    ml_c_in(h, r, rng, &mut RefineWorkspace::new())
}

/// [`ml_c`] through a caller-owned workspace.
pub fn ml_c_in(h: &Hypergraph, r: f64, rng: &mut MlRng, ws: &mut RefineWorkspace) -> u64 {
    ml_bipartition_in(h, &MlConfig::clip().with_ratio(r), rng, ws)
        .1
        .cut
}

/// 2-way LSMC with FM descents, `descents` long; Table VII baseline. (The
/// LSMC chain has no workspace-reuse entry point yet; parallel callers pass
/// it a closure that ignores the worker workspace.)
pub fn lsmc(h: &Hypergraph, descents: usize, rng: &mut MlRng) -> u64 {
    let cfg = LsmcConfig {
        descents,
        ..LsmcConfig::default()
    };
    lsmc_bipartition(h, &cfg, rng).1.cut
}

/// Flat 4-way FM-style engine (net-cut gain); Table IX baseline.
pub fn fm4(h: &Hypergraph, rng: &mut MlRng) -> u64 {
    fm4_in(h, rng, &mut RefineWorkspace::new())
}

/// [`fm4`] through a caller-owned workspace.
pub fn fm4_in(h: &Hypergraph, rng: &mut MlRng, ws: &mut RefineWorkspace) -> u64 {
    kway_partition_in(h, 4, None, &[], &KwayConfig::default(), &mut *rng, ws)
        .1
        .cut
}

/// Flat 4-way with LIFO buckets seeded like CLIP is not defined for the
/// k-way engine; the paper's 4-way "CLIP" column is approximated by the
/// k-way engine with net-cut gain (its selectivity behaves similarly).
pub fn clip4(h: &Hypergraph, rng: &mut MlRng) -> u64 {
    clip4_in(h, rng, &mut RefineWorkspace::new())
}

/// [`clip4`] through a caller-owned workspace.
pub fn clip4_in(h: &Hypergraph, rng: &mut MlRng, ws: &mut RefineWorkspace) -> u64 {
    let cfg = KwayConfig {
        gain: mlpart_kway::KwayGain::NetCut,
        ..KwayConfig::default()
    };
    kway_partition_in(h, 4, None, &[], &cfg, &mut *rng, ws)
        .1
        .cut
}

/// 4-way LSMC with the default (sum-of-degrees) descent engine.
pub fn lsmc4_f(h: &Hypergraph, descents: usize, rng: &mut MlRng) -> u64 {
    let cfg = LsmcKwayConfig {
        descents,
        ..LsmcKwayConfig::default()
    };
    lsmc_kway(h, 4, &cfg, rng).1.cut
}

/// 4-way LSMC with the net-cut descent engine.
pub fn lsmc4_c(h: &Hypergraph, descents: usize, rng: &mut MlRng) -> u64 {
    let cfg = LsmcKwayConfig {
        descents,
        kway: KwayConfig {
            gain: mlpart_kway::KwayGain::NetCut,
            ..KwayConfig::default()
        },
        ..LsmcKwayConfig::default()
    };
    lsmc_kway(h, 4, &cfg, rng).1.cut
}

/// Multilevel quadrisection (`ML_F`, `R = 1.0`, `T = 100`), optionally with
/// pre-assigned pads; the Table IX headline algorithm.
pub fn ml4(h: &Hypergraph, fixed: &[(ModuleId, PartId)], rng: &mut MlRng) -> u64 {
    ml4_in(h, fixed, rng, &mut RefineWorkspace::new())
}

/// [`ml4`] through a caller-owned workspace.
pub fn ml4_in(
    h: &Hypergraph,
    fixed: &[(ModuleId, PartId)],
    rng: &mut MlRng,
    ws: &mut RefineWorkspace,
) -> u64 {
    ml_kway_in(h, &MlKwayConfig::default(), fixed, rng, ws)
        .1
        .cut
}

/// Panics if any pinned module ended up off its pin — the bench harness's
/// cheap end-to-end check that the constrained drivers honor fixed
/// terminals even in release builds (the audit layer is compiled out here).
fn assert_pins(p: &Partition, constraints: &Constraints) {
    for &(v, part) in constraints.fixed() {
        assert_eq!(p.part(v), part, "pinned module {v:?} moved off part {part}");
    }
}

/// Constraint-aware `ML_C` bipartition with matching ratio `r`; honors the
/// constraints' pins and ε-bounds (`constraints.k()` must be 2).
pub fn ml_c_constrained_in(
    h: &Hypergraph,
    r: f64,
    constraints: &Constraints,
    rng: &mut MlRng,
    ws: &mut RefineWorkspace,
) -> u64 {
    let cfg = MlConfig::clip()
        .with_ratio(r)
        .with_epsilon(constraints.epsilon());
    let (p, result) = ml_bipartition_constrained_in(h, &cfg, constraints, rng, ws);
    assert_pins(&p, constraints);
    result.cut
}

/// Constraint-aware multilevel quadrisection (`constraints.k()` must be 4).
pub fn ml4_constrained_in(
    h: &Hypergraph,
    constraints: &Constraints,
    rng: &mut MlRng,
    ws: &mut RefineWorkspace,
) -> u64 {
    let (p, result) = ml_kway_constrained_in(h, &MlKwayConfig::default(), constraints, rng, ws);
    assert_pins(&p, constraints);
    result.cut
}

/// Constraint-aware recursive general-k partition (any `k ≥ 1`) with
/// matching ratio `r` for each bisection level.
pub fn ml_general_k_in(
    h: &Hypergraph,
    r: f64,
    constraints: &Constraints,
    rng: &mut MlRng,
    ws: &mut RefineWorkspace,
) -> u64 {
    let cfg = MlConfig::clip()
        .with_ratio(r)
        .with_k(constraints.k())
        .with_epsilon(constraints.epsilon());
    let (p, result) = recursive_ml_partition_budgeted_in(
        h,
        &cfg,
        constraints,
        rng,
        ws,
        &mut BudgetMeter::unlimited(),
    );
    assert_pins(&p, constraints);
    result.cut
}

/// GORDIAN-style quadrisection via quadratic placement; deterministic, so
/// harnesses call it once per circuit. Returns (GORDIAN cut, GORDIAN-L cut);
/// the paper's Table IX reports the better of the two.
pub fn gordian_cuts(h: &Hypergraph, pads: &[ModuleId]) -> (u64, u64) {
    let (p_quad, _) = gordian_quadrisection(h, pads, &PlacerConfig::default());
    let (p_lin, _) = gordian_quadrisection(h, pads, &PlacerConfig::gordian_l());
    (
        mlpart_hypergraph::metrics::cut(h, &p_quad),
        mlpart_hypergraph::metrics::cut(h, &p_lin),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlpart_gen::simple::two_communities;
    use mlpart_hypergraph::rng::seeded_rng;

    #[test]
    fn all_bipartitioners_run_and_return_consistent_cuts() {
        let h = two_communities(32);
        let mut rng = seeded_rng(1);
        for f in [fm, clip] {
            let cut = f(&h, &mut rng);
            assert!(cut >= 1);
        }
        assert!(ml_f(&h, 1.0, &mut rng) >= 1);
        assert!(ml_c(&h, 0.5, &mut rng) >= 1);
        assert!(lsmc(&h, 3, &mut rng) >= 1);
    }

    #[test]
    fn all_quadrisectioners_run() {
        let h = two_communities(32);
        let mut rng = seeded_rng(2);
        assert!(fm4(&h, &mut rng) >= 1);
        assert!(clip4(&h, &mut rng) >= 1);
        assert!(lsmc4_f(&h, 2, &mut rng) >= 1);
        assert!(lsmc4_c(&h, 2, &mut rng) >= 1);
        assert!(ml4(&h, &[], &mut rng) >= 1);
    }

    #[test]
    fn workspace_variants_are_bit_identical_under_reuse() {
        // One workspace reused across every `_in` wrapper in sequence must
        // reproduce the fresh-workspace wrappers on identical seed streams.
        let h = two_communities(32);
        let mut ws = RefineWorkspace::new();
        let fresh: Vec<u64> = {
            let mut rng = seeded_rng(9);
            vec![
                fm(&h, &mut rng),
                clip(&h, &mut rng),
                ml_f(&h, 0.5, &mut rng),
                ml_c(&h, 0.5, &mut rng),
                fm4(&h, &mut rng),
                clip4(&h, &mut rng),
                ml4(&h, &[], &mut rng),
            ]
        };
        let reused: Vec<u64> = {
            let mut rng = seeded_rng(9);
            vec![
                fm_in(&h, &mut rng, &mut ws),
                clip_in(&h, &mut rng, &mut ws),
                ml_f_in(&h, 0.5, &mut rng, &mut ws),
                ml_c_in(&h, 0.5, &mut rng, &mut ws),
                fm4_in(&h, &mut rng, &mut ws),
                clip4_in(&h, &mut rng, &mut ws),
                ml4_in(&h, &[], &mut rng, &mut ws),
            ]
        };
        assert_eq!(fresh, reused);
    }

    #[test]
    fn constrained_wrappers_run_at_every_k() {
        let h = two_communities(32);
        let mut ws = RefineWorkspace::new();
        let mut rng = seeded_rng(5);
        let pins = |k: u32| vec![(ModuleId::new(0), k - 1), (ModuleId::new(40), 0)];
        let c2 = Constraints::new(2, 0.2, pins(2)).expect("valid");
        assert!(ml_c_constrained_in(&h, 0.5, &c2, &mut rng, &mut ws) >= 1);
        let c4 = Constraints::new(4, 0.2, pins(4)).expect("valid");
        assert!(ml4_constrained_in(&h, &c4, &mut rng, &mut ws) >= 1);
        let c8 = Constraints::new(8, 0.2, pins(8)).expect("valid");
        assert!(ml_general_k_in(&h, 0.5, &c8, &mut rng, &mut ws) >= 1);
    }

    #[test]
    fn gordian_wrapper_runs() {
        let h = two_communities(32);
        let pads = vec![
            ModuleId::new(0),
            ModuleId::new(33),
            ModuleId::new(16),
            ModuleId::new(50),
        ];
        let (g, gl) = gordian_cuts(&h, &pads);
        assert!(g >= 1);
        assert!(gl >= 1);
    }
}
