//! Ablation study for the design choices `DESIGN.md` calls out:
//!
//! 1. **Coarsener**: the paper's `Match` vs Chaco-style random matching vs
//!    Metis-style heavy-edge matching.
//! 2. **§V extensions**: boundary-only bucket initialization, early pass
//!    exit, multi-start at the coarsest level, and Krishnamurthy-style
//!    lookahead tie-breaking — each toggled on top of the baseline `ML_C`.
//!
//! 3. **4-way strategy**: the paper's direct Sanchis-style quadrisection
//!    (sum-of-degrees and net-cut gains) vs recursive ML bisection.
//! 4. **Direct hypergraph vs graph expansion** (paper footnote 2): ML_C on
//!    the netlist hypergraph vs ML_C on its clique/star expansions with the
//!    true hypergraph cut measured afterwards — the transformation loss the
//!    paper blames for GMetis's weaker cuts.
//!
//! These are *our* experiments (not in the paper); they quantify how much
//! each ingredient of ML matters on the synthetic suite.

use mlpart_bench::{report_shape_checks, run_many_par, with_report, HarnessArgs, ShapeCheck};
use mlpart_core::{
    ml_bipartition_in, ml_kway_in, recursive_ml_bisection_in, Coarsener, MlConfig, MlKwayConfig,
};
use mlpart_fm::FmConfig;
use mlpart_hypergraph::rng::child_seed;
use mlpart_hypergraph::transform::{
    clique_expansion, hypergraph_cut_of_expanded, star_expansion, DEFAULT_WEIGHT_SCALE,
};
use mlpart_kway::{KwayConfig, KwayGain};

fn main() {
    let args = HarnessArgs::from_env();
    let ok = with_report(&args, "ablation", || run(&args));
    std::process::exit(i32::from(!ok));
}

fn run(args: &HarnessArgs) -> bool {
    println!(
        "Ablation — coarseners and §V extensions on ML_C ({} runs per cell, seed {})",
        args.runs, args.seed
    );
    println!();
    println!(
        "{:<16} {:>8} {:>8} {:>8}  {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "Test Case",
        "aMatch",
        "aRandom",
        "aHeavy",
        "aBound",
        "aEarly",
        "aMulti",
        "aLook",
        "aCdip",
        "aCoal"
    );
    let (mut base_avg, mut rand_avg, mut heavy_avg) = (Vec::new(), Vec::new(), Vec::new());
    let (mut bound_avg, mut early_avg, mut multi_avg) = (Vec::new(), Vec::new(), Vec::new());
    let mut look_avg: Vec<f64> = Vec::new();
    let (mut cdip_avg, mut coal_avg): (Vec<f64>, Vec<f64>) = (Vec::new(), Vec::new());
    for (ci, c) in args.circuits().iter().enumerate() {
        let h = c.generate(args.seed);
        let seed = child_seed(args.seed, 600 + ci as u64);
        let cell = |cfg: MlConfig, lane: u64| {
            run_many_par(
                args.runs,
                child_seed(seed, lane),
                args.threads,
                |rng, ws| ml_bipartition_in(&h, &cfg, rng, ws).1.cut,
            )
        };
        let base = MlConfig::clip();
        let a_match = cell(base, 0);
        let a_rand = cell(
            MlConfig {
                coarsener: Coarsener::RandomMatching,
                ..base
            },
            1,
        );
        let a_heavy = cell(
            MlConfig {
                coarsener: Coarsener::HeavyEdge,
                ..base
            },
            2,
        );
        let a_bound = cell(
            MlConfig {
                fm: FmConfig {
                    boundary_init: true,
                    ..base.fm
                },
                ..base
            },
            3,
        );
        let a_early = cell(
            MlConfig {
                fm: FmConfig {
                    early_exit_stall: Some(200),
                    ..base.fm
                },
                ..base
            },
            4,
        );
        let a_multi = cell(
            MlConfig {
                initial_tries: 5,
                ..base
            },
            5,
        );
        let a_look = cell(
            MlConfig {
                fm: FmConfig {
                    lookahead: true,
                    ..base.fm
                },
                ..base
            },
            6,
        );
        let a_cdip = cell(
            MlConfig {
                fm: FmConfig {
                    cdip_window: Some(16),
                    ..base.fm
                },
                ..base
            },
            7,
        );
        let a_coal = cell(
            MlConfig {
                coalesce_nets: true,
                ..base
            },
            8,
        );
        println!(
            "{:<16} {:>8.1} {:>8.1} {:>8.1}  {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>8.1}",
            c.name,
            a_match.cut.avg,
            a_rand.cut.avg,
            a_heavy.cut.avg,
            a_bound.cut.avg,
            a_early.cut.avg,
            a_multi.cut.avg,
            a_look.cut.avg,
            a_cdip.cut.avg,
            a_coal.cut.avg
        );
        base_avg.push(a_match.cut.avg.max(1.0));
        rand_avg.push(a_rand.cut.avg.max(1.0));
        heavy_avg.push(a_heavy.cut.avg.max(1.0));
        bound_avg.push(a_bound.cut.avg.max(1.0));
        early_avg.push(a_early.cut.avg.max(1.0));
        multi_avg.push(a_multi.cut.avg.max(1.0));
        look_avg.push(a_look.cut.avg.max(1.0));
        cdip_avg.push(a_cdip.cut.avg.max(1.0));
        coal_avg.push(a_coal.cut.avg.max(1.0));
    }
    let vs_rand = mlpart_bench::geomean_ratio(&base_avg, &rand_avg);
    let vs_heavy = mlpart_bench::geomean_ratio(&base_avg, &heavy_avg);
    let vs_bound = mlpart_bench::geomean_ratio(&bound_avg, &base_avg);
    let vs_early = mlpart_bench::geomean_ratio(&early_avg, &base_avg);
    let vs_multi = mlpart_bench::geomean_ratio(&multi_avg, &base_avg);
    let vs_look = mlpart_bench::geomean_ratio(&look_avg, &base_avg);
    let vs_cdip = mlpart_bench::geomean_ratio(&cdip_avg, &base_avg);
    let vs_coal = mlpart_bench::geomean_ratio(&coal_avg, &base_avg);
    println!();
    println!("geomean avg-cut ratio Match/Random:          {vs_rand:.3}");
    println!("geomean avg-cut ratio Match/HeavyEdge:       {vs_heavy:.3}");
    println!("geomean avg-cut ratio boundary-init/base:    {vs_bound:.3}");
    println!("geomean avg-cut ratio early-exit/base:       {vs_early:.3}");
    println!("geomean avg-cut ratio multi-start/base:      {vs_multi:.3}");
    println!("geomean avg-cut ratio lookahead/base:        {vs_look:.3}");
    println!("geomean avg-cut ratio CDIP/base:             {vs_cdip:.3}");
    println!("geomean avg-cut ratio coalesced/base:        {vs_coal:.3}");
    // --- 4-way strategy comparison. ---
    println!();
    println!(
        "{:<16} {:>8} {:>8} {:>8}",
        "Test Case", "a4SoD", "a4Cut", "a4Rec"
    );
    let (mut sod4, mut cut4, mut rec4) = (Vec::new(), Vec::new(), Vec::new());
    for (ci, c) in args.circuits().iter().enumerate() {
        let h = c.generate(args.seed);
        let seed = child_seed(args.seed, 900 + ci as u64);
        let a_sod = run_many_par(args.runs, child_seed(seed, 0), args.threads, |rng, ws| {
            ml_kway_in(&h, &MlKwayConfig::default(), &[], rng, ws).1.cut
        });
        let a_cut = run_many_par(args.runs, child_seed(seed, 1), args.threads, |rng, ws| {
            let cfg = MlKwayConfig {
                kway: KwayConfig {
                    gain: KwayGain::NetCut,
                    ..KwayConfig::default()
                },
                ..MlKwayConfig::default()
            };
            ml_kway_in(&h, &cfg, &[], rng, ws).1.cut
        });
        let a_rec = run_many_par(args.runs, child_seed(seed, 2), args.threads, |rng, ws| {
            recursive_ml_bisection_in(&h, 2, &MlConfig::default(), rng, ws)
                .1
                .cut
        });
        println!(
            "{:<16} {:>8.1} {:>8.1} {:>8.1}",
            c.name, a_sod.cut.avg, a_cut.cut.avg, a_rec.cut.avg
        );
        sod4.push(a_sod.cut.avg.max(1.0));
        cut4.push(a_cut.cut.avg.max(1.0));
        rec4.push(a_rec.cut.avg.max(1.0));
    }
    // --- Direct hypergraph vs graph expansion (footnote 2). ---
    println!();
    println!(
        "{:<16} {:>8} {:>8} {:>8}",
        "Test Case", "aDirect", "aClique", "aStar"
    );
    let (mut direct_avg, mut clique_avg, mut star_avg) = (Vec::new(), Vec::new(), Vec::new());
    for (ci, c) in args.circuits().iter().enumerate() {
        let h = c.generate(args.seed);
        let seed = child_seed(args.seed, 1_200 + ci as u64);
        let a_direct = run_many_par(args.runs, child_seed(seed, 0), args.threads, |rng, ws| {
            ml_bipartition_in(&h, &MlConfig::clip(), rng, ws).1.cut
        });
        let clique = clique_expansion(&h, DEFAULT_WEIGHT_SCALE, 50).expect("expansion fits u32");
        let a_clique = run_many_par(args.runs, child_seed(seed, 1), args.threads, |rng, ws| {
            let (p, _) = ml_bipartition_in(&clique, &MlConfig::clip(), rng, ws);
            hypergraph_cut_of_expanded(&h, p.assignment(), 2).expect("assignment covers h")
        });
        let (star, _original) =
            star_expansion(&h, DEFAULT_WEIGHT_SCALE, 200).expect("expansion fits u32");
        let a_star = run_many_par(args.runs, child_seed(seed, 2), args.threads, |rng, ws| {
            let (p, _) = ml_bipartition_in(&star, &MlConfig::clip(), rng, ws);
            hypergraph_cut_of_expanded(&h, p.assignment(), 2).expect("assignment covers h")
        });
        println!(
            "{:<16} {:>8.1} {:>8.1} {:>8.1}",
            c.name, a_direct.cut.avg, a_clique.cut.avg, a_star.cut.avg
        );
        direct_avg.push(a_direct.cut.avg.max(1.0));
        clique_avg.push(a_clique.cut.avg.max(1.0));
        star_avg.push(a_star.cut.avg.max(1.0));
    }
    let direct_vs_clique = mlpart_bench::geomean_ratio(&direct_avg, &clique_avg);
    let direct_vs_star = mlpart_bench::geomean_ratio(&direct_avg, &star_avg);
    println!();
    println!("geomean avg-cut ratio direct/clique-expansion: {direct_vs_clique:.3}");
    println!("geomean avg-cut ratio direct/star-expansion:   {direct_vs_star:.3}");

    let sod_vs_cut = mlpart_bench::geomean_ratio(&sod4, &cut4);
    let sod_vs_rec = mlpart_bench::geomean_ratio(&sod4, &rec4);
    println!();
    println!("geomean avg-cut ratio 4-way SoD/NetCut gain: {sod_vs_cut:.3}");
    println!("geomean avg-cut ratio 4-way SoD/recursive:   {sod_vs_rec:.3}");

    let checks = vec![
        ShapeCheck::new(
            format!(
                "sum-of-degrees gain no worse than net-cut gain (ratio {sod_vs_cut:.3} <= 1.05, paper reports with SoD)"
            ),
            sod_vs_cut <= 1.05,
        ),
        ShapeCheck::new(
            format!("paper Match no worse than random matching (ratio {vs_rand:.3} <= 1.05)"),
            vs_rand <= 1.05,
        ),
        ShapeCheck::new(
            format!("boundary-init quality within 10% of base (ratio {vs_bound:.3})"),
            vs_bound <= 1.10,
        ),
        // Multi-start only improves the *coarsest-level* solution; the final
        // average over a different random stream can drift a few percent.
        ShapeCheck::new(
            format!("multi-start roughly neutral or better (ratio {vs_multi:.3} <= 1.08)"),
            vs_multi <= 1.08,
        ),
        ShapeCheck::new(
            format!("lookahead quality within 10% of base (ratio {vs_look:.3})"),
            vs_look <= 1.10,
        ),
        ShapeCheck::new(
            format!("CDIP quality within 10% of base (ratio {vs_cdip:.3})"),
            vs_cdip <= 1.10,
        ),
        ShapeCheck::new(
            format!("net coalescing preserves quality (ratio {vs_coal:.3} in [0.9, 1.1])"),
            (0.9..=1.1).contains(&vs_coal),
        ),
        // Footnote 2 / the GMetis column: the hypergraph-direct partitioner
        // never needs a lossy transformation. On low-fanout circuits the
        // clique expansion is nearly lossless (a 2-pin net's clique IS the
        // net), so parity is the expectation there; the *scalable* star
        // expansion — what graph tools must use on big nets — loses.
        ShapeCheck::new(
            format!(
                "direct never meaningfully worse than clique expansion (ratio {direct_vs_clique:.3} <= 1.05)"
            ),
            direct_vs_clique <= 1.05,
        ),
        ShapeCheck::new(
            format!(
                "direct beats the star expansion (ratio {direct_vs_star:.3} < 1)"
            ),
            direct_vs_star < 1.0,
        ),
    ];
    report_shape_checks(&checks)
}
