//! Regenerates **Figure 4**: the tradeoff between the matching ratio `R`
//! and average cut (the paper plots 40-run averages of `ML_C` on `avqsmall`
//! and `avqlarge`).
//!
//! Paper finding: average cut decreases (roughly monotonically) as `R`
//! decreases, flattening out below ~0.5.

use mlpart_bench::{algos, report_shape_checks, run_many_par, HarnessArgs, ShapeCheck};
use mlpart_hypergraph::rng::child_seed;

const RATIOS: [f64; 7] = [0.1, 0.2, 0.33, 0.5, 0.66, 0.8, 1.0];

fn main() {
    let args = HarnessArgs::from_env();
    // The paper uses its two largest non-golem circuits; default to the two
    // largest in the selection.
    let mut circuits = args.circuits();
    circuits.sort_by_key(|c| std::cmp::Reverse(c.modules));
    circuits.truncate(2);
    println!(
        "Figure 4 — matching ratio vs average ML_C cut ({} runs per point, seed {})",
        args.runs, args.seed
    );
    println!();
    print!("{:<8}", "R");
    for c in &circuits {
        print!(" {:>14}", c.name);
    }
    println!();
    let mut series: Vec<Vec<f64>> = vec![Vec::new(); circuits.len()];
    let hs: Vec<_> = circuits.iter().map(|c| c.generate(args.seed)).collect();
    for (ri, &r) in RATIOS.iter().enumerate() {
        print!("{:<8.2}", r);
        for (ci, h) in hs.iter().enumerate() {
            let stats = run_many_par(
                args.runs,
                child_seed(args.seed, 400 + (ri * 16 + ci) as u64),
                args.threads,
                |rng, ws| algos::ml_c_in(h, r, rng, ws),
            );
            print!(" {:>14.1}", stats.cut.avg);
            series[ci].push(stats.cut.avg);
        }
        println!();
    }
    let mut checks = Vec::new();
    for (ci, c) in circuits.iter().enumerate() {
        let s = &series[ci];
        let at_min_r = s[0]; // R = 0.1
        let at_max_r = *s.last().expect("non-empty"); // R = 1.0
        checks.push(ShapeCheck::new(
            format!(
                "{}: avg cut at R=0.1 ({at_min_r:.1}) <= avg cut at R=1.0 ({at_max_r:.1})",
                c.name
            ),
            at_min_r <= at_max_r * 1.02,
        ));
        // Weak monotonicity: the series' best half should be at small R.
        // Allow 5% because each point is a finite-run average (at the
        // default 10 runs, point-to-point noise is a few percent).
        let low_half: f64 = s[..s.len() / 2].iter().sum::<f64>() / (s.len() / 2) as f64;
        let high_half: f64 = s[s.len() - s.len() / 2..].iter().sum::<f64>() / (s.len() / 2) as f64;
        checks.push(ShapeCheck::new(
            format!(
                "{}: small-R half of the curve at or below large-R half ({low_half:.1} vs {high_half:.1}, 5% noise allowance)",
                c.name
            ),
            low_half <= high_half * 1.05,
        ));
    }
    std::process::exit(i32::from(!report_shape_checks(&checks)));
}
