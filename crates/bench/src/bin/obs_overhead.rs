//! In-process observability overhead benchmark (the Rust port of the old
//! `scripts/obs_overhead.sh` measurement loop).
//!
//! Measures the wall-clock cost of the observability layer per config:
//!
//! - `off` — this binary built *without* the `obs` feature: hooks are
//!   compiled out entirely. Only this config runs in a plain build.
//! - `disabled` — built with `--features obs`, runtime gate off: every hook
//!   reduces to one relaxed atomic load. Only in an obs build.
//! - `enabled` — gate forced on, full recording plus Chrome-trace, JSONL,
//!   folded-stack, and run-report serialization (discarded, so the cost
//!   measured is recording + export, not disk). Only in an obs build.
//!
//! Each config runs `--reps` repetitions per circuit and reports the
//! minimum (the standard noise-robust estimator for short benches). The
//! partitioner's cut statistics are formatted into a `cut_line` per config
//! and byte-compared across every config *in this process*; the wrapper
//! script compares the lines across the off/obs builds too. Any mismatch is
//! a determinism violation and exits 1.
//!
//! ```text
//! obs_overhead [--runs N] [--seed S] [--reps R] [--threads T]
//!              [--circuits a,b] [--out PATH] [--append]
//! ```
//!
//! `--out` defaults to stdout; `--append` keeps an existing file's content
//! (the wrapper runs the off build first with a fresh meta line, then the
//! obs build with `--append`).

use mlpart_bench::{algos, run_many_par};
use std::fmt::Write as _;
use std::time::Instant;

struct Args {
    runs: usize,
    seed: u64,
    reps: usize,
    threads: usize,
    circuits: Vec<String>,
    out: Option<String>,
    append: bool,
    meta: bool,
}

const USAGE: &str = "usage: obs_overhead [--runs N] [--seed S] [--reps R] [--threads T]\n\
     \x20                   [--circuits a,b] [--out PATH] [--append] [--no-meta]";

fn parse_args() -> Result<Args, String> {
    let mut out = Args {
        runs: 8,
        seed: 1997,
        reps: 5,
        threads: 1,
        circuits: vec!["syn-industry2".into(), "syn-s38584".into()],
        out: None,
        append: false,
        meta: true,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("flag {name} requires a value"))
        };
        match flag.as_str() {
            "--runs" => out.runs = value("--runs")?.parse().map_err(|_| "bad --runs")?,
            "--seed" => out.seed = value("--seed")?.parse().map_err(|_| "bad --seed")?,
            "--reps" => out.reps = value("--reps")?.parse().map_err(|_| "bad --reps")?,
            "--threads" => {
                out.threads = value("--threads")?.parse().map_err(|_| "bad --threads")?
            }
            "--circuits" => {
                out.circuits = value("--circuits")?.split(',').map(str::to_owned).collect();
            }
            "--out" => out.out = Some(value("--out")?),
            "--append" => out.append = true,
            "--no-meta" => out.meta = false,
            "--help" | "-h" => return Err(USAGE.to_owned()),
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    if out.runs == 0 || out.reps == 0 || out.threads == 0 {
        return Err("--runs/--reps/--threads must be positive".into());
    }
    Ok(out)
}

/// One measured batch: the formatted cut line (the CLI's summary format,
/// which the cross-build identity check diffs) and elapsed wall seconds.
fn measure(
    h: &mlpart_hypergraph::Hypergraph,
    runs: usize,
    seed: u64,
    threads: usize,
) -> (String, f64) {
    let t0 = Instant::now();
    let stats = run_many_par(runs, seed, threads, |rng, ws| {
        algos::ml_c_in(h, 0.5, rng, ws)
    });
    let wall = t0.elapsed().as_secs_f64();
    let line = format!(
        "ml-c x{runs} runs: min {} avg {:.1} std {:.1}",
        stats.cut.min, stats.cut.avg, stats.cut.std
    );
    (line, wall)
}

fn configs() -> &'static [&'static str] {
    if cfg!(feature = "obs") {
        &["disabled", "enabled"]
    } else {
        &["off"]
    }
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let mut doc = String::new();
    if args.meta {
        let _ = writeln!(
            doc,
            "{{\"group\":\"obs_overhead\",\"bench\":\"meta\",\"reps\":{},\"runs\":{},\
             \"seed\":{},\"threads\":{},\"note\":\"wall-clock per config, min over reps; \
             enabled = gate on + chrome-trace + jsonl + folded + run-report export; \
             cut lines byte-identical across all configs\"}}",
            args.reps, args.runs, args.seed, args.threads
        );
    }
    let mut ok = true;
    for name in &args.circuits {
        let Some(circuit) = mlpart_gen::by_name(name) else {
            eprintln!("unknown circuit {name:?}");
            std::process::exit(2);
        };
        let h = circuit.generate(args.seed);
        let mut results: Vec<(&str, String, f64)> = Vec::new();
        for &config in configs() {
            let mut best = f64::INFINITY;
            let mut cut_line = String::new();
            for _ in 0..args.reps {
                let (line, wall) = match config {
                    "enabled" => run_enabled(&h, &args),
                    _ => measure(&h, args.runs, args.seed, args.threads),
                };
                eprintln!("  {name}/{config}: {wall:.6}s");
                best = best.min(wall);
                cut_line = line;
            }
            results.push((config, cut_line, best));
        }
        // Determinism guarantee within this build: recording on vs. off
        // must not change the reported cuts.
        for (config, line, _) in &results[1..] {
            if line != &results[0].1 {
                eprintln!(
                    "FAIL: {name} cut line differs between {} and {config}",
                    results[0].0
                );
                ok = false;
            }
        }
        let base = results[0].2;
        for (config, line, wall) in &results {
            let _ = writeln!(
                doc,
                "{{\"group\":\"obs_overhead\",\"bench\":\"{name}/{config}\",\
                 \"wall_secs\":{wall:.6},\"overhead_vs_base\":{:.3},\"cut_line\":\"{line}\"}}",
                wall / base
            );
        }
    }
    match &args.out {
        None => print!("{doc}"),
        Some(path) => {
            let result = if args.append {
                // Append mode accumulates across invocations, so it cannot
                // be a whole-file rename; a torn tail only loses the last
                // invocation's lines.
                use std::io::Write as _;
                std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)
                    .and_then(|mut f| f.write_all(doc.as_bytes()))
            } else {
                mlpart_hypergraph::io::write_atomic(path, doc.as_bytes())
            };
            if let Err(e) = result {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            }
            eprintln!("wrote {path}");
        }
    }
    std::process::exit(i32::from(!ok));
}

/// The `enabled` config: gate forced on, batch captured, all four export
/// formats serialized (and dropped — measuring CPU cost, not the disk).
#[cfg(feature = "obs")]
fn run_enabled(h: &mlpart_hypergraph::Hypergraph, args: &Args) -> (String, f64) {
    mlpart_obs::force_enabled(true);
    let t0 = Instant::now();
    let (line, trace) = mlpart_obs::capture(|| {
        let _run = mlpart_obs::span(
            "run",
            &[("runs", args.runs.into()), ("seed", args.seed.into())],
        );
        measure(h, args.runs, args.seed, args.threads).0
    });
    let trace = trace.expect("gate forced on");
    let exports = [
        mlpart_obs::to_chrome_trace(&trace),
        mlpart_obs::to_jsonl(&trace),
        mlpart_obs::to_folded(&trace),
        mlpart_obs::report::RunReport {
            meta: vec![("harness", mlpart_obs::V::S("obs_overhead"))],
            cuts: Vec::new(),
            failures: Vec::new(),
            truncations: Vec::new(),
            retries: Vec::new(),
            repairs: Vec::new(),
            wall_secs: 0.0,
            cpu_secs: 0.0,
            trace,
        }
        .to_json(),
    ];
    let wall = t0.elapsed().as_secs_f64();
    std::hint::black_box(&exports);
    mlpart_obs::force_enabled(false);
    (line, wall)
}

#[cfg(not(feature = "obs"))]
fn run_enabled(h: &mlpart_hypergraph::Hypergraph, args: &Args) -> (String, f64) {
    // Unreachable: configs() never yields "enabled" without the feature.
    measure(h, args.runs, args.seed, args.threads)
}
