//! Measures the parallel-starts speedup curve: ML_C on the selected suite
//! at 1/2/4/8 worker threads, same seeds everywhere.
//!
//! Emits one JSON line per (threads, circuit) cell — the format of the
//! `BENCH_*.json` artifacts at the repo root — plus a `meta` line recording
//! the machine's core count, since speedup beyond `min(threads, cores)` is
//! physically impossible. Exits non-zero if any thread count changes any
//! cut statistic (the executor's bit-identity contract).

use mlpart_bench::{algos, run_many_par, HarnessArgs};
use mlpart_hypergraph::rng::child_seed;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn main() {
    let args = HarnessArgs::from_env();
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    println!(
        "{{\"group\":\"parallel_starts\",\"bench\":\"meta\",\"cores\":{cores},\
         \"runs_per_cell\":{},\"seed\":{},\
         \"note\":\"wall-clock speedup is bounded by min(threads, cores); \
         cpu_secs sums per-start busy-time proxies and inflates under \
         oversubscription\"}}",
        args.runs, args.seed
    );
    let mut ok = true;
    for (ci, c) in args.circuits().iter().enumerate() {
        let h = c.generate(args.seed);
        let seed = child_seed(args.seed, 3_000 + ci as u64);
        let mut baseline: Option<(f64, mlpart_bench::RunStats)> = None;
        for threads in THREAD_COUNTS {
            let stats = run_many_par(args.runs, seed, threads, |rng, ws| {
                algos::ml_c_in(&h, 0.5, rng, ws)
            });
            let (wall1, ref_stats) = *baseline.get_or_insert((stats.wall_secs, stats));
            if stats != ref_stats {
                eprintln!(
                    "DETERMINISM VIOLATION: {} at {threads} threads changed the cut statistics",
                    c.name
                );
                ok = false;
            }
            println!(
                "{{\"group\":\"parallel_starts\",\"bench\":\"{}/t{threads}\",\
                 \"wall_secs\":{:.6},\"cpu_secs\":{:.6},\"speedup_vs_t1\":{:.3},\
                 \"min_cut\":{}}}",
                c.name,
                stats.wall_secs,
                stats.cpu_secs,
                wall1 / stats.wall_secs.max(1e-12),
                stats.cut.min,
            );
        }
    }
    std::process::exit(i32::from(!ok));
}
