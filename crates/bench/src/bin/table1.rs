//! Regenerates **Table I**: benchmark circuit characteristics.
//!
//! Prints the synthetic suite's realized module/net/pin counts next to the
//! paper's targets, and verifies the substitution matched them.

use mlpart_bench::{report_shape_checks, HarnessArgs, ShapeCheck};

fn main() {
    let args = HarnessArgs::from_env();
    println!("Table I — benchmark circuit characteristics (synthetic suite)");
    println!("seed: {}", args.seed);
    println!();
    println!(
        "{:<16} {:>9} {:>9} {:>9} {:>9} {:>9} {:>8}",
        "Test Case", "#Modules", "#Nets", "#Pins", "tgtNets", "tgtPins", "pinErr%"
    );
    let mut checks = Vec::new();
    let mut worst_pin_err: f64 = 0.0;
    for c in args.circuits() {
        let h = c.generate(args.seed);
        let pin_err = 100.0 * (h.num_pins() as f64 - c.pins as f64).abs() / c.pins as f64;
        worst_pin_err = worst_pin_err.max(pin_err);
        println!(
            "{:<16} {:>9} {:>9} {:>9} {:>9} {:>9} {:>8.2}",
            c.name,
            h.num_modules(),
            h.num_nets(),
            h.num_pins(),
            c.nets,
            c.pins,
            pin_err
        );
        checks.push(ShapeCheck::new(
            format!("{}: module count exact", c.name),
            h.num_modules() == c.modules,
        ));
    }
    checks.push(ShapeCheck::new(
        format!("pin counts within 15% of Table I targets (worst {worst_pin_err:.2}%)"),
        worst_pin_err < 15.0,
    ));
    std::process::exit(i32::from(!report_shape_checks(&checks)));
}
