//! Regenerates **Table II**: FM with LIFO vs random (RND) vs FIFO gain
//! buckets — minimum, average, and standard deviation of the cut.
//!
//! Paper finding: LIFO significantly outperforms FIFO; random selection is
//! as good as (or slightly better than) LIFO.

use mlpart_bench::{algos, report_shape_checks, run_many_par, HarnessArgs, ShapeCheck};
use mlpart_fm::BucketPolicy;
use mlpart_hypergraph::rng::child_seed;

fn main() {
    let args = HarnessArgs::from_env();
    let ok = mlpart_bench::with_report(&args, "table2", || run(&args));
    std::process::exit(i32::from(!ok));
}

fn run(args: &HarnessArgs) -> bool {
    println!(
        "Table II — FM bucket tie-breaking ({} runs per cell, seed {})",
        args.runs, args.seed
    );
    println!();
    println!(
        "{:<16} {:>6} {:>6} {:>6}  {:>8} {:>8} {:>8}  {:>7} {:>7} {:>7}",
        "Test Case", "mLIFO", "mFIFO", "mRND", "aLIFO", "aFIFO", "aRND", "sLIFO", "sFIFO", "sRND"
    );
    let mut lifo_avgs = Vec::new();
    let mut fifo_avgs = Vec::new();
    let mut rnd_avgs = Vec::new();
    for (ci, c) in args.circuits().iter().enumerate() {
        let h = c.generate(args.seed);
        let cell = |policy: BucketPolicy, lane: u64| {
            run_many_par(
                args.runs,
                child_seed(args.seed, (ci as u64) * 8 + lane),
                args.threads,
                |rng, ws| algos::fm_with_policy_in(&h, policy, rng, ws),
            )
        };
        let lifo = cell(BucketPolicy::Lifo, 0);
        let fifo = cell(BucketPolicy::Fifo, 1);
        let rnd = cell(BucketPolicy::Random, 2);
        println!(
            "{:<16} {:>6} {:>6} {:>6}  {:>8.1} {:>8.1} {:>8.1}  {:>7.1} {:>7.1} {:>7.1}",
            c.name,
            lifo.cut.min,
            fifo.cut.min,
            rnd.cut.min,
            lifo.cut.avg,
            fifo.cut.avg,
            rnd.cut.avg,
            lifo.cut.std,
            fifo.cut.std,
            rnd.cut.std,
        );
        lifo_avgs.push(lifo.cut.avg.max(1.0));
        fifo_avgs.push(fifo.cut.avg.max(1.0));
        rnd_avgs.push(rnd.cut.avg.max(1.0));
    }

    let lifo_vs_fifo = mlpart_bench::geomean_ratio(&lifo_avgs, &fifo_avgs);
    let rnd_vs_lifo = mlpart_bench::geomean_ratio(&rnd_avgs, &lifo_avgs);
    println!();
    println!("geomean avg-cut ratio LIFO/FIFO: {lifo_vs_fifo:.3}");
    println!("geomean avg-cut ratio RND/LIFO:  {rnd_vs_lifo:.3}");
    let wins = lifo_avgs
        .iter()
        .zip(&fifo_avgs)
        .filter(|(l, f)| l < f)
        .count();
    let checks = vec![
        ShapeCheck::new(
            format!(
                "LIFO average cut beats FIFO on most circuits ({wins}/{})",
                lifo_avgs.len()
            ),
            wins * 3 >= lifo_avgs.len() * 2,
        ),
        ShapeCheck::new(
            format!("LIFO clearly better than FIFO overall (ratio {lifo_vs_fifo:.3} < 0.9)"),
            lifo_vs_fifo < 0.9,
        ),
        // The paper found RND ≈ LIFO while Hagen et al. [19] found LIFO ≫
        // RND — the paper itself calls this discrepancy "a source of concern
        // [that] needs to be further explored". Our synthetic circuits side
        // with [19]: RND lands between LIFO and FIFO, so the shape check
        // asserts exactly that ordering.
        ShapeCheck::new(
            format!(
                "RND between LIFO and FIFO (LIFO <= RND ratio {rnd_vs_lifo:.3} <= FIFO ratio {:.3})",
                1.0 / lifo_vs_fifo
            ),
            rnd_vs_lifo >= 0.8 && rnd_vs_lifo <= 1.0 / lifo_vs_fifo,
        ),
    ];
    report_shape_checks(&checks)
}
