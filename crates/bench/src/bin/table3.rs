//! Regenerates **Table III**: FM vs CLIP — minimum cut, average cut,
//! standard deviation, and CPU time.
//!
//! Paper finding: CLIP significantly improves on FM, especially on larger
//! circuits, at comparable CPU cost (CLIP even converges in fewer passes on
//! some large cases).

use mlpart_bench::{algos, paper, report_shape_checks, run_many_par, HarnessArgs, ShapeCheck};
use mlpart_hypergraph::rng::child_seed;

fn main() {
    let args = HarnessArgs::from_env();
    println!(
        "Table III — FM vs CLIP ({} runs per cell, seed {})",
        args.runs, args.seed
    );
    println!();
    println!(
        "{:<16} {:>6} {:>6}  {:>8} {:>8}  {:>7} {:>7}  {:>8} {:>8}  {:>8} {:>8}",
        "Test Case",
        "mFM",
        "mCLIP",
        "aFM",
        "aCLIP",
        "sFM",
        "sCLIP",
        "tFM",
        "tCLIP",
        "pAvgFM",
        "pAvgCL"
    );
    let mut fm_avgs = Vec::new();
    let mut clip_avgs = Vec::new();
    let mut cpu_ratio_acc = Vec::new();
    for (ci, c) in args.circuits().iter().enumerate() {
        let h = c.generate(args.seed);
        let fm = run_many_par(
            args.runs,
            child_seed(args.seed, ci as u64 * 4),
            args.threads,
            |rng, ws| algos::fm_in(&h, rng, ws),
        );
        let clip = run_many_par(
            args.runs,
            child_seed(args.seed, ci as u64 * 4 + 1),
            args.threads,
            |rng, ws| algos::clip_in(&h, rng, ws),
        );
        let p = paper::table3_row(c.name);
        println!(
            "{:<16} {:>6} {:>6}  {:>8.1} {:>8.1}  {:>7.1} {:>7.1}  {:>8.2} {:>8.2}  {:>8} {:>8}",
            c.name,
            fm.cut.min,
            clip.cut.min,
            fm.cut.avg,
            clip.cut.avg,
            fm.cut.std,
            clip.cut.std,
            fm.cpu_secs,
            clip.cpu_secs,
            p.map_or("-".to_owned(), |r| format!("{:.0}", r.fm_avg)),
            p.map_or("-".to_owned(), |r| format!("{:.0}", r.clip_avg)),
        );
        fm_avgs.push(fm.cut.avg.max(1.0));
        clip_avgs.push(clip.cut.avg.max(1.0));
        cpu_ratio_acc.push(clip.cpu_secs.max(1e-9) / fm.cpu_secs.max(1e-9));
    }
    let avg_ratio = mlpart_bench::geomean_ratio(&clip_avgs, &fm_avgs);
    let cpu_geo =
        (cpu_ratio_acc.iter().map(|r| r.ln()).sum::<f64>() / cpu_ratio_acc.len() as f64).exp();
    println!();
    println!("geomean avg-cut ratio CLIP/FM: {avg_ratio:.3} (paper: CLIP ~18% better)");
    println!("geomean CPU ratio CLIP/FM:     {cpu_geo:.3} (paper: comparable)");
    let wins = clip_avgs
        .iter()
        .zip(&fm_avgs)
        .filter(|(c, f)| c <= f)
        .count();
    let checks = vec![
        ShapeCheck::new(
            format!(
                "CLIP average cut <= FM on most circuits ({wins}/{})",
                fm_avgs.len()
            ),
            wins * 3 >= fm_avgs.len() * 2,
        ),
        ShapeCheck::new(
            format!("CLIP meaningfully better overall (ratio {avg_ratio:.3} < 0.95)"),
            avg_ratio < 0.95,
        ),
        ShapeCheck::new(
            format!("CLIP CPU within 4x of FM (ratio {cpu_geo:.2})"),
            cpu_geo < 4.0,
        ),
    ];
    std::process::exit(i32::from(!report_shape_checks(&checks)));
}
