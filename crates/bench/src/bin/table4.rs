//! Regenerates **Table IV**: CLIP vs `ML_F` vs `ML_C` (matching ratio
//! `R = 1`) — minimum cut, average cut, and CPU time.
//!
//! Paper finding: both ML variants clearly beat flat CLIP on circuits with
//! more than ~6000 modules; `ML_C` has the lowest averages overall; ML's
//! runtime overhead over CLIP shrinks as instances grow.

use mlpart_bench::{algos, paper, report_shape_checks, run_many_par, HarnessArgs, ShapeCheck};
use mlpart_hypergraph::rng::child_seed;

fn main() {
    let args = HarnessArgs::from_env();
    let ok = mlpart_bench::with_report(&args, "table4", || run(&args));
    std::process::exit(i32::from(!ok));
}

fn run(args: &HarnessArgs) -> bool {
    println!(
        "Table IV — CLIP vs ML_F vs ML_C at R=1 ({} runs per cell, seed {})",
        args.runs, args.seed
    );
    println!();
    println!(
        "{:<16} {:>6} {:>6} {:>6}  {:>8} {:>8} {:>8}  {:>8} {:>8} {:>8}  {:>7}",
        "Test Case",
        "mCLIP",
        "mML_F",
        "mML_C",
        "aCLIP",
        "aML_F",
        "aML_C",
        "tCLIP",
        "tML_F",
        "tML_C",
        "pML_C"
    );
    let mut clip_avgs = Vec::new();
    let mut mlf_avgs = Vec::new();
    let mut mlc_avgs = Vec::new();
    for (ci, c) in args.circuits().iter().enumerate() {
        let h = c.generate(args.seed);
        let base = child_seed(args.seed, ci as u64 * 8);
        let clip = run_many_par(args.runs, child_seed(base, 0), args.threads, |rng, ws| {
            algos::clip_in(&h, rng, ws)
        });
        let mlf = run_many_par(args.runs, child_seed(base, 1), args.threads, |rng, ws| {
            algos::ml_f_in(&h, 1.0, rng, ws)
        });
        let mlc = run_many_par(args.runs, child_seed(base, 2), args.threads, |rng, ws| {
            algos::ml_c_in(&h, 1.0, rng, ws)
        });
        let p = paper::table4_row(c.name);
        println!(
            "{:<16} {:>6} {:>6} {:>6}  {:>8.1} {:>8.1} {:>8.1}  {:>8.2} {:>8.2} {:>8.2}  {:>7}",
            c.name,
            clip.cut.min,
            mlf.cut.min,
            mlc.cut.min,
            clip.cut.avg,
            mlf.cut.avg,
            mlc.cut.avg,
            clip.cpu_secs,
            mlf.cpu_secs,
            mlc.cpu_secs,
            p.map_or("-".to_owned(), |r| format!("{:.0}", r.avg[2])),
        );
        clip_avgs.push(clip.cut.avg.max(1.0));
        mlf_avgs.push(mlf.cut.avg.max(1.0));
        mlc_avgs.push(mlc.cut.avg.max(1.0));
    }
    let mlc_vs_clip = mlpart_bench::geomean_ratio(&mlc_avgs, &clip_avgs);
    let mlc_vs_mlf = mlpart_bench::geomean_ratio(&mlc_avgs, &mlf_avgs);
    println!();
    println!("geomean avg-cut ratio ML_C/CLIP: {mlc_vs_clip:.3}");
    println!("geomean avg-cut ratio ML_C/ML_F: {mlc_vs_mlf:.3}");
    let mlc_best = mlc_avgs
        .iter()
        .zip(clip_avgs.iter().zip(&mlf_avgs))
        .filter(|(c, (a, b))| **c <= **a && **c <= **b * 1.02)
        .count();
    let checks = vec![
        ShapeCheck::new(
            format!("ML_C avg beats flat CLIP overall (ratio {mlc_vs_clip:.3} < 0.95)"),
            mlc_vs_clip < 0.95,
        ),
        ShapeCheck::new(
            format!("ML_C <= ML_F on average (ratio {mlc_vs_mlf:.3} <= 1.03)"),
            mlc_vs_mlf <= 1.03,
        ),
        ShapeCheck::new(
            format!(
                "ML_C (near-)lowest average on most circuits ({mlc_best}/{})",
                mlc_avgs.len()
            ),
            mlc_best * 3 >= mlc_avgs.len() * 2,
        ),
    ];
    report_shape_checks(&checks)
}
