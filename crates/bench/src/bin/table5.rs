//! Regenerates **Table V**: `ML_F` for matching ratios R ∈ {1.0, 0.5, 0.33}
//! — minimum cut, average cut, and CPU time.
//!
//! Paper finding: slower coarsening (smaller R) lowers average cuts —
//! dramatically so on the largest circuits — at a noticeable CPU cost;
//! R = 0.5 and R = 0.33 are nearly indistinguishable.

use mlpart_bench::{algos, print_level_stats, sweeps, HarnessArgs};
use mlpart_core::{ml_bipartition, MlConfig};
use mlpart_hypergraph::rng::seeded_rng;

fn main() {
    let args = HarnessArgs::from_env();
    let ok = sweeps::run_ratio_sweep("Table V — ML_F", &args, algos::ml_f_in);

    // Appendix: the per-level refinement trajectory of one representative
    // run (ML_F, R = 0.5) on the largest selected circuit, from the
    // instrumentation in `MlResult::level_stats`.
    if let Some(c) = args.circuits().iter().max_by_key(|c| c.modules) {
        let h = c.generate(args.seed);
        let mut rng = seeded_rng(args.seed);
        let (_, r) = ml_bipartition(&h, &MlConfig::fm().with_ratio(0.5), &mut rng);
        print_level_stats(
            &format!(
                "per-level stats — {} (ML_F, R = 0.5, seed {})",
                c.name, args.seed
            ),
            &r.level_stats,
        );
    }
    std::process::exit(i32::from(!ok));
}
