//! Regenerates **Table V**: `ML_F` for matching ratios R ∈ {1.0, 0.5, 0.33}
//! — minimum cut, average cut, and CPU time.
//!
//! Paper finding: slower coarsening (smaller R) lowers average cuts —
//! dramatically so on the largest circuits — at a noticeable CPU cost;
//! R = 0.5 and R = 0.33 are nearly indistinguishable.

use mlpart_bench::{algos, sweeps, HarnessArgs};

fn main() {
    let args = HarnessArgs::from_env();
    let ok = sweeps::run_ratio_sweep("Table V — ML_F", &args, algos::ml_f);
    std::process::exit(i32::from(!ok));
}
