//! Regenerates **Table VI**: `ML_C` for matching ratios R ∈ {1.0, 0.5, 0.33}
//! — minimum cut, average cut, and CPU time.
//!
//! Paper finding: as for Table V, slower coarsening helps `ML_C`'s averages;
//! with small R the gap between the FM and CLIP engines narrows, because the
//! extra levels give even an inferior engine more refinement opportunities.

use mlpart_bench::{algos, sweeps, HarnessArgs};

fn main() {
    let args = HarnessArgs::from_env();
    let ok = sweeps::run_ratio_sweep("Table VI — ML_C", &args, algos::ml_c_in);
    std::process::exit(i32::from(!ok));
}
