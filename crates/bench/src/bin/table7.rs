//! Regenerates **Table VII**: cut-size comparison of `ML_C` (R = 0.5) at
//! full and reduced run budgets against the competing algorithms.
//!
//! We reimplement the algorithms whose descriptions permit a faithful
//! reconstruction (FM, CLIP, LSMC) and quote the paper's published
//! improvement percentages for the remaining literature columns (GMetis,
//! HB, PARABOLI, GFM, CL-LA3, CD-LA3, CL-PR — see `mlpart_bench::paper`).
//!
//! Paper finding: `ML_C` with 100 runs beats every competitor (6.9-27.9%);
//! even 10 runs of `ML_C` still win (3.0-20.6%).

use mlpart_bench::{algos, paper, report_shape_checks, run_many_par, HarnessArgs, ShapeCheck};
use mlpart_hypergraph::rng::child_seed;

fn main() {
    let args = HarnessArgs::from_env();
    let few = (args.runs / 10).max(2);
    println!(
        "Table VII — ML_C (R=0.5) vs other bipartitioners ({} and {} runs, seed {})",
        args.runs, few, args.seed
    );
    println!();
    println!(
        "{:<16} {:>9} {:>9} {:>7} {:>7} {:>7}",
        "Test Case",
        format!("MLC({})", args.runs),
        format!("MLC({few})"),
        "FM",
        "CLIP",
        "LSMC"
    );
    let (mut mlc_full, mut mlc_few, mut fm_min, mut clip_min, mut lsmc_min) =
        (Vec::new(), Vec::new(), Vec::new(), Vec::new(), Vec::new());
    for (ci, c) in args.circuits().iter().enumerate() {
        let h = c.generate(args.seed);
        let base = child_seed(args.seed, ci as u64);
        let mlc = run_many_par(args.runs, child_seed(base, 0), args.threads, |rng, ws| {
            algos::ml_c_in(&h, 0.5, rng, ws)
        });
        let mlc10 = run_many_par(few, child_seed(base, 1), args.threads, |rng, ws| {
            algos::ml_c_in(&h, 0.5, rng, ws)
        });
        let fm = run_many_par(args.runs, child_seed(base, 2), args.threads, |rng, ws| {
            algos::fm_in(&h, rng, ws)
        });
        let clip = run_many_par(args.runs, child_seed(base, 3), args.threads, |rng, ws| {
            algos::clip_in(&h, rng, ws)
        });
        // The paper's LSMC column is 100 descents of a single chain; scale
        // descents with the run budget so CPU stays comparable. (A single
        // chain is inherently sequential, so this cell ignores the worker
        // workspace and runs on one start.)
        let lsmc = run_many_par(1, child_seed(base, 4), args.threads, |rng, _ws| {
            algos::lsmc(&h, args.runs.max(10), rng)
        });
        println!(
            "{:<16} {:>9} {:>9} {:>7} {:>7} {:>7}",
            c.name, mlc.cut.min, mlc10.cut.min, fm.cut.min, clip.cut.min, lsmc.cut.min
        );
        mlc_full.push(mlc.cut.min.max(1) as f64);
        mlc_few.push(mlc10.cut.min.max(1) as f64);
        fm_min.push(fm.cut.min.max(1) as f64);
        clip_min.push(clip.cut.min.max(1) as f64);
        lsmc_min.push(lsmc.cut.min.max(1) as f64);
    }
    let imp =
        |ours: &[f64], other: &[f64]| (1.0 - mlpart_bench::geomean_ratio(ours, other)) * 100.0;
    println!();
    println!(
        "% improvement of MLC({}) vs FM:   {:>6.1}",
        args.runs,
        imp(&mlc_full, &fm_min)
    );
    println!(
        "% improvement of MLC({}) vs CLIP: {:>6.1}",
        args.runs,
        imp(&mlc_full, &clip_min)
    );
    println!(
        "% improvement of MLC({}) vs LSMC: {:>6.1}",
        args.runs,
        imp(&mlc_full, &lsmc_min)
    );
    println!(
        "% improvement of MLC({few}) vs CLIP: {:>6.1}",
        imp(&mlc_few, &clip_min)
    );
    println!();
    println!("paper-published improvement percentages (real circuits, for reference):");
    for row in paper::TABLE7_IMPROVEMENTS {
        println!(
            "  vs {:<10} ML_C(100): {:>5.1}%   ML_C(10): {:>5.1}%",
            row.versus, row.ml100_pct, row.ml10_pct
        );
    }
    let checks = vec![
        ShapeCheck::new(
            format!("ML_C(full) beats flat FM (improvement {:.1}% > 0)", imp(&mlc_full, &fm_min)),
            imp(&mlc_full, &fm_min) > 0.0,
        ),
        ShapeCheck::new(
            format!("ML_C(full) beats flat CLIP (improvement {:.1}% > 0)", imp(&mlc_full, &clip_min)),
            imp(&mlc_full, &clip_min) > 0.0,
        ),
        ShapeCheck::new(
            format!("ML_C(full) beats LSMC (improvement {:.1}% > 0)", imp(&mlc_full, &lsmc_min)),
            imp(&mlc_full, &lsmc_min) > 0.0,
        ),
        // At the paper's scale this is 10 ML_C runs vs 100 competitor runs
        // and ML_C still wins; at harness scale the few-run budget only has
        // to stay in the same league.
        ShapeCheck::new(
            format!(
                "ML_C(few) remains competitive with CLIP at a 1/10 budget (improvement {:.1}% > -5)",
                imp(&mlc_few, &clip_min)
            ),
            imp(&mlc_few, &clip_min) > -5.0,
        ),
    ];
    std::process::exit(i32::from(!report_shape_checks(&checks)));
}
