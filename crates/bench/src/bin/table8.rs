//! Regenerates **Table VIII**: CPU-time comparison of a small `ML_C` run
//! budget against the other implemented algorithms.
//!
//! The paper reports total time for 10 runs of `ML_C` on a Sun Sparc 5 and
//! observes it is cheaper than every competitor except GMetis. Our harness
//! measures summed per-start CPU on the synthetic suite for the algorithms
//! we implement (thread-count independent, matching the paper's total-CPU
//! convention); cross-platform absolute times are meaningless, so the shape
//! check compares *ratios*: ML_C's run budget must cost no more than a small
//! multiple of the flat engines at equal run counts.

use mlpart_bench::{algos, report_shape_checks, run_many_par, HarnessArgs, ShapeCheck};
use mlpart_hypergraph::rng::child_seed;

fn main() {
    let args = HarnessArgs::from_env();
    let few = (args.runs / 10).max(1).max(2);
    println!(
        "Table VIII — CPU comparison: {few} runs of ML_C vs {0} runs of FM/CLIP, one LSMC chain (seed {1})",
        args.runs, args.seed
    );
    println!();
    println!(
        "{:<16} {:>10} {:>10} {:>10} {:>10}",
        "Test Case",
        format!("MLC({few})"),
        format!("FM({})", args.runs),
        format!("CLIP({})", args.runs),
        "LSMC"
    );
    let (mut mlc_t, mut fm_t, mut clip_t, mut lsmc_t) =
        (Vec::new(), Vec::new(), Vec::new(), Vec::new());
    for (ci, c) in args.circuits().iter().enumerate() {
        let h = c.generate(args.seed);
        let base = child_seed(args.seed, 7_000 + ci as u64);
        let mlc = run_many_par(few, child_seed(base, 0), args.threads, |rng, ws| {
            algos::ml_c_in(&h, 0.5, rng, ws)
        });
        let fm = run_many_par(args.runs, child_seed(base, 1), args.threads, |rng, ws| {
            algos::fm_in(&h, rng, ws)
        });
        let clip = run_many_par(args.runs, child_seed(base, 2), args.threads, |rng, ws| {
            algos::clip_in(&h, rng, ws)
        });
        // Mirror the paper's budget proportions: its LSMC column is a
        // 100-descent chain against 10 ML_C runs, i.e. 10 descents per run.
        let lsmc = run_many_par(1, child_seed(base, 3), args.threads, |rng, _ws| {
            algos::lsmc(&h, few * 10, rng)
        });
        println!(
            "{:<16} {:>10.2} {:>10.2} {:>10.2} {:>10.2}",
            c.name, mlc.cpu_secs, fm.cpu_secs, clip.cpu_secs, lsmc.cpu_secs
        );
        mlc_t.push(mlc.cpu_secs.max(1e-9));
        fm_t.push(fm.cpu_secs.max(1e-9));
        clip_t.push(clip.cpu_secs.max(1e-9));
        lsmc_t.push(lsmc.cpu_secs.max(1e-9));
    }
    let vs_clip = mlpart_bench::geomean_ratio(&mlc_t, &clip_t);
    let vs_lsmc = mlpart_bench::geomean_ratio(&mlc_t, &lsmc_t);
    println!();
    println!(
        "geomean time ratio ML_C({few}) / CLIP({}): {vs_clip:.3}",
        args.runs
    );
    println!("geomean time ratio ML_C({few}) / LSMC:      {vs_lsmc:.3}");
    println!();
    println!(
        "paper reference: 10 runs of ML_C used less CPU than every competitor \
         except GMetis (Table VIII, Sun Sparc 5)."
    );
    let checks = vec![
        ShapeCheck::new(
            format!(
                "small ML_C budget cheaper than the full flat-CLIP budget (ratio {vs_clip:.2} < 1)"
            ),
            vs_clip < 1.0,
        ),
        ShapeCheck::new(
            format!("small ML_C budget cheaper than an LSMC chain (ratio {vs_lsmc:.2} < 1)"),
            vs_lsmc < 1.0,
        ),
    ];
    std::process::exit(i32::from(!report_shape_checks(&checks)));
}
