//! Regenerates **Table IX**: 4-way partitioning — multilevel quadrisection
//! (`ML_F`, R = 1.0, T = 100) vs GORDIAN-style placement-derived
//! quadrisection vs flat 4-way FM/CLIP vs 4-way LSMC.
//!
//! Paper finding: both the minimum and the average `ML_F` cuts beat the
//! GORDIAN-derived quadrisection, and the flat move-based engines trail far
//! behind on larger circuits.

use mlpart_bench::{algos, paper, report_shape_checks, run_many_par, HarnessArgs, ShapeCheck};
use mlpart_hypergraph::rng::child_seed;

fn main() {
    let args = HarnessArgs::from_env();
    println!(
        "Table IX — 4-way partitioning ({} runs per cell, seed {})",
        args.runs, args.seed
    );
    println!();
    println!(
        "{:<16} {:>14} {:>9} {:>7} {:>7} {:>8} {:>8}   {:>9}",
        "Test Case", "ML_F min(avg)", "GORDIAN", "FM", "CLIP", "LSMC_F", "LSMC_C", "paperML_F"
    );
    let (mut ml_min, mut gordian_best, mut fm_min, mut clip_min) =
        (Vec::new(), Vec::new(), Vec::new(), Vec::new());
    for (ci, c) in args.circuits().iter().enumerate() {
        let (h, pads) = c.generate_with_pads(args.seed);
        let base = child_seed(args.seed, 9_000 + ci as u64);
        let ml = run_many_par(args.runs, child_seed(base, 0), args.threads, |rng, ws| {
            algos::ml4_in(&h, &[], rng, ws)
        });
        let (g_quad, g_lin) = algos::gordian_cuts(&h, &pads);
        let gordian = g_quad.min(g_lin);
        let fm = run_many_par(args.runs, child_seed(base, 1), args.threads, |rng, ws| {
            algos::fm4_in(&h, rng, ws)
        });
        let clip = run_many_par(args.runs, child_seed(base, 2), args.threads, |rng, ws| {
            algos::clip4_in(&h, rng, ws)
        });
        let descents = args.runs.max(10);
        let lf = run_many_par(1, child_seed(base, 3), args.threads, |rng, _ws| {
            algos::lsmc4_f(&h, descents, rng)
        });
        let lc = run_many_par(1, child_seed(base, 4), args.threads, |rng, _ws| {
            algos::lsmc4_c(&h, descents, rng)
        });
        let p = paper::table9_row(c.name);
        println!(
            "{:<16} {:>6} ({:>5.0}) {:>9} {:>7} {:>7} {:>8} {:>8}   {:>9}",
            c.name,
            ml.cut.min,
            ml.cut.avg,
            gordian,
            fm.cut.min,
            clip.cut.min,
            lf.cut.min,
            lc.cut.min,
            p.map_or("-".to_owned(), |r| format!(
                "{}({:.0})",
                r.ml_f_min, r.ml_f_avg
            )),
        );
        ml_min.push(ml.cut.min.max(1) as f64);
        gordian_best.push(gordian.max(1) as f64);
        fm_min.push(fm.cut.min.max(1) as f64);
        clip_min.push(clip.cut.min.max(1) as f64);
    }
    let vs_gordian = mlpart_bench::geomean_ratio(&ml_min, &gordian_best);
    let vs_fm = mlpart_bench::geomean_ratio(&ml_min, &fm_min);
    let vs_clip = mlpart_bench::geomean_ratio(&ml_min, &clip_min);
    println!();
    println!("geomean min-cut ratio ML_F/GORDIAN: {vs_gordian:.3}");
    println!("geomean min-cut ratio ML_F/FM4:     {vs_fm:.3}");
    println!("geomean min-cut ratio ML_F/CLIP4:   {vs_clip:.3}");
    let wins = ml_min
        .iter()
        .zip(&gordian_best)
        .filter(|(m, g)| m <= g)
        .count();
    let checks = vec![
        ShapeCheck::new(
            format!(
                "ML_F min cut beats the placement-derived quadrisection on most circuits ({wins}/{})",
                ml_min.len()
            ),
            wins * 3 >= ml_min.len() * 2,
        ),
        ShapeCheck::new(
            format!("ML_F beats GORDIAN overall (ratio {vs_gordian:.3} < 1)"),
            vs_gordian < 1.0,
        ),
        ShapeCheck::new(
            format!("ML_F beats flat 4-way FM (ratio {vs_fm:.3} < 1)"),
            vs_fm < 1.0,
        ),
    ];
    std::process::exit(i32::from(!report_shape_checks(&checks)));
}
