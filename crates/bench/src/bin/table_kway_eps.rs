//! Sweeps the constraint-generic drivers over k ∈ {2, 4, 8} × ε ∈ {0.02,
//! 0.10} on the selected suite — the cost surface the constraint model adds
//! on top of the paper's fixed k = 2/4, r = 0.1 tables.
//!
//! Every cell pins two modules to opposite parts so the fixed-terminal path
//! is exercised end to end (the wrappers assert the pins held), and re-runs
//! the batch at one and four worker threads to recheck the executor's
//! bit-identity contract on the constrained code paths. Emits one JSON line
//! per (circuit, k, ε) cell in the `BENCH_*.json` format plus a `meta`
//! line; exits non-zero on any determinism violation.

use mlpart_bench::{algos, run_many_par, with_report, HarnessArgs};
use mlpart_hypergraph::rng::child_seed;
use mlpart_hypergraph::{Constraints, ModuleId};

const KS: [u32; 3] = [2, 4, 8];
const EPSILONS: [f64; 2] = [0.02, 0.10];

fn main() {
    let args = HarnessArgs::from_env();
    let ok = with_report(&args, "table_kway_eps", || sweep(&args));
    std::process::exit(i32::from(!ok));
}

fn sweep(args: &HarnessArgs) -> bool {
    println!(
        "{{\"group\":\"kway_eps\",\"bench\":\"meta\",\"runs_per_cell\":{},\
         \"seed\":{},\"note\":\"two modules pinned to opposite parts per \
         cell; each cell re-run at 1 and 4 threads and compared \
         bit-for-bit\"}}",
        args.runs, args.seed
    );
    let mut ok = true;
    for (ci, c) in args.circuits().iter().enumerate() {
        let h = c.generate(args.seed);
        for (ki, &k) in KS.iter().enumerate() {
            for (ei, &eps) in EPSILONS.iter().enumerate() {
                // Pin the first module to the last part and a mid-netlist
                // module to part 0 — far apart in every circuit generator's
                // layout, so the pins genuinely constrain the partition.
                let pins = vec![
                    (ModuleId::new(0), k - 1),
                    (ModuleId::new(h.num_modules() / 2), 0),
                ];
                let cons = Constraints::new(k, eps, pins).expect("pins in range, ε > 0");
                let cell = (ci * KS.len() + ki) * EPSILONS.len() + ei;
                let seed = child_seed(args.seed, 7_000 + cell as u64);
                let job = |rng: &mut _, ws: &mut _| match k {
                    2 => algos::ml_c_constrained_in(&h, 0.5, &cons, rng, ws),
                    4 => algos::ml4_constrained_in(&h, &cons, rng, ws),
                    _ => algos::ml_general_k_in(&h, 0.5, &cons, rng, ws),
                };
                let stats = run_many_par(args.runs, seed, 1, job);
                let par = run_many_par(args.runs, seed, 4, job);
                if stats != par {
                    eprintln!(
                        "DETERMINISM VIOLATION: {} k={k} eps={eps} changed \
                         cut statistics between 1 and 4 threads",
                        c.name
                    );
                    ok = false;
                }
                println!(
                    "{{\"group\":\"kway_eps\",\"bench\":\"{}/k{k}/eps{eps}\",\
                     \"min_cut\":{},\"avg_cut\":{:.2},\"cpu_secs\":{:.6},\
                     \"wall_secs\":{:.6}}}",
                    c.name, stats.cut.min, stats.cut.avg, stats.cpu_secs, stats.wall_secs,
                );
            }
        }
    }
    ok
}
