//! Phase-attributed profiling of the paper's core comparisons: the Table II
//! FM bucket policies (LIFO/FIFO/RND) and the Table IV multilevel cells
//! (CLIP / ML_F / ML_C at R = 1), each run under a trace capture and rolled
//! up into per-phase self/total time — plus allocation tallies in an
//! `obs-alloc` build.
//!
//! Emits the `BENCH_phase_profile.json` JSON-lines artifact: a `meta` line,
//! then one line per (cell, phase) with the rollup columns. Time and alloc
//! values are non-normative telemetry (they vary run to run); the *phase
//! structure* — which phases appear, in what order, with what counts — is
//! deterministic and is what `obs-diff` byte-verifies across runs.
//!
//! Needs the `obs` feature; refuses to run without it rather than emitting
//! an empty profile.

#[cfg(feature = "obs")]
use mlpart_bench::{algos, run_many_par, HarnessArgs};
#[cfg(feature = "obs")]
use mlpart_fm::BucketPolicy;
#[cfg(feature = "obs")]
use mlpart_hypergraph::rng::child_seed;

#[cfg(not(feature = "obs"))]
fn main() {
    eprintln!(
        "table_profile needs a binary built with the `obs` feature \
         (cargo run --release -p mlpart-bench --features obs --bin table_profile)"
    );
    std::process::exit(2);
}

#[cfg(feature = "obs")]
fn main() {
    let args = HarnessArgs::from_env();
    println!(
        "{{\"group\":\"phase_profile\",\"bench\":\"meta\",\"runs_per_cell\":{},\
         \"seed\":{},\"threads\":{},\"alloc_tracked\":{},\"note\":\"per-phase \
         total/self wall time and allocation rollups for the table2 bucket \
         policies and table4 multilevel cells; ns and alloc values are \
         non-normative telemetry, phase structure and counts are \
         deterministic\"}}",
        args.runs,
        args.seed,
        args.threads,
        u8::from(cfg!(feature = "obs-alloc")),
    );
    let mut cells_run = 0usize;
    for (ci, c) in args.circuits().iter().enumerate() {
        let h = c.generate(args.seed);
        let base = child_seed(args.seed, 11_000 + ci as u64 * 8);
        type Job<'h> = Box<
            dyn Fn(&mut mlpart_hypergraph::rng::MlRng, &mut mlpart_fm::RefineWorkspace) -> u64
                + Sync
                + 'h,
        >;
        let cells: Vec<(&str, u64, Job)> = vec![
            // Table II: flat FM under each bucket policy.
            (
                "table2/lifo",
                0,
                Box::new(|rng: &mut _, ws: &mut _| {
                    algos::fm_with_policy_in(&h, BucketPolicy::Lifo, rng, ws)
                }),
            ),
            (
                "table2/fifo",
                1,
                Box::new(|rng: &mut _, ws: &mut _| {
                    algos::fm_with_policy_in(&h, BucketPolicy::Fifo, rng, ws)
                }),
            ),
            (
                "table2/rnd",
                2,
                Box::new(|rng: &mut _, ws: &mut _| {
                    algos::fm_with_policy_in(&h, BucketPolicy::Random, rng, ws)
                }),
            ),
            // Table IV: CLIP vs the multilevel variants at R = 1.
            (
                "table4/clip",
                3,
                Box::new(|rng: &mut _, ws: &mut _| algos::clip_in(&h, rng, ws)),
            ),
            (
                "table4/ml_f",
                4,
                Box::new(|rng: &mut _, ws: &mut _| algos::ml_f_in(&h, 1.0, rng, ws)),
            ),
            (
                "table4/ml_c",
                5,
                Box::new(|rng: &mut _, ws: &mut _| algos::ml_c_in(&h, 1.0, rng, ws)),
            ),
        ];
        for (cell, lane, job) in &cells {
            mlpart_obs::force_enabled(true);
            let (_, trace) = mlpart_obs::capture(|| {
                let _run = mlpart_obs::span(
                    "run",
                    &[("runs", args.runs.into()), ("seed", args.seed.into())],
                );
                run_many_par(args.runs, child_seed(base, *lane), args.threads, job)
            });
            mlpart_obs::force_enabled(false);
            let trace = trace.expect("gate forced on");
            for phase in mlpart_obs::profile::phase_rollup(&trace) {
                println!(
                    "{{\"group\":\"phase_profile\",\"bench\":\"{}/{cell}/{}\",\
                     \"count\":{},\"total_ns\":{},\"self_ns\":{},\
                     \"alloc_bytes\":{},\"alloc_count\":{},\"alloc_peak\":{}}}",
                    c.name,
                    phase.name,
                    phase.count,
                    phase.total_ns,
                    phase.self_ns,
                    phase.alloc_bytes,
                    phase.alloc_count,
                    phase.alloc_peak,
                );
            }
            cells_run += 1;
        }
    }
    eprintln!("profiled {cells_run} cells");
}
