//! Experiment harness regenerating every table and figure of *Multilevel
//! Circuit Partitioning* (Alpert, Huang, Kahng — DAC 1997).
//!
//! One binary per table/figure lives in `src/bin/` (`table1` … `table9`,
//! `fig4`, `ablation`). Each prints the paper's row layout on the synthetic
//! suite plus a shape-check verdict comparing the *relationships* the paper
//! reports (who wins, roughly by how much) — absolute values differ because
//! the circuits are synthetic stand-ins (see `DESIGN.md`).
//!
//! Shared infrastructure: CLI parsing ([`HarnessArgs`]), timed multi-run
//! statistics ([`run_many`]), algorithm wrappers ([`algos`]), and the paper's
//! published numbers ([`paper`]) for the comparison columns we do not
//! reimplement.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod algos;
pub mod paper;
pub mod sweeps;

use mlpart_fm::RefineWorkspace;
use mlpart_gen::{SizeClass, SuiteCircuit, SUITE};
use mlpart_hypergraph::rng::{child_seed, seeded_rng, MlRng};
use mlpart_hypergraph::CutStats;
use std::time::Instant;

/// Statistics plus timing for a batch of runs of one algorithm on one
/// circuit.
///
/// Timing is split in two because the batch may have run on several threads:
/// `cpu_secs` sums the per-start times (the paper's "total CPU for 100 runs"
/// convention — what every table's time column prints), while `wall_secs` is
/// what the user actually waited. Sequentially the two coincide up to
/// harness overhead; in parallel `wall_secs` shrinks with the thread count
/// and `cpu_secs` does not.
///
/// Equality ignores both timing fields (wall-clock noise), so fixed-seed
/// batches compare equal across runs and thread counts — mirroring
/// `LevelStats`/`PassStats`.
#[derive(Debug, Clone, Copy)]
pub struct RunStats {
    /// Min/avg/std over the runs' cuts.
    pub cut: CutStats,
    /// Summed per-start seconds (CPU-time proxy; comparable to the paper's
    /// total-CPU columns regardless of thread count).
    pub cpu_secs: f64,
    /// Elapsed wall-clock seconds for the whole batch.
    pub wall_secs: f64,
}

impl PartialEq for RunStats {
    fn eq(&self, other: &Self) -> bool {
        self.cut == other.cut
    }
}

/// Runs `f` `runs` times with independent child seeds and collects cut
/// statistics and total time, strictly sequentially on the calling thread.
/// [`run_many_par`] is the parallel twin with bit-identical cut statistics.
///
/// # Panics
///
/// Panics if `runs == 0`.
pub fn run_many<F>(runs: usize, base_seed: u64, mut f: F) -> RunStats
where
    F: FnMut(&mut MlRng) -> u64,
{
    assert!(runs > 0, "need at least one run");
    let start = Instant::now();
    let mut cpu_secs = 0.0;
    let samples: Vec<u64> = (0..runs)
        .map(|i| {
            let t0 = Instant::now();
            let mut rng = seeded_rng(child_seed(base_seed, i as u64));
            let cut = f(&mut rng);
            cpu_secs += t0.elapsed().as_secs_f64();
            cut
        })
        .collect();
    RunStats {
        cut: CutStats::from_samples(&samples),
        cpu_secs,
        wall_secs: start.elapsed().as_secs_f64(),
    }
}

/// The parallel twin of [`run_many`]: fans the `runs` starts out over
/// `threads` worker threads through the `mlpart-exec` execution layer. Each
/// start runs with the same `child_seed(base_seed, i)` stream the sequential
/// path uses and each worker reuses a long-lived [`RefineWorkspace`], so the
/// cut statistics are **bit-identical to [`run_many`] for every thread
/// count** — only the timing fields differ.
///
/// # Panics
///
/// Panics if `runs == 0` or `threads == 0`.
pub fn run_many_par<F>(runs: usize, base_seed: u64, threads: usize, f: F) -> RunStats
where
    F: Fn(&mut MlRng, &mut RefineWorkspace) -> u64 + Sync,
{
    let (samples, timing) = mlpart_exec::run_starts(runs, base_seed, threads, &f);
    let stats = RunStats {
        cut: CutStats::from_samples(&samples),
        cpu_secs: timing.cpu_secs,
        wall_secs: timing.wall_secs,
    };
    // One deterministic summary event per batch; timing stays out of the
    // args so trace content is reproducible across runs and thread counts.
    #[cfg(feature = "obs")]
    if mlpart_obs::recording() {
        mlpart_obs::counter(
            "batch",
            &[
                ("runs", runs.into()),
                ("seed", base_seed.into()),
                ("cut_min", stats.cut.min.into()),
                ("cut_max", stats.cut.max.into()),
                ("cut_avg", stats.cut.avg.into()),
            ],
        );
    }
    stats
}

/// Runs `body` under the observability gate when `--report-out` or
/// `--trace-out` was given. `--report-out` writes a `mlpart-run-report-v3`
/// JSON document capturing every batch the body executed (each multi-start
/// batch contributes its per-start `start` spans plus one `batch` summary
/// counter); `--trace-out` writes the same capture as a Chrome trace, ready
/// for `chrome://tracing` or `obs-diff`. Without the `obs` feature both
/// flags are rejected up front so an artifact is never silently skipped.
/// Returns whatever `body` returns.
pub fn with_report<R>(args: &HarnessArgs, harness: &'static str, body: impl FnOnce() -> R) -> R {
    #[cfg(not(feature = "obs"))]
    {
        let _ = harness;
        if args.report_out.is_some() || args.trace_out.is_some() {
            eprintln!(
                "--report-out/--trace-out need a binary built with the `obs` \
                 feature (cargo build --release --features obs)"
            );
            std::process::exit(2);
        }
        body()
    }
    #[cfg(feature = "obs")]
    {
        if args.report_out.is_none() && args.trace_out.is_none() {
            return body();
        }
        // Atomic (write-temp-then-rename): an interrupted harness never
        // leaves a torn half-report for obs-diff to choke on.
        let write_or_die =
            |path: &str, what: &str, content: &str| match mlpart_hypergraph::io::write_atomic(
                path,
                content.as_bytes(),
            ) {
                Ok(()) => eprintln!("{what} written to {path}"),
                Err(e) => {
                    eprintln!("cannot write {path}: {e}");
                    std::process::exit(1);
                }
            };
        mlpart_obs::force_enabled(true);
        let wall = Instant::now();
        let (value, trace) = mlpart_obs::capture(|| {
            let _run = mlpart_obs::span(
                "run",
                &[("runs", args.runs.into()), ("seed", args.seed.into())],
            );
            body()
        });
        let trace = trace.expect("gate forced on");
        if let Some(path) = &args.trace_out {
            write_or_die(path, "trace", &mlpart_obs::to_chrome_trace(&trace));
        }
        if let Some(path) = &args.report_out {
            let report = mlpart_obs::report::RunReport {
                meta: vec![
                    ("harness", mlpart_obs::V::S(harness)),
                    ("runs", args.runs.into()),
                    ("seed", args.seed.into()),
                    ("threads", args.threads.into()),
                ],
                cuts: Vec::new(), // per-batch cuts live in the `batch` counters
                failures: Vec::new(),
                truncations: Vec::new(),
                retries: Vec::new(),
                repairs: Vec::new(),
                wall_secs: wall.elapsed().as_secs_f64(),
                cpu_secs: 0.0,
                trace,
            };
            write_or_die(path, "run report", &report.to_json());
        }
        value
    }
}

/// Which circuits a harness binary should sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SuiteSelection {
    /// All circuits under 3 500 modules (default).
    Small,
    /// Small + medium circuits (everything but `syn-golem3`).
    Medium,
    /// The entire 23-circuit suite.
    All,
    /// An explicit list of circuit names.
    Named(Vec<String>),
}

/// Command-line arguments shared by every harness binary.
///
/// ```text
/// --runs N        runs per (circuit, algorithm) cell   [default 10]
/// --seed S        base seed                            [default 1997]
/// --suite small|medium|all|name1,name2,...             [default small]
/// --threads N     worker threads for multi-start cells [default: available parallelism]
/// --report-out P  write a machine-readable run report  [needs the `obs` feature]
/// ```
///
/// `--threads` only changes wall-clock time: per-start seed streams are
/// independent and the reduction is deterministic, so every table's numbers
/// are bit-identical at any thread count (see `mlpart-exec`).
#[derive(Debug, Clone, PartialEq)]
pub struct HarnessArgs {
    /// Runs per cell.
    pub runs: usize,
    /// Base seed; every cell derives independent child seeds from it.
    pub seed: u64,
    /// Circuit selection.
    pub suite: SuiteSelection,
    /// Worker threads for multi-start cells (never changes results).
    pub threads: usize,
    /// Write a `mlpart-run-report-v3` JSON document here (needs the `obs`
    /// feature; see [`with_report`]).
    pub report_out: Option<String>,
    /// Write the captured Chrome trace here (needs the `obs` feature; see
    /// [`with_report`]).
    pub trace_out: Option<String>,
}

/// The complete usage line; printed on `--help` and flag errors.
pub const USAGE: &str = "usage: --runs N --seed S --suite small|medium|all|name,... --threads N\n\
     \x20 --runs N      runs per (circuit, algorithm) cell   [default 10]\n\
     \x20 --seed S      base seed                            [default 1997]\n\
     \x20 --suite SEL   small|medium|all|name1,name2,...     [default small]\n\
     \x20 --threads N   worker threads for multi-start cells [default: available parallelism];\n\
     \x20               results are bit-identical for every thread count\n\
     \x20 --report-out PATH  write a machine-readable run report (needs the `obs` feature)\n\
     \x20 --trace-out PATH   write a Chrome trace of the run (needs the `obs` feature)";

impl Default for HarnessArgs {
    fn default() -> Self {
        HarnessArgs {
            runs: 10,
            seed: 1997,
            suite: SuiteSelection::Small,
            threads: mlpart_exec::default_threads(),
            report_out: None,
            trace_out: None,
        }
    }
}

impl HarnessArgs {
    /// Parses `std::env::args()`-style arguments (the first element is the
    /// program name and is skipped).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown flags or malformed
    /// values.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut out = HarnessArgs::default();
        let mut it = args.into_iter().skip(1);
        while let Some(flag) = it.next() {
            let mut value = |name: &str| {
                it.next()
                    .ok_or_else(|| format!("flag {name} requires a value"))
            };
            match flag.as_str() {
                "--runs" => {
                    out.runs = value("--runs")?
                        .parse()
                        .map_err(|_| "invalid --runs value".to_owned())?;
                    if out.runs == 0 {
                        return Err("--runs must be positive".to_owned());
                    }
                }
                "--seed" => {
                    out.seed = value("--seed")?
                        .parse()
                        .map_err(|_| "invalid --seed value".to_owned())?;
                }
                "--suite" => {
                    let v = value("--suite")?;
                    out.suite = match v.as_str() {
                        "small" => SuiteSelection::Small,
                        "medium" => SuiteSelection::Medium,
                        "all" => SuiteSelection::All,
                        names => {
                            let list: Vec<String> = names.split(',').map(str::to_owned).collect();
                            // Validate here so `from_env` exits with a flag
                            // error (code 2) instead of `circuits()`
                            // panicking mid-harness.
                            if let Some(bad) =
                                list.iter().find(|n| mlpart_gen::by_name(n).is_none())
                            {
                                return Err(format!(
                                    "unknown circuit {bad:?} in --suite \
                                     (expected small|medium|all or suite names like balu)"
                                ));
                            }
                            SuiteSelection::Named(list)
                        }
                    };
                }
                "--threads" => {
                    out.threads = value("--threads")?
                        .parse()
                        .map_err(|_| "invalid --threads value".to_owned())?;
                    if out.threads == 0 {
                        return Err("--threads must be positive".to_owned());
                    }
                }
                "--report-out" => out.report_out = Some(value("--report-out")?),
                "--trace-out" => out.trace_out = Some(value("--trace-out")?),
                "--help" | "-h" => return Err(USAGE.to_owned()),
                other => return Err(format!("unknown flag {other}\n{USAGE}")),
            }
        }
        Ok(out)
    }

    /// Parses the real process arguments, printing usage and exiting on
    /// error. Convenience for binaries.
    pub fn from_env() -> Self {
        match Self::parse(std::env::args()) {
            Ok(args) => args,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }

    /// Resolves the selection against the suite.
    ///
    /// # Panics
    ///
    /// Panics if a named circuit does not exist — unreachable for values
    /// produced by [`HarnessArgs::parse`], which rejects unknown names as a
    /// flag error.
    pub fn circuits(&self) -> Vec<&'static SuiteCircuit> {
        match &self.suite {
            SuiteSelection::Small => mlpart_gen::small_suite(),
            SuiteSelection::Medium => SUITE
                .iter()
                .filter(|c| c.size_class() != SizeClass::Large)
                .collect(),
            SuiteSelection::All => SUITE.iter().collect(),
            SuiteSelection::Named(names) => names
                .iter()
                .map(|n| mlpart_gen::by_name(n).unwrap_or_else(|| panic!("unknown circuit {n:?}")))
                .collect(),
        }
    }
}

/// A shape check: one relationship the paper's table asserts, verified on
/// the synthetic reproduction.
#[derive(Debug, Clone, PartialEq)]
pub struct ShapeCheck {
    /// What relationship is being checked.
    pub description: String,
    /// Whether the reproduction exhibits it.
    pub holds: bool,
}

impl ShapeCheck {
    /// Creates a check result.
    pub fn new(description: impl Into<String>, holds: bool) -> Self {
        ShapeCheck {
            description: description.into(),
            holds,
        }
    }
}

/// Prints the shape-check block every table binary ends with and returns
/// `true` if all checks hold.
pub fn report_shape_checks(checks: &[ShapeCheck]) -> bool {
    println!();
    println!("shape checks vs. paper:");
    let mut all = true;
    for c in checks {
        let mark = if c.holds { "PASS" } else { "FAIL" };
        println!("  [{mark}] {}", c.description);
        all &= c.holds;
    }
    all
}

/// Prints the per-level refinement trajectory of one multilevel run — the
/// instrumentation collected in `MlResult::level_stats` /
/// `MlKwayResult::level_stats` (coarsest level first).
pub fn print_level_stats(title: &str, stats: &[mlpart_core::LevelStats]) {
    println!();
    println!("{title}");
    println!(
        "{:>5} {:>8} {:>11} {:>10} {:>9} {:>10} {:>9} {:>6} {:>8}",
        "level",
        "modules",
        "cut_before",
        "cut_after",
        "kept",
        "attempted",
        "rebal",
        "passes",
        "fill_ms"
    );
    for s in stats {
        println!(
            "{:>5} {:>8} {:>11} {:>10} {:>9} {:>10} {:>9} {:>6} {:>8.3}",
            s.level,
            s.modules,
            s.cut_before,
            s.cut_after,
            s.kept_moves,
            s.attempted_moves,
            s.rebalance_moves,
            s.passes,
            s.fill_time_ns as f64 / 1e6,
        );
    }
}

/// Geometric mean of per-item ratios `a[i] / b[i]`; the standard way to
/// aggregate "A is X% better than B" across circuits.
///
/// # Panics
///
/// Panics if the slices differ in length, are empty, or contain a zero
/// denominator.
pub fn geomean_ratio(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "mismatched series");
    assert!(!a.is_empty(), "empty series");
    let log_sum: f64 = a
        .iter()
        .zip(b)
        .map(|(&x, &y)| {
            assert!(y > 0.0, "zero denominator");
            (x.max(1e-12) / y).ln()
        })
        .sum();
    (log_sum / a.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        std::iter::once("prog".to_owned())
            .chain(s.split_whitespace().map(str::to_owned))
            .collect()
    }

    #[test]
    fn parse_defaults() {
        let a = HarnessArgs::parse(argv("")).expect("parses");
        assert_eq!(a, HarnessArgs::default());
    }

    #[test]
    fn parse_all_flags() {
        let a = HarnessArgs::parse(argv("--runs 3 --seed 7 --suite medium --threads 2"))
            .expect("parses");
        assert_eq!(a.runs, 3);
        assert_eq!(a.seed, 7);
        assert_eq!(a.suite, SuiteSelection::Medium);
        assert_eq!(a.threads, 2);
    }

    #[test]
    fn usage_documents_every_flag() {
        for flag in [
            "--runs",
            "--seed",
            "--suite",
            "--threads",
            "--report-out",
            "--trace-out",
        ] {
            assert!(USAGE.contains(flag), "usage omits {flag}");
        }
        let help = HarnessArgs::parse(argv("--help")).expect_err("help is an Err");
        assert_eq!(help, USAGE);
    }

    #[test]
    fn parse_named_suite() {
        let a = HarnessArgs::parse(argv("--suite balu,primary1")).expect("parses");
        assert_eq!(a.circuits().len(), 2);
        assert_eq!(a.circuits()[0].name, "syn-balu");
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!(HarnessArgs::parse(argv("--runs zero")).is_err());
        assert!(HarnessArgs::parse(argv("--runs 0")).is_err());
        assert!(HarnessArgs::parse(argv("--bogus")).is_err());
        assert!(HarnessArgs::parse(argv("--seed")).is_err());
        assert!(HarnessArgs::parse(argv("--threads 0")).is_err());
        assert!(HarnessArgs::parse(argv("--threads x")).is_err());
        assert!(HarnessArgs::parse(argv("--threads")).is_err());
        let msg = HarnessArgs::parse(argv("--suite balu,no-such-circuit"))
            .expect_err("unknown circuit names are flag errors, not panics");
        assert!(msg.contains("no-such-circuit"), "message names it: {msg}");
        assert_eq!(
            HarnessArgs::parse(argv("--threads 0")).expect_err("rejected"),
            "--threads must be positive"
        );
    }

    #[test]
    fn small_suite_selection() {
        let a = HarnessArgs::default();
        let circuits = a.circuits();
        assert_eq!(circuits.len(), 11);
        assert!(circuits.iter().all(|c| c.modules < 3_500));
    }

    #[test]
    fn run_many_collects_stats() {
        let stats = run_many(5, 42, |rng| {
            use rand::Rng;
            10 + rng.gen_range(0..5)
        });
        assert_eq!(stats.cut.runs, 5);
        assert!(stats.cut.min >= 10 && stats.cut.max < 15);
        assert!(stats.cpu_secs >= 0.0);
        assert!(stats.wall_secs >= 0.0);
    }

    #[test]
    fn run_many_deterministic() {
        let f = |rng: &mut MlRng| {
            use rand::Rng;
            rng.gen_range(0..1000u64)
        };
        let s1 = run_many(4, 9, f);
        let s2 = run_many(4, 9, f);
        assert_eq!(s1.cut, s2.cut);
    }

    #[test]
    fn run_many_par_matches_sequential_at_any_thread_count() {
        let seq = run_many(12, 77, |rng| {
            use rand::Rng;
            rng.gen_range(0..100u64)
        });
        for threads in [1, 2, 8] {
            let par = run_many_par(12, 77, threads, |rng, _ws| {
                use rand::Rng;
                rng.gen_range(0..100u64)
            });
            assert_eq!(seq.cut, par.cut, "threads={threads}");
            assert_eq!(seq, par, "RunStats equality ignores timing");
        }
    }

    #[test]
    fn geomean_of_equal_series_is_one() {
        let a = [2.0, 3.0, 4.0];
        assert!((geomean_ratio(&a, &a) - 1.0).abs() < 1e-12);
        let b = [1.0, 1.5, 2.0];
        assert!((geomean_ratio(&a, &b) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn shape_checks_report() {
        let ok = report_shape_checks(&[ShapeCheck::new("a", true), ShapeCheck::new("b", true)]);
        assert!(ok);
        let bad = report_shape_checks(&[ShapeCheck::new("a", false)]);
        assert!(!bad);
    }
}
