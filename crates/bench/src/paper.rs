//! Published numbers from the paper, carried as reference constants.
//!
//! The paper's Tables II-IX report results on the real ACM/SIGDA circuits on
//! a Sun Sparc 5; our experiments run on synthetic stand-ins, so absolute
//! values are **not** expected to match. These constants serve two purposes:
//!
//! 1. `EXPERIMENTS.md` prints paper-vs-measured side by side per experiment;
//! 2. the Table VII/VIII binaries quote the columns for algorithms we do not
//!    reimplement (PARABOLI, GFM, CL-LA3, …) exactly as published.
//!
//! Values are transcribed from the paper text; a handful of obviously
//! OCR-mangled digits are noted inline.

/// Paper Table III row: 100-run FM vs CLIP on a real circuit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table3Row {
    /// Circuit name (paper spelling, no `syn-` prefix).
    pub name: &'static str,
    /// Minimum cut over 100 FM runs.
    pub fm_min: u64,
    /// Minimum cut over 100 CLIP runs.
    pub clip_min: u64,
    /// Average FM cut.
    pub fm_avg: f64,
    /// Average CLIP cut.
    pub clip_avg: f64,
    /// Total CPU seconds for 100 FM runs (Sun Sparc 5).
    pub fm_cpu: f64,
    /// Total CPU seconds for 100 CLIP runs.
    pub clip_cpu: f64,
}

/// Paper Table III (FM vs CLIP, 100 runs each). `test04`'s FM average is
/// printed as "38" in the source scan; Table II's identical experiment gives
/// 138, which we use.
pub const TABLE3: &[Table3Row] = &[
    Table3Row {
        name: "balu",
        fm_min: 27,
        clip_min: 27,
        fm_avg: 39.0,
        clip_avg: 35.0,
        fm_cpu: 26.0,
        clip_cpu: 26.0,
    },
    Table3Row {
        name: "bm1",
        fm_min: 47,
        clip_min: 47,
        fm_avg: 76.0,
        clip_avg: 63.0,
        fm_cpu: 27.0,
        clip_cpu: 29.0,
    },
    Table3Row {
        name: "primary1",
        fm_min: 49,
        clip_min: 47,
        fm_avg: 74.0,
        clip_avg: 62.0,
        fm_cpu: 27.0,
        clip_cpu: 30.0,
    },
    Table3Row {
        name: "test04",
        fm_min: 71,
        clip_min: 55,
        fm_avg: 138.0,
        clip_avg: 80.0,
        fm_cpu: 45.0,
        clip_cpu: 63.0,
    },
    Table3Row {
        name: "test03",
        fm_min: 64,
        clip_min: 57,
        fm_avg: 109.0,
        clip_avg: 74.0,
        fm_cpu: 61.0,
        clip_cpu: 67.0,
    },
    Table3Row {
        name: "test02",
        fm_min: 109,
        clip_min: 88,
        fm_avg: 172.0,
        clip_avg: 112.0,
        fm_cpu: 49.0,
        clip_cpu: 73.0,
    },
    Table3Row {
        name: "test06",
        fm_min: 66,
        clip_min: 60,
        fm_avg: 90.0,
        clip_avg: 72.0,
        fm_cpu: 61.0,
        clip_cpu: 65.0,
    },
    Table3Row {
        name: "struct",
        fm_min: 38,
        clip_min: 34,
        fm_avg: 54.0,
        clip_avg: 46.0,
        fm_cpu: 55.0,
        clip_cpu: 55.0,
    },
    Table3Row {
        name: "test05",
        fm_min: 104,
        clip_min: 72,
        fm_avg: 175.0,
        clip_avg: 72.0,
        fm_cpu: 92.0,
        clip_cpu: 116.0,
    },
    Table3Row {
        name: "19ks",
        fm_min: 121,
        clip_min: 110,
        fm_avg: 175.0,
        clip_avg: 151.0,
        fm_cpu: 134.0,
        clip_cpu: 144.0,
    },
    Table3Row {
        name: "primary2",
        fm_min: 215,
        clip_min: 143,
        fm_avg: 285.0,
        clip_avg: 215.0,
        fm_cpu: 142.0,
        clip_cpu: 168.0,
    },
    Table3Row {
        name: "s9234",
        fm_min: 50,
        clip_min: 45,
        fm_avg: 95.0,
        clip_avg: 74.0,
        fm_cpu: 273.0,
        clip_cpu: 237.0,
    },
    Table3Row {
        name: "biomed",
        fm_min: 83,
        clip_min: 84,
        fm_avg: 134.0,
        clip_avg: 109.0,
        fm_cpu: 326.0,
        clip_cpu: 267.0,
    },
    Table3Row {
        name: "s13207",
        fm_min: 87,
        clip_min: 78,
        fm_avg: 129.0,
        clip_avg: 125.0,
        fm_cpu: 423.0,
        clip_cpu: 370.0,
    },
    Table3Row {
        name: "s15850",
        fm_min: 108,
        clip_min: 79,
        fm_avg: 184.0,
        clip_avg: 143.0,
        fm_cpu: 435.0,
        clip_cpu: 505.0,
    },
    Table3Row {
        name: "industry2",
        fm_min: 319,
        clip_min: 203,
        fm_avg: 623.0,
        clip_avg: 342.0,
        fm_cpu: 838.0,
        clip_cpu: 991.0,
    },
    Table3Row {
        name: "industry3",
        fm_min: 241,
        clip_min: 242,
        fm_avg: 497.0,
        clip_avg: 406.0,
        fm_cpu: 974.0,
        clip_cpu: 1199.0,
    },
    Table3Row {
        name: "s35932",
        fm_min: 113,
        clip_min: 45,
        fm_avg: 230.0,
        clip_avg: 118.0,
        fm_cpu: 1075.0,
        clip_cpu: 935.0,
    },
    Table3Row {
        name: "s38584",
        fm_min: 59,
        clip_min: 48,
        fm_avg: 251.0,
        clip_avg: 101.0,
        fm_cpu: 1523.0,
        clip_cpu: 1363.0,
    },
    Table3Row {
        name: "avqsmall",
        fm_min: 319,
        clip_min: 204,
        fm_avg: 597.0,
        clip_avg: 340.0,
        fm_cpu: 1447.0,
        clip_cpu: 1538.0,
    },
    Table3Row {
        name: "s38417",
        fm_min: 167,
        clip_min: 72,
        fm_avg: 383.0,
        clip_avg: 140.0,
        fm_cpu: 1595.0,
        clip_cpu: 1423.0,
    },
    Table3Row {
        name: "avqlarge",
        fm_min: 262,
        clip_min: 224,
        fm_avg: 787.0,
        clip_avg: 352.0,
        fm_cpu: 1662.0,
        clip_cpu: 1896.0,
    },
    Table3Row {
        name: "golem3",
        fm_min: 2847,
        clip_min: 2276,
        fm_avg: 3500.0,
        clip_avg: 3403.0,
        fm_cpu: 38028.0,
        clip_cpu: 146301.0,
    },
];

/// Paper Table IV row: 100-run CLIP vs `ML_F` vs `ML_C` (R = 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table4Row {
    /// Circuit name.
    pub name: &'static str,
    /// Minimum cuts: CLIP, `ML_F`, `ML_C`.
    pub min: [u64; 3],
    /// Average cuts: CLIP, `ML_F`, `ML_C`.
    pub avg: [f64; 3],
    /// CPU totals: CLIP, `ML_F`, `ML_C`.
    pub cpu: [f64; 3],
}

/// Paper Table IV (selected columns for all 23 circuits).
pub const TABLE4: &[Table4Row] = &[
    Table4Row {
        name: "balu",
        min: [27, 27, 27],
        avg: [35.0, 35.0, 33.0],
        cpu: [26.0, 100.0, 110.0],
    },
    Table4Row {
        name: "bm1",
        min: [47, 47, 47],
        avg: [63.0, 57.0, 55.0],
        cpu: [29.0, 93.0, 107.0],
    },
    Table4Row {
        name: "primary1",
        min: [47, 47, 47],
        avg: [62.0, 56.0, 55.0],
        cpu: [30.0, 93.0, 106.0],
    },
    Table4Row {
        name: "test04",
        min: [55, 48, 48],
        avg: [80.0, 64.0, 56.0],
        cpu: [63.0, 219.0, 263.0],
    },
    Table4Row {
        name: "test03",
        min: [57, 56, 57],
        avg: [74.0, 64.0, 61.0],
        cpu: [67.0, 258.0, 294.0],
    },
    Table4Row {
        name: "test02",
        min: [88, 89, 89],
        avg: [112.0, 101.0, 100.0],
        cpu: [73.0, 243.0, 288.0],
    },
    Table4Row {
        name: "test06",
        min: [60, 60, 60],
        avg: [72.0, 77.0, 71.0],
        cpu: [65.0, 309.0, 354.0],
    },
    Table4Row {
        name: "struct",
        min: [34, 33, 33],
        avg: [46.0, 39.0, 38.0],
        cpu: [55.0, 199.0, 233.0],
    },
    Table4Row {
        name: "test05",
        min: [72, 75, 71],
        avg: [72.0, 91.0, 83.0],
        cpu: [116.0, 386.0, 459.0],
    },
    Table4Row {
        name: "19ks",
        min: [110, 104, 106],
        avg: [151.0, 114.0, 114.0],
        cpu: [144.0, 447.0, 510.0],
    },
    Table4Row {
        name: "primary2",
        min: [143, 139, 139],
        avg: [215.0, 158.0, 156.0],
        cpu: [168.0, 414.0, 522.0],
    },
    Table4Row {
        name: "s9234",
        min: [45, 40, 41],
        avg: [74.0, 50.0, 48.0],
        cpu: [237.0, 542.0, 582.0],
    },
    Table4Row {
        name: "biomed",
        min: [84, 86, 83],
        avg: [109.0, 103.0, 92.0],
        cpu: [267.0, 909.0, 1036.0],
    },
    Table4Row {
        name: "s13207",
        min: [78, 58, 60],
        avg: [125.0, 77.0, 76.0],
        cpu: [370.0, 857.0, 950.0],
    },
    Table4Row {
        name: "s15850",
        min: [79, 43, 43],
        avg: [143.0, 63.0, 59.0],
        cpu: [505.0, 997.0, 1126.0],
    },
    Table4Row {
        name: "industry2",
        min: [203, 168, 174],
        avg: [342.0, 213.0, 197.0],
        cpu: [991.0, 2360.0, 3015.0],
    },
    Table4Row {
        name: "industry3",
        min: [242, 243, 248],
        avg: [406.0, 275.0, 274.0],
        cpu: [1199.0, 2932.0, 3931.0],
    },
    Table4Row {
        name: "s35932",
        min: [45, 41, 40],
        avg: [118.0, 46.0, 46.0],
        cpu: [935.0, 2108.0, 2351.0],
    },
    Table4Row {
        name: "s38584",
        min: [48, 49, 48],
        avg: [101.0, 77.0, 58.0],
        cpu: [1363.0, 2574.0, 3106.0],
    },
    Table4Row {
        name: "avqsmall",
        min: [204, 139, 133],
        avg: [340.0, 194.0, 182.0],
        cpu: [1538.0, 3022.0, 3811.0],
    },
    Table4Row {
        name: "s38417",
        min: [72, 53, 50],
        avg: [140.0, 82.0, 66.0],
        cpu: [1423.0, 2544.0, 3032.0],
    },
    Table4Row {
        name: "avqlarge",
        min: [224, 144, 140],
        avg: [352.0, 200.0, 183.0],
        cpu: [1896.0, 3338.0, 4230.0],
    },
    Table4Row {
        name: "golem3",
        min: [2276, 1663, 1661],
        avg: [3403.0, 2026.0, 2006.0],
        cpu: [146301.0, 48495.0, 89800.0],
    },
];

/// Table VII's bottom rows: the paper's percent improvement of `ML_C` over
/// each competing algorithm, for 100 runs and for 10 runs of `ML_C`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table7Improvement {
    /// Competing algorithm label as printed in the paper.
    pub versus: &'static str,
    /// % improvement of `ML_C` with 100 runs.
    pub ml100_pct: f64,
    /// % improvement of `ML_C` with 10 runs.
    pub ml10_pct: f64,
}

/// Paper Table VII percent-improvement summary. (The `GMet` column's blank
/// in the 100-run row is printed as `X` in the paper; the paper's abstract
/// gives the overall range 6.9-27.9% for 100 runs, 3.0-20.6% for 10 runs.)
pub const TABLE7_IMPROVEMENTS: &[Table7Improvement] = &[
    Table7Improvement {
        versus: "GMet",
        ml100_pct: 16.9,
        ml10_pct: 8.4,
    },
    Table7Improvement {
        versus: "HB",
        ml100_pct: 9.5,
        ml10_pct: 3.0,
    },
    Table7Improvement {
        versus: "PB",
        ml100_pct: 27.9,
        ml10_pct: 20.6,
    },
    Table7Improvement {
        versus: "GFM",
        ml100_pct: 11.1,
        ml10_pct: 6.5,
    },
    Table7Improvement {
        versus: "GFM_t",
        ml100_pct: 7.8,
        ml10_pct: 3.6,
    },
    Table7Improvement {
        versus: "CL-LA3_f",
        ml100_pct: 9.2,
        ml10_pct: 6.0,
    },
    Table7Improvement {
        versus: "CD-LA3_f",
        ml100_pct: 11.5,
        ml10_pct: 7.9,
    },
    Table7Improvement {
        versus: "CL-PR_f",
        ml100_pct: 6.9,
        ml10_pct: 5.2,
    },
    Table7Improvement {
        versus: "LSMC",
        ml100_pct: 21.9,
        ml10_pct: 19.1,
    },
];

/// Paper Table IX row: 4-way partitioning comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table9Row {
    /// Circuit name.
    pub name: &'static str,
    /// `ML_F` minimum cut (100 runs, R = 1.0, T = 100).
    pub ml_f_min: u64,
    /// `ML_F` average cut (parenthesized in the paper).
    pub ml_f_avg: f64,
    /// Best of GORDIAN / GORDIAN-L.
    pub gordian: u64,
    /// Flat 4-way FM best of 100.
    pub fm: u64,
    /// Flat 4-way CLIP best of 100.
    pub clip: u64,
    /// 4-way LSMC with FM engine.
    pub lsmc_f: u64,
    /// 4-way LSMC with CLIP engine.
    pub lsmc_c: u64,
}

/// Paper Table IX (all nine circuits it reports).
pub const TABLE9: &[Table9Row] = &[
    Table9Row {
        name: "primary1",
        ml_f_min: 126,
        ml_f_avg: 153.0,
        gordian: 157,
        fm: 135,
        clip: 169,
        lsmc_f: 118,
        lsmc_c: 129,
    },
    Table9Row {
        name: "primary2",
        ml_f_min: 346,
        ml_f_avg: 378.0,
        gordian: 502,
        fm: 591,
        clip: 535,
        lsmc_f: 495,
        lsmc_c: 428,
    },
    Table9Row {
        name: "biomed",
        ml_f_min: 311,
        ml_f_avg: 390.0,
        gordian: 479,
        fm: 933,
        clip: 697,
        lsmc_f: 859,
        lsmc_c: 567,
    },
    Table9Row {
        name: "s13207",
        ml_f_min: 472,
        ml_f_avg: 503.0,
        gordian: 590,
        fm: 653,
        clip: 819,
        lsmc_f: 337,
        lsmc_c: 359,
    },
    Table9Row {
        name: "s15850",
        ml_f_min: 547,
        ml_f_avg: 594.0,
        gordian: 678,
        fm: 774,
        clip: 958,
        lsmc_f: 487,
        lsmc_c: 392,
    },
    Table9Row {
        name: "industry2",
        ml_f_min: 398,
        ml_f_avg: 1369.0,
        gordian: 1179,
        fm: 2200,
        clip: 1505,
        lsmc_f: 1695,
        lsmc_c: 1246,
    },
    Table9Row {
        name: "industry3",
        ml_f_min: 830,
        ml_f_avg: 1049.0,
        gordian: 1965,
        fm: 3005,
        clip: 2223,
        lsmc_f: 1605,
        lsmc_c: 1572,
    },
    Table9Row {
        name: "avqsmall",
        ml_f_min: 408,
        ml_f_avg: 505.0,
        gordian: 646,
        fm: 2877,
        clip: 1728,
        lsmc_f: 2098,
        lsmc_c: 1324,
    },
    Table9Row {
        name: "avqlarge",
        ml_f_min: 481,
        ml_f_avg: 519.0,
        gordian: 661,
        fm: 3131,
        clip: 1890,
        lsmc_f: 2511,
        lsmc_c: 1435,
    },
];

/// Looks up a paper Table III row by circuit name (no prefix).
pub fn table3_row(name: &str) -> Option<&'static Table3Row> {
    let stripped = name.strip_prefix("syn-").unwrap_or(name);
    TABLE3.iter().find(|r| r.name == stripped)
}

/// Looks up a paper Table IV row by circuit name (no prefix).
pub fn table4_row(name: &str) -> Option<&'static Table4Row> {
    let stripped = name.strip_prefix("syn-").unwrap_or(name);
    TABLE4.iter().find(|r| r.name == stripped)
}

/// Looks up a paper Table IX row by circuit name (no prefix).
pub fn table9_row(name: &str) -> Option<&'static Table9Row> {
    let stripped = name.strip_prefix("syn-").unwrap_or(name);
    TABLE9.iter().find(|r| r.name == stripped)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_cover_expected_circuits() {
        assert_eq!(TABLE3.len(), 23);
        assert_eq!(TABLE4.len(), 23);
        assert_eq!(TABLE9.len(), 9);
        assert_eq!(TABLE7_IMPROVEMENTS.len(), 9);
    }

    #[test]
    fn lookups_work_with_prefix() {
        assert!(table3_row("syn-balu").is_some());
        assert!(table4_row("golem3").is_some());
        assert!(table9_row("syn-avqlarge").is_some());
        assert!(table9_row("balu").is_none(), "not in Table IX");
    }

    #[test]
    fn paper_claims_hold_within_its_own_numbers() {
        // Sanity on transcription: CLIP's average beats FM's on >=18 of 23
        // circuits (the paper's headline for Table III).
        let wins = TABLE3.iter().filter(|r| r.clip_avg < r.fm_avg).count();
        assert!(wins >= 18, "CLIP avg wins on {wins}/23");
        // ML_C has the lowest average in Table IV on most circuits.
        let ml_c_best = TABLE4
            .iter()
            .filter(|r| r.avg[2] <= r.avg[0] && r.avg[2] <= r.avg[1])
            .count();
        assert!(ml_c_best >= 18, "ML_C best avg on {ml_c_best}/23");
        // Table IX: ML_F min beats GORDIAN on every row.
        assert!(TABLE9.iter().all(|r| r.ml_f_min < r.gordian));
    }

    #[test]
    fn improvement_ranges_match_abstract() {
        let min100 = TABLE7_IMPROVEMENTS
            .iter()
            .map(|i| i.ml100_pct)
            .fold(f64::INFINITY, f64::min);
        let max100 = TABLE7_IMPROVEMENTS
            .iter()
            .map(|i| i.ml100_pct)
            .fold(0.0, f64::max);
        assert_eq!(min100, 6.9);
        assert_eq!(max100, 27.9);
    }
}
