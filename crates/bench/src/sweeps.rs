//! Shared experiment drivers used by more than one harness binary.

use crate::{report_shape_checks, run_many_par, HarnessArgs, ShapeCheck};
use mlpart_fm::RefineWorkspace;
use mlpart_hypergraph::rng::{child_seed, MlRng};
use mlpart_hypergraph::Hypergraph;

/// The Tables V/VI driver: sweep the matching ratio R over {1.0, 0.5, 0.33}
/// for the given ML variant, print the paper's row layout, and return the
/// shape-check verdict (process exit code semantics: `true` = all pass).
pub fn run_ratio_sweep(
    label: &str,
    args: &HarnessArgs,
    ml: fn(&Hypergraph, f64, &mut MlRng, &mut RefineWorkspace) -> u64,
) -> bool {
    crate::with_report(args, "ratio_sweep", || ratio_sweep_body(label, args, ml))
}

fn ratio_sweep_body(
    label: &str,
    args: &HarnessArgs,
    ml: fn(&Hypergraph, f64, &mut MlRng, &mut RefineWorkspace) -> u64,
) -> bool {
    const RATIOS: [f64; 3] = [1.0, 0.5, 0.33];
    println!(
        "{label} for R in {{1.0, 0.5, 0.33}} ({} runs per cell, seed {})",
        args.runs, args.seed
    );
    println!();
    println!(
        "{:<16} {:>6} {:>6} {:>6}  {:>8} {:>8} {:>8}  {:>8} {:>8} {:>8}",
        "Test Case", "m1.0", "m0.5", "m0.33", "a1.0", "a0.5", "a0.33", "t1.0", "t0.5", "t0.33"
    );
    let mut avgs: [Vec<f64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    let mut cpus: [Vec<f64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    // Ascending size so "last" is the largest circuit in the selection.
    let mut circuits = args.circuits();
    circuits.sort_by_key(|c| c.modules);
    for (ci, c) in circuits.iter().enumerate() {
        let h = c.generate(args.seed);
        let base = child_seed(args.seed, ci as u64);
        let cells: Vec<_> = RATIOS
            .iter()
            .enumerate()
            .map(|(ri, &r)| {
                run_many_par(
                    args.runs,
                    child_seed(base, ri as u64),
                    args.threads,
                    |rng, ws| ml(&h, r, rng, ws),
                )
            })
            .collect();
        println!(
            "{:<16} {:>6} {:>6} {:>6}  {:>8.1} {:>8.1} {:>8.1}  {:>8.2} {:>8.2} {:>8.2}",
            c.name,
            cells[0].cut.min,
            cells[1].cut.min,
            cells[2].cut.min,
            cells[0].cut.avg,
            cells[1].cut.avg,
            cells[2].cut.avg,
            cells[0].cpu_secs,
            cells[1].cpu_secs,
            cells[2].cpu_secs,
        );
        for (ri, cell) in cells.iter().enumerate() {
            avgs[ri].push(cell.cut.avg.max(1.0));
            cpus[ri].push(cell.cpu_secs.max(1e-9));
        }
    }
    let half_vs_full = crate::geomean_ratio(&avgs[1], &avgs[0]);
    let third_vs_half = crate::geomean_ratio(&avgs[2], &avgs[1]);
    let cpu_half_vs_full = crate::geomean_ratio(&cpus[1], &cpus[0]);
    println!();
    println!("geomean avg-cut ratio R=0.5 / R=1.0:  {half_vs_full:.3}");
    println!("geomean avg-cut ratio R=0.33 / R=0.5: {third_vs_half:.3}");
    println!("geomean CPU ratio     R=0.5 / R=1.0:  {cpu_half_vs_full:.3}");
    // The paper: "the minimum cuts do not vary much as R changes, except
    // with the larger benchmarks", where slow coarsening wins clearly. So
    // the overall ratio must not degrade, and the largest circuit in the
    // selection should benefit (or at least match).
    let largest_gain =
        avgs[1].last().copied().unwrap_or(1.0) / avgs[0].last().copied().unwrap_or(1.0).max(1e-9);
    let checks = vec![
        ShapeCheck::new(
            format!(
                "slower coarsening does not degrade quality overall (R=0.5/R=1 ratio {half_vs_full:.3} <= 1.07)"
            ),
            half_vs_full <= 1.07,
        ),
        ShapeCheck::new(
            format!(
                "largest circuit matches or benefits at R=0.5 (ratio {largest_gain:.3} <= 1.05)"
            ),
            largest_gain <= 1.05,
        ),
        ShapeCheck::new(
            format!("R=0.33 ~ R=0.5 (ratio {third_vs_half:.3} in [0.9, 1.1])"),
            (0.9..=1.1).contains(&third_vs_half),
        ),
        ShapeCheck::new(
            format!(
                "slower coarsening costs CPU (R=0.5/R=1 CPU ratio {cpu_half_vs_full:.2} > 1)"
            ),
            cpu_half_vs_full > 1.0,
        ),
    ];
    report_shape_checks(&checks)
}
