//! Regression tests for the `cpu_secs` accounting convention.
//!
//! `RunStats::cpu_secs` must time the **entire** per-start closure — every
//! phase a start executes (coarsening, initial partitioning, refinement),
//! not just the final refinement — summed over all starts regardless of
//! which thread ran them. These tests pin that contract with a job whose
//! cost is dominated by a sleep standing in for pre-refinement work: if the
//! harness ever timed only a trailing phase, the sleep would vanish from
//! `cpu_secs` and the floor assertions below would fail.

use mlpart_bench::{run_many, run_many_par};
use std::time::Duration;

const SLEEP_MS: u64 = 15;
const RUNS: usize = 4;

/// A start whose work happens *before* it would hand off to refinement.
fn sleepy_job() -> u64 {
    std::thread::sleep(Duration::from_millis(SLEEP_MS));
    7
}

/// The minimum `cpu_secs` any correct accounting must report: every start
/// sleeps for `SLEEP_MS`, and `sleep` never returns early.
fn cpu_floor() -> f64 {
    (RUNS as u64 * SLEEP_MS) as f64 / 1000.0
}

#[test]
fn sequential_cpu_secs_covers_the_whole_start() {
    let stats = run_many(RUNS, 11, |_rng| sleepy_job());
    assert!(
        stats.cpu_secs >= cpu_floor(),
        "cpu_secs {} must include all {} starts' full closures (floor {})",
        stats.cpu_secs,
        RUNS,
        cpu_floor()
    );
    assert!(
        stats.wall_secs >= cpu_floor(),
        "sequential wall >= cpu floor"
    );
}

#[test]
fn parallel_cpu_secs_covers_the_whole_start_at_every_thread_count() {
    for threads in [1, 2, 4] {
        let stats = run_many_par(RUNS, 11, threads, |_rng, _ws| sleepy_job());
        assert!(
            stats.cpu_secs >= cpu_floor(),
            "threads={threads}: cpu_secs {} below floor {}",
            stats.cpu_secs,
            cpu_floor()
        );
    }
}

/// `cpu_secs` is a total-CPU convention (the paper's "total CPU for N
/// runs"), so adding workers must not shrink it: the sum of per-start times
/// is scheduling-independent up to timer noise, while `wall_secs` is what
/// parallelism improves.
#[test]
fn parallelism_shrinks_wall_not_cpu() {
    let seq = run_many_par(RUNS, 11, 1, |_rng, _ws| sleepy_job());
    let par = run_many_par(RUNS, 11, 4, |_rng, _ws| sleepy_job());
    assert!(
        par.cpu_secs >= cpu_floor(),
        "parallel cpu_secs keeps the sum"
    );
    // With 4 workers and 4 sleeping starts, the batch finishes in roughly
    // one sleep; allow generous scheduling slack but require a clear win
    // over the sequential batch's four back-to-back sleeps.
    assert!(
        par.wall_secs < seq.wall_secs,
        "4 workers should beat 1 on wall-clock ({} vs {})",
        par.wall_secs,
        seq.wall_secs
    );
}
