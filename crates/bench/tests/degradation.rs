//! Graceful-degradation contract of deterministic budgets: a truncated run
//! returns a *valid* partition whose quality sits between the full run and
//! the unrefined initial solution. Budgets trade quality for bounded work —
//! they never corrupt the result, and spending nothing must return the
//! initial solution unchanged.
//!
//! All runs are fixed-seed, so each chain below compares the same start
//! under three effort levels: unlimited, a small move budget, and a zero
//! move budget. The flat engines keep a monotone best-so-far prefix, so
//! `full <= budgeted <= initial` holds exactly; the multilevel pipelines
//! guarantee validity and feasibility of the truncated answer (projection
//! across levels is not pointwise monotone in the coarse-level cut).
//!
//! Run with `cargo test -p mlpart-bench --test degradation`.

use mlpart_core::{
    ml_bipartition_budgeted_in, ml_kway_budgeted_in, Budget, BudgetMeter, MlConfig, MlKwayConfig,
    Truncation,
};
use mlpart_fm::{fm_partition_budgeted_in, Engine, FmConfig, RefineWorkspace};
use mlpart_gen::suite;
use mlpart_hypergraph::metrics::cut;
use mlpart_hypergraph::rng::seeded_rng;
use mlpart_hypergraph::Hypergraph;
use mlpart_kway::{kway_partition_budgeted_in, KwayConfig};

fn balu() -> Hypergraph {
    suite::by_name("balu").expect("suite circuit").generate(3)
}

/// Runs one flat FM/CLIP bipartition start under `budget` and returns
/// (cut, truncation), validating the partition regardless of truncation.
fn flat_cut(
    h: &Hypergraph,
    engine: Engine,
    budget: Budget,
    seed: u64,
) -> (u64, Option<Truncation>) {
    let cfg = FmConfig {
        engine,
        ..FmConfig::default()
    };
    let mut rng = seeded_rng(seed);
    let mut ws = RefineWorkspace::new();
    let mut meter = BudgetMeter::new(&budget);
    let (p, r) = fm_partition_budgeted_in(h, None, &cfg, &mut rng, &mut ws, &mut meter);
    assert!(p.validate(h), "budgeted result must stay a valid partition");
    assert_eq!(r.cut, cut(h, &p), "reported cut matches the partition");
    (r.cut, meter.truncation())
}

/// Same for one flat k-way quadrisection start.
fn flat4_cut(h: &Hypergraph, budget: Budget, seed: u64) -> (u64, Option<Truncation>) {
    let mut rng = seeded_rng(seed);
    let mut ws = RefineWorkspace::new();
    let mut meter = BudgetMeter::new(&budget);
    let (p, r) = kway_partition_budgeted_in(
        h,
        4,
        None,
        &[],
        &KwayConfig::default(),
        &mut rng,
        &mut ws,
        &mut meter,
    );
    assert!(p.validate(h), "budgeted result must stay a valid partition");
    assert_eq!(p.k(), 4);
    assert_eq!(r.cut, cut(h, &p), "reported cut matches the partition");
    (r.cut, meter.truncation())
}

fn moves(n: u64) -> Budget {
    Budget {
        max_moves: Some(n),
        ..Budget::default()
    }
}

#[test]
fn flat_engines_degrade_monotonically_with_move_budget() {
    let h = balu();
    for engine in [Engine::Fm, Engine::Clip] {
        for seed in [1, 2, 3] {
            let (full, t_full) = flat_cut(&h, engine, Budget::UNLIMITED, seed);
            let (some, t_some) = flat_cut(&h, engine, moves(60), seed);
            let (none, t_none) = flat_cut(&h, engine, moves(0), seed);
            assert!(t_full.is_none(), "unlimited run must not truncate");
            assert!(
                t_some.is_some() && t_none.is_some(),
                "{engine:?} seed {seed}: a 60/0-move budget must truncate on balu"
            );
            assert!(
                full <= some && some <= none,
                "{engine:?} seed {seed}: expected full {full} <= budgeted {some} <= initial {none}"
            );
            assert!(
                full < none,
                "{engine:?} seed {seed}: full refinement must beat the raw initial solution"
            );
        }
    }
}

#[test]
fn kway_quadrisection_degrades_monotonically_with_move_budget() {
    let h = balu();
    for seed in [1, 2, 3] {
        let (full, t_full) = flat4_cut(&h, Budget::UNLIMITED, seed);
        let (some, t_some) = flat4_cut(&h, moves(60), seed);
        let (none, t_none) = flat4_cut(&h, moves(0), seed);
        assert!(t_full.is_none(), "unlimited run must not truncate");
        assert!(
            t_some.is_some() && t_none.is_some(),
            "seed {seed}: a 60/0-move budget must truncate a 4-way balu run"
        );
        assert!(
            full <= some && some <= none,
            "seed {seed}: expected full {full} <= budgeted {some} <= initial {none}"
        );
        assert!(
            full < none,
            "seed {seed}: full refinement must beat the rebalanced random start"
        );
    }
}

/// The multilevel pipelines do not promise pointwise cut monotonicity under
/// a budget (a refined coarse solution can project worse than the raw one),
/// but a truncated V-cycle must still hand back a valid, feasible partition
/// of the *finest* hypergraph with an honest truncation record.
#[test]
fn truncated_multilevel_runs_stay_valid() {
    let h = balu();
    for seed in [1, 2] {
        for budget in [moves(0), moves(60)] {
            let cfg = MlConfig::clip().with_ratio(0.5);
            let mut rng = seeded_rng(seed);
            let mut ws = RefineWorkspace::new();
            let mut meter = BudgetMeter::new(&budget);
            let (p, r) = ml_bipartition_budgeted_in(&h, &cfg, &mut rng, &mut ws, &mut meter);
            assert!(p.validate(&h), "seed {seed}: truncated ml result invalid");
            assert_eq!(r.cut, cut(&h, &p), "seed {seed}: reported cut honest");
            assert!(
                r.truncation.is_some(),
                "seed {seed}: tight budget must truncate the V-cycle"
            );

            let kcfg = MlKwayConfig::default();
            let mut rng = seeded_rng(seed);
            let mut meter = BudgetMeter::new(&budget);
            let (p, r) = ml_kway_budgeted_in(&h, &kcfg, &[], &mut rng, &mut ws, &mut meter);
            assert!(
                p.validate(&h),
                "seed {seed}: truncated ml-kway result invalid"
            );
            assert_eq!(p.k(), 4);
            assert!(
                r.truncation.is_some(),
                "seed {seed}: tight budget must truncate the k-way V-cycle"
            );
        }
    }
}
