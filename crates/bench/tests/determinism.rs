//! Fixed-seed determinism contract of the parallel harness: for every
//! algorithm family the tables exercise, `run_many_par` must be
//! bit-identical to the sequential `run_many` reference at *every* thread
//! count — including 1 — because each start draws from its own
//! `child_seed(base, i)` stream and the reduction breaks ties to the lowest
//! start index regardless of completion order.
//!
//! CI runs this file twice: once with the default thread set and once with
//! `MLPART_TEST_THREADS` forcing an extra explicit multi-thread setting, so
//! the scheduling-independence claim is exercised even if the runner's CPU
//! count would otherwise collapse everything to one worker.

use mlpart_bench::{algos, run_many, run_many_par};
use mlpart_gen::suite;
use mlpart_hypergraph::rng::child_seed;

/// Thread counts under test: 1 (in-line fast path), 2 and 8 (fewer and more
/// workers than typical start counts), plus an optional CI-forced override.
fn thread_counts() -> Vec<usize> {
    let mut counts = vec![1, 2, 8];
    if let Ok(forced) = std::env::var("MLPART_TEST_THREADS") {
        let forced: usize = forced
            .parse()
            .expect("MLPART_TEST_THREADS must be a positive integer");
        assert!(forced > 0, "MLPART_TEST_THREADS must be positive");
        if !counts.contains(&forced) {
            counts.push(forced);
        }
    }
    counts
}

#[test]
fn bipartitioners_are_thread_count_invariant() {
    let h = suite::by_name("balu").expect("suite circuit").generate(3);
    let runs = 6;
    let seed = 41;
    let sequential = [
        run_many(runs, child_seed(seed, 0), |rng| algos::fm(&h, rng)),
        run_many(runs, child_seed(seed, 1), |rng| algos::clip(&h, rng)),
        run_many(runs, child_seed(seed, 2), |rng| algos::ml_f(&h, 0.5, rng)),
        run_many(runs, child_seed(seed, 3), |rng| algos::ml_c(&h, 0.5, rng)),
    ];
    for threads in thread_counts() {
        let parallel = [
            run_many_par(runs, child_seed(seed, 0), threads, |rng, ws| {
                algos::fm_in(&h, rng, ws)
            }),
            run_many_par(runs, child_seed(seed, 1), threads, |rng, ws| {
                algos::clip_in(&h, rng, ws)
            }),
            run_many_par(runs, child_seed(seed, 2), threads, |rng, ws| {
                algos::ml_f_in(&h, 0.5, rng, ws)
            }),
            run_many_par(runs, child_seed(seed, 3), threads, |rng, ws| {
                algos::ml_c_in(&h, 0.5, rng, ws)
            }),
        ];
        // RunStats equality compares the cut statistics and ignores timing.
        assert_eq!(sequential, parallel, "threads = {threads}");
    }
}

#[test]
fn quadrisectioners_are_thread_count_invariant() {
    let h = suite::by_name("balu").expect("suite circuit").generate(5);
    let runs = 4;
    let seed = 43;
    let sequential = [
        run_many(runs, child_seed(seed, 0), |rng| algos::fm4(&h, rng)),
        run_many(runs, child_seed(seed, 1), |rng| algos::clip4(&h, rng)),
        run_many(runs, child_seed(seed, 2), |rng| algos::ml4(&h, &[], rng)),
    ];
    for threads in thread_counts() {
        let parallel = [
            run_many_par(runs, child_seed(seed, 0), threads, |rng, ws| {
                algos::fm4_in(&h, rng, ws)
            }),
            run_many_par(runs, child_seed(seed, 1), threads, |rng, ws| {
                algos::clip4_in(&h, rng, ws)
            }),
            run_many_par(runs, child_seed(seed, 2), threads, |rng, ws| {
                algos::ml4_in(&h, &[], rng, ws)
            }),
        ];
        assert_eq!(sequential, parallel, "threads = {threads}");
    }
}

#[test]
fn more_threads_than_starts_is_fine() {
    let h = suite::by_name("primary1")
        .expect("suite circuit")
        .generate(7);
    let seq = run_many(2, 99, |rng| algos::ml_c(&h, 0.5, rng));
    let par = run_many_par(2, 99, 16, |rng, ws| algos::ml_c_in(&h, 0.5, rng, ws));
    assert_eq!(seq, par);
}

#[test]
fn repeated_parallel_runs_agree_with_each_other() {
    // Two identical parallel invocations must agree exactly — scheduling
    // noise (thread interleaving) must never leak into the statistics.
    let h = suite::by_name("balu").expect("suite circuit").generate(11);
    let a = run_many_par(8, 1234, 4, |rng, ws| algos::ml_c_in(&h, 0.33, rng, ws));
    let b = run_many_par(8, 1234, 4, |rng, ws| algos::ml_c_in(&h, 0.33, rng, ws));
    assert_eq!(a, b);
}

/// Budgets must not weaken the determinism contract: a budget-truncated
/// batch — cuts, per-start partitions, *and* the truncation records
/// themselves — is bit-identical at every thread count, because each start
/// spends against its own meter and the checkpoints count work, not time.
#[test]
fn budgeted_runs_are_thread_count_invariant() {
    use mlpart_core::{ml_bipartition_budgeted_in, Budget, BudgetMeter, MlConfig, Truncation};

    let h = suite::by_name("balu").expect("suite circuit").generate(3);
    let budget = Budget {
        max_passes: Some(1),
        ..Budget::default()
    };
    let cfg = MlConfig::clip().with_ratio(0.5);
    let job = |rng: &mut _, ws: &mut _| -> (u64, Vec<u32>, Option<Truncation>) {
        let mut meter = BudgetMeter::new(&budget);
        let (p, r) = ml_bipartition_budgeted_in(&h, &cfg, rng, ws, &mut meter);
        (r.cut, p.assignment().to_vec(), r.truncation)
    };
    let (reference, _) = mlpart_exec::run_starts(6, 55, 1, &job);
    assert!(
        reference.iter().any(|(_, _, t)| t.is_some()),
        "a one-pass budget must truncate some start on balu"
    );
    for threads in thread_counts() {
        let (outcomes, _) = mlpart_exec::run_starts(6, 55, threads, &job);
        assert_eq!(reference, outcomes, "threads = {threads}");
    }
}
