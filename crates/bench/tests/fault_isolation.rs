//! Fault-injection meets the determinism contract (needs `--features
//! fault`): injected per-start panics on a *real* partitioning workload
//! must leave the surviving starts bit-identical at every thread count.
//!
//! Lives in its own integration-test binary because a forced fault plan is
//! process-global — any other test running a batch in the same process
//! would see the injected panics. Every test here serializes on
//! `mlpart_fault::test_lock()`.

#![cfg(feature = "fault")]

use mlpart_bench::algos;
use mlpart_gen::suite;

/// Thread counts under test, mirroring `determinism.rs`.
fn thread_counts() -> Vec<usize> {
    let mut counts = vec![1, 2, 8];
    if let Ok(forced) = std::env::var("MLPART_TEST_THREADS") {
        let forced: usize = forced
            .parse()
            .expect("MLPART_TEST_THREADS must be a positive integer");
        assert!(forced > 0, "MLPART_TEST_THREADS must be positive");
        if !counts.contains(&forced) {
            counts.push(forced);
        }
    }
    counts
}

/// Panic isolation must not weaken the determinism contract: with a
/// deterministic injected fault killing one start, the surviving starts'
/// results are bit-identical at every thread count *and* equal to a clean
/// batch with the dead start filtered out.
#[test]
fn injected_panics_leave_survivors_thread_count_invariant() {
    let h = suite::by_name("balu").expect("suite circuit").generate(3);
    let job = |rng: &mut _, ws: &mut _| algos::ml_c_in(&h, 0.5, rng, ws);
    let _guard = mlpart_fault::test_lock();

    mlpart_fault::force_off();
    let (clean, _) = mlpart_exec::run_starts(5, 21, 1, &job);

    mlpart_fault::force_plan(mlpart_fault::FaultPlan::parse("panic@start:2").expect("parses"));
    let reference: Vec<(usize, u64)> = clean
        .iter()
        .copied()
        .enumerate()
        .filter(|&(i, _)| i != 2)
        .collect();
    for threads in thread_counts() {
        let outcome = mlpart_exec::try_run_starts(5, 21, threads, &job)
            .expect("survivors exist")
            .0;
        assert_eq!(
            outcome.failures.iter().map(|f| f.start).collect::<Vec<_>>(),
            vec![2],
            "threads = {threads}"
        );
        assert_eq!(outcome.survivors, reference, "threads = {threads}");
    }
    mlpart_fault::clear_force();
}
