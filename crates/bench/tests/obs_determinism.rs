//! Trace-content determinism contract (needs `--features obs`).
//!
//! With tracing enabled, a fixed-seed batch must emit a trace whose
//! **content** — every event name, nesting, and argument, i.e. everything
//! except the timestamp fields — is byte-identical across repeated runs and
//! across thread counts. And turning tracing on must never change the cuts:
//! observation is read-only.
//!
//! CI runs this file twice, once additionally forcing a thread count via
//! `MLPART_TEST_THREADS`, mirroring `determinism.rs`.
#![cfg(feature = "obs")]

use mlpart_bench::{algos, run_many_par, RunStats};
use mlpart_gen::suite;
use mlpart_hypergraph::Hypergraph;
use mlpart_obs as obs;
use std::sync::{Mutex, MutexGuard};

/// The observability gate is process-global; tests that toggle it must not
/// interleave.
fn gate_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn thread_counts() -> Vec<usize> {
    let mut counts = vec![1, 2, 8];
    if let Ok(forced) = std::env::var("MLPART_TEST_THREADS") {
        let forced: usize = forced
            .parse()
            .expect("MLPART_TEST_THREADS must be a positive integer");
        assert!(forced > 0, "MLPART_TEST_THREADS must be positive");
        if !counts.contains(&forced) {
            counts.push(forced);
        }
    }
    counts
}

fn circuit() -> Hypergraph {
    suite::by_name("balu").expect("suite circuit").generate(3)
}

fn batch(h: &Hypergraph, threads: usize) -> RunStats {
    run_many_par(6, 29, threads, |rng, ws| algos::ml_c_in(h, 0.5, rng, ws))
}

/// Runs one traced batch and returns the cut statistics plus the stripped
/// (timestamp-free) JSONL rendering of the captured trace.
fn traced_batch(h: &Hypergraph, threads: usize) -> (RunStats, String) {
    obs::force_enabled(true);
    let (stats, trace) = obs::capture(|| {
        let _run = obs::span("run", &[("seed", 29u64.into())]);
        batch(h, threads)
    });
    obs::force_enabled(false);
    let trace = trace.expect("gate forced on");
    assert!(!trace.events.is_empty(), "instrumentation should fire");
    (stats, obs::strip_timing(&obs::to_jsonl(&trace)))
}

#[test]
fn trace_content_is_identical_across_repeated_runs() {
    let _gate = gate_lock();
    let h = circuit();
    let (s1, t1) = traced_batch(&h, 2);
    let (s2, t2) = traced_batch(&h, 2);
    assert_eq!(s1, s2, "cuts are seed-deterministic");
    assert_eq!(t1, t2, "stripped trace must be byte-identical across runs");
}

#[test]
fn trace_content_is_identical_across_thread_counts() {
    let _gate = gate_lock();
    let h = circuit();
    let (s1, t1) = traced_batch(&h, 1);
    for threads in thread_counts() {
        let (s, t) = traced_batch(&h, threads);
        assert_eq!(s1, s, "threads={threads}: cuts");
        assert_eq!(t1, t, "threads={threads}: stripped trace content");
    }
}

/// The Chrome export is a pure function of the trace, so its stripped form
/// inherits the same invariance.
#[test]
fn chrome_trace_content_is_thread_count_invariant() {
    let _gate = gate_lock();
    let h = circuit();
    let render = |threads: usize| {
        obs::force_enabled(true);
        let (_, trace) = obs::capture(|| batch(&h, threads));
        obs::force_enabled(false);
        obs::strip_timing(&obs::to_chrome_trace(&trace.expect("gate forced on")))
    };
    let c1 = render(1);
    for threads in [2, 8] {
        assert_eq!(c1, render(threads), "threads={threads}");
    }
}

/// Observation is read-only: the cuts of a traced batch are bit-identical
/// to the same batch run with the gate off (compiled in, disabled) — the
/// hooks never perturb RNG streams, move order, or tie-breaking.
#[test]
fn cuts_are_bit_identical_with_obs_on_and_off() {
    let _gate = gate_lock();
    let h = circuit();
    obs::force_enabled(false);
    let off = batch(&h, 2);
    let (on, _) = traced_batch(&h, 2);
    assert_eq!(off, on, "tracing must not change results");
    assert_eq!(off.cut.min, on.cut.min);
    assert_eq!(off.cut.avg, on.cut.avg);
}
