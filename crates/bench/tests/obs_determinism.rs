//! Trace-content determinism contract (needs `--features obs`).
//!
//! With tracing enabled, a fixed-seed batch must emit a trace whose
//! **content** — every event name, nesting, and argument, i.e. everything
//! except the timestamp fields — is byte-identical across repeated runs and
//! across thread counts. And turning tracing on must never change the cuts:
//! observation is read-only.
//!
//! CI runs this file twice, once additionally forcing a thread count via
//! `MLPART_TEST_THREADS`, mirroring `determinism.rs`.
#![cfg(feature = "obs")]

use mlpart_bench::{algos, run_many_par, RunStats};
use mlpart_gen::suite;
use mlpart_hypergraph::Hypergraph;
use mlpart_obs as obs;
use std::sync::{Mutex, MutexGuard};

/// The observability gate is process-global; tests that toggle it must not
/// interleave.
fn gate_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn thread_counts() -> Vec<usize> {
    let mut counts = vec![1, 2, 4, 8];
    if let Ok(forced) = std::env::var("MLPART_TEST_THREADS") {
        let forced: usize = forced
            .parse()
            .expect("MLPART_TEST_THREADS must be a positive integer");
        assert!(forced > 0, "MLPART_TEST_THREADS must be positive");
        if !counts.contains(&forced) {
            counts.push(forced);
        }
    }
    counts
}

fn circuit() -> Hypergraph {
    suite::by_name("balu").expect("suite circuit").generate(3)
}

fn batch(h: &Hypergraph, threads: usize) -> RunStats {
    run_many_par(6, 29, threads, |rng, ws| algos::ml_c_in(h, 0.5, rng, ws))
}

/// Runs one traced batch and returns the cut statistics plus the stripped
/// (timestamp-free) JSONL rendering of the captured trace.
fn traced_batch(h: &Hypergraph, threads: usize) -> (RunStats, String) {
    obs::force_enabled(true);
    let (stats, trace) = obs::capture(|| {
        let _run = obs::span("run", &[("seed", 29u64.into())]);
        batch(h, threads)
    });
    obs::force_enabled(false);
    let trace = trace.expect("gate forced on");
    assert!(!trace.events.is_empty(), "instrumentation should fire");
    (stats, obs::strip_timing(&obs::to_jsonl(&trace)))
}

#[test]
fn trace_content_is_identical_across_repeated_runs() {
    let _gate = gate_lock();
    let h = circuit();
    let (s1, t1) = traced_batch(&h, 2);
    let (s2, t2) = traced_batch(&h, 2);
    assert_eq!(s1, s2, "cuts are seed-deterministic");
    assert_eq!(t1, t2, "stripped trace must be byte-identical across runs");
}

#[test]
fn trace_content_is_identical_across_thread_counts() {
    let _gate = gate_lock();
    let h = circuit();
    let (s1, t1) = traced_batch(&h, 1);
    for threads in thread_counts() {
        let (s, t) = traced_batch(&h, threads);
        assert_eq!(s1, s, "threads={threads}: cuts");
        assert_eq!(t1, t, "threads={threads}: stripped trace content");
    }
}

/// The Chrome export is a pure function of the trace, so its stripped form
/// inherits the same invariance.
#[test]
fn chrome_trace_content_is_thread_count_invariant() {
    let _gate = gate_lock();
    let h = circuit();
    let render = |threads: usize| {
        obs::force_enabled(true);
        let (_, trace) = obs::capture(|| batch(&h, threads));
        obs::force_enabled(false);
        obs::strip_timing(&obs::to_chrome_trace(&trace.expect("gate forced on")))
    };
    let c1 = render(1);
    for threads in [2, 8] {
        assert_eq!(c1, render(threads), "threads={threads}");
    }
}

/// Captures one traced batch and returns the raw trace.
fn raw_traced_batch(h: &Hypergraph, threads: usize) -> (RunStats, obs::Trace) {
    obs::force_enabled(true);
    let (stats, trace) = obs::capture(|| {
        let _run = obs::span("run", &[("seed", 29u64.into())]);
        batch(h, threads)
    });
    obs::force_enabled(false);
    (stats, trace.expect("gate forced on"))
}

/// The metrics registry is a pure function of trace content, so its JSON
/// serialization is bit-identical at every thread count — no stripping
/// needed at all.
#[test]
fn metrics_registry_is_bit_identical_across_thread_counts() {
    let _gate = gate_lock();
    let h = circuit();
    let (_, t1) = raw_traced_batch(&h, 1);
    let r1 = obs::metrics::Registry::from_trace(&t1).to_json();
    assert!(
        r1.contains("fm_pass"),
        "registry folded refinement counters"
    );
    for threads in thread_counts() {
        let (_, t) = raw_traced_batch(&h, threads);
        let r = obs::metrics::Registry::from_trace(&t).to_json();
        assert_eq!(r1, r, "threads={threads}: serialized registry bytes");
    }
}

/// Folded-stack exports keep their frame structure (the normative part)
/// across thread counts; only the trailing sample values vary.
#[test]
fn folded_stacks_are_structurally_identical_across_thread_counts() {
    let _gate = gate_lock();
    let h = circuit();
    let (_, t1) = raw_traced_batch(&h, 1);
    let f1 = obs::strip_folded(&obs::to_folded(&t1));
    assert!(f1.contains(';'), "stacks have nested frames");
    for threads in thread_counts() {
        let (_, t) = raw_traced_batch(&h, threads);
        assert_eq!(
            f1,
            obs::strip_folded(&obs::to_folded(&t)),
            "threads={threads}: folded frames"
        );
    }
}

/// Full v3 run reports — profile and metrics sections included — are
/// byte-identical after profile normalization across thread counts: the
/// invariant `obs-diff` enforces between same-seed runs.
#[test]
fn v3_reports_strip_identical_across_thread_counts() {
    let _gate = gate_lock();
    let report_doc = |h: &Hypergraph, threads: usize| {
        let (_, trace) = raw_traced_batch(h, threads);
        obs::report::RunReport {
            meta: vec![
                ("harness", obs::V::S("obs_determinism")),
                ("seed", 29u64.into()),
                ("threads", (threads as u64).into()),
            ],
            cuts: Vec::new(),
            failures: Vec::new(),
            truncations: Vec::new(),
            retries: Vec::new(),
            repairs: Vec::new(),
            wall_secs: 0.0,
            cpu_secs: 0.0,
            trace,
        }
        .to_json()
    };
    let h = circuit();
    let d1 = report_doc(&h, 1);
    let n1 = obs::strip_profile(&d1);
    for threads in thread_counts() {
        let d = report_doc(&h, threads);
        assert_eq!(
            n1,
            obs::strip_profile(&d),
            "threads={threads}: normalized v3 report bytes"
        );
        // And obs-diff agrees end to end: same-seed cross-thread runs are
        // clean (a generous threshold absorbs machine-load noise on the
        // real timings).
        let opts = obs::diff::DiffOptions {
            max_time_ratio: 1e9,
            max_alloc_ratio: 1e9,
            ..obs::diff::DiffOptions::default()
        };
        let verdict = obs::diff::diff_documents("t1", &d1, "tN", &d, &opts);
        assert_eq!(
            verdict.exit,
            obs::diff::EXIT_CLEAN,
            "threads={threads}: {}",
            verdict.text
        );
    }
}

/// The per-phase rollup's deterministic columns (phase order, counts) are
/// thread-count invariant even though its ns columns are telemetry.
#[test]
fn phase_rollup_structure_is_thread_count_invariant() {
    let _gate = gate_lock();
    let h = circuit();
    let (_, t1) = raw_traced_batch(&h, 1);
    let shape = |t: &obs::Trace| -> Vec<(String, u64)> {
        obs::profile::phase_rollup(t)
            .into_iter()
            .map(|p| (p.name, p.count))
            .collect()
    };
    let s1 = shape(&t1);
    assert_eq!(s1[0].0, "run");
    assert!(
        s1.iter().any(|(n, c)| n == "start" && *c == 6),
        "six starts"
    );
    for threads in thread_counts() {
        let (_, t) = raw_traced_batch(&h, threads);
        assert_eq!(s1, shape(&t), "threads={threads}: phase structure");
    }
}

/// Observation is read-only: the cuts of a traced batch are bit-identical
/// to the same batch run with the gate off (compiled in, disabled) — the
/// hooks never perturb RNG streams, move order, or tie-breaking.
#[test]
fn cuts_are_bit_identical_with_obs_on_and_off() {
    let _gate = gate_lock();
    let h = circuit();
    obs::force_enabled(false);
    let off = batch(&h, 2);
    let (on, _) = traced_batch(&h, 2);
    assert_eq!(off, on, "tracing must not change results");
    assert_eq!(off.cut.min, on.cut.min);
    assert_eq!(off.cut.avg, on.cut.avg);
}
