//! The clustering type: a k-way grouping of a hypergraph's modules.
//!
//! The paper's footnote 1: "A k-way clustering `Pᵏ` of the netlist `H(V,E)`
//! is a set of disjoint subsets `C1 … Ck` of `V` such that their union is
//! `V`. Since a clustering and a partitioning are actually equivalent, we use
//! the superscript k to distinguish" — we keep them as separate types because
//! they play different roles: a [`Clustering`] maps a fine netlist's modules
//! onto the *modules of the next coarser netlist*, while a
//! [`Partition`](mlpart_hypergraph::Partition) maps modules onto a fixed
//! small number of blocks.

use mlpart_hypergraph::{Hypergraph, ModuleId};

/// A clustering `Pᵏ = {C1, …, Ck}` of a hypergraph's modules, stored as a
/// dense `module → cluster` map.
///
/// Cluster ids are dense in `0..num_clusters` and become the module ids of
/// the induced coarser netlist (see [`induce`](crate::induce())).
///
/// # Examples
///
/// ```
/// use mlpart_cluster::Clustering;
///
/// let c = Clustering::from_map(vec![0, 0, 1, 2, 1]).expect("dense ids");
/// assert_eq!(c.num_clusters(), 3);
/// assert_eq!(c.cluster_of_index(4), 1);
/// assert_eq!(c.cluster_sizes(), vec![2, 2, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clustering {
    cluster_of: Vec<u32>,
    num_clusters: usize,
}

impl Clustering {
    /// Builds a clustering from a dense `module → cluster` map.
    ///
    /// Returns `None` if the cluster ids are not dense, i.e. some id in
    /// `0..max(map)` never occurs. (An empty map is the valid clustering of
    /// an empty netlist.)
    pub fn from_map(cluster_of: Vec<u32>) -> Option<Self> {
        let num_clusters = match cluster_of.iter().max() {
            None => 0,
            Some(&m) => m as usize + 1,
        };
        let mut seen = vec![false; num_clusters];
        for &c in &cluster_of {
            seen[c as usize] = true;
        }
        if seen.iter().all(|&s| s) {
            Some(Clustering {
                cluster_of,
                num_clusters,
            })
        } else {
            None
        }
    }

    /// Builds a clustering from a map whose ids are dense in
    /// `0..num_clusters` **by construction** (e.g. a matcher that hands out
    /// sequential cluster ids). Density is checked only under
    /// `debug_assertions`; in release builds this is a plain move.
    pub fn from_dense(cluster_of: Vec<u32>, num_clusters: usize) -> Self {
        debug_assert!(
            {
                let roundtrip = Clustering::from_map(cluster_of.clone());
                roundtrip.as_ref().map(Clustering::num_clusters) == Some(num_clusters)
                    || (cluster_of.is_empty() && num_clusters == 0)
            },
            "cluster ids are not dense in 0..{num_clusters}"
        );
        Clustering {
            cluster_of,
            num_clusters,
        }
    }

    /// The identity clustering (every module its own cluster), which induces
    /// an isomorphic netlist.
    pub fn identity(n: usize) -> Self {
        Clustering {
            cluster_of: (0..n as u32).collect(),
            num_clusters: n,
        }
    }

    /// Number of clusters `k`.
    #[inline]
    pub fn num_clusters(&self) -> usize {
        self.num_clusters
    }

    /// Number of modules of the underlying (fine) netlist.
    #[inline]
    pub fn num_modules(&self) -> usize {
        self.cluster_of.len()
    }

    /// The cluster containing module `v`.
    #[inline]
    pub fn cluster_of(&self, v: ModuleId) -> u32 {
        self.cluster_of[v.index()]
    }

    /// The cluster containing the module with dense index `i`.
    #[inline]
    pub fn cluster_of_index(&self, i: usize) -> u32 {
        self.cluster_of[i]
    }

    /// The raw `module → cluster` map.
    #[inline]
    pub fn as_map(&self) -> &[u32] {
        &self.cluster_of
    }

    /// Number of modules in each cluster.
    pub fn cluster_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.num_clusters];
        for &c in &self.cluster_of {
            sizes[c as usize] += 1;
        }
        sizes
    }

    /// Total area of each cluster under `h`'s module areas — the areas of the
    /// induced netlist's modules ("module areas are preserved", §III).
    pub fn cluster_areas(&self, h: &Hypergraph) -> Vec<u64> {
        assert_eq!(h.num_modules(), self.num_modules());
        let mut areas = vec![0u64; self.num_clusters];
        for v in h.modules() {
            areas[self.cluster_of(v) as usize] += h.area(v);
        }
        areas
    }

    /// `true` if this clustering matches hypergraph `h` and its ids are dense.
    pub fn validate(&self, h: &Hypergraph) -> bool {
        self.cluster_of.len() == h.num_modules()
            && Clustering::from_map(self.cluster_of.clone()).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlpart_hypergraph::HypergraphBuilder;

    #[test]
    fn from_map_requires_dense_ids() {
        assert!(Clustering::from_map(vec![0, 1, 2]).is_some());
        assert!(Clustering::from_map(vec![0, 2]).is_none()); // 1 missing
        assert!(Clustering::from_map(vec![]).is_some());
    }

    #[test]
    fn identity_clustering() {
        let c = Clustering::identity(4);
        assert_eq!(c.num_clusters(), 4);
        assert_eq!(c.cluster_sizes(), vec![1, 1, 1, 1]);
        assert_eq!(c.cluster_of(ModuleId::new(2)), 2);
    }

    #[test]
    fn cluster_areas_accumulate() {
        let mut b = HypergraphBuilder::new(vec![4, 7, 2]);
        b.add_net([0, 1]).unwrap();
        let h = b.build().unwrap();
        let c = Clustering::from_map(vec![0, 0, 1]).unwrap();
        assert_eq!(c.cluster_areas(&h), vec![11, 2]);
        assert!(c.validate(&h));
    }

    #[test]
    fn validate_checks_module_count() {
        let h = HypergraphBuilder::with_unit_areas(3).build().unwrap();
        let c = Clustering::from_map(vec![0, 0]).unwrap();
        assert!(!c.validate(&h));
    }
}
