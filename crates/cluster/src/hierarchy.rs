//! `Induce` (Definition 1), `Project` (Definition 2) and rebalancing.
//!
//! These three operations connect adjacent levels of the multilevel
//! hierarchy: a clustering of `Hᵢ` *induces* the coarser `Hᵢ₊₁`; a solution
//! of `Hᵢ₊₁` is *projected* back onto `Hᵢ`; and because the largest-module
//! area can shrink during uncoarsening, the projected solution may violate
//! the finer level's balance bounds and must be *rebalanced* by random moves
//! from the larger side to the smaller (§III-B).

use crate::clustering::Clustering;
use mlpart_hypergraph::{
    BipartBalance, BuildHypergraphError, Hypergraph, HypergraphBuilder, KwayBalance, ModuleId,
    Partition,
};
use rand::seq::SliceRandom;
use rand::Rng;

/// Why a level transition (`induce`, `induce_coalesced`, `project`) was
/// rejected. These operations sit on the multilevel hot path and receive
/// caller-assembled clusterings and partitions, so mismatches surface as
/// typed errors rather than panics.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoarsenError {
    /// The clustering's module count or id density does not match the
    /// hypergraph it was applied to.
    ClusteringMismatch {
        /// Modules covered by the clustering map.
        map_len: usize,
        /// Modules in the hypergraph.
        num_modules: usize,
    },
    /// The coarse partition's module count does not match the clustering's
    /// cluster count.
    PartitionMismatch {
        /// Modules covered by the coarse partition.
        partition_len: usize,
        /// Clusters in the clustering.
        num_clusters: usize,
    },
    /// Coalescing merged parallel nets whose summed weight exceeds `u32`.
    WeightOverflow {
        /// The overflowing summed weight.
        total: u64,
    },
    /// The induced netlist failed hypergraph validation.
    Build(BuildHypergraphError),
}

impl std::fmt::Display for CoarsenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoarsenError::ClusteringMismatch {
                map_len,
                num_modules,
            } => write!(
                f,
                "clustering covers {map_len} modules but the hypergraph has {num_modules}"
            ),
            CoarsenError::PartitionMismatch {
                partition_len,
                num_clusters,
            } => write!(
                f,
                "coarse partition covers {partition_len} modules but the clustering has {num_clusters} clusters"
            ),
            CoarsenError::WeightOverflow { total } => {
                write!(f, "coalesced net weight {total} overflows u32")
            }
            CoarsenError::Build(e) => write!(f, "induced netlist is invalid: {e}"),
        }
    }
}

impl std::error::Error for CoarsenError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoarsenError::Build(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BuildHypergraphError> for CoarsenError {
    fn from(e: BuildHypergraphError) -> Self {
        CoarsenError::Build(e)
    }
}

/// Definition 1: constructs the coarser netlist `Hᵢ₊₁` induced by a
/// clustering of `Hᵢ`.
///
/// Every net `e` maps to `e* = {Cₕ | e ∩ Cₕ ≠ ∅}`; nets with `|e*| = 1`
/// vanish. Cluster areas are the sums of their members' areas. Nets that
/// collapse onto identical cluster sets are **kept as duplicates**, exactly
/// as in the definition — a duplicated coarse net represents several fine
/// nets and must count multiply in the coarse cut.
///
/// # Errors
///
/// [`CoarsenError::ClusteringMismatch`] when the clustering does not match
/// `h`; [`CoarsenError::Build`] when the induced netlist fails validation.
///
/// # Examples
///
/// ```
/// use mlpart_cluster::{induce, Clustering};
/// use mlpart_hypergraph::HypergraphBuilder;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = HypergraphBuilder::with_unit_areas(4);
/// b.add_net([0, 1])?;    // internal to cluster 0: vanishes
/// b.add_net([1, 2, 3])?; // becomes {C0, C1}
/// let h = b.build()?;
/// let c = Clustering::from_map(vec![0, 0, 1, 1]).expect("dense");
/// let coarse = induce(&h, &c)?;
/// assert_eq!(coarse.num_modules(), 2);
/// assert_eq!(coarse.num_nets(), 1);
/// assert_eq!(coarse.total_area(), h.total_area());
/// # Ok(())
/// # }
/// ```
pub fn induce(h: &Hypergraph, clustering: &Clustering) -> Result<Hypergraph, CoarsenError> {
    if !clustering.validate(h) {
        return Err(CoarsenError::ClusteringMismatch {
            map_len: clustering.num_modules(),
            num_modules: h.num_modules(),
        });
    }
    let mut builder = HypergraphBuilder::new(clustering.cluster_areas(h));
    // The builder deduplicates pins within a net and drops nets that end up
    // with fewer than two distinct pins, which is exactly Definition 1.
    let mut scratch: Vec<usize> = Vec::new();
    for e in h.net_ids() {
        scratch.clear();
        scratch.extend(h.pins(e).iter().map(|&v| clustering.cluster_of(v) as usize));
        builder.add_weighted_net(scratch.iter().copied(), h.net_weight(e))?;
    }
    let coarse = builder.build()?;
    #[cfg(feature = "audit")]
    if mlpart_audit::enabled() {
        mlpart_audit::enforce(mlpart_audit::audit_hypergraph(&coarse));
        mlpart_audit::enforce(mlpart_audit::check_counter(
            "Hypergraph",
            "induce-total-area",
            coarse.total_area(),
            h.total_area(),
        ));
    }
    Ok(coarse)
}

/// [`induce`] followed by **coalescing identical nets**: coarse nets with the
/// same pin set are merged into one net whose weight is the sum of theirs.
///
/// Definition 1 keeps duplicates (each fine net maps to its own coarse net);
/// every later multilevel tool (hMETIS, MLPart, KaHyPar) coalesces instead,
/// because coarse levels otherwise accumulate large bundles of parallel nets.
/// The weighted cut of a coalesced netlist equals the plain cut of the
/// duplicated one for every partition, so solution quality is untouched
/// while memory and per-pass time shrink.
///
/// # Errors
///
/// [`CoarsenError::ClusteringMismatch`] when the clustering does not match
/// `h`; [`CoarsenError::WeightOverflow`] when merged parallel nets overflow
/// the `u32` weight; [`CoarsenError::Build`] when the coalesced netlist
/// fails validation.
pub fn induce_coalesced(
    h: &Hypergraph,
    clustering: &Clustering,
) -> Result<Hypergraph, CoarsenError> {
    let dup = induce(h, clustering)?;
    // Group nets by sorted pin set. A BTreeMap keeps the grouping — and
    // therefore the coarse net order — independent of hash state and
    // insertion order: iteration is always ascending by pin set, so no
    // separate sort pass is needed and no default-hasher nondeterminism
    // can ever leak into the coarse netlist.
    let mut keyed: std::collections::BTreeMap<Vec<u32>, u64> = std::collections::BTreeMap::new();
    for e in dup.net_ids() {
        let mut key: Vec<u32> = dup.pins(e).iter().map(|v| v.raw()).collect();
        key.sort_unstable();
        *keyed.entry(key).or_insert(0) += dup.net_weight(e) as u64;
    }
    let merged: Vec<(Vec<u32>, u64)> = keyed.into_iter().collect();
    let mut builder = HypergraphBuilder::new(
        (0..dup.num_modules())
            .map(|i| dup.area(ModuleId::new(i)))
            .collect(),
    );
    for (pins, weight) in merged {
        let weight =
            u32::try_from(weight).map_err(|_| CoarsenError::WeightOverflow { total: weight })?;
        builder.add_weighted_net(pins.iter().map(|&p| p as usize), weight)?;
    }
    let coalesced = builder.build()?;
    #[cfg(feature = "audit")]
    if mlpart_audit::enabled() {
        mlpart_audit::enforce(mlpart_audit::audit_hypergraph(&coalesced));
        // Coalescing must conserve total net weight (each merged net carries
        // the sum of its duplicates), which is what keeps weighted cuts equal.
        mlpart_audit::enforce(mlpart_audit::check_counter(
            "Hypergraph",
            "coalesce-net-weight",
            coalesced.total_net_weight(),
            dup.total_net_weight(),
        ));
    }
    Ok(coalesced)
}

/// Definition 2: projects a partition of the coarse netlist back onto the
/// fine netlist — every fine module inherits the part of its cluster.
///
/// # Errors
///
/// [`CoarsenError::ClusteringMismatch`] when the clustering does not match
/// `fine`; [`CoarsenError::PartitionMismatch`] when `coarse_partition` does
/// not match the clustering's cluster count.
pub fn project(
    fine: &Hypergraph,
    clustering: &Clustering,
    coarse_partition: &Partition,
) -> Result<Partition, CoarsenError> {
    if !clustering.validate(fine) {
        return Err(CoarsenError::ClusteringMismatch {
            map_len: clustering.num_modules(),
            num_modules: fine.num_modules(),
        });
    }
    if coarse_partition.assignment().len() != clustering.num_clusters() {
        return Err(CoarsenError::PartitionMismatch {
            partition_len: coarse_partition.assignment().len(),
            num_clusters: clustering.num_clusters(),
        });
    }
    let assignment: Vec<u32> = (0..fine.num_modules())
        .map(|i| coarse_partition.part(ModuleId::new(clustering.cluster_of_index(i) as usize)))
        .collect();
    let fine_p = Partition::from_assignment(fine, coarse_partition.k(), assignment).ok_or(
        CoarsenError::PartitionMismatch {
            partition_len: coarse_partition.assignment().len(),
            num_clusters: clustering.num_clusters(),
        },
    )?;
    #[cfg(feature = "audit")]
    if mlpart_audit::enabled() {
        mlpart_audit::enforce(mlpart_audit::audit_cluster_map(
            clustering.as_map(),
            clustering.num_clusters(),
        ));
        mlpart_audit::enforce(mlpart_audit::audit_partition(fine, &fine_p));
        // Definition 2 preserves per-part areas; the multilevel driver
        // additionally audits bit-exact cut preservation (it owns both the
        // fine and the coarse netlist).
        if fine_p.part_areas() != coarse_partition.part_areas() {
            mlpart_audit::enforce(Err(mlpart_audit::AuditError::new(
                "Projection",
                "area-preserved",
                format!(
                    "fine part areas {:?} != coarse part areas {:?}",
                    fine_p.part_areas(),
                    coarse_partition.part_areas()
                ),
            )));
        }
    }
    Ok(fine_p)
}

/// §III-B rebalancing for bipartitions: "the solution is rebalanced by
/// randomly moving modules from the larger cluster to the smaller one" until
/// the balance bounds hold.
///
/// Returns the number of modules moved. If the bounds are unreachable (e.g.
/// pathological areas) the function stops once no move can help and returns
/// what it did; callers treat feasibility as best-effort, as the paper does.
pub fn rebalance_bipart<R: Rng + ?Sized>(
    h: &Hypergraph,
    p: &mut Partition,
    balance: &BipartBalance,
    rng: &mut R,
) -> usize {
    rebalance_bipart_frozen(h, p, balance, None, rng)
}

/// [`rebalance_bipart`] with a frozen-module mask: frozen modules (e.g.
/// pre-assigned pads) are never moved.
///
/// # Panics
///
/// Panics if `frozen` is present with the wrong length.
pub fn rebalance_bipart_frozen<R: Rng + ?Sized>(
    h: &Hypergraph,
    p: &mut Partition,
    balance: &BipartBalance,
    frozen: Option<&[bool]>,
    rng: &mut R,
) -> usize {
    debug_assert_eq!(p.k(), 2);
    if let Some(f) = frozen {
        assert_eq!(f.len(), h.num_modules(), "frozen mask has wrong length");
    }
    let is_frozen = |v: ModuleId| frozen.is_some_and(|f| f[v.index()]);
    let mut moved = 0;
    let mut order: Vec<u32> = (0..h.num_modules() as u32).collect();
    order.shuffle(rng);
    let mut cursor = 0;
    while !balance.is_feasible(p.part_area(0)) && cursor < order.len() {
        let big: u32 = if p.part_area(0) > p.part_area(1) {
            0
        } else {
            1
        };
        // Advance to the next random movable module in the big part.
        while cursor < order.len() {
            let v = ModuleId::from(order[cursor]);
            cursor += 1;
            if p.part(v) == big && !is_frozen(v) {
                p.move_module(h, v, 1 - big);
                moved += 1;
                break;
            }
        }
    }
    moved
}

/// K-way analogue of [`rebalance_bipart`]: random modules move from
/// over-full parts to the currently smallest part until all parts fit.
///
/// Returns the number of modules moved.
pub fn rebalance_kway<R: Rng + ?Sized>(
    h: &Hypergraph,
    p: &mut Partition,
    balance: &KwayBalance,
    rng: &mut R,
) -> usize {
    rebalance_kway_frozen(h, p, balance, None, rng)
}

/// [`rebalance_kway`] with a frozen-module mask: frozen modules (e.g.
/// pre-assigned pads) are never moved.
///
/// # Panics
///
/// Panics if `frozen` is present with the wrong length.
pub fn rebalance_kway_frozen<R: Rng + ?Sized>(
    h: &Hypergraph,
    p: &mut Partition,
    balance: &KwayBalance,
    frozen: Option<&[bool]>,
    rng: &mut R,
) -> usize {
    if let Some(f) = frozen {
        assert_eq!(f.len(), h.num_modules(), "frozen mask has wrong length");
    }
    let is_frozen = |v: ModuleId| frozen.is_some_and(|f| f[v.index()]);
    let k = p.k();
    let mut moved = 0;
    let mut order: Vec<u32> = (0..h.num_modules() as u32).collect();
    order.shuffle(rng);
    let mut cursor = 0;
    while !balance.is_partition_feasible(p) && cursor < order.len() {
        // Identify the most over-full part and the least-full part.
        let (mut big, mut small) = (0u32, 0u32);
        for part in 1..k {
            if p.part_area(part) > p.part_area(big) {
                big = part;
            }
            if p.part_area(part) < p.part_area(small) {
                small = part;
            }
        }
        if big == small {
            break;
        }
        while cursor < order.len() {
            let v = ModuleId::from(order[cursor]);
            cursor += 1;
            if p.part(v) == big && !is_frozen(v) {
                p.move_module(h, v, small);
                moved += 1;
                break;
            }
        }
    }
    moved
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlpart_hypergraph::metrics;
    use mlpart_hypergraph::rng::seeded_rng;

    fn line(n: usize) -> Hypergraph {
        let mut b = HypergraphBuilder::with_unit_areas(n);
        for i in 0..n - 1 {
            b.add_net([i, i + 1]).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn induce_preserves_total_area() {
        let h = line(8);
        let c = Clustering::from_map(vec![0, 0, 1, 1, 2, 2, 3, 3]).unwrap();
        let coarse = induce(&h, &c).unwrap();
        assert_eq!(coarse.total_area(), h.total_area());
        assert_eq!(coarse.num_modules(), 4);
        // Internal nets vanish: 7 nets -> 3 inter-cluster nets.
        assert_eq!(coarse.num_nets(), 3);
    }

    #[test]
    fn induce_keeps_duplicate_nets() {
        // Two parallel nets between the same clusters must both survive.
        let mut b = HypergraphBuilder::with_unit_areas(4);
        b.add_net([0, 2]).unwrap();
        b.add_net([1, 3]).unwrap();
        let h = b.build().unwrap();
        let c = Clustering::from_map(vec![0, 0, 1, 1]).unwrap();
        let coarse = induce(&h, &c).unwrap();
        assert_eq!(coarse.num_nets(), 2, "parallel coarse nets both kept");
    }

    #[test]
    fn induce_identity_is_isomorphic() {
        let h = line(5);
        let coarse = induce(&h, &Clustering::identity(5)).unwrap();
        assert_eq!(coarse, h);
    }

    #[test]
    fn induce_collapses_multipin_nets() {
        let mut b = HypergraphBuilder::with_unit_areas(6);
        b.add_net([0, 1, 2, 3, 4, 5]).unwrap();
        let h = b.build().unwrap();
        let c = Clustering::from_map(vec![0, 0, 0, 1, 1, 2]).unwrap();
        let coarse = induce(&h, &c).unwrap();
        assert_eq!(coarse.num_nets(), 1);
        assert_eq!(coarse.net_size(mlpart_hypergraph::NetId::new(0)), 3);
    }

    #[test]
    fn projected_cut_equals_coarse_cut() {
        // The projection of a coarse solution has exactly the same cut when
        // measured on the fine netlist: internal nets are never cut, and each
        // coarse net corresponds 1:1 to a fine net.
        let h = line(8);
        let c = Clustering::from_map(vec![0, 0, 1, 1, 2, 2, 3, 3]).unwrap();
        let coarse = induce(&h, &c).unwrap();
        let coarse_p = Partition::from_assignment(&coarse, 2, vec![0, 0, 1, 1]).unwrap();
        let fine_p = project(&h, &c, &coarse_p).unwrap();
        assert_eq!(metrics::cut(&coarse, &coarse_p), metrics::cut(&h, &fine_p));
        assert!(fine_p.validate(&h));
        // Areas transfer too.
        assert_eq!(fine_p.part_area(0), coarse_p.part_area(0));
    }

    #[test]
    fn project_assigns_cluster_parts() {
        let h = line(4);
        let c = Clustering::from_map(vec![0, 1, 1, 0]).unwrap();
        let coarse = induce(&h, &c).unwrap();
        let coarse_p = Partition::from_assignment(&coarse, 2, vec![1, 0]).unwrap();
        let fine_p = project(&h, &c, &coarse_p).unwrap();
        assert_eq!(fine_p.assignment(), &[1, 0, 0, 1]);
    }

    #[test]
    fn rebalance_bipart_restores_feasibility() {
        let h = line(100);
        let balance = BipartBalance::new(&h, 0.1);
        // Everything on one side: infeasible.
        let mut p = Partition::from_assignment(&h, 2, vec![0; 100]).unwrap();
        assert!(!balance.is_feasible(p.part_area(0)));
        let mut rng = seeded_rng(8);
        let moved = rebalance_bipart(&h, &mut p, &balance, &mut rng);
        assert!(balance.is_feasible(p.part_area(0)));
        assert!(moved >= 40, "needed at least 40 moves, did {moved}");
        assert!(p.validate(&h));
    }

    #[test]
    fn rebalance_is_noop_when_feasible() {
        let h = line(100);
        let balance = BipartBalance::new(&h, 0.1);
        let mut p =
            Partition::from_assignment(&h, 2, (0..100).map(|i| (i % 2) as u32).collect()).unwrap();
        let mut rng = seeded_rng(0);
        assert_eq!(rebalance_bipart(&h, &mut p, &balance, &mut rng), 0);
    }

    #[test]
    fn rebalance_kway_restores_feasibility() {
        let h = line(100);
        let balance = KwayBalance::new(&h, 4, 0.1);
        let mut p = Partition::from_assignment(&h, 4, vec![0; 100]).unwrap();
        let mut rng = seeded_rng(3);
        rebalance_kway(&h, &mut p, &balance, &mut rng);
        assert!(balance.is_partition_feasible(&p));
        assert!(p.validate(&h));
    }

    #[test]
    fn induce_rejects_mismatched_clustering() {
        let h = line(4);
        let c = Clustering::from_map(vec![0, 0, 1]).unwrap();
        assert_eq!(
            induce(&h, &c).unwrap_err(),
            CoarsenError::ClusteringMismatch {
                map_len: 3,
                num_modules: 4
            }
        );
    }

    #[test]
    fn project_rejects_mismatched_partition() {
        let h = line(4);
        let c = Clustering::from_map(vec![0, 0, 1, 1]).unwrap();
        let coarse = induce(&h, &c).unwrap();
        let bad = Partition::from_assignment(&coarse, 2, vec![0, 1]).unwrap();
        // Build a 3-cluster clustering to mismatch.
        let c3 = Clustering::from_map(vec![0, 1, 2, 2]).unwrap();
        assert_eq!(
            project(&h, &c3, &bad).unwrap_err(),
            CoarsenError::PartitionMismatch {
                partition_len: 2,
                num_clusters: 3
            }
        );
    }
}

#[cfg(test)]
mod coalesce_tests {
    use super::*;
    use crate::matching::{match_clusters, MatchConfig};
    use mlpart_hypergraph::metrics;
    use mlpart_hypergraph::rng::seeded_rng;

    #[test]
    fn coalesced_merges_parallel_nets() {
        let mut b = HypergraphBuilder::with_unit_areas(4);
        b.add_net([0, 2]).unwrap();
        b.add_net([1, 3]).unwrap();
        b.add_net([0, 3]).unwrap();
        let h = b.build().unwrap();
        let c = Clustering::from_map(vec![0, 0, 1, 1]).unwrap();
        let dup = induce(&h, &c).unwrap();
        let merged = induce_coalesced(&h, &c).unwrap();
        assert_eq!(dup.num_nets(), 3);
        assert_eq!(merged.num_nets(), 1);
        assert_eq!(merged.net_weight(mlpart_hypergraph::NetId::new(0)), 3);
        assert_eq!(merged.total_net_weight(), 3);
    }

    #[test]
    fn coalesced_cut_equals_duplicate_cut_for_every_partition() {
        // The key invariant: for any coarse partition, the weighted cut of
        // the coalesced netlist equals the plain cut of the duplicated one.
        let mut b = HypergraphBuilder::with_unit_areas(12);
        for i in 0..12usize {
            b.add_net([i, (i + 1) % 12]).unwrap();
            b.add_net([i, (i + 2) % 12]).unwrap();
            b.add_net([i, (i + 1) % 12]).unwrap(); // deliberate duplicate
        }
        let h = b.build().unwrap();
        let mut rng = seeded_rng(7);
        let c = match_clusters(&h, &MatchConfig::default(), &mut rng);
        let dup = induce(&h, &c).unwrap();
        let merged = induce_coalesced(&h, &c).unwrap();
        assert_eq!(dup.num_modules(), merged.num_modules());
        assert!(merged.num_nets() <= dup.num_nets());
        for seed in 0..10 {
            let p_dup = Partition::random(&dup, 2, &mut seeded_rng(seed));
            let p_merged = Partition::from_assignment(&merged, 2, p_dup.assignment().to_vec())
                .expect("same module count");
            assert_eq!(
                metrics::cut(&dup, &p_dup),
                metrics::cut(&merged, &p_merged),
                "seed {seed}"
            );
            assert_eq!(
                metrics::sum_of_spans_minus_one(&dup, &p_dup),
                metrics::sum_of_spans_minus_one(&merged, &p_merged),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn coalesced_independent_of_net_insertion_order() {
        // Regression for the old default-hasher grouping: the coarse netlist
        // must be a pure function of the (multiset of) fine nets, never of
        // the order they were inserted in or of any map's iteration order.
        let nets: Vec<[usize; 2]> = (0..8).map(|i| [i, (i + 1) % 8]).collect();
        let build = |order: &[usize]| {
            let mut b = HypergraphBuilder::with_unit_areas(8);
            for &i in order {
                b.add_net(nets[i]).unwrap();
            }
            b.build().unwrap()
        };
        let forward = build(&(0..8).collect::<Vec<_>>());
        let reversed = build(&(0..8).rev().collect::<Vec<_>>());
        let c = Clustering::from_map(vec![0, 0, 1, 1, 2, 2, 3, 3]).unwrap();
        assert_eq!(
            induce_coalesced(&forward, &c).unwrap(),
            induce_coalesced(&reversed, &c).unwrap()
        );
    }

    #[test]
    fn coalesced_net_order_is_sorted_by_pin_set() {
        // BTreeMap grouping emits merged nets ascending by pin set; pin this
        // down so the coarse net order stays canonical.
        let mut b = HypergraphBuilder::with_unit_areas(6);
        b.add_net([4, 5]).unwrap();
        b.add_net([2, 4]).unwrap();
        b.add_net([0, 2]).unwrap();
        let h = b.build().unwrap();
        let c = Clustering::from_map(vec![0, 0, 1, 1, 2, 2]).unwrap();
        let merged = induce_coalesced(&h, &c).unwrap();
        let pin_sets: Vec<Vec<u32>> = merged
            .net_ids()
            .map(|e| merged.pins(e).iter().map(|v| v.raw()).collect())
            .collect();
        let mut sorted = pin_sets.clone();
        sorted.sort();
        assert_eq!(pin_sets, sorted);
    }

    #[test]
    fn coalesced_is_deterministic() {
        let mut b = HypergraphBuilder::with_unit_areas(6);
        for i in 0..6usize {
            b.add_net([i, (i + 1) % 6]).unwrap();
        }
        let h = b.build().unwrap();
        let c = Clustering::from_map(vec![0, 0, 1, 1, 2, 2]).unwrap();
        assert_eq!(
            induce_coalesced(&h, &c).unwrap(),
            induce_coalesced(&h, &c).unwrap()
        );
    }
}
