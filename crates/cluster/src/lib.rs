//! Coarsening for multilevel partitioning: the `Match` procedure, `Induce`,
//! and `Project`.
//!
//! Implements §III-A and Definitions 1-2 of *Multilevel Circuit Partitioning*
//! (Alpert, Huang, Kahng — DAC 1997): connectivity-based matching with the
//! paper's matching-ratio parameter `R`, the induced-netlist construction,
//! solution projection, and the §III-B rebalancing step. Baseline coarseners
//! (random matching, heavy-edge matching) are included for ablation studies.
//!
//! # Examples
//!
//! One level of coarsening and projection:
//!
//! ```
//! use mlpart_cluster::{match_clusters, induce, project, MatchConfig};
//! use mlpart_hypergraph::{HypergraphBuilder, Partition, rng::seeded_rng, metrics};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = HypergraphBuilder::with_unit_areas(8);
//! for i in 0..7 {
//!     b.add_net([i, i + 1])?;
//! }
//! let h = b.build()?;
//!
//! let mut rng = seeded_rng(1);
//! let clustering = match_clusters(&h, &MatchConfig::default(), &mut rng);
//! let coarse = induce(&h, &clustering)?;
//! assert!(coarse.num_modules() < h.num_modules());
//!
//! let coarse_p = Partition::random(&coarse, 2, &mut rng);
//! let fine_p = project(&h, &clustering, &coarse_p)?;
//! assert_eq!(metrics::cut(&coarse, &coarse_p), metrics::cut(&h, &fine_p));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod clustering;
pub mod hierarchy;
pub mod matching;

pub use clustering::Clustering;
pub use hierarchy::{
    induce, induce_coalesced, project, rebalance_bipart, rebalance_bipart_frozen, rebalance_kway,
    rebalance_kway_frozen, CoarsenError,
};
pub use matching::{
    conn, heavy_edge_matching, match_clusters, match_clusters_frozen, match_clusters_frozen_in,
    match_clusters_parts, match_clusters_parts_in, random_matching, MatchConfig, MatchScratch,
    MATCH_MAX_NET_SIZE,
};
