//! The `Match` coarsening procedure (paper Fig. 3) and baseline matchers.
//!
//! `Match` visits modules in a random permutation; each unmatched module `v`
//! grabs the unmatched neighbor `w` maximizing
//!
//! ```text
//! conn(v, w) = 1/(A(v)+A(w)) · Σ_{e ∋ v,w} 1/(|e| − 1)
//! ```
//!
//! where nets with more than ten modules are ignored ("to reduce runtimes").
//! The `1/(|e|−1)` term emphasizes small nets; the `1/(A(v)+A(w))` term
//! prefers merging small modules so cluster sizes stay balanced.
//!
//! The **matching ratio `R`** is the paper's key innovation over Chaco/Metis
//! maximal matchings: matching stops once `nMatch / |V| ≥ R`, so coarsening
//! proceeds more slowly and the hierarchy gains more levels.

use crate::clustering::Clustering;
use mlpart_hypergraph::rng::{random_permutation, random_permutation_into};
use mlpart_hypergraph::{Hypergraph, ModuleId, PartId};
use rand::Rng;

/// Reusable scratch buffers for [`match_clusters_frozen_in`]: the random
/// module permutation of Fig. 3 step 1 plus the `Conn` array and touched set
/// `S` of step 5. The multilevel coarsener calls `Match` once per pass, and
/// holding one `MatchScratch` across the whole coarsening loop means no
/// per-pass allocation (levels shrink, so level-0 capacity serves them all).
#[derive(Debug, Default)]
pub struct MatchScratch {
    /// The random visit permutation π (Fig. 3 step 1).
    perm: Vec<u32>,
    /// Per-module accumulated connectivity (`Conn`, Fig. 3 step 5).
    conn: Vec<f64>,
    /// Modules with a nonzero `Conn` entry (the set `S`).
    touched: Vec<u32>,
}

impl MatchScratch {
    /// Creates an empty scratch; the first `Match` call sizes it.
    pub fn new() -> Self {
        MatchScratch::default()
    }
}

/// Nets larger than this are invisible to `conn` (paper §III-A: "nets with
/// more than ten modules are ignored to reduce runtimes").
pub const MATCH_MAX_NET_SIZE: usize = 10;

/// Configuration for [`match_clusters`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatchConfig {
    /// Matching ratio `R ∈ (0, 1]`: the fraction of modules to pair up before
    /// stopping. `1.0` seeks a maximal matching (Chaco/Metis behaviour);
    /// `0.5` pairs only half the modules, roughly a 4/3 size reduction.
    pub ratio: f64,
    /// Nets larger than this do not contribute to connectivity.
    pub max_net_size: usize,
}

impl Default for MatchConfig {
    fn default() -> Self {
        MatchConfig {
            ratio: 1.0,
            max_net_size: MATCH_MAX_NET_SIZE,
        }
    }
}

impl MatchConfig {
    /// Config with the given matching ratio and the paper's net-size limit.
    pub fn with_ratio(ratio: f64) -> Self {
        MatchConfig {
            ratio,
            ..MatchConfig::default()
        }
    }
}

/// The paper's `Match(Hᵢ, R)` (Fig. 3): connectivity-based matching with a
/// matching-ratio stop. Returns the clustering `Pᵏ` whose clusters have one
/// or two modules each.
///
/// # Panics
///
/// Panics if `ratio` is not in `(0, 1]`.
///
/// # Examples
///
/// ```
/// use mlpart_cluster::{match_clusters, MatchConfig};
/// use mlpart_hypergraph::{HypergraphBuilder, rng::seeded_rng};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = HypergraphBuilder::with_unit_areas(4);
/// b.add_net([0, 1])?;
/// b.add_net([2, 3])?;
/// let h = b.build()?;
/// let mut rng = seeded_rng(0);
/// let c = match_clusters(&h, &MatchConfig::default(), &mut rng);
/// // Two tightly connected pairs: a maximal matching pairs both.
/// assert_eq!(c.num_clusters(), 2);
/// # Ok(())
/// # }
/// ```
pub fn match_clusters<R: Rng + ?Sized>(
    h: &Hypergraph,
    cfg: &MatchConfig,
    rng: &mut R,
) -> Clustering {
    match_clusters_frozen(h, cfg, None, rng)
}

/// [`match_clusters`] with a set of *frozen* modules that must remain
/// singleton clusters — used by multilevel quadrisection so that pre-assigned
/// I/O pads are never merged with movable logic (or with pads pinned to a
/// different part).
///
/// `frozen`, when present, must have one entry per module.
///
/// # Panics
///
/// Panics if `ratio` is not in `(0, 1]` or `frozen` has the wrong length.
pub fn match_clusters_frozen<R: Rng + ?Sized>(
    h: &Hypergraph,
    cfg: &MatchConfig,
    frozen: Option<&[bool]>,
    rng: &mut R,
) -> Clustering {
    let mut scratch = MatchScratch::new();
    match_clusters_frozen_in(h, cfg, frozen, rng, &mut scratch)
}

/// [`match_clusters_frozen`] with caller-owned scratch buffers: bit-identical
/// results, no per-pass allocation of the permutation or `Conn` machinery.
///
/// # Panics
///
/// Panics if `ratio` is not in `(0, 1]` or `frozen` has the wrong length.
pub fn match_clusters_frozen_in<R: Rng + ?Sized>(
    h: &Hypergraph,
    cfg: &MatchConfig,
    frozen: Option<&[bool]>,
    rng: &mut R,
    scratch: &mut MatchScratch,
) -> Clustering {
    if let Some(f) = frozen {
        assert_eq!(f.len(), h.num_modules(), "frozen mask has wrong length");
    }
    let is_frozen = |v: ModuleId| frozen.is_some_and(|f| f[v.index()]);
    match_core(h, cfg, rng, scratch, is_frozen, |_, w| !is_frozen(w))
}

/// [`match_clusters`] restricted by a per-module *part seed*: free modules
/// (`None`) pair only with free modules, and modules pre-assigned to a part
/// pair only with modules pre-assigned to the *same* part. Fixed cells of
/// different parts are therefore never merged, while same-part terminals may
/// still coalesce — Definition-1 coarsening then gives the coarse cluster an
/// unambiguous inherited assignment.
///
/// With `parts = None` this is byte-identical to [`match_clusters`] on an
/// identical RNG stream.
///
/// # Panics
///
/// Panics if `ratio` is not in `(0, 1]` or `parts` has the wrong length.
pub fn match_clusters_parts<R: Rng + ?Sized>(
    h: &Hypergraph,
    cfg: &MatchConfig,
    parts: Option<&[Option<PartId>]>,
    rng: &mut R,
) -> Clustering {
    let mut scratch = MatchScratch::new();
    match_clusters_parts_in(h, cfg, parts, rng, &mut scratch)
}

/// [`match_clusters_parts`] with caller-owned scratch buffers.
///
/// # Panics
///
/// Panics if `ratio` is not in `(0, 1]` or `parts` has the wrong length.
pub fn match_clusters_parts_in<R: Rng + ?Sized>(
    h: &Hypergraph,
    cfg: &MatchConfig,
    parts: Option<&[Option<PartId>]>,
    rng: &mut R,
    scratch: &mut MatchScratch,
) -> Clustering {
    if let Some(p) = parts {
        assert_eq!(p.len(), h.num_modules(), "part seed has wrong length");
    }
    let part_of = |v: ModuleId| parts.and_then(|p| p[v.index()]);
    match_core(
        h,
        cfg,
        rng,
        scratch,
        |_| false,
        |v, w| part_of(v) == part_of(w),
    )
}

/// The shared Fig. 3 loop. `skip(v)` excludes a module from opening a
/// cluster (it stays a singleton); `mergeable(v, w)` gates which neighbors
/// may join `v`'s cluster. Both predicates only prune candidates — the RNG
/// is consumed solely by the visit permutation, so every caller draws an
/// identical stream regardless of its policy.
fn match_core<R, S, M>(
    h: &Hypergraph,
    cfg: &MatchConfig,
    rng: &mut R,
    scratch: &mut MatchScratch,
    skip: S,
    mergeable: M,
) -> Clustering
where
    R: Rng + ?Sized,
    S: Fn(ModuleId) -> bool,
    M: Fn(ModuleId, ModuleId) -> bool,
{
    assert!(
        cfg.ratio > 0.0 && cfg.ratio <= 1.0,
        "matching ratio must be in (0, 1]"
    );
    let n = h.num_modules();
    const UNMATCHED: u32 = u32::MAX;
    let mut cluster_of = vec![UNMATCHED; n];
    let mut k: u32 = 0;
    let mut n_match: usize = 0;

    // Scratch for the conn computation: Conn array + touched set S (Fig. 3's
    // description of step 5). `conn` is all-zero between modules (entries are
    // reset via `touched`), so clear+resize restores the invariant without
    // reallocating.
    scratch.conn.clear();
    scratch.conn.resize(n, 0.0);
    scratch.touched.clear();
    let conn = &mut scratch.conn;
    let touched = &mut scratch.touched;

    random_permutation_into(n, rng, &mut scratch.perm);
    let perm = &scratch.perm;
    let mut j = 0usize;
    while (n_match as f64) < cfg.ratio * n as f64 && j < n {
        let v = ModuleId::from(perm[j]);
        if cluster_of[v.index()] == UNMATCHED && !skip(v) {
            // Step 4: open a new cluster containing v.
            let cluster = k;
            k += 1;
            cluster_of[v.index()] = cluster;
            // Step 5: accumulate conn over v's small nets.
            for &e in h.nets(v) {
                let size = h.net_size(e);
                if size > cfg.max_net_size {
                    continue;
                }
                let weight = h.net_weight(e) as f64 / (size as f64 - 1.0);
                for &w in h.pins(e) {
                    if w != v && cluster_of[w.index()] == UNMATCHED && mergeable(v, w) {
                        if conn[w.index()] == 0.0 {
                            touched.push(w.raw());
                        }
                        conn[w.index()] += weight;
                    }
                }
            }
            // Pick w maximizing conn(v, w) including the area preference.
            let mut best: Option<(f64, u32)> = None;
            for &wr in touched.iter() {
                let w = ModuleId::from(wr);
                let score = conn[w.index()] / (h.area(v) + h.area(w)) as f64;
                match best {
                    Some((b, _)) if b >= score => {}
                    _ => best = Some((score, wr)),
                }
            }
            if let Some((_, wr)) = best {
                cluster_of[wr as usize] = cluster;
                n_match += 2;
            }
            // Reset only the touched entries (Fig. 3: "reinitialization can
            // be done efficiently by resetting entries indexed by S").
            for &wr in touched.iter() {
                conn[wr as usize] = 0.0;
            }
            touched.clear();
        }
        j += 1;
    }
    // Steps 8-10: every remaining unmatched module becomes a singleton.
    for &raw in &perm[..] {
        if cluster_of[raw as usize] == UNMATCHED {
            cluster_of[raw as usize] = k;
            k += 1;
        }
    }
    #[cfg(feature = "obs")]
    mlpart_obs::counter(
        "match_pass",
        &[
            ("modules", n.into()),
            ("clusters", u64::from(k).into()),
            ("matched", n_match.into()),
            ("ratio", cfg.ratio.into()),
        ],
    );
    Clustering::from_dense(cluster_of, k as usize)
}

/// Chaco-style random maximal matching: each unmatched module (in random
/// order) pairs with a uniformly random unmatched neighbor. A coarsening
/// baseline for the ablation benches.
pub fn random_matching<R: Rng + ?Sized>(h: &Hypergraph, rng: &mut R) -> Clustering {
    let n = h.num_modules();
    const UNMATCHED: u32 = u32::MAX;
    let mut cluster_of = vec![UNMATCHED; n];
    let mut k: u32 = 0;
    let mut candidates: Vec<u32> = Vec::new();
    for &raw in &random_permutation(n, rng) {
        let v = ModuleId::from(raw);
        if cluster_of[v.index()] != UNMATCHED {
            continue;
        }
        let cluster = k;
        k += 1;
        cluster_of[v.index()] = cluster;
        candidates.clear();
        for &e in h.nets(v) {
            if h.net_size(e) > MATCH_MAX_NET_SIZE {
                continue;
            }
            for &w in h.pins(e) {
                if w != v && cluster_of[w.index()] == UNMATCHED {
                    candidates.push(w.raw());
                }
            }
        }
        if !candidates.is_empty() {
            let pick = candidates[rng.gen_range(0..candidates.len())];
            cluster_of[pick as usize] = cluster;
        }
    }
    Clustering::from_dense(cluster_of, k as usize)
}

/// Metis-style heavy-edge matching on the hypergraph's clique expansion:
/// like [`match_clusters`] with `R = 1` but scoring by `Σ 1/(|e|−1)` only
/// (no area preference). A coarsening baseline for the ablation benches.
pub fn heavy_edge_matching<R: Rng + ?Sized>(h: &Hypergraph, rng: &mut R) -> Clustering {
    let n = h.num_modules();
    const UNMATCHED: u32 = u32::MAX;
    let mut cluster_of = vec![UNMATCHED; n];
    let mut k: u32 = 0;
    let mut conn = vec![0.0f64; n];
    let mut touched: Vec<u32> = Vec::new();
    for &raw in &random_permutation(n, rng) {
        let v = ModuleId::from(raw);
        if cluster_of[v.index()] != UNMATCHED {
            continue;
        }
        let cluster = k;
        k += 1;
        cluster_of[v.index()] = cluster;
        for &e in h.nets(v) {
            let size = h.net_size(e);
            if size > MATCH_MAX_NET_SIZE {
                continue;
            }
            let weight = h.net_weight(e) as f64 / (size as f64 - 1.0);
            for &w in h.pins(e) {
                if w != v && cluster_of[w.index()] == UNMATCHED {
                    if conn[w.index()] == 0.0 {
                        touched.push(w.raw());
                    }
                    conn[w.index()] += weight;
                }
            }
        }
        let mut best: Option<(f64, u32)> = None;
        for &wr in touched.iter() {
            let score = conn[wr as usize];
            match best {
                Some((b, _)) if b >= score => {}
                _ => best = Some((score, wr)),
            }
        }
        if let Some((_, wr)) = best {
            cluster_of[wr as usize] = cluster;
        }
        for &wr in touched.iter() {
            conn[wr as usize] = 0.0;
        }
        touched.clear();
    }
    Clustering::from_dense(cluster_of, k as usize)
}

/// The pairwise connectivity function of §III-A, exposed for tests and
/// diagnostics. Computes `conn(v, w)` directly from the definition.
pub fn conn(h: &Hypergraph, v: ModuleId, w: ModuleId, max_net_size: usize) -> f64 {
    let mut sum = 0.0;
    for &e in h.nets(v) {
        if h.net_size(e) > max_net_size {
            continue;
        }
        if h.pins(e).contains(&w) {
            sum += h.net_weight(e) as f64 / (h.net_size(e) as f64 - 1.0);
        }
    }
    sum / (h.area(v) + h.area(w)) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlpart_hypergraph::rng::seeded_rng;
    use mlpart_hypergraph::HypergraphBuilder;

    fn pairs_h() -> Hypergraph {
        // Modules 0-5; tight pairs (0,1), (2,3), (4,5); weak ring between pairs.
        let mut b = HypergraphBuilder::with_unit_areas(6);
        b.add_net([0, 1]).unwrap();
        b.add_net([0, 1]).unwrap(); // doubled: very strong
        b.add_net([2, 3]).unwrap();
        b.add_net([2, 3]).unwrap();
        b.add_net([4, 5]).unwrap();
        b.add_net([4, 5]).unwrap();
        b.add_net([1, 2, 3, 4, 5, 0]).unwrap(); // weak big net
        b.build().unwrap()
    }

    #[test]
    fn maximal_matching_pairs_strong_neighbors() {
        let h = pairs_h();
        for seed in 0..10 {
            let mut rng = seeded_rng(seed);
            let c = match_clusters(&h, &MatchConfig::default(), &mut rng);
            assert_eq!(c.num_clusters(), 3, "seed {seed}");
            assert_eq!(c.cluster_of_index(0), c.cluster_of_index(1));
            assert_eq!(c.cluster_of_index(2), c.cluster_of_index(3));
            assert_eq!(c.cluster_of_index(4), c.cluster_of_index(5));
        }
    }

    #[test]
    fn clusters_have_at_most_two_modules() {
        let h = pairs_h();
        let mut rng = seeded_rng(1);
        let c = match_clusters(&h, &MatchConfig::default(), &mut rng);
        assert!(c.cluster_sizes().iter().all(|&s| s <= 2));
    }

    #[test]
    fn ratio_limits_matched_fraction() {
        // A long chain: with R = 0.5, at most half the modules end in pairs
        // (allowing the one extra pair that crosses the threshold).
        let n = 100;
        let mut b = HypergraphBuilder::with_unit_areas(n);
        for i in 0..n - 1 {
            b.add_net([i, i + 1]).unwrap();
        }
        let h = b.build().unwrap();
        let mut rng = seeded_rng(5);
        let c = match_clusters(&h, &MatchConfig::with_ratio(0.5), &mut rng);
        let paired_modules: usize = c.cluster_sizes().iter().filter(|&&s| s == 2).copied().sum();
        assert!(paired_modules >= n / 2 - 2, "paired={paired_modules}");
        assert!(paired_modules <= n / 2 + 2, "paired={paired_modules}");
        // Reduction factor is ~n/(n - paired/2), well short of 2x.
        assert!(c.num_clusters() > (n * 6) / 10, "k={}", c.num_clusters());
    }

    #[test]
    fn ratio_one_gives_near_half_reduction_on_clique() {
        let n = 64;
        let mut b = HypergraphBuilder::with_unit_areas(n);
        for i in 0..n {
            for j in (i + 1)..n {
                b.add_net([i, j]).unwrap();
            }
        }
        let h = b.build().unwrap();
        let mut rng = seeded_rng(2);
        let c = match_clusters(&h, &MatchConfig::default(), &mut rng);
        assert_eq!(c.num_clusters(), n / 2);
    }

    #[test]
    fn isolated_modules_become_singletons() {
        let mut b = HypergraphBuilder::with_unit_areas(4);
        b.add_net([0, 1]).unwrap();
        let h = b.build().unwrap();
        let mut rng = seeded_rng(0);
        let c = match_clusters(&h, &MatchConfig::default(), &mut rng);
        // 2 and 3 have no neighbors; {0,1} pairs.
        assert_eq!(c.num_clusters(), 3);
        let sizes = c.cluster_sizes();
        assert_eq!(sizes.iter().filter(|&&s| s == 2).count(), 1);
        assert_eq!(sizes.iter().filter(|&&s| s == 1).count(), 2);
    }

    #[test]
    fn large_nets_are_invisible() {
        // Only an 11-pin net connects everything: no pair is visible.
        let mut b = HypergraphBuilder::with_unit_areas(11);
        b.add_net(0..11).unwrap();
        let h = b.build().unwrap();
        let mut rng = seeded_rng(0);
        let c = match_clusters(&h, &MatchConfig::default(), &mut rng);
        assert_eq!(c.num_clusters(), 11, "no matches through an 11-pin net");
    }

    #[test]
    fn conn_prefers_small_nets() {
        // v=0 shares a 2-pin net with 1 and a 3-pin net with 2.
        let mut b = HypergraphBuilder::with_unit_areas(4);
        b.add_net([0, 1]).unwrap();
        b.add_net([0, 2, 3]).unwrap();
        let h = b.build().unwrap();
        let v = ModuleId::new(0);
        let c1 = conn(&h, v, ModuleId::new(1), MATCH_MAX_NET_SIZE);
        let c2 = conn(&h, v, ModuleId::new(2), MATCH_MAX_NET_SIZE);
        assert!(c1 > c2);
        assert!((c1 - 0.5).abs() < 1e-12); // 1/(2-1) / (1+1)
        assert!((c2 - 0.25).abs() < 1e-12); // 1/(3-1) / (1+1)
    }

    #[test]
    fn conn_prefers_small_areas() {
        // v=0 equally connected to 1 (area 1) and 2 (area 10).
        let mut b = HypergraphBuilder::new(vec![1, 1, 10]);
        b.add_net([0, 1]).unwrap();
        b.add_net([0, 2]).unwrap();
        let h = b.build().unwrap();
        let v = ModuleId::new(0);
        assert!(conn(&h, v, ModuleId::new(1), 10) > conn(&h, v, ModuleId::new(2), 10));
        // And the matcher obeys: module 0 never pairs with the big module 2
        // while the light module 1 is available.
        for seed in 0..10 {
            let mut rng = seeded_rng(seed);
            let c = match_clusters(&h, &MatchConfig::default(), &mut rng);
            if c.cluster_of_index(0) == c.cluster_of_index(2) {
                // Only possible if 2 initiated the match before 0 was asked;
                // then 1 must be alone with nothing left to grab.
                assert_ne!(c.cluster_of_index(0), c.cluster_of_index(1));
            }
        }
    }

    #[test]
    fn random_matching_is_a_matching() {
        let h = pairs_h();
        for seed in 0..5 {
            let mut rng = seeded_rng(seed);
            let c = random_matching(&h, &mut rng);
            assert!(c.validate(&h));
            assert!(c.cluster_sizes().iter().all(|&s| s <= 2));
        }
    }

    #[test]
    fn heavy_edge_matching_pairs_strong_neighbors() {
        let h = pairs_h();
        let mut rng = seeded_rng(4);
        let c = heavy_edge_matching(&h, &mut rng);
        assert_eq!(c.cluster_of_index(0), c.cluster_of_index(1));
        assert_eq!(c.cluster_of_index(2), c.cluster_of_index(3));
        assert_eq!(c.cluster_of_index(4), c.cluster_of_index(5));
    }

    #[test]
    #[should_panic(expected = "matching ratio")]
    fn rejects_zero_ratio() {
        let h = pairs_h();
        let mut rng = seeded_rng(0);
        let _ = match_clusters(&h, &MatchConfig::with_ratio(0.0), &mut rng);
    }

    #[test]
    fn empty_netlist() {
        let h = HypergraphBuilder::with_unit_areas(0).build().unwrap();
        let mut rng = seeded_rng(0);
        let c = match_clusters(&h, &MatchConfig::default(), &mut rng);
        assert_eq!(c.num_clusters(), 0);
    }

    #[test]
    fn reused_scratch_is_bit_identical_across_shrinking_inputs() {
        // Mimic the coarsening loop: the same scratch serves a sequence of
        // progressively smaller netlists, and every result must equal the
        // fresh-scratch path on an identical RNG stream.
        let mut scratch = MatchScratch::new();
        let mut rng_reuse = seeded_rng(33);
        let mut rng_fresh = seeded_rng(33);
        for half in [40usize, 17, 6] {
            let mut b = HypergraphBuilder::with_unit_areas(2 * half);
            for base in [0, half] {
                for i in 0..half {
                    b.add_net([base + i, base + (i + 1) % half]).unwrap();
                }
            }
            let h = b.build().unwrap();
            let cfg = MatchConfig::with_ratio(0.7);
            let with_reuse = match_clusters_frozen_in(&h, &cfg, None, &mut rng_reuse, &mut scratch);
            let fresh = match_clusters_frozen(&h, &cfg, None, &mut rng_fresh);
            assert_eq!(with_reuse.as_map(), fresh.as_map(), "half={half}");
        }
    }
}

#[cfg(test)]
mod frozen_tests {
    use super::*;
    use mlpart_hypergraph::rng::seeded_rng;
    use mlpart_hypergraph::HypergraphBuilder;

    #[test]
    fn frozen_modules_stay_singleton() {
        let mut b = HypergraphBuilder::with_unit_areas(4);
        b.add_net([0, 1]).unwrap();
        b.add_net([2, 3]).unwrap();
        let h = b.build().unwrap();
        let frozen = [true, false, false, true];
        for seed in 0..10 {
            let mut rng = seeded_rng(seed);
            let c = match_clusters_frozen(&h, &MatchConfig::default(), Some(&frozen), &mut rng);
            assert!(c.validate(&h));
            let sizes = c.cluster_sizes();
            // 0 and 3 alone; 1 and 2 may or may not pair (they share no net).
            assert_eq!(sizes[c.cluster_of_index(0) as usize], 1);
            assert_eq!(sizes[c.cluster_of_index(3) as usize], 1);
        }
    }

    #[test]
    fn all_frozen_gives_identity_sized_clustering() {
        let mut b = HypergraphBuilder::with_unit_areas(3);
        b.add_net([0, 1, 2]).unwrap();
        let h = b.build().unwrap();
        let mut rng = seeded_rng(0);
        let c = match_clusters_frozen(&h, &MatchConfig::default(), Some(&[true; 3]), &mut rng);
        assert_eq!(c.num_clusters(), 3);
    }

    #[test]
    #[should_panic(expected = "frozen mask has wrong length")]
    fn rejects_wrong_mask_length() {
        let mut b = HypergraphBuilder::with_unit_areas(3);
        b.add_net([0, 1]).unwrap();
        let h = b.build().unwrap();
        let mut rng = seeded_rng(0);
        let _ = match_clusters_frozen(&h, &MatchConfig::default(), Some(&[true]), &mut rng);
    }
}

#[cfg(test)]
mod parts_tests {
    use super::*;
    use mlpart_hypergraph::rng::seeded_rng;
    use mlpart_hypergraph::HypergraphBuilder;

    #[test]
    fn cross_part_fixed_pairs_never_merge() {
        // 0 and 1 share a strong net but are pinned to different parts.
        let mut b = HypergraphBuilder::with_unit_areas(4);
        b.add_net([0, 1]).unwrap();
        b.add_net([0, 1]).unwrap();
        b.add_net([2, 3]).unwrap();
        let h = b.build().unwrap();
        let parts = [Some(0), Some(1), None, None];
        for seed in 0..10 {
            let mut rng = seeded_rng(seed);
            let c = match_clusters_parts(&h, &MatchConfig::default(), Some(&parts), &mut rng);
            assert!(c.validate(&h));
            assert_ne!(c.cluster_of_index(0), c.cluster_of_index(1), "seed {seed}");
            // The free pair is unaffected by the constraint.
            assert_eq!(c.cluster_of_index(2), c.cluster_of_index(3), "seed {seed}");
        }
    }

    #[test]
    fn same_part_fixed_pairs_may_merge() {
        let mut b = HypergraphBuilder::with_unit_areas(2);
        b.add_net([0, 1]).unwrap();
        let h = b.build().unwrap();
        let parts = [Some(1), Some(1)];
        for seed in 0..10 {
            let mut rng = seeded_rng(seed);
            let c = match_clusters_parts(&h, &MatchConfig::default(), Some(&parts), &mut rng);
            assert_eq!(c.cluster_of_index(0), c.cluster_of_index(1), "seed {seed}");
        }
    }

    #[test]
    fn fixed_free_pairs_never_merge() {
        let mut b = HypergraphBuilder::with_unit_areas(2);
        b.add_net([0, 1]).unwrap();
        let h = b.build().unwrap();
        let parts = [Some(0), None];
        for seed in 0..10 {
            let mut rng = seeded_rng(seed);
            let c = match_clusters_parts(&h, &MatchConfig::default(), Some(&parts), &mut rng);
            assert_eq!(c.num_clusters(), 2, "seed {seed}");
        }
    }

    #[test]
    fn no_parts_is_byte_identical_to_plain_match() {
        let mut b = HypergraphBuilder::with_unit_areas(20);
        for i in 0..19 {
            b.add_net([i, i + 1]).unwrap();
        }
        let h = b.build().unwrap();
        let cfg = MatchConfig::with_ratio(0.7);
        for seed in 0..5 {
            let mut rng_a = seeded_rng(seed);
            let mut rng_b = seeded_rng(seed);
            let plain = match_clusters(&h, &cfg, &mut rng_a);
            let parts = match_clusters_parts(&h, &cfg, None, &mut rng_b);
            assert_eq!(plain.as_map(), parts.as_map(), "seed {seed}");
        }
    }

    #[test]
    fn all_free_seed_is_byte_identical_to_plain_match() {
        let mut b = HypergraphBuilder::with_unit_areas(12);
        for i in 0..11 {
            b.add_net([i, i + 1]).unwrap();
        }
        let h = b.build().unwrap();
        let cfg = MatchConfig::default();
        let seed_vec = vec![None; 12];
        let mut rng_a = seeded_rng(9);
        let mut rng_b = seeded_rng(9);
        let plain = match_clusters(&h, &cfg, &mut rng_a);
        let seeded = match_clusters_parts(&h, &cfg, Some(&seed_vec), &mut rng_b);
        assert_eq!(plain.as_map(), seeded.as_map());
    }

    #[test]
    #[should_panic(expected = "part seed has wrong length")]
    fn rejects_wrong_seed_length() {
        let mut b = HypergraphBuilder::with_unit_areas(3);
        b.add_net([0, 1]).unwrap();
        let h = b.build().unwrap();
        let mut rng = seeded_rng(0);
        let _ = match_clusters_parts(&h, &MatchConfig::default(), Some(&[None]), &mut rng);
    }
}
