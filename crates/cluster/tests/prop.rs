//! Property-based tests for coarsening: matchings are valid clusterings
//! with cluster sizes ≤ 2, `Induce` preserves areas and drops exactly the
//! internal nets, and `Project` preserves the cut.

use mlpart_cluster::{induce, match_clusters, project, rebalance_bipart, Clustering, MatchConfig};
use mlpart_hypergraph::rng::seeded_rng;
use mlpart_hypergraph::{metrics, BipartBalance, Hypergraph, HypergraphBuilder, Partition};
use proptest::prelude::*;

fn arb_netlist() -> impl Strategy<Value = (Vec<u64>, Vec<Vec<usize>>)> {
    (2usize..40).prop_flat_map(|n| {
        let areas = proptest::collection::vec(1u64..8, n);
        let nets = proptest::collection::vec(proptest::collection::vec(0usize..n, 2..7), 0..60);
        (areas, nets)
    })
}

fn build(areas: Vec<u64>, nets: &[Vec<usize>]) -> Hypergraph {
    let mut b = HypergraphBuilder::new(areas);
    for net in nets {
        b.add_net(net.iter().copied()).expect("in range");
    }
    b.build().expect("valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn matchings_are_valid_pairings(
        (areas, nets) in arb_netlist(),
        ratio in 0.1f64..=1.0,
        seed in 0u64..500,
    ) {
        let h = build(areas, &nets);
        let mut rng = seeded_rng(seed);
        let c = match_clusters(&h, &MatchConfig::with_ratio(ratio), &mut rng);
        prop_assert!(c.validate(&h));
        prop_assert!(c.cluster_sizes().iter().all(|&s| (1..=2).contains(&s)));
        // Matched fraction never exceeds the ratio by more than one pair.
        let paired: usize = c.cluster_sizes().iter().filter(|&&s| s == 2).count() * 2;
        prop_assert!(
            paired as f64 <= ratio * h.num_modules() as f64 + 2.0,
            "paired {} of {} exceeds R {}",
            paired, h.num_modules(), ratio
        );
    }

    #[test]
    fn induce_preserves_area_and_drops_internal_nets(
        (areas, nets) in arb_netlist(),
        seed in 0u64..500,
    ) {
        let h = build(areas, &nets);
        let mut rng = seeded_rng(seed);
        let c = match_clusters(&h, &MatchConfig::default(), &mut rng);
        let coarse = induce(&h, &c).unwrap();
        prop_assert_eq!(coarse.total_area(), h.total_area());
        prop_assert_eq!(coarse.num_modules(), c.num_clusters());
        // The number of coarse nets equals the number of fine nets whose
        // pins span >= 2 clusters.
        let spanning = h
            .net_ids()
            .filter(|&e| {
                let first = c.cluster_of(h.pins(e)[0]);
                h.pins(e)[1..].iter().any(|&v| c.cluster_of(v) != first)
            })
            .count();
        prop_assert_eq!(coarse.num_nets(), spanning);
    }

    #[test]
    fn projection_preserves_cut(
        (areas, nets) in arb_netlist(),
        seed in 0u64..500,
        k in 2u32..5,
    ) {
        let h = build(areas, &nets);
        let mut rng = seeded_rng(seed);
        let c = match_clusters(&h, &MatchConfig::with_ratio(0.8), &mut rng);
        let coarse = induce(&h, &c).unwrap();
        let coarse_p = Partition::random(&coarse, k, &mut rng);
        let fine_p = project(&h, &c, &coarse_p).unwrap();
        prop_assert!(fine_p.validate(&h));
        prop_assert_eq!(metrics::cut(&coarse, &coarse_p), metrics::cut(&h, &fine_p));
        prop_assert_eq!(
            metrics::sum_of_spans_minus_one(&coarse, &coarse_p),
            metrics::sum_of_spans_minus_one(&h, &fine_p)
        );
        // Part areas transfer exactly.
        for part in 0..k {
            prop_assert_eq!(coarse_p.part_area(part), fine_p.part_area(part));
        }
    }

    #[test]
    fn identity_clustering_roundtrip((areas, nets) in arb_netlist()) {
        let h = build(areas, &nets);
        let c = Clustering::identity(h.num_modules());
        let coarse = induce(&h, &c).unwrap();
        prop_assert_eq!(&coarse, &h);
        let mut rng = seeded_rng(0);
        let p = Partition::random(&coarse, 2, &mut rng);
        let fine_p = project(&h, &c, &p).unwrap();
        prop_assert_eq!(fine_p.assignment(), p.assignment());
    }

    #[test]
    fn rebalance_reaches_feasibility_when_possible(
        (areas, nets) in arb_netlist(),
        seed in 0u64..200,
    ) {
        let h = build(areas, &nets);
        let balance = BipartBalance::new(&h, 0.1);
        // Worst case: everything on one side.
        let mut p = Partition::from_assignment(&h, 2, vec![0; h.num_modules()])
            .expect("valid");
        let mut rng = seeded_rng(seed);
        rebalance_bipart(&h, &mut p, &balance, &mut rng);
        // With slack >= max module area, a greedy sequence of single moves
        // always reaches feasibility.
        prop_assert!(
            balance.is_feasible(p.part_area(0)),
            "areas {:?} bounds [{}, {}]",
            p.part_areas(), balance.lower(), balance.upper()
        );
        prop_assert!(p.validate(&h));
    }

    #[test]
    fn repeated_matching_strictly_coarsens_connected_graphs(
        n in 4usize..30,
        seed in 0u64..100,
    ) {
        // A cycle: matching must reduce the module count every time until
        // the 2-module floor.
        let mut b = HypergraphBuilder::with_unit_areas(n);
        for i in 0..n {
            b.add_net([i, (i + 1) % n]).expect("in range");
        }
        let mut h = b.build().expect("valid");
        let mut rng = seeded_rng(seed);
        for _ in 0..10 {
            if h.num_modules() <= 2 {
                break;
            }
            let c = match_clusters(&h, &MatchConfig::default(), &mut rng);
            prop_assert!(c.num_clusters() < h.num_modules());
            h = induce(&h, &c).unwrap();
        }
        prop_assert!(h.num_modules() <= 2 || h.num_nets() == 0 || h.num_modules() < n);
    }
}
