//! Typed errors for the multilevel pipeline drivers.
//!
//! Every `try_*` driver returns [`PipelineError`] instead of panicking, so
//! harnesses feeding parsed benchmarks can report bad inputs as values. The
//! legacy panicking entry points remain as thin wrappers that funnel through
//! [`expect_valid`] — the single deliberate panic site of this crate, kept on
//! the analyzer's ratchet.

use std::error::Error as StdError;
use std::fmt;

use mlpart_cluster::CoarsenError;
use mlpart_hypergraph::{BuildHypergraphError, ConstraintsError};

/// Why a pipeline driver rejected its inputs (or an internal stage failed).
///
/// Display strings deliberately contain the historical panic phrases (e.g.
/// "bipartition requires k = 2") so `should_panic` expectations written
/// against the legacy wrappers keep matching through [`expect_valid`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PipelineError {
    /// The fixed-module constraint set does not fit the hypergraph.
    Constraints(ConstraintsError),
    /// Coarsening, coalescing, or projection failed (see [`CoarsenError`]).
    Coarsen(CoarsenError),
    /// A derived sub-netlist (e.g. a recursive-bisection region extract)
    /// failed hypergraph validation.
    Netlist(BuildHypergraphError),
    /// A multi-start driver was asked for zero runs.
    NoStarts,
    /// Two part counts that must agree do not; `context` names the rule.
    KMismatch {
        /// The invariant text, e.g. `"bipartition requires k = 2"`.
        context: &'static str,
        /// The part count the rule demands.
        expected: u32,
        /// The part count actually supplied.
        got: u32,
    },
    /// A part-0 area target exceeds the total module area.
    TargetExceedsTotal {
        /// Requested area for part 0.
        target0: u64,
        /// Total area of all modules.
        total: u64,
    },
    /// A fixed module index is `>= num_modules`.
    FixedModuleOutOfRange {
        /// Offending module index.
        module: usize,
        /// Modules in the netlist.
        num_modules: usize,
    },
    /// A fixed part id is `>= k`.
    FixedPartOutOfRange {
        /// Offending part id.
        part: u32,
        /// The part count.
        k: u32,
    },
    /// Recursive bisection depth outside `1..=16`.
    BadDepth {
        /// The rejected depth.
        depth: u32,
    },
    /// An internally produced region assignment used part ids `>= k`.
    InvalidRegionIds {
        /// The part count the assignment was checked against.
        k: u32,
    },
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Constraints(e) => write!(f, "invalid constraints: {e}"),
            PipelineError::Coarsen(e) => write!(f, "coarsening failed: {e}"),
            PipelineError::Netlist(e) => write!(f, "derived netlist is invalid: {e}"),
            PipelineError::NoStarts => {
                write!(f, "multi-start search needs at least one start (runs > 0)")
            }
            PipelineError::KMismatch {
                context,
                expected,
                got,
            } => write!(f, "{context} (expected {expected}, got {got})"),
            PipelineError::TargetExceedsTotal { target0, total } => write!(
                f,
                "part-0 area target {target0} exceeds the total module area {total}"
            ),
            PipelineError::FixedModuleOutOfRange {
                module,
                num_modules,
            } => write!(
                f,
                "fixed module {module} out of range (netlist has {num_modules} modules)"
            ),
            PipelineError::FixedPartOutOfRange { part, k } => {
                write!(f, "fixed part id {part} out of range (k = {k})")
            }
            PipelineError::BadDepth { depth } => {
                write!(f, "depth must be at least 1 and at most 16, got {depth}")
            }
            PipelineError::InvalidRegionIds { k } => {
                write!(f, "recursive split must keep region ids below k = {k}")
            }
        }
    }
}

impl StdError for PipelineError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            PipelineError::Constraints(e) => Some(e),
            PipelineError::Coarsen(e) => Some(e),
            PipelineError::Netlist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConstraintsError> for PipelineError {
    fn from(e: ConstraintsError) -> Self {
        PipelineError::Constraints(e)
    }
}

impl From<CoarsenError> for PipelineError {
    fn from(e: CoarsenError) -> Self {
        PipelineError::Coarsen(e)
    }
}

impl From<BuildHypergraphError> for PipelineError {
    fn from(e: BuildHypergraphError) -> Self {
        PipelineError::Netlist(e)
    }
}

/// Unwraps a pipeline result for the legacy panicking entry points.
///
/// This is the one sanctioned panic site of `mlpart-core`: every historical
/// `assert!`/`expect` precondition now produces a [`PipelineError`] (or a
/// [`CoarsenError`]) in the `try_*` drivers, and the legacy names funnel
/// through here so the panic message carries the typed error's Display text.
#[track_caller]
pub(crate) fn expect_valid<T, E: fmt::Display>(r: Result<T, E>) -> T {
    match r {
        Ok(v) => v,
        Err(e) => panic!("invalid pipeline input: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_keeps_legacy_phrases() {
        let e = PipelineError::KMismatch {
            context: "bipartition requires k = 2",
            expected: 2,
            got: 3,
        };
        assert!(e.to_string().contains("bipartition requires k = 2"));
        assert!(PipelineError::NoStarts
            .to_string()
            .contains("at least one start"));
        assert!(PipelineError::BadDepth { depth: 0 }
            .to_string()
            .contains("depth must be at least 1"));
    }

    #[test]
    fn sources_chain_to_inner_errors() {
        let e = PipelineError::from(ConstraintsError::ZeroParts);
        assert!(StdError::source(&e).is_some());
        assert!(e.to_string().contains("k must be at least 1"));
        let e = PipelineError::from(CoarsenError::ClusteringMismatch {
            map_len: 3,
            num_modules: 4,
        });
        assert!(StdError::source(&e).is_some());
        let e = PipelineError::from(BuildHypergraphError::AreaOverflow);
        assert!(StdError::source(&e).is_some());
        assert_eq!(PipelineError::NoStarts, PipelineError::NoStarts);
    }

    #[test]
    #[should_panic(expected = "invalid pipeline input")]
    fn expect_valid_panics_with_display() {
        let r: Result<(), PipelineError> = Err(PipelineError::NoStarts);
        expect_valid(r);
    }

    #[test]
    fn expect_valid_passes_ok_through() {
        assert_eq!(expect_valid(Ok::<_, PipelineError>(7)), 7);
    }
}
