//! Construction of the multilevel netlist hierarchy (the coarsening phase of
//! Fig. 2, steps 1-5).

use mlpart_cluster::{
    heavy_edge_matching, induce, induce_coalesced, match_clusters_frozen_in,
    match_clusters_parts_in, random_matching, Clustering, CoarsenError, MatchConfig, MatchScratch,
};
use mlpart_hypergraph::{Hypergraph, ModuleId, PartId};
use rand::Rng;

/// Which matching algorithm drives coarsening — the paper's `Match` by
/// default, with the Chaco/Metis baselines available for ablation studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Coarsener {
    /// The paper's connectivity-based `Match` (Fig. 3) with matching ratio.
    #[default]
    PaperMatch,
    /// Chaco-style random maximal matching (ignores the matching ratio).
    RandomMatching,
    /// Metis-style heavy-edge matching without the area preference
    /// (ignores the matching ratio).
    HeavyEdge,
}

impl std::fmt::Display for Coarsener {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Coarsener::PaperMatch => write!(f, "match"),
            Coarsener::RandomMatching => write!(f, "random"),
            Coarsener::HeavyEdge => write!(f, "heavy-edge"),
        }
    }
}

/// The coarsened netlist hierarchy `H₁ … Hₘ` above an input netlist `H₀`,
/// with the clustering connecting each adjacent pair of levels.
///
/// `H₀` itself is not stored (the caller owns it); `level(i)` returns
/// `Hᵢ₊₁`. The hierarchy also threads pre-assigned (fixed) modules upward:
/// a coarse module is fixed iff its (singleton) cluster wraps a fixed fine
/// module.
///
/// # Examples
///
/// ```
/// use mlpart_core::{Hierarchy, MlConfig};
/// use mlpart_hypergraph::{HypergraphBuilder, rng::seeded_rng};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = HypergraphBuilder::with_unit_areas(64);
/// for i in 0..63 {
///     b.add_net([i, i + 1])?;
/// }
/// let h = b.build()?;
/// let cfg = MlConfig { coarsen_threshold: 10, ..MlConfig::default() };
/// let mut rng = seeded_rng(0);
/// let hier = Hierarchy::coarsen(&h, &cfg, &[], &mut rng);
/// assert!(hier.coarsest(&h).num_modules() <= 10);
/// assert!(hier.num_levels() >= 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Hierarchy {
    /// `clusterings[i]` maps modules of `Hᵢ` to modules of `Hᵢ₊₁`.
    clusterings: Vec<Clustering>,
    /// `coarse[i]` is `Hᵢ₊₁`.
    coarse: Vec<Hypergraph>,
    /// Fixed (pre-assigned) modules at each level, `fixed[0]` being on `H₀`.
    fixed: Vec<Vec<(ModuleId, PartId)>>,
}

impl Hierarchy {
    /// Runs the coarsening loop of Fig. 2: while `|Vᵢ| > T`, cluster with
    /// `Match(Hᵢ, R)` and induce `Hᵢ₊₁`.
    ///
    /// Coarsening also stops when a `Match` pass shrinks the netlist by
    /// clearly less than the matching ratio promises (the matching has
    /// stalled on hub-dominated coarse structure — the standard multilevel
    /// guard, cf. hMETIS), when it makes no progress at all (e.g. a netlist
    /// with no small nets), or when
    /// [`max_levels`](crate::MlConfig::max_levels) is reached, so the loop
    /// always terminates and never piles up near-identical levels.
    ///
    /// `fixed` lists pre-assigned modules of `H₀`; they are kept as singleton
    /// clusters on every level (§III-C pad pre-assignment).
    ///
    /// # Panics
    ///
    /// Panics if a coarse netlist fails validation (see
    /// [`Hierarchy::try_coarsen`] for the non-panicking form).
    pub fn coarsen<R: Rng + ?Sized>(
        h0: &Hypergraph,
        cfg: &crate::MlConfig,
        fixed: &[(ModuleId, PartId)],
        rng: &mut R,
    ) -> Self {
        crate::error::expect_valid(Self::try_coarsen(h0, cfg, fixed, rng))
    }

    /// [`Hierarchy::coarsen`] returning a typed error instead of panicking.
    ///
    /// # Errors
    ///
    /// [`CoarsenError`] when inducing a coarse level fails (e.g. coalesced
    /// net weights overflow `u32`).
    pub fn try_coarsen<R: Rng + ?Sized>(
        h0: &Hypergraph,
        cfg: &crate::MlConfig,
        fixed: &[(ModuleId, PartId)],
        rng: &mut R,
    ) -> Result<Self, CoarsenError> {
        let match_cfg = MatchConfig::with_ratio(cfg.matching_ratio);
        // One scratch serves every `Match` pass: levels shrink, so the
        // level-0 buffers are never reallocated further down the hierarchy.
        let mut scratch = MatchScratch::new();
        let mut clusterings = Vec::new();
        let mut coarse: Vec<Hypergraph> = Vec::new();
        let mut fixed_levels: Vec<Vec<(ModuleId, PartId)>> = Vec::new();
        // The level under construction: its netlist (`None` ⇒ `h0`) and its
        // fixed list. Both are pushed onto the level vectors only when the
        // *next* level materializes (and once more after the loop), which
        // keeps `current` borrowable without re-indexing the vectors.
        let mut owned_current: Option<Hypergraph> = None;
        let mut current_fixed: Vec<(ModuleId, PartId)> = fixed.to_vec();

        #[cfg(feature = "obs")]
        let _obs_span = mlpart_obs::span(
            "coarsen",
            &[
                ("modules", h0.num_modules().into()),
                ("threshold", cfg.coarsen_threshold.into()),
                ("ratio", cfg.matching_ratio.into()),
            ],
        );
        loop {
            let current: &Hypergraph = owned_current.as_ref().unwrap_or(h0);
            if current.num_modules() <= cfg.coarsen_threshold || clusterings.len() >= cfg.max_levels
            {
                break;
            }
            let level_fixed = &current_fixed;
            let frozen_mask: Option<Vec<bool>> = if level_fixed.is_empty() {
                None
            } else {
                let mut mask = vec![false; current.num_modules()];
                for &(v, _) in level_fixed {
                    mask[v.index()] = true;
                }
                Some(mask)
            };
            let clustering = match cfg.coarsener {
                Coarsener::PaperMatch => match_clusters_frozen_in(
                    current,
                    &match_cfg,
                    frozen_mask.as_deref(),
                    rng,
                    &mut scratch,
                ),
                Coarsener::RandomMatching => {
                    assert!(
                        frozen_mask.is_none(),
                        "fixed modules require the PaperMatch coarsener"
                    );
                    random_matching(current, rng)
                }
                Coarsener::HeavyEdge => {
                    assert!(
                        frozen_mask.is_none(),
                        "fixed modules require the PaperMatch coarsener"
                    );
                    heavy_edge_matching(current, rng)
                }
            };
            // A matching with ratio R shrinks by the factor 1 − R/2 when it
            // succeeds; stop once the realized shrink is closer to "no
            // progress" than to that promise (baseline coarseners behave
            // like R = 1). This truncates the stall tail on netlists whose
            // coarse levels become star-like.
            let effective_ratio = match cfg.coarsener {
                Coarsener::PaperMatch => cfg.matching_ratio,
                Coarsener::RandomMatching | Coarsener::HeavyEdge => 1.0,
            };
            let guard = 1.0 - effective_ratio / 4.0;
            let stalled = clustering.num_clusters() as f64 > guard * current.num_modules() as f64;
            #[cfg(feature = "obs")]
            mlpart_obs::counter(
                "coarsen_level",
                &[
                    ("level", clusterings.len().into()),
                    ("modules", current.num_modules().into()),
                    ("clusters", clustering.num_clusters().into()),
                    ("stalled", u64::from(stalled).into()),
                ],
            );
            if stalled {
                break; // matching stalled: treat this level as coarsest
            }
            let next = if cfg.coalesce_nets {
                induce_coalesced(current, &clustering)?
            } else {
                induce(current, &clustering)?
            };
            let next_fixed: Vec<(ModuleId, PartId)> = level_fixed
                .iter()
                .map(|&(v, p)| (ModuleId::new(clustering.cluster_of(v) as usize), p))
                .collect();
            clusterings.push(clustering);
            if let Some(prev) = owned_current.take() {
                coarse.push(prev);
            }
            fixed_levels.push(std::mem::replace(&mut current_fixed, next_fixed));
            owned_current = Some(next);
        }
        if let Some(last) = owned_current {
            coarse.push(last);
        }
        fixed_levels.push(current_fixed);
        Ok(Hierarchy {
            clusterings,
            coarse,
            fixed: fixed_levels,
        })
    }

    /// [`Hierarchy::coarsen`] for the constraint-aware pipelines: instead of
    /// freezing every fixed module as a singleton, `Match` may merge two
    /// fixed modules pre-assigned to the **same** part (free–free pairs
    /// merge as always; fixed–free and cross-part pairs never do), so
    /// heavily pinned netlists still coarsen. Coarse fixed lists are
    /// deduplicated per cluster — a cluster of same-part pins appears once —
    /// and stay sorted by coarse module id, keeping every downstream loop
    /// over them deterministic. With no fixed modules this is byte-identical
    /// to [`Hierarchy::coarsen`].
    ///
    /// # Panics
    ///
    /// Panics if fixed modules are combined with a baseline coarsener or a
    /// coarse netlist fails validation (see
    /// [`Hierarchy::try_coarsen_parts`] for the non-panicking form).
    pub fn coarsen_parts<R: Rng + ?Sized>(
        h0: &Hypergraph,
        cfg: &crate::MlConfig,
        fixed: &[(ModuleId, PartId)],
        rng: &mut R,
    ) -> Self {
        crate::error::expect_valid(Self::try_coarsen_parts(h0, cfg, fixed, rng))
    }

    /// [`Hierarchy::coarsen_parts`] returning a typed error instead of
    /// panicking on induction failures. The baseline-coarsener restriction
    /// stays a panic: it is a static configuration bug, not an input
    /// property.
    ///
    /// # Errors
    ///
    /// [`CoarsenError`] when inducing a coarse level fails.
    pub fn try_coarsen_parts<R: Rng + ?Sized>(
        h0: &Hypergraph,
        cfg: &crate::MlConfig,
        fixed: &[(ModuleId, PartId)],
        rng: &mut R,
    ) -> Result<Self, CoarsenError> {
        if fixed.is_empty() {
            return Hierarchy::try_coarsen(h0, cfg, fixed, rng);
        }
        assert!(
            cfg.coarsener == Coarsener::PaperMatch,
            "fixed modules require the PaperMatch coarsener"
        );
        let match_cfg = MatchConfig::with_ratio(cfg.matching_ratio);
        let mut scratch = MatchScratch::new();
        let mut clusterings = Vec::new();
        let mut coarse: Vec<Hypergraph> = Vec::new();
        let mut fixed_levels: Vec<Vec<(ModuleId, PartId)>> = Vec::new();
        let mut owned_current: Option<Hypergraph> = None;
        let mut current_fixed: Vec<(ModuleId, PartId)> = fixed.to_vec();

        #[cfg(feature = "obs")]
        let _obs_span = mlpart_obs::span(
            "coarsen_parts",
            &[
                ("modules", h0.num_modules().into()),
                ("fixed", fixed.len().into()),
                ("threshold", cfg.coarsen_threshold.into()),
                ("ratio", cfg.matching_ratio.into()),
            ],
        );
        loop {
            let current: &Hypergraph = owned_current.as_ref().unwrap_or(h0);
            if current.num_modules() <= cfg.coarsen_threshold || clusterings.len() >= cfg.max_levels
            {
                break;
            }
            let level_fixed = &current_fixed;
            let mut seed: Vec<Option<PartId>> = vec![None; current.num_modules()];
            for &(v, p) in level_fixed {
                seed[v.index()] = Some(p);
            }
            let clustering = match_clusters_parts_in(
                current,
                &match_cfg,
                Some(seed.as_slice()),
                rng,
                &mut scratch,
            );
            let guard = 1.0 - cfg.matching_ratio / 4.0;
            let stalled = clustering.num_clusters() as f64 > guard * current.num_modules() as f64;
            #[cfg(feature = "obs")]
            mlpart_obs::counter(
                "coarsen_level",
                &[
                    ("level", clusterings.len().into()),
                    ("modules", current.num_modules().into()),
                    ("clusters", clustering.num_clusters().into()),
                    ("stalled", u64::from(stalled).into()),
                ],
            );
            if stalled {
                break; // matching stalled: treat this level as coarsest
            }
            let next = if cfg.coalesce_nets {
                induce_coalesced(current, &clustering)?
            } else {
                induce(current, &clustering)?
            };
            let mut next_fixed: Vec<(ModuleId, PartId)> = level_fixed
                .iter()
                .map(|&(v, p)| (ModuleId::new(clustering.cluster_of(v) as usize), p))
                .collect();
            // Same-part pins may now share a cluster; keep one entry each.
            next_fixed.sort_unstable_by_key(|&(v, _)| v.index());
            next_fixed.dedup_by(|a, b| {
                debug_assert!(a.0 != b.0 || a.1 == b.1, "cross-part pins merged");
                a.0 == b.0
            });
            clusterings.push(clustering);
            if let Some(prev) = owned_current.take() {
                coarse.push(prev);
            }
            fixed_levels.push(std::mem::replace(&mut current_fixed, next_fixed));
            owned_current = Some(next);
        }
        if let Some(last) = owned_current {
            coarse.push(last);
        }
        fixed_levels.push(current_fixed);
        Ok(Hierarchy {
            clusterings,
            coarse,
            fixed: fixed_levels,
        })
    }

    /// Number of coarsening levels `m` (zero if `H₀` was already below the
    /// threshold).
    pub fn num_levels(&self) -> usize {
        self.coarse.len()
    }

    /// The netlist at level `i` (`0 ⇒ H₀` must be supplied by the caller;
    /// this accessor returns `Hᵢ` for `i ≥ 1`).
    ///
    /// # Panics
    ///
    /// Panics if `i == 0` or `i > num_levels()`.
    pub fn level(&self, i: usize) -> &Hypergraph {
        assert!(i >= 1 && i <= self.coarse.len(), "level out of range");
        &self.coarse[i - 1]
    }

    /// The coarsest netlist `Hₘ` (or `h0` itself when no coarsening happened).
    pub fn coarsest<'a>(&'a self, h0: &'a Hypergraph) -> &'a Hypergraph {
        self.coarse.last().unwrap_or(h0)
    }

    /// The clustering mapping `Hᵢ` onto `Hᵢ₊₁`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_levels()`.
    pub fn clustering(&self, i: usize) -> &Clustering {
        &self.clusterings[i]
    }

    /// Fixed (pre-assigned) modules at level `i` (`0..=num_levels()`).
    pub fn fixed_at(&self, i: usize) -> &[(ModuleId, PartId)] {
        &self.fixed[i]
    }

    /// Module counts per level, `H₀` first — the "level sizes" diagnostics
    /// reported by the examples and benches.
    pub fn level_sizes(&self, h0: &Hypergraph) -> Vec<usize> {
        let mut sizes = Vec::with_capacity(self.coarse.len() + 1);
        sizes.push(h0.num_modules());
        sizes.extend(self.coarse.iter().map(Hypergraph::num_modules));
        sizes
    }
}

/// Dense `module → fixed?` mask over `n` modules, shared by the
/// constraint-aware pipelines.
pub(crate) fn fixed_mask(fixed: &[(ModuleId, PartId)], n: usize) -> Vec<bool> {
    let mut mask = vec![false; n];
    for &(v, _) in fixed {
        mask[v.index()] = true;
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MlConfig;
    use mlpart_hypergraph::rng::seeded_rng;
    use mlpart_hypergraph::HypergraphBuilder;

    fn grid(w: usize, hgt: usize) -> Hypergraph {
        let mut b = HypergraphBuilder::with_unit_areas(w * hgt);
        for y in 0..hgt {
            for x in 0..w {
                let i = y * w + x;
                if x + 1 < w {
                    b.add_net([i, i + 1]).unwrap();
                }
                if y + 1 < hgt {
                    b.add_net([i, i + w]).unwrap();
                }
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn coarsens_below_threshold() {
        let h = grid(16, 16);
        let cfg = MlConfig {
            coarsen_threshold: 35,
            ..MlConfig::default()
        };
        let mut rng = seeded_rng(1);
        let hier = Hierarchy::coarsen(&h, &cfg, &[], &mut rng);
        assert!(hier.coarsest(&h).num_modules() <= 35);
        assert!(hier.num_levels() >= 3);
        // Every level preserves total area.
        for i in 1..=hier.num_levels() {
            assert_eq!(hier.level(i).total_area(), h.total_area());
        }
    }

    #[test]
    fn smaller_ratio_means_more_levels() {
        let h = grid(24, 24);
        let mut rng = seeded_rng(2);
        let levels_at = |ratio: f64, rng: &mut mlpart_hypergraph::rng::MlRng| {
            let cfg = MlConfig {
                coarsen_threshold: 35,
                matching_ratio: ratio,
                ..MlConfig::default()
            };
            Hierarchy::coarsen(&h, &cfg, &[], rng).num_levels()
        };
        let l_full = levels_at(1.0, &mut rng);
        let l_half = levels_at(0.5, &mut rng);
        let l_third = levels_at(0.33, &mut rng);
        assert!(l_half > l_full, "R=0.5 ({l_half}) vs R=1 ({l_full})");
        assert!(l_third >= l_half, "R=0.33 ({l_third}) vs R=0.5 ({l_half})");
    }

    #[test]
    fn level_sizes_monotone_decreasing() {
        let h = grid(20, 20);
        let cfg = MlConfig {
            coarsen_threshold: 20,
            ..MlConfig::default()
        };
        let mut rng = seeded_rng(3);
        let hier = Hierarchy::coarsen(&h, &cfg, &[], &mut rng);
        let sizes = hier.level_sizes(&h);
        assert!(sizes.windows(2).all(|w| w[1] < w[0]), "{sizes:?}");
    }

    #[test]
    fn no_coarsening_when_under_threshold() {
        let h = grid(3, 3);
        let cfg = MlConfig {
            coarsen_threshold: 35,
            ..MlConfig::default()
        };
        let mut rng = seeded_rng(0);
        let hier = Hierarchy::coarsen(&h, &cfg, &[], &mut rng);
        assert_eq!(hier.num_levels(), 0);
        assert_eq!(hier.coarsest(&h).num_modules(), 9);
    }

    #[test]
    fn terminates_on_netless_netlist() {
        // No nets at all: Match produces all singletons, loop must stop.
        let h = HypergraphBuilder::with_unit_areas(100).build().unwrap();
        let cfg = MlConfig {
            coarsen_threshold: 10,
            ..MlConfig::default()
        };
        let mut rng = seeded_rng(0);
        let hier = Hierarchy::coarsen(&h, &cfg, &[], &mut rng);
        assert_eq!(hier.num_levels(), 0);
    }

    #[test]
    fn max_levels_caps_depth() {
        let h = grid(16, 16);
        let cfg = MlConfig {
            coarsen_threshold: 2,
            max_levels: 3,
            ..MlConfig::default()
        };
        let mut rng = seeded_rng(0);
        let hier = Hierarchy::coarsen(&h, &cfg, &[], &mut rng);
        assert_eq!(hier.num_levels(), 3);
    }

    #[test]
    fn coarsen_parts_merges_same_part_pins_and_dedups() {
        let h = grid(8, 8);
        let cfg = MlConfig {
            coarsen_threshold: 8,
            ..MlConfig::default()
        };
        // Pin a whole edge of the grid to part 0 and the opposite corner to
        // part 1: adjacent same-part pins are mergeable, so coarsening can
        // go deep even though an eighth of the netlist is pinned.
        let mut fixed: Vec<(ModuleId, u32)> = (0..8).map(|x| (ModuleId::new(x), 0u32)).collect();
        fixed.push((ModuleId::new(63), 1));
        let mut rng = seeded_rng(5);
        let hier = Hierarchy::coarsen_parts(&h, &cfg, &fixed, &mut rng);
        assert!(hier.coarsest(&h).num_modules() <= 8);
        for i in 0..=hier.num_levels() {
            let level_fixed = hier.fixed_at(i);
            // Sorted, deduplicated, and part ids preserved.
            assert!(level_fixed
                .windows(2)
                .all(|w| w[0].0.index() < w[1].0.index()));
            assert!(level_fixed.iter().any(|&(_, p)| p == 0));
            assert!(level_fixed.iter().any(|&(_, p)| p == 1));
        }
        // The edge pins eventually share clusters: strictly fewer coarse
        // fixed entries than fine ones by the coarsest level.
        assert!(hier.fixed_at(hier.num_levels()).len() < fixed.len());
    }

    #[test]
    fn coarsen_parts_without_pins_matches_plain_coarsen() {
        let h = grid(12, 12);
        let cfg = MlConfig {
            coarsen_threshold: 20,
            ..MlConfig::default()
        };
        let mut rng1 = seeded_rng(9);
        let mut rng2 = seeded_rng(9);
        let a = Hierarchy::coarsen(&h, &cfg, &[], &mut rng1);
        let b = Hierarchy::coarsen_parts(&h, &cfg, &[], &mut rng2);
        assert_eq!(a.num_levels(), b.num_levels());
        for i in 0..a.num_levels() {
            assert_eq!(a.clustering(i).as_map(), b.clustering(i).as_map());
        }
    }

    #[test]
    fn fixed_modules_stay_singletons_and_propagate() {
        let h = grid(8, 8);
        let cfg = MlConfig {
            coarsen_threshold: 8,
            ..MlConfig::default()
        };
        let fixed = vec![(ModuleId::new(0), 1u32), (ModuleId::new(63), 2u32)];
        let mut rng = seeded_rng(4);
        let hier = Hierarchy::coarsen(&h, &cfg, &fixed, &mut rng);
        for i in 0..hier.num_levels() {
            let c = hier.clustering(i);
            for &(v, part) in hier.fixed_at(i) {
                // The fixed module's cluster contains only itself.
                let cluster = c.cluster_of(v);
                let members = c.as_map().iter().filter(|&&x| x == cluster).count();
                assert_eq!(members, 1, "level {i}");
                let _ = part;
            }
            assert_eq!(hier.fixed_at(i + 1).len(), fixed.len());
        }
        // Parts carried through unchanged.
        let top = hier.fixed_at(hier.num_levels());
        assert_eq!(top[0].1, 1);
        assert_eq!(top[1].1, 2);
    }
}
