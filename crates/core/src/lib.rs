//! The ML multilevel circuit partitioning algorithm — the primary
//! contribution of *Multilevel Circuit Partitioning* (Alpert, Huang, Kahng —
//! DAC 1997).
//!
//! ML recursively coarsens a netlist hypergraph with connectivity-based
//! matching (controlled by the matching ratio `R`), partitions the coarsest
//! netlist, then uncoarsens while refining with FM or CLIP. See
//! [`ml_bipartition`] (Fig. 2 of the paper) and [`ml_kway`] /
//! [`ml_quadrisection`] (§III-C).
//!
//! # Examples
//!
//! The `ML_C` variant with slow coarsening (the paper's best configuration,
//! Table VII):
//!
//! ```
//! use mlpart_core::{ml_bipartition, MlConfig};
//! use mlpart_hypergraph::{HypergraphBuilder, rng::seeded_rng};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = HypergraphBuilder::with_unit_areas(128);
//! for base in [0usize, 64] {
//!     for i in 0..64 {
//!         b.add_net([base + i, base + (i + 1) % 64])?;
//!         b.add_net([base + i, base + (i + 3) % 64])?;
//!     }
//! }
//! b.add_net([63, 64])?;
//! let h = b.build()?;
//!
//! let cfg = MlConfig::clip().with_ratio(0.5);
//! let mut rng = seeded_rng(0);
//! let (partition, result) = ml_bipartition(&h, &cfg, &mut rng);
//! assert!(result.levels >= 2);
//! assert_eq!(partition.k(), 2);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod error;
pub mod hierarchy;
pub mod ml;
pub mod preflight;
pub mod quadrisection;
pub mod recursive;
pub mod two_phase;

pub use error::PipelineError;
pub use hierarchy::{Coarsener, Hierarchy};
pub use ml::{
    ml_best_of_in, ml_bipartition, ml_bipartition_budgeted_in, ml_bipartition_constrained,
    ml_bipartition_constrained_budgeted_in, ml_bipartition_constrained_in, ml_bipartition_in,
    try_ml_best_of_in, try_ml_bipartition_budgeted_in, try_ml_bipartition_constrained_budgeted_in,
    LevelStats, MlConfig, MlResult,
};
pub use preflight::{preflight, preflight_constrained, PreflightError};
pub use quadrisection::{
    ml_kway, ml_kway_best_of_in, ml_kway_budgeted_in, ml_kway_constrained,
    ml_kway_constrained_budgeted_in, ml_kway_constrained_in, ml_kway_in, ml_quadrisection,
    try_ml_kway_best_of_in, try_ml_kway_budgeted_in, try_ml_kway_constrained_budgeted_in,
    MlKwayConfig, MlKwayResult,
};
pub use recursive::{
    recursive_ml_bisection, recursive_ml_bisection_budgeted_in, recursive_ml_bisection_in,
    recursive_ml_partition, recursive_ml_partition_budgeted_in,
    try_recursive_ml_bisection_budgeted_in, try_recursive_ml_partition_budgeted_in,
    RecursiveResult,
};
pub use two_phase::{
    try_two_phase_fm_budgeted_in, try_two_phase_fm_constrained_budgeted_in, two_phase_fm,
    two_phase_fm_budgeted_in, two_phase_fm_constrained, two_phase_fm_constrained_budgeted_in,
    two_phase_fm_constrained_in, two_phase_fm_in, TwoPhaseResult,
};

// Re-export the budget vocabulary so pipeline callers need not depend on
// `mlpart-fm` directly.
pub use mlpart_fm::{Budget, BudgetLimit, BudgetMeter, Truncation};

// Re-export the constraint vocabulary so constraint-aware callers (the CLI,
// benches, embedders) need not depend on `mlpart-hypergraph` directly.
pub use mlpart_hypergraph::{
    adapted_epsilon, Constraints, ConstraintsError, PartBounds, DEFAULT_EPSILON,
};
