//! The ML multilevel bipartitioning algorithm (paper Fig. 2).
//!
//! ```text
//! 1. i = 0
//! 2. while |Vᵢ| > T:
//! 3.     Pᵏ   = Match(Hᵢ, R)
//! 4.     Hᵢ₊₁ = Induce(Hᵢ, Pᵏ)
//! 5.     i = i + 1
//! 6. m = i;  Pₘ = FMPartition(Hₘ, NULL)
//! 7. for i = m−1 downto 0:
//! 8.     Pᵢ = Project(Hᵢ₊₁, Pᵢ₊₁)
//! 9.     Pᵢ = FMPartition(Hᵢ, Pᵢ)
//! 10. return P₀
//! ```
//!
//! Projection may leave the finer level infeasible because `A(v*)` shrinks
//! during uncoarsening; §III-B prescribes rebalancing by random moves from
//! the larger side, which happens between steps 8 and 9.

use crate::error::{expect_valid, PipelineError};
use crate::hierarchy::{fixed_mask, Hierarchy};
use mlpart_cluster::{project, rebalance_bipart};
use mlpart_fm::{
    fm_partition_budgeted_in, refine_budgeted_in, refine_constrained_budgeted_in, BudgetMeter,
    Engine, FmConfig, PassStats, RefineWorkspace, Truncation,
};
use mlpart_hypergraph::rng::{child_seed, seeded_rng, MlRng};
use mlpart_hypergraph::{
    metrics, BipartBalance, Constraints, Hypergraph, ModuleId, PartBounds, PartId, Partition,
    DEFAULT_EPSILON,
};
use mlpart_kway::rebalance_to_bounds;

/// Per-level instrumentation of a multilevel run, collected during
/// uncoarsening (and for the coarsest-level initial partitioning).
///
/// The `cut_*` fields are the refinement engine's objective over
/// engine-visible nets (nets over `max_net_size` excluded) — for the k-way
/// engine under sum-of-degrees gain they are `Σ (span − 1)`, not the net
/// cut.
#[derive(Debug, Clone, Copy, Eq)]
pub struct LevelStats {
    /// Hierarchy level: `m` is the coarsest, `0` the original netlist.
    pub level: usize,
    /// Modules in this level's netlist.
    pub modules: usize,
    /// Engine objective entering refinement (after projection and any
    /// rebalancing).
    pub cut_before: u64,
    /// Engine objective after refinement.
    pub cut_after: u64,
    /// Moves attempted across this level's passes (before rollback).
    pub attempted_moves: u64,
    /// Moves kept across this level's passes (after rollback).
    pub kept_moves: u64,
    /// Modules moved by §III-B rebalancing to restore feasibility after
    /// projection to this level.
    pub rebalance_moves: usize,
    /// Refinement passes run at this level.
    pub passes: usize,
    /// Wall-clock nanoseconds spent rebuilding gains and filling buckets,
    /// summed over this level's passes. Excluded from equality so
    /// fixed-seed runs compare equal.
    pub fill_time_ns: u64,
}

/// Equality ignores `fill_time_ns` (wall-clock noise), mirroring
/// [`PassStats`].
impl PartialEq for LevelStats {
    fn eq(&self, other: &Self) -> bool {
        self.level == other.level
            && self.modules == other.modules
            && self.cut_before == other.cut_before
            && self.cut_after == other.cut_after
            && self.attempted_moves == other.attempted_moves
            && self.kept_moves == other.kept_moves
            && self.rebalance_moves == other.rebalance_moves
            && self.passes == other.passes
    }
}

impl LevelStats {
    /// Aggregates one level's pass trajectory into a level summary.
    pub(crate) fn from_passes(
        level: usize,
        modules: usize,
        passes: &[PassStats],
        rebalance_moves: usize,
    ) -> LevelStats {
        LevelStats {
            level,
            modules,
            cut_before: passes.first().map_or(0, |s| s.cut_before),
            cut_after: passes.last().map_or(0, |s| s.cut_after),
            attempted_moves: passes.iter().map(|s| s.attempted_moves as u64).sum(),
            kept_moves: passes.iter().map(|s| s.kept_moves as u64).sum(),
            rebalance_moves,
            passes: passes.len(),
            fill_time_ns: passes.iter().map(|s| s.fill_time_ns).sum(),
        }
    }
}

/// Configuration of the ML algorithm.
///
/// The defaults reproduce the paper's main experiments: `T = 35`, `R = 1.0`
/// (vary `R` to regenerate Tables V/VI and Fig. 4), FM refinement with LIFO
/// buckets and `r = 0.1`. Use `fm.engine = Engine::Clip` for the `ML_C`
/// variant.
///
/// # Examples
///
/// ```
/// use mlpart_core::MlConfig;
/// use mlpart_fm::Engine;
///
/// let ml_c = MlConfig::clip().with_ratio(0.5);
/// assert_eq!(ml_c.fm.engine, Engine::Clip);
/// assert_eq!(ml_c.matching_ratio, 0.5);
/// assert_eq!(ml_c.coarsen_threshold, 35);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MlConfig {
    /// Coarsening threshold `T`: coarsen while `|Vᵢ| > T`. The paper uses 35
    /// for bipartitioning and 100 for quadrisection.
    pub coarsen_threshold: usize,
    /// Matching ratio `R ∈ (0, 1]` controlling coarsening speed (§III-A).
    pub matching_ratio: f64,
    /// Refinement engine configuration (engine, buckets, balance, net limit).
    pub fm: FmConfig,
    /// Safety cap on the number of hierarchy levels.
    pub max_levels: usize,
    /// Ablation knob: which matching algorithm coarsens (default: the
    /// paper's `Match`).
    pub coarsener: crate::hierarchy::Coarsener,
    /// Coalesce identical coarse nets into weighted nets during `Induce`
    /// (hMETIS-style). `false` reproduces the paper's Definition 1 exactly
    /// (duplicates kept); `true` gives identical cut values with smaller
    /// coarse netlists.
    pub coalesce_nets: bool,
    /// §V extension: number of independent initial partitions tried on the
    /// coarsest netlist, keeping the best ("it may be worthwhile to spend
    /// more CPU time partitioning at these levels, e.g., by calling FM
    /// multiple times"). `1` reproduces the paper's algorithm.
    pub initial_tries: usize,
    /// Number of parts `k` for the constraint-generic drivers
    /// ([`recursive_ml_partition`](crate::recursive_ml_partition) and the
    /// CLI). The classic entry points ([`ml_bipartition`]) are 2-way by
    /// construction and ignore this field.
    pub k: u32,
    /// Balance tolerance ε for the constraint-generic drivers: each part
    /// stays within `(1 ± ε)·A(V)/k`. The default ε = 0.2 equals `2r` for
    /// the paper's `r = 0.1`, so constraint-aware runs reproduce the legacy
    /// `fm.balance_r` windows. The classic entry points keep reading
    /// `fm.balance_r` and ignore this field.
    pub epsilon: f64,
}

impl Default for MlConfig {
    fn default() -> Self {
        MlConfig {
            coarsen_threshold: 35,
            matching_ratio: 1.0,
            fm: FmConfig::default(),
            max_levels: 256,
            coarsener: crate::hierarchy::Coarsener::PaperMatch,
            coalesce_nets: false,
            initial_tries: 1,
            k: 2,
            epsilon: DEFAULT_EPSILON,
        }
    }
}

impl MlConfig {
    /// The `ML_F` variant: FM refinement (the default).
    pub fn fm() -> Self {
        MlConfig::default()
    }

    /// The `ML_C` variant: CLIP refinement.
    pub fn clip() -> Self {
        MlConfig {
            fm: FmConfig {
                engine: Engine::Clip,
                ..FmConfig::default()
            },
            ..MlConfig::default()
        }
    }

    /// Returns a copy with the given matching ratio `R`.
    pub fn with_ratio(mut self, ratio: f64) -> Self {
        self.matching_ratio = ratio;
        self
    }

    /// Returns a copy with the given coarsening threshold `T`.
    pub fn with_threshold(mut self, t: usize) -> Self {
        self.coarsen_threshold = t;
        self
    }

    /// Returns a copy with the given part count `k` (constraint-generic
    /// drivers only).
    pub fn with_k(mut self, k: u32) -> Self {
        self.k = k;
        self
    }

    /// Returns a copy with the given balance tolerance ε (constraint-generic
    /// drivers only).
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }
}

/// Statistics from one ML run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MlResult {
    /// Final cut of the returned bipartition (all nets counted).
    pub cut: u64,
    /// Number of coarsening levels `m`.
    pub levels: usize,
    /// Module counts `|V₀| … |Vₘ|`.
    pub level_sizes: Vec<usize>,
    /// Total FM passes across all levels.
    pub total_passes: usize,
    /// Modules moved by §III-B rebalancing during uncoarsening.
    pub rebalance_moves: usize,
    /// Per-level instrumentation in execution order: the coarsest level's
    /// initial partitioning (from the winning try) first, then each
    /// uncoarsening level down to the original netlist.
    pub level_stats: Vec<LevelStats>,
    /// `Some` when a budget limit fired and the run returned its best
    /// partition so far instead of running to convergence; `None` for
    /// unlimited (or untruncated) runs.
    pub truncation: Option<Truncation>,
}

/// Runs the ML multilevel bipartitioning algorithm of Fig. 2.
///
/// Returns the refined bipartition `P₀` of `h` and run statistics.
///
/// # Examples
///
/// ```
/// use mlpart_core::{ml_bipartition, MlConfig};
/// use mlpart_hypergraph::{HypergraphBuilder, rng::seeded_rng, metrics};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Two 32-module communities bridged by one net.
/// let mut b = HypergraphBuilder::with_unit_areas(64);
/// for base in [0usize, 32] {
///     for i in 0..31 {
///         b.add_net([base + i, base + i + 1])?;
///         b.add_net([base + i, base + (i + 7) % 32])?;
///     }
/// }
/// b.add_net([31, 32])?;
/// let h = b.build()?;
/// let mut rng = seeded_rng(5);
/// let (p, result) = ml_bipartition(&h, &MlConfig::default(), &mut rng);
/// assert_eq!(result.cut, metrics::cut(&h, &p));
/// assert!(result.cut <= 3);
/// # Ok(())
/// # }
/// ```
pub fn ml_bipartition(h: &Hypergraph, cfg: &MlConfig, rng: &mut MlRng) -> (Partition, MlResult) {
    let mut ws = RefineWorkspace::new();
    ml_bipartition_in(h, cfg, rng, &mut ws)
}

/// [`ml_bipartition`] with caller-owned scratch: every level of the V-cycle
/// (initial tries included) refines through the same [`RefineWorkspace`], so
/// the gain/bucket machinery is allocated once per run instead of once per
/// level. Results are bit-identical to [`ml_bipartition`].
pub fn ml_bipartition_in(
    h: &Hypergraph,
    cfg: &MlConfig,
    rng: &mut MlRng,
    ws: &mut RefineWorkspace,
) -> (Partition, MlResult) {
    ml_bipartition_budgeted_in(h, cfg, rng, ws, &mut BudgetMeter::unlimited())
}

/// [`ml_bipartition_in`] under a cooperative execution budget.
///
/// The meter is consulted at every pass and level boundary; once a limit
/// fires the remaining refinement is skipped, but projection and §III-B
/// rebalancing still run at every level, so the returned partition is always
/// a valid, feasible bipartition of `h` — the best solution reachable within
/// the budget. The truncation (if any) is recorded in
/// [`MlResult::truncation`]. With an unlimited meter this is bit-identical
/// to [`ml_bipartition_in`].
pub fn ml_bipartition_budgeted_in(
    h: &Hypergraph,
    cfg: &MlConfig,
    rng: &mut MlRng,
    ws: &mut RefineWorkspace,
    meter: &mut BudgetMeter,
) -> (Partition, MlResult) {
    expect_valid(try_ml_bipartition_budgeted_in(h, cfg, rng, ws, meter))
}

/// [`ml_bipartition_budgeted_in`] returning a typed error instead of
/// panicking — the non-panicking root of the classic bipartition entry
/// points.
///
/// # Errors
///
/// [`PipelineError::Coarsen`] when building or projecting through the
/// hierarchy fails.
pub fn try_ml_bipartition_budgeted_in(
    h: &Hypergraph,
    cfg: &MlConfig,
    rng: &mut MlRng,
    ws: &mut RefineWorkspace,
    meter: &mut BudgetMeter,
) -> Result<(Partition, MlResult), PipelineError> {
    #[cfg(feature = "obs")]
    let _obs_run = mlpart_obs::span("ml_bipartition", &[("modules", h.num_modules().into())]);
    // --- Coarsening phase (steps 1-5). ---
    let hierarchy = Hierarchy::try_coarsen(h, cfg, &[], rng)?;
    let m = hierarchy.num_levels();

    // --- Initial partitioning of Hₘ (step 6). ---
    let coarsest = hierarchy.coarsest(h);
    meter.set_level_context(Some(m as u32));
    let mut total_passes = 0usize;
    let tries = cfg.initial_tries.max(1);
    let mut best: Option<(u64, Partition, Vec<PassStats>)> = None;
    let mut _winner = 0usize;
    #[cfg(feature = "obs")]
    let obs_initial = mlpart_obs::span(
        "initial",
        &[
            ("tries", tries.into()),
            ("level", m.into()),
            ("modules", coarsest.num_modules().into()),
        ],
    );
    for _t in 0..tries {
        #[cfg(feature = "obs")]
        let obs_try = mlpart_obs::span("try", &[("try", _t.into())]);
        let (p, r) = fm_partition_budgeted_in(coarsest, None, &cfg.fm, rng, ws, meter);
        total_passes += r.passes;
        #[cfg(feature = "obs")]
        {
            drop(obs_try);
            mlpart_obs::counter(
                "initial_try",
                &[
                    ("try", _t.into()),
                    ("cut", r.cut.into()),
                    ("passes", r.passes.into()),
                ],
            );
        }
        // Determinism tie-break: strict `<` keeps the *first* try that
        // reaches the minimum cut, so for a fixed seed the winning
        // partition — and every downstream projection/refinement — does not
        // depend on how many later tries happen to tie it.
        if best.as_ref().is_none_or(|(c, _, _)| r.cut < *c) {
            best = Some((r.cut, p, r.pass_stats));
            _winner = _t;
        }
    }
    let Some((_best_cut, mut p, initial_stats)) = best else {
        return Err(PipelineError::NoStarts);
    };
    #[cfg(feature = "obs")]
    {
        mlpart_obs::counter(
            "initial_winner",
            &[("try", _winner.into()), ("cut", _best_cut.into())],
        );
        drop(obs_initial);
    }
    let mut level_stats = Vec::with_capacity(m + 1);
    level_stats.push(LevelStats::from_passes(
        m,
        coarsest.num_modules(),
        &initial_stats,
        0,
    ));

    // --- Uncoarsening phase (steps 7-9). ---
    let mut rebalance_moves = 0usize;
    for i in (0..m).rev() {
        let fine: &Hypergraph = if i == 0 { h } else { hierarchy.level(i) };
        #[cfg(feature = "obs")]
        let _obs_level = mlpart_obs::span(
            "level",
            &[("level", i.into()), ("modules", fine.num_modules().into())],
        );
        let mut fine_p = project(fine, hierarchy.clustering(i), &p)?;
        // Definition 2 audit: the projected solution must pull back through
        // the cluster map and preserve the cut bit-exactly, checked before
        // §III-B rebalancing perturbs `fine_p`.
        #[cfg(feature = "audit")]
        if mlpart_audit::enabled() {
            mlpart_audit::enforce(
                mlpart_audit::audit_projection(
                    fine,
                    &fine_p,
                    hierarchy.level(i + 1),
                    &p,
                    hierarchy.clustering(i).as_map(),
                )
                .map_err(|e| e.with_level(i)),
            );
        }
        let balance = BipartBalance::new(fine, cfg.fm.balance_r);
        let mut level_rebalance = 0usize;
        if !balance.is_partition_feasible(&fine_p) {
            level_rebalance = rebalance_bipart(fine, &mut fine_p, &balance, rng);
            rebalance_moves += level_rebalance;
        }
        #[cfg(feature = "obs")]
        mlpart_obs::counter(
            "rebalance",
            &[("level", i.into()), ("moves", level_rebalance.into())],
        );
        // Cooperative budget checkpoint. When the level budget (or any
        // sticky earlier limit) is exhausted, refinement below runs zero
        // passes and the projected, rebalanced partition flows through
        // unchanged — projection never stops, so the final answer is always
        // a valid partition of `h`.
        meter.set_level_context(Some(i as u32));
        let _ = meter.level_checkpoint(i as u32);
        let r = refine_budgeted_in(fine, &mut fine_p, &cfg.fm, rng, ws, meter);
        meter.note_level();
        total_passes += r.passes;
        level_stats.push(LevelStats::from_passes(
            i,
            fine.num_modules(),
            &r.pass_stats,
            level_rebalance,
        ));
        p = fine_p;
    }

    #[cfg(feature = "audit")]
    if mlpart_audit::enabled() {
        mlpart_audit::enforce(mlpart_audit::audit_partition(h, &p));
    }
    let cut = metrics::cut(h, &p);
    let result = MlResult {
        cut,
        levels: m,
        level_sizes: hierarchy.level_sizes(h),
        total_passes,
        rebalance_moves,
        level_stats,
        truncation: meter.truncation(),
    };
    Ok((p, result))
}

/// Constraint-aware ML bipartition: [`ml_bipartition`] honoring a
/// [`Constraints`] set — fixed (pre-assigned) modules and an ε balance
/// tolerance.
///
/// Fixed modules are threaded through every phase: coarsening merges only
/// same-part pins (via [`Hierarchy::coarsen_parts`]), the initial partition
/// seeds them on their pinned parts, and refinement/rebalancing never move
/// them. With no fixed modules and ε = 0.2 the constraint machinery is
/// algebraically inert, but the RNG schedule differs from
/// [`ml_bipartition`] (the initial partition is generated by the pipeline,
/// not inside FM), so cuts are comparable rather than byte-identical.
///
/// # Panics
///
/// Panics if `constraints.k() != 2` or a fixed module is out of range (run
/// [`preflight_constrained`](crate::preflight_constrained) first for typed
/// errors).
pub fn ml_bipartition_constrained(
    h: &Hypergraph,
    cfg: &MlConfig,
    constraints: &Constraints,
    rng: &mut MlRng,
) -> (Partition, MlResult) {
    let mut ws = RefineWorkspace::new();
    ml_bipartition_constrained_in(h, cfg, constraints, rng, &mut ws)
}

/// [`ml_bipartition_constrained`] with caller-owned scratch.
pub fn ml_bipartition_constrained_in(
    h: &Hypergraph,
    cfg: &MlConfig,
    constraints: &Constraints,
    rng: &mut MlRng,
    ws: &mut RefineWorkspace,
) -> (Partition, MlResult) {
    expect_valid(try_ml_bipartition_constrained_in(
        h,
        cfg,
        constraints,
        rng,
        ws,
    ))
}

/// [`ml_bipartition_constrained_in`] returning a typed error instead of
/// panicking.
///
/// # Errors
///
/// [`PipelineError::KMismatch`] when `constraints.k() != 2`,
/// [`PipelineError::Constraints`] when a fixed module is out of range, plus
/// anything [`try_ml_bipartition_constrained_budgeted_in`] reports.
pub fn try_ml_bipartition_constrained_in(
    h: &Hypergraph,
    cfg: &MlConfig,
    constraints: &Constraints,
    rng: &mut MlRng,
    ws: &mut RefineWorkspace,
) -> Result<(Partition, MlResult), PipelineError> {
    if constraints.k() != 2 {
        return Err(PipelineError::KMismatch {
            context: "bipartition requires k = 2",
            expected: 2,
            got: constraints.k(),
        });
    }
    constraints.check_modules(h.num_modules())?;
    try_ml_bipartition_constrained_budgeted_in(
        h,
        cfg,
        constraints.fixed(),
        h.total_area() / 2,
        constraints.epsilon(),
        rng,
        ws,
        &mut BudgetMeter::unlimited(),
    )
}

/// The fully general constrained bisection step: pins, an explicit area
/// target for side 0 (side 1 gets the rest), a tolerance ε, and a budget.
///
/// This is the primitive [`recursive_ml_partition`](crate::recursive_ml_partition)
/// builds general k from — asymmetric targets let one bisection carve
/// `⌈k/2⌉ : ⌊k/2⌋` area shares. Per-level bounds recompute around the
/// targets with each level's max module area (the §III-B widening), so
/// coarse levels are never over-constrained.
///
/// # Panics
///
/// Panics if `target0 > A(V)`, ε is invalid, or a fixed entry is out of
/// range.
#[allow(clippy::too_many_arguments)]
pub fn ml_bipartition_constrained_budgeted_in(
    h: &Hypergraph,
    cfg: &MlConfig,
    fixed: &[(ModuleId, PartId)],
    target0: u64,
    epsilon: f64,
    rng: &mut MlRng,
    ws: &mut RefineWorkspace,
    meter: &mut BudgetMeter,
) -> (Partition, MlResult) {
    expect_valid(try_ml_bipartition_constrained_budgeted_in(
        h, cfg, fixed, target0, epsilon, rng, ws, meter,
    ))
}

/// [`ml_bipartition_constrained_budgeted_in`] returning a typed error
/// instead of panicking.
///
/// # Errors
///
/// [`PipelineError::TargetExceedsTotal`] when `target0 > A(V)`,
/// [`PipelineError::FixedModuleOutOfRange`] /
/// [`PipelineError::FixedPartOutOfRange`] for bad pins, and
/// [`PipelineError::Coarsen`] when the hierarchy cannot be built or
/// projected.
#[allow(clippy::too_many_arguments)]
pub fn try_ml_bipartition_constrained_budgeted_in(
    h: &Hypergraph,
    cfg: &MlConfig,
    fixed: &[(ModuleId, PartId)],
    target0: u64,
    epsilon: f64,
    rng: &mut MlRng,
    ws: &mut RefineWorkspace,
    meter: &mut BudgetMeter,
) -> Result<(Partition, MlResult), PipelineError> {
    let total = h.total_area();
    if target0 > total {
        return Err(PipelineError::TargetExceedsTotal { target0, total });
    }
    for &(v, p) in fixed {
        if v.index() >= h.num_modules() {
            return Err(PipelineError::FixedModuleOutOfRange {
                module: v.index(),
                num_modules: h.num_modules(),
            });
        }
        if p >= 2 {
            return Err(PipelineError::FixedPartOutOfRange { part: p, k: 2 });
        }
    }
    #[cfg(feature = "obs")]
    let _obs_run = mlpart_obs::span(
        "ml_bipartition_constrained",
        &[
            ("modules", h.num_modules().into()),
            ("fixed", fixed.len().into()),
        ],
    );
    let bounds_for = |fine: &Hypergraph| {
        PartBounds::around_targets(&[target0, total - target0], total, fine.max_area(), epsilon)
    };

    // --- Coarsening (same-part pins may merge). ---
    let hierarchy = Hierarchy::try_coarsen_parts(h, cfg, fixed, rng)?;
    let m = hierarchy.num_levels();

    // --- Initial partitioning of Hₘ, seeded from the coarse pins. ---
    let coarsest = hierarchy.coarsest(h);
    let coarse_fixed = hierarchy.fixed_at(m);
    let coarse_mask = fixed_mask(coarse_fixed, coarsest.num_modules());
    let coarse_bounds = bounds_for(coarsest);
    meter.set_level_context(Some(m as u32));
    let mut total_passes = 0usize;
    let tries = cfg.initial_tries.max(1);
    let mut best: Option<(u64, Partition, Vec<PassStats>)> = None;
    for _t in 0..tries {
        let mut p = Partition::random_fixed(coarsest, 2, coarse_fixed, rng);
        if !coarse_bounds.is_partition_feasible(&p) {
            let _ = rebalance_to_bounds(coarsest, &mut p, coarse_fixed, &coarse_bounds, rng);
        }
        let r = refine_constrained_budgeted_in(
            coarsest,
            &mut p,
            &cfg.fm,
            &coarse_bounds,
            &coarse_mask,
            rng,
            ws,
            meter,
        );
        total_passes += r.passes;
        // Strict `<`: the first try reaching the minimum wins (see
        // `ml_bipartition_budgeted_in`).
        if best.as_ref().is_none_or(|(c, _, _)| r.cut < *c) {
            best = Some((r.cut, p, r.pass_stats));
        }
    }
    let Some((_best_cut, mut p, initial_stats)) = best else {
        return Err(PipelineError::NoStarts);
    };
    let mut level_stats = Vec::with_capacity(m + 1);
    level_stats.push(LevelStats::from_passes(
        m,
        coarsest.num_modules(),
        &initial_stats,
        0,
    ));

    // --- Uncoarsening with pin-respecting rebalance and refinement. ---
    let mut rebalance_moves = 0usize;
    for i in (0..m).rev() {
        let fine: &Hypergraph = if i == 0 { h } else { hierarchy.level(i) };
        #[cfg(feature = "obs")]
        let _obs_level = mlpart_obs::span(
            "level",
            &[("level", i.into()), ("modules", fine.num_modules().into())],
        );
        let mut fine_p = project(fine, hierarchy.clustering(i), &p)?;
        #[cfg(feature = "audit")]
        if mlpart_audit::enabled() {
            mlpart_audit::enforce(
                mlpart_audit::audit_projection(
                    fine,
                    &fine_p,
                    hierarchy.level(i + 1),
                    &p,
                    hierarchy.clustering(i).as_map(),
                )
                .map_err(|e| e.with_level(i)),
            );
        }
        let bounds = bounds_for(fine);
        let level_fixed = hierarchy.fixed_at(i);
        let mut level_rebalance = 0usize;
        if !bounds.is_partition_feasible(&fine_p) {
            level_rebalance = rebalance_to_bounds(fine, &mut fine_p, level_fixed, &bounds, rng);
            rebalance_moves += level_rebalance;
        }
        meter.set_level_context(Some(i as u32));
        let _ = meter.level_checkpoint(i as u32);
        let mask = fixed_mask(level_fixed, fine.num_modules());
        let r = refine_constrained_budgeted_in(
            fine,
            &mut fine_p,
            &cfg.fm,
            &bounds,
            &mask,
            rng,
            ws,
            meter,
        );
        meter.note_level();
        // Pins must survive every level, not just the final answer.
        #[cfg(feature = "audit")]
        if mlpart_audit::enabled() {
            mlpart_audit::enforce(
                mlpart_audit::audit_fixed_assignment(&fine_p, level_fixed)
                    .map_err(|e| e.with_level(i)),
            );
        }
        total_passes += r.passes;
        level_stats.push(LevelStats::from_passes(
            i,
            fine.num_modules(),
            &r.pass_stats,
            level_rebalance,
        ));
        p = fine_p;
    }

    #[cfg(feature = "audit")]
    if mlpart_audit::enabled() {
        mlpart_audit::enforce(mlpart_audit::audit_partition(h, &p));
        mlpart_audit::enforce(mlpart_audit::audit_fixed_assignment(&p, fixed));
    }
    let cut = metrics::cut(h, &p);
    let result = MlResult {
        cut,
        levels: m,
        level_sizes: hierarchy.level_sizes(h),
        total_passes,
        rebalance_moves,
        level_stats,
        truncation: meter.truncation(),
    };
    Ok((p, result))
}

/// Multi-start convenience driver: runs [`ml_bipartition_in`] once per start
/// with the independent seed stream `child_seed(base_seed, i)` and returns
/// the winning start's index, partition, and statistics. The winner is the
/// lowest cut, ties broken by the **lowest start index**, so the result is a
/// pure function of `(h, cfg, runs, base_seed)` — the contract the parallel
/// execution layer (`mlpart-exec`) relies on to fan starts out across
/// threads without changing any answer.
///
/// All starts refine through the caller's workspace, so per-start allocation
/// stays amortized.
///
/// # Panics
///
/// Panics if `runs == 0`.
pub fn ml_best_of_in(
    h: &Hypergraph,
    cfg: &MlConfig,
    runs: usize,
    base_seed: u64,
    ws: &mut RefineWorkspace,
) -> (usize, Partition, MlResult) {
    expect_valid(try_ml_best_of_in(h, cfg, runs, base_seed, ws))
}

/// [`ml_best_of_in`] returning a typed error instead of panicking.
///
/// # Errors
///
/// [`PipelineError::NoStarts`] when `runs == 0`, plus anything a single
/// start ([`try_ml_bipartition_budgeted_in`]) reports.
pub fn try_ml_best_of_in(
    h: &Hypergraph,
    cfg: &MlConfig,
    runs: usize,
    base_seed: u64,
    ws: &mut RefineWorkspace,
) -> Result<(usize, Partition, MlResult), PipelineError> {
    if runs == 0 {
        return Err(PipelineError::NoStarts);
    }
    let mut best: Option<(usize, Partition, MlResult)> = None;
    for i in 0..runs {
        let mut rng = seeded_rng(child_seed(base_seed, i as u64));
        let (p, r) =
            try_ml_bipartition_budgeted_in(h, cfg, &mut rng, ws, &mut BudgetMeter::unlimited())?;
        // Strict `<`: the earliest start that reaches the minimum wins.
        if best.as_ref().is_none_or(|(_, _, b)| r.cut < b.cut) {
            best = Some((i, p, r));
        }
    }
    best.ok_or(PipelineError::NoStarts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlpart_fm::{fm_partition, BucketPolicy};
    use mlpart_hypergraph::rng::seeded_rng;
    use mlpart_hypergraph::HypergraphBuilder;

    /// Two communities of size `half`, internally ring+chords, one bridge.
    fn two_communities(half: usize) -> Hypergraph {
        let mut b = HypergraphBuilder::with_unit_areas(2 * half);
        for base in [0, half] {
            for i in 0..half {
                b.add_net([base + i, base + (i + 1) % half]).unwrap();
                b.add_net([base + i, base + (i + 3) % half]).unwrap();
            }
        }
        b.add_net([half - 1, half]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn finds_community_cut() {
        let h = two_communities(64);
        let best = (0..5)
            .map(|s| {
                let mut rng = seeded_rng(s);
                ml_bipartition(&h, &MlConfig::default(), &mut rng).1.cut
            })
            .min()
            .unwrap();
        assert!(best <= 2, "best={best}");
    }

    #[test]
    fn clip_variant_finds_community_cut() {
        let h = two_communities(64);
        let best = (0..5)
            .map(|s| {
                let mut rng = seeded_rng(50 + s);
                ml_bipartition(&h, &MlConfig::clip(), &mut rng).1.cut
            })
            .min()
            .unwrap();
        assert!(best <= 2, "best={best}");
    }

    #[test]
    fn result_is_feasible_and_consistent() {
        let h = two_communities(100);
        let cfg = MlConfig::default();
        let bal = BipartBalance::new(&h, cfg.fm.balance_r);
        for seed in 0..3 {
            let mut rng = seeded_rng(seed);
            let (p, r) = ml_bipartition(&h, &cfg, &mut rng);
            assert!(p.validate(&h));
            assert!(bal.is_partition_feasible(&p), "{:?}", p.part_areas());
            assert_eq!(r.cut, metrics::cut(&h, &p));
            assert_eq!(r.level_sizes.len(), r.levels + 1);
            assert_eq!(r.level_sizes[0], h.num_modules());
            assert!(*r.level_sizes.last().unwrap() <= cfg.coarsen_threshold);
        }
    }

    #[test]
    fn ratio_below_one_builds_deeper_hierarchies() {
        let h = two_communities(200);
        let mut rng = seeded_rng(9);
        let (_, r_full) = ml_bipartition(&h, &MlConfig::default(), &mut rng);
        let (_, r_half) = ml_bipartition(&h, &MlConfig::default().with_ratio(0.5), &mut rng);
        assert!(r_half.levels > r_full.levels);
    }

    #[test]
    fn small_netlist_skips_coarsening() {
        let h = two_communities(8); // 16 modules < T = 35
        let mut rng = seeded_rng(1);
        let (p, r) = ml_bipartition(&h, &MlConfig::default(), &mut rng);
        assert_eq!(r.levels, 0);
        assert!(p.validate(&h));
    }

    #[test]
    fn multilevel_beats_or_matches_flat_fm_on_average() {
        // The paper's core claim (Table IV): ML produces lower average cuts
        // than flat iterative improvement. Check on a modest community graph.
        let h = two_communities(128);
        let runs = 6;
        let flat_avg: f64 = (0..runs)
            .map(|s| {
                let mut rng = seeded_rng(1000 + s);
                fm_partition(&h, None, &FmConfig::default(), &mut rng).1.cut as f64
            })
            .sum::<f64>()
            / runs as f64;
        let ml_avg: f64 = (0..runs)
            .map(|s| {
                let mut rng = seeded_rng(2000 + s);
                ml_bipartition(&h, &MlConfig::default(), &mut rng).1.cut as f64
            })
            .sum::<f64>()
            / runs as f64;
        assert!(
            ml_avg <= flat_avg,
            "ML avg {ml_avg} should not exceed flat FM avg {flat_avg}"
        );
    }

    #[test]
    fn initial_tries_extension_runs() {
        let h = two_communities(64);
        let cfg = MlConfig {
            initial_tries: 5,
            ..MlConfig::default()
        };
        let mut rng = seeded_rng(3);
        let (p, r) = ml_bipartition(&h, &cfg, &mut rng);
        assert!(p.validate(&h));
        assert!(r.total_passes >= 5, "five initial tries imply ≥5 passes");
    }

    #[test]
    fn deterministic_given_seed() {
        let h = two_communities(64);
        let run = |seed| {
            let mut rng = seeded_rng(seed);
            ml_bipartition(&h, &MlConfig::clip(), &mut rng)
        };
        let (p1, r1) = run(42);
        let (p2, r2) = run(42);
        assert_eq!(p1.assignment(), p2.assignment());
        assert_eq!(r1, r2);
    }

    #[test]
    fn works_with_all_bucket_policies() {
        let h = two_communities(48);
        for policy in [BucketPolicy::Lifo, BucketPolicy::Fifo, BucketPolicy::Random] {
            let cfg = MlConfig {
                fm: FmConfig {
                    policy,
                    ..FmConfig::default()
                },
                ..MlConfig::default()
            };
            let mut rng = seeded_rng(7);
            let (p, _) = ml_bipartition(&h, &cfg, &mut rng);
            assert!(p.validate(&h));
        }
    }

    #[test]
    fn best_of_matches_manual_sequential_loop() {
        let h = two_communities(48);
        let cfg = MlConfig::clip();
        let (runs, base) = (6usize, 77u64);
        let mut ws = RefineWorkspace::new();
        let (win_idx, win_p, win_r) = ml_best_of_in(&h, &cfg, runs, base, &mut ws);
        // Manual loop with fresh workspaces: same streams, same winner.
        let mut best: Option<(usize, Partition, MlResult)> = None;
        for i in 0..runs {
            let mut rng = seeded_rng(child_seed(base, i as u64));
            let (p, r) = ml_bipartition(&h, &cfg, &mut rng);
            if best.as_ref().is_none_or(|(_, _, b)| r.cut < b.cut) {
                best = Some((i, p, r));
            }
        }
        let (idx, p, r) = best.unwrap();
        assert_eq!(win_idx, idx);
        assert_eq!(win_p.assignment(), p.assignment());
        assert_eq!(win_r, r);
    }

    #[test]
    #[should_panic(expected = "at least one start")]
    fn best_of_rejects_zero_runs() {
        let h = two_communities(8);
        let mut ws = RefineWorkspace::new();
        let _ = ml_best_of_in(&h, &MlConfig::default(), 0, 1, &mut ws);
    }

    /// With audits forced on, every projection boundary of a multilevel run
    /// is checked (and a healthy run survives them all).
    #[cfg(feature = "audit")]
    #[test]
    fn audit_hooks_fire_on_healthy_run() {
        mlpart_audit::force_enabled(true);
        let h = two_communities(64); // 128 modules > T = 35, so m >= 1
        let mut rng = seeded_rng(11);
        let (p, r) = ml_bipartition(&h, &MlConfig::default(), &mut rng);
        mlpart_audit::force_enabled(false);
        assert!(r.levels >= 1, "need at least one projection to audit");
        assert!(p.validate(&h));
    }

    #[test]
    fn handles_netless_input() {
        let h = HypergraphBuilder::with_unit_areas(100).build().unwrap();
        let mut rng = seeded_rng(0);
        let (p, r) = ml_bipartition(&h, &MlConfig::default(), &mut rng);
        assert_eq!(r.cut, 0);
        assert!(p.validate(&h));
    }
}

#[cfg(test)]
mod constrained_tests {
    use super::*;
    use mlpart_hypergraph::rng::seeded_rng;
    use mlpart_hypergraph::HypergraphBuilder;

    fn two_communities(half: usize) -> Hypergraph {
        let mut b = HypergraphBuilder::with_unit_areas(2 * half);
        for base in [0, half] {
            for i in 0..half {
                b.add_net([base + i, base + (i + 1) % half]).unwrap();
                b.add_net([base + i, base + (i + 3) % half]).unwrap();
            }
        }
        b.add_net([half - 1, half]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn fixed_modules_never_move() {
        let h = two_communities(64);
        // Pin two modules against the natural community split and one with
        // it; every seed must honor all three.
        let c = Constraints::new(
            2,
            0.2,
            vec![
                (ModuleId::new(0), 1),
                (ModuleId::new(70), 0),
                (ModuleId::new(5), 1),
            ],
        )
        .unwrap();
        for seed in 0..6 {
            let mut rng = seeded_rng(seed);
            let (p, r) = ml_bipartition_constrained(&h, &MlConfig::clip(), &c, &mut rng);
            assert!(p.validate(&h));
            for &(v, part) in c.fixed() {
                assert_eq!(p.part(v), part, "seed {seed}");
            }
            assert_eq!(r.cut, metrics::cut(&h, &p));
        }
    }

    #[test]
    fn unconstrained_run_matches_legacy_quality_and_bounds() {
        let h = two_communities(64);
        let c = Constraints::unconstrained(2);
        let bounds = c.bounds(&h);
        let best = (0..5)
            .map(|s| {
                let mut rng = seeded_rng(s);
                let (p, r) = ml_bipartition_constrained(&h, &MlConfig::default(), &c, &mut rng);
                assert!(bounds.is_partition_feasible(&p), "{:?}", p.part_areas());
                r.cut
            })
            .min()
            .unwrap();
        assert!(best <= 4, "best={best}");
    }

    #[test]
    fn tight_epsilon_is_respected_at_the_finest_level() {
        let h = two_communities(64); // 128 unit modules
        let c = Constraints::new(2, 0.02, vec![]).unwrap();
        // slack = max(⌊0.02·64⌋, 1) = 1 around the 64/64 target.
        let bounds = PartBounds::around_targets(&[64, 64], 128, 1, 0.02);
        for seed in 0..3 {
            let mut rng = seeded_rng(seed);
            let (p, _) = ml_bipartition_constrained(&h, &MlConfig::default(), &c, &mut rng);
            assert!(bounds.is_partition_feasible(&p), "{:?}", p.part_areas());
        }
    }

    #[test]
    fn heavily_pinned_netlist_still_partitions() {
        let h = two_communities(64);
        // Pin a quarter of all modules, half of them "against" the grain.
        let mut fixed = Vec::new();
        for i in 0..16 {
            fixed.push((ModuleId::new(i), 0));
            fixed.push((ModuleId::new(64 + i), u32::from(i % 2 == 0)));
        }
        let c = Constraints::new(2, 0.2, fixed).unwrap();
        let mut rng = seeded_rng(13);
        let (p, r) = ml_bipartition_constrained(&h, &MlConfig::default(), &c, &mut rng);
        assert!(p.validate(&h));
        for &(v, part) in c.fixed() {
            assert_eq!(p.part(v), part);
        }
        assert_eq!(r.cut, metrics::cut(&h, &p));
        assert!(c.bounds(&h).is_partition_feasible(&p));
    }

    #[test]
    fn deterministic_given_seed() {
        let h = two_communities(48);
        let c = Constraints::new(2, 0.1, vec![(ModuleId::new(3), 1)]).unwrap();
        let run = |seed| {
            let mut rng = seeded_rng(seed);
            ml_bipartition_constrained(&h, &MlConfig::clip(), &c, &mut rng)
        };
        let (p1, r1) = run(21);
        let (p2, r2) = run(21);
        assert_eq!(p1.assignment(), p2.assignment());
        assert_eq!(r1, r2);
    }

    #[test]
    fn budgeted_constrained_run_keeps_pins_under_truncation() {
        use mlpart_fm::Budget;
        let h = two_communities(64);
        let c = Constraints::new(2, 0.2, vec![(ModuleId::new(0), 1)]).unwrap();
        let mut rng = seeded_rng(2);
        let mut ws = RefineWorkspace::new();
        let mut meter = BudgetMeter::new(&Budget {
            max_passes: Some(1),
            ..Budget::default()
        });
        let (p, r) = ml_bipartition_constrained_budgeted_in(
            &h,
            &MlConfig::default(),
            c.fixed(),
            h.total_area() / 2,
            c.epsilon(),
            &mut rng,
            &mut ws,
            &mut meter,
        );
        assert!(r.truncation.is_some());
        assert!(p.validate(&h));
        assert_eq!(p.part(ModuleId::new(0)), 1, "pin survives truncation");
    }

    /// With audits forced on, the pin and bounds checkers run at every level
    /// of a healthy constrained run.
    #[cfg(feature = "audit")]
    #[test]
    fn audit_hooks_fire_on_constrained_run() {
        mlpart_audit::force_enabled(true);
        let h = two_communities(64);
        let c = Constraints::new(2, 0.2, vec![(ModuleId::new(0), 0)]).unwrap();
        let mut rng = seeded_rng(7);
        let (p, r) = ml_bipartition_constrained(&h, &MlConfig::default(), &c, &mut rng);
        mlpart_audit::force_enabled(false);
        assert!(r.levels >= 1, "need at least one projection to audit");
        assert!(p.validate(&h));
    }

    #[test]
    #[should_panic(expected = "bipartition requires k = 2")]
    fn rejects_nonbisection_k() {
        let h = two_communities(8);
        let c = Constraints::unconstrained(4);
        let mut rng = seeded_rng(0);
        let _ = ml_bipartition_constrained(&h, &MlConfig::default(), &c, &mut rng);
    }
}

#[cfg(test)]
mod budget_tests {
    use super::*;
    use mlpart_fm::{Budget, BudgetLimit};
    use mlpart_hypergraph::rng::seeded_rng;
    use mlpart_hypergraph::HypergraphBuilder;

    fn two_communities(half: usize) -> Hypergraph {
        let mut b = HypergraphBuilder::with_unit_areas(2 * half);
        for base in [0, half] {
            for i in 0..half {
                b.add_net([base + i, base + (i + 1) % half]).unwrap();
                b.add_net([base + i, base + (i + 3) % half]).unwrap();
            }
        }
        b.add_net([half - 1, half]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn unlimited_meter_is_bit_identical_to_unbudgeted() {
        let h = two_communities(64);
        let cfg = MlConfig::clip();
        let mut rng1 = seeded_rng(21);
        let mut rng2 = seeded_rng(21);
        let mut ws = RefineWorkspace::new();
        let (p1, r1) = ml_bipartition_in(&h, &cfg, &mut rng1, &mut ws);
        let (p2, r2) =
            ml_bipartition_budgeted_in(&h, &cfg, &mut rng2, &mut ws, &mut BudgetMeter::unlimited());
        assert_eq!(p1.assignment(), p2.assignment());
        assert_eq!(r1, r2);
        assert_eq!(r2.truncation, None);
    }

    #[test]
    fn pass_budget_truncates_but_keeps_result_valid_and_feasible() {
        let h = two_communities(64);
        let cfg = MlConfig::default();
        let budget = Budget {
            max_passes: Some(2),
            ..Budget::default()
        };
        let mut rng = seeded_rng(5);
        let mut ws = RefineWorkspace::new();
        let mut meter = BudgetMeter::new(&budget);
        let (p, r) = ml_bipartition_budgeted_in(&h, &cfg, &mut rng, &mut ws, &mut meter);
        let t = r
            .truncation
            .expect("two passes cannot finish a V-cycle here");
        assert_eq!(t.limit, BudgetLimit::Passes);
        assert!(
            r.total_passes <= 2,
            "pass budget respected: {}",
            r.total_passes
        );
        assert!(p.validate(&h));
        let bal = BipartBalance::new(&h, cfg.fm.balance_r);
        assert!(bal.is_partition_feasible(&p));
        assert_eq!(r.cut, metrics::cut(&h, &p));
    }

    #[test]
    fn zero_move_budget_yields_the_projected_initial_partition() {
        let h = two_communities(64);
        let cfg = MlConfig::default();
        let mut rng = seeded_rng(9);
        let mut ws = RefineWorkspace::new();
        let mut meter = BudgetMeter::new(&Budget {
            max_moves: Some(0),
            ..Budget::default()
        });
        let (p, r) = ml_bipartition_budgeted_in(&h, &cfg, &mut rng, &mut ws, &mut meter);
        assert_eq!(r.total_passes, 0, "no refinement pass may run");
        assert_eq!(r.truncation.unwrap().limit, BudgetLimit::Moves);
        assert!(p.validate(&h));
        let bal = BipartBalance::new(&h, cfg.fm.balance_r);
        assert!(bal.is_partition_feasible(&p));
    }

    #[test]
    fn level_budget_refines_only_the_coarsest_levels() {
        let h = two_communities(128);
        let cfg = MlConfig::default().with_ratio(0.5);
        let mut rng = seeded_rng(17);
        let mut ws = RefineWorkspace::new();
        let mut meter = BudgetMeter::new(&Budget {
            max_levels: Some(1),
            ..Budget::default()
        });
        let (p, r) = ml_bipartition_budgeted_in(&h, &cfg, &mut rng, &mut ws, &mut meter);
        assert!(r.levels >= 2, "need a deep hierarchy for this test");
        let t = r.truncation.expect("level budget must fire");
        assert_eq!(t.limit, BudgetLimit::Levels);
        // Exactly the coarsest uncoarsening level refined; every later level
        // has zero passes but still projected.
        let refined: Vec<_> = r
            .level_stats
            .iter()
            .skip(1) // entry 0 is the coarsest-level initial partitioning
            .filter(|s| s.passes > 0)
            .collect();
        assert_eq!(refined.len(), 1);
        assert!(p.validate(&h));
    }

    #[test]
    fn budgeted_runs_are_deterministic() {
        let h = two_communities(64);
        let cfg = MlConfig::clip();
        let budget = Budget {
            max_passes: Some(3),
            ..Budget::default()
        };
        let run = || {
            let mut rng = seeded_rng(33);
            let mut ws = RefineWorkspace::new();
            let mut meter = BudgetMeter::new(&budget);
            ml_bipartition_budgeted_in(&h, &cfg, &mut rng, &mut ws, &mut meter)
        };
        let (p1, r1) = run();
        let (p2, r2) = run();
        assert_eq!(p1.assignment(), p2.assignment());
        assert_eq!(r1, r2);
    }
}

#[cfg(test)]
mod coalesce_tests {
    use super::*;
    use mlpart_hypergraph::rng::seeded_rng;
    use mlpart_hypergraph::HypergraphBuilder;

    #[test]
    fn coalesced_ml_produces_valid_comparable_results() {
        let mut b = HypergraphBuilder::with_unit_areas(128);
        for base in [0usize, 64] {
            for i in 0..64 {
                b.add_net([base + i, base + (i + 1) % 64]).unwrap();
                b.add_net([base + i, base + (i + 3) % 64]).unwrap();
            }
        }
        b.add_net([63, 64]).unwrap();
        let h = b.build().unwrap();
        let runs = 5;
        let avg = |coalesce: bool, base: u64| -> f64 {
            (0..runs)
                .map(|s| {
                    let cfg = MlConfig {
                        coalesce_nets: coalesce,
                        ..MlConfig::clip()
                    };
                    let mut rng = seeded_rng(base + s);
                    let (p, r) = ml_bipartition(&h, &cfg, &mut rng);
                    assert!(p.validate(&h));
                    assert_eq!(r.cut, mlpart_hypergraph::metrics::cut(&h, &p));
                    r.cut as f64
                })
                .sum::<f64>()
                / runs as f64
        };
        let plain = avg(false, 100);
        let merged = avg(true, 200);
        // Same algorithm quality class; both should land near the optimum 1.
        assert!(plain <= 6.0, "plain avg {plain}");
        assert!(merged <= 6.0, "coalesced avg {merged}");
    }
}
