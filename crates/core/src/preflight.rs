//! Pre-flight feasibility validation: typed errors instead of panics (or
//! degenerate runs) for inputs no partitioning configuration can satisfy.
//!
//! The pipelines assume a sane problem instance — at least two modules,
//! positive total area, `k` no larger than the module count, and a balance
//! tolerance wide enough that every module fits in a part. Violations used to
//! surface as engine panics or silently-degenerate answers deep inside a run;
//! [`preflight`] rejects them up front with a [`PreflightError`] the CLI (and
//! any embedding tool) can report as *invalid input* rather than a crash.

use mlpart_hypergraph::{Constraints, ConstraintsError, Hypergraph, PartId};

/// Why a `(netlist, k, balance)` problem instance is infeasible.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PreflightError {
    /// Fewer than two modules: there is nothing to partition.
    TooFewModules {
        /// Modules in the netlist.
        modules: usize,
    },
    /// `k == 0`: no parts to assign modules to.
    ZeroParts,
    /// More parts than modules: at least one part must stay empty, which the
    /// balance constraint can never accept for a meaningful tolerance.
    KExceedsModules {
        /// Requested part count.
        k: u32,
        /// Modules in the netlist.
        modules: usize,
    },
    /// Total module area is zero, so balance bounds collapse to `[0, 0]`.
    ZeroTotalArea,
    /// A single module is larger than a part's capacity at the *requested*
    /// tolerance `r`. The engines would still run — §III-B widens the slack
    /// to the largest module area so their bounds never strand a module —
    /// but the balance constraint as stated is unattainable, which a tool
    /// driving the partitioner should hear about up front rather than
    /// discover in a meaninglessly "balanced" answer.
    InfeasibleBalance {
        /// Index of the offending module.
        module: usize,
        /// Its area.
        area: u64,
        /// The per-part capacity implied by `(k, r)` before §III-B widening:
        /// `A(V)/k + ⌊r·A(V)·2/k⌋`.
        capacity: u64,
    },
    /// The modules fixed to one part already exceed that part's ε-capacity:
    /// no assignment of the free modules can repair it, since fixed modules
    /// never move.
    FixedAreaExceedsBound {
        /// The over-committed part.
        part: PartId,
        /// Total area of the modules fixed to it.
        fixed_area: u64,
        /// Its upper capacity bound at the requested ε.
        bound: u64,
    },
    /// After pinning, the free modules cannot populate every part that no
    /// fixed module covers — some part must stay empty, which the balance
    /// constraint can never accept.
    KTooLargeForFixed {
        /// Requested part count.
        k: u32,
        /// Parts holding at least one fixed module.
        fixed_parts: usize,
        /// Modules left free by the fixed list.
        free_modules: usize,
    },
    /// A fixed module index exceeds the netlist's module count.
    FixedModuleOutOfRange {
        /// Offending module index.
        module: usize,
        /// Modules in the netlist.
        modules: usize,
    },
}

impl std::fmt::Display for PreflightError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PreflightError::TooFewModules { modules } => {
                write!(f, "netlist has {modules} module(s); need at least 2")
            }
            PreflightError::ZeroParts => write!(f, "k must be at least 1"),
            PreflightError::KExceedsModules { k, modules } => {
                write!(f, "k = {k} exceeds the {modules} module(s) in the netlist")
            }
            PreflightError::ZeroTotalArea => {
                write!(f, "total module area is zero; balance bounds are empty")
            }
            PreflightError::InfeasibleBalance {
                module,
                area,
                capacity,
            } => write!(
                f,
                "module {module} (area {area}) exceeds the per-part capacity \
                 {capacity}; no feasible partition exists at this tolerance"
            ),
            PreflightError::FixedAreaExceedsBound {
                part,
                fixed_area,
                bound,
            } => write!(
                f,
                "modules fixed to part {part} total area {fixed_area}, over its \
                 capacity bound {bound}; no assignment of the free modules can fit"
            ),
            PreflightError::KTooLargeForFixed {
                k,
                fixed_parts,
                free_modules,
            } => write!(
                f,
                "k = {k} needs more parts than the {fixed_parts} pinned part(s) \
                 plus {free_modules} free module(s) can populate"
            ),
            PreflightError::FixedModuleOutOfRange { module, modules } => {
                write!(
                    f,
                    "fixed module {module} out of range for {modules} module(s)"
                )
            }
        }
    }
}

impl std::error::Error for PreflightError {}

/// Validates that partitioning `h` into `k` parts at balance tolerance
/// `balance_r` has any feasible solution, returning the first violation as a
/// typed error.
///
/// The capacity check mirrors the engines' balance arithmetic (`BipartBalance`
/// / `KwayBalance`) **without** the §III-B max-module widening: the engines
/// widen their bounds so every module always has a feasible home, which means
/// a widened-bounds check can never fail — pre-flight instead reports when
/// that widening would be the only thing keeping the instance feasible.
///
/// # Examples
///
/// ```
/// use mlpart_core::preflight::{preflight, PreflightError};
/// use mlpart_hypergraph::HypergraphBuilder;
///
/// let h = HypergraphBuilder::with_unit_areas(8).build().unwrap();
/// assert!(preflight(&h, 2, 0.1).is_ok());
/// assert!(matches!(
///     preflight(&h, 16, 0.1),
///     Err(PreflightError::KExceedsModules { k: 16, modules: 8 })
/// ));
/// ```
pub fn preflight(h: &Hypergraph, k: u32, balance_r: f64) -> Result<(), PreflightError> {
    let modules = h.num_modules();
    if modules < 2 {
        return Err(PreflightError::TooFewModules { modules });
    }
    if k == 0 {
        return Err(PreflightError::ZeroParts);
    }
    if k as usize > modules {
        return Err(PreflightError::KExceedsModules { k, modules });
    }
    let total = h.total_area();
    if total == 0 {
        return Err(PreflightError::ZeroTotalArea);
    }
    // Per-part capacity at the requested tolerance. With k = 2 this is the
    // paper's `A(V)/2 + r·A(V)` bound before the max-module widening.
    let slack = (balance_r * total as f64 * 2.0 / k as f64).floor() as u64;
    let capacity = (total / k as u64).saturating_add(slack);
    for (module, &area) in h.areas().iter().enumerate() {
        if area > capacity {
            return Err(PreflightError::InfeasibleBalance {
                module,
                area,
                capacity,
            });
        }
    }
    Ok(())
}

/// [`preflight`] for a full [`Constraints`] set: the base `(k, r = ε/2)`
/// checks plus the fixed-module feasibility that only a constraint-aware run
/// can violate — pins out of range, a part over-committed by its pinned
/// area, or too few free modules to populate the unpinned parts.
///
/// # Examples
///
/// ```
/// use mlpart_core::preflight::{preflight_constrained, PreflightError};
/// use mlpart_hypergraph::{Constraints, HypergraphBuilder, ModuleId};
///
/// let h = HypergraphBuilder::with_unit_areas(8).build().unwrap();
/// let ok = Constraints::new(2, 0.2, vec![(ModuleId::new(0), 1)]).unwrap();
/// assert!(preflight_constrained(&h, &ok).is_ok());
/// let oob = Constraints::new(2, 0.2, vec![(ModuleId::new(9), 1)]).unwrap();
/// assert!(matches!(
///     preflight_constrained(&h, &oob),
///     Err(PreflightError::FixedModuleOutOfRange { module: 9, modules: 8 })
/// ));
/// ```
pub fn preflight_constrained(h: &Hypergraph, c: &Constraints) -> Result<(), PreflightError> {
    preflight(h, c.k(), c.balance_r())?;
    // Range-check pins before touching their areas.
    if let Err(ConstraintsError::ModuleOutOfRange { module, modules }) =
        c.check_modules(h.num_modules())
    {
        return Err(PreflightError::FixedModuleOutOfRange { module, modules });
    }
    let bounds = c.bounds(h);
    for (part, &fixed_area) in c.fixed_areas(h).iter().enumerate() {
        let bound = bounds.hi(part as PartId);
        if fixed_area > bound {
            return Err(PreflightError::FixedAreaExceedsBound {
                part: part as PartId,
                fixed_area,
                bound,
            });
        }
    }
    // Every part needs at least one module; pins cover their own parts and
    // the free modules must cover the rest.
    let mut pinned = vec![false; c.k() as usize];
    for &(_, p) in c.fixed() {
        pinned[p as usize] = true;
    }
    let fixed_parts = pinned.iter().filter(|&&x| x).count();
    let free_modules = h.num_modules() - c.fixed().len();
    if fixed_parts + free_modules < c.k() as usize {
        return Err(PreflightError::KTooLargeForFixed {
            k: c.k(),
            fixed_parts,
            free_modules,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlpart_hypergraph::HypergraphBuilder;

    #[test]
    fn accepts_a_sane_instance() {
        let mut b = HypergraphBuilder::with_unit_areas(16);
        for i in 0..15 {
            b.add_net([i, i + 1]).unwrap();
        }
        let h = b.build().unwrap();
        assert_eq!(preflight(&h, 2, 0.1), Ok(()));
        assert_eq!(preflight(&h, 4, 0.1), Ok(()));
    }

    #[test]
    fn rejects_single_module_graphs() {
        let h = HypergraphBuilder::with_unit_areas(1).build().unwrap();
        assert_eq!(
            preflight(&h, 2, 0.1),
            Err(PreflightError::TooFewModules { modules: 1 })
        );
    }

    #[test]
    fn rejects_zero_parts_and_oversized_k() {
        let h = HypergraphBuilder::with_unit_areas(4).build().unwrap();
        assert_eq!(preflight(&h, 0, 0.1), Err(PreflightError::ZeroParts));
        assert_eq!(
            preflight(&h, 5, 0.1),
            Err(PreflightError::KExceedsModules { k: 5, modules: 4 })
        );
    }

    #[test]
    fn rejects_an_area_outlier_the_balance_cannot_hold() {
        // One module carries (almost) all the area: its area exceeds the
        // per-part capacity at r = 0.1 for both 2- and 4-way splits, so any
        // "balanced" partition is balanced in name only.
        let mut areas = vec![1u64; 16];
        areas[3] = 1_000_000;
        let h = HypergraphBuilder::new(areas).build().unwrap();
        for k in [2u32, 4] {
            match preflight(&h, k, 0.1) {
                Err(PreflightError::InfeasibleBalance { module, area, .. }) => {
                    assert_eq!(module, 3, "k = {k}");
                    assert_eq!(area, 1_000_000);
                }
                other => panic!("expected InfeasibleBalance for k = {k}, got {other:?}"),
            }
        }
        // A mild outlier fits within the requested tolerance.
        let mut areas = vec![1u64; 16];
        areas[0] = 4;
        let h = HypergraphBuilder::new(areas).build().unwrap();
        assert_eq!(preflight(&h, 2, 0.1), Ok(()));
    }

    #[test]
    fn constrained_accepts_sane_pins_and_defers_to_base_checks() {
        use mlpart_hypergraph::{Constraints, ModuleId};
        let mut b = HypergraphBuilder::with_unit_areas(16);
        for i in 0..15 {
            b.add_net([i, i + 1]).unwrap();
        }
        let h = b.build().unwrap();
        let c =
            Constraints::new(4, 0.2, vec![(ModuleId::new(0), 0), (ModuleId::new(15), 3)]).unwrap();
        assert_eq!(preflight_constrained(&h, &c), Ok(()));
        // The base checks still fire through the constrained entry.
        assert_eq!(
            preflight_constrained(&h, &Constraints::unconstrained(17)),
            Err(PreflightError::KExceedsModules { k: 17, modules: 16 })
        );
    }

    #[test]
    fn constrained_rejects_overcommitted_part() {
        use mlpart_hypergraph::{Constraints, ModuleId};
        // 16 units, k = 4, ε = 0.2: per-part window tops out at
        // 4 + max(⌊0.2·4⌋, 1) = 5; pinning six modules to part 2 over-commits
        // it before any free module is placed.
        let h = HypergraphBuilder::with_unit_areas(16).build().unwrap();
        let pins: Vec<_> = (0..6).map(|i| (ModuleId::new(i), 2)).collect();
        let c = Constraints::new(4, 0.2, pins).unwrap();
        match preflight_constrained(&h, &c) {
            Err(PreflightError::FixedAreaExceedsBound {
                part,
                fixed_area,
                bound,
            }) => {
                assert_eq!(part, 2);
                assert_eq!(fixed_area, 6);
                assert!(bound < 6, "bound {bound}");
            }
            other => panic!("expected FixedAreaExceedsBound, got {other:?}"),
        }
    }

    #[test]
    fn constrained_rejects_k_the_pins_cannot_populate() {
        use mlpart_hypergraph::{Constraints, ModuleId};
        // 4 modules, k = 4, three pinned to part 0: one free module cannot
        // cover the three unpinned parts.
        let h = HypergraphBuilder::with_unit_areas(4).build().unwrap();
        let pins: Vec<_> = (0..3).map(|i| (ModuleId::new(i), 0)).collect();
        let c = Constraints::new(4, 2.0, pins).unwrap();
        assert_eq!(
            preflight_constrained(&h, &c),
            Err(PreflightError::KTooLargeForFixed {
                k: 4,
                fixed_parts: 1,
                free_modules: 1
            })
        );
    }

    #[test]
    fn errors_render_a_message() {
        let e = PreflightError::InfeasibleBalance {
            module: 7,
            area: 10,
            capacity: 3,
        };
        let msg = e.to_string();
        assert!(msg.contains("module 7"), "{msg}");
        assert!(msg.contains("capacity"), "{msg}");
    }
}
