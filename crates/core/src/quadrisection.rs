//! Multilevel k-way partitioning (§III-C): the ML paradigm with a
//! Sanchis-style k-way engine as the refiner.
//!
//! The paper extends ML to quadrisection (k = 4) for use inside a top-down
//! placement tool: I/O pads can be pre-assigned to parts, coarsening keeps
//! pre-assigned modules as singletons, and the Table IX results use
//! `ML_F`-style refinement with `R = 1.0` and `T = 100` under the
//! sum-of-degrees gain.

use crate::error::{expect_valid, PipelineError};
use crate::hierarchy::Hierarchy;
use crate::ml::{LevelStats, MlConfig};
use mlpart_cluster::{project, rebalance_kway_frozen};
use mlpart_fm::{BudgetMeter, RefineWorkspace, Truncation};
use mlpart_hypergraph::rng::{child_seed, seeded_rng, MlRng};
use mlpart_hypergraph::{
    metrics, Constraints, ConstraintsError, Hypergraph, KwayBalance, ModuleId, PartBounds, PartId,
    Partition,
};
use mlpart_kway::{
    kway_partition_budgeted_in, kway_refine_budgeted_in, kway_refine_constrained_budgeted_in,
    rebalance_to_bounds, KwayConfig,
};

/// Configuration for multilevel k-way partitioning.
///
/// Combines the multilevel knobs (`T`, `R`, hierarchy caps — reusing
/// [`MlConfig`] fields) with the k-way engine settings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MlKwayConfig {
    /// Number of parts `k` (4 for quadrisection).
    pub k: u32,
    /// Coarsening threshold `T`; the paper's quadrisection uses 100.
    pub coarsen_threshold: usize,
    /// Matching ratio `R`; the paper's quadrisection uses 1.0.
    pub matching_ratio: f64,
    /// K-way refinement engine settings (gain computation, balance, limits).
    pub kway: KwayConfig,
    /// Safety cap on hierarchy depth.
    pub max_levels: usize,
}

impl Default for MlKwayConfig {
    fn default() -> Self {
        MlKwayConfig {
            k: 4,
            coarsen_threshold: 100,
            matching_ratio: 1.0,
            kway: KwayConfig::default(),
            max_levels: 256,
        }
    }
}

/// Statistics from one multilevel k-way run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MlKwayResult {
    /// Final net cut over all nets.
    pub cut: u64,
    /// Final `Σ_e (span(e) − 1)`.
    pub sum_of_degrees: u64,
    /// Number of coarsening levels.
    pub levels: usize,
    /// Module counts per level, `H₀` first.
    pub level_sizes: Vec<usize>,
    /// Total k-way passes across levels.
    pub total_passes: usize,
    /// Modules moved by rebalancing during uncoarsening.
    pub rebalance_moves: usize,
    /// Per-level instrumentation in execution order (coarsest first); the
    /// `cut_*` fields carry the k-way engine objective (sum-of-degrees or
    /// net cut, per the configured gain).
    pub level_stats: Vec<LevelStats>,
    /// `Some` when a budget limit fired and the run returned its best
    /// partition so far instead of running to convergence.
    pub truncation: Option<Truncation>,
}

/// Runs the multilevel k-way (quadrisection for `k = 4`) algorithm.
///
/// `fixed` pre-assigns modules (e.g. I/O pads) to parts; they are kept as
/// singleton clusters during coarsening and never moved by refinement.
///
/// # Panics
///
/// Panics if `cfg.k == 0` or a fixed assignment is out of range.
///
/// # Examples
///
/// ```
/// use mlpart_core::{ml_kway, MlKwayConfig};
/// use mlpart_hypergraph::{HypergraphBuilder, rng::seeded_rng, metrics};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Four communities of 32 modules in a ring.
/// let mut b = HypergraphBuilder::with_unit_areas(128);
/// for c in 0..4usize {
///     let base = 32 * c;
///     for i in 0..32 {
///         b.add_net([base + i, base + (i + 1) % 32])?;
///         b.add_net([base + i, base + (i + 5) % 32])?;
///     }
///     b.add_net([base + 31, (base + 32) % 128])?;
/// }
/// let h = b.build()?;
/// let mut rng = seeded_rng(3);
/// let (p, r) = ml_kway(&h, &MlKwayConfig::default(), &[], &mut rng);
/// assert_eq!(r.cut, metrics::cut(&h, &p));
/// assert!(r.cut <= 8);
/// # Ok(())
/// # }
/// ```
pub fn ml_kway(
    h: &Hypergraph,
    cfg: &MlKwayConfig,
    fixed: &[(ModuleId, PartId)],
    rng: &mut MlRng,
) -> (Partition, MlKwayResult) {
    let mut ws = RefineWorkspace::new();
    ml_kway_in(h, cfg, fixed, rng, &mut ws)
}

/// [`ml_kway`] with caller-owned scratch: every level refines through the
/// same [`RefineWorkspace`] (bound in its k-way shape), so the per-level
/// gain/bucket allocations are reused. Results are bit-identical to
/// [`ml_kway`].
pub fn ml_kway_in(
    h: &Hypergraph,
    cfg: &MlKwayConfig,
    fixed: &[(ModuleId, PartId)],
    rng: &mut MlRng,
    ws: &mut RefineWorkspace,
) -> (Partition, MlKwayResult) {
    ml_kway_budgeted_in(h, cfg, fixed, rng, ws, &mut BudgetMeter::unlimited())
}

/// [`ml_kway_in`] under a cooperative execution budget; the k-way twin of
/// [`ml_bipartition_budgeted_in`](crate::ml_bipartition_budgeted_in). Once a
/// limit fires refinement stops, but projection and rebalancing still run at
/// every level, so the returned partition is always valid and feasible. With
/// an unlimited meter this is bit-identical to [`ml_kway_in`].
pub fn ml_kway_budgeted_in(
    h: &Hypergraph,
    cfg: &MlKwayConfig,
    fixed: &[(ModuleId, PartId)],
    rng: &mut MlRng,
    ws: &mut RefineWorkspace,
    meter: &mut BudgetMeter,
) -> (Partition, MlKwayResult) {
    expect_valid(try_ml_kway_budgeted_in(h, cfg, fixed, rng, ws, meter))
}

/// [`ml_kway_budgeted_in`] returning a typed error instead of panicking —
/// the non-panicking root of the k-way entry points.
///
/// # Errors
///
/// [`PipelineError::Constraints`] when `cfg.k == 0`;
/// [`PipelineError::Coarsen`] when building or projecting through the
/// hierarchy fails.
pub fn try_ml_kway_budgeted_in(
    h: &Hypergraph,
    cfg: &MlKwayConfig,
    fixed: &[(ModuleId, PartId)],
    rng: &mut MlRng,
    ws: &mut RefineWorkspace,
    meter: &mut BudgetMeter,
) -> Result<(Partition, MlKwayResult), PipelineError> {
    if cfg.k == 0 {
        return Err(PipelineError::Constraints(ConstraintsError::ZeroParts));
    }
    // Reuse the bipartition hierarchy builder: only T / R / max_levels apply.
    let ml_cfg = MlConfig {
        coarsen_threshold: cfg.coarsen_threshold,
        matching_ratio: cfg.matching_ratio,
        max_levels: cfg.max_levels,
        ..MlConfig::default()
    };
    #[cfg(feature = "obs")]
    let _obs_run = mlpart_obs::span(
        "ml_kway",
        &[
            ("k", u64::from(cfg.k).into()),
            ("modules", h.num_modules().into()),
        ],
    );
    let hierarchy = Hierarchy::try_coarsen(h, &ml_cfg, fixed, rng)?;
    let m = hierarchy.num_levels();

    // Initial k-way partitioning of the coarsest netlist.
    let coarsest = hierarchy.coarsest(h);
    #[cfg(feature = "obs")]
    let obs_initial = mlpart_obs::span(
        "initial",
        &[
            ("tries", 1u64.into()),
            ("level", m.into()),
            ("modules", coarsest.num_modules().into()),
        ],
    );
    #[cfg(feature = "obs")]
    let obs_try = mlpart_obs::span("try", &[("try", 0u64.into())]);
    meter.set_level_context(Some(m as u32));
    let (mut p, r0) = kway_partition_budgeted_in(
        coarsest,
        cfg.k,
        None,
        hierarchy.fixed_at(m),
        &cfg.kway,
        rng,
        ws,
        meter,
    );
    #[cfg(feature = "obs")]
    {
        drop(obs_try);
        mlpart_obs::counter(
            "initial_winner",
            &[("try", 0u64.into()), ("cut", r0.cut.into())],
        );
        drop(obs_initial);
    }
    let mut total_passes = r0.passes;
    let mut level_stats = Vec::with_capacity(m + 1);
    level_stats.push(LevelStats::from_passes(
        m,
        coarsest.num_modules(),
        &r0.pass_stats,
        0,
    ));

    // Uncoarsening with projection, rebalancing, and k-way refinement.
    let mut rebalance_moves = 0usize;
    for i in (0..m).rev() {
        let fine: &Hypergraph = if i == 0 { h } else { hierarchy.level(i) };
        #[cfg(feature = "obs")]
        let _obs_level = mlpart_obs::span(
            "level",
            &[("level", i.into()), ("modules", fine.num_modules().into())],
        );
        let mut fine_p = project(fine, hierarchy.clustering(i), &p)?;
        // Definition 2 audit (k-way form), before rebalancing perturbs
        // `fine_p`: pullback through the cluster map and bit-exact cut.
        #[cfg(feature = "audit")]
        if mlpart_audit::enabled() {
            mlpart_audit::enforce(
                mlpart_audit::audit_projection(
                    fine,
                    &fine_p,
                    hierarchy.level(i + 1),
                    &p,
                    hierarchy.clustering(i).as_map(),
                )
                .map_err(|e| e.with_level(i)),
            );
        }
        let balance = KwayBalance::new(fine, cfg.k, cfg.kway.balance_r);
        let mut level_rebalance = 0usize;
        if !balance.is_partition_feasible(&fine_p) {
            let level_fixed = hierarchy.fixed_at(i);
            let mask: Option<Vec<bool>> = if level_fixed.is_empty() {
                None
            } else {
                let mut m = vec![false; fine.num_modules()];
                for &(v, _) in level_fixed {
                    m[v.index()] = true;
                }
                Some(m)
            };
            level_rebalance =
                rebalance_kway_frozen(fine, &mut fine_p, &balance, mask.as_deref(), rng);
            rebalance_moves += level_rebalance;
        }
        #[cfg(feature = "obs")]
        mlpart_obs::counter(
            "rebalance",
            &[("level", i.into()), ("moves", level_rebalance.into())],
        );
        // Cooperative budget checkpoint; see `ml_bipartition_budgeted_in`.
        // An exhausted meter skips the refinement below (zero passes) while
        // projection and rebalancing keep the partition valid and feasible.
        meter.set_level_context(Some(i as u32));
        let _ = meter.level_checkpoint(i as u32);
        let r = kway_refine_budgeted_in(
            fine,
            &mut fine_p,
            hierarchy.fixed_at(i),
            &cfg.kway,
            rng,
            ws,
            meter,
        );
        meter.note_level();
        total_passes += r.passes;
        level_stats.push(LevelStats::from_passes(
            i,
            fine.num_modules(),
            &r.pass_stats,
            level_rebalance,
        ));
        p = fine_p;
    }

    #[cfg(feature = "audit")]
    if mlpart_audit::enabled() {
        mlpart_audit::enforce(mlpart_audit::audit_partition(h, &p));
    }
    let result = MlKwayResult {
        cut: metrics::cut(h, &p),
        sum_of_degrees: metrics::sum_of_spans_minus_one(h, &p),
        levels: m,
        level_sizes: hierarchy.level_sizes(h),
        total_passes,
        rebalance_moves,
        level_stats,
        truncation: meter.truncation(),
    };
    Ok((p, result))
}

/// Constraint-aware multilevel k-way partitioning: [`ml_kway`] driven by a
/// full [`Constraints`] set — general `k`, ε-derived per-part bounds, and
/// fixed modules that may coarsen together when pinned to the same part
/// (via [`Hierarchy::coarsen_parts`], unlike the singleton-freezing
/// [`ml_kway`]).
///
/// # Panics
///
/// Panics if `cfg.k != constraints.k()` or a fixed module is out of range
/// (run [`preflight_constrained`](crate::preflight_constrained) first for
/// typed errors).
pub fn ml_kway_constrained(
    h: &Hypergraph,
    cfg: &MlKwayConfig,
    constraints: &Constraints,
    rng: &mut MlRng,
) -> (Partition, MlKwayResult) {
    let mut ws = RefineWorkspace::new();
    ml_kway_constrained_in(h, cfg, constraints, rng, &mut ws)
}

/// [`ml_kway_constrained`] with caller-owned scratch.
pub fn ml_kway_constrained_in(
    h: &Hypergraph,
    cfg: &MlKwayConfig,
    constraints: &Constraints,
    rng: &mut MlRng,
    ws: &mut RefineWorkspace,
) -> (Partition, MlKwayResult) {
    ml_kway_constrained_budgeted_in(h, cfg, constraints, rng, ws, &mut BudgetMeter::unlimited())
}

/// [`ml_kway_constrained_in`] under a cooperative execution budget; the
/// constraint-aware twin of [`ml_kway_budgeted_in`]. Per-level bounds are
/// recomputed from ε with each level's max module area, projection and
/// pin-respecting rebalancing run at every level even once the budget is
/// exhausted, and pins are audited at every level when audits are enabled.
pub fn ml_kway_constrained_budgeted_in(
    h: &Hypergraph,
    cfg: &MlKwayConfig,
    constraints: &Constraints,
    rng: &mut MlRng,
    ws: &mut RefineWorkspace,
    meter: &mut BudgetMeter,
) -> (Partition, MlKwayResult) {
    expect_valid(try_ml_kway_constrained_budgeted_in(
        h,
        cfg,
        constraints,
        rng,
        ws,
        meter,
    ))
}

/// [`ml_kway_constrained_budgeted_in`] returning a typed error instead of
/// panicking.
///
/// # Errors
///
/// [`PipelineError::KMismatch`] when `cfg.k != constraints.k()`,
/// [`PipelineError::Constraints`] when a fixed module is out of range, and
/// [`PipelineError::Coarsen`] when the hierarchy cannot be built or
/// projected.
pub fn try_ml_kway_constrained_budgeted_in(
    h: &Hypergraph,
    cfg: &MlKwayConfig,
    constraints: &Constraints,
    rng: &mut MlRng,
    ws: &mut RefineWorkspace,
    meter: &mut BudgetMeter,
) -> Result<(Partition, MlKwayResult), PipelineError> {
    let k = constraints.k();
    if cfg.k != k {
        return Err(PipelineError::KMismatch {
            context: "cfg.k and constraints.k() disagree",
            expected: cfg.k,
            got: k,
        });
    }
    constraints.check_modules(h.num_modules())?;
    let ml_cfg = MlConfig {
        coarsen_threshold: cfg.coarsen_threshold,
        matching_ratio: cfg.matching_ratio,
        max_levels: cfg.max_levels,
        ..MlConfig::default()
    };
    #[cfg(feature = "obs")]
    let _obs_run = mlpart_obs::span(
        "ml_kway_constrained",
        &[
            ("k", u64::from(k).into()),
            ("modules", h.num_modules().into()),
            ("fixed", constraints.fixed().len().into()),
        ],
    );
    let epsilon = constraints.epsilon();
    let bounds_for = |fine: &Hypergraph| PartBounds::from_epsilon(fine, k, epsilon);
    let hierarchy = Hierarchy::try_coarsen_parts(h, &ml_cfg, constraints.fixed(), rng)?;
    let m = hierarchy.num_levels();

    // Initial k-way partitioning of the coarsest netlist, seeded from pins.
    let coarsest = hierarchy.coarsest(h);
    let coarse_fixed = hierarchy.fixed_at(m);
    let coarse_bounds = bounds_for(coarsest);
    meter.set_level_context(Some(m as u32));
    let mut p = Partition::random_fixed(coarsest, k, coarse_fixed, rng);
    if !coarse_bounds.is_partition_feasible(&p) {
        let _ = rebalance_to_bounds(coarsest, &mut p, coarse_fixed, &coarse_bounds, rng);
    }
    let r0 = kway_refine_constrained_budgeted_in(
        coarsest,
        &mut p,
        coarse_fixed,
        &cfg.kway,
        &coarse_bounds,
        rng,
        ws,
        meter,
    );
    let mut total_passes = r0.passes;
    let mut level_stats = Vec::with_capacity(m + 1);
    level_stats.push(LevelStats::from_passes(
        m,
        coarsest.num_modules(),
        &r0.pass_stats,
        0,
    ));

    // Uncoarsening with pin-respecting rebalance and bounded refinement.
    let mut rebalance_moves = 0usize;
    for i in (0..m).rev() {
        let fine: &Hypergraph = if i == 0 { h } else { hierarchy.level(i) };
        #[cfg(feature = "obs")]
        let _obs_level = mlpart_obs::span(
            "level",
            &[("level", i.into()), ("modules", fine.num_modules().into())],
        );
        let mut fine_p = project(fine, hierarchy.clustering(i), &p)?;
        #[cfg(feature = "audit")]
        if mlpart_audit::enabled() {
            mlpart_audit::enforce(
                mlpart_audit::audit_projection(
                    fine,
                    &fine_p,
                    hierarchy.level(i + 1),
                    &p,
                    hierarchy.clustering(i).as_map(),
                )
                .map_err(|e| e.with_level(i)),
            );
        }
        let bounds = bounds_for(fine);
        let level_fixed = hierarchy.fixed_at(i);
        let mut level_rebalance = 0usize;
        if !bounds.is_partition_feasible(&fine_p) {
            level_rebalance = rebalance_to_bounds(fine, &mut fine_p, level_fixed, &bounds, rng);
            rebalance_moves += level_rebalance;
        }
        meter.set_level_context(Some(i as u32));
        let _ = meter.level_checkpoint(i as u32);
        let r = kway_refine_constrained_budgeted_in(
            fine,
            &mut fine_p,
            level_fixed,
            &cfg.kway,
            &bounds,
            rng,
            ws,
            meter,
        );
        meter.note_level();
        #[cfg(feature = "audit")]
        if mlpart_audit::enabled() {
            mlpart_audit::enforce(
                mlpart_audit::audit_fixed_assignment(&fine_p, level_fixed)
                    .map_err(|e| e.with_level(i)),
            );
        }
        total_passes += r.passes;
        level_stats.push(LevelStats::from_passes(
            i,
            fine.num_modules(),
            &r.pass_stats,
            level_rebalance,
        ));
        p = fine_p;
    }

    #[cfg(feature = "audit")]
    if mlpart_audit::enabled() {
        mlpart_audit::enforce(mlpart_audit::audit_partition(h, &p));
        mlpart_audit::enforce(mlpart_audit::audit_fixed_assignment(
            &p,
            constraints.fixed(),
        ));
    }
    let result = MlKwayResult {
        cut: metrics::cut(h, &p),
        sum_of_degrees: metrics::sum_of_spans_minus_one(h, &p),
        levels: m,
        level_sizes: hierarchy.level_sizes(h),
        total_passes,
        rebalance_moves,
        level_stats,
        truncation: meter.truncation(),
    };
    Ok((p, result))
}

/// Multi-start convenience driver: runs [`ml_kway_in`] once per start with
/// the independent seed stream `child_seed(base_seed, i)` and returns the
/// winning start's index, partition, and statistics (lowest cut, ties to the
/// lowest start index). The k-way twin of
/// [`ml_best_of_in`](crate::ml_best_of_in); see there for why this total
/// order makes the result schedule-independent.
///
/// # Panics
///
/// Panics if `runs == 0` or the underlying [`ml_kway_in`] panics.
pub fn ml_kway_best_of_in(
    h: &Hypergraph,
    cfg: &MlKwayConfig,
    fixed: &[(ModuleId, PartId)],
    runs: usize,
    base_seed: u64,
    ws: &mut RefineWorkspace,
) -> (usize, Partition, MlKwayResult) {
    expect_valid(try_ml_kway_best_of_in(h, cfg, fixed, runs, base_seed, ws))
}

/// [`ml_kway_best_of_in`] returning a typed error instead of panicking.
///
/// # Errors
///
/// [`PipelineError::NoStarts`] when `runs == 0`, plus anything a single
/// start ([`try_ml_kway_budgeted_in`]) reports.
pub fn try_ml_kway_best_of_in(
    h: &Hypergraph,
    cfg: &MlKwayConfig,
    fixed: &[(ModuleId, PartId)],
    runs: usize,
    base_seed: u64,
    ws: &mut RefineWorkspace,
) -> Result<(usize, Partition, MlKwayResult), PipelineError> {
    if runs == 0 {
        return Err(PipelineError::NoStarts);
    }
    let mut best: Option<(usize, Partition, MlKwayResult)> = None;
    for i in 0..runs {
        let mut rng = seeded_rng(child_seed(base_seed, i as u64));
        let (p, r) =
            try_ml_kway_budgeted_in(h, cfg, fixed, &mut rng, ws, &mut BudgetMeter::unlimited())?;
        if best.as_ref().is_none_or(|(_, _, b)| r.cut < b.cut) {
            best = Some((i, p, r));
        }
    }
    best.ok_or(PipelineError::NoStarts)
}

/// Convenience wrapper for the paper's quadrisection setup: `k = 4`,
/// `T = 100`, `R = 1.0`, sum-of-degrees gain.
pub fn ml_quadrisection(
    h: &Hypergraph,
    fixed: &[(ModuleId, PartId)],
    rng: &mut MlRng,
) -> (Partition, MlKwayResult) {
    ml_kway(h, &MlKwayConfig::default(), fixed, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlpart_hypergraph::rng::seeded_rng;
    use mlpart_hypergraph::HypergraphBuilder;
    use mlpart_kway::kway_partition;

    /// Four communities in a ring; optimum quadrisection cuts the 4 bridges.
    fn four_communities(size: usize) -> Hypergraph {
        let n = 4 * size;
        let mut b = HypergraphBuilder::with_unit_areas(n);
        for c in 0..4usize {
            let base = size * c;
            for i in 0..size {
                b.add_net([base + i, base + (i + 1) % size]).unwrap();
                b.add_net([base + i, base + (i + 5) % size]).unwrap();
            }
            b.add_net([base + size - 1, (base + size) % n]).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn finds_low_cut_quadrisection() {
        let h = four_communities(50);
        let best = (0..5)
            .map(|s| {
                let mut rng = seeded_rng(s);
                ml_quadrisection(&h, &[], &mut rng).1.cut
            })
            .min()
            .unwrap();
        assert!(best <= 8, "best={best}");
    }

    #[test]
    fn result_is_feasible_and_consistent() {
        let h = four_communities(60);
        let cfg = MlKwayConfig::default();
        let bal = KwayBalance::new(&h, 4, cfg.kway.balance_r);
        let mut rng = seeded_rng(2);
        let (p, r) = ml_kway(&h, &cfg, &[], &mut rng);
        assert!(p.validate(&h));
        assert!(bal.is_partition_feasible(&p), "{:?}", p.part_areas());
        assert_eq!(r.cut, metrics::cut(&h, &p));
        assert_eq!(r.sum_of_degrees, metrics::sum_of_spans_minus_one(&h, &p));
        assert_eq!(r.level_sizes.len(), r.levels + 1);
    }

    #[test]
    fn kway_best_of_matches_manual_sequential_loop() {
        let h = four_communities(40);
        let cfg = MlKwayConfig::default();
        let (runs, base) = (4usize, 13u64);
        let mut ws = RefineWorkspace::new();
        let (win_idx, win_p, win_r) = ml_kway_best_of_in(&h, &cfg, &[], runs, base, &mut ws);
        let mut best: Option<(usize, Partition, MlKwayResult)> = None;
        for i in 0..runs {
            let mut rng = seeded_rng(child_seed(base, i as u64));
            let (p, r) = ml_kway(&h, &cfg, &[], &mut rng);
            if best.as_ref().is_none_or(|(_, _, b)| r.cut < b.cut) {
                best = Some((i, p, r));
            }
        }
        let (idx, p, r) = best.unwrap();
        assert_eq!(win_idx, idx);
        assert_eq!(win_p.assignment(), p.assignment());
        assert_eq!(win_r, r);
    }

    #[test]
    fn fixed_pads_respected_through_hierarchy() {
        let h = four_communities(60);
        let fixed = vec![
            (ModuleId::new(0), 0u32),
            (ModuleId::new(60), 1u32),
            (ModuleId::new(120), 2u32),
            (ModuleId::new(180), 3u32),
        ];
        for seed in 0..3 {
            let mut rng = seeded_rng(seed);
            let (p, _) = ml_quadrisection(&h, &fixed, &mut rng);
            for &(v, part) in &fixed {
                assert_eq!(p.part(v), part, "seed {seed}");
            }
        }
    }

    #[test]
    fn multilevel_beats_flat_kway_on_average() {
        let h = four_communities(64);
        let runs = 4;
        let flat_avg: f64 = (0..runs)
            .map(|s| {
                let mut rng = seeded_rng(3000 + s);
                kway_partition(&h, 4, None, &[], &KwayConfig::default(), &mut rng)
                    .1
                    .cut as f64
            })
            .sum::<f64>()
            / runs as f64;
        let ml_avg: f64 = (0..runs)
            .map(|s| {
                let mut rng = seeded_rng(4000 + s);
                ml_quadrisection(&h, &[], &mut rng).1.cut as f64
            })
            .sum::<f64>()
            / runs as f64;
        assert!(
            ml_avg <= flat_avg,
            "ML 4-way avg {ml_avg} should not exceed flat avg {flat_avg}"
        );
    }

    #[test]
    fn k2_multilevel_works() {
        let h = four_communities(32);
        let cfg = MlKwayConfig {
            k: 2,
            ..MlKwayConfig::default()
        };
        let mut rng = seeded_rng(8);
        let (p, r) = ml_kway(&h, &cfg, &[], &mut rng);
        assert_eq!(p.k(), 2);
        assert_eq!(r.cut, metrics::cut(&h, &p));
    }

    /// With audits forced on, every k-way projection boundary is checked.
    #[cfg(feature = "audit")]
    #[test]
    fn audit_hooks_fire_on_healthy_run() {
        mlpart_audit::force_enabled(true);
        let h = four_communities(50); // 200 modules > T = 100, so m >= 1
        let mut rng = seeded_rng(12);
        let (p, r) = ml_quadrisection(&h, &[], &mut rng);
        mlpart_audit::force_enabled(false);
        assert!(r.levels >= 1, "need at least one projection to audit");
        assert!(p.validate(&h));
    }

    #[test]
    fn deterministic_given_seed() {
        let h = four_communities(40);
        let run = |seed| {
            let mut rng = seeded_rng(seed);
            ml_quadrisection(&h, &[], &mut rng)
        };
        let (p1, r1) = run(6);
        let (p2, r2) = run(6);
        assert_eq!(p1.assignment(), p2.assignment());
        assert_eq!(r1, r2);
    }

    #[test]
    fn budgeted_kway_truncates_and_stays_feasible() {
        use mlpart_fm::{Budget, BudgetLimit};
        let h = four_communities(60);
        let cfg = MlKwayConfig::default();
        let mut rng = seeded_rng(14);
        let mut ws = RefineWorkspace::new();
        let mut meter = BudgetMeter::new(&Budget {
            max_passes: Some(1),
            ..Budget::default()
        });
        let (p, r) = ml_kway_budgeted_in(&h, &cfg, &[], &mut rng, &mut ws, &mut meter);
        let t = r
            .truncation
            .expect("one pass cannot finish a k-way V-cycle");
        assert_eq!(t.limit, BudgetLimit::Passes);
        assert!(r.total_passes <= 1);
        assert!(p.validate(&h));
        let bal = KwayBalance::new(&h, 4, cfg.kway.balance_r);
        assert!(bal.is_partition_feasible(&p));
        assert_eq!(r.cut, metrics::cut(&h, &p));
    }

    #[test]
    fn budgeted_kway_with_unlimited_meter_matches_unbudgeted() {
        let h = four_communities(40);
        let cfg = MlKwayConfig::default();
        let mut rng1 = seeded_rng(4);
        let mut rng2 = seeded_rng(4);
        let mut ws = RefineWorkspace::new();
        let (p1, r1) = ml_kway_in(&h, &cfg, &[], &mut rng1, &mut ws);
        let (p2, r2) = ml_kway_budgeted_in(
            &h,
            &cfg,
            &[],
            &mut rng2,
            &mut ws,
            &mut BudgetMeter::unlimited(),
        );
        assert_eq!(p1.assignment(), p2.assignment());
        assert_eq!(r1, r2);
        assert_eq!(r2.truncation, None);
    }

    #[test]
    fn constrained_kway_honors_pins_across_seeds() {
        let h = four_communities(50);
        let c = Constraints::new(
            4,
            0.2,
            vec![
                (ModuleId::new(0), 3),   // against the natural quadrant
                (ModuleId::new(75), 1),  // with it
                (ModuleId::new(120), 0), // against
            ],
        )
        .unwrap();
        let cfg = MlKwayConfig::default();
        let bounds = c.bounds(&h);
        for seed in 0..4 {
            let mut rng = seeded_rng(seed);
            let (p, r) = ml_kway_constrained(&h, &cfg, &c, &mut rng);
            assert!(p.validate(&h));
            for &(v, part) in c.fixed() {
                assert_eq!(p.part(v), part, "seed {seed}");
            }
            assert!(bounds.is_partition_feasible(&p), "{:?}", p.part_areas());
            assert_eq!(r.cut, metrics::cut(&h, &p));
        }
    }

    #[test]
    fn constrained_kway_without_pins_finds_low_cut() {
        let h = four_communities(50);
        let cfg = MlKwayConfig::default();
        let c = Constraints::unconstrained(4);
        let best = (0..5)
            .map(|s| {
                let mut rng = seeded_rng(s);
                ml_kway_constrained(&h, &cfg, &c, &mut rng).1.cut
            })
            .min()
            .unwrap();
        assert!(best <= 12, "best={best}");
    }

    #[test]
    fn constrained_kway_is_deterministic_given_seed() {
        let h = four_communities(40);
        let cfg = MlKwayConfig::default();
        let c = Constraints::new(4, 0.1, vec![(ModuleId::new(7), 2)]).unwrap();
        let run = |seed| {
            let mut rng = seeded_rng(seed);
            ml_kway_constrained(&h, &cfg, &c, &mut rng)
        };
        let (p1, r1) = run(11);
        let (p2, r2) = run(11);
        assert_eq!(p1.assignment(), p2.assignment());
        assert_eq!(r1, r2);
    }

    #[test]
    #[should_panic(expected = "cfg.k and constraints.k() disagree")]
    fn constrained_kway_rejects_mismatched_k() {
        let h = four_communities(10);
        let cfg = MlKwayConfig::default(); // k = 4
        let c = Constraints::unconstrained(8);
        let mut rng = seeded_rng(0);
        let _ = ml_kway_constrained(&h, &cfg, &c, &mut rng);
    }
}
