//! Recursive multilevel bisection: the classic alternative to direct k-way
//! partitioning.
//!
//! The paper partitions 4 ways *directly* with a Sanchis-style engine
//! (§III-C); most placement flows of the era instead quadrisected by
//! bisecting twice. This module provides that alternative so the two
//! strategies can be compared (see the `ablation` harness binary and the
//! quadrisection tests): each side of an ML bisection is extracted as a
//! sub-netlist and bisected again, recursively, yielding `k = 2^depth`
//! parts.

use crate::ml::{ml_bipartition_budgeted_in, MlConfig};
use mlpart_fm::{BudgetMeter, RefineWorkspace, Truncation};
use mlpart_hypergraph::rng::MlRng;
use mlpart_hypergraph::{metrics, Hypergraph, Partition};

/// Statistics from a recursive bisection run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecursiveResult {
    /// Final k-way cut (all nets counted, measured on the original netlist).
    pub cut: u64,
    /// Final `Σ_e (span(e) − 1)`.
    pub sum_of_degrees: u64,
    /// Number of bisections performed (`2^depth − 1` unless a region became
    /// too small to split).
    pub bisections: usize,
    /// `Some` when a budget limit fired during any region's bisection; the
    /// budget is shared across all regions, so later bisections degrade to
    /// projected (unrefined) splits.
    pub truncation: Option<Truncation>,
}

/// Partitions `h` into `2^depth` parts by recursive ML bisection.
///
/// Each level runs the full multilevel algorithm on the extracted
/// sub-netlist of a region. Regions with fewer than two modules are left
/// whole (their "split" is trivial), so the result always has exactly
/// `2^depth` part ids (possibly with empty parts on degenerate inputs).
///
/// # Panics
///
/// Panics if `depth == 0` or `depth > 16`.
///
/// # Examples
///
/// ```
/// use mlpart_core::{recursive_ml_bisection, MlConfig};
/// use mlpart_hypergraph::{HypergraphBuilder, rng::seeded_rng, metrics};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = HypergraphBuilder::with_unit_areas(64);
/// for c in 0..4usize {
///     let base = 16 * c;
///     for i in 0..16 {
///         b.add_net([base + i, base + (i + 1) % 16])?;
///     }
///     b.add_net([base + 15, (base + 16) % 64])?;
/// }
/// let h = b.build()?;
/// let mut rng = seeded_rng(2);
/// let (p, r) = recursive_ml_bisection(&h, 2, &MlConfig::default(), &mut rng);
/// assert_eq!(p.k(), 4);
/// assert_eq!(r.cut, metrics::cut(&h, &p));
/// # Ok(())
/// # }
/// ```
pub fn recursive_ml_bisection(
    h: &Hypergraph,
    depth: u32,
    cfg: &MlConfig,
    rng: &mut MlRng,
) -> (Partition, RecursiveResult) {
    let mut ws = RefineWorkspace::new();
    recursive_ml_bisection_in(h, depth, cfg, rng, &mut ws)
}

/// [`recursive_ml_bisection`] with caller-owned scratch: every region's
/// multilevel bisection (`2^depth − 1` of them) shares one
/// [`RefineWorkspace`] instead of allocating its own refinement state.
pub fn recursive_ml_bisection_in(
    h: &Hypergraph,
    depth: u32,
    cfg: &MlConfig,
    rng: &mut MlRng,
    ws: &mut RefineWorkspace,
) -> (Partition, RecursiveResult) {
    recursive_ml_bisection_budgeted_in(h, depth, cfg, rng, ws, &mut BudgetMeter::unlimited())
}

/// [`recursive_ml_bisection_in`] under a cooperative execution budget.
///
/// One meter is shared across every region's multilevel bisection, so the
/// limits bound the *whole* recursive run, not each region: once exhausted,
/// the remaining regions still split (their sub-bisections project random
/// coarse partitions without refinement), keeping the `2^depth`-part shape.
pub fn recursive_ml_bisection_budgeted_in(
    h: &Hypergraph,
    depth: u32,
    cfg: &MlConfig,
    rng: &mut MlRng,
    ws: &mut RefineWorkspace,
    meter: &mut BudgetMeter,
) -> (Partition, RecursiveResult) {
    assert!(depth >= 1, "depth must be at least 1");
    assert!(depth <= 16, "depth over 16 is surely a mistake");
    let k = 1u32 << depth;
    let n = h.num_modules();
    #[cfg(feature = "obs")]
    let _obs_run = mlpart_obs::span(
        "recursive_bisection",
        &[("depth", u64::from(depth).into()), ("modules", n.into())],
    );
    // `region[v]` is the current part of module v; regions split in place.
    let mut region = vec![0u32; n];
    let mut bisections = 0usize;
    for level in 0..depth {
        let regions_at_level = 1u32 << level;
        // Split against the frozen labels of this level and write the new
        // labels into a fresh array: relabeling in place would make a fresh
        // `high` id collide with a not-yet-processed old region id.
        let mut next_region = region.clone();
        for r_id in 0..regions_at_level {
            let keep: Vec<bool> = region.iter().map(|&r| r == r_id).collect();
            let count = keep.iter().filter(|&&x| x).count();
            // The new ids for this region's halves after this level.
            let low = r_id * 2;
            let high = r_id * 2 + 1;
            if count < 2 {
                for (v, &k2) in keep.iter().enumerate() {
                    if k2 {
                        next_region[v] = low;
                    }
                }
                continue;
            }
            let (sub, back) = h.extract(&keep);
            #[cfg(feature = "obs")]
            let _obs_region = mlpart_obs::span(
                "region",
                &[
                    ("depth_level", u64::from(level).into()),
                    ("region", u64::from(r_id).into()),
                    ("modules", count.into()),
                ],
            );
            let (sub_p, _) = ml_bipartition_budgeted_in(&sub, cfg, rng, ws, meter);
            bisections += 1;
            // Write back: side 0 -> low, side 1 -> high.
            for (sub_v, &orig) in back.iter().enumerate() {
                next_region[orig.index()] = if sub_p.assignment()[sub_v] == 0 {
                    low
                } else {
                    high
                };
            }
        }
        region = next_region;
    }
    let p = Partition::from_assignment(h, k, region).expect("region ids below k");
    let result = RecursiveResult {
        cut: metrics::cut(h, &p),
        sum_of_degrees: metrics::sum_of_spans_minus_one(h, &p),
        bisections,
        truncation: meter.truncation(),
    };
    (p, result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ml::ml_bipartition;
    use mlpart_hypergraph::rng::seeded_rng;
    use mlpart_hypergraph::HypergraphBuilder;

    fn four_communities(size: usize) -> Hypergraph {
        let n = 4 * size;
        let mut b = HypergraphBuilder::with_unit_areas(n);
        for c in 0..4usize {
            let base = size * c;
            for i in 0..size {
                b.add_net([base + i, base + (i + 1) % size]).unwrap();
                b.add_net([base + i, base + (i + 5) % size]).unwrap();
            }
            b.add_net([base + size - 1, (base + size) % n]).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn quadrisects_four_communities() {
        let h = four_communities(32);
        let best = (0..5)
            .map(|s| {
                let mut rng = seeded_rng(s);
                recursive_ml_bisection(&h, 2, &MlConfig::default(), &mut rng)
                    .1
                    .cut
            })
            .min()
            .unwrap();
        assert!(best <= 8, "best={best}");
    }

    #[test]
    fn produces_exactly_k_parts_with_near_even_sizes() {
        let h = four_communities(25);
        let mut rng = seeded_rng(3);
        let (p, r) = recursive_ml_bisection(&h, 2, &MlConfig::default(), &mut rng);
        assert_eq!(p.k(), 4);
        assert!(p.validate(&h));
        assert_eq!(r.cut, metrics::cut(&h, &p));
        let sizes = p.part_sizes();
        let (min, max) = (
            *sizes.iter().min().expect("4 parts"),
            *sizes.iter().max().expect("4 parts"),
        );
        // Each bisection is within r=0.1, so quadrant sizes stay near n/4.
        assert!(max - min <= h.num_modules() / 4, "{sizes:?}");
    }

    #[test]
    fn depth_one_matches_plain_bisection_cutwise() {
        let h = four_communities(16);
        let mut rng1 = seeded_rng(7);
        let mut rng2 = seeded_rng(7);
        let (_, r1) = recursive_ml_bisection(&h, 1, &MlConfig::default(), &mut rng1);
        let (_, r2) = ml_bipartition(&h, &MlConfig::default(), &mut rng2);
        assert_eq!(r1.cut, r2.cut, "same seed, same single bisection");
        assert_eq!(r1.bisections, 1);
    }

    #[test]
    fn handles_tiny_netlists() {
        let mut b = HypergraphBuilder::with_unit_areas(3);
        b.add_net([0, 1]).unwrap();
        b.add_net([1, 2]).unwrap();
        let h = b.build().unwrap();
        let mut rng = seeded_rng(0);
        let (p, _) = recursive_ml_bisection(&h, 3, &MlConfig::default(), &mut rng);
        assert_eq!(p.k(), 8);
        assert!(p.validate(&h));
    }

    #[test]
    fn budgeted_recursion_shares_one_meter_across_regions() {
        use mlpart_fm::{Budget, BudgetLimit, BudgetMeter};
        let h = four_communities(32);
        let mut rng = seeded_rng(3);
        let mut ws = RefineWorkspace::new();
        let mut meter = BudgetMeter::new(&Budget {
            max_passes: Some(2),
            ..Budget::default()
        });
        let (p, r) = recursive_ml_bisection_budgeted_in(
            &h,
            2,
            &MlConfig::default(),
            &mut rng,
            &mut ws,
            &mut meter,
        );
        // Two passes cannot cover three bisections' V-cycles.
        assert_eq!(
            r.truncation.expect("must truncate").limit,
            BudgetLimit::Passes
        );
        assert_eq!(p.k(), 4, "shape is preserved under exhaustion");
        assert!(p.validate(&h));
        assert_eq!(r.bisections, 3, "exhausted regions still split");
    }

    #[test]
    #[should_panic(expected = "depth must be at least 1")]
    fn rejects_zero_depth() {
        let h = four_communities(8);
        let mut rng = seeded_rng(0);
        let _ = recursive_ml_bisection(&h, 0, &MlConfig::default(), &mut rng);
    }
}
