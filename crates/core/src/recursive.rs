//! Recursive multilevel bisection: the classic alternative to direct k-way
//! partitioning.
//!
//! The paper partitions 4 ways *directly* with a Sanchis-style engine
//! (§III-C); most placement flows of the era instead quadrisected by
//! bisecting twice. This module provides that alternative so the two
//! strategies can be compared (see the `ablation` harness binary and the
//! quadrisection tests): each side of an ML bisection is extracted as a
//! sub-netlist and bisected again, recursively, yielding `k = 2^depth`
//! parts.

use crate::error::{expect_valid, PipelineError};
use crate::ml::{
    try_ml_bipartition_budgeted_in, try_ml_bipartition_constrained_budgeted_in, MlConfig,
};
use mlpart_fm::{BudgetMeter, RefineWorkspace, Truncation};
use mlpart_hypergraph::rng::MlRng;
use mlpart_hypergraph::{
    adapted_epsilon, metrics, Constraints, Hypergraph, ModuleId, PartId, Partition,
};

/// Statistics from a recursive bisection run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecursiveResult {
    /// Final k-way cut (all nets counted, measured on the original netlist).
    pub cut: u64,
    /// Final `Σ_e (span(e) − 1)`.
    pub sum_of_degrees: u64,
    /// Number of bisections performed (`2^depth − 1` unless a region became
    /// too small to split).
    pub bisections: usize,
    /// `Some` when a budget limit fired during any region's bisection; the
    /// budget is shared across all regions, so later bisections degrade to
    /// projected (unrefined) splits.
    pub truncation: Option<Truncation>,
}

/// Partitions `h` into `2^depth` parts by recursive ML bisection.
///
/// Each level runs the full multilevel algorithm on the extracted
/// sub-netlist of a region. Regions with fewer than two modules are left
/// whole (their "split" is trivial), so the result always has exactly
/// `2^depth` part ids (possibly with empty parts on degenerate inputs).
///
/// # Panics
///
/// Panics if `depth == 0` or `depth > 16`.
///
/// # Examples
///
/// ```
/// use mlpart_core::{recursive_ml_bisection, MlConfig};
/// use mlpart_hypergraph::{HypergraphBuilder, rng::seeded_rng, metrics};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = HypergraphBuilder::with_unit_areas(64);
/// for c in 0..4usize {
///     let base = 16 * c;
///     for i in 0..16 {
///         b.add_net([base + i, base + (i + 1) % 16])?;
///     }
///     b.add_net([base + 15, (base + 16) % 64])?;
/// }
/// let h = b.build()?;
/// let mut rng = seeded_rng(2);
/// let (p, r) = recursive_ml_bisection(&h, 2, &MlConfig::default(), &mut rng);
/// assert_eq!(p.k(), 4);
/// assert_eq!(r.cut, metrics::cut(&h, &p));
/// # Ok(())
/// # }
/// ```
pub fn recursive_ml_bisection(
    h: &Hypergraph,
    depth: u32,
    cfg: &MlConfig,
    rng: &mut MlRng,
) -> (Partition, RecursiveResult) {
    let mut ws = RefineWorkspace::new();
    recursive_ml_bisection_in(h, depth, cfg, rng, &mut ws)
}

/// [`recursive_ml_bisection`] with caller-owned scratch: every region's
/// multilevel bisection (`2^depth − 1` of them) shares one
/// [`RefineWorkspace`] instead of allocating its own refinement state.
pub fn recursive_ml_bisection_in(
    h: &Hypergraph,
    depth: u32,
    cfg: &MlConfig,
    rng: &mut MlRng,
    ws: &mut RefineWorkspace,
) -> (Partition, RecursiveResult) {
    recursive_ml_bisection_budgeted_in(h, depth, cfg, rng, ws, &mut BudgetMeter::unlimited())
}

/// [`recursive_ml_bisection_in`] under a cooperative execution budget.
///
/// One meter is shared across every region's multilevel bisection, so the
/// limits bound the *whole* recursive run, not each region: once exhausted,
/// the remaining regions still split (their sub-bisections project random
/// coarse partitions without refinement), keeping the `2^depth`-part shape.
pub fn recursive_ml_bisection_budgeted_in(
    h: &Hypergraph,
    depth: u32,
    cfg: &MlConfig,
    rng: &mut MlRng,
    ws: &mut RefineWorkspace,
    meter: &mut BudgetMeter,
) -> (Partition, RecursiveResult) {
    expect_valid(try_recursive_ml_bisection_budgeted_in(
        h, depth, cfg, rng, ws, meter,
    ))
}

/// [`recursive_ml_bisection_budgeted_in`] returning a typed error instead
/// of panicking.
///
/// # Errors
///
/// [`PipelineError::BadDepth`] when `depth` is outside `1..=16`;
/// [`PipelineError::Netlist`] when a region sub-netlist fails extraction;
/// plus anything a region's bisection reports.
pub fn try_recursive_ml_bisection_budgeted_in(
    h: &Hypergraph,
    depth: u32,
    cfg: &MlConfig,
    rng: &mut MlRng,
    ws: &mut RefineWorkspace,
    meter: &mut BudgetMeter,
) -> Result<(Partition, RecursiveResult), PipelineError> {
    if !(1..=16).contains(&depth) {
        return Err(PipelineError::BadDepth { depth });
    }
    let k = 1u32 << depth;
    let n = h.num_modules();
    #[cfg(feature = "obs")]
    let _obs_run = mlpart_obs::span(
        "recursive_bisection",
        &[("depth", u64::from(depth).into()), ("modules", n.into())],
    );
    // `region[v]` is the current part of module v; regions split in place.
    let mut region = vec![0u32; n];
    let mut bisections = 0usize;
    for level in 0..depth {
        let regions_at_level = 1u32 << level;
        // Split against the frozen labels of this level and write the new
        // labels into a fresh array: relabeling in place would make a fresh
        // `high` id collide with a not-yet-processed old region id.
        let mut next_region = region.clone();
        for r_id in 0..regions_at_level {
            let keep: Vec<bool> = region.iter().map(|&r| r == r_id).collect();
            let count = keep.iter().filter(|&&x| x).count();
            // The new ids for this region's halves after this level.
            let low = r_id * 2;
            let high = r_id * 2 + 1;
            if count < 2 {
                for (v, &k2) in keep.iter().enumerate() {
                    if k2 {
                        next_region[v] = low;
                    }
                }
                continue;
            }
            let (sub, back) = h.extract(&keep)?;
            #[cfg(feature = "obs")]
            let _obs_region = mlpart_obs::span(
                "region",
                &[
                    ("depth_level", u64::from(level).into()),
                    ("region", u64::from(r_id).into()),
                    ("modules", count.into()),
                ],
            );
            let (sub_p, _) = try_ml_bipartition_budgeted_in(&sub, cfg, rng, ws, meter)?;
            bisections += 1;
            // Write back: side 0 -> low, side 1 -> high.
            for (sub_v, &orig) in back.iter().enumerate() {
                next_region[orig.index()] = if sub_p.assignment()[sub_v] == 0 {
                    low
                } else {
                    high
                };
            }
        }
        region = next_region;
    }
    let p =
        Partition::from_assignment(h, k, region).ok_or(PipelineError::InvalidRegionIds { k })?;
    let result = RecursiveResult {
        cut: metrics::cut(h, &p),
        sum_of_degrees: metrics::sum_of_spans_minus_one(h, &p),
        bisections,
        truncation: meter.truncation(),
    };
    Ok((p, result))
}

/// Partitions `h` into an **arbitrary** `k` parts by recursive constrained
/// ML bisection, honoring a full [`Constraints`] set.
///
/// Where [`recursive_ml_bisection`] serves only `k = 2^depth` with uniform
/// halves, this driver splits each region `⌈k/2⌉ : ⌊k/2⌋` with an
/// area target proportional to the part counts, runs every bisection under
/// the per-level tolerance `ε′ = (1 + ε)^(1/⌈log₂ k⌉) − 1`
/// ([`adapted_epsilon`]) so the composed imbalance never exceeds the
/// requested ε, and routes each fixed module to whichever side of a split
/// contains its pinned part.
///
/// # Panics
///
/// Panics if a fixed module is out of range (run
/// [`preflight_constrained`](crate::preflight_constrained) first for typed
/// errors).
///
/// # Examples
///
/// ```
/// use mlpart_core::{recursive_ml_partition, MlConfig};
/// use mlpart_hypergraph::{Constraints, HypergraphBuilder, rng::seeded_rng, metrics};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = HypergraphBuilder::with_unit_areas(60);
/// for i in 0..59 {
///     b.add_net([i, i + 1])?;
/// }
/// let h = b.build()?;
/// let c = Constraints::new(3, 0.1, vec![])?;
/// let mut rng = seeded_rng(4);
/// let (p, r) = recursive_ml_partition(&h, &MlConfig::default(), &c, &mut rng);
/// assert_eq!(p.k(), 3);
/// assert_eq!(r.cut, metrics::cut(&h, &p));
/// # Ok(())
/// # }
/// ```
pub fn recursive_ml_partition(
    h: &Hypergraph,
    cfg: &MlConfig,
    constraints: &Constraints,
    rng: &mut MlRng,
) -> (Partition, RecursiveResult) {
    let mut ws = RefineWorkspace::new();
    recursive_ml_partition_budgeted_in(
        h,
        cfg,
        constraints,
        rng,
        &mut ws,
        &mut BudgetMeter::unlimited(),
    )
}

/// [`recursive_ml_partition`] with caller-owned scratch and a cooperative
/// execution budget shared across every region's bisection (exhausted
/// regions still split, unrefined, preserving the k-part shape).
pub fn recursive_ml_partition_budgeted_in(
    h: &Hypergraph,
    cfg: &MlConfig,
    constraints: &Constraints,
    rng: &mut MlRng,
    ws: &mut RefineWorkspace,
    meter: &mut BudgetMeter,
) -> (Partition, RecursiveResult) {
    expect_valid(try_recursive_ml_partition_budgeted_in(
        h,
        cfg,
        constraints,
        rng,
        ws,
        meter,
    ))
}

/// [`recursive_ml_partition_budgeted_in`] returning a typed error instead
/// of panicking.
///
/// # Errors
///
/// [`PipelineError::Constraints`] when a fixed module is out of range;
/// [`PipelineError::Netlist`] when a region sub-netlist fails extraction;
/// plus anything a region's constrained bisection reports.
pub fn try_recursive_ml_partition_budgeted_in(
    h: &Hypergraph,
    cfg: &MlConfig,
    constraints: &Constraints,
    rng: &mut MlRng,
    ws: &mut RefineWorkspace,
    meter: &mut BudgetMeter,
) -> Result<(Partition, RecursiveResult), PipelineError> {
    let k = constraints.k();
    let n = h.num_modules();
    constraints.check_modules(n)?;
    #[cfg(feature = "obs")]
    let _obs_run = mlpart_obs::span(
        "recursive_partition",
        &[
            ("k", u64::from(k).into()),
            ("modules", n.into()),
            ("fixed", constraints.fixed().len().into()),
        ],
    );
    let eps = adapted_epsilon(constraints.epsilon(), k);
    // Pin lookup dense by module, shared by every region.
    let mut pin: Vec<Option<PartId>> = vec![None; n];
    for &(v, p) in constraints.fixed() {
        pin[v.index()] = Some(p);
    }
    let mut region = vec![0u32; n];
    let mut bisections = 0usize;
    let members: Vec<u32> = (0..n as u32).collect();
    split_region(
        h,
        cfg,
        &pin,
        &mut region,
        &members,
        0,
        k,
        eps,
        rng,
        ws,
        meter,
        &mut bisections,
    )?;
    let p =
        Partition::from_assignment(h, k, region).ok_or(PipelineError::InvalidRegionIds { k })?;
    #[cfg(feature = "audit")]
    if mlpart_audit::enabled() {
        mlpart_audit::enforce(mlpart_audit::audit_partition(h, &p));
        mlpart_audit::enforce(mlpart_audit::audit_fixed_assignment(
            &p,
            constraints.fixed(),
        ));
    }
    let result = RecursiveResult {
        cut: metrics::cut(h, &p),
        sum_of_degrees: metrics::sum_of_spans_minus_one(h, &p),
        bisections,
        truncation: meter.truncation(),
    };
    Ok((p, result))
}

/// One region of the recursion: assign `members` the final part ids
/// `part_base .. part_base + k_region`, bisecting `⌈k/2⌉ : ⌊k/2⌋` until
/// regions are single parts. Deterministic: regions recurse low side first,
/// so the RNG schedule is a pure function of the inputs.
#[allow(clippy::too_many_arguments)]
fn split_region(
    h: &Hypergraph,
    cfg: &MlConfig,
    pin: &[Option<PartId>],
    region: &mut [u32],
    members: &[u32],
    part_base: u32,
    k_region: u32,
    eps: f64,
    rng: &mut MlRng,
    ws: &mut RefineWorkspace,
    meter: &mut BudgetMeter,
    bisections: &mut usize,
) -> Result<(), PipelineError> {
    if k_region == 1 {
        for &v in members {
            region[v as usize] = part_base;
        }
        return Ok(());
    }
    let k_lo = k_region - k_region / 2; // ⌈k/2⌉ parts on side 0
    let k_hi = k_region / 2;
    if members.len() < 2 {
        // Too small to bisect: pins keep their parts, free modules take the
        // region's first part.
        for &v in members {
            region[v as usize] = pin[v as usize].unwrap_or(part_base);
        }
        return Ok(());
    }
    let mut keep = vec![false; h.num_modules()];
    for &v in members {
        keep[v as usize] = true;
    }
    let (sub, back) = h.extract(&keep)?;
    #[cfg(feature = "obs")]
    let _obs_region = mlpart_obs::span(
        "region",
        &[
            ("part_base", u64::from(part_base).into()),
            ("k_region", u64::from(k_region).into()),
            ("modules", members.len().into()),
        ],
    );
    // A pin belongs to side 0 iff its part falls in the low part range.
    let boundary = part_base + k_lo;
    let sub_fixed: Vec<(ModuleId, PartId)> = back
        .iter()
        .enumerate()
        .filter_map(|(sub_v, &orig)| {
            pin[orig.index()].map(|t| (ModuleId::new(sub_v), u32::from(t >= boundary)))
        })
        .collect();
    let total = sub.total_area();
    let target0 = ((total as u128 * k_lo as u128) / k_region as u128) as u64;
    let (sub_p, _) = try_ml_bipartition_constrained_budgeted_in(
        &sub, cfg, &sub_fixed, target0, eps, rng, ws, meter,
    )?;
    *bisections += 1;
    let mut low = Vec::new();
    let mut high = Vec::new();
    for (sub_v, &orig) in back.iter().enumerate() {
        if sub_p.assignment()[sub_v] == 0 {
            low.push(orig.raw());
        } else {
            high.push(orig.raw());
        }
    }
    split_region(
        h, cfg, pin, region, &low, part_base, k_lo, eps, rng, ws, meter, bisections,
    )?;
    split_region(
        h, cfg, pin, region, &high, boundary, k_hi, eps, rng, ws, meter, bisections,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ml::ml_bipartition;
    use mlpart_hypergraph::rng::seeded_rng;
    use mlpart_hypergraph::HypergraphBuilder;

    fn four_communities(size: usize) -> Hypergraph {
        let n = 4 * size;
        let mut b = HypergraphBuilder::with_unit_areas(n);
        for c in 0..4usize {
            let base = size * c;
            for i in 0..size {
                b.add_net([base + i, base + (i + 1) % size]).unwrap();
                b.add_net([base + i, base + (i + 5) % size]).unwrap();
            }
            b.add_net([base + size - 1, (base + size) % n]).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn quadrisects_four_communities() {
        let h = four_communities(32);
        let best = (0..5)
            .map(|s| {
                let mut rng = seeded_rng(s);
                recursive_ml_bisection(&h, 2, &MlConfig::default(), &mut rng)
                    .1
                    .cut
            })
            .min()
            .unwrap();
        assert!(best <= 8, "best={best}");
    }

    #[test]
    fn produces_exactly_k_parts_with_near_even_sizes() {
        let h = four_communities(25);
        let mut rng = seeded_rng(3);
        let (p, r) = recursive_ml_bisection(&h, 2, &MlConfig::default(), &mut rng);
        assert_eq!(p.k(), 4);
        assert!(p.validate(&h));
        assert_eq!(r.cut, metrics::cut(&h, &p));
        let sizes = p.part_sizes();
        let (min, max) = (
            *sizes.iter().min().expect("4 parts"),
            *sizes.iter().max().expect("4 parts"),
        );
        // Each bisection is within r=0.1, so quadrant sizes stay near n/4.
        assert!(max - min <= h.num_modules() / 4, "{sizes:?}");
    }

    #[test]
    fn depth_one_matches_plain_bisection_cutwise() {
        let h = four_communities(16);
        let mut rng1 = seeded_rng(7);
        let mut rng2 = seeded_rng(7);
        let (_, r1) = recursive_ml_bisection(&h, 1, &MlConfig::default(), &mut rng1);
        let (_, r2) = ml_bipartition(&h, &MlConfig::default(), &mut rng2);
        assert_eq!(r1.cut, r2.cut, "same seed, same single bisection");
        assert_eq!(r1.bisections, 1);
    }

    #[test]
    fn handles_tiny_netlists() {
        let mut b = HypergraphBuilder::with_unit_areas(3);
        b.add_net([0, 1]).unwrap();
        b.add_net([1, 2]).unwrap();
        let h = b.build().unwrap();
        let mut rng = seeded_rng(0);
        let (p, _) = recursive_ml_bisection(&h, 3, &MlConfig::default(), &mut rng);
        assert_eq!(p.k(), 8);
        assert!(p.validate(&h));
    }

    #[test]
    fn budgeted_recursion_shares_one_meter_across_regions() {
        use mlpart_fm::{Budget, BudgetLimit, BudgetMeter};
        let h = four_communities(32);
        let mut rng = seeded_rng(3);
        let mut ws = RefineWorkspace::new();
        let mut meter = BudgetMeter::new(&Budget {
            max_passes: Some(2),
            ..Budget::default()
        });
        let (p, r) = recursive_ml_bisection_budgeted_in(
            &h,
            2,
            &MlConfig::default(),
            &mut rng,
            &mut ws,
            &mut meter,
        );
        // Two passes cannot cover three bisections' V-cycles.
        assert_eq!(
            r.truncation.expect("must truncate").limit,
            BudgetLimit::Passes
        );
        assert_eq!(p.k(), 4, "shape is preserved under exhaustion");
        assert!(p.validate(&h));
        assert_eq!(r.bisections, 3, "exhausted regions still split");
    }

    #[test]
    #[should_panic(expected = "depth must be at least 1")]
    fn rejects_zero_depth() {
        let h = four_communities(8);
        let mut rng = seeded_rng(0);
        let _ = recursive_ml_bisection(&h, 0, &MlConfig::default(), &mut rng);
    }

    #[test]
    fn general_k_produces_exactly_k_near_even_parts() {
        let h = four_communities(30); // 120 unit modules
        for k in [3u32, 5, 6] {
            let c = Constraints::unconstrained(k);
            let mut rng = seeded_rng(5);
            let (p, r) = recursive_ml_partition(&h, &MlConfig::default(), &c, &mut rng);
            assert_eq!(p.k(), k);
            assert!(p.validate(&h));
            assert_eq!(r.cut, metrics::cut(&h, &p));
            assert_eq!(r.bisections, k as usize - 1, "k−1 bisections for k={k}");
            let target = h.total_area() / k as u64;
            for (part, &area) in p.part_areas().iter().enumerate() {
                assert!(
                    area >= target / 2 && area <= target * 2,
                    "k={k} part {part} area {area} far from target {target}: {:?}",
                    p.part_areas()
                );
            }
        }
    }

    #[test]
    fn general_k_honors_pins() {
        let h = four_communities(30);
        let c = Constraints::new(
            5,
            0.2,
            vec![
                (ModuleId::new(0), 4),
                (ModuleId::new(31), 0),
                (ModuleId::new(64), 2),
                (ModuleId::new(119), 1),
            ],
        )
        .unwrap();
        for seed in 0..4 {
            let mut rng = seeded_rng(seed);
            let (p, _) = recursive_ml_partition(&h, &MlConfig::default(), &c, &mut rng);
            for &(v, part) in c.fixed() {
                assert_eq!(p.part(v), part, "seed {seed}");
            }
            assert!(p.validate(&h));
        }
    }

    #[test]
    fn general_k_is_deterministic_given_seed() {
        let h = four_communities(20);
        let c = Constraints::new(3, 0.1, vec![(ModuleId::new(2), 1)]).unwrap();
        let run = |seed| {
            let mut rng = seeded_rng(seed);
            recursive_ml_partition(&h, &MlConfig::default(), &c, &mut rng)
        };
        let (p1, r1) = run(17);
        let (p2, r2) = run(17);
        assert_eq!(p1.assignment(), p2.assignment());
        assert_eq!(r1, r2);
    }

    #[test]
    fn general_k_power_of_two_matches_quadrant_structure() {
        let h = four_communities(25);
        let c = Constraints::unconstrained(4);
        let best = (0..5)
            .map(|s| {
                let mut rng = seeded_rng(s);
                recursive_ml_partition(&h, &MlConfig::default(), &c, &mut rng)
                    .1
                    .cut
            })
            .min()
            .unwrap();
        assert!(best <= 10, "best={best}");
    }

    #[test]
    fn general_k_one_part_puts_everything_in_part_zero() {
        let h = four_communities(8);
        let c = Constraints::unconstrained(1);
        let mut rng = seeded_rng(0);
        let (p, r) = recursive_ml_partition(&h, &MlConfig::default(), &c, &mut rng);
        assert_eq!(p.k(), 1);
        assert_eq!(r.bisections, 0);
        assert_eq!(r.cut, 0);
    }
}
