//! The "two-phase" clustering methodology (paper §II-C) — the historical
//! predecessor that ML generalizes.
//!
//! > "First a clustering `Pᵏ` of `H₀` is generated, then this clustering is
//! > used to induce the coarser netlist `H₁` from `H₀`. FM is then run once
//! > on `H₁` to yield the bipartitioning `P₁`, and this solution `P₁` is
//! > projected to a new bipartitioning `P₀` of `H₀`. Finally, FM is run a
//! > second time on `H₀` using `P₀` as its initial solution."
//!
//! Exactly one level of coarsening; ML is "the two-phase approach extended
//! to as many phases as desired". Included as a baseline so the value of
//! *multiple* levels can be isolated experimentally.

use crate::error::{expect_valid, PipelineError};
use crate::hierarchy::fixed_mask;
use mlpart_cluster::{
    induce, match_clusters, match_clusters_parts, project, rebalance_bipart, MatchConfig,
};
use mlpart_fm::{
    fm_partition_budgeted_in, refine_budgeted_in, refine_constrained_budgeted_in, BudgetMeter,
    FmConfig, FmResult, RefineWorkspace, Truncation,
};
use mlpart_hypergraph::rng::MlRng;
use mlpart_hypergraph::{
    metrics, BipartBalance, Constraints, Hypergraph, ModuleId, PartBounds, PartId, Partition,
};
use mlpart_kway::rebalance_to_bounds;

/// Result of a two-phase FM run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TwoPhaseResult {
    /// Final cut on `H₀`.
    pub cut: u64,
    /// Cut of the coarse solution before projection.
    pub coarse_cut: u64,
    /// Number of modules of the induced coarse netlist `H₁`.
    pub coarse_modules: usize,
    /// Statistics of the second (refinement) FM run.
    pub refine: FmResult,
    /// `Some` when a budget limit fired and one (or both) FM runs were cut
    /// short.
    pub truncation: Option<Truncation>,
}

/// Runs two-phase FM: one `Match` clustering, FM on the induced netlist,
/// projection, and a final FM refinement.
///
/// `fm` configures both FM runs (engine, buckets, balance); `match_cfg`
/// configures the single clustering pass.
///
/// # Examples
///
/// ```
/// use mlpart_core::two_phase::{two_phase_fm, TwoPhaseResult};
/// use mlpart_cluster::MatchConfig;
/// use mlpart_fm::FmConfig;
/// use mlpart_hypergraph::{HypergraphBuilder, rng::seeded_rng, metrics};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = HypergraphBuilder::with_unit_areas(32);
/// for i in 0..31 {
///     b.add_net([i, i + 1])?;
/// }
/// let h = b.build()?;
/// let mut rng = seeded_rng(3);
/// let (p, r) = two_phase_fm(&h, &FmConfig::default(), &MatchConfig::default(), &mut rng);
/// assert_eq!(r.cut, metrics::cut(&h, &p));
/// assert!(r.coarse_modules < 32);
/// # Ok(())
/// # }
/// ```
pub fn two_phase_fm(
    h: &Hypergraph,
    fm: &FmConfig,
    match_cfg: &MatchConfig,
    rng: &mut MlRng,
) -> (Partition, TwoPhaseResult) {
    let mut ws = RefineWorkspace::new();
    two_phase_fm_in(h, fm, match_cfg, rng, &mut ws)
}

/// [`two_phase_fm`] with caller-owned scratch: both FM runs share the
/// workspace's gain/bucket allocations.
pub fn two_phase_fm_in(
    h: &Hypergraph,
    fm: &FmConfig,
    match_cfg: &MatchConfig,
    rng: &mut MlRng,
    ws: &mut RefineWorkspace,
) -> (Partition, TwoPhaseResult) {
    two_phase_fm_budgeted_in(h, fm, match_cfg, rng, ws, &mut BudgetMeter::unlimited())
}

/// [`two_phase_fm_in`] under a cooperative execution budget. Both FM runs
/// draw on the same meter; once exhausted, the remaining refinement is
/// skipped while projection and rebalancing keep the result valid and
/// feasible. With an unlimited meter this is bit-identical to
/// [`two_phase_fm_in`].
pub fn two_phase_fm_budgeted_in(
    h: &Hypergraph,
    fm: &FmConfig,
    match_cfg: &MatchConfig,
    rng: &mut MlRng,
    ws: &mut RefineWorkspace,
    meter: &mut BudgetMeter,
) -> (Partition, TwoPhaseResult) {
    expect_valid(try_two_phase_fm_budgeted_in(
        h, fm, match_cfg, rng, ws, meter,
    ))
}

/// [`two_phase_fm_budgeted_in`] returning a typed error instead of
/// panicking.
///
/// # Errors
///
/// [`PipelineError::Coarsen`] when inducing the coarse netlist or
/// projecting the coarse partition back fails.
pub fn try_two_phase_fm_budgeted_in(
    h: &Hypergraph,
    fm: &FmConfig,
    match_cfg: &MatchConfig,
    rng: &mut MlRng,
    ws: &mut RefineWorkspace,
    meter: &mut BudgetMeter,
) -> Result<(Partition, TwoPhaseResult), PipelineError> {
    #[cfg(feature = "obs")]
    let _obs_run = mlpart_obs::span("two_phase", &[("modules", h.num_modules().into())]);
    // Phase 1: cluster once and partition the coarse netlist.
    let clustering = match_clusters(h, match_cfg, rng);
    let coarse = induce(h, &clustering)?;
    #[cfg(feature = "obs")]
    mlpart_obs::counter(
        "two_phase_coarse",
        &[("coarse_modules", coarse.num_modules().into())],
    );
    meter.set_level_context(Some(1));
    let (coarse_p, coarse_r) = fm_partition_budgeted_in(&coarse, None, fm, rng, ws, meter);

    // Phase 2: project and refine on the original netlist.
    let mut p = project(h, &clustering, &coarse_p)?;
    let balance = BipartBalance::new(h, fm.balance_r);
    let mut _rebalance = 0usize;
    if !balance.is_partition_feasible(&p) {
        _rebalance = rebalance_bipart(h, &mut p, &balance, rng);
    }
    #[cfg(feature = "obs")]
    mlpart_obs::counter(
        "rebalance",
        &[("level", 0u64.into()), ("moves", _rebalance.into())],
    );
    meter.set_level_context(Some(0));
    let refine_r = refine_budgeted_in(h, &mut p, fm, rng, ws, meter);

    let result = TwoPhaseResult {
        cut: metrics::cut(h, &p),
        coarse_cut: coarse_r.cut,
        coarse_modules: coarse.num_modules(),
        refine: refine_r,
        truncation: meter.truncation(),
    };
    Ok((p, result))
}

/// [`two_phase_fm`] generalized to [`Constraints`]: fixed modules keep their
/// pinned side through clustering, the coarse partition, projection, and both
/// refinement runs, and balance follows the constraints' ε window instead of
/// `fm.balance_r`.
///
/// Only `k = 2` constraints are accepted — two-phase FM is a bipartitioning
/// baseline. Unconstrained runs are comparable rather than byte-identical to
/// [`two_phase_fm`]: the initial coarse partition is drawn by this driver
/// (so pins can seed it) rather than inside FM, which shifts the RNG
/// schedule.
///
/// # Examples
///
/// ```
/// use mlpart_core::two_phase::two_phase_fm_constrained;
/// use mlpart_cluster::MatchConfig;
/// use mlpart_fm::FmConfig;
/// use mlpart_hypergraph::{Constraints, HypergraphBuilder, ModuleId, rng::seeded_rng};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = HypergraphBuilder::with_unit_areas(32);
/// for i in 0..31 {
///     b.add_net([i, i + 1])?;
/// }
/// let h = b.build()?;
/// let c = Constraints::new(2, 0.2, vec![(ModuleId::new(0), 1)])?;
/// let mut rng = seeded_rng(3);
/// let (p, _) = two_phase_fm_constrained(&h, &FmConfig::default(), &MatchConfig::default(), &c, &mut rng);
/// assert_eq!(p.part(ModuleId::new(0)), 1);
/// # Ok(())
/// # }
/// ```
///
/// # Panics
///
/// Panics if `constraints.k() != 2` or a fixed module is out of range.
pub fn two_phase_fm_constrained(
    h: &Hypergraph,
    fm: &FmConfig,
    match_cfg: &MatchConfig,
    constraints: &Constraints,
    rng: &mut MlRng,
) -> (Partition, TwoPhaseResult) {
    let mut ws = RefineWorkspace::new();
    two_phase_fm_constrained_in(h, fm, match_cfg, constraints, rng, &mut ws)
}

/// [`two_phase_fm_constrained`] with caller-owned scratch.
pub fn two_phase_fm_constrained_in(
    h: &Hypergraph,
    fm: &FmConfig,
    match_cfg: &MatchConfig,
    constraints: &Constraints,
    rng: &mut MlRng,
    ws: &mut RefineWorkspace,
) -> (Partition, TwoPhaseResult) {
    two_phase_fm_constrained_budgeted_in(
        h,
        fm,
        match_cfg,
        constraints,
        rng,
        ws,
        &mut BudgetMeter::unlimited(),
    )
}

/// [`two_phase_fm_constrained_in`] under a cooperative execution budget.
pub fn two_phase_fm_constrained_budgeted_in(
    h: &Hypergraph,
    fm: &FmConfig,
    match_cfg: &MatchConfig,
    constraints: &Constraints,
    rng: &mut MlRng,
    ws: &mut RefineWorkspace,
    meter: &mut BudgetMeter,
) -> (Partition, TwoPhaseResult) {
    expect_valid(try_two_phase_fm_constrained_budgeted_in(
        h,
        fm,
        match_cfg,
        constraints,
        rng,
        ws,
        meter,
    ))
}

/// [`two_phase_fm_constrained_budgeted_in`] returning a typed error instead
/// of panicking.
///
/// # Errors
///
/// [`PipelineError::KMismatch`] when `constraints.k() != 2`,
/// [`PipelineError::Constraints`] when a fixed module is out of range, and
/// [`PipelineError::Coarsen`] for induction/projection failures.
pub fn try_two_phase_fm_constrained_budgeted_in(
    h: &Hypergraph,
    fm: &FmConfig,
    match_cfg: &MatchConfig,
    constraints: &Constraints,
    rng: &mut MlRng,
    ws: &mut RefineWorkspace,
    meter: &mut BudgetMeter,
) -> Result<(Partition, TwoPhaseResult), PipelineError> {
    if constraints.k() != 2 {
        return Err(PipelineError::KMismatch {
            context: "two-phase FM requires k = 2",
            expected: 2,
            got: constraints.k(),
        });
    }
    constraints.check_modules(h.num_modules())?;
    let fixed = constraints.fixed();
    let total = h.total_area();
    let target0 = total / 2;
    let epsilon = constraints.epsilon();
    #[cfg(feature = "obs")]
    let _obs_run = mlpart_obs::span(
        "two_phase_constrained",
        &[
            ("modules", h.num_modules().into()),
            ("fixed", fixed.len().into()),
        ],
    );
    let bounds_for = |net: &Hypergraph| {
        PartBounds::around_targets(&[target0, total - target0], total, net.max_area(), epsilon)
    };

    // Phase 1: cluster once (same-part pins may merge, cross-part pins may
    // not) and partition the induced netlist from a pin-seeded start.
    let clustering = if fixed.is_empty() {
        match_clusters(h, match_cfg, rng)
    } else {
        let mut seed: Vec<Option<PartId>> = vec![None; h.num_modules()];
        for &(v, p) in fixed {
            seed[v.index()] = Some(p);
        }
        match_clusters_parts(h, match_cfg, Some(seed.as_slice()), rng)
    };
    let coarse = induce(h, &clustering)?;
    let mut coarse_fixed: Vec<(ModuleId, PartId)> = fixed
        .iter()
        .map(|&(v, p)| (ModuleId::new(clustering.cluster_of(v) as usize), p))
        .collect();
    coarse_fixed.sort_unstable_by_key(|&(v, _)| v);
    coarse_fixed.dedup_by(|a, b| {
        debug_assert!(a.0 != b.0 || a.1 == b.1, "cross-part pins merged");
        a.0 == b.0
    });
    #[cfg(feature = "obs")]
    mlpart_obs::counter(
        "two_phase_coarse",
        &[("coarse_modules", coarse.num_modules().into())],
    );
    let coarse_bounds = bounds_for(&coarse);
    let coarse_mask = fixed_mask(&coarse_fixed, coarse.num_modules());
    meter.set_level_context(Some(1));
    let mut coarse_p = Partition::random_fixed(&coarse, 2, &coarse_fixed, rng);
    if !coarse_bounds.is_partition_feasible(&coarse_p) {
        let _ = rebalance_to_bounds(&coarse, &mut coarse_p, &coarse_fixed, &coarse_bounds, rng);
    }
    let coarse_r = refine_constrained_budgeted_in(
        &coarse,
        &mut coarse_p,
        fm,
        &coarse_bounds,
        &coarse_mask,
        rng,
        ws,
        meter,
    );

    // Phase 2: project and refine on the original netlist.
    let mut p = project(h, &clustering, &coarse_p)?;
    let bounds = bounds_for(h);
    let mut _rebalance = 0usize;
    if !bounds.is_partition_feasible(&p) {
        _rebalance = rebalance_to_bounds(h, &mut p, fixed, &bounds, rng);
    }
    #[cfg(feature = "obs")]
    mlpart_obs::counter(
        "rebalance",
        &[("level", 0u64.into()), ("moves", _rebalance.into())],
    );
    meter.set_level_context(Some(0));
    let mask = fixed_mask(fixed, h.num_modules());
    let refine_r = refine_constrained_budgeted_in(h, &mut p, fm, &bounds, &mask, rng, ws, meter);

    #[cfg(feature = "audit")]
    if mlpart_audit::enabled() {
        mlpart_audit::enforce(mlpart_audit::audit_partition(h, &p));
        mlpart_audit::enforce(mlpart_audit::audit_fixed_assignment(&p, fixed));
        let (lo, hi): (Vec<u64>, Vec<u64>) =
            (0..2u32).map(|q| (bounds.lo(q), bounds.hi(q))).unzip();
        mlpart_audit::enforce(mlpart_audit::audit_part_bounds(&p, &lo, &hi));
    }
    let result = TwoPhaseResult {
        cut: metrics::cut(h, &p),
        coarse_cut: coarse_r.cut,
        coarse_modules: coarse.num_modules(),
        refine: refine_r,
        truncation: meter.truncation(),
    };
    Ok((p, result))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlpart_fm::fm_partition;
    use mlpart_hypergraph::rng::seeded_rng;
    use mlpart_hypergraph::HypergraphBuilder;

    fn two_communities(half: usize) -> Hypergraph {
        let mut b = HypergraphBuilder::with_unit_areas(2 * half);
        for base in [0, half] {
            for i in 0..half {
                b.add_net([base + i, base + (i + 1) % half]).unwrap();
                b.add_net([base + i, base + (i + 3) % half]).unwrap();
            }
        }
        b.add_net([half - 1, half]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn produces_feasible_consistent_result() {
        let h = two_communities(50);
        let fm = FmConfig::default();
        let bal = BipartBalance::new(&h, fm.balance_r);
        let mut rng = seeded_rng(2);
        let (p, r) = two_phase_fm(&h, &fm, &MatchConfig::default(), &mut rng);
        assert!(p.validate(&h));
        assert!(bal.is_partition_feasible(&p));
        assert_eq!(r.cut, metrics::cut(&h, &p));
        assert!(r.coarse_modules < h.num_modules());
    }

    #[test]
    fn beats_or_matches_flat_fm_on_average() {
        let h = two_communities(80);
        let fm = FmConfig::default();
        let runs = 6;
        let flat: f64 = (0..runs)
            .map(|s| {
                let mut rng = seeded_rng(10 + s);
                fm_partition(&h, None, &fm, &mut rng).1.cut as f64
            })
            .sum::<f64>()
            / runs as f64;
        let two_phase: f64 = (0..runs)
            .map(|s| {
                let mut rng = seeded_rng(20 + s);
                two_phase_fm(&h, &fm, &MatchConfig::default(), &mut rng)
                    .1
                    .cut as f64
            })
            .sum::<f64>()
            / runs as f64;
        assert!(
            two_phase <= flat * 1.05,
            "two-phase {two_phase:.1} vs flat {flat:.1}"
        );
    }

    #[test]
    fn multilevel_beats_or_matches_two_phase_on_average() {
        // The paper's motivation for ML: one level of clustering is not
        // enough on clustered instances.
        // Both methods near-solve this easy instance, so compare best-of
        // (averages differ only by noise at this scale; the average gap is
        // what the Table IV harness measures on the full suite).
        let h = two_communities(100);
        let fm = FmConfig::default();
        let runs = 6;
        let two_phase = (0..runs)
            .map(|s| {
                let mut rng = seeded_rng(30 + s);
                two_phase_fm(&h, &fm, &MatchConfig::default(), &mut rng)
                    .1
                    .cut
            })
            .min()
            .expect("runs");
        let ml = (0..runs)
            .map(|s| {
                let mut rng = seeded_rng(40 + s);
                crate::ml_bipartition(&h, &crate::MlConfig::default(), &mut rng)
                    .1
                    .cut
            })
            .min()
            .expect("runs");
        assert!(ml <= two_phase, "ML {ml} vs two-phase {two_phase}");
    }

    #[test]
    fn budgeted_two_phase_truncates_and_stays_feasible() {
        use mlpart_fm::{Budget, BudgetLimit, BudgetMeter};
        let h = two_communities(50);
        let fm = FmConfig::default();
        let mut rng = seeded_rng(8);
        let mut ws = RefineWorkspace::new();
        let mut meter = BudgetMeter::new(&Budget {
            max_passes: Some(1),
            ..Budget::default()
        });
        let (p, r) = two_phase_fm_budgeted_in(
            &h,
            &fm,
            &MatchConfig::default(),
            &mut rng,
            &mut ws,
            &mut meter,
        );
        assert_eq!(
            r.truncation.expect("must truncate").limit,
            BudgetLimit::Passes
        );
        assert_eq!(r.refine.passes, 0, "the budget went to the coarse run");
        assert!(p.validate(&h));
        let bal = BipartBalance::new(&h, fm.balance_r);
        assert!(bal.is_partition_feasible(&p));
        assert_eq!(r.cut, metrics::cut(&h, &p));
    }

    #[test]
    fn deterministic_given_seed() {
        let h = two_communities(30);
        let run = |seed| {
            let mut rng = seeded_rng(seed);
            two_phase_fm(&h, &FmConfig::default(), &MatchConfig::default(), &mut rng)
        };
        let (p1, r1) = run(5);
        let (p2, r2) = run(5);
        assert_eq!(p1.assignment(), p2.assignment());
        assert_eq!(r1, r2);
    }

    #[test]
    fn constrained_two_phase_honors_pins_across_seeds() {
        let h = two_communities(50);
        let c =
            Constraints::new(2, 0.2, vec![(ModuleId::new(0), 1), (ModuleId::new(60), 0)]).unwrap();
        let bounds = PartBounds::from_epsilon(&h, 2, 0.2);
        for seed in 0..5 {
            let mut rng = seeded_rng(seed);
            let (p, r) = two_phase_fm_constrained(
                &h,
                &FmConfig::default(),
                &MatchConfig::default(),
                &c,
                &mut rng,
            );
            assert!(p.validate(&h));
            for &(v, part) in c.fixed() {
                assert_eq!(p.part(v), part, "seed {seed}");
            }
            assert!(bounds.is_partition_feasible(&p), "{:?}", p.part_areas());
            assert_eq!(r.cut, metrics::cut(&h, &p));
            assert!(r.coarse_modules < h.num_modules());
        }
    }

    #[test]
    fn constrained_two_phase_is_deterministic_given_seed() {
        let h = two_communities(30);
        let c = Constraints::new(2, 0.1, vec![(ModuleId::new(4), 1)]).unwrap();
        let run = |seed| {
            let mut rng = seeded_rng(seed);
            two_phase_fm_constrained(
                &h,
                &FmConfig::default(),
                &MatchConfig::default(),
                &c,
                &mut rng,
            )
        };
        let (p1, r1) = run(9);
        let (p2, r2) = run(9);
        assert_eq!(p1.assignment(), p2.assignment());
        assert_eq!(r1, r2);
    }

    #[test]
    #[should_panic(expected = "two-phase FM requires k = 2")]
    fn constrained_two_phase_rejects_kway_constraints() {
        let h = two_communities(8);
        let c = Constraints::unconstrained(3);
        let mut rng = seeded_rng(0);
        let _ = two_phase_fm_constrained(
            &h,
            &FmConfig::default(),
            &MatchConfig::default(),
            &c,
            &mut rng,
        );
    }
}
