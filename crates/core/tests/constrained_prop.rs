//! Property-based tests for the constraint-generic pipelines: on arbitrary
//! netlists with arbitrary pin sets, fixed modules never move through any of
//! the four drivers (ML, k-way, recursive general-k, two-phase), and the
//! legacy unconstrained entry points stay byte-identical to the
//! pre-refactor expected-cut fixtures below.

use mlpart_cluster::MatchConfig;
use mlpart_core::{
    ml_bipartition, ml_bipartition_constrained, ml_kway, ml_kway_constrained,
    recursive_ml_bisection, recursive_ml_partition, two_phase_fm, two_phase_fm_constrained,
    Constraints, MlConfig, MlKwayConfig,
};
use mlpart_fm::FmConfig;
use mlpart_hypergraph::rng::seeded_rng;
use mlpart_hypergraph::{metrics, Hypergraph, HypergraphBuilder, ModuleId, PartId};
use proptest::prelude::*;

fn arb_netlist() -> impl Strategy<Value = (Vec<u64>, Vec<Vec<usize>>)> {
    (8usize..48).prop_flat_map(|n| {
        let areas = proptest::collection::vec(1u64..4, n);
        let nets = proptest::collection::vec(proptest::collection::vec(0usize..n, 2..5), 1..70);
        (areas, nets)
    })
}

fn build(areas: Vec<u64>, nets: &[Vec<usize>]) -> Hypergraph {
    let mut b = HypergraphBuilder::new(areas);
    for net in nets {
        b.add_net(net.iter().copied()).expect("in range");
    }
    b.build().expect("valid")
}

/// Derives a deterministic pin set from raw proptest bits: module `i` is
/// pinned iff bit `i` of `pin_bits` is set, to part `i % k`. A wide ε keeps
/// the instance feasible for any such pin set.
fn pins_from_bits(n: usize, k: u32, pin_bits: u64) -> Vec<(ModuleId, PartId)> {
    (0..n.min(64))
        .filter(|&i| (pin_bits >> i) & 1 == 1)
        .map(|i| (ModuleId::new(i), i as u32 % k))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Pins survive the full ML V-cycle (coarsen, initial, refine back down)
    /// for every seed and pin set.
    #[test]
    fn ml_bipartition_constrained_never_moves_pins(
        (areas, nets) in arb_netlist(),
        pin_bits in 0u64..u64::MAX,
        seed in 0u64..200,
    ) {
        let h = build(areas, &nets);
        let fixed = pins_from_bits(h.num_modules(), 2, pin_bits);
        let c = Constraints::new(2, 2.0, fixed).expect("valid pins");
        let cfg = MlConfig { coarsen_threshold: 8, ..MlConfig::default() };
        let mut rng = seeded_rng(seed);
        let (p, r) = ml_bipartition_constrained(&h, &cfg, &c, &mut rng);
        prop_assert!(p.validate(&h));
        prop_assert_eq!(r.cut, metrics::cut(&h, &p));
        for &(v, part) in c.fixed() {
            prop_assert_eq!(p.part(v), part, "module {:?} moved", v);
        }
    }

    /// Same contract for the direct k-way driver.
    #[test]
    fn ml_kway_constrained_never_moves_pins(
        (areas, nets) in arb_netlist(),
        k in 2u32..5,
        pin_bits in 0u64..u64::MAX,
        seed in 0u64..200,
    ) {
        let h = build(areas, &nets);
        let fixed = pins_from_bits(h.num_modules(), k, pin_bits);
        let c = Constraints::new(k, 2.0, fixed).expect("valid pins");
        let cfg = MlKwayConfig { k, coarsen_threshold: 8, ..MlKwayConfig::default() };
        let mut rng = seeded_rng(seed);
        let (p, r) = ml_kway_constrained(&h, &cfg, &c, &mut rng);
        prop_assert!(p.validate(&h));
        prop_assert_eq!(r.cut, metrics::cut(&h, &p));
        for &(v, part) in c.fixed() {
            prop_assert_eq!(p.part(v), part, "module {:?} moved", v);
        }
    }

    /// Same contract for general k by recursive bisection, including
    /// non-powers of two.
    #[test]
    fn recursive_ml_partition_never_moves_pins(
        (areas, nets) in arb_netlist(),
        k in 2u32..7,
        pin_bits in 0u64..u64::MAX,
        seed in 0u64..200,
    ) {
        let h = build(areas, &nets);
        let fixed = pins_from_bits(h.num_modules(), k, pin_bits);
        let c = Constraints::new(k, 2.0, fixed).expect("valid pins");
        let cfg = MlConfig { coarsen_threshold: 8, ..MlConfig::default() };
        let mut rng = seeded_rng(seed);
        let (p, r) = recursive_ml_partition(&h, &cfg, &c, &mut rng);
        prop_assert!(p.validate(&h));
        prop_assert_eq!(p.k(), k);
        prop_assert_eq!(r.cut, metrics::cut(&h, &p));
        for &(v, part) in c.fixed() {
            prop_assert_eq!(p.part(v), part, "module {:?} moved", v);
        }
    }

    /// Same contract for the two-phase baseline.
    #[test]
    fn two_phase_constrained_never_moves_pins(
        (areas, nets) in arb_netlist(),
        pin_bits in 0u64..u64::MAX,
        seed in 0u64..200,
    ) {
        let h = build(areas, &nets);
        let fixed = pins_from_bits(h.num_modules(), 2, pin_bits);
        let c = Constraints::new(2, 2.0, fixed).expect("valid pins");
        let mut rng = seeded_rng(seed);
        let (p, r) = two_phase_fm_constrained(
            &h, &FmConfig::default(), &MatchConfig::default(), &c, &mut rng,
        );
        prop_assert!(p.validate(&h));
        prop_assert_eq!(r.cut, metrics::cut(&h, &p));
        for &(v, part) in c.fixed() {
            prop_assert_eq!(p.part(v), part, "module {:?} moved", v);
        }
    }

    /// Each constrained driver is a pure function of (netlist, constraints,
    /// seed).
    #[test]
    fn constrained_drivers_deterministic(
        (areas, nets) in arb_netlist(),
        pin_bits in 0u64..u64::MAX,
        seed in 0u64..200,
    ) {
        let h = build(areas, &nets);
        let fixed = pins_from_bits(h.num_modules(), 2, pin_bits);
        let c = Constraints::new(2, 2.0, fixed).expect("valid pins");
        let cfg = MlConfig { coarsen_threshold: 8, ..MlConfig::default() };
        let run = |s| {
            let mut rng = seeded_rng(s);
            ml_bipartition_constrained(&h, &cfg, &c, &mut rng)
        };
        let (p1, r1) = run(seed);
        let (p2, r2) = run(seed);
        prop_assert_eq!(p1.assignment(), p2.assignment());
        prop_assert_eq!(r1, r2);
    }
}

/// A deterministic clustered instance shared by the fixture tests: two
/// 64-module ring communities with a single bridge net.
fn fixture_netlist() -> Hypergraph {
    let half = 64;
    let mut b = HypergraphBuilder::with_unit_areas(2 * half);
    for base in [0, half] {
        for i in 0..half {
            b.add_net([base + i, base + (i + 1) % half]).unwrap();
            b.add_net([base + i, base + (i + 3) % half]).unwrap();
        }
    }
    b.add_net([half - 1, half]).unwrap();
    b.build().unwrap()
}

/// The constraint refactor must not perturb the legacy entry points: these
/// exact cut values were recorded from the pre-refactor code on the fixture
/// netlist and pin the byte-identity contract for unconstrained runs.
#[test]
fn legacy_cuts_match_prerefactor_fixtures() {
    let h = fixture_netlist();

    for (seed, &expected) in FIXTURE_ML_CUTS.iter().enumerate() {
        let mut rng = seeded_rng(seed as u64);
        let (_, r) = ml_bipartition(&h, &MlConfig::default(), &mut rng);
        assert_eq!(r.cut, expected, "ml_bipartition seed {seed}");
    }
    for (seed, &expected) in FIXTURE_KWAY_CUTS.iter().enumerate() {
        let mut rng = seeded_rng(seed as u64);
        let (_, r) = ml_kway(&h, &MlKwayConfig::default(), &[], &mut rng);
        assert_eq!(r.cut, expected, "ml_kway seed {seed}");
    }
    for (seed, &expected) in FIXTURE_RECURSIVE_CUTS.iter().enumerate() {
        let mut rng = seeded_rng(seed as u64);
        let (_, r) = recursive_ml_bisection(&h, 2, &MlConfig::default(), &mut rng);
        assert_eq!(r.cut, expected, "recursive_ml_bisection seed {seed}");
    }
    for (seed, &expected) in FIXTURE_TWO_PHASE_CUTS.iter().enumerate() {
        let mut rng = seeded_rng(seed as u64);
        let (_, r) = two_phase_fm(&h, &FmConfig::default(), &MatchConfig::default(), &mut rng);
        assert_eq!(r.cut, expected, "two_phase_fm seed {seed}");
    }
}

/// Expected cuts, seeds 0..4 in order, per legacy pipeline. Regenerate with
/// `cargo test -p mlpart-core --test constrained_prop -- --nocapture
/// print_fixture_cuts --ignored` only when a PR *intends* to change legacy
/// behavior.
const FIXTURE_ML_CUTS: [u64; 4] = [1, 1, 1, 1];
const FIXTURE_KWAY_CUTS: [u64; 4] = [17, 17, 17, 17];
const FIXTURE_RECURSIVE_CUTS: [u64; 4] = [17, 17, 17, 17];
const FIXTURE_TWO_PHASE_CUTS: [u64; 4] = [1, 1, 16, 1];

/// Prints the fixture values; run ignored to regenerate the constants above.
#[test]
#[ignore]
fn print_fixture_cuts() {
    let h = fixture_netlist();
    let ml: Vec<u64> = (0..4)
        .map(|s| {
            let mut rng = seeded_rng(s);
            ml_bipartition(&h, &MlConfig::default(), &mut rng).1.cut
        })
        .collect();
    let kway: Vec<u64> = (0..4)
        .map(|s| {
            let mut rng = seeded_rng(s);
            ml_kway(&h, &MlKwayConfig::default(), &[], &mut rng).1.cut
        })
        .collect();
    let rec: Vec<u64> = (0..4)
        .map(|s| {
            let mut rng = seeded_rng(s);
            recursive_ml_bisection(&h, 2, &MlConfig::default(), &mut rng)
                .1
                .cut
        })
        .collect();
    let tp: Vec<u64> = (0..4)
        .map(|s| {
            let mut rng = seeded_rng(s);
            two_phase_fm(&h, &FmConfig::default(), &MatchConfig::default(), &mut rng)
                .1
                .cut
        })
        .collect();
    println!("ML {ml:?} KWAY {kway:?} RECURSIVE {rec:?} TWO_PHASE {tp:?}");
}
