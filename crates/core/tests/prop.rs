//! Property-based tests for the full multilevel pipeline: on arbitrary
//! netlists, `ml_bipartition` and `ml_kway` always produce valid, feasible,
//! consistently-reported partitions, the hierarchy respects its threshold,
//! and the whole pipeline is deterministic per seed.

use mlpart_core::{ml_bipartition, ml_bipartition_in, ml_kway, Hierarchy, MlConfig, MlKwayConfig};
use mlpart_fm::RefineWorkspace;
use mlpart_hypergraph::rng::seeded_rng;
use mlpart_hypergraph::{metrics, BipartBalance, Hypergraph, HypergraphBuilder, KwayBalance};
use proptest::prelude::*;

fn arb_netlist() -> impl Strategy<Value = (Vec<u64>, Vec<Vec<usize>>)> {
    (4usize..60).prop_flat_map(|n| {
        let areas = proptest::collection::vec(1u64..4, n);
        let nets = proptest::collection::vec(proptest::collection::vec(0usize..n, 2..5), 1..90);
        (areas, nets)
    })
}

fn build(areas: Vec<u64>, nets: &[Vec<usize>]) -> Hypergraph {
    let mut b = HypergraphBuilder::new(areas);
    for net in nets {
        b.add_net(net.iter().copied()).expect("in range");
    }
    b.build().expect("valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn ml_bipartition_invariants(
        (areas, nets) in arb_netlist(),
        ratio in 0.2f64..=1.0,
        clip in any::<bool>(),
        seed in 0u64..500,
    ) {
        let h = build(areas, &nets);
        let base = if clip { MlConfig::clip() } else { MlConfig::fm() };
        let cfg = MlConfig {
            coarsen_threshold: 8,
            ..base.with_ratio(ratio)
        };
        let mut rng = seeded_rng(seed);
        let (p, r) = ml_bipartition(&h, &cfg, &mut rng);
        prop_assert!(p.validate(&h));
        prop_assert_eq!(r.cut, metrics::cut(&h, &p));
        let balance = BipartBalance::new(&h, cfg.fm.balance_r);
        prop_assert!(balance.is_partition_feasible(&p), "{:?}", p.part_areas());
        prop_assert_eq!(r.level_sizes.len(), r.levels + 1);
        prop_assert_eq!(r.level_sizes[0], h.num_modules());
        // Levels strictly shrink.
        prop_assert!(r.level_sizes.windows(2).all(|w| w[1] < w[0]));
    }

    #[test]
    fn ml_kway_invariants(
        (areas, nets) in arb_netlist(),
        k in 2u32..5,
        seed in 0u64..500,
    ) {
        let h = build(areas, &nets);
        let cfg = MlKwayConfig {
            k,
            coarsen_threshold: 10,
            ..MlKwayConfig::default()
        };
        let mut rng = seeded_rng(seed);
        let (p, r) = ml_kway(&h, &cfg, &[], &mut rng);
        prop_assert!(p.validate(&h));
        prop_assert_eq!(r.cut, metrics::cut(&h, &p));
        prop_assert_eq!(r.sum_of_degrees, metrics::sum_of_spans_minus_one(&h, &p));
        let balance = KwayBalance::new(&h, k, cfg.kway.balance_r);
        prop_assert!(balance.is_partition_feasible(&p), "{:?}", p.part_areas());
    }

    #[test]
    fn hierarchy_threshold_or_stall(
        (areas, nets) in arb_netlist(),
        threshold in 4usize..20,
        seed in 0u64..200,
    ) {
        let h = build(areas, &nets);
        let cfg = MlConfig {
            coarsen_threshold: threshold,
            ..MlConfig::default()
        };
        let mut rng = seeded_rng(seed);
        let hier = Hierarchy::coarsen(&h, &cfg, &[], &mut rng);
        // Either the coarsest netlist is at/below T, or coarsening stopped
        // on the stall guard — in which case one more Match pass would not
        // meaningfully shrink it; verify levels at least never grow.
        let sizes = hier.level_sizes(&h);
        prop_assert!(sizes.windows(2).all(|w| w[1] < w[0]), "{sizes:?}");
        for i in 1..=hier.num_levels() {
            prop_assert_eq!(hier.level(i).total_area(), h.total_area());
        }
    }

    #[test]
    fn pipeline_deterministic(
        (areas, nets) in arb_netlist(),
        seed in 0u64..100,
    ) {
        let h = build(areas, &nets);
        let cfg = MlConfig::clip().with_ratio(0.5).with_threshold(8);
        let run = |s| {
            let mut rng = seeded_rng(s);
            ml_bipartition(&h, &cfg, &mut rng)
        };
        let (p1, r1) = run(seed);
        let (p2, r2) = run(seed);
        prop_assert_eq!(p1.assignment(), p2.assignment());
        prop_assert_eq!(r1, r2);
    }
}

/// Fixed-seed regression for the initial-partitioning multi-try loop: the
/// loop keeps the *first* try that reaches the minimum cut (strict `<` in
/// `ml_bipartition`), so with `initial_tries > 1` two runs with the same
/// seed must be bit-identical even when later tries tie the winning cut.
#[test]
fn multi_try_initial_partitioning_is_deterministic() {
    let circuit = mlpart_gen::by_name("balu").expect("in suite");
    let h = circuit.generate(1997);
    let cfg = MlConfig {
        initial_tries: 4,
        ..MlConfig::clip().with_ratio(0.5)
    };
    let run = || {
        let mut rng = seeded_rng(42);
        ml_bipartition(&h, &cfg, &mut rng)
    };
    let (p1, r1) = run();
    let (p2, r2) = run();
    assert_eq!(p1.assignment(), p2.assignment());
    assert_eq!(r1, r2);

    // A reused workspace must not perturb the tie-break either.
    let mut ws = RefineWorkspace::new();
    let mut rng = seeded_rng(42);
    let (p3, r3) = ml_bipartition_in(&h, &cfg, &mut rng, &mut ws);
    let mut rng = seeded_rng(42);
    let (p4, r4) = ml_bipartition_in(&h, &cfg, &mut rng, &mut ws);
    assert_eq!(p1.assignment(), p3.assignment());
    assert_eq!(p3.assignment(), p4.assignment());
    assert_eq!(r1, r3);
    assert_eq!(r3, r4);
}
