//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this path-replaced
//! crate implements the subset of the criterion 0.5 API the workspace's
//! benches use: `criterion_group!`/`criterion_main!`, benchmark groups with
//! `sample_size`/`throughput`/`bench_function`/`bench_with_input`,
//! [`BenchmarkId`], [`Throughput`], and [`black_box`].
//!
//! Measurement model: each benchmark is warmed up, then timed for
//! `sample_size` samples; every sample runs the routine enough times to take
//! roughly [`TARGET_SAMPLE_NANOS`]. Mean/min/max ns-per-iteration are
//! printed to stdout. When the `MLPART_BENCH_JSON` environment variable
//! names a file, all results are also appended there as JSON lines —
//! `{"group", "bench", "mean_ns", "min_ns", "max_ns", "samples", "throughput_elems"}`
//! — which is what the repository's recorded `BENCH_*.json` files contain.

#![warn(missing_docs)]

use std::fmt::Write as _;
use std::io::Write as _;
use std::time::Instant;

pub use std::hint::black_box;

/// Target wall-clock duration of one timed sample.
pub const TARGET_SAMPLE_NANOS: u64 = 25_000_000;

/// Top-level bench harness handle passed to every bench function.
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<BenchRecord>,
}

/// One finished measurement.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Group name (empty for ungrouped benches).
    pub group: String,
    /// Benchmark id within the group.
    pub bench: String,
    /// Mean nanoseconds per iteration.
    pub mean_ns: f64,
    /// Fastest sample, ns per iteration.
    pub min_ns: f64,
    /// Slowest sample, ns per iteration.
    pub max_ns: f64,
    /// Number of timed samples.
    pub samples: usize,
    /// Optional throughput denominator (elements per iteration).
    pub throughput_elems: Option<u64>,
}

impl Criterion {
    /// Accepts (and ignores) command-line configuration, like the real crate.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
            throughput: None,
        }
    }

    /// Benches a routine outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_bench(self, String::new(), id.0, 20, None, f);
        self
    }

    fn record(&mut self, rec: BenchRecord) {
        let full_name = format!(
            "{}{}{}",
            rec.group,
            if rec.group.is_empty() { "" } else { "/" },
            rec.bench
        );
        let mut line = format!(
            "{full_name:<40} mean {:>12} min {:>12} max {:>12} ({} samples",
            format_ns(rec.mean_ns),
            format_ns(rec.min_ns),
            format_ns(rec.max_ns),
            rec.samples,
        );
        if let Some(elems) = rec.throughput_elems {
            let per_sec = elems as f64 / (rec.mean_ns / 1e9);
            let _ = write!(line, ", {per_sec:.0} elem/s");
        }
        line.push(')');
        println!("{line}");
        self.results.push(rec);
    }

    fn flush_json(&self) {
        let Ok(path) = std::env::var("MLPART_BENCH_JSON") else {
            return;
        };
        if path.is_empty() {
            return;
        }
        let Ok(mut file) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
        else {
            eprintln!("criterion shim: cannot open {path}");
            return;
        };
        for r in &self.results {
            let throughput = r
                .throughput_elems
                .map_or("null".to_owned(), |t| t.to_string());
            let _ = writeln!(
                file,
                "{{\"group\":\"{}\",\"bench\":\"{}\",\"mean_ns\":{:.1},\"min_ns\":{:.1},\"max_ns\":{:.1},\"samples\":{},\"throughput_elems\":{}}}",
                r.group, r.bench, r.mean_ns, r.min_ns, r.max_ns, r.samples, throughput
            );
        }
    }
}

impl Drop for Criterion {
    fn drop(&mut self) {
        self.flush_json();
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// A group of related benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares the per-iteration throughput denominator.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benches a routine under the given id.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_bench(
            self.criterion,
            self.name.clone(),
            id.0,
            self.sample_size,
            self.throughput,
            f,
        );
        self
    }

    /// Benches a routine that receives a borrowed input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        run_bench(
            self.criterion,
            self.name.clone(),
            id.0,
            self.sample_size,
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group (results are recorded as each bench finishes).
    pub fn finish(&mut self) {}
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Creates an id of the form `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }

    /// Creates an id that is just the displayed parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_owned())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Throughput denominator for rate reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

impl Throughput {
    fn elements(self) -> Option<u64> {
        match self {
            Throughput::Elements(e) => Some(e),
            Throughput::Bytes(b) => Some(b),
        }
    }
}

/// Passed to the routine being benched; call [`Bencher::iter`].
#[derive(Debug, Default)]
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<f64>,
    mode: BencherMode,
}

#[derive(Debug, Default, PartialEq, Eq)]
enum BencherMode {
    /// Calibration run: determine iterations per sample.
    #[default]
    Calibrate,
    /// Timed run: collect one sample per `iter` call batch.
    Measure,
}

impl Bencher {
    /// Runs the routine, timing it according to the harness phase.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        match self.mode {
            BencherMode::Calibrate => {
                // One untimed warmup call, then scale iterations so a sample
                // lasts about TARGET_SAMPLE_NANOS.
                let start = Instant::now();
                black_box(routine());
                let one = start.elapsed().as_nanos().max(1) as u64;
                self.iters_per_sample = (TARGET_SAMPLE_NANOS / one).clamp(1, 1_000_000);
            }
            BencherMode::Measure => {
                let start = Instant::now();
                for _ in 0..self.iters_per_sample {
                    black_box(routine());
                }
                let total = start.elapsed().as_nanos() as f64;
                self.samples.push(total / self.iters_per_sample as f64);
            }
        }
    }
}

fn run_bench<F>(
    criterion: &mut Criterion,
    group: String,
    bench: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher::default();
    f(&mut b); // calibration pass
    b.mode = BencherMode::Measure;
    for _ in 0..sample_size {
        f(&mut b);
    }
    let samples = &b.samples;
    if samples.is_empty() {
        eprintln!("criterion shim: bench {group}/{bench} never called iter()");
        return;
    }
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
    let max = samples.iter().copied().fold(0.0f64, f64::max);
    criterion.record(BenchRecord {
        group,
        bench,
        mean_ns: mean,
        min_ns: min,
        max_ns: max,
        samples: samples.len(),
        throughput_elems: throughput.and_then(Throughput::elements),
    });
}

/// Declares a bench group function, mirroring the real crate's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, mirroring the real crate's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_records() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3);
            g.throughput(Throughput::Elements(10));
            g.bench_function("fib", |b| {
                b.iter(|| (0..100u64).sum::<u64>());
            });
            g.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &x| {
                b.iter(|| x * 2);
            });
            g.finish();
        }
        assert_eq!(c.results.len(), 2);
        assert_eq!(c.results[0].bench, "fib");
        assert_eq!(c.results[0].samples, 3);
        assert!(c.results[0].mean_ns > 0.0);
        assert_eq!(c.results[1].bench, "7");
        c.results.clear(); // nothing to flush on drop in tests
    }

    #[test]
    fn benchmark_id_forms() {
        assert_eq!(BenchmarkId::new("a", 3).0, "a/3");
        assert_eq!(BenchmarkId::from_parameter("x").0, "x");
        assert_eq!(BenchmarkId::from("lit").0, "lit");
    }
}
