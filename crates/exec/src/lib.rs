//! Deterministic parallel multi-start execution with per-start fault
//! isolation.
//!
//! The paper's headline numbers are best/average statistics over many
//! independent starts (100 starts of FM/CLIP against a handful of ML starts,
//! Tables III–V), and multi-start fan-out is embarrassingly parallel: each
//! start runs from its own seed stream (`child_seed(base, i)`) and never
//! communicates with the others. This crate exploits that with a std-only
//! work-stealing runner whose output is **bit-identical at every thread
//! count**, including one.
//!
//! Why thread count cannot change results:
//!
//! 1. Start `i` always derives its PRNG from `child_seed(base_seed, i)` —
//!    the SplitMix64 streams are a function of the start index alone, never
//!    of which worker claims the start or in what order.
//! 2. Each worker owns a private long-lived [`RefineWorkspace`]; workspace
//!    reuse is bit-identical to fresh allocation (the `*_in` entry-point
//!    contract), so which starts share a workspace is unobservable.
//! 3. Results are scattered into a slot vector indexed by start, so the
//!    returned `Vec` is in start order regardless of completion order, and
//!    reductions such as [`best_index_by_key`] break ties by the lowest
//!    start index — a total order independent of scheduling.
//!
//! # Fault isolation
//!
//! Independence also makes starts a natural *fault* boundary:
//! [`try_run_starts`] runs each start under `catch_unwind`, records a panic
//! as a structured [`StartFailure`] (start index, panic message, and the
//! deepest observability phase when tracing is on), and reduces over the
//! surviving starts. Because the winner is still chosen by (cut, lowest
//! start index), the surviving-start result is **bit-identical to a
//! sequential run with the failed starts removed** — at every thread count.
//! A batch where every start fails is a typed [`ExecError`], not a panic.
//!
//! ```
//! use mlpart_exec::run_starts;
//! use rand::Rng;
//!
//! let job = |rng: &mut mlpart_hypergraph::rng::MlRng,
//!            _ws: &mut mlpart_fm::RefineWorkspace| rng.gen_range(0..1000u64);
//! let (seq, _) = run_starts(16, 42, 1, &job);
//! let (par, _) = run_starts(16, 42, 4, &job);
//! assert_eq!(seq, par); // bit-identical at any thread count
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use mlpart_fm::RefineWorkspace;
use mlpart_hypergraph::rng::{child_seed, seeded_rng, MlRng};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

pub mod supervise;

pub use supervise::{
    run_supervised, Attempt, PriorStart, ResumeState, RetryPolicy, RetryRecord, Sink, StartDone,
    SupervisedBatch, ATTEMPT_STRIDE,
};

/// Per-start observability payload: each start's events are captured on
/// whichever worker ran it, then merged into the caller's trace **in start
/// order** — so the merged stream's content is thread-count-invariant, the
/// same argument as for the result vector itself.
#[cfg(feature = "obs")]
type StartTrace = Option<mlpart_obs::Trace>;
/// Zero-sized stand-in so the runner's plumbing is feature-independent.
#[cfg(not(feature = "obs"))]
type StartTrace = ();

/// Splices one start's captured trace into the calling thread's recorder as
/// a `start` span. No-op when the start recorded nothing.
#[cfg(feature = "obs")]
fn append_start_trace(i: usize, trace: &StartTrace) {
    if let Some(t) = trace {
        mlpart_obs::append_trace("start", &[("start", (i as u64).into())], t);
    }
}
#[cfg(not(feature = "obs"))]
fn append_start_trace(_i: usize, _trace: &StartTrace) {}

/// Best-effort phase attribution for a failed start: the innermost span
/// open when the panic began unwinding. Span guards close during the unwind
/// (their `Drop` records `End`), so a drained stack is recovered from the
/// trailing run of `End` events the unwind appended.
#[cfg(feature = "obs")]
fn failure_phase(trace: &StartTrace) -> Option<String> {
    use mlpart_obs::EvKind;
    let t = trace.as_ref()?;
    let mut stack: Vec<&'static str> = Vec::new();
    for e in &t.events {
        match e.kind {
            EvKind::Begin => stack.push(e.name),
            EvKind::End => {
                stack.pop();
            }
            EvKind::Counter => {}
        }
    }
    if let Some(name) = stack.last() {
        // A panic with the unwind trace cut short (or a non-unwinding
        // recorder) leaves the true open stack behind.
        return Some((*name).to_string());
    }
    // The first End of the trailing End-run names the phase that was
    // closing when the trace stopped.
    let trailing = t
        .events
        .iter()
        .rev()
        .take_while(|e| e.kind == EvKind::End)
        .count();
    t.events
        .get(t.events.len() - trailing)
        .map(|e| e.name.to_string())
}
#[cfg(not(feature = "obs"))]
fn failure_phase(_trace: &StartTrace) -> Option<String> {
    None
}

/// Renders a caught panic payload as a message (the common `&str` / `String`
/// payloads verbatim, anything else a placeholder).
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// One start that panicked, recorded instead of propagated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StartFailure {
    /// The start index that failed.
    pub start: usize,
    /// The panic payload message.
    pub message: String,
    /// The innermost observability span open at the panic, when tracing was
    /// active (`None` otherwise) — e.g. `"fm_refine"` or `"level"`.
    pub phase: Option<String>,
}

impl std::fmt::Display for StartFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.phase {
            Some(p) => write!(
                f,
                "start {} panicked in {}: {}",
                self.start, p, self.message
            ),
            None => write!(f, "start {} panicked: {}", self.start, self.message),
        }
    }
}

/// A batch that completed with at least one surviving start.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchResult<T> {
    /// Surviving starts as `(start index, value)`, in start order.
    pub survivors: Vec<(usize, T)>,
    /// Failed starts, in start order.
    pub failures: Vec<StartFailure>,
}

impl<T> BatchResult<T> {
    /// Reduces the survivors to the best value under `key`: the minimal key,
    /// ties broken by the **lowest start index**. Because survivors are in
    /// start order, this returns exactly what a sequential loop over the
    /// surviving start indices would have kept — the invariance the
    /// fault-isolation tests pin down.
    ///
    /// # Panics
    ///
    /// Panics if there are no survivors ([`try_run_starts`] never returns an
    /// empty survivor set).
    pub fn into_best_by_key<K, F>(mut self, key: F) -> RunOutcome<T>
    where
        K: Ord,
        F: Fn(&T) -> K,
    {
        let best_pos = best_index_by_key(&self.survivors, |(_, v)| key(v));
        let (best_start, best) = self.survivors.swap_remove(best_pos);
        RunOutcome {
            best,
            best_start,
            failures: self.failures,
        }
    }
}

/// The reduced outcome of a fault-isolated batch: the winning start plus the
/// failures that were tolerated along the way.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunOutcome<T> {
    /// The winning survivor's value.
    pub best: T,
    /// The winning survivor's start index.
    pub best_start: usize,
    /// Starts that panicked and were excluded from the reduction.
    pub failures: Vec<StartFailure>,
}

/// Why a batch produced no usable result.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ExecError {
    /// Every start panicked; the per-start failures are preserved.
    AllStartsFailed {
        /// One failure per start, in start order.
        failures: Vec<StartFailure>,
    },
    /// The runner itself lost results — a worker died outside the per-start
    /// isolation boundary or a start index was never claimed. This indicates
    /// a harness bug, not a job failure.
    Lost {
        /// Human-readable description of what was lost.
        detail: String,
    },
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::AllStartsFailed { failures } => {
                write!(f, "all {} start(s) failed", failures.len())?;
                if let Some(first) = failures.first() {
                    write!(f, "; first: {first}")?;
                }
                Ok(())
            }
            ExecError::Lost { detail } => write!(f, "execution lost results: {detail}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Timing telemetry for one batch.
///
/// The paper's tables report *total CPU for 100 runs*; a parallel batch
/// finishes in less wall-clock than that, so the two notions must be kept
/// apart: `wall_secs` is what the user waits, `cpu_secs` approximates what
/// the paper's time columns mean (the per-start times summed over all
/// starts, regardless of which thread ran them).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecTiming {
    /// Elapsed wall-clock seconds for the whole batch.
    pub wall_secs: f64,
    /// Sum of the per-start wall-clock seconds (a CPU-time proxy: each
    /// start runs on one thread without blocking).
    pub cpu_secs: f64,
}

/// Picks the number of worker threads when the caller has no preference:
/// the machine's available parallelism, or 1 if that cannot be determined.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Per-start outcome on the wire between worker and scatter.
type StartSlot<T> = (Result<T, String>, StartTrace);

/// What one worker thread hands back: every start it claimed, with the
/// start index, its per-start seconds, and the outcome slot.
type WorkerYield<T> = Vec<(usize, f64, StartSlot<T>)>;

/// Runs `runs` independent starts of `job` on `threads` worker threads with
/// **per-start panic isolation**, returning survivors and failures in start
/// order plus timing telemetry.
///
/// Each start runs under `catch_unwind`: a panicking start becomes a
/// [`StartFailure`] (with the panic message and, under `obs`, the innermost
/// open span as its phase) while every other start proceeds normally. A
/// worker whose start panicked replaces its workspace with a fresh one —
/// fresh allocation is bit-identical to reuse by the `*_in` contract, so
/// isolation cannot change any surviving start's result. Consequently the
/// surviving results are bit-identical to a sequential run over just the
/// surviving start indices, at every thread count.
///
/// Start `i` receives a PRNG seeded with `child_seed(base_seed, i)` and its
/// worker's long-lived [`RefineWorkspace`]. Starts are distributed by an
/// atomic next-start counter — idle workers steal whatever start is next —
/// but the returned vectors are in start order for every `threads` value.
///
/// # Errors
///
/// [`ExecError::AllStartsFailed`] when no start survived;
/// [`ExecError::Lost`] when the runner lost results (worker death outside
/// the isolation boundary, or an unclaimed start index).
///
/// # Panics
///
/// Panics if `runs == 0` or `threads == 0` (caller bugs, not input faults).
pub fn try_run_starts<T, F>(
    runs: usize,
    base_seed: u64,
    threads: usize,
    job: &F,
) -> Result<(BatchResult<T>, ExecTiming), ExecError>
where
    T: Send,
    F: Fn(&mut MlRng, &mut RefineWorkspace) -> T + Sync,
{
    assert!(runs > 0, "need at least one start");
    assert!(threads > 0, "need at least one thread");
    let wall = Instant::now();

    // Runs one start under the isolation boundary. The fault site fires
    // *inside* catch_unwind and *inside* the obs capture, so injected
    // per-start panics exercise exactly the recovery path a real panic
    // takes, partial trace included.
    let run_one = |i: usize, ws: &mut RefineWorkspace| -> (f64, StartSlot<T>) {
        let start = Instant::now();
        let mut rng = seeded_rng(child_seed(base_seed, i as u64));
        let body = AssertUnwindSafe(|| {
            #[cfg(feature = "fault")]
            mlpart_fault::maybe_panic("start", i as u64);
            job(&mut rng, ws)
        });
        #[cfg(feature = "obs")]
        let (result, trace) = mlpart_obs::capture(|| catch_unwind(body));
        #[cfg(not(feature = "obs"))]
        let (result, trace) = (catch_unwind(body), ());
        let secs = start.elapsed().as_secs_f64();
        let result = result.map_err(panic_message);
        if result.is_err() {
            // The unwound job may have left the workspace mid-mutation;
            // a fresh workspace is bit-identical to a reused one (the
            // `*_in` contract), so recovery is unobservable to later
            // starts on this worker.
            *ws = RefineWorkspace::new();
        }
        (secs, (result, trace))
    };

    let mut cpu_secs = 0.0;
    let mut slots: Vec<Option<StartSlot<T>>>;

    if threads == 1 {
        // Single-thread fast path: no spawn, identical seed streams and
        // identical isolation boundary.
        let mut ws = RefineWorkspace::new();
        slots = Vec::with_capacity(runs);
        for i in 0..runs {
            let (secs, slot) = run_one(i, &mut ws);
            cpu_secs += secs;
            slots.push(Some(slot));
        }
    } else {
        let next = AtomicUsize::new(0);
        let workers = threads.min(runs);
        let locals: Vec<Result<WorkerYield<T>, ExecError>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(|| {
                        let mut ws = RefineWorkspace::new();
                        let mut local = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= runs {
                                break;
                            }
                            let (secs, slot) = run_one(i, &mut ws);
                            local.push((i, secs, slot));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join().map_err(|_| ExecError::Lost {
                        detail: "worker thread died outside the per-start isolation boundary"
                            .to_string(),
                    })
                })
                .collect()
        });

        // Scatter into start order; completion order is irrelevant.
        slots = (0..runs).map(|_| None).collect();
        #[cfg(feature = "audit")]
        let mut claims = vec![0u32; runs];
        for local in locals {
            for (i, secs, slot) in local? {
                cpu_secs += secs;
                #[cfg(feature = "audit")]
                if let Some(c) = claims.get_mut(i) {
                    *c += 1;
                }
                // i is a start index handed to the worker from 0..runs, so
                // it is always in range; a lost write is caught by the
                // `Lost` check below.
                if let Some(s) = slots.get_mut(i) {
                    *s = Some(slot);
                }
            }
        }
        // Work-stealing audit: every start index must have been claimed by
        // exactly one worker (a duplicate or dropped claim would silently
        // break the determinism contract before the `Lost` check fires).
        #[cfg(feature = "audit")]
        if mlpart_audit::enabled() {
            mlpart_audit::enforce(mlpart_audit::audit_start_claims(&claims));
        }
    }

    let mut survivors: Vec<(usize, T)> = Vec::with_capacity(runs);
    let mut failures: Vec<StartFailure> = Vec::new();
    for (i, slot) in slots.into_iter().enumerate() {
        let (result, trace) = slot.ok_or_else(|| ExecError::Lost {
            detail: format!("start {i} was never claimed by any worker"),
        })?;
        // Merge per-start streams in start order — failed starts contribute
        // their partial trace, so a panic is visible in the timeline.
        append_start_trace(i, &trace);
        match result {
            Ok(value) => survivors.push((i, value)),
            Err(message) => failures.push(StartFailure {
                start: i,
                message,
                phase: failure_phase(&trace),
            }),
        }
    }
    let timing = ExecTiming {
        wall_secs: wall.elapsed().as_secs_f64(),
        cpu_secs,
    };
    if survivors.is_empty() {
        return Err(ExecError::AllStartsFailed { failures });
    }
    Ok((
        BatchResult {
            survivors,
            failures,
        },
        timing,
    ))
}

/// Runs `runs` independent starts of `job` on `threads` worker threads and
/// returns the per-start results **in start order** plus timing telemetry.
///
/// The non-isolating wrapper over [`try_run_starts`]: any start failure (or
/// lost result) propagates as a panic, preserving the historical contract
/// for callers that treat a panicking job as a programming error.
///
/// # Panics
///
/// Panics if `runs == 0`, `threads == 0`, or any start panics.
pub fn run_starts<T, F>(
    runs: usize,
    base_seed: u64,
    threads: usize,
    job: &F,
) -> (Vec<T>, ExecTiming)
where
    T: Send,
    F: Fn(&mut MlRng, &mut RefineWorkspace) -> T + Sync,
{
    match try_run_starts(runs, base_seed, threads, job) {
        Ok((batch, timing)) => {
            if let Some(f) = batch.failures.first() {
                panic!("{f}");
            }
            (
                batch.survivors.into_iter().map(|(_, v)| v).collect(),
                timing,
            )
        }
        Err(e) => panic!("{e}"),
    }
}

/// Index of the best element under `key`: the minimal key, ties broken by
/// the **lowest index**. Applied to [`run_starts`] output (start order),
/// this is the deterministic reduction that makes a parallel multi-start
/// batch return the same winner as the sequential loop it replaced.
///
/// # Panics
///
/// Panics if `items` is empty.
pub fn best_index_by_key<T, K, F>(items: &[T], key: F) -> usize
where
    K: Ord,
    F: Fn(&T) -> K,
{
    assert!(!items.is_empty(), "cannot reduce an empty batch");
    let mut best = 0usize;
    let mut best_key: Option<K> = None;
    for (i, item) in items.iter().enumerate() {
        let k = key(item);
        // Strict `<` keeps the earliest index on ties.
        let better = match &best_key {
            None => true,
            Some(b) => k < *b,
        };
        if better {
            best = i;
            best_key = Some(k);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn job(rng: &mut MlRng, _ws: &mut RefineWorkspace) -> u64 {
        rng.gen_range(0..1_000_000u64)
    }

    #[test]
    fn start_order_is_preserved() {
        let idx_job =
            |rng: &mut MlRng, _ws: &mut RefineWorkspace| -> u64 { rng.gen_range(0..u64::MAX) };
        let (seq, _) = run_starts(23, 7, 1, &idx_job);
        for threads in [2, 3, 8, 64] {
            let (par, _) = run_starts(23, 7, threads, &idx_job);
            assert_eq!(seq, par, "threads={threads}");
        }
    }

    #[test]
    fn more_threads_than_runs() {
        let (seq, _) = run_starts(3, 1, 1, &job);
        let (par, _) = run_starts(3, 1, 16, &job);
        assert_eq!(seq, par);
    }

    #[test]
    fn single_run_single_thread() {
        let (v, t) = run_starts(1, 5, 1, &job);
        assert_eq!(v.len(), 1);
        assert!(t.wall_secs >= 0.0 && t.cpu_secs >= 0.0);
    }

    #[test]
    fn workspace_is_long_lived_per_worker() {
        // Jobs observe their worker's workspace; the *values* must still be
        // workspace-independent (the *_in contract), so here we only check
        // the runner never hands the same workspace to two concurrent jobs:
        // each job writes a marker and asserts it sees its own.
        let marker_job = |rng: &mut MlRng, ws: &mut RefineWorkspace| -> u64 {
            let tag = rng.gen_range(1..u64::MAX);
            ws.state.cut_cache = tag;
            std::thread::yield_now();
            assert_eq!(ws.state.cut_cache, tag);
            tag
        };
        let (seq, _) = run_starts(32, 9, 1, &marker_job);
        let (par, _) = run_starts(32, 9, 4, &marker_job);
        assert_eq!(seq, par);
    }

    #[test]
    fn best_index_breaks_ties_low() {
        let items = [5u64, 3, 3, 7, 3];
        assert_eq!(best_index_by_key(&items, |&x| x), 1);
        let items = [2u64];
        assert_eq!(best_index_by_key(&items, |&x| x), 0);
    }

    #[test]
    fn timing_is_populated() {
        let (_, t) = run_starts(8, 3, 2, &job);
        assert!(t.wall_secs >= 0.0);
        assert!(t.cpu_secs >= 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one start")]
    fn rejects_zero_runs() {
        let _ = run_starts(0, 0, 1, &job);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn rejects_zero_threads() {
        let _ = run_starts(1, 0, 0, &job);
    }

    #[test]
    fn default_threads_positive() {
        assert!(default_threads() >= 1);
    }

    /// Runs a flaky batch where the job learns its start index from the rng
    /// stream (the only deterministic identity a job has).
    fn run_flaky(
        runs: usize,
        seed: u64,
        threads: usize,
        fail: &[usize],
    ) -> Result<(BatchResult<u64>, ExecTiming), ExecError> {
        // Reconstruct the start index from the seed stream: each start's
        // first draw is a pure function of child_seed(seed, i), so a lookup
        // table maps first-draws back to indices.
        let firsts: Vec<u64> = (0..runs)
            .map(|i| seeded_rng(child_seed(seed, i as u64)).gen_range(0..u64::MAX))
            .collect();
        let fail: Vec<usize> = fail.to_vec();
        let job = move |rng: &mut MlRng, _ws: &mut RefineWorkspace| -> u64 {
            let first = rng.gen_range(0..u64::MAX);
            let i = firsts
                .iter()
                .position(|&f| f == first)
                .expect("known start");
            if fail.contains(&i) {
                panic!("boom at start {i}");
            }
            first
        };
        try_run_starts(runs, seed, threads, &job)
    }

    #[test]
    fn panicking_starts_become_failures_not_panics() {
        let (batch, _) = run_flaky(8, 11, 1, &[2, 5]).expect("survivors exist");
        assert_eq!(batch.failures.len(), 2);
        assert_eq!(batch.failures[0].start, 2);
        assert_eq!(batch.failures[1].start, 5);
        assert!(batch.failures[0].message.contains("boom at start 2"));
        assert_eq!(batch.survivors.len(), 6);
        assert!(batch.survivors.iter().all(|&(i, _)| i != 2 && i != 5));
    }

    #[test]
    fn survivors_are_bit_identical_to_sequential_with_failed_removed() {
        let clean = run_flaky(13, 19, 1, &[]).expect("all survive");
        let fail_set = [0usize, 4, 7];
        let expected: Vec<(usize, u64)> = clean
            .0
            .survivors
            .iter()
            .filter(|(i, _)| !fail_set.contains(i))
            .cloned()
            .collect();
        for threads in [1, 2, 4, 8] {
            let (batch, _) = run_flaky(13, 19, threads, &fail_set).expect("survivors exist");
            assert_eq!(batch.survivors, expected, "threads={threads}");
            assert_eq!(
                batch.failures.iter().map(|f| f.start).collect::<Vec<_>>(),
                fail_set,
                "threads={threads}"
            );
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]

        /// The isolation contract over random (runs, threads, failure-set)
        /// triples: survivors are bit-identical to a clean sequential run
        /// with the failed starts filtered out, failures are reported in
        /// start order, and an all-failed batch is the typed error.
        #[test]
        fn prop_survivors_match_filtered_sequential(
            runs in 1usize..14,
            threads in 1usize..10,
            seed in 0u64..10_000,
            fail_bits in 0u64..16_384,
        ) {
            use proptest::prelude::*;
            let fail: Vec<usize> = (0..runs).filter(|i| (fail_bits >> i) & 1 == 1).collect();
            let clean = run_flaky(runs, seed, 1, &[]).expect("all survive").0;
            let expected: Vec<(usize, u64)> = clean
                .survivors
                .iter()
                .filter(|(i, _)| !fail.contains(i))
                .cloned()
                .collect();
            match run_flaky(runs, seed, threads, &fail) {
                Ok((batch, _)) => {
                    prop_assert!(fail.len() < runs, "a fully-failed batch must be an error");
                    prop_assert_eq!(batch.survivors, expected);
                    prop_assert_eq!(
                        batch.failures.iter().map(|f| f.start).collect::<Vec<_>>(),
                        fail
                    );
                }
                Err(ExecError::AllStartsFailed { failures }) => {
                    prop_assert_eq!(fail.len(), runs);
                    prop_assert_eq!(failures.len(), runs);
                }
                Err(e) => panic!("unexpected executor error: {e}"),
            }
        }
    }

    #[test]
    fn reduction_ignores_failed_starts_and_breaks_ties_low() {
        let (batch, _) = run_flaky(10, 23, 4, &[1, 6]).expect("survivors exist");
        let outcome = batch.clone().into_best_by_key(|&v| v);
        let manual = batch
            .survivors
            .iter()
            .min_by_key(|(_, v)| *v)
            .expect("non-empty");
        assert_eq!(outcome.best, manual.1);
        assert_eq!(outcome.best_start, manual.0);
        assert_eq!(outcome.failures.len(), 2);
    }

    #[test]
    fn all_starts_failed_is_a_typed_error() {
        let all: Vec<usize> = (0..5).collect();
        for threads in [1, 3] {
            match run_flaky(5, 31, threads, &all) {
                Err(ExecError::AllStartsFailed { failures }) => {
                    assert_eq!(failures.len(), 5, "threads={threads}");
                    assert_eq!(
                        failures.iter().map(|f| f.start).collect::<Vec<_>>(),
                        all,
                        "threads={threads}"
                    );
                }
                other => panic!("expected AllStartsFailed, got {other:?}"),
            }
        }
    }

    #[test]
    #[should_panic(expected = "boom at start 3")]
    fn run_starts_preserves_the_panicking_contract() {
        let firsts: Vec<u64> = (0..6)
            .map(|i| seeded_rng(child_seed(41, i as u64)).gen_range(0..u64::MAX))
            .collect();
        let job = move |rng: &mut MlRng, _ws: &mut RefineWorkspace| -> u64 {
            let first = rng.gen_range(0..u64::MAX);
            let i = firsts
                .iter()
                .position(|&f| f == first)
                .expect("known start");
            if i == 3 {
                panic!("boom at start {i}");
            }
            first
        };
        let _ = run_starts(6, 41, 2, &job);
    }

    #[test]
    fn display_formats_are_informative() {
        let f = StartFailure {
            start: 4,
            message: "overflow".to_string(),
            phase: Some("fm_refine".to_string()),
        };
        assert_eq!(f.to_string(), "start 4 panicked in fm_refine: overflow");
        let e = ExecError::AllStartsFailed {
            failures: vec![f.clone()],
        };
        let msg = e.to_string();
        assert!(msg.contains("all 1 start(s) failed"), "{msg}");
        assert!(msg.contains("fm_refine"), "{msg}");
        let lost = ExecError::Lost {
            detail: "slot 3".to_string(),
        };
        assert!(lost.to_string().contains("slot 3"));
    }

    /// Per-start spans merge in start order, so the merged stream's content
    /// (timestamps excluded) is byte-identical at every thread count.
    #[cfg(feature = "obs")]
    #[test]
    fn trace_content_is_thread_count_invariant() {
        mlpart_obs::force_enabled(true);
        let span_job = |rng: &mut MlRng, _ws: &mut RefineWorkspace| -> u64 {
            let v = rng.gen_range(0..1000u64);
            let _s = mlpart_obs::span("job", &[("draw", v.into())]);
            mlpart_obs::counter("draw", &[("value", v.into())]);
            v
        };
        let capture_run = |threads: usize| {
            let ((vals, _), trace) = mlpart_obs::capture(|| run_starts(13, 77, threads, &span_job));
            let trace = trace.expect("gate forced on");
            // Every start contributes its span wrapper plus the job's events.
            assert_eq!(
                trace.events.iter().filter(|e| e.name == "start").count(),
                2 * 13,
                "threads={threads}"
            );
            (
                vals,
                mlpart_obs::strip_timing(&mlpart_obs::to_jsonl(&trace)),
            )
        };
        let (v1, t1) = capture_run(1);
        for threads in [2, 4, 8] {
            let (v, t) = capture_run(threads);
            assert_eq!(v1, v, "threads={threads}");
            assert_eq!(t1, t, "threads={threads}");
        }
        mlpart_obs::force_enabled(false);
    }

    /// A panicking start is attributed to the innermost open span.
    #[cfg(feature = "obs")]
    #[test]
    fn failure_phase_names_the_innermost_span() {
        mlpart_obs::force_enabled(true);
        let firsts: Vec<u64> = (0..4)
            .map(|i| seeded_rng(child_seed(53, i as u64)).gen_range(0..u64::MAX))
            .collect();
        let job = move |rng: &mut MlRng, _ws: &mut RefineWorkspace| -> u64 {
            let first = rng.gen_range(0..u64::MAX);
            let i = firsts
                .iter()
                .position(|&f| f == first)
                .expect("known start");
            let _outer = mlpart_obs::span("outer", &[]);
            let _inner = mlpart_obs::span("inner", &[]);
            if i == 2 {
                panic!("mid-span failure");
            }
            first
        };
        let ((batch, _), _trace) =
            mlpart_obs::capture(|| try_run_starts(4, 53, 2, &job).expect("survivors"));
        mlpart_obs::force_enabled(false);
        assert_eq!(batch.failures.len(), 1);
        assert_eq!(batch.failures[0].phase.as_deref(), Some("inner"));
    }

    /// With audits forced on, the scatter-claims check runs on a healthy
    /// multi-threaded batch and the results stay bit-identical.
    #[cfg(feature = "audit")]
    #[test]
    fn audit_hooks_fire_on_healthy_batch() {
        mlpart_audit::force_enabled(true);
        let (seq, _) = run_starts(17, 21, 1, &job);
        let (par, _) = run_starts(17, 21, 4, &job);
        mlpart_audit::force_enabled(false);
        assert_eq!(seq, par);
    }
}
