//! Deterministic parallel multi-start execution.
//!
//! The paper's headline numbers are best/average statistics over many
//! independent starts (100 starts of FM/CLIP against a handful of ML starts,
//! Tables III–V), and multi-start fan-out is embarrassingly parallel: each
//! start runs from its own seed stream (`child_seed(base, i)`) and never
//! communicates with the others. This crate exploits that with a std-only
//! work-stealing runner whose output is **bit-identical at every thread
//! count**, including one.
//!
//! Why thread count cannot change results:
//!
//! 1. Start `i` always derives its PRNG from `child_seed(base_seed, i)` —
//!    the SplitMix64 streams are a function of the start index alone, never
//!    of which worker claims the start or in what order.
//! 2. Each worker owns a private long-lived [`RefineWorkspace`]; workspace
//!    reuse is bit-identical to fresh allocation (the `*_in` entry-point
//!    contract), so which starts share a workspace is unobservable.
//! 3. Results are scattered into a slot vector indexed by start, so the
//!    returned `Vec` is in start order regardless of completion order, and
//!    reductions such as [`best_index_by_key`] break ties by the lowest
//!    start index — a total order independent of scheduling.
//!
//! ```
//! use mlpart_exec::run_starts;
//! use rand::Rng;
//!
//! let job = |rng: &mut mlpart_hypergraph::rng::MlRng,
//!            _ws: &mut mlpart_fm::RefineWorkspace| rng.gen_range(0..1000u64);
//! let (seq, _) = run_starts(16, 42, 1, &job);
//! let (par, _) = run_starts(16, 42, 4, &job);
//! assert_eq!(seq, par); // bit-identical at any thread count
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use mlpart_fm::RefineWorkspace;
use mlpart_hypergraph::rng::{child_seed, seeded_rng, MlRng};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Per-start observability payload: each start's events are captured on
/// whichever worker ran it, then merged into the caller's trace **in start
/// order** — so the merged stream's content is thread-count-invariant, the
/// same argument as for the result vector itself.
#[cfg(feature = "obs")]
type StartTrace = Option<mlpart_obs::Trace>;
/// Zero-sized stand-in so the runner's plumbing is feature-independent.
#[cfg(not(feature = "obs"))]
type StartTrace = ();

/// Splices one start's captured trace into the calling thread's recorder as
/// a `start` span. No-op when the start recorded nothing.
#[cfg(feature = "obs")]
fn append_start_trace(i: usize, trace: &StartTrace) {
    if let Some(t) = trace {
        mlpart_obs::append_trace("start", &[("start", (i as u64).into())], t);
    }
}
#[cfg(not(feature = "obs"))]
fn append_start_trace(_i: usize, _trace: &StartTrace) {}

/// Timing telemetry for one [`run_starts`] batch.
///
/// The paper's tables report *total CPU for 100 runs*; a parallel batch
/// finishes in less wall-clock than that, so the two notions must be kept
/// apart: `wall_secs` is what the user waits, `cpu_secs` approximates what
/// the paper's time columns mean (the per-start times summed over all
/// starts, regardless of which thread ran them).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecTiming {
    /// Elapsed wall-clock seconds for the whole batch.
    pub wall_secs: f64,
    /// Sum of the per-start wall-clock seconds (a CPU-time proxy: each
    /// start runs on one thread without blocking).
    pub cpu_secs: f64,
}

/// Picks the number of worker threads when the caller has no preference:
/// the machine's available parallelism, or 1 if that cannot be determined.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Runs `runs` independent starts of `job` on `threads` worker threads and
/// returns the per-start results **in start order** plus timing telemetry.
///
/// Start `i` receives a PRNG seeded with `child_seed(base_seed, i)` and its
/// worker's long-lived [`RefineWorkspace`] (so per-start allocation stays
/// amortized via the `*_in` entry points). Starts are distributed by an
/// atomic next-start counter — idle workers steal whatever start is next —
/// but the returned vector, and therefore any deterministic reduction over
/// it, is bit-identical for every `threads` value including 1.
///
/// # Panics
///
/// Panics if `runs == 0`, `threads == 0`, or a worker thread panics.
pub fn run_starts<T, F>(
    runs: usize,
    base_seed: u64,
    threads: usize,
    job: &F,
) -> (Vec<T>, ExecTiming)
where
    T: Send,
    F: Fn(&mut MlRng, &mut RefineWorkspace) -> T + Sync,
{
    assert!(runs > 0, "need at least one start");
    assert!(threads > 0, "need at least one thread");
    let wall = Instant::now();

    let run_one = |i: usize, ws: &mut RefineWorkspace| -> (f64, T, StartTrace) {
        let start = Instant::now();
        let mut rng = seeded_rng(child_seed(base_seed, i as u64));
        // Capture this start's events into a private stream (the caller's
        // recorder, if any, is stashed for the duration), so per-start
        // content is identical whether the start ran inline or on a worker.
        #[cfg(feature = "obs")]
        let (value, trace) = mlpart_obs::capture(|| job(&mut rng, ws));
        #[cfg(not(feature = "obs"))]
        let (value, trace) = (job(&mut rng, ws), ());
        (start.elapsed().as_secs_f64(), value, trace)
    };

    // Single-thread fast path: no spawn, identical seed streams and order.
    if threads == 1 {
        let mut ws = RefineWorkspace::new();
        let mut cpu_secs = 0.0;
        let mut out = Vec::with_capacity(runs);
        for i in 0..runs {
            let (secs, value, trace) = run_one(i, &mut ws);
            cpu_secs += secs;
            append_start_trace(i, &trace);
            out.push(value);
        }
        let timing = ExecTiming {
            wall_secs: wall.elapsed().as_secs_f64(),
            cpu_secs,
        };
        return (out, timing);
    }

    let next = AtomicUsize::new(0);
    let workers = threads.min(runs);
    let locals: Vec<Vec<(usize, f64, T, StartTrace)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut ws = RefineWorkspace::new();
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= runs {
                            break;
                        }
                        let (secs, value, trace) = run_one(i, &mut ws);
                        local.push((i, secs, value, trace));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect()
    });

    // Scatter into start order; completion order is irrelevant.
    let mut cpu_secs = 0.0;
    let mut slots: Vec<Option<(T, StartTrace)>> = (0..runs).map(|_| None).collect();
    #[cfg(feature = "audit")]
    let mut claims = vec![0u32; runs];
    for (i, secs, value, trace) in locals.into_iter().flatten() {
        cpu_secs += secs;
        #[cfg(feature = "audit")]
        {
            claims[i] += 1;
        }
        slots[i] = Some((value, trace));
    }
    // Work-stealing audit: every start index must have been claimed by
    // exactly one worker (a duplicate or dropped claim would silently break
    // the determinism contract before the `expect` below fires).
    #[cfg(feature = "audit")]
    if mlpart_audit::enabled() {
        mlpart_audit::enforce(mlpart_audit::audit_start_claims(&claims));
    }
    let mut out: Vec<T> = Vec::with_capacity(runs);
    for (i, slot) in slots.into_iter().enumerate() {
        let (value, trace) = slot.expect("every start index claimed exactly once");
        // Merge per-start streams in start order — identical content to the
        // single-thread path even though workers finished in any order.
        append_start_trace(i, &trace);
        out.push(value);
    }
    let timing = ExecTiming {
        wall_secs: wall.elapsed().as_secs_f64(),
        cpu_secs,
    };
    (out, timing)
}

/// Index of the best element under `key`: the minimal key, ties broken by
/// the **lowest index**. Applied to [`run_starts`] output (start order),
/// this is the deterministic reduction that makes a parallel multi-start
/// batch return the same winner as the sequential loop it replaced.
///
/// # Panics
///
/// Panics if `items` is empty.
pub fn best_index_by_key<T, K, F>(items: &[T], key: F) -> usize
where
    K: Ord,
    F: Fn(&T) -> K,
{
    assert!(!items.is_empty(), "cannot reduce an empty batch");
    let mut best = 0usize;
    let mut best_key = key(&items[0]);
    for (i, item) in items.iter().enumerate().skip(1) {
        let k = key(item);
        // Strict `<` keeps the earliest index on ties.
        if k < best_key {
            best = i;
            best_key = k;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn job(rng: &mut MlRng, _ws: &mut RefineWorkspace) -> u64 {
        rng.gen_range(0..1_000_000u64)
    }

    #[test]
    fn start_order_is_preserved() {
        let idx_job =
            |rng: &mut MlRng, _ws: &mut RefineWorkspace| -> u64 { rng.gen_range(0..u64::MAX) };
        let (seq, _) = run_starts(23, 7, 1, &idx_job);
        for threads in [2, 3, 8, 64] {
            let (par, _) = run_starts(23, 7, threads, &idx_job);
            assert_eq!(seq, par, "threads={threads}");
        }
    }

    #[test]
    fn more_threads_than_runs() {
        let (seq, _) = run_starts(3, 1, 1, &job);
        let (par, _) = run_starts(3, 1, 16, &job);
        assert_eq!(seq, par);
    }

    #[test]
    fn single_run_single_thread() {
        let (v, t) = run_starts(1, 5, 1, &job);
        assert_eq!(v.len(), 1);
        assert!(t.wall_secs >= 0.0 && t.cpu_secs >= 0.0);
    }

    #[test]
    fn workspace_is_long_lived_per_worker() {
        // Jobs observe their worker's workspace; the *values* must still be
        // workspace-independent (the *_in contract), so here we only check
        // the runner never hands the same workspace to two concurrent jobs:
        // each job writes a marker and asserts it sees its own.
        let marker_job = |rng: &mut MlRng, ws: &mut RefineWorkspace| -> u64 {
            let tag = rng.gen_range(1..u64::MAX);
            ws.state.cut_cache = tag;
            std::thread::yield_now();
            assert_eq!(ws.state.cut_cache, tag);
            tag
        };
        let (seq, _) = run_starts(32, 9, 1, &marker_job);
        let (par, _) = run_starts(32, 9, 4, &marker_job);
        assert_eq!(seq, par);
    }

    #[test]
    fn best_index_breaks_ties_low() {
        let items = [5u64, 3, 3, 7, 3];
        assert_eq!(best_index_by_key(&items, |&x| x), 1);
        let items = [2u64];
        assert_eq!(best_index_by_key(&items, |&x| x), 0);
    }

    #[test]
    fn timing_is_populated() {
        let (_, t) = run_starts(8, 3, 2, &job);
        assert!(t.wall_secs >= 0.0);
        assert!(t.cpu_secs >= 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one start")]
    fn rejects_zero_runs() {
        let _ = run_starts(0, 0, 1, &job);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn rejects_zero_threads() {
        let _ = run_starts(1, 0, 0, &job);
    }

    #[test]
    fn default_threads_positive() {
        assert!(default_threads() >= 1);
    }

    /// Per-start spans merge in start order, so the merged stream's content
    /// (timestamps excluded) is byte-identical at every thread count.
    #[cfg(feature = "obs")]
    #[test]
    fn trace_content_is_thread_count_invariant() {
        mlpart_obs::force_enabled(true);
        let span_job = |rng: &mut MlRng, _ws: &mut RefineWorkspace| -> u64 {
            let v = rng.gen_range(0..1000u64);
            let _s = mlpart_obs::span("job", &[("draw", v.into())]);
            mlpart_obs::counter("draw", &[("value", v.into())]);
            v
        };
        let capture_run = |threads: usize| {
            let ((vals, _), trace) = mlpart_obs::capture(|| run_starts(13, 77, threads, &span_job));
            let trace = trace.expect("gate forced on");
            // Every start contributes its span wrapper plus the job's events.
            assert_eq!(
                trace.events.iter().filter(|e| e.name == "start").count(),
                2 * 13,
                "threads={threads}"
            );
            (
                vals,
                mlpart_obs::strip_timing(&mlpart_obs::to_jsonl(&trace)),
            )
        };
        let (v1, t1) = capture_run(1);
        for threads in [2, 4, 8] {
            let (v, t) = capture_run(threads);
            assert_eq!(v1, v, "threads={threads}");
            assert_eq!(t1, t, "threads={threads}");
        }
        mlpart_obs::force_enabled(false);
    }

    /// With audits forced on, the scatter-claims check runs on a healthy
    /// multi-threaded batch and the results stay bit-identical.
    #[cfg(feature = "audit")]
    #[test]
    fn audit_hooks_fire_on_healthy_batch() {
        mlpart_audit::force_enabled(true);
        let (seq, _) = run_starts(17, 21, 1, &job);
        let (par, _) = run_starts(17, 21, 4, &job);
        mlpart_audit::force_enabled(false);
        assert_eq!(seq, par);
    }
}
