//! Supervised retries and resumable batches over [`try_run_starts`]'s
//! machinery.
//!
//! [`run_supervised`] is the crash-safe batch driver: each start gets up to
//! [`RetryPolicy::max_attempts`] deterministic attempts (attempt `a` of
//! start `i` reseeds from `child_seed(child_seed(base, i), a)`, so a retry
//! is a *different* deterministic start, not a replay of the failed one),
//! completed starts can be skipped on a later run via [`ResumeState`], and
//! a completion sink lets the caller checkpoint each start the moment it
//! finishes — in completion order, which is scheduling-dependent, while the
//! *returned* batch stays in start order and bit-identical at every thread
//! count.
//!
//! # Determinism argument
//!
//! The three invariants of the unsupervised runner carry over unchanged:
//! per-start seed streams are functions of the start index alone, attempt
//! seed streams are functions of `(start, attempt)` alone, and results
//! scatter into start-indexed slots before any reduction. A retry happens
//! exactly when an attempt panics, panics are deterministic for a fixed
//! (netlist, config, seed, fault plan), and each attempt runs start-to-end
//! on one worker — so the set of (start, attempt) executions, the retry
//! records, and the survivor values are all scheduling-independent. The
//! sequential single-thread oracle in the proptests is the specification.
//!
//! With `max_attempts == 1`, no degradation, and an empty resume state,
//! [`run_supervised`] is **bit-identical** to [`try_run_starts`] — same
//! survivors, failures, and (under `obs`) the same merged trace content.

use crate::{failure_phase, panic_message, BatchResult, ExecError, ExecTiming, StartFailure};
use mlpart_fm::{Budget, RefineWorkspace};
use mlpart_hypergraph::rng::{child_seed, seeded_rng, MlRng};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// A start's full trace contribution: the concatenation of its per-attempt
/// streams, each wrapped in its `start` span. An empty trace when the obs
/// gate was off; the unit type on non-`obs` builds. Checkpoints persist
/// this and replay it verbatim on resume.
#[cfg(feature = "obs")]
pub type StartContribution = mlpart_obs::Trace;
/// Zero-sized stand-in so the supervision plumbing is feature-independent.
#[cfg(not(feature = "obs"))]
pub type StartContribution = ();

/// Splices a start's contribution into the calling thread's recorder
/// verbatim (the wrapper spans are already inside).
#[cfg(feature = "obs")]
fn append_contribution(t: &StartContribution) {
    mlpart_obs::append_raw(t);
}
#[cfg(not(feature = "obs"))]
fn append_contribution(_t: &StartContribution) {}

/// Fixed stride between starts in the `attempt` fault-site index space:
/// attempt `a` of start `i` hits index `i * ATTEMPT_STRIDE + a`. Also the
/// hard ceiling on [`RetryPolicy::max_attempts`], so the index spaces of
/// consecutive starts never overlap.
pub const ATTEMPT_STRIDE: u64 = 8;

/// How hard the supervisor fights for each start.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Attempts per start, in `1..=ATTEMPT_STRIDE`; values outside the
    /// range are clamped. `1` means no retries (the unsupervised contract).
    pub max_attempts: u32,
    /// When set, the *final* attempt of a start that has burned all its
    /// earlier attempts runs under this budget instead of the caller's —
    /// graceful degradation: a truncated-but-feasible answer beats another
    /// panic.
    pub degraded_final: Option<Budget>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 1,
            degraded_final: None,
        }
    }
}

impl RetryPolicy {
    fn attempts(&self) -> u32 {
        self.max_attempts.clamp(1, ATTEMPT_STRIDE as u32)
    }
}

/// The identity of one attempt, handed to the job closure.
#[derive(Debug, Clone, Copy)]
pub struct Attempt<'p> {
    /// Start index in `0..runs`.
    pub start: usize,
    /// Attempt index in `0..max_attempts`; `0` on the untroubled path.
    pub attempt: u32,
    /// The degraded budget to run under, set only on a final attempt when
    /// [`RetryPolicy::degraded_final`] is configured. `None` means the job
    /// uses whatever budget the caller configured.
    pub budget: Option<&'p Budget>,
}

/// One failed attempt that the supervisor absorbed by retrying.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryRecord {
    /// Which start the attempt belonged to.
    pub start: usize,
    /// The attempt index that failed (0-based).
    pub attempt: u32,
    /// The panic payload message.
    pub message: String,
    /// The innermost observability span open at the panic, when tracing
    /// was active.
    pub phase: Option<String>,
}

impl std::fmt::Display for RetryRecord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.phase {
            Some(p) => write!(
                f,
                "start {} attempt {} panicked in {}: {} (retried)",
                self.start, self.attempt, p, self.message
            ),
            None => write!(
                f,
                "start {} attempt {} panicked: {} (retried)",
                self.start, self.attempt, self.message
            ),
        }
    }
}

/// A supervised batch: the survivor/failure split of [`BatchResult`] plus
/// the retries that were absorbed along the way.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SupervisedBatch<T> {
    /// Surviving starts as `(start index, value)`, in start order.
    pub survivors: Vec<(usize, T)>,
    /// Starts whose final attempt failed, in start order.
    pub failures: Vec<StartFailure>,
    /// Absorbed attempt failures, ordered by (start, attempt).
    pub retries: Vec<RetryRecord>,
    /// Attempts consumed per start (`attempts[i]` for start `i`); resumed
    /// starts report what their original run consumed.
    pub attempts: Vec<u32>,
}

impl<T> SupervisedBatch<T> {
    /// Drops the supervision extras, leaving the plain [`BatchResult`] the
    /// existing reductions consume.
    pub fn into_batch(self) -> BatchResult<T> {
        BatchResult {
            survivors: self.survivors,
            failures: self.failures,
        }
    }
}

/// A start already completed by a previous run, restored from a checkpoint.
#[derive(Debug, Clone)]
pub struct PriorStart<T> {
    /// Start index in `0..runs`.
    pub start: usize,
    /// Attempts the original run consumed on this start.
    pub attempts: u32,
    /// The original outcome: the job's value, or the final-attempt failure.
    pub outcome: Result<T, StartFailure>,
    /// Retries the original run absorbed on this start, in attempt order.
    pub retries: Vec<RetryRecord>,
    /// The start's full trace contribution from the original run (under
    /// `obs`; the unit type otherwise). Spliced verbatim in start order so
    /// a resumed run's stripped trace is byte-identical to an
    /// uninterrupted one.
    pub trace: StartContribution,
}

/// Completed starts to skip, restored from a checkpoint. The default is
/// empty: run everything.
#[derive(Debug, Clone)]
pub struct ResumeState<T> {
    /// Prior starts in any order; indices must be unique and `< runs`.
    pub done: Vec<PriorStart<T>>,
}

// Manual impl: the derive would demand `T: Default`, which the restored
// job values have no reason to satisfy.
impl<T> Default for ResumeState<T> {
    fn default() -> Self {
        ResumeState { done: Vec::new() }
    }
}

/// A completed start, as seen by the checkpoint sink the moment the start
/// finishes (completion order — scheduling-dependent; key any persistent
/// record by [`StartDone::start`]).
#[derive(Debug)]
pub struct StartDone<'a, T> {
    /// Start index.
    pub start: usize,
    /// Attempts consumed.
    pub attempts: u32,
    /// The final outcome.
    pub outcome: Result<&'a T, &'a StartFailure>,
    /// Absorbed retries, in attempt order.
    pub retries: &'a [RetryRecord],
    /// The start's full trace contribution (under `obs`).
    pub trace: &'a StartContribution,
}

/// What one supervised start yields to the scatter phase.
struct StartYield<T> {
    outcome: Result<T, StartFailure>,
    retries: Vec<RetryRecord>,
    attempts: u32,
    trace: StartContribution,
}

/// The completion sink: called on whichever worker finished the start.
pub type Sink<'s, T> = Option<&'s (dyn Fn(&StartDone<T>) + Sync)>;

/// Runs one start to success or retry exhaustion. Every attempt runs
/// inside its own isolation boundary (catch_unwind inside the obs capture,
/// fault sites innermost), and each attempt's trace is wrapped and
/// appended to the start's contribution locally so the scatter phase can
/// splice it in start order.
fn run_start_supervised<T, F>(
    i: usize,
    base_seed: u64,
    policy: &RetryPolicy,
    ws: &mut RefineWorkspace,
    job: &F,
) -> (f64, StartYield<T>)
where
    F: Fn(&mut MlRng, &mut RefineWorkspace, Attempt) -> T + Sync,
{
    let t0 = Instant::now();
    let max = policy.attempts();
    let mut retries = Vec::new();
    #[cfg(feature = "obs")]
    let mut contribution = mlpart_obs::Trace::default();
    #[cfg(not(feature = "obs"))]
    let contribution = ();
    let mut attempts;
    let mut a = 0;
    let outcome = loop {
        attempts = a + 1;
        let seed = if a == 0 {
            // Attempt 0 uses the unsupervised per-start stream, keeping a
            // retry-free supervised batch bit-identical to try_run_starts.
            child_seed(base_seed, i as u64)
        } else {
            child_seed(child_seed(base_seed, i as u64), u64::from(a))
        };
        let mut rng = seeded_rng(seed);
        let budget = if a + 1 == max {
            policy.degraded_final.as_ref()
        } else {
            None
        };
        let attempt = Attempt {
            start: i,
            attempt: a,
            budget,
        };
        let body = AssertUnwindSafe(|| {
            #[cfg(feature = "fault")]
            {
                mlpart_fault::maybe_panic("start", i as u64);
                mlpart_fault::maybe_panic("attempt", i as u64 * ATTEMPT_STRIDE + u64::from(a));
            }
            job(&mut rng, ws, attempt)
        });
        #[cfg(feature = "obs")]
        let (result, trace) = mlpart_obs::capture(|| catch_unwind(body));
        #[cfg(not(feature = "obs"))]
        let (result, trace) = (catch_unwind(body), ());
        #[cfg(feature = "obs")]
        if let Some(t) = &trace {
            // Attempt 0 keeps the unsupervised wrapper args so the merged
            // stream is byte-compatible with try_run_starts; retries are
            // tagged with their attempt index.
            if a == 0 {
                contribution.append_span("start", &[("start", (i as u64).into())], t);
            } else {
                contribution.append_span(
                    "start",
                    &[("start", (i as u64).into()), ("attempt", a.into())],
                    t,
                );
            }
        }
        match result {
            Ok(value) => break Ok(value),
            Err(payload) => {
                let message = panic_message(payload);
                let phase = failure_phase(&trace);
                // The unwound job may have left the workspace mid-mutation;
                // fresh is bit-identical to reused (the `*_in` contract).
                *ws = RefineWorkspace::new();
                if a + 1 < max {
                    retries.push(RetryRecord {
                        start: i,
                        attempt: a,
                        message,
                        phase,
                    });
                } else {
                    break Err(StartFailure {
                        start: i,
                        message,
                        phase,
                    });
                }
            }
        }
        a += 1;
    };
    let secs = t0.elapsed().as_secs_f64();
    (
        secs,
        StartYield {
            outcome,
            retries,
            attempts,
            trace: contribution,
        },
    )
}

fn notify_sink<T>(sink: Sink<'_, T>, i: usize, y: &StartYield<T>) {
    if let Some(sink) = sink {
        sink(&StartDone {
            start: i,
            attempts: y.attempts,
            outcome: y.outcome.as_ref(),
            retries: &y.retries,
            trace: &y.trace,
        });
    }
}

/// Runs `runs` starts under a [`RetryPolicy`] with per-attempt fault
/// isolation, skipping the starts in `resume` and reporting each completed
/// start to `sink` the moment it finishes.
///
/// Returns the supervised batch in start order plus timing telemetry (CPU
/// seconds cover only the starts executed *this* run). See the module docs
/// for the determinism argument; the short version is that survivors,
/// failures, retry records, and (under `obs`) merged trace content are
/// bit-identical at every thread count, and bit-identical between an
/// uninterrupted run and any interrupt/resume split of the same batch.
///
/// # Errors
///
/// [`ExecError::AllStartsFailed`] when every start (fresh or resumed)
/// exhausted its attempts; [`ExecError::Lost`] when the runner lost results
/// or `resume` is inconsistent with `runs` (duplicate or out-of-range start
/// indices).
///
/// # Panics
///
/// Panics if `runs == 0` or `threads == 0` (caller bugs, not input faults).
pub fn run_supervised<T, F>(
    runs: usize,
    base_seed: u64,
    threads: usize,
    policy: &RetryPolicy,
    resume: ResumeState<T>,
    sink: Sink<'_, T>,
    job: &F,
) -> Result<(SupervisedBatch<T>, ExecTiming), ExecError>
where
    T: Send,
    F: Fn(&mut MlRng, &mut RefineWorkspace, Attempt) -> T + Sync,
{
    assert!(runs > 0, "need at least one start");
    assert!(threads > 0, "need at least one thread");
    let wall = Instant::now();

    // Slot in the resumed starts first and validate them: a checkpoint that
    // disagrees with the requested batch shape is a harness error, not a
    // job failure.
    let mut slots: Vec<Option<StartYield<T>>> = (0..runs).map(|_| None).collect();
    for prior in resume.done {
        let Some(slot) = slots.get_mut(prior.start) else {
            return Err(ExecError::Lost {
                detail: format!(
                    "resume state covers start {} but the batch has only {runs} starts",
                    prior.start
                ),
            });
        };
        if slot.is_some() {
            return Err(ExecError::Lost {
                detail: format!("resume state lists start {} twice", prior.start),
            });
        }
        *slot = Some(StartYield {
            outcome: prior.outcome,
            retries: prior.retries,
            attempts: prior.attempts,
            trace: prior.trace,
        });
    }
    let pending: Vec<usize> = slots
        .iter()
        .enumerate()
        .filter(|(_, s)| s.is_none())
        .map(|(i, _)| i)
        .collect();

    let mut cpu_secs = 0.0;
    if pending.is_empty() {
        // Nothing left to run: the batch is fully restored.
    } else if threads == 1 {
        // Single-thread fast path: no spawn, identical seed streams and
        // identical isolation boundary.
        let mut ws = RefineWorkspace::new();
        for &i in &pending {
            let (secs, y) = run_start_supervised(i, base_seed, policy, &mut ws, job);
            cpu_secs += secs;
            notify_sink(sink, i, &y);
            // i came out of `slots` above, so it is always in range; a
            // lost write is caught by the never-claimed check in gather.
            if let Some(slot) = slots.get_mut(i) {
                *slot = Some(y);
            }
        }
    } else {
        let next = AtomicUsize::new(0);
        let workers = threads.min(pending.len());
        let pending_ref = &pending;
        type Yielded<T> = Vec<(usize, f64, StartYield<T>)>;
        let locals: Vec<Result<Yielded<T>, ExecError>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(|| {
                        let mut ws = RefineWorkspace::new();
                        let mut local = Vec::new();
                        loop {
                            let slot = next.fetch_add(1, Ordering::Relaxed);
                            let Some(&i) = pending_ref.get(slot) else {
                                break;
                            };
                            let (secs, y) =
                                run_start_supervised(i, base_seed, policy, &mut ws, job);
                            notify_sink(sink, i, &y);
                            local.push((i, secs, y));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join().map_err(|_| ExecError::Lost {
                        detail: "worker thread died outside the per-start isolation boundary"
                            .to_string(),
                    })
                })
                .collect()
        });
        #[cfg(feature = "audit")]
        let mut claims = vec![0u32; runs];
        for local in locals {
            for (i, secs, y) in local? {
                cpu_secs += secs;
                #[cfg(feature = "audit")]
                if let Some(c) = claims.get_mut(i) {
                    *c += 1;
                }
                // i was handed to the worker from `pending`, so it is
                // always in range; a lost write is caught by the
                // never-claimed check in gather.
                if let Some(slot) = slots.get_mut(i) {
                    *slot = Some(y);
                }
            }
        }
        // Work-stealing audit: every *pending* start claimed exactly once
        // (an out-of-range claim would read as zero and fail the audit).
        #[cfg(feature = "audit")]
        if mlpart_audit::enabled() {
            let pending_claims: Vec<u32> = pending
                .iter()
                .map(|&i| claims.get(i).copied().unwrap_or(0))
                .collect();
            mlpart_audit::enforce(mlpart_audit::audit_start_claims(&pending_claims));
        }
    }

    // Gather in start order: splice traces, split outcomes, merge retries.
    let mut survivors: Vec<(usize, T)> = Vec::with_capacity(runs);
    let mut failures: Vec<StartFailure> = Vec::new();
    let mut retries: Vec<RetryRecord> = Vec::new();
    let mut attempts: Vec<u32> = Vec::with_capacity(runs);
    for (i, slot) in slots.into_iter().enumerate() {
        let y = slot.ok_or_else(|| ExecError::Lost {
            detail: format!("start {i} was never claimed by any worker"),
        })?;
        append_contribution(&y.trace);
        attempts.push(y.attempts);
        retries.extend(y.retries);
        match y.outcome {
            Ok(value) => survivors.push((i, value)),
            Err(failure) => failures.push(failure),
        }
    }
    let timing = ExecTiming {
        wall_secs: wall.elapsed().as_secs_f64(),
        cpu_secs,
    };
    if survivors.is_empty() {
        return Err(ExecError::AllStartsFailed { failures });
    }
    Ok((
        SupervisedBatch {
            survivors,
            failures,
            retries,
            attempts,
        },
        timing,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::try_run_starts;
    use rand::Rng;
    use std::sync::Mutex;

    fn draw_job(rng: &mut MlRng, _ws: &mut RefineWorkspace, _a: Attempt) -> u64 {
        rng.gen_range(0..u64::MAX)
    }

    fn plain_job(rng: &mut MlRng, _ws: &mut RefineWorkspace) -> u64 {
        rng.gen_range(0..u64::MAX)
    }

    /// With max_attempts == 1, no resume, and no sink, the supervised runner
    /// is the unsupervised runner: same survivors, same attempt-0 seeds.
    #[test]
    fn retry_free_supervised_matches_unsupervised() {
        let policy = RetryPolicy::default();
        for threads in [1, 2, 4, 8] {
            let (sup, _) = run_supervised(
                11,
                97,
                threads,
                &policy,
                ResumeState::default(),
                None,
                &draw_job,
            )
            .expect("survivors");
            let (uns, _) = try_run_starts(11, 97, threads, &plain_job).expect("survivors");
            assert_eq!(sup.survivors, uns.survivors, "threads={threads}");
            assert_eq!(sup.failures, uns.failures, "threads={threads}");
            assert!(sup.retries.is_empty());
            assert_eq!(sup.attempts, vec![1; 11]);
        }
    }

    /// The merged trace of a retry-free supervised batch is content-equal to
    /// the unsupervised runner's, so downstream trace consumers cannot tell
    /// the supervisor was in the loop.
    #[cfg(feature = "obs")]
    #[test]
    fn retry_free_trace_is_byte_compatible() {
        mlpart_obs::force_enabled(true);
        let span_sup = |rng: &mut MlRng, _ws: &mut RefineWorkspace, _a: Attempt| -> u64 {
            let v = rng.gen_range(0..1000u64);
            mlpart_obs::counter("draw", &[("value", v.into())]);
            v
        };
        let span_uns = |rng: &mut MlRng, _ws: &mut RefineWorkspace| -> u64 {
            let v = rng.gen_range(0..1000u64);
            mlpart_obs::counter("draw", &[("value", v.into())]);
            v
        };
        let policy = RetryPolicy::default();
        let (_, sup_trace) = mlpart_obs::capture(|| {
            run_supervised(9, 41, 3, &policy, ResumeState::default(), None, &span_sup)
                .expect("survivors")
        });
        let (_, uns_trace) =
            mlpart_obs::capture(|| try_run_starts(9, 41, 3, &span_uns).expect("survivors"));
        mlpart_obs::force_enabled(false);
        let strip = |t: Option<mlpart_obs::Trace>| {
            mlpart_obs::strip_timing(&mlpart_obs::to_jsonl(&t.expect("gate forced on")))
        };
        assert_eq!(strip(sup_trace), strip(uns_trace));
    }

    #[test]
    fn policy_clamps_attempts_into_stride() {
        let mut p = RetryPolicy {
            max_attempts: 0,
            ..RetryPolicy::default()
        };
        assert_eq!(p.attempts(), 1);
        p.max_attempts = 100;
        assert_eq!(p.attempts(), ATTEMPT_STRIDE as u32);
        p.max_attempts = 3;
        assert_eq!(p.attempts(), 3);
    }

    #[test]
    fn resume_rejects_out_of_range_and_duplicate_starts() {
        let prior = |start: usize| PriorStart::<u64> {
            start,
            attempts: 1,
            outcome: Ok(7),
            retries: Vec::new(),
            trace: StartContribution::default(),
        };
        let policy = RetryPolicy::default();
        let oob = ResumeState {
            done: vec![prior(5)],
        };
        match run_supervised(3, 1, 1, &policy, oob, None, &draw_job) {
            Err(ExecError::Lost { detail }) => assert!(detail.contains("start 5"), "{detail}"),
            other => panic!("expected Lost, got {other:?}"),
        }
        let dup = ResumeState {
            done: vec![prior(1), prior(1)],
        };
        match run_supervised(3, 1, 1, &policy, dup, None, &draw_job) {
            Err(ExecError::Lost { detail }) => assert!(detail.contains("twice"), "{detail}"),
            other => panic!("expected Lost, got {other:?}"),
        }
    }

    /// The sink sees every *pending* start exactly once; resumed starts are
    /// restored without re-running or re-notifying.
    #[test]
    fn sink_fires_once_per_fresh_start_only() {
        let policy = RetryPolicy::default();
        let (full, _) = run_supervised(8, 13, 1, &policy, ResumeState::default(), None, &draw_job)
            .expect("survivors");
        let resume = ResumeState {
            done: full
                .survivors
                .iter()
                .filter(|(i, _)| *i < 3)
                .map(|&(start, v)| PriorStart {
                    start,
                    attempts: 1,
                    outcome: Ok(v),
                    retries: Vec::new(),
                    trace: StartContribution::default(),
                })
                .collect(),
        };
        let seen: Mutex<Vec<usize>> = Mutex::new(Vec::new());
        let sink = |done: &StartDone<u64>| {
            assert_eq!(done.attempts, 1);
            assert!(done.retries.is_empty());
            assert!(done.outcome.is_ok());
            seen.lock().unwrap().push(done.start);
        };
        for threads in [1, 4] {
            seen.lock().unwrap().clear();
            let (resumed, _) = run_supervised(
                8,
                13,
                threads,
                &policy,
                resume.clone(),
                Some(&sink),
                &draw_job,
            )
            .expect("survivors");
            assert_eq!(resumed.survivors, full.survivors, "threads={threads}");
            let mut notified = seen.lock().unwrap().clone();
            notified.sort_unstable();
            assert_eq!(notified, vec![3, 4, 5, 6, 7], "threads={threads}");
        }
    }

    /// A fully-restored batch runs no jobs at all and returns verbatim.
    #[test]
    fn full_resume_runs_nothing() {
        let policy = RetryPolicy::default();
        let (full, _) = run_supervised(5, 29, 1, &policy, ResumeState::default(), None, &draw_job)
            .expect("survivors");
        let resume = ResumeState {
            done: full
                .survivors
                .iter()
                .map(|&(start, v)| PriorStart {
                    start,
                    attempts: 1,
                    outcome: Ok(v),
                    retries: Vec::new(),
                    trace: StartContribution::default(),
                })
                .collect(),
        };
        let poisoned = |_rng: &mut MlRng, _ws: &mut RefineWorkspace, a: Attempt| -> u64 {
            panic!("job ran for start {} despite full resume", a.start)
        };
        let (resumed, timing) =
            run_supervised(5, 29, 4, &policy, resume, None, &poisoned).expect("restored");
        assert_eq!(resumed.survivors, full.survivors);
        assert_eq!(timing.cpu_secs, 0.0);
    }

    /// Restored failures count toward the all-failed check: resuming a batch
    /// whose every start failed is still the typed error.
    #[test]
    fn full_resume_of_failures_is_all_failed() {
        let policy = RetryPolicy::default();
        let resume = ResumeState::<u64> {
            done: (0..3)
                .map(|start| PriorStart {
                    start,
                    attempts: 2,
                    outcome: Err(StartFailure {
                        start,
                        message: "boom".to_string(),
                        phase: None,
                    }),
                    retries: Vec::new(),
                    trace: StartContribution::default(),
                })
                .collect(),
        };
        match run_supervised(3, 7, 1, &policy, resume, None, &draw_job) {
            Err(ExecError::AllStartsFailed { failures }) => assert_eq!(failures.len(), 3),
            other => panic!("expected AllStartsFailed, got {other:?}"),
        }
    }

    #[test]
    fn retry_record_display_is_informative() {
        let r = RetryRecord {
            start: 3,
            attempt: 1,
            message: "overflow".to_string(),
            phase: Some("fm_refine".to_string()),
        };
        assert_eq!(
            r.to_string(),
            "start 3 attempt 1 panicked in fm_refine: overflow (retried)"
        );
        let bare = RetryRecord {
            start: 0,
            attempt: 0,
            message: "boom".to_string(),
            phase: None,
        };
        assert_eq!(
            bare.to_string(),
            "start 0 attempt 0 panicked: boom (retried)"
        );
    }

    #[test]
    fn into_batch_drops_supervision_extras() {
        let policy = RetryPolicy::default();
        let (sup, _) = run_supervised(4, 3, 1, &policy, ResumeState::default(), None, &draw_job)
            .expect("survivors");
        let survivors = sup.survivors.clone();
        let batch = sup.into_batch();
        assert_eq!(batch.survivors, survivors);
        assert!(batch.failures.is_empty());
    }
}
