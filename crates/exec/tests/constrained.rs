//! The determinism contract extended to constraint-aware jobs: a multi-start
//! batch of constrained pipelines is bit-identical at every thread count
//! (1, 4, 8), and every surviving start honors the fixed-module pins. The
//! runner is generic over the job closure, so constraints flow through by
//! capture — these tests pin down that nothing in the fan-out path can
//! perturb a constrained result.

use mlpart_core::{
    ml_bipartition_constrained_in, ml_kway_constrained_in, recursive_ml_partition_budgeted_in,
    BudgetMeter, Constraints, MlConfig, MlKwayConfig,
};
use mlpart_exec::run_starts;
use mlpart_fm::RefineWorkspace;
use mlpart_hypergraph::rng::MlRng;
use mlpart_hypergraph::{Hypergraph, HypergraphBuilder, ModuleId, PartId, Partition};

fn two_communities(half: usize) -> Hypergraph {
    let mut b = HypergraphBuilder::with_unit_areas(2 * half);
    for base in [0, half] {
        for i in 0..half {
            b.add_net([base + i, base + (i + 1) % half]).unwrap();
            b.add_net([base + i, base + (i + 3) % half]).unwrap();
        }
    }
    b.add_net([half - 1, half]).unwrap();
    b.build().unwrap()
}

fn assert_pins(p: &Partition, fixed: &[(ModuleId, PartId)], ctx: &str) {
    for &(v, part) in fixed {
        assert_eq!(p.part(v), part, "{ctx}: module {v:?} moved");
    }
}

#[test]
fn constrained_bipartition_batch_is_thread_count_invariant() {
    let h = two_communities(48);
    let c = Constraints::new(2, 0.2, vec![(ModuleId::new(0), 1), (ModuleId::new(60), 0)]).unwrap();
    let cfg = MlConfig::default();
    let job = |rng: &mut MlRng, ws: &mut RefineWorkspace| {
        let (p, r) = ml_bipartition_constrained_in(&h, &cfg, &c, rng, ws);
        (p.assignment().to_vec(), r.cut)
    };
    let (seq, _) = run_starts(12, 7, 1, &job);
    for (i, (assignment, _)) in seq.iter().enumerate() {
        let p = Partition::from_assignment(&h, 2, assignment.clone()).unwrap();
        assert_pins(&p, c.fixed(), &format!("start {i}"));
    }
    for threads in [4, 8] {
        let (par, _) = run_starts(12, 7, threads, &job);
        assert_eq!(seq, par, "threads={threads}");
    }
}

#[test]
fn constrained_kway_batch_is_thread_count_invariant() {
    let h = two_communities(48);
    let c = Constraints::new(4, 0.2, vec![(ModuleId::new(3), 2), (ModuleId::new(50), 0)]).unwrap();
    let cfg = MlKwayConfig::default();
    let job = |rng: &mut MlRng, ws: &mut RefineWorkspace| {
        let (p, r) = ml_kway_constrained_in(&h, &cfg, &c, rng, ws);
        (p.assignment().to_vec(), r.cut)
    };
    let (seq, _) = run_starts(12, 11, 1, &job);
    for (i, (assignment, _)) in seq.iter().enumerate() {
        let p = Partition::from_assignment(&h, 4, assignment.clone()).unwrap();
        assert_pins(&p, c.fixed(), &format!("start {i}"));
    }
    for threads in [4, 8] {
        let (par, _) = run_starts(12, 11, threads, &job);
        assert_eq!(seq, par, "threads={threads}");
    }
}

#[test]
fn constrained_general_k_batch_is_thread_count_invariant() {
    let h = two_communities(36);
    let c = Constraints::new(3, 0.2, vec![(ModuleId::new(1), 2)]).unwrap();
    let cfg = MlConfig::default();
    let job = |rng: &mut MlRng, ws: &mut RefineWorkspace| {
        let (p, r) = recursive_ml_partition_budgeted_in(
            &h,
            &cfg,
            &c,
            rng,
            ws,
            &mut BudgetMeter::unlimited(),
        );
        (p.assignment().to_vec(), r.cut)
    };
    let (seq, _) = run_starts(8, 29, 1, &job);
    for (i, (assignment, _)) in seq.iter().enumerate() {
        let p = Partition::from_assignment(&h, 3, assignment.clone()).unwrap();
        assert_pins(&p, c.fixed(), &format!("start {i}"));
    }
    for threads in [4, 8] {
        let (par, _) = run_starts(8, 29, threads, &job);
        assert_eq!(seq, par, "threads={threads}");
    }
}
