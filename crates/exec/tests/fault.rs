//! Fault-injection tests for the execution layer (needs `--features fault`).
//!
//! These live in their own integration-test binary, not the lib's unit
//! tests, because a forced fault plan is process-global: while one test
//! holds it, any *other* test calling `run_starts` concurrently in the same
//! process would see the injected panics. Here every test grabs
//! `mlpart_fault::test_lock()`, so within this process the forced-plan
//! windows are serialized and nothing else runs a batch.

#![cfg(feature = "fault")]

use mlpart_exec::{run_starts, try_run_starts};
use mlpart_fm::RefineWorkspace;
use mlpart_hypergraph::rng::MlRng;
use rand::Rng;

fn job(rng: &mut MlRng, _ws: &mut RefineWorkspace) -> u64 {
    rng.gen_range(0..1_000_000u64)
}

/// Injected per-start panics at the `start` site exercise the same recovery
/// path as organic panics, keyed deterministically off the start index.
#[test]
fn injected_start_panics_are_isolated() {
    let _gate = mlpart_fault::test_lock();
    mlpart_fault::force_plan(mlpart_fault::FaultPlan::parse("panic@start:1|3").unwrap());
    let result = try_run_starts(6, 91, 2, &job);
    mlpart_fault::clear_force();
    let (batch, _) = result.expect("survivors exist");
    assert_eq!(
        batch.failures.iter().map(|f| f.start).collect::<Vec<_>>(),
        vec![1, 3]
    );
    assert!(batch.failures[0]
        .message
        .contains("injected fault: panic@start:1"));
    assert_eq!(batch.survivors.len(), 4);
    // Survivors match an uninjected run with those starts removed.
    mlpart_fault::force_off();
    let (clean, _) = run_starts(6, 91, 1, &job);
    mlpart_fault::clear_force();
    for &(i, v) in &batch.survivors {
        assert_eq!(v, clean[i], "start {i}");
    }
}

/// A probabilistic selector (`p=...@SEED`) is a pure function of the site
/// index, so the same starts fail at every thread count.
#[test]
fn probabilistic_faults_are_thread_count_invariant() {
    let _gate = mlpart_fault::test_lock();
    mlpart_fault::force_plan(mlpart_fault::FaultPlan::parse("panic@start:p=0.4@7").unwrap());
    let reference = try_run_starts(10, 33, 1, &job);
    let parallel = try_run_starts(10, 33, 4, &job);
    mlpart_fault::clear_force();
    match (reference, parallel) {
        (Ok((a, _)), Ok((b, _))) => {
            assert_eq!(a.survivors, b.survivors);
            assert_eq!(
                a.failures.iter().map(|f| f.start).collect::<Vec<_>>(),
                b.failures.iter().map(|f| f.start).collect::<Vec<_>>()
            );
            assert!(!a.failures.is_empty(), "p=0.4 over 10 starts should hit");
        }
        other => panic!("expected surviving batches, got {other:?}"),
    }
}
