//! Property tests for the deterministic parallel runner: for every
//! (runs, threads) pair the parallel batch must be bit-identical to the
//! sequential one, and the reduction must break ties by lowest start index.

use mlpart_exec::{best_index_by_key, run_starts};
use mlpart_fm::RefineWorkspace;
use mlpart_hypergraph::rng::MlRng;
use proptest::prelude::*;
use rand::Rng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn parallel_matches_sequential(runs in 1usize..40, threads in 1usize..9, seed in 0u64..1000) {
        let job = |rng: &mut MlRng, _ws: &mut RefineWorkspace| -> u64 {
            rng.gen_range(0..1_000u64)
        };
        let (seq, _) = run_starts(runs, seed, 1, &job);
        let (par, _) = run_starts(runs, seed, threads, &job);
        prop_assert_eq!(seq, par);
    }

    #[test]
    fn reduction_picks_lowest_index_of_minimum(values in proptest::collection::vec(0u64..8, 1..50)) {
        let best = best_index_by_key(&values, |&v| v);
        let min = *values.iter().min().expect("non-empty");
        prop_assert_eq!(values[best], min);
        // No earlier element attains the minimum.
        prop_assert!(values[..best].iter().all(|&v| v > min));
    }

    #[test]
    fn reduction_is_schedule_independent(runs in 1usize..30, threads in 2usize..9, seed in 0u64..500) {
        // Many deliberate ties: cuts collapse to a handful of values, so the
        // winner is almost always a tie-break decision.
        let job = |rng: &mut MlRng, _ws: &mut RefineWorkspace| -> u64 {
            rng.gen_range(0..3u64)
        };
        let (seq, _) = run_starts(runs, seed, 1, &job);
        let (par, _) = run_starts(runs, seed, threads, &job);
        prop_assert_eq!(
            best_index_by_key(&seq, |&v| v),
            best_index_by_key(&par, |&v| v)
        );
    }
}
