//! Fault-injection tests for the supervised runner (needs `--features
//! fault`).
//!
//! Same process-global caveat as `fault.rs`: every test holds
//! `mlpart_fault::test_lock()` while a forced plan is installed, so the
//! injected panics can never leak into another test's batch.
//!
//! The determinism spec under test: survivors, failures, retry records, and
//! per-start attempt counts are bit-identical at every thread count and
//! across any interrupt/resume split, with the sequential single-thread run
//! as the oracle.

#![cfg(feature = "fault")]

use mlpart_exec::{
    run_supervised, Attempt, ExecError, PriorStart, ResumeState, RetryPolicy, StartDone,
    SupervisedBatch, ATTEMPT_STRIDE,
};
use mlpart_fm::{Budget, RefineWorkspace};
use mlpart_hypergraph::rng::{child_seed, seeded_rng, MlRng};
use rand::Rng;
use std::sync::Mutex;

fn draw_job(rng: &mut MlRng, _ws: &mut RefineWorkspace, _a: Attempt) -> u64 {
    rng.gen_range(0..u64::MAX)
}

/// Runs a supervised batch with the `attempt`-site failures in `fail`
/// injected (each entry is `(start, attempt)`), returning the batch.
fn run_with_attempt_faults(
    runs: usize,
    seed: u64,
    threads: usize,
    policy: &RetryPolicy,
    fail: &[(usize, u32)],
) -> Result<SupervisedBatch<u64>, ExecError> {
    let _gate = mlpart_fault::test_lock();
    if fail.is_empty() {
        mlpart_fault::force_off();
    } else {
        let idx: Vec<String> = fail
            .iter()
            .map(|&(i, a)| (i as u64 * ATTEMPT_STRIDE + u64::from(a)).to_string())
            .collect();
        let plan = format!("panic@attempt:{}", idx.join("|"));
        mlpart_fault::force_plan(mlpart_fault::FaultPlan::parse(&plan).expect("valid plan"));
    }
    let result = run_supervised(
        runs,
        seed,
        threads,
        policy,
        ResumeState::default(),
        None,
        &draw_job,
    );
    mlpart_fault::clear_force();
    result.map(|(batch, _)| batch)
}

/// A failed attempt is absorbed as a retry record and the next attempt runs
/// from its own seed stream — visibly a different deterministic start.
#[test]
fn failed_attempts_are_retried_with_reseeded_streams() {
    let policy = RetryPolicy {
        max_attempts: 3,
        degraded_final: None,
    };
    // Start 2 fails attempt 0; start 5 fails attempts 0 and 1.
    let batch =
        run_with_attempt_faults(7, 61, 1, &policy, &[(2, 0), (5, 0), (5, 1)]).expect("survivors");
    assert!(batch.failures.is_empty());
    assert_eq!(batch.attempts, vec![1, 1, 2, 1, 1, 3, 1]);
    assert_eq!(
        batch
            .retries
            .iter()
            .map(|r| (r.start, r.attempt))
            .collect::<Vec<_>>(),
        vec![(2, 0), (5, 0), (5, 1)]
    );
    assert!(batch.retries[0].message.contains("injected fault"));
    // Survivor values come from the attempt that succeeded: attempt 0 draws
    // from child_seed(seed, i), attempt a > 0 from the nested stream.
    let value = |i: u64, a: u64| -> u64 {
        let seed = if a == 0 {
            child_seed(61, i)
        } else {
            child_seed(child_seed(61, i), a)
        };
        seeded_rng(seed).gen_range(0..u64::MAX)
    };
    for &(i, v) in &batch.survivors {
        let attempts = batch.attempts[i];
        assert_eq!(v, value(i as u64, u64::from(attempts - 1)), "start {i}");
    }
}

/// A persistent fault (the `start` site fires on every attempt) exhausts
/// the policy: max-1 retry records, then a final StartFailure.
#[test]
fn persistent_failures_exhaust_attempts() {
    let _gate = mlpart_fault::test_lock();
    mlpart_fault::force_plan(mlpart_fault::FaultPlan::parse("panic@start:3").unwrap());
    let policy = RetryPolicy {
        max_attempts: 4,
        degraded_final: None,
    };
    let result = run_supervised(6, 83, 2, &policy, ResumeState::default(), None, &draw_job);
    mlpart_fault::clear_force();
    let (batch, _) = result.expect("other starts survive");
    assert_eq!(batch.failures.len(), 1);
    assert_eq!(batch.failures[0].start, 3);
    assert_eq!(batch.attempts[3], 4);
    assert_eq!(
        batch
            .retries
            .iter()
            .map(|r| (r.start, r.attempt))
            .collect::<Vec<_>>(),
        vec![(3, 0), (3, 1), (3, 2)]
    );
    assert_eq!(batch.survivors.len(), 5);
}

/// The whole supervised batch — survivors, failures, retries, attempts —
/// is bit-identical at 1, 2, 4, and 8 threads.
#[test]
fn supervised_batches_are_thread_count_invariant() {
    let policy = RetryPolicy {
        max_attempts: 3,
        degraded_final: None,
    };
    let fail = [(0usize, 0u32), (0, 1), (4, 0), (9, 1), (11, 0), (11, 1)];
    let oracle = run_with_attempt_faults(12, 29, 1, &policy, &fail).expect("survivors");
    assert!(!oracle.retries.is_empty());
    for threads in [2, 4, 8] {
        let batch = run_with_attempt_faults(12, 29, threads, &policy, &fail).expect("survivors");
        assert_eq!(batch, oracle, "threads={threads}");
    }
}

/// The degraded budget reaches the job only on a start's final attempt.
#[test]
fn degraded_budget_reaches_only_the_final_attempt() {
    let seen: Mutex<Vec<(usize, u32, bool)>> = Mutex::new(Vec::new());
    let job = |rng: &mut MlRng, _ws: &mut RefineWorkspace, a: Attempt| -> u64 {
        seen.lock()
            .unwrap()
            .push((a.start, a.attempt, a.budget.is_some()));
        if let Some(b) = a.budget {
            assert_eq!(b.max_passes, Some(2));
        }
        rng.gen_range(0..u64::MAX)
    };
    let policy = RetryPolicy {
        max_attempts: 3,
        degraded_final: Some(Budget {
            max_passes: Some(2),
            ..Budget::UNLIMITED
        }),
    };
    let _gate = mlpart_fault::test_lock();
    // Start 1 burns attempts 0 and 1, so its attempt 2 is final + degraded.
    let idx = |i: u64, a: u64| (i * ATTEMPT_STRIDE + a).to_string();
    let plan = format!("panic@attempt:{}|{}", idx(1, 0), idx(1, 1));
    mlpart_fault::force_plan(mlpart_fault::FaultPlan::parse(&plan).unwrap());
    let result = run_supervised(3, 17, 1, &policy, ResumeState::default(), None, &job);
    mlpart_fault::clear_force();
    let (batch, _) = result.expect("survivors");
    assert!(batch.failures.is_empty());
    assert_eq!(batch.attempts, vec![1, 3, 1]);
    // Only (start 1, attempt 2) — a final attempt after real failures — saw
    // the degraded budget. Attempt 0 of a 3-attempt policy never does.
    let seen = seen.lock().unwrap();
    for &(start, attempt, degraded) in seen.iter() {
        assert_eq!(degraded, start == 1 && attempt == 2, "({start}, {attempt})");
    }
}

/// Splitting a batch at any point and resuming from the sink's records
/// reproduces the uninterrupted batch bit-for-bit — retries included.
#[test]
fn any_resume_split_matches_the_uninterrupted_batch() {
    let policy = RetryPolicy {
        max_attempts: 3,
        degraded_final: None,
    };
    let fail = [(1usize, 0u32), (3, 0), (3, 1), (3, 2), (6, 1)];
    let full = run_with_attempt_faults(8, 71, 1, &policy, &fail).expect("survivors");

    // Re-run with a sink to capture per-start checkpoint records.
    let records: Mutex<Vec<PriorStart<u64>>> = Mutex::new(Vec::new());
    let sink = |done: &StartDone<u64>| {
        records.lock().unwrap().push(PriorStart {
            start: done.start,
            attempts: done.attempts,
            outcome: match done.outcome {
                Ok(v) => Ok(*v),
                Err(f) => Err(f.clone()),
            },
            retries: done.retries.to_vec(),
            trace: done.trace.clone(),
        });
    };
    {
        let _gate = mlpart_fault::test_lock();
        let plan: Vec<String> = fail
            .iter()
            .map(|&(i, a)| (i as u64 * ATTEMPT_STRIDE + u64::from(a)).to_string())
            .collect();
        mlpart_fault::force_plan(
            mlpart_fault::FaultPlan::parse(&format!("panic@attempt:{}", plan.join("|"))).unwrap(),
        );
        let result = run_supervised(
            8,
            71,
            2,
            &policy,
            ResumeState::default(),
            Some(&sink),
            &draw_job,
        );
        mlpart_fault::clear_force();
        result.expect("survivors");
    }
    let mut records = records.into_inner().unwrap();
    records.sort_by_key(|r| r.start);
    assert_eq!(records.len(), 8);

    // Resume from every prefix of completed starts, at 1 and 4 threads.
    for cut in 0..=8usize {
        let resume = ResumeState {
            done: records[..cut].to_vec(),
        };
        for threads in [1, 4] {
            let batch = {
                let _gate = mlpart_fault::test_lock();
                let plan: Vec<String> = fail
                    .iter()
                    .map(|&(i, a)| (i as u64 * ATTEMPT_STRIDE + u64::from(a)).to_string())
                    .collect();
                mlpart_fault::force_plan(
                    mlpart_fault::FaultPlan::parse(&format!("panic@attempt:{}", plan.join("|")))
                        .unwrap(),
                );
                let result =
                    run_supervised(8, 71, threads, &policy, resume.clone(), None, &draw_job);
                mlpart_fault::clear_force();
                result.expect("survivors").0
            };
            assert_eq!(batch, full, "cut={cut} threads={threads}");
        }
    }
}

/// Under `obs`, a resumed run's merged trace content is byte-identical to
/// the uninterrupted run's: resumed starts replay their checkpointed
/// contribution verbatim, retried attempts carry their attempt tag.
#[cfg(feature = "obs")]
#[test]
fn resumed_trace_content_matches_uninterrupted() {
    let span_job = |rng: &mut MlRng, _ws: &mut RefineWorkspace, _a: Attempt| -> u64 {
        let v = rng.gen_range(0..1000u64);
        mlpart_obs::counter("draw", &[("value", v.into())]);
        v
    };
    let policy = RetryPolicy {
        max_attempts: 2,
        degraded_final: None,
    };
    let with_plan = |f: &dyn Fn() -> (Option<mlpart_obs::Trace>, SupervisedBatch<u64>)| {
        let _gate = mlpart_fault::test_lock();
        mlpart_obs::force_enabled(true);
        mlpart_fault::force_plan(
            // attempt 0 of starts 1 and 4 (indices 8 and 32).
            mlpart_fault::FaultPlan::parse("panic@attempt:8|32").unwrap(),
        );
        let out = f();
        mlpart_fault::clear_force();
        mlpart_obs::force_enabled(false);
        out
    };
    let (full_trace, _full) = with_plan(&|| {
        let (batch, trace) = mlpart_obs::capture(|| {
            run_supervised(6, 19, 1, &policy, ResumeState::default(), None, &span_job)
                .expect("survivors")
                .0
        });
        (trace, batch)
    });

    // Capture checkpoint records, then resume from the first three starts.
    let records: Mutex<Vec<PriorStart<u64>>> = Mutex::new(Vec::new());
    let sink = |done: &StartDone<u64>| {
        records.lock().unwrap().push(PriorStart {
            start: done.start,
            attempts: done.attempts,
            outcome: match done.outcome {
                Ok(v) => Ok(*v),
                Err(f) => Err(f.clone()),
            },
            retries: done.retries.to_vec(),
            trace: done.trace.clone(),
        });
    };
    let _ = with_plan(&|| {
        let (batch, trace) = mlpart_obs::capture(|| {
            run_supervised(
                6,
                19,
                2,
                &policy,
                ResumeState::default(),
                Some(&sink),
                &span_job,
            )
            .expect("survivors")
            .0
        });
        (trace, batch)
    });
    let mut done = records.into_inner().unwrap();
    done.sort_by_key(|r| r.start);
    done.truncate(3);

    let (resumed_trace, _resumed) = with_plan(&|| {
        let resume = ResumeState { done: done.clone() };
        let (batch, trace) = mlpart_obs::capture(|| {
            run_supervised(6, 19, 4, &policy, resume, None, &span_job)
                .expect("survivors")
                .0
        });
        (trace, batch)
    });
    let strip = |t: Option<mlpart_obs::Trace>| {
        mlpart_obs::strip_timing(&mlpart_obs::to_jsonl(&t.expect("gate forced on")))
    };
    let full_jsonl = strip(full_trace);
    // The retried starts' second attempts are tagged in the wrapper span.
    assert!(full_jsonl.contains("\"attempt\":1"), "{full_jsonl}");
    assert_eq!(strip(resumed_trace), full_jsonl);
}

proptest::proptest! {
    #![proptest_config(proptest::prelude::ProptestConfig::with_cases(48))]

    /// The supervision contract over random (runs, threads, failure-set,
    /// policy) tuples, with the sequential run as the oracle: the full
    /// batch is bit-identical at every thread count, starts whose failure
    /// count is below max_attempts survive with the matching retry records,
    /// and starts at or above it fail.
    #[test]
    fn prop_supervised_matches_sequential_oracle(
        runs in 1usize..10,
        threads in 1usize..9,
        seed in 0u64..10_000,
        max_attempts in 1u32..5,
        fail_counts in proptest::collection::vec(0u32..5, 10),
    ) {
        use proptest::prelude::*;
        let policy = RetryPolicy { max_attempts, degraded_final: None };
        // fail_counts[i] = number of leading attempts of start i that fail.
        let fail: Vec<(usize, u32)> = (0..runs)
            .flat_map(|i| (0..fail_counts[i].min(max_attempts)).map(move |a| (i, a)))
            .collect();
        let oracle = run_with_attempt_faults(runs, seed, 1, &policy, &fail);
        let parallel = run_with_attempt_faults(runs, seed, threads, &policy, &fail);
        let expect_failed: Vec<usize> =
            (0..runs).filter(|&i| fail_counts[i] >= max_attempts).collect();
        match (oracle, parallel) {
            (Ok(a), Ok(b)) => {
                prop_assert!(expect_failed.len() < runs);
                prop_assert_eq!(
                    a.failures.iter().map(|f| f.start).collect::<Vec<_>>(),
                    expect_failed
                );
                prop_assert_eq!(
                    a.retries.iter().map(|r| (r.start, r.attempt)).collect::<Vec<_>>(),
                    fail.iter()
                        .copied()
                        .filter(|&(_, att)| att + 1 < max_attempts)
                        .collect::<Vec<_>>()
                );
                for (i, (&got, &fails)) in a.attempts.iter().zip(&fail_counts).enumerate() {
                    // c failures then success consumes c+1 attempts; a
                    // persistent failure consumes all max_attempts.
                    prop_assert_eq!(got, fails.min(max_attempts - 1) + 1, "start {}", i);
                }
                prop_assert_eq!(a, b);
            }
            (Err(ExecError::AllStartsFailed { failures: a }),
             Err(ExecError::AllStartsFailed { failures: b })) => {
                prop_assert_eq!(expect_failed.len(), runs);
                prop_assert_eq!(a.len(), runs);
                prop_assert_eq!(&a, &b);
            }
            other => panic!("oracle and parallel disagree: {other:?}"),
        }
    }
}
