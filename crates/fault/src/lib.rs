//! Deterministic fault injection for the mlpart workspace.
//!
//! Fault tolerance that is never exercised is fault tolerance that does not
//! work. This crate injects three kinds of failures — panics, budget
//! exhaustion, and deterministic balance corruption — at named sites inside
//! the algorithm crates (`start` and `attempt` in the parallel executor,
//! `level` at uncoarsening boundaries, `pass` at refinement pass
//! boundaries), so every isolation, degradation, and repair path can be
//! negative-tested on real workloads.
//!
//! # Gating
//!
//! Mirrors `mlpart-audit`/`mlpart-obs` exactly: call sites are compiled in
//! only under per-crate `fault` cargo features, and at runtime nothing fires
//! unless the `MLPART_FAULTS` environment variable holds a fault plan (or a
//! test forces one with [`force_plan`]). With the feature compiled in but no
//! plan active, every hook is a cheap no-op and results are byte-identical
//! to an uninstrumented build — injection never perturbs the algorithms' RNG
//! streams.
//!
//! # Plan grammar
//!
//! A plan is a comma-separated list of `KIND@SITE[:SELECTOR]` entries:
//!
//! * `KIND` — `panic` (the site panics), `exhaust` (the budget meter
//!   reports the site's budget as exhausted, truncating the run), or
//!   `unbalance` (the site deterministically corrupts its solution's
//!   balance so the repair pass has something to fix).
//! * `SITE` — a site name (`start`, `attempt`, `level`, `pass`). The
//!   `attempt` site indexes retry attempts as `start * 8 + attempt`, so a
//!   fault can hit one attempt of one start without hitting its retries.
//! * `SELECTOR` — which hits trigger: omitted means **every** hit;
//!   `3` or `0|2|5` trigger on the listed indices only; `p=0.25` or
//!   `p=0.25@SEED` trigger pseudo-randomly with the given probability.
//!
//! ```text
//! MLPART_FAULTS="panic@start:2|5"          # starts 2 and 5 panic
//! MLPART_FAULTS="exhaust@pass:3"           # budget exhausts at pass 3
//! MLPART_FAULTS="panic@level:p=0.5@7"      # half of all levels panic
//! MLPART_FAULTS="panic@attempt:16"         # start 2, attempt 0 panics
//! MLPART_FAULTS="unbalance@start:0"        # start 0 needs balance repair
//! ```
//!
//! # Determinism
//!
//! Probabilistic selectors are keyed off a seeded SplitMix64 stream over
//! `(seed, site, index)` — the same finalizer `child_seed` uses — never off
//! OS entropy, wall-clock, or thread identity. A given plan therefore fires
//! at exactly the same sites on every run and at every thread count, so an
//! injected failure is always reproducible.
//!
//! ```
//! use mlpart_fault as fault;
//!
//! let plan = fault::FaultPlan::parse("panic@start:1").unwrap();
//! fault::force_plan(plan);
//! assert!(fault::should_panic("start", 1));
//! assert!(!fault::should_panic("start", 0));
//! assert!(!fault::should_exhaust("pass", 1));
//! fault::clear_force();
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// What an injected fault does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The site panics with a structured `injected fault: …` payload.
    Panic,
    /// The budget meter treats the site's budget as exhausted.
    Exhaust,
    /// The site deterministically corrupts its solution's balance,
    /// exercising the repair-to-feasible pass.
    Unbalance,
}

/// A malformed fault plan: the offending `KIND@SITE[:SELECTOR]` token plus
/// what was wrong with it. Surfaced by the CLI as an invalid-input error
/// (exit 2), never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanError {
    /// The plan entry that failed to parse, verbatim.
    pub token: String,
    /// Why the entry was rejected.
    pub reason: String,
}

impl PlanError {
    fn new(token: &str, reason: impl Into<String>) -> PlanError {
        PlanError {
            token: token.to_owned(),
            reason: reason.into(),
        }
    }
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "fault entry {:?}: {}", self.token, self.reason)
    }
}

impl std::error::Error for PlanError {}

/// Which hits of a site trigger the fault.
#[derive(Debug, Clone, PartialEq)]
pub enum Selector {
    /// Every hit triggers.
    All,
    /// Only the listed indices trigger.
    Indices(Vec<u64>),
    /// A hit at index `i` triggers when the SplitMix64 hash of
    /// `(seed, site, i)` falls below the probability threshold.
    Prob {
        /// Trigger probability in `[0, 1]`.
        p: f64,
        /// Seed of the deterministic selection stream.
        seed: u64,
    },
}

/// One `KIND@SITE[:SELECTOR]` plan entry.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// What happens when the entry fires.
    pub kind: FaultKind,
    /// Site name the entry is bound to (`start`, `level`, `pass`).
    pub site: String,
    /// Which hits fire.
    pub selector: Selector,
}

/// A parsed fault plan: the set of active injection entries.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Plan entries, in spec order.
    pub specs: Vec<FaultSpec>,
}

/// SplitMix64 finalizer — the same mixer `child_seed` uses, reimplemented
/// here so this crate stays dependency-free.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a over the site name, so each site gets an independent stream.
fn site_hash(site: &str) -> u64 {
    site.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x100_0000_01b3)
    })
}

impl Selector {
    fn triggers(&self, site: &str, idx: u64) -> bool {
        match self {
            Selector::All => true,
            Selector::Indices(list) => list.contains(&idx),
            Selector::Prob { p, seed } => {
                let draw = splitmix(seed ^ site_hash(site) ^ idx.wrapping_mul(0x9e37_79b9));
                // Map the draw to [0, 1) and compare; p >= 1 always fires.
                (draw >> 11) as f64 / (1u64 << 53) as f64 > 1.0 - p
            }
        }
    }
}

impl FaultPlan {
    /// Parses a plan spec (the `MLPART_FAULTS` grammar above).
    ///
    /// # Errors
    ///
    /// Returns a typed [`PlanError`] naming the malformed entry verbatim.
    pub fn parse(spec: &str) -> Result<FaultPlan, PlanError> {
        let mut specs = Vec::new();
        for entry in spec.split(',').map(str::trim).filter(|e| !e.is_empty()) {
            let (kind_str, rest) = entry
                .split_once('@')
                .ok_or_else(|| PlanError::new(entry, "expected KIND@SITE[:SELECTOR]"))?;
            let kind = match kind_str {
                "panic" => FaultKind::Panic,
                "exhaust" => FaultKind::Exhaust,
                "unbalance" => FaultKind::Unbalance,
                other => {
                    return Err(PlanError::new(
                        entry,
                        format!("unknown kind {other:?} (expected panic, exhaust, or unbalance)"),
                    ))
                }
            };
            let (site, selector) = match rest.split_once(':') {
                None => (rest, Selector::All),
                Some((site, sel)) => (site, Self::parse_selector(entry, sel)?),
            };
            if site.is_empty() {
                return Err(PlanError::new(entry, "empty site name"));
            }
            specs.push(FaultSpec {
                kind,
                site: site.to_owned(),
                selector,
            });
        }
        Ok(FaultPlan { specs })
    }

    fn parse_selector(entry: &str, sel: &str) -> Result<Selector, PlanError> {
        if let Some(prob) = sel.strip_prefix("p=") {
            let (p_str, seed_str) = match prob.split_once('@') {
                Some((p, s)) => (p, Some(s)),
                None => (prob, None),
            };
            let p: f64 = p_str
                .parse()
                .map_err(|_| PlanError::new(entry, format!("bad probability {p_str:?}")))?;
            if !(0.0..=1.0).contains(&p) {
                return Err(PlanError::new(entry, "probability not in [0, 1]"));
            }
            let seed = match seed_str {
                Some(s) => s
                    .parse()
                    .map_err(|_| PlanError::new(entry, format!("bad seed {s:?}")))?,
                None => 0,
            };
            return Ok(Selector::Prob { p, seed });
        }
        let indices: Result<Vec<u64>, _> = sel.split('|').map(str::parse).collect();
        match indices {
            Ok(list) if !list.is_empty() => Ok(Selector::Indices(list)),
            _ => Err(PlanError::new(entry, format!("bad selector {sel:?}"))),
        }
    }

    /// True when any entry of `kind` at `site` triggers for hit `idx`.
    pub fn triggers(&self, kind: FaultKind, site: &str, idx: u64) -> bool {
        self.specs
            .iter()
            .any(|s| s.kind == kind && s.site == site && s.selector.triggers(site, idx))
    }
}

// Runtime gate: 0 = follow MLPART_FAULTS, 1 = forced plan, 2 = forced off.
static MODE: AtomicU8 = AtomicU8::new(0);
static FORCED: Mutex<Option<Arc<FaultPlan>>> = Mutex::new(None);

fn env_plan() -> Option<&'static Arc<FaultPlan>> {
    static ENV: OnceLock<Option<Arc<FaultPlan>>> = OnceLock::new();
    ENV.get_or_init(|| {
        let spec = std::env::var("MLPART_FAULTS").ok()?;
        if spec.trim().is_empty() {
            return None;
        }
        // A malformed plan is a hard configuration error: silently running
        // *without* the requested faults would make a negative test pass
        // vacuously.
        let plan =
            FaultPlan::parse(&spec).unwrap_or_else(|e| panic!("invalid MLPART_FAULTS plan: {e}"));
        Some(Arc::new(plan))
    })
    .as_ref()
}

/// The active fault plan, if any: a forced plan takes precedence, then the
/// cached `MLPART_FAULTS` environment plan.
pub fn active_plan() -> Option<Arc<FaultPlan>> {
    match MODE.load(Ordering::Relaxed) {
        2 => None,
        1 => FORCED.lock().unwrap_or_else(|e| e.into_inner()).clone(),
        _ => env_plan().cloned(),
    }
}

/// True when a fault plan is active (injection may fire).
pub fn enabled() -> bool {
    match MODE.load(Ordering::Relaxed) {
        2 => false,
        1 => true,
        _ => env_plan().is_some(),
    }
}

/// Overrides the environment with an explicit plan for the whole process.
/// Tests use this together with [`test_lock`]; restore with [`clear_force`].
pub fn force_plan(plan: FaultPlan) {
    *FORCED.lock().unwrap_or_else(|e| e.into_inner()) = Some(Arc::new(plan));
    MODE.store(1, Ordering::Relaxed);
}

/// Returns to following the `MLPART_FAULTS` environment.
pub fn clear_force() {
    MODE.store(0, Ordering::Relaxed);
    *FORCED.lock().unwrap_or_else(|e| e.into_inner()) = None;
}

/// Forces injection *off* even when the process runs under `MLPART_FAULTS`
/// (CI's fault suite does), for tests asserting disabled behavior. Restore
/// with [`clear_force`].
pub fn force_off() {
    MODE.store(2, Ordering::Relaxed);
}

/// Serializes tests that flip the process-global plan, which would
/// otherwise race under the parallel test runner. Public because the
/// algorithm crates' fault tests share the same global.
pub fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// True when a `panic` fault at `site`/`idx` should fire.
pub fn should_panic(site: &str, idx: u64) -> bool {
    active_plan().is_some_and(|p| p.triggers(FaultKind::Panic, site, idx))
}

/// True when an `exhaust` fault at `site`/`idx` should fire (consumed by
/// the budget meter, which records it as an injected truncation).
pub fn should_exhaust(site: &str, idx: u64) -> bool {
    active_plan().is_some_and(|p| p.triggers(FaultKind::Exhaust, site, idx))
}

/// True when an `unbalance` fault at `site`/`idx` should fire (consumed by
/// the CLI, which deterministically overloads one part of the start's
/// solution so the repair-to-feasible pass is exercised end to end).
pub fn should_unbalance(site: &str, idx: u64) -> bool {
    active_plan().is_some_and(|p| p.triggers(FaultKind::Unbalance, site, idx))
}

/// Validates the `MLPART_FAULTS` environment variable without arming the
/// plan cache: `Ok(())` when the variable is unset, empty, or well-formed.
///
/// Binaries call this before any fault site can fire so a malformed plan
/// becomes a typed invalid-input error (exit 2) on stderr instead of a
/// panic deep inside a worker thread.
///
/// # Errors
///
/// The [`PlanError`] naming the offending plan token.
pub fn validate_env() -> Result<(), PlanError> {
    match std::env::var("MLPART_FAULTS") {
        Ok(spec) if !spec.trim().is_empty() => FaultPlan::parse(&spec).map(|_| ()),
        _ => Ok(()),
    }
}

/// Panics with a structured payload when a `panic` fault at `site`/`idx`
/// fires; no-op otherwise. The payload names the site and index so failure
/// records stay machine-checkable.
pub fn maybe_panic(site: &str, idx: u64) {
    if should_panic(site, idx) {
        panic!("injected fault: panic@{site}:{idx}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_documented_grammar() {
        let plan = FaultPlan::parse("panic@start:2|5, exhaust@pass:3,panic@level:p=0.5@7")
            .expect("parses");
        assert_eq!(plan.specs.len(), 3);
        assert_eq!(plan.specs[0].kind, FaultKind::Panic);
        assert_eq!(plan.specs[0].site, "start");
        assert_eq!(plan.specs[0].selector, Selector::Indices(vec![2, 5]));
        assert_eq!(plan.specs[1].kind, FaultKind::Exhaust);
        assert_eq!(plan.specs[2].selector, Selector::Prob { p: 0.5, seed: 7 });
        let all = FaultPlan::parse("panic@start").expect("parses");
        assert_eq!(all.specs[0].selector, Selector::All);
        assert_eq!(
            FaultPlan::parse("").expect("empty plan"),
            FaultPlan::default()
        );
    }

    #[test]
    fn rejects_malformed_entries() {
        for bad in [
            "panic",
            "panic@",
            "boom@start",
            "panic@start:",
            "panic@start:x",
            "panic@start:p=2",
            "panic@start:p=x",
            "panic@start:p=0.5@x",
            "unbalance@start:-1",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn plan_errors_name_the_offending_token() {
        // The bad entry is quoted verbatim even inside a longer plan, so a
        // user can find it in a multi-entry MLPART_FAULTS value.
        let err = FaultPlan::parse("panic@start:1,boom@pass,exhaust@level").expect_err("rejected");
        assert_eq!(err.token, "boom@pass");
        assert!(err.reason.contains("unknown kind"), "{err}");
        let rendered = err.to_string();
        assert!(rendered.contains("\"boom@pass\""), "{rendered}");

        let err = FaultPlan::parse("panic@start:p=1.5").expect_err("rejected");
        assert_eq!(err.token, "panic@start:p=1.5");
        assert!(err.reason.contains("[0, 1]"), "{err}");
    }

    /// Fuzz-ish sweep: no input, however mangled, may panic the parser —
    /// it either parses or returns a typed error naming a token.
    #[test]
    fn parser_never_panics_on_mangled_input() {
        let atoms = [
            "panic",
            "exhaust",
            "unbalance",
            "boom",
            "",
            "@",
            ":",
            ",",
            "p=",
            "p=0.5",
            "p=x",
            "start",
            "level",
            "pass",
            "attempt",
            "0",
            "1|2",
            "|",
            "@@",
            "::",
            "9999999999999999999",
            "p=0.25@42",
            "-3",
            "\u{1F980}",
            " ",
        ];
        // Deterministic recombination of atoms (SplitMix64-driven), a few
        // thousand adversarial plans.
        let mut z = 0x5eed_u64;
        for _ in 0..4000 {
            let mut plan = String::new();
            for _ in 0..(1 + (splitmix(z) % 5)) {
                z = z.wrapping_add(1);
                plan.push_str(atoms[(splitmix(z) % atoms.len() as u64) as usize]);
                z = z.wrapping_add(1);
                if splitmix(z).is_multiple_of(2) {
                    plan.push(',');
                }
            }
            match FaultPlan::parse(&plan) {
                Ok(_) => {}
                Err(e) => {
                    assert!(!e.token.is_empty(), "error for {plan:?} names no token");
                    assert!(!e.reason.is_empty(), "error for {plan:?} gives no reason");
                }
            }
        }
    }

    #[test]
    fn validate_env_matches_parse() {
        // validate_env reads the real environment; the test process does not
        // set MLPART_FAULTS (the CI fault suite runs the e2e flavor), so an
        // unset/empty variable must validate clean.
        if std::env::var("MLPART_FAULTS").map_or(true, |s| s.trim().is_empty()) {
            assert_eq!(validate_env(), Ok(()));
        }
    }

    #[test]
    fn unbalance_kind_parses_and_triggers() {
        let plan = FaultPlan::parse("unbalance@start:0|3").expect("parses");
        assert_eq!(plan.specs[0].kind, FaultKind::Unbalance);
        let _gate = test_lock();
        force_plan(plan);
        assert!(should_unbalance("start", 0));
        assert!(should_unbalance("start", 3));
        assert!(!should_unbalance("start", 1));
        assert!(!should_panic("start", 0));
        clear_force();
    }

    #[test]
    fn index_selectors_trigger_exactly() {
        let plan = FaultPlan::parse("panic@start:2|5").unwrap();
        for idx in 0..10 {
            assert_eq!(
                plan.triggers(FaultKind::Panic, "start", idx),
                idx == 2 || idx == 5
            );
            assert!(!plan.triggers(FaultKind::Panic, "pass", idx));
            assert!(!plan.triggers(FaultKind::Exhaust, "start", idx));
        }
    }

    #[test]
    fn probabilistic_selector_is_deterministic_and_calibrated() {
        let plan = FaultPlan::parse("panic@pass:p=0.25@42").unwrap();
        let fires: Vec<bool> = (0..4000)
            .map(|i| plan.triggers(FaultKind::Panic, "pass", i))
            .collect();
        let again: Vec<bool> = (0..4000)
            .map(|i| plan.triggers(FaultKind::Panic, "pass", i))
            .collect();
        assert_eq!(
            fires, again,
            "selection is a pure function of (seed, site, idx)"
        );
        let rate = fires.iter().filter(|&&b| b).count() as f64 / fires.len() as f64;
        assert!((rate - 0.25).abs() < 0.05, "rate {rate} far from 0.25");
        // Different sites and seeds give different streams.
        let other_site: Vec<bool> = (0..4000)
            .map(|i| plan.triggers(FaultKind::Panic, "pass2", i))
            .collect();
        assert!(!other_site.iter().any(|&b| b), "entries are site-scoped");
        let p0 = FaultPlan::parse("panic@pass:p=0").unwrap();
        assert!((0..100).all(|i| !p0.triggers(FaultKind::Panic, "pass", i)));
        let p1 = FaultPlan::parse("panic@pass:p=1").unwrap();
        assert!((0..100).all(|i| p1.triggers(FaultKind::Panic, "pass", i)));
    }

    #[test]
    fn force_gate_round_trips() {
        let _gate = test_lock();
        force_plan(FaultPlan::parse("panic@start:0").unwrap());
        assert!(enabled());
        assert!(should_panic("start", 0));
        assert!(!should_panic("start", 1));
        force_off();
        assert!(!enabled());
        assert!(!should_panic("start", 0));
        clear_force();
    }

    #[test]
    fn injected_panic_payload_is_structured() {
        let _gate = test_lock();
        force_plan(FaultPlan::parse("panic@level:3").unwrap());
        let err = std::panic::catch_unwind(|| maybe_panic("level", 3)).expect_err("fires");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .expect("string payload");
        assert_eq!(msg, "injected fault: panic@level:3");
        maybe_panic("level", 4); // selector miss: no panic
        clear_force();
    }
}
