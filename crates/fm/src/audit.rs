//! Phase-boundary invariant checkers for the 2-way engine state.
//!
//! Only compiled under the `audit` feature. These recompute the FM
//! engine's incremental structures from scratch — per-net pin counts,
//! per-module gains, bucket keys, the free/locked split, and the running
//! cut — and compare them against what the engine maintains. The engine
//! invokes them at the start and end of every pass when
//! [`mlpart_audit::enabled`] is on.
//!
//! Gains of *locked* modules are deliberately stale mid-pass (the FM
//! update rules skip them), so the deep gain/bucket audit runs at pass
//! start, when every module's gain has just been (re)initialized; the pass
//! end audit verifies the rolled-back cut and, in incremental-reinit mode,
//! the carried-over `pins_in`/`cut_cache`.

use crate::engine::{Engine, FmConfig};
use crate::state::RefineState;
use mlpart_audit::{audit_partition, AuditError, AuditResult};
use mlpart_hypergraph::{metrics, Hypergraph, Partition};

const ST: &str = "RefineState";

fn err(check: &'static str, detail: String) -> AuditError {
    AuditError::new(ST, check, detail)
}

/// Recomputed pin counts of one visible net; also reports whether it is cut.
fn recount_net(h: &Hypergraph, p: &Partition, e: mlpart_hypergraph::NetId) -> ([u32; 2], bool) {
    let mut counts = [0u32, 0];
    for &v in h.pins(e) {
        counts[p.part(v) as usize] += 1;
    }
    (counts, counts[0] > 0 && counts[1] > 0)
}

/// Checks that the bound state has the 2-way shape for `h` and that
/// `visible`/`pins_in` agree with a from-scratch recount. Returns the
/// recomputed visible (weighted) cut.
fn audit_counts(
    st: &RefineState,
    h: &Hypergraph,
    p: &Partition,
    cfg: &FmConfig,
) -> Result<u64, AuditError> {
    if st.k != 2 {
        return Err(err(
            "bound-k",
            format!("state bound with k={}, engine needs 2", st.k),
        ));
    }
    if st.visible.len() != h.num_nets() || st.pins_in.len() != 2 * h.num_nets() {
        return Err(err(
            "bound-shape",
            format!(
                "visible/pins_in sized {}/{} for {} nets",
                st.visible.len(),
                st.pins_in.len(),
                h.num_nets()
            ),
        ));
    }
    if st.gain.len() != h.num_modules() || st.locked.len() != h.num_modules() {
        return Err(err(
            "bound-shape",
            format!(
                "gain/locked sized {}/{} for {} modules",
                st.gain.len(),
                st.locked.len(),
                h.num_modules()
            ),
        ));
    }
    let mut cut = 0u64;
    for e in h.net_ids() {
        let want_visible = h.net_size(e) <= cfg.max_net_size;
        if st.visible[e.index()] != want_visible {
            return Err(err(
                "visibility",
                format!(
                    "net of size {} marked {}, max_net_size={}",
                    h.net_size(e),
                    st.visible[e.index()],
                    cfg.max_net_size
                ),
            )
            .with_net(e.index()));
        }
        if !want_visible {
            continue;
        }
        let (counts, is_cut) = recount_net(h, p, e);
        let stored = [st.pins(e.index(), 0), st.pins(e.index(), 1)];
        if stored != counts {
            return Err(err(
                "pins-recount",
                format!("stored pin counts {stored:?} != recomputed {counts:?}"),
            )
            .with_net(e.index()));
        }
        if is_cut {
            cut += h.net_weight(e) as u64;
        }
    }
    Ok(cut)
}

/// O(pins) from-scratch FM gain of `v` (cut-reduction of moving it across).
fn recompute_gain(
    st: &RefineState,
    h: &Hypergraph,
    p: &Partition,
    v: mlpart_hypergraph::ModuleId,
) -> i32 {
    let s = p.part(v) as usize;
    let o = 1 - s;
    let mut g = 0i32;
    for &e in h.nets(v) {
        if !st.visible[e.index()] {
            continue;
        }
        let w = h.net_weight(e) as i32;
        let (counts, _) = recount_net(h, p, e);
        if counts[s] == 1 {
            g += w;
        }
        if counts[o] == 0 {
            g -= w;
        }
    }
    g
}

/// Pass-start audit, run right after the buckets are filled: partition
/// balance counters, `visible`/`pins_in` recount, the engine's running cut,
/// every module's stored gain against an O(pins) recomputation, the CLIP
/// reference gains, bucket keys, and the free/locked split (every bucket
/// member unlocked; in non-boundary mode every unlocked module bucketed).
pub fn audit_pass_start(
    st: &RefineState,
    h: &Hypergraph,
    p: &Partition,
    cfg: &FmConfig,
    start_cut: u64,
) -> AuditResult {
    audit_partition(h, p)?;
    let cut = audit_counts(st, h, p, cfg)?;
    if cut != start_cut {
        return Err(err(
            "cut-recount",
            format!("engine starts the pass at cut {start_cut}, recount gives {cut}"),
        ));
    }
    for v in h.modules() {
        let want = recompute_gain(st, h, p, v);
        if st.gain[v.index()] != want {
            return Err(err(
                "gain-recompute",
                format!("stored gain {} != recomputed {want}", st.gain[v.index()]),
            )
            .with_module(v.index()));
        }
        if st.gain0[v.index()] != want {
            return Err(err(
                "gain0-recompute",
                format!(
                    "pass-start reference gain {} != recomputed {want}",
                    st.gain0[v.index()]
                ),
            )
            .with_module(v.index()));
        }
        let in_bucket = st.buckets[0].contains(v);
        if in_bucket && st.locked[v.index()] {
            return Err(err(
                "free-locked",
                "module is locked yet still selectable from the bucket".to_string(),
            )
            .with_module(v.index()));
        }
        if !in_bucket && !st.locked[v.index()] && !cfg.boundary_init {
            return Err(err(
                "free-locked",
                "unlocked module missing from the bucket at pass start".to_string(),
            )
            .with_module(v.index()));
        }
        if in_bucket {
            let want_key = match cfg.engine {
                Engine::Fm => st.gain[v.index()],
                Engine::Clip => st.gain[v.index()] - st.gain0[v.index()],
            };
            let key = st.buckets[0].key_of(v);
            if key != want_key {
                return Err(err(
                    "bucket-key",
                    format!("bucketed under key {key}, gain discipline demands {want_key}"),
                )
                .with_module(v.index()));
            }
        }
    }
    Ok(())
}

/// Pass-end audit, run after rollback to the best prefix: partition balance
/// counters, the reported best cut against a from-scratch visible-cut
/// recount, and — when the state claims validity for the next pass's fast
/// reinit — the carried `pins_in` and `cut_cache`.
pub fn audit_pass_end(
    st: &RefineState,
    h: &Hypergraph,
    p: &Partition,
    cfg: &FmConfig,
    best_cut: u64,
) -> AuditResult {
    audit_partition(h, p)?;
    let cut = metrics::cut_with_net_size_limit(h, p, cfg.max_net_size);
    if cut != best_cut {
        return Err(err(
            "cut-rollback",
            format!("pass reports best cut {best_cut}, rolled-back partition cuts {cut}"),
        ));
    }
    if st.state_valid {
        audit_counts(st, h, p, cfg)?;
        if st.cut_cache != best_cut {
            return Err(err(
                "cut-cache",
                format!("cached cut {} != pass best {best_cut}", st.cut_cache),
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bucket::BucketPolicy;
    use crate::engine::refine_in;
    use crate::state::RefineWorkspace;
    use mlpart_hypergraph::rng::seeded_rng;
    use mlpart_hypergraph::{HypergraphBuilder, ModuleId};

    /// 4 modules in a path: nets {0,1}, {1,2}, {2,3}.
    fn path4() -> Hypergraph {
        let mut b = HypergraphBuilder::with_unit_areas(4);
        b.add_net([0usize, 1]).unwrap();
        b.add_net([1usize, 2]).unwrap();
        b.add_net([2usize, 3]).unwrap();
        b.build().unwrap()
    }

    /// Hand-builds the exact post-fill state for `path4` split [0,0,1,1].
    fn filled_state(h: &Hypergraph, cfg: &FmConfig) -> RefineState {
        let mut st = RefineState::default();
        st.bind_nets(h, 2, cfg.max_net_size);
        st.bind_modules(h, 1, 4, BucketPolicy::Lifo);
        // pins per net: {0,1}→[2,0], {1,2}→[1,1], {2,3}→[0,2].
        st.pins_in.copy_from_slice(&[2, 0, 1, 1, 0, 2]);
        // Gains: ends −1, middles 0 (cut net crossing 1–2).
        st.gain.copy_from_slice(&[-1, 0, 0, -1]);
        st.gain0.copy_from_slice(&st.gain.clone());
        for v in h.modules() {
            st.buckets[0].insert(v, st.gain[v.index()]);
        }
        st
    }

    #[test]
    fn healthy_pass_start_state_passes() {
        let h = path4();
        let p = Partition::from_assignment(&h, 2, vec![0, 0, 1, 1]).unwrap();
        let cfg = FmConfig::default();
        let st = filled_state(&h, &cfg);
        assert_eq!(audit_pass_start(&st, &h, &p, &cfg, 1), Ok(()));
    }

    #[test]
    fn detects_stale_pin_count() {
        let h = path4();
        let p = Partition::from_assignment(&h, 2, vec![0, 0, 1, 1]).unwrap();
        let cfg = FmConfig::default();
        let mut st = filled_state(&h, &cfg);
        st.pins_in[2] += 1;
        let e = audit_pass_start(&st, &h, &p, &cfg, 1).unwrap_err();
        assert_eq!(e.check, "pins-recount");
        assert_eq!(e.net, Some(1));
    }

    #[test]
    fn detects_wrong_running_cut() {
        let h = path4();
        let p = Partition::from_assignment(&h, 2, vec![0, 0, 1, 1]).unwrap();
        let cfg = FmConfig::default();
        let st = filled_state(&h, &cfg);
        assert_eq!(
            audit_pass_start(&st, &h, &p, &cfg, 2).unwrap_err().check,
            "cut-recount"
        );
    }

    #[test]
    fn detects_corrupted_gain() {
        let h = path4();
        let p = Partition::from_assignment(&h, 2, vec![0, 0, 1, 1]).unwrap();
        let cfg = FmConfig::default();
        let mut st = filled_state(&h, &cfg);
        st.gain[1] += 3;
        // Keep the bucket key consistent with the (corrupt) gain so the
        // gain recomputation itself is what fires.
        st.buckets[0].update_key(ModuleId::from(1), st.gain[1]);
        let e = audit_pass_start(&st, &h, &p, &cfg, 1).unwrap_err();
        assert_eq!(e.check, "gain-recompute");
        assert_eq!(e.module, Some(1));
    }

    #[test]
    fn detects_bucket_key_out_of_sync() {
        let h = path4();
        let p = Partition::from_assignment(&h, 2, vec![0, 0, 1, 1]).unwrap();
        let cfg = FmConfig::default();
        let mut st = filled_state(&h, &cfg);
        st.buckets[0].update_key(ModuleId::from(2), 3);
        let e = audit_pass_start(&st, &h, &p, &cfg, 1).unwrap_err();
        assert_eq!(e.check, "bucket-key");
        assert_eq!(e.module, Some(2));
    }

    #[test]
    fn detects_locked_module_in_bucket() {
        let h = path4();
        let p = Partition::from_assignment(&h, 2, vec![0, 0, 1, 1]).unwrap();
        let cfg = FmConfig::default();
        let mut st = filled_state(&h, &cfg);
        st.locked[3] = true;
        let e = audit_pass_start(&st, &h, &p, &cfg, 1).unwrap_err();
        assert_eq!(e.check, "free-locked");
        assert_eq!(e.module, Some(3));
    }

    #[test]
    fn pass_end_detects_cut_cache_drift() {
        let h = path4();
        let mut p = Partition::from_assignment(&h, 2, vec![0, 0, 1, 1]).unwrap();
        let cfg = FmConfig {
            incremental_reinit: true,
            ..FmConfig::default()
        };
        let mut ws = RefineWorkspace::new();
        let r = refine_in(&h, &mut p, &cfg, &mut seeded_rng(3), &mut ws);
        assert_eq!(
            audit_pass_end(&ws.state, &h, &p, &cfg, r.internal_cut),
            Ok(())
        );
        ws.state.cut_cache = r.internal_cut + 1;
        let e = audit_pass_end(&ws.state, &h, &p, &cfg, r.internal_cut + 1).unwrap_err();
        assert!(e.check == "cut-rollback" || e.check == "cut-cache", "{e}");
    }

    #[test]
    fn engine_hooks_fire_when_forced_on() {
        // End-to-end: with the gate forced on, a full refinement run audits
        // every pass boundary without tripping.
        mlpart_audit::force_enabled(true);
        let h = path4();
        let mut p = Partition::from_assignment(&h, 2, vec![0, 1, 0, 1]).unwrap();
        let cfg = FmConfig::default();
        let r = refine_in(
            &h,
            &mut p,
            &cfg,
            &mut seeded_rng(1),
            &mut RefineWorkspace::new(),
        );
        mlpart_audit::force_enabled(false);
        assert!(r.passes >= 1);
    }
}
