//! The FM gain-bucket data structure with configurable tie-breaking.
//!
//! §II-A of the paper studies how the *organization of the bucket lists*
//! decides among same-gain modules: LIFO stacks, FIFO queues, or random
//! selection. The paper (confirming Hagen-Huang-Kahng and Dutt-Deng) finds
//! LIFO ≫ FIFO, with random about as good as LIFO (Table II). This module
//! implements all three behind [`BucketPolicy`] so the experiment can be
//! regenerated.
//!
//! The structure is the classic array of intrusive doubly-linked lists,
//! indexed by gain key. All operations except selection are O(1); selection
//! walks down from a lazily-maintained highest-non-empty-bucket hint, which
//! amortizes to O(1) per pass in the usual FM argument.

use mlpart_hypergraph::ModuleId;
use rand::Rng;

/// How a bucket list breaks ties among modules with equal gain.
///
/// # Examples
///
/// ```
/// use mlpart_fm::BucketPolicy;
///
/// assert_eq!(BucketPolicy::default(), BucketPolicy::Lifo);
/// assert_eq!(format!("{}", BucketPolicy::Fifo), "FIFO");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BucketPolicy {
    /// Last-in-first-out: insertion and removal at the list head. The
    /// original FM implementation is believed to be LIFO; the paper adopts it
    /// because it enforces "locality" — naturally clustered modules move
    /// sequentially.
    #[default]
    Lifo,
    /// First-in-first-out: insertion at the tail, removal at the head.
    /// Distinctly inferior in Table II.
    Fifo,
    /// Uniform random choice among the members of the selected bucket
    /// (the scheme attributed to Sanchis and Krishnamurthy). Statistically
    /// as good as LIFO in Table II but slower, which is why the paper's ML
    /// uses LIFO.
    Random,
}

impl std::fmt::Display for BucketPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BucketPolicy::Lifo => write!(f, "LIFO"),
            BucketPolicy::Fifo => write!(f, "FIFO"),
            BucketPolicy::Random => write!(f, "RND"),
        }
    }
}

const NIL: u32 = u32::MAX;

/// An array-of-bucket-lists priority structure over module ids with integer
/// gain keys in `[-max_key, +max_key]`.
///
/// # Examples
///
/// ```
/// use mlpart_fm::{BucketPolicy, GainBuckets};
/// use mlpart_hypergraph::ModuleId;
///
/// let mut b = GainBuckets::new(4, 3, BucketPolicy::Lifo);
/// b.insert(ModuleId::new(0), 2);
/// b.insert(ModuleId::new(1), 2);
/// b.insert(ModuleId::new(2), -1);
/// // LIFO: module 1 was inserted last at key 2, so it is inspected first.
/// let mut rng = mlpart_hypergraph::rng::seeded_rng(0);
/// let top = b.select_where(&mut rng, |_| true).expect("non-empty");
/// assert_eq!(top, ModuleId::new(1));
/// ```
#[derive(Debug, Clone)]
pub struct GainBuckets {
    policy: BucketPolicy,
    /// `bucket index = key + max_key`.
    max_key: i32,
    heads: Vec<u32>,
    tails: Vec<u32>,
    next: Vec<u32>,
    prev: Vec<u32>,
    key: Vec<i32>,
    present: Vec<bool>,
    /// Hint: no non-empty bucket has index greater than this.
    top_hint: i32,
    len: usize,
}

impl GainBuckets {
    /// Creates an empty structure for `num_modules` modules with keys in
    /// `[-max_key, +max_key]`.
    pub fn new(num_modules: usize, max_key: i32, policy: BucketPolicy) -> Self {
        assert!(max_key >= 0, "max_key must be non-negative");
        let buckets = (2 * max_key + 1) as usize;
        GainBuckets {
            policy,
            max_key,
            heads: vec![NIL; buckets],
            tails: vec![NIL; buckets],
            next: vec![NIL; num_modules],
            prev: vec![NIL; num_modules],
            key: vec![0; num_modules],
            present: vec![false; num_modules],
            top_hint: -1,
            len: 0,
        }
    }

    /// Number of modules currently in the structure.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no module is in the structure.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The tie-breaking policy this structure was created with.
    #[inline]
    pub fn policy(&self) -> BucketPolicy {
        self.policy
    }

    /// `true` if module `v` is currently in the structure.
    #[inline]
    pub fn contains(&self, v: ModuleId) -> bool {
        self.present[v.index()]
    }

    /// Current key of module `v`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `v` is not present.
    #[inline]
    pub fn key_of(&self, v: ModuleId) -> i32 {
        debug_assert!(self.present[v.index()], "module not in structure");
        self.key[v.index()]
    }

    #[inline]
    fn bucket_index(&self, key: i32) -> usize {
        debug_assert!(
            key >= -self.max_key && key <= self.max_key,
            "key {key} outside [-{0}, {0}]",
            self.max_key
        );
        (key + self.max_key) as usize
    }

    /// Inserts module `v` with the given key according to the policy (LIFO:
    /// head; FIFO / Random: tail — for Random the list order is irrelevant).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `v` is already present or the key is out of
    /// range.
    pub fn insert(&mut self, v: ModuleId, key: i32) {
        debug_assert!(!self.present[v.index()], "module already in structure");
        let b = self.bucket_index(key);
        let i = v.raw();
        match self.policy {
            BucketPolicy::Lifo => {
                // Push at head.
                let old_head = self.heads[b];
                self.next[i as usize] = old_head;
                self.prev[i as usize] = NIL;
                if old_head != NIL {
                    self.prev[old_head as usize] = i;
                } else {
                    self.tails[b] = i;
                }
                self.heads[b] = i;
            }
            BucketPolicy::Fifo | BucketPolicy::Random => {
                // Append at tail.
                let old_tail = self.tails[b];
                self.prev[i as usize] = old_tail;
                self.next[i as usize] = NIL;
                if old_tail != NIL {
                    self.next[old_tail as usize] = i;
                } else {
                    self.heads[b] = i;
                }
                self.tails[b] = i;
            }
        }
        self.key[i as usize] = key;
        self.present[i as usize] = true;
        self.len += 1;
        self.top_hint = self.top_hint.max(b as i32);
    }

    /// Removes module `v` from the structure.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `v` is not present.
    pub fn remove(&mut self, v: ModuleId) {
        debug_assert!(self.present[v.index()], "module not in structure");
        let i = v.raw();
        let b = self.bucket_index(self.key[i as usize]);
        let (p, n) = (self.prev[i as usize], self.next[i as usize]);
        if p != NIL {
            self.next[p as usize] = n;
        } else {
            self.heads[b] = n;
        }
        if n != NIL {
            self.prev[n as usize] = p;
        } else {
            self.tails[b] = p;
        }
        self.present[i as usize] = false;
        self.len -= 1;
    }

    /// Changes the key of module `v`, reinserting it per the policy. A no-op
    /// key change still reinserts (moving `v` to the head under LIFO),
    /// matching the classic implementation where every gain update re-pushes
    /// the module.
    pub fn update_key(&mut self, v: ModuleId, new_key: i32) {
        self.remove(v);
        self.insert(v, new_key);
    }

    /// Selects the highest-key module satisfying `feasible`, honoring the
    /// tie-breaking policy within each bucket, without removing it.
    ///
    /// Walks buckets from the highest non-empty one downward; within a
    /// bucket, candidates are inspected head-to-tail (LIFO/FIFO) or in a
    /// random order drawn from `rng` (Random). Returns `None` if no present
    /// module is feasible.
    pub fn select_where<R, F>(&mut self, rng: &mut R, mut feasible: F) -> Option<ModuleId>
    where
        R: Rng + ?Sized,
        F: FnMut(ModuleId) -> bool,
    {
        // Lazily lower the hint past empty buckets.
        while self.top_hint >= 0 && self.heads[self.top_hint as usize] == NIL {
            self.top_hint -= 1;
        }
        let mut b = self.top_hint;
        let mut scratch: Vec<u32> = Vec::new();
        while b >= 0 {
            let head = self.heads[b as usize];
            if head != NIL {
                match self.policy {
                    BucketPolicy::Lifo | BucketPolicy::Fifo => {
                        let mut cur = head;
                        while cur != NIL {
                            let m = ModuleId::from(cur);
                            if feasible(m) {
                                return Some(m);
                            }
                            cur = self.next[cur as usize];
                        }
                    }
                    BucketPolicy::Random => {
                        scratch.clear();
                        let mut cur = head;
                        while cur != NIL {
                            scratch.push(cur);
                            cur = self.next[cur as usize];
                        }
                        // Inspect in a uniformly random order (partial
                        // Fisher-Yates performed on demand).
                        let k = scratch.len();
                        for i in 0..k {
                            let j = rng.gen_range(i..k);
                            scratch.swap(i, j);
                            let m = ModuleId::from(scratch[i]);
                            if feasible(m) {
                                return Some(m);
                            }
                        }
                    }
                }
            }
            b -= 1;
        }
        None
    }

    /// The highest key currently present, or `None` if empty. Lazily lowers
    /// the internal hint, like selection does.
    pub fn max_key(&mut self) -> Option<i32> {
        while self.top_hint >= 0 && self.heads[self.top_hint as usize] == NIL {
            self.top_hint -= 1;
        }
        if self.top_hint >= 0 {
            Some(self.top_hint - self.max_key)
        } else {
            None
        }
    }

    /// Re-dimensions the structure in place for a new module count, key
    /// range, and policy, reusing the existing allocations (grow-only
    /// capacity). After `reset`, the structure is observationally identical
    /// to `GainBuckets::new(num_modules, max_key, policy)` — this is what
    /// lets a [`RefineWorkspace`](crate::RefineWorkspace) carry one bucket
    /// structure across every level of a multilevel run.
    pub fn reset(&mut self, num_modules: usize, max_key: i32, policy: BucketPolicy) {
        assert!(max_key >= 0, "max_key must be non-negative");
        let buckets = (2 * max_key + 1) as usize;
        self.policy = policy;
        self.max_key = max_key;
        self.heads.clear();
        self.heads.resize(buckets, NIL);
        self.tails.clear();
        self.tails.resize(buckets, NIL);
        self.next.resize(num_modules, NIL);
        self.prev.resize(num_modules, NIL);
        self.key.clear();
        self.key.resize(num_modules, 0);
        self.present.clear();
        self.present.resize(num_modules, false);
        self.top_hint = -1;
        self.len = 0;
    }

    /// Removes every module, leaving capacity intact. O(present modules +
    /// buckets touched) via full reset — the engines rebuild gains each pass
    /// anyway (the paper notes faster reinitialization as future work).
    pub fn clear(&mut self) {
        self.heads.fill(NIL);
        self.tails.fill(NIL);
        self.present.fill(false);
        self.top_hint = -1;
        self.len = 0;
    }

    /// The members of the bucket holding `key`, head to tail. Intended for
    /// tests and the CLIP preprocessing step.
    pub fn bucket_members(&self, key: i32) -> Vec<ModuleId> {
        let mut out = Vec::new();
        let mut cur = self.heads[self.bucket_index(key)];
        while cur != NIL {
            out.push(ModuleId::from(cur));
            cur = self.next[cur as usize];
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlpart_hypergraph::rng::seeded_rng;

    fn m(i: usize) -> ModuleId {
        ModuleId::new(i)
    }

    #[test]
    fn lifo_order_within_bucket() {
        let mut b = GainBuckets::new(5, 4, BucketPolicy::Lifo);
        b.insert(m(0), 2);
        b.insert(m(1), 2);
        b.insert(m(2), 2);
        assert_eq!(b.bucket_members(2), vec![m(2), m(1), m(0)]);
        let mut rng = seeded_rng(0);
        assert_eq!(b.select_where(&mut rng, |_| true), Some(m(2)));
    }

    #[test]
    fn fifo_order_within_bucket() {
        let mut b = GainBuckets::new(5, 4, BucketPolicy::Fifo);
        b.insert(m(0), 2);
        b.insert(m(1), 2);
        b.insert(m(2), 2);
        assert_eq!(b.bucket_members(2), vec![m(0), m(1), m(2)]);
        let mut rng = seeded_rng(0);
        assert_eq!(b.select_where(&mut rng, |_| true), Some(m(0)));
    }

    #[test]
    fn selection_prefers_higher_key() {
        let mut b = GainBuckets::new(5, 4, BucketPolicy::Lifo);
        b.insert(m(0), -3);
        b.insert(m(1), 4);
        b.insert(m(2), 0);
        let mut rng = seeded_rng(0);
        assert_eq!(b.select_where(&mut rng, |_| true), Some(m(1)));
        b.remove(m(1));
        assert_eq!(b.select_where(&mut rng, |_| true), Some(m(2)));
    }

    #[test]
    fn selection_skips_infeasible() {
        let mut b = GainBuckets::new(5, 4, BucketPolicy::Lifo);
        b.insert(m(0), 4);
        b.insert(m(1), 4);
        b.insert(m(2), 1);
        let mut rng = seeded_rng(0);
        // Head of top bucket is m(1); forbid it.
        let got = b.select_where(&mut rng, |v| v != m(1));
        assert_eq!(got, Some(m(0)));
        // Forbid entire top bucket -> falls through to lower bucket.
        let got = b.select_where(&mut rng, |v| v == m(2));
        assert_eq!(got, Some(m(2)));
        // Nothing feasible -> None.
        assert_eq!(b.select_where(&mut rng, |_| false), None);
    }

    #[test]
    fn update_key_moves_between_buckets() {
        let mut b = GainBuckets::new(3, 4, BucketPolicy::Lifo);
        b.insert(m(0), 1);
        b.insert(m(1), 1);
        b.update_key(m(0), 3);
        assert_eq!(b.key_of(m(0)), 3);
        assert_eq!(b.bucket_members(3), vec![m(0)]);
        assert_eq!(b.bucket_members(1), vec![m(1)]);
        let mut rng = seeded_rng(0);
        assert_eq!(b.select_where(&mut rng, |_| true), Some(m(0)));
    }

    #[test]
    fn update_key_same_value_moves_to_head_under_lifo() {
        let mut b = GainBuckets::new(3, 4, BucketPolicy::Lifo);
        b.insert(m(0), 1);
        b.insert(m(1), 1);
        // m(1) is currently head; re-push m(0) at the same key.
        b.update_key(m(0), 1);
        assert_eq!(b.bucket_members(1), vec![m(0), m(1)]);
    }

    #[test]
    fn remove_middle_tail_head() {
        let mut b = GainBuckets::new(4, 2, BucketPolicy::Fifo);
        for i in 0..4 {
            b.insert(m(i), 0);
        }
        b.remove(m(1)); // middle
        assert_eq!(b.bucket_members(0), vec![m(0), m(2), m(3)]);
        b.remove(m(3)); // tail
        assert_eq!(b.bucket_members(0), vec![m(0), m(2)]);
        b.remove(m(0)); // head
        assert_eq!(b.bucket_members(0), vec![m(2)]);
        assert_eq!(b.len(), 1);
        // Tail pointer still valid: insert appends after m(2).
        b.insert(m(0), 0);
        assert_eq!(b.bucket_members(0), vec![m(2), m(0)]);
    }

    #[test]
    fn random_policy_selects_all_members_over_time() {
        let mut b = GainBuckets::new(3, 1, BucketPolicy::Random);
        b.insert(m(0), 1);
        b.insert(m(1), 1);
        b.insert(m(2), 1);
        let mut rng = seeded_rng(99);
        let mut seen = [false; 3];
        for _ in 0..100 {
            let got = b.select_where(&mut rng, |_| true).expect("non-empty");
            seen[got.index()] = true;
        }
        assert_eq!(seen, [true, true, true], "random selection covers ties");
    }

    #[test]
    fn random_policy_respects_feasibility() {
        let mut b = GainBuckets::new(3, 1, BucketPolicy::Random);
        b.insert(m(0), 1);
        b.insert(m(1), 1);
        b.insert(m(2), 0);
        let mut rng = seeded_rng(5);
        for _ in 0..20 {
            assert_eq!(b.select_where(&mut rng, |v| v == m(2)), Some(m(2)));
        }
    }

    #[test]
    fn negative_keys_work() {
        let mut b = GainBuckets::new(2, 5, BucketPolicy::Lifo);
        b.insert(m(0), -5);
        b.insert(m(1), -4);
        let mut rng = seeded_rng(0);
        assert_eq!(b.select_where(&mut rng, |_| true), Some(m(1)));
    }

    #[test]
    fn clear_resets() {
        let mut b = GainBuckets::new(3, 2, BucketPolicy::Lifo);
        b.insert(m(0), 2);
        b.insert(m(1), -2);
        b.clear();
        assert!(b.is_empty());
        assert!(!b.contains(m(0)));
        let mut rng = seeded_rng(0);
        assert_eq!(b.select_where(&mut rng, |_| true), None);
        // Reusable after clear.
        b.insert(m(2), 0);
        assert_eq!(b.select_where(&mut rng, |_| true), Some(m(2)));
    }

    #[test]
    fn len_and_contains_track_membership() {
        let mut b = GainBuckets::new(3, 2, BucketPolicy::Lifo);
        assert!(b.is_empty());
        b.insert(m(1), 0);
        assert_eq!(b.len(), 1);
        assert!(b.contains(m(1)));
        assert!(!b.contains(m(0)));
        b.remove(m(1));
        assert_eq!(b.len(), 0);
    }

    #[test]
    fn max_key_tracks_top() {
        let mut b = GainBuckets::new(4, 5, BucketPolicy::Lifo);
        assert_eq!(b.max_key(), None);
        b.insert(m(0), -2);
        b.insert(m(1), 3);
        assert_eq!(b.max_key(), Some(3));
        b.remove(m(1));
        assert_eq!(b.max_key(), Some(-2));
        b.update_key(m(0), 5);
        assert_eq!(b.max_key(), Some(5));
    }

    #[test]
    fn top_hint_recovers_after_mass_removal() {
        let mut b = GainBuckets::new(10, 5, BucketPolicy::Lifo);
        for i in 0..10 {
            b.insert(m(i), (i as i32) - 5);
        }
        // Remove the top half.
        for i in (5..10).rev() {
            b.remove(m(i));
        }
        let mut rng = seeded_rng(0);
        assert_eq!(b.select_where(&mut rng, |_| true), Some(m(4)));
    }
}
