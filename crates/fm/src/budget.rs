//! Deterministic effort budgets for refinement and the multilevel pipelines.
//!
//! A [`Budget`] bounds how much work a single start may spend — moves
//! applied, refinement passes, uncoarsening levels, and (optionally, off by
//! default) a soft wall-clock deadline. Enforcement is **cooperative**: the
//! engines consult a [`BudgetMeter`] only at pass and level boundaries, so a
//! budgeted run is a prefix of the unbudgeted pass sequence and the returned
//! partition is always the best-so-far solution — the multilevel method's
//! natural degradability (any level's solution projects to a valid final
//! partition).
//!
//! # Determinism
//!
//! The move/pass/level limits count deterministic algorithm state, so a
//! budgeted run is a pure function of `(netlist, config, budget, seed)` and
//! bit-identical at every thread count — each start accounts against its own
//! meter. The **soft deadline is explicitly non-normative**: it reads the
//! wall clock (the one exception, reviewed in `lint-allow.txt`) and may
//! truncate at different boundaries on different machines. It is `None` by
//! default and must stay out of any reproducibility-sensitive experiment;
//! everything else in this module never touches a clock.
//!
//! # Fault injection
//!
//! Under the `fault` feature the checkpoints double as injection sites:
//! `panic@pass` / `panic@level` faults fire here, and `exhaust@pass` /
//! `exhaust@level` faults record an [`BudgetLimit::Injected`] truncation —
//! exercising exactly the code paths real budget exhaustion takes.

/// Effort bounds for one start. `None` fields are unlimited; the default
/// budget is fully unlimited and adds no overhead beyond a few compares per
/// pass boundary.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Budget {
    /// Maximum refinement moves applied (attempted moves, counted at pass
    /// boundaries; a pass in flight finishes before the limit is enforced).
    pub max_moves: Option<u64>,
    /// Maximum refinement passes across the whole start.
    pub max_passes: Option<u64>,
    /// Maximum uncoarsening levels refined; further levels still project
    /// and rebalance so the final partition stays valid and feasible.
    pub max_levels: Option<u64>,
    /// Soft wall-clock deadline in seconds. **Non-normative**: checked only
    /// at pass/level boundaries and dependent on machine speed, so two runs
    /// with the same seed may truncate differently. Off (`None`) by default.
    pub soft_deadline_secs: Option<f64>,
}

impl Budget {
    /// The unlimited budget (every field `None`).
    pub const UNLIMITED: Budget = Budget {
        max_moves: None,
        max_passes: None,
        max_levels: None,
        soft_deadline_secs: None,
    };

    /// True when no limit is set (the meter can skip all bookkeeping).
    pub fn is_unlimited(&self) -> bool {
        self.max_moves.is_none()
            && self.max_passes.is_none()
            && self.max_levels.is_none()
            && self.soft_deadline_secs.is_none()
    }
}

/// Which limit a truncated run hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetLimit {
    /// `max_moves` reached.
    Moves,
    /// `max_passes` reached.
    Passes,
    /// `max_levels` reached.
    Levels,
    /// The non-normative soft deadline elapsed.
    Deadline,
    /// A fault-injection `exhaust` entry fired at this checkpoint.
    Injected,
}

impl BudgetLimit {
    /// Stable lowercase name for reports and error messages.
    pub fn name(self) -> &'static str {
        match self {
            BudgetLimit::Moves => "moves",
            BudgetLimit::Passes => "passes",
            BudgetLimit::Levels => "levels",
            BudgetLimit::Deadline => "deadline",
            BudgetLimit::Injected => "injected",
        }
    }
}

/// Record of a budget-truncated run: which limit fired and at which
/// checkpoint. Carried in pipeline results and surfaced in run reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Truncation {
    /// The limit that fired.
    pub limit: BudgetLimit,
    /// Checkpoint site name (`pass` or `level`).
    pub site: &'static str,
    /// Uncoarsening level at the checkpoint, when known.
    pub level: Option<u32>,
    /// Pass index at the checkpoint, when at a pass boundary.
    pub pass: Option<u32>,
}

/// Accumulates one start's spend against a [`Budget`] and answers the
/// cooperative checkpoints. Once any limit fires the meter stays exhausted:
/// every later checkpoint declines, so refinement stops but projection and
/// rebalancing continue to a valid final partition.
#[derive(Debug, Clone)]
pub struct BudgetMeter {
    budget: Budget,
    moves: u64,
    passes: u64,
    levels: u64,
    /// Present only when a soft deadline is set (the sole wall-clock read).
    started: Option<std::time::Instant>,
    truncation: Option<Truncation>,
    /// Level context stamped onto pass-boundary truncation records.
    current_level: Option<u32>,
}

impl BudgetMeter {
    /// Creates a meter for `budget`. Reads the wall clock once, and only if
    /// a soft deadline is set.
    pub fn new(budget: &Budget) -> Self {
        BudgetMeter {
            budget: *budget,
            moves: 0,
            passes: 0,
            levels: 0,
            started: budget.soft_deadline_secs.map(|_| std::time::Instant::now()),
            truncation: None,
            current_level: None,
        }
    }

    /// A meter that never truncates (and never reads a clock).
    pub fn unlimited() -> Self {
        BudgetMeter::new(&Budget::UNLIMITED)
    }

    /// True once any limit has fired.
    pub fn exhausted(&self) -> bool {
        self.truncation.is_some()
    }

    /// The truncation record, if any limit has fired.
    pub fn truncation(&self) -> Option<Truncation> {
        self.truncation
    }

    /// Total attempted moves accounted so far.
    pub fn moves(&self) -> u64 {
        self.moves
    }

    /// Total passes accounted so far.
    pub fn passes(&self) -> u64 {
        self.passes
    }

    /// Sets the level context stamped onto pass-boundary truncations.
    pub fn set_level_context(&mut self, level: Option<u32>) {
        self.current_level = level;
    }

    fn truncate(&mut self, limit: BudgetLimit, site: &'static str, pass: Option<u32>) {
        if self.truncation.is_none() {
            self.truncation = Some(Truncation {
                limit,
                site,
                level: self.current_level,
                pass,
            });
        }
    }

    /// Shared limit checks for both checkpoint kinds.
    fn limits_fired(&self) -> Option<BudgetLimit> {
        if let Some(max) = self.budget.max_moves {
            if self.moves >= max {
                return Some(BudgetLimit::Moves);
            }
        }
        if let Some(max) = self.budget.max_passes {
            if self.passes >= max {
                return Some(BudgetLimit::Passes);
            }
        }
        if let (Some(deadline), Some(started)) = (self.budget.soft_deadline_secs, self.started) {
            if started.elapsed().as_secs_f64() >= deadline {
                return Some(BudgetLimit::Deadline);
            }
        }
        None
    }

    /// Checkpoint before starting refinement pass `pass`: returns `false`
    /// when the pass must not run. Doubles as the `pass` fault-injection
    /// site.
    pub fn pass_checkpoint(&mut self, pass: u32) -> bool {
        #[cfg(feature = "fault")]
        mlpart_fault::maybe_panic("pass", pass as u64);
        if self.exhausted() {
            return false;
        }
        #[cfg(feature = "fault")]
        if mlpart_fault::should_exhaust("pass", pass as u64) {
            self.truncate(BudgetLimit::Injected, "pass", Some(pass));
            return false;
        }
        if let Some(limit) = self.limits_fired() {
            self.truncate(limit, "pass", Some(pass));
            return false;
        }
        true
    }

    /// Accounts one finished pass and its attempted moves.
    pub fn note_pass(&mut self, attempted_moves: u64) {
        self.passes += 1;
        self.moves += attempted_moves;
    }

    /// Checkpoint before refining uncoarsening level `level`: returns
    /// `false` when the level's refinement must be skipped (projection and
    /// rebalancing still run). Doubles as the `level` fault-injection site.
    pub fn level_checkpoint(&mut self, level: u32) -> bool {
        #[cfg(feature = "fault")]
        mlpart_fault::maybe_panic("level", level as u64);
        if self.exhausted() {
            return false;
        }
        #[cfg(feature = "fault")]
        if mlpart_fault::should_exhaust("level", level as u64) {
            self.current_level = Some(level);
            self.truncate(BudgetLimit::Injected, "level", None);
            return false;
        }
        if let Some(max) = self.budget.max_levels {
            if self.levels >= max {
                self.current_level = Some(level);
                self.truncate(BudgetLimit::Levels, "level", None);
                return false;
            }
        }
        if let Some(limit) = self.limits_fired() {
            self.current_level = Some(level);
            self.truncate(limit, "level", None);
            return false;
        }
        true
    }

    /// Accounts one refined level.
    pub fn note_level(&mut self) {
        self.levels += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_meter_never_truncates() {
        let mut m = BudgetMeter::unlimited();
        for pass in 0..1000 {
            assert!(m.pass_checkpoint(pass));
            m.note_pass(10_000);
        }
        for level in 0..100 {
            assert!(m.level_checkpoint(level));
            m.note_level();
        }
        assert!(!m.exhausted());
        assert_eq!(m.truncation(), None);
        assert!(Budget::UNLIMITED.is_unlimited());
        assert!(Budget::default().is_unlimited());
    }

    #[test]
    fn pass_limit_fires_at_the_boundary() {
        let mut m = BudgetMeter::new(&Budget {
            max_passes: Some(2),
            ..Budget::default()
        });
        assert!(m.pass_checkpoint(0));
        m.note_pass(5);
        assert!(m.pass_checkpoint(1));
        m.note_pass(5);
        assert!(!m.pass_checkpoint(2), "third pass declined");
        let t = m.truncation().expect("truncated");
        assert_eq!(t.limit, BudgetLimit::Passes);
        assert_eq!(t.site, "pass");
        assert_eq!(t.pass, Some(2));
        // Exhaustion is sticky across checkpoint kinds.
        assert!(!m.pass_checkpoint(3));
        assert!(!m.level_checkpoint(0));
        assert_eq!(m.truncation().unwrap().limit, BudgetLimit::Passes);
    }

    #[test]
    fn move_limit_counts_attempted_moves() {
        let mut m = BudgetMeter::new(&Budget {
            max_moves: Some(10),
            ..Budget::default()
        });
        assert!(m.pass_checkpoint(0));
        m.note_pass(7);
        assert!(m.pass_checkpoint(1), "under the limit");
        m.note_pass(7);
        assert!(!m.pass_checkpoint(2), "14 >= 10");
        assert_eq!(m.truncation().unwrap().limit, BudgetLimit::Moves);
        assert_eq!(m.moves(), 14);
        assert_eq!(m.passes(), 2);
    }

    #[test]
    fn zero_move_budget_blocks_the_first_pass() {
        let mut m = BudgetMeter::new(&Budget {
            max_moves: Some(0),
            ..Budget::default()
        });
        assert!(!m.pass_checkpoint(0));
        assert_eq!(m.truncation().unwrap().limit, BudgetLimit::Moves);
    }

    #[test]
    fn level_limit_blocks_refinement_and_stamps_context() {
        let mut m = BudgetMeter::new(&Budget {
            max_levels: Some(1),
            ..Budget::default()
        });
        assert!(m.level_checkpoint(4));
        m.note_level();
        assert!(!m.level_checkpoint(3));
        let t = m.truncation().expect("truncated");
        assert_eq!(t.limit, BudgetLimit::Levels);
        assert_eq!(t.site, "level");
        assert_eq!(t.level, Some(3));
    }

    #[test]
    fn pass_truncation_carries_level_context() {
        let mut m = BudgetMeter::new(&Budget {
            max_passes: Some(0),
            ..Budget::default()
        });
        m.set_level_context(Some(2));
        assert!(!m.pass_checkpoint(0));
        let t = m.truncation().unwrap();
        assert_eq!(t.level, Some(2));
        assert_eq!(t.pass, Some(0));
    }

    #[test]
    fn limit_names_are_stable() {
        assert_eq!(BudgetLimit::Moves.name(), "moves");
        assert_eq!(BudgetLimit::Passes.name(), "passes");
        assert_eq!(BudgetLimit::Levels.name(), "levels");
        assert_eq!(BudgetLimit::Deadline.name(), "deadline");
        assert_eq!(BudgetLimit::Injected.name(), "injected");
    }

    #[test]
    fn soft_deadline_is_off_by_default_and_reads_no_clock() {
        let m = BudgetMeter::new(&Budget::default());
        assert!(m.started.is_none(), "no Instant without a deadline");
        // An already-elapsed deadline truncates at the first checkpoint.
        let mut m = BudgetMeter::new(&Budget {
            soft_deadline_secs: Some(0.0),
            ..Budget::default()
        });
        assert!(!m.pass_checkpoint(0));
        assert_eq!(m.truncation().unwrap().limit, BudgetLimit::Deadline);
    }

    #[cfg(feature = "fault")]
    #[test]
    fn injected_exhaustion_records_injected_limit() {
        let _gate = mlpart_fault::test_lock();
        mlpart_fault::force_plan(mlpart_fault::FaultPlan::parse("exhaust@pass:1").unwrap());
        let mut m = BudgetMeter::unlimited();
        assert!(m.pass_checkpoint(0));
        m.note_pass(3);
        assert!(!m.pass_checkpoint(1));
        assert_eq!(m.truncation().unwrap().limit, BudgetLimit::Injected);
        mlpart_fault::clear_force();
    }
}
