//! The `FMPartition` refinement engine: Fiduccia-Mattheyses passes with
//! LIFO/FIFO/Random buckets and the CLIP variant.
//!
//! This is the iterative-improvement core the paper plugs into its multilevel
//! algorithm (Fig. 2, steps 6 and 9). Faithful details:
//!
//! * **Pass structure** (§I): modules move one at a time, each at most once
//!   per pass; the best prefix of the move sequence is kept; passes repeat
//!   until one fails to improve.
//! * **Balance** (§III-B): side areas bounded by `A(V)/2 ± max(A(v*), r·A(V))`
//!   ([`BipartBalance`]); every prefix of the move sequence is feasible
//!   because each move is feasibility-checked.
//! * **Large nets** (§III-B): nets with more than
//!   [`max_net_size`](FmConfig::max_net_size) (default 200) pins are ignored
//!   by the engine and re-inserted when measuring solution quality.
//! * **CLIP** (§II-B, after Dutt-Deng): after initial gains are computed the
//!   buckets are concatenated in descending-gain order into bucket zero, so
//!   selection is driven by *gain deltas* since the pass began; the bucket
//!   index range doubles.
//!
//! The paper's §V future-work items are available as options:
//! [`FmConfig::boundary_init`] (only modules on cut nets enter the buckets
//! initially) and [`FmConfig::early_exit_stall`] (abandon a pass after a run
//! of non-improving moves).

use crate::bucket::BucketPolicy;
use crate::budget::BudgetMeter;
use crate::state::{PassStats, RefineState, RefineWorkspace};
use mlpart_hypergraph::rng::MlRng;
use mlpart_hypergraph::{
    metrics, BipartBalance, Hypergraph, ModuleId, NetId, PartBounds, Partition,
};
use std::time::Instant;

/// Which gain discipline drives module selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Engine {
    /// Classic Fiduccia-Mattheyses: select by current total gain.
    #[default]
    Fm,
    /// CLIP (CLuster-oriented Iterative-improvement Partitioner): select by
    /// gain *change* since the start of the pass, seeding bucket zero in
    /// descending initial-gain order. Averages 18% improvement over FM in
    /// Dutt-Deng's experiments and similar gains in the paper's Table III.
    Clip,
}

impl std::fmt::Display for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Engine::Fm => write!(f, "FM"),
            Engine::Clip => write!(f, "CLIP"),
        }
    }
}

/// Configuration for [`fm_partition`] and [`refine`].
///
/// The defaults reproduce the paper's experimental setup: LIFO buckets,
/// classic FM gains, balance tolerance `r = 0.1`, nets over 200 pins ignored,
/// passes until no improvement.
///
/// # Examples
///
/// ```
/// use mlpart_fm::{FmConfig, Engine, BucketPolicy};
///
/// let cfg = FmConfig {
///     engine: Engine::Clip,
///     policy: BucketPolicy::Lifo,
///     ..FmConfig::default()
/// };
/// assert_eq!(cfg.balance_r, 0.1);
/// assert_eq!(cfg.max_net_size, 200);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FmConfig {
    /// FM or CLIP gain discipline.
    pub engine: Engine,
    /// Bucket tie-breaking policy (Table II compares these).
    pub policy: BucketPolicy,
    /// Balance tolerance `r`; the paper's experiments use `0.1`.
    pub balance_r: f64,
    /// Nets with more pins than this are invisible to the engine (§III-B).
    pub max_net_size: usize,
    /// Safety cap on the number of passes; convergence (a pass with no
    /// improvement) almost always terminates far earlier.
    pub max_passes: usize,
    /// §V extension: if `Some(s)`, a pass is abandoned after `s` consecutive
    /// moves without a new best solution (Chaco/Metis-style early exit).
    pub early_exit_stall: Option<usize>,
    /// §V extension: initialize buckets with only the modules incident to cut
    /// nets; other modules enter the structure when a neighboring move first
    /// changes their gain.
    pub boundary_init: bool,
    /// §V extension: between passes, repair only the gains of modules
    /// touched by the previous pass instead of recomputing every gain ("if
    /// only a few modules were moved during a pass, then only these modules
    /// and their neighbors need to be updated"). Produces *identical*
    /// results to the full reinitialization, only faster on converged
    /// passes.
    pub incremental_reinit: bool,
    /// §II-B extension (Dutt-Deng's CDIP): when the move sequence since the
    /// last best solution accumulates `Some(window)` moves without a new
    /// best, the sequence is rolled back, its first module is locked out,
    /// and the pass continues from a different seed — "backing up ...
    /// prevents continuing an entire pass in which positive gain is unlikely
    /// to be realized". `None` (the default) disables backtracking.
    pub cdip_window: Option<usize>,
    /// §V extension: Krishnamurthy-style lookahead tie-breaking. Among the
    /// feasible modules of the best bucket, pick the one whose move creates
    /// the most follow-up gain for its neighbors (second-level gain:
    /// `Σ_e [pins_from(e) = 2] − [pins_to(e) = 1]`). The paper notes that
    /// lookahead does not help plain-LIFO FM but "its impact increases
    /// dramatically when using CLIP"; it costs extra selection time.
    pub lookahead: bool,
}

impl Default for FmConfig {
    fn default() -> Self {
        FmConfig {
            engine: Engine::Fm,
            policy: BucketPolicy::Lifo,
            balance_r: 0.1,
            max_net_size: 200,
            max_passes: 64,
            early_exit_stall: None,
            boundary_init: false,
            incremental_reinit: false,
            cdip_window: None,
            lookahead: false,
        }
    }
}

/// Outcome of a refinement run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FmResult {
    /// Final cut measured over **all** nets (large nets re-inserted).
    pub cut: u64,
    /// Final cut over engine-visible nets only (`net size ≤ max_net_size`).
    pub internal_cut: u64,
    /// Number of passes executed.
    pub passes: usize,
    /// Total accepted (kept after rollback) module moves.
    pub kept_moves: u64,
    /// Total attempted module moves across all passes.
    pub attempted_moves: u64,
    /// Per-pass instrumentation: cut trajectory, move counts, bucket-fill
    /// time. One entry per executed pass.
    pub pass_stats: Vec<PassStats>,
}

/// The paper's `FMPartition(H, P)` (Fig. 2): refines an initial solution, or
/// starts from a random one when `initial` is `None`.
///
/// Returns the refined partition and run statistics.
///
/// # Panics
///
/// Panics if an `initial` partition is supplied with `k != 2` or with an
/// assignment length that does not match `h`.
///
/// # Examples
///
/// ```
/// use mlpart_fm::{fm_partition, FmConfig};
/// use mlpart_hypergraph::{HypergraphBuilder, rng::seeded_rng, metrics};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = HypergraphBuilder::with_unit_areas(8);
/// for w in [[0, 1], [1, 2], [2, 3], [4, 5], [5, 6], [6, 7], [3, 4]] {
///     b.add_net(w)?;
/// }
/// let h = b.build()?;
/// let mut rng = seeded_rng(1);
/// let (p, result) = fm_partition(&h, None, &FmConfig::default(), &mut rng);
/// assert_eq!(result.cut, metrics::cut(&h, &p));
/// assert_eq!(result.cut, 1); // the chain graph has a width-1 bisection
/// # Ok(())
/// # }
/// ```
pub fn fm_partition(
    h: &Hypergraph,
    initial: Option<Partition>,
    cfg: &FmConfig,
    rng: &mut MlRng,
) -> (Partition, FmResult) {
    let mut ws = RefineWorkspace::new();
    fm_partition_in(h, initial, cfg, rng, &mut ws)
}

/// [`fm_partition`] with caller-owned scratch: behaves identically but
/// reuses the allocations in `ws` (multilevel drivers call this at every
/// level of the V-cycle).
pub fn fm_partition_in(
    h: &Hypergraph,
    initial: Option<Partition>,
    cfg: &FmConfig,
    rng: &mut MlRng,
    ws: &mut RefineWorkspace,
) -> (Partition, FmResult) {
    fm_partition_budgeted_in(h, initial, cfg, rng, ws, &mut BudgetMeter::unlimited())
}

/// [`fm_partition_in`] accounting against a caller-owned [`BudgetMeter`]:
/// when the meter is exhausted no refinement pass runs and the (rebalanced)
/// initial partition is returned as the best-so-far solution.
pub fn fm_partition_budgeted_in(
    h: &Hypergraph,
    initial: Option<Partition>,
    cfg: &FmConfig,
    rng: &mut MlRng,
    ws: &mut RefineWorkspace,
    meter: &mut BudgetMeter,
) -> (Partition, FmResult) {
    let mut p = match initial {
        Some(p) => {
            assert_eq!(p.k(), 2, "fm_partition requires a bipartition");
            assert_eq!(
                p.assignment().len(),
                h.num_modules(),
                "partition does not match hypergraph"
            );
            p
        }
        None => Partition::random(h, 2, rng),
    };
    let result = refine_budgeted_in(h, &mut p, cfg, rng, ws, meter);
    (p, result)
}

/// Refines a bipartition in place; see [`fm_partition`] for semantics.
///
/// # Panics
///
/// Panics if `p` is not a bipartition of `h`.
pub fn refine(h: &Hypergraph, p: &mut Partition, cfg: &FmConfig, rng: &mut MlRng) -> FmResult {
    let mut ws = RefineWorkspace::new();
    refine_in(h, p, cfg, rng, &mut ws)
}

/// [`refine`] with caller-owned scratch: bit-identical results, no per-call
/// allocation of the gain/bucket machinery.
pub fn refine_in(
    h: &Hypergraph,
    p: &mut Partition,
    cfg: &FmConfig,
    rng: &mut MlRng,
    ws: &mut RefineWorkspace,
) -> FmResult {
    refine_budgeted_in(h, p, cfg, rng, ws, &mut BudgetMeter::unlimited())
}

/// [`refine_in`] with a cooperative budget checkpoint before every pass.
///
/// The pass loop consults `meter` at each pass boundary and stops early
/// when a limit fires, so a budgeted run executes a prefix of the
/// unbudgeted pass sequence and the partition left in `p` is the best
/// solution found so far (each pass keeps its best move prefix). The
/// truncation record, if any, is available from the meter.
pub fn refine_budgeted_in(
    h: &Hypergraph,
    p: &mut Partition,
    cfg: &FmConfig,
    rng: &mut MlRng,
    ws: &mut RefineWorkspace,
    meter: &mut BudgetMeter,
) -> FmResult {
    let bounds = PartBounds::from_bipart(&BipartBalance::new(h, cfg.balance_r));
    refine_constrained_budgeted_in(h, p, cfg, &bounds, &[], rng, ws, meter)
}

/// [`refine_budgeted_in`] under explicit constraints: per-part `[lo, hi]`
/// area windows instead of the ratio-derived §III-B bounds, plus a set of
/// *fixed* modules that never move (one flag per module; pass an empty slice
/// for none). Fixed modules are excluded from the gain buckets for the whole
/// run — they are never selected, so every prefix of the move sequence
/// leaves them on the part the initial partition assigns.
///
/// With bounds derived via [`PartBounds::from_bipart`] from the same
/// tolerance and an empty fixed set, this is byte-identical to
/// [`refine_budgeted_in`].
///
/// # Panics
///
/// Panics if `p` is not a bipartition of `h`, `bounds` is not 2-part, or
/// `fixed` is non-empty with the wrong length.
#[allow(clippy::too_many_arguments)]
pub fn refine_constrained_budgeted_in(
    h: &Hypergraph,
    p: &mut Partition,
    cfg: &FmConfig,
    bounds: &PartBounds,
    fixed: &[bool],
    rng: &mut MlRng,
    ws: &mut RefineWorkspace,
    meter: &mut BudgetMeter,
) -> FmResult {
    assert_eq!(p.k(), 2, "refine requires a bipartition");
    assert_eq!(
        p.assignment().len(),
        h.num_modules(),
        "partition does not match hypergraph"
    );
    assert_eq!(bounds.k(), 2, "refine requires 2-part bounds");
    if !fixed.is_empty() {
        assert_eq!(fixed.len(), h.num_modules(), "fixed mask has wrong length");
    }
    let st = &mut ws.state;
    bind_bipart(st, h, cfg);
    if !fixed.is_empty() {
        st.fixed.copy_from_slice(fixed);
    }
    #[cfg(feature = "obs")]
    let _obs_span = mlpart_obs::span(
        "fm_refine",
        &[
            (
                "engine",
                match cfg.engine {
                    Engine::Fm => "FM",
                    Engine::Clip => "CLIP",
                }
                .into(),
            ),
            ("modules", h.num_modules().into()),
        ],
    );
    let mut passes = 0;
    let mut kept_moves = 0u64;
    let mut attempted_moves = 0u64;
    let mut pass_stats = Vec::new();
    while passes < cfg.max_passes {
        if !meter.pass_checkpoint(passes as u32) {
            break;
        }
        let outcome = st.run_pass(h, p, cfg, bounds, rng, passes);
        passes += 1;
        meter.note_pass(outcome.stats.attempted_moves as u64);
        kept_moves += outcome.stats.kept_moves as u64;
        attempted_moves += outcome.stats.attempted_moves as u64;
        pass_stats.push(outcome.stats);
        if !outcome.improved {
            break;
        }
    }
    FmResult {
        cut: metrics::cut(h, p),
        internal_cut: metrics::cut_with_net_size_limit(h, p, cfg.max_net_size),
        passes,
        kept_moves,
        attempted_moves,
        pass_stats,
    }
}

/// Binds the shared state to `h` in its 2-way shape: one bucket structure,
/// key range from the max visible incident weight (doubled for CLIP deltas).
fn bind_bipart(st: &mut RefineState, h: &Hypergraph, cfg: &FmConfig) {
    let max_vis_weight = st.bind_nets(h, 2, cfg.max_net_size);
    assert!(
        max_vis_weight <= i32::MAX as i64 / 4,
        "net weights too large for the bucket structure"
    );
    let max_vis_weight = max_vis_weight as i32;
    let max_key = match cfg.engine {
        Engine::Fm => max_vis_weight,
        Engine::Clip => 2 * max_vis_weight,
    };
    st.bind_modules(h, 1, max_key, cfg.policy);
}

struct PassOutcome {
    improved: bool,
    stats: PassStats,
}

/// The 2-way pass algorithm, implemented over the shared [`RefineState`].
/// The state's `pins_in` is 2-strided (`pins_in[2e + side]`) and
/// `buckets[0]` is the single bucket structure — moves always target the
/// other side, so per-destination buckets are unnecessary at `k = 2`.
impl RefineState {
    /// Recomputes `pins_in` and `gain` from scratch (the paper's
    /// implementation reinitializes the entire structure before each pass).
    /// Returns the visible-net (weighted) cut.
    fn recompute(&mut self, h: &Hypergraph, p: &Partition) -> u64 {
        let mut cut = 0u64;
        for e in h.net_ids() {
            if !self.visible[e.index()] {
                continue;
            }
            let mut counts = [0u32, 0];
            for &v in h.pins(e) {
                counts[p.part(v) as usize] += 1;
            }
            self.pins_in[2 * e.index()] = counts[0];
            self.pins_in[2 * e.index() + 1] = counts[1];
            if counts[0] > 0 && counts[1] > 0 {
                cut += h.net_weight(e) as u64;
            }
        }
        for v in h.modules() {
            let s = p.part(v) as usize;
            let o = 1 - s;
            let mut g = 0i32;
            for &e in h.nets(v) {
                if !self.visible[e.index()] {
                    continue;
                }
                let w = h.net_weight(e) as i32;
                if self.pins_in[2 * e.index() + s] == 1 {
                    g += w;
                }
                if self.pins_in[2 * e.index() + o] == 0 {
                    g -= w;
                }
            }
            self.gain[v.index()] = g;
            self.gain0[v.index()] = g;
        }
        cut
    }

    /// Recomputes `gain[v]` from the current `pins_in` (used when a module
    /// re-enters the structure after a CDIP rollback; its stored gain went
    /// stale while it was locked).
    fn recompute_gain_of(&mut self, h: &Hypergraph, p: &Partition, v: ModuleId) {
        let s = p.part(v) as usize;
        let o = 1 - s;
        let mut g = 0i32;
        for &e in h.nets(v) {
            if !self.visible[e.index()] {
                continue;
            }
            let w = h.net_weight(e) as i32;
            if self.pins_in[2 * e.index() + s] == 1 {
                g += w;
            }
            if self.pins_in[2 * e.index() + o] == 0 {
                g -= w;
            }
        }
        self.gain[v.index()] = g;
    }

    fn bucket_key(&self, v: ModuleId, engine: Engine) -> i32 {
        match engine {
            Engine::Fm => self.gain[v.index()],
            Engine::Clip => self.gain[v.index()] - self.gain0[v.index()],
        }
    }

    /// Loads the bucket structure for a fresh pass.
    fn fill_buckets(&mut self, h: &Hypergraph, p: &Partition, cfg: &FmConfig) {
        self.buckets[0].clear();
        // Which modules enter initially? Fixed modules never do.
        let eligible = |ctx: &Self, v: ModuleId| -> bool {
            if ctx.fixed[v.index()] {
                return false;
            }
            if !cfg.boundary_init {
                return true;
            }
            h.nets(v).iter().any(|e| {
                ctx.visible[e.index()]
                    && ctx.pins_in[2 * e.index()] > 0
                    && ctx.pins_in[2 * e.index() + 1] > 0
            })
        };
        match cfg.engine {
            Engine::Fm => {
                for v in h.modules() {
                    if eligible(self, v) {
                        self.buckets[0].insert(v, self.gain[v.index()]);
                    }
                }
            }
            Engine::Clip => {
                // Concatenate in descending initial gain into bucket 0. For
                // LIFO (insert-at-head) we insert ascending so the largest
                // initial gain ends at the head; FIFO/Random append at the
                // tail so we insert descending.
                let mut order: Vec<ModuleId> = h.modules().filter(|&v| eligible(self, v)).collect();
                order.sort_by_key(|v| self.gain0[v.index()]);
                match cfg.policy {
                    BucketPolicy::Lifo => {
                        for &v in &order {
                            self.buckets[0].insert(v, 0);
                        }
                    }
                    BucketPolicy::Fifo | BucketPolicy::Random => {
                        for &v in order.iter().rev() {
                            self.buckets[0].insert(v, 0);
                        }
                    }
                }
            }
        }
        let _ = p;
    }

    /// Applies the FM incremental gain-update rules for moving `v` across the
    /// cut; updates `pins_in`, neighbor gains, buckets and the running cut.
    fn apply_move(
        &mut self,
        h: &Hypergraph,
        p: &mut Partition,
        v: ModuleId,
        cfg: &FmConfig,
        cut: &mut u64,
    ) {
        self.locked[v.index()] = true;
        if self.buckets[0].contains(v) {
            self.buckets[0].remove(v);
        }
        if cfg.incremental_reinit {
            // Everything whose gain a move can invalidate: the mover and
            // every pin sharing a visible net with it.
            self.touched.push(v.raw());
            for &e in h.nets(v) {
                if self.visible[e.index()] {
                    self.touched.extend(h.pins(e).iter().map(|w| w.raw()));
                }
            }
        }
        self.shift_module(h, p, v, cfg, cut);
    }

    /// The raw state updates of moving `v` to the other side: partition,
    /// `pins_in`, neighbor gains, running cut. Shared by forward moves and
    /// CDIP's backtracking undo (the updates are their own inverse).
    fn shift_module(
        &mut self,
        h: &Hypergraph,
        p: &mut Partition,
        v: ModuleId,
        cfg: &FmConfig,
        cut: &mut u64,
    ) {
        let from = p.part(v) as usize;
        let to = 1 - from;
        p.move_module(h, v, to as u32);
        for &e in h.nets(v) {
            if !self.visible[e.index()] {
                continue;
            }
            let ei = e.index();
            let w = h.net_weight(e) as i32;
            // Before the pin flip.
            let t_before = self.pins_in[2 * ei + to];
            if t_before == 0 {
                *cut += w as u64;
                // Net was uncut on `from`; every other pin gains desire to
                // follow (their "net becomes uncut if I move" term appears).
                self.bump_net_gains(h, e, v, w, cfg);
            } else if t_before == 1 {
                // The lone pin on `to` no longer saves the net by moving.
                self.bump_single_side_gain(h, p, e, v, to as u32, -w, cfg);
            }
            self.pins_in[2 * ei + from] -= 1;
            self.pins_in[2 * ei + to] += 1;
            // After the pin flip.
            let f_after = self.pins_in[2 * ei + from];
            if f_after == 0 {
                *cut -= w as u64;
                self.bump_net_gains(h, e, v, -w, cfg);
            } else if f_after == 1 {
                // The lone remaining pin on `from` can now uncut the net.
                self.bump_single_side_gain(h, p, e, v, from as u32, w, cfg);
            }
        }
    }

    /// Adds `delta` to the gain of every unlocked pin of `e` other than `v`.
    fn bump_net_gains(
        &mut self,
        h: &Hypergraph,
        e: NetId,
        v: ModuleId,
        delta: i32,
        cfg: &FmConfig,
    ) {
        for &w in h.pins(e) {
            if w != v && !self.locked[w.index()] {
                self.change_gain(w, delta, cfg);
            }
        }
    }

    /// Adds `delta` to the gain of the unique unlocked pin of `e` on `side`
    /// (if it exists and is not `v`).
    #[allow(clippy::too_many_arguments)]
    fn bump_single_side_gain(
        &mut self,
        h: &Hypergraph,
        p: &Partition,
        e: NetId,
        v: ModuleId,
        side: u32,
        delta: i32,
        cfg: &FmConfig,
    ) {
        for &w in h.pins(e) {
            if w != v && p.part(w) == side {
                if !self.locked[w.index()] {
                    self.change_gain(w, delta, cfg);
                }
                break;
            }
        }
    }

    fn change_gain(&mut self, w: ModuleId, delta: i32, cfg: &FmConfig) {
        self.gain[w.index()] += delta;
        let key = self.bucket_key(w, cfg.engine);
        if self.buckets[0].contains(w) {
            self.buckets[0].update_key(w, key);
        } else {
            // Boundary mode: a module touched by a move enters the structure.
            self.buckets[0].insert(w, key);
        }
    }

    /// Second-level (lookahead) gain: how much immediate gain the move of
    /// `v` would create for its still-unlocked neighbors. A net with exactly
    /// two pins on `v`'s side is one move away from granting a +1 to the
    /// remaining pin; a net with exactly one pin on the destination side is
    /// about to lose that pin's +1.
    fn second_level_gain(&self, h: &Hypergraph, p: &Partition, v: ModuleId) -> i32 {
        let from = p.part(v) as usize;
        let to = 1 - from;
        let mut g = 0i32;
        for &e in h.nets(v) {
            if !self.visible[e.index()] {
                continue;
            }
            let w = h.net_weight(e) as i32;
            if self.pins_in[2 * e.index() + from] == 2 {
                g += w;
            }
            if self.pins_in[2 * e.index() + to] == 1 {
                g -= w;
            }
        }
        g
    }

    /// Lookahead selection: find the highest bucket with a feasible member,
    /// then break ties inside it by the second-level gain (list order, i.e.
    /// the configured policy, breaks remaining ties).
    fn select_lookahead<F>(
        &mut self,
        h: &Hypergraph,
        p: &Partition,
        mut feasible: F,
    ) -> Option<ModuleId>
    where
        F: FnMut(ModuleId) -> bool,
    {
        let top = self.buckets[0].max_key()?;
        let mut key = top;
        while key >= -self.key_bound {
            let members = self.buckets[0].bucket_members(key);
            let mut best: Option<(i32, ModuleId)> = None;
            for v in members {
                if !feasible(v) {
                    continue;
                }
                let g2 = self.second_level_gain(h, p, v);
                match best {
                    Some((bg, _)) if bg >= g2 => {}
                    _ => best = Some((g2, v)),
                }
            }
            if let Some((_, v)) = best {
                return Some(v);
            }
            key -= 1;
        }
        None
    }

    fn run_pass(
        &mut self,
        h: &Hypergraph,
        p: &mut Partition,
        cfg: &FmConfig,
        bounds: &PartBounds,
        rng: &mut MlRng,
        _pass_no: usize,
    ) -> PassOutcome {
        let fill_start = Instant::now();
        let start_cut = if cfg.incremental_reinit && self.state_valid {
            // §V fast reinit: only touched modules can have stale gains.
            // Duplicates in the touched list are harmless (recomputation is
            // idempotent), so no dedup pass is needed.
            let touched = std::mem::take(&mut self.touched);
            for &raw in &touched {
                self.recompute_gain_of(h, p, ModuleId::from(raw));
            }
            self.gain0.copy_from_slice(&self.gain);
            self.cut_cache
        } else {
            self.touched.clear();
            self.recompute(h, p)
        };
        self.state_valid = false;
        // Fixed modules start (and stay) locked: never selected, skipped by
        // the gain-update rules. All-false `fixed` makes this `fill(false)`.
        self.locked.copy_from_slice(&self.fixed);
        self.moves.clear();
        self.fill_buckets(h, p, cfg);
        let fill_time_ns = fill_start.elapsed().as_nanos() as u64;
        // Post-fill gain distribution and bucket occupancy; sampled here (a
        // deterministic point in the pass) only when a trace is recording.
        #[cfg(feature = "obs")]
        let obs_fill = mlpart_obs::recording().then(|| {
            let (mut neg, mut zero, mut pos) = (0u64, 0u64, 0u64);
            let (mut gmin, mut gmax) = (0i64, 0i64);
            for v in h.modules() {
                let g = i64::from(self.gain[v.index()]);
                match g.cmp(&0) {
                    std::cmp::Ordering::Less => neg += 1,
                    std::cmp::Ordering::Equal => zero += 1,
                    std::cmp::Ordering::Greater => pos += 1,
                }
                gmin = gmin.min(g);
                gmax = gmax.max(g);
            }
            (self.buckets[0].len() as u64, gmin, gmax, neg, zero, pos)
        });
        #[cfg(feature = "audit")]
        if mlpart_audit::enabled() {
            mlpart_audit::enforce(
                crate::audit::audit_pass_start(self, h, p, cfg, start_cut)
                    .map_err(|e| e.with_pass(_pass_no)),
            );
        }

        let total = h.total_area();
        let mut cut = start_cut;
        let mut best_cut = start_cut;
        let mut best_len = 0usize;
        let mut stall = 0usize;
        let mut backtracks = 0usize;
        // Each backtrack permanently locks one seed module, so the pass
        // still terminates; the cap keeps worst cases cheap.
        let max_backtracks = h.num_modules().min(64);
        loop {
            if let Some(limit) = cfg.early_exit_stall {
                if stall >= limit {
                    break;
                }
            }
            let area0 = p.part_area(0);
            let pick = {
                let part_of = p.assignment();
                let areas = h.areas();
                let check = |v: ModuleId| {
                    let a = areas[v.index()];
                    let new_a0 = if part_of[v.index()] == 0 {
                        area0 - a
                    } else {
                        area0 + a
                    };
                    let new_a1 = total - new_a0.min(total);
                    bounds.is_area_feasible(0, new_a0) && bounds.is_area_feasible(1, new_a1)
                };
                if cfg.lookahead {
                    self.select_lookahead(h, p, check)
                } else {
                    self.buckets[0].select_where(rng, check)
                }
            };
            let Some(v) = pick else { break };
            let from = p.part(v);
            self.apply_move(h, p, v, cfg, &mut cut);
            self.moves.push((v, from));
            if cut < best_cut {
                best_cut = cut;
                best_len = self.moves.len();
                stall = 0;
            } else {
                stall += 1;
            }
            // CDIP backtracking: a window of moves without a new best means
            // this sequence is going nowhere — undo it, lock out its seed,
            // and let selection pick a different cluster to chase.
            if let Some(window) = cfg.cdip_window {
                if self.moves.len() - best_len >= window.max(1) && backtracks < max_backtracks {
                    backtracks += 1;
                    let seed = self.moves[best_len].0;
                    let undo: Vec<(ModuleId, u32)> = self.moves[best_len..].to_vec();
                    for &(u, from_part) in undo.iter().rev() {
                        debug_assert_ne!(p.part(u), from_part);
                        self.shift_module(h, p, u, cfg, &mut cut);
                        if u != seed {
                            // Rejoin the pass with a fresh gain; the stored
                            // one went stale while locked.
                            self.locked[u.index()] = false;
                            self.recompute_gain_of(h, p, u);
                            let key = self.bucket_key(u, cfg.engine);
                            self.buckets[0].insert(u, key);
                        }
                    }
                    self.moves.truncate(best_len);
                    // In audit builds this runs in release too (the
                    // debug_assert it replaces was debug-only).
                    #[cfg(feature = "audit")]
                    if mlpart_audit::enabled() {
                        mlpart_audit::enforce(
                            mlpart_audit::check_counter(
                                "RefineState",
                                "cdip-backtrack-cut",
                                cut,
                                best_cut,
                            )
                            .map_err(|e| e.with_pass(_pass_no)),
                        );
                    }
                    debug_assert_eq!(cut, best_cut);
                    stall = 0;
                }
            }
        }
        let attempted = self.moves.len();
        // Roll back to the best prefix.
        if cfg.incremental_reinit {
            // Undo through the gain-maintaining path so `pins_in`, `gain`
            // and the cut stay valid for the next pass's fast reinit.
            let undo: Vec<(ModuleId, u32)> = self.moves[best_len..].to_vec();
            for &(v, _from) in undo.iter().rev() {
                self.shift_module(h, p, v, cfg, &mut cut);
            }
            #[cfg(feature = "audit")]
            if mlpart_audit::enabled() {
                mlpart_audit::enforce(
                    mlpart_audit::check_counter("RefineState", "rollback-cut", cut, best_cut)
                        .map_err(|e| e.with_pass(_pass_no)),
                );
            }
            debug_assert_eq!(cut, best_cut);
            self.cut_cache = best_cut;
            self.state_valid = true;
        } else {
            for &(v, from) in self.moves[best_len..].iter().rev() {
                p.move_module(h, v, from);
            }
        }
        #[cfg(feature = "audit")]
        if mlpart_audit::enabled() {
            mlpart_audit::enforce(
                crate::audit::audit_pass_end(self, h, p, cfg, best_cut)
                    .map_err(|e| e.with_pass(_pass_no)),
            );
        }
        #[cfg(feature = "obs")]
        if let Some((occupancy, gmin, gmax, neg, zero, pos)) = obs_fill {
            mlpart_obs::counter(
                "fm_pass",
                &[
                    ("pass", (_pass_no as u64).into()),
                    ("cut_before", start_cut.into()),
                    ("cut_after", best_cut.into()),
                    ("attempted", (attempted as u64).into()),
                    ("kept", (best_len as u64).into()),
                    ("rolled_back", ((attempted - best_len) as u64).into()),
                    ("backtracks", (backtracks as u64).into()),
                    ("bucket_occupancy", occupancy.into()),
                    ("gain_min", gmin.into()),
                    ("gain_max", gmax.into()),
                    ("gain_neg", neg.into()),
                    ("gain_zero", zero.into()),
                    ("gain_pos", pos.into()),
                ],
            );
        }
        PassOutcome {
            improved: best_cut < start_cut,
            stats: PassStats {
                cut_before: start_cut,
                cut_after: best_cut,
                attempted_moves: attempted,
                kept_moves: best_len,
                fill_time_ns,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlpart_hypergraph::rng::seeded_rng;
    use mlpart_hypergraph::HypergraphBuilder;

    /// Two 4-cliques joined by a single bridge net: optimal bisection cut 1.
    fn dumbbell() -> Hypergraph {
        let mut b = HypergraphBuilder::with_unit_areas(8);
        for i in 0..4usize {
            for j in (i + 1)..4 {
                b.add_net([i, j]).unwrap();
                b.add_net([i + 4, j + 4]).unwrap();
            }
        }
        b.add_net([3, 4]).unwrap();
        b.build().unwrap()
    }

    fn chain(n: usize) -> Hypergraph {
        let mut b = HypergraphBuilder::with_unit_areas(n);
        for i in 0..n - 1 {
            b.add_net([i, i + 1]).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn finds_optimal_cut_on_dumbbell_fm() {
        let h = dumbbell();
        let mut rng = seeded_rng(3);
        let (p, r) = fm_partition(&h, None, &FmConfig::default(), &mut rng);
        assert_eq!(r.cut, 1);
        assert!(p.validate(&h));
        assert_eq!(metrics::cut(&h, &p), 1);
    }

    #[test]
    fn finds_optimal_cut_on_dumbbell_clip() {
        let h = dumbbell();
        let cfg = FmConfig {
            engine: Engine::Clip,
            ..FmConfig::default()
        };
        let mut rng = seeded_rng(3);
        let (_, r) = fm_partition(&h, None, &cfg, &mut rng);
        assert_eq!(r.cut, 1);
    }

    #[test]
    fn all_policies_reach_optimum_on_chain() {
        for policy in [BucketPolicy::Lifo, BucketPolicy::Fifo, BucketPolicy::Random] {
            let h = chain(16);
            let cfg = FmConfig {
                policy,
                ..FmConfig::default()
            };
            // Multi-start: flat FM from a random start is not guaranteed to
            // hit the optimum on every seed, but should within a few tries.
            let best = (0..8)
                .map(|s| {
                    let mut rng = seeded_rng(s);
                    fm_partition(&h, None, &cfg, &mut rng).1.cut
                })
                .min()
                .unwrap();
            assert_eq!(best, 1, "policy {policy} failed to find the bisection");
        }
    }

    #[test]
    #[cfg_attr(miri, ignore)] // multi-seed loop: too slow under the interpreter
    fn respects_balance_bounds() {
        let h = chain(100);
        let cfg = FmConfig::default();
        let bal = BipartBalance::new(&h, cfg.balance_r);
        for seed in 0..5 {
            let mut rng = seeded_rng(seed);
            let (p, _) = fm_partition(&h, None, &cfg, &mut rng);
            assert!(
                bal.is_partition_feasible(&p),
                "seed {seed}: areas {:?} outside [{}, {}]",
                p.part_areas(),
                bal.lower(),
                bal.upper()
            );
        }
    }

    #[test]
    fn never_worsens_initial_solution() {
        let h = dumbbell();
        // Start from the optimal solution; refinement must keep cut = 1.
        let p0 = Partition::from_assignment(&h, 2, vec![0, 0, 0, 0, 1, 1, 1, 1]).unwrap();
        let mut rng = seeded_rng(0);
        let (p, r) = fm_partition(&h, Some(p0), &FmConfig::default(), &mut rng);
        assert_eq!(r.cut, 1);
        assert_eq!(metrics::cut(&h, &p), 1);
        assert_eq!(r.passes, 1, "a pass from the optimum should not improve");
    }

    #[test]
    fn improves_bad_initial_solution() {
        let h = dumbbell();
        // Alternating assignment cuts 4 nets per clique plus the bridge.
        let p0 = Partition::from_assignment(&h, 2, vec![0, 1, 0, 1, 0, 1, 0, 1]).unwrap();
        let start_cut = metrics::cut(&h, &p0);
        assert_eq!(start_cut, 9);
        let mut rng = seeded_rng(1);
        let (_, r) = fm_partition(&h, Some(p0), &FmConfig::default(), &mut rng);
        assert!(r.cut < start_cut);
        assert_eq!(r.cut, 1);
    }

    #[test]
    #[cfg_attr(miri, ignore)] // multi-seed loop: too slow under the interpreter
    fn result_cut_matches_metrics() {
        let h = chain(30);
        for seed in 0..5 {
            let mut rng = seeded_rng(seed);
            let (p, r) = fm_partition(&h, None, &FmConfig::default(), &mut rng);
            assert_eq!(r.cut, metrics::cut(&h, &p));
            assert_eq!(r.internal_cut, r.cut, "no large nets in this netlist");
        }
    }

    #[test]
    fn large_nets_ignored_internally_but_counted() {
        // A 5-pin net plus 2-pin nets; set max_net_size = 4 so the big net is
        // invisible to the engine but counted in the reported cut.
        let mut b = HypergraphBuilder::with_unit_areas(6);
        b.add_net([0, 1, 2, 3, 4]).unwrap();
        b.add_net([0, 1]).unwrap();
        b.add_net([4, 5]).unwrap();
        let h = b.build().unwrap();
        let cfg = FmConfig {
            max_net_size: 4,
            ..FmConfig::default()
        };
        let mut rng = seeded_rng(2);
        let (p, r) = fm_partition(&h, None, &cfg, &mut rng);
        assert_eq!(r.cut, metrics::cut(&h, &p));
        assert_eq!(r.internal_cut, metrics::cut_with_net_size_limit(&h, &p, 4));
        assert!(r.internal_cut <= r.cut);
    }

    #[test]
    fn clip_pass_seeds_bucket_zero() {
        // White-box: after fill_buckets with CLIP, every module sits at key 0
        // and the head of bucket 0 has the maximum initial gain.
        let h = dumbbell();
        let cfg = FmConfig {
            engine: Engine::Clip,
            ..FmConfig::default()
        };
        let mut ctx = RefineState::default();
        bind_bipart(&mut ctx, &h, &cfg);
        let p = Partition::from_assignment(&h, 2, vec![0, 1, 0, 1, 0, 1, 0, 1]).unwrap();
        ctx.recompute(&h, &p);
        ctx.fill_buckets(&h, &p, &cfg);
        let members = ctx.buckets[0].bucket_members(0);
        assert_eq!(members.len(), h.num_modules());
        let head_gain = ctx.gain0[members[0].index()];
        let max_gain = ctx.gain0.iter().copied().max().unwrap();
        assert_eq!(head_gain, max_gain);
        // Descending order head -> tail.
        for w in members.windows(2) {
            assert!(ctx.gain0[w[0].index()] >= ctx.gain0[w[1].index()]);
        }
    }

    #[test]
    fn initial_gains_match_definition() {
        // Hand-checked gains on a 4-module netlist.
        // nets: {0,1}, {1,2}, {2,3}; partition 0,0 | 1,1.
        let h = chain(4);
        let p = Partition::from_assignment(&h, 2, vec![0, 0, 1, 1]).unwrap();
        let cfg = FmConfig::default();
        let mut ctx = RefineState::default();
        bind_bipart(&mut ctx, &h, &cfg);
        let cut = ctx.recompute(&h, &p);
        assert_eq!(cut, 1);
        // g(0): net {0,1} uncut, moving 0 cuts it -> -1.
        // g(1): net {0,1} would become... pins_in({0,1}) = [2,0]; v=1 side 0:
        //   c[s]=2 no, c[o]=0 -> -1; net {1,2}: [1,1], c[s]==1 -> +1. total 0.
        assert_eq!(ctx.gain[0], -1);
        assert_eq!(ctx.gain[1], 0);
        assert_eq!(ctx.gain[2], 0);
        assert_eq!(ctx.gain[3], -1);
    }

    #[test]
    fn boundary_init_reaches_same_quality_on_dumbbell() {
        let h = dumbbell();
        let cfg = FmConfig {
            boundary_init: true,
            ..FmConfig::default()
        };
        let best = (0..8)
            .map(|s| {
                let mut rng = seeded_rng(100 + s);
                fm_partition(&h, None, &cfg, &mut rng).1.cut
            })
            .min()
            .unwrap();
        assert_eq!(best, 1);
    }

    #[test]
    fn early_exit_stall_terminates_and_is_feasible() {
        let h = chain(60);
        let cfg = FmConfig {
            early_exit_stall: Some(5),
            ..FmConfig::default()
        };
        let bal = BipartBalance::new(&h, cfg.balance_r);
        let mut rng = seeded_rng(4);
        let (p, r) = fm_partition(&h, None, &cfg, &mut rng);
        assert!(bal.is_partition_feasible(&p));
        assert!(r.cut >= 1);
    }

    #[test]
    fn deterministic_given_seed() {
        let h = dumbbell();
        let run = |seed| {
            let mut rng = seeded_rng(seed);
            fm_partition(&h, None, &FmConfig::default(), &mut rng)
        };
        let (p1, r1) = run(77);
        let (p2, r2) = run(77);
        assert_eq!(p1.assignment(), p2.assignment());
        assert_eq!(r1, r2);
    }

    #[test]
    fn single_module_netlist() {
        let h = HypergraphBuilder::with_unit_areas(1).build().unwrap();
        let mut rng = seeded_rng(0);
        let (p, r) = fm_partition(&h, None, &FmConfig::default(), &mut rng);
        assert_eq!(r.cut, 0);
        assert!(p.validate(&h));
    }

    #[test]
    fn netlist_with_no_nets() {
        let h = HypergraphBuilder::with_unit_areas(10).build().unwrap();
        let mut rng = seeded_rng(0);
        let (p, r) = fm_partition(&h, None, &FmConfig::default(), &mut rng);
        assert_eq!(r.cut, 0);
        assert!(p.validate(&h));
    }

    #[test]
    #[should_panic(expected = "requires a bipartition")]
    fn rejects_kway_input() {
        let h = chain(4);
        let p = Partition::from_assignment(&h, 4, vec![0, 1, 2, 3]).unwrap();
        let mut rng = seeded_rng(0);
        let _ = fm_partition(&h, Some(p), &FmConfig::default(), &mut rng);
    }

    #[test]
    #[cfg_attr(miri, ignore)] // multi-seed loop: too slow under the interpreter
    fn weighted_modules_respect_balance() {
        let mut b = HypergraphBuilder::new(vec![5, 1, 1, 1, 1, 1, 5, 1, 1, 1, 1, 1]);
        for i in 0..5usize {
            b.add_net([i, i + 1]).unwrap();
            b.add_net([i + 6, i + 7]).unwrap();
        }
        b.add_net([5, 6]).unwrap();
        let h = b.build().unwrap();
        let cfg = FmConfig::default();
        let bal = BipartBalance::new(&h, cfg.balance_r);
        let mut rng = seeded_rng(9);
        let (p, _) = fm_partition(&h, None, &cfg, &mut rng);
        assert!(bal.is_partition_feasible(&p));
    }
}

#[cfg(test)]
mod constrained_tests {
    use super::*;
    use mlpart_hypergraph::rng::seeded_rng;
    use mlpart_hypergraph::HypergraphBuilder;

    fn dumbbell() -> Hypergraph {
        let mut b = HypergraphBuilder::with_unit_areas(8);
        for i in 0..4usize {
            for j in (i + 1)..4 {
                b.add_net([i, j]).unwrap();
                b.add_net([i + 4, j + 4]).unwrap();
            }
        }
        b.add_net([3, 4]).unwrap();
        b.build().unwrap()
    }

    fn run_constrained(
        h: &Hypergraph,
        p0: &Partition,
        cfg: &FmConfig,
        fixed: &[bool],
        seed: u64,
    ) -> (Partition, FmResult) {
        let bounds = PartBounds::from_bipart(&BipartBalance::new(h, cfg.balance_r));
        let mut p = p0.clone();
        let r = refine_constrained_budgeted_in(
            h,
            &mut p,
            cfg,
            &bounds,
            fixed,
            &mut seeded_rng(seed),
            &mut RefineWorkspace::new(),
            &mut BudgetMeter::unlimited(),
        );
        (p, r)
    }

    #[test]
    #[cfg_attr(miri, ignore)] // multi-seed loop: too slow under the interpreter
    fn empty_fixed_set_is_byte_identical_to_legacy_refine() {
        let h = dumbbell();
        for (engine, extra) in [
            (Engine::Fm, false),
            (Engine::Clip, false),
            (Engine::Fm, true),
        ] {
            let cfg = FmConfig {
                engine,
                boundary_init: extra,
                cdip_window: extra.then_some(4),
                ..FmConfig::default()
            };
            for seed in 0..6 {
                let p0 = Partition::random(&h, 2, &mut seeded_rng(1000 + seed));
                let mut p_legacy = p0.clone();
                let r_legacy = refine(&h, &mut p_legacy, &cfg, &mut seeded_rng(seed));
                let (p_new, r_new) = run_constrained(&h, &p0, &cfg, &[], seed);
                assert_eq!(p_legacy.assignment(), p_new.assignment(), "seed {seed}");
                assert_eq!(r_legacy, r_new, "seed {seed}");
            }
        }
    }

    #[test]
    #[cfg_attr(miri, ignore)] // multi-seed loop: too slow under the interpreter
    fn fixed_modules_never_move() {
        let h = dumbbell();
        // Pin one module of each clique to the "wrong" side: refinement must
        // work around them, never through them.
        let p0 = Partition::from_assignment(&h, 2, vec![1, 0, 0, 0, 1, 1, 1, 0]).unwrap();
        let mut fixed = vec![false; 8];
        fixed[0] = true;
        fixed[7] = true;
        for engine in [Engine::Fm, Engine::Clip] {
            for boundary_init in [false, true] {
                let cfg = FmConfig {
                    engine,
                    boundary_init,
                    ..FmConfig::default()
                };
                for seed in 0..8 {
                    let (p, r) = run_constrained(&h, &p0, &cfg, &fixed, seed);
                    assert_eq!(p.part(ModuleId::new(0)), 1, "seed {seed}");
                    assert_eq!(p.part(ModuleId::new(7)), 0, "seed {seed}");
                    assert_eq!(r.cut, metrics::cut(&h, &p));
                    assert!(p.validate(&h));
                }
            }
        }
    }

    #[test]
    #[cfg_attr(miri, ignore)] // multi-seed loop: too slow under the interpreter
    fn fixed_modules_survive_cdip_backtracking() {
        let h = dumbbell();
        let p0 = Partition::from_assignment(&h, 2, vec![0, 1, 0, 1, 0, 1, 0, 1]).unwrap();
        let mut fixed = vec![false; 8];
        fixed[2] = true;
        fixed[5] = true;
        let cfg = FmConfig {
            cdip_window: Some(1),
            ..FmConfig::default()
        };
        for seed in 0..6 {
            let (p, _) = run_constrained(&h, &p0, &cfg, &fixed, seed);
            assert_eq!(p.part(ModuleId::new(2)), 0, "seed {seed}");
            assert_eq!(p.part(ModuleId::new(5)), 1, "seed {seed}");
        }
    }

    #[test]
    fn narrow_window_bounds_are_respected() {
        let h = dumbbell();
        // Exact bisection only: lo = hi = 4 on both sides.
        let bounds = PartBounds::uniform(2, 4, 4);
        let p0 = Partition::from_assignment(&h, 2, vec![0, 1, 0, 1, 0, 1, 0, 1]).unwrap();
        let mut p = p0.clone();
        let cfg = FmConfig::default();
        let _ = refine_constrained_budgeted_in(
            &h,
            &mut p,
            &cfg,
            &bounds,
            &[],
            &mut seeded_rng(3),
            &mut RefineWorkspace::new(),
            &mut BudgetMeter::unlimited(),
        );
        assert!(bounds.is_partition_feasible(&p));
    }

    #[test]
    fn all_fixed_leaves_partition_untouched() {
        let h = dumbbell();
        let p0 = Partition::from_assignment(&h, 2, vec![0, 1, 0, 1, 0, 1, 0, 1]).unwrap();
        let fixed = vec![true; 8];
        let (p, r) = run_constrained(&h, &p0, &FmConfig::default(), &fixed, 0);
        assert_eq!(p.assignment(), p0.assignment());
        assert_eq!(r.kept_moves, 0);
    }

    #[cfg(feature = "audit")]
    #[test]
    fn audit_accepts_fixed_runs() {
        mlpart_audit::force_enabled(true);
        let h = dumbbell();
        let p0 = Partition::from_assignment(&h, 2, vec![1, 0, 0, 0, 1, 1, 1, 0]).unwrap();
        let mut fixed = vec![false; 8];
        fixed[0] = true;
        let (p, _) = run_constrained(&h, &p0, &FmConfig::default(), &fixed, 2);
        mlpart_audit::force_enabled(false);
        assert_eq!(p.part(ModuleId::new(0)), 1);
    }

    #[test]
    #[should_panic(expected = "fixed mask has wrong length")]
    fn rejects_wrong_fixed_length() {
        let h = dumbbell();
        let p0 = Partition::random(&h, 2, &mut seeded_rng(0));
        let _ = run_constrained(&h, &p0, &FmConfig::default(), &[true], 0);
    }
}

#[cfg(test)]
mod lookahead_tests {
    use super::*;
    use mlpart_hypergraph::rng::seeded_rng;
    use mlpart_hypergraph::HypergraphBuilder;

    fn dumbbell() -> Hypergraph {
        let mut b = HypergraphBuilder::with_unit_areas(8);
        for i in 0..4usize {
            for j in (i + 1)..4 {
                b.add_net([i, j]).unwrap();
                b.add_net([i + 4, j + 4]).unwrap();
            }
        }
        b.add_net([3, 4]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn lookahead_finds_optimum() {
        let h = dumbbell();
        for engine in [Engine::Fm, Engine::Clip] {
            let cfg = FmConfig {
                engine,
                lookahead: true,
                ..FmConfig::default()
            };
            let best = (0..8)
                .map(|s| {
                    let mut rng = seeded_rng(s);
                    fm_partition(&h, None, &cfg, &mut rng).1.cut
                })
                .min()
                .unwrap();
            assert_eq!(best, 1, "engine {engine}");
        }
    }

    #[test]
    #[cfg_attr(miri, ignore)] // multi-seed loop: too slow under the interpreter
    fn lookahead_respects_balance_and_reporting() {
        let mut b = HypergraphBuilder::with_unit_areas(40);
        for i in 0..39usize {
            b.add_net([i, i + 1]).unwrap();
            b.add_net([i, (i + 7) % 40]).unwrap();
        }
        let h = b.build().unwrap();
        let cfg = FmConfig {
            lookahead: true,
            ..FmConfig::default()
        };
        let bal = BipartBalance::new(&h, cfg.balance_r);
        for seed in 0..4 {
            let mut rng = seeded_rng(seed);
            let (p, r) = fm_partition(&h, None, &cfg, &mut rng);
            assert!(bal.is_partition_feasible(&p));
            assert_eq!(r.cut, metrics::cut(&h, &p));
        }
    }

    #[test]
    fn lookahead_is_deterministic() {
        let h = dumbbell();
        let cfg = FmConfig {
            engine: Engine::Clip,
            lookahead: true,
            ..FmConfig::default()
        };
        let run = |seed| {
            let mut rng = seeded_rng(seed);
            fm_partition(&h, None, &cfg, &mut rng)
        };
        let (p1, r1) = run(33);
        let (p2, r2) = run(33);
        assert_eq!(p1.assignment(), p2.assignment());
        assert_eq!(r1, r2);
    }

    #[test]
    fn second_level_gain_hand_checked() {
        // Chain 0-1-2-3, partition 0,0 | 1,1.
        // For v=1 (side 0): net {0,1}: pins_in[0]=2 -> +1; net {1,2}:
        // pins_in[to]=pins_in[1]=1 -> -1. g2(1) = 0.
        // For v=0: net {0,1}: pins_in[0]=2 -> +1; g2(0) = 1.
        let mut b = HypergraphBuilder::with_unit_areas(4);
        b.add_net([0, 1]).unwrap();
        b.add_net([1, 2]).unwrap();
        b.add_net([2, 3]).unwrap();
        let h = b.build().unwrap();
        let p = Partition::from_assignment(&h, 2, vec![0, 0, 1, 1]).unwrap();
        let cfg = FmConfig::default();
        let mut ctx = RefineState::default();
        bind_bipart(&mut ctx, &h, &cfg);
        ctx.recompute(&h, &p);
        assert_eq!(ctx.second_level_gain(&h, &p, ModuleId::new(1)), 0);
        assert_eq!(ctx.second_level_gain(&h, &p, ModuleId::new(0)), 1);
    }
}

#[cfg(test)]
mod cdip_tests {
    use super::*;
    use mlpart_hypergraph::rng::seeded_rng;
    use mlpart_hypergraph::HypergraphBuilder;

    fn dumbbell() -> Hypergraph {
        let mut b = HypergraphBuilder::with_unit_areas(8);
        for i in 0..4usize {
            for j in (i + 1)..4 {
                b.add_net([i, j]).unwrap();
                b.add_net([i + 4, j + 4]).unwrap();
            }
        }
        b.add_net([3, 4]).unwrap();
        b.build().unwrap()
    }

    fn cdip_cfg(engine: Engine) -> FmConfig {
        FmConfig {
            engine,
            cdip_window: Some(4),
            ..FmConfig::default()
        }
    }

    #[test]
    fn cdip_finds_optimum_on_dumbbell() {
        let h = dumbbell();
        for engine in [Engine::Fm, Engine::Clip] {
            let best = (0..8)
                .map(|s| {
                    let mut rng = seeded_rng(s);
                    fm_partition(&h, None, &cdip_cfg(engine), &mut rng).1.cut
                })
                .min()
                .unwrap();
            assert_eq!(best, 1, "engine {engine}");
        }
    }

    #[test]
    #[cfg_attr(miri, ignore)] // multi-seed loop: too slow under the interpreter
    fn cdip_respects_balance_and_reporting() {
        let mut b = HypergraphBuilder::with_unit_areas(60);
        for i in 0..59usize {
            b.add_net([i, i + 1]).unwrap();
            b.add_net([i, (i + 9) % 60]).unwrap();
        }
        let h = b.build().unwrap();
        let cfg = cdip_cfg(Engine::Clip);
        let bal = BipartBalance::new(&h, cfg.balance_r);
        for seed in 0..5 {
            let mut rng = seeded_rng(seed);
            let (p, r) = fm_partition(&h, None, &cfg, &mut rng);
            assert!(bal.is_partition_feasible(&p), "seed {seed}");
            assert_eq!(r.cut, metrics::cut(&h, &p), "seed {seed}");
            assert!(p.validate(&h));
        }
    }

    #[test]
    fn cdip_never_worse_than_initial() {
        let h = dumbbell();
        let p0 = Partition::from_assignment(&h, 2, vec![0, 1, 0, 1, 0, 1, 0, 1]).unwrap();
        let start = metrics::cut(&h, &p0);
        let mut rng = seeded_rng(4);
        let (_, r) = fm_partition(&h, Some(p0), &cdip_cfg(Engine::Fm), &mut rng);
        assert!(r.cut <= start);
    }

    #[test]
    fn cdip_deterministic() {
        let h = dumbbell();
        let run = |seed| {
            let mut rng = seeded_rng(seed);
            fm_partition(&h, None, &cdip_cfg(Engine::Clip), &mut rng)
        };
        let (p1, r1) = run(17);
        let (p2, r2) = run(17);
        assert_eq!(p1.assignment(), p2.assignment());
        assert_eq!(r1, r2);
    }

    #[test]
    fn cdip_pass_terminates_on_pathological_window() {
        // window = 1 triggers backtracking aggressively; must still halt.
        let h = dumbbell();
        let cfg = FmConfig {
            cdip_window: Some(1),
            ..FmConfig::default()
        };
        let mut rng = seeded_rng(2);
        let (p, r) = fm_partition(&h, None, &cfg, &mut rng);
        assert!(p.validate(&h));
        assert_eq!(r.cut, metrics::cut(&h, &p));
    }
}

#[cfg(test)]
mod incremental_tests {
    use super::*;
    use mlpart_hypergraph::rng::seeded_rng;
    use mlpart_hypergraph::HypergraphBuilder;

    fn chordal_ring(n: usize) -> Hypergraph {
        let mut b = HypergraphBuilder::with_unit_areas(n);
        for i in 0..n {
            b.add_net([i, (i + 1) % n]).unwrap();
            b.add_net([i, (i + 7) % n]).unwrap();
        }
        b.build().unwrap()
    }

    /// The §V claim, made exact: incremental reinitialization must produce
    /// bit-identical partitions to full reinitialization — repaired gains
    /// equal recomputed gains, and bucket filling iterates modules in the
    /// same order either way.
    #[test]
    #[cfg_attr(miri, ignore)] // multi-seed loop: too slow under the interpreter
    fn incremental_reinit_is_exactly_equivalent() {
        for (engine, policy, seed) in [
            (Engine::Fm, BucketPolicy::Lifo, 1u64),
            (Engine::Fm, BucketPolicy::Fifo, 2),
            (Engine::Fm, BucketPolicy::Random, 3),
            (Engine::Clip, BucketPolicy::Lifo, 4),
            (Engine::Clip, BucketPolicy::Random, 5),
        ] {
            let h = chordal_ring(80);
            let full_cfg = FmConfig {
                engine,
                policy,
                ..FmConfig::default()
            };
            let inc_cfg = FmConfig {
                incremental_reinit: true,
                ..full_cfg
            };
            let mut rng_a = seeded_rng(seed);
            let mut rng_b = seeded_rng(seed);
            let (p_full, r_full) = fm_partition(&h, None, &full_cfg, &mut rng_a);
            let (p_inc, r_inc) = fm_partition(&h, None, &inc_cfg, &mut rng_b);
            assert_eq!(
                p_full.assignment(),
                p_inc.assignment(),
                "engine {engine} policy {policy} seed {seed}"
            );
            assert_eq!(r_full.cut, r_inc.cut);
            assert_eq!(r_full.passes, r_inc.passes);
            assert_eq!(r_full.kept_moves, r_inc.kept_moves);
        }
    }

    #[test]
    #[cfg_attr(miri, ignore)] // multi-seed loop: too slow under the interpreter
    fn incremental_reinit_with_weighted_nets() {
        let mut b = HypergraphBuilder::with_unit_areas(24);
        for i in 0..24usize {
            b.add_weighted_net([i, (i + 1) % 24], 1 + (i % 3) as u32)
                .unwrap();
            b.add_net([i, (i + 5) % 24]).unwrap();
        }
        let h = b.build().unwrap();
        let cfg_full = FmConfig::default();
        let cfg_inc = FmConfig {
            incremental_reinit: true,
            ..cfg_full
        };
        for seed in 0..6 {
            let (pf, rf) = fm_partition(&h, None, &cfg_full, &mut seeded_rng(seed));
            let (pi, ri) = fm_partition(&h, None, &cfg_inc, &mut seeded_rng(seed));
            assert_eq!(pf.assignment(), pi.assignment(), "seed {seed}");
            assert_eq!(rf, ri);
        }
    }
}
