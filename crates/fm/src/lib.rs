//! Iterative-improvement bipartitioning engines: FM and CLIP with
//! LIFO/FIFO/Random gain buckets.
//!
//! This crate implements §II of *Multilevel Circuit Partitioning* (Alpert,
//! Huang, Kahng — DAC 1997): the classic Fiduccia-Mattheyses pass engine,
//! the bucket-organization tie-breaking study (Table II), and the CLIP
//! cluster-oriented variant of Dutt-Deng (Table III). It is the refinement
//! engine plugged into the multilevel algorithm in `mlpart-core`.
//!
//! # Examples
//!
//! Bipartition a small netlist from a random start:
//!
//! ```
//! use mlpart_fm::{fm_partition, FmConfig, Engine};
//! use mlpart_hypergraph::{HypergraphBuilder, rng::seeded_rng};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = HypergraphBuilder::with_unit_areas(6);
//! b.add_net([0, 1, 2])?;
//! b.add_net([3, 4, 5])?;
//! b.add_net([2, 3])?;
//! let h = b.build()?;
//!
//! let cfg = FmConfig { engine: Engine::Clip, ..FmConfig::default() };
//! let mut rng = seeded_rng(42);
//! let (partition, result) = fm_partition(&h, None, &cfg, &mut rng);
//! assert_eq!(result.cut, 1);
//! assert_eq!(partition.k(), 2);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

#[cfg(feature = "audit")]
pub mod audit;
pub mod bucket;
pub mod budget;
pub mod engine;
pub mod repair;
pub mod state;

pub use bucket::{BucketPolicy, GainBuckets};
pub use budget::{Budget, BudgetLimit, BudgetMeter, Truncation};
pub use engine::{
    fm_partition, fm_partition_budgeted_in, fm_partition_in, refine, refine_budgeted_in,
    refine_constrained_budgeted_in, refine_in, Engine, FmConfig, FmResult,
};
pub use repair::{repair_to_feasible, RepairRecord};
pub use state::{PassStats, RefineState, RefineWorkspace};
