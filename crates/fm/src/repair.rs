//! Deterministic greedy balance repair: the last line of defense between a
//! constraint-violating solution and the user.
//!
//! Retry exhaustion and budget truncation can leave a start holding a
//! partition whose part areas sit outside the `[lo, hi]` balance window —
//! e.g. a refinement pass interrupted mid-rebalance, or an injected
//! `unbalance` fault. Rather than emit an infeasible artifact, the driver
//! funnels such solutions through [`repair_to_feasible`]: a greedy pass
//! that empties overfull parts (then fills underfull ones) with the
//! highest-cut-gain legal move at every step, never touching fixed
//! terminals.
//!
//! # Determinism
//!
//! The pass is a pure function of `(hypergraph, partition, bounds, fixed)`:
//! candidates are scanned in module-id order, ties on gain break to the
//! lowest module id and then the lowest destination part, and no RNG is
//! involved. Two runs that reach repair with the same solution therefore
//! leave with the same solution — at every thread count, which is what lets
//! the repaired partition participate in the bit-identical survivor
//! reduction.
//!
//! # Termination
//!
//! Every phase-1 move shifts a module with positive area out of an overfull
//! part into a part that stays within its upper bound, so total overflow
//! `Σ max(0, area_p − hi_p)` strictly decreases; every phase-2 move shifts
//! positive area into an underfull part from a donor that stays at or above
//! its lower bound, so total underflow strictly decreases. Both quantities
//! are non-negative integers, so the loops terminate; a defensive move cap
//! guards the invariant against future edits.

use mlpart_hypergraph::metrics::{cut, net_span};
use mlpart_hypergraph::{Hypergraph, ModuleId, PartBounds, Partition};

/// What one repair pass did to one start's solution, as recorded in the
/// run report's `repairs` section.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepairRecord {
    /// Modules moved across the two phases.
    pub moves: u64,
    /// Cut weight entering repair.
    pub cut_before: u64,
    /// Cut weight leaving repair.
    pub cut_after: u64,
    /// Whether the solution satisfies its balance window on exit. `false`
    /// means repair ran out of legal moves (e.g. everything is fixed) and
    /// the driver must not emit this solution.
    pub feasible: bool,
}

/// Cut delta of moving `v` from its part to `to`, as a gain (positive =
/// the cut shrinks). Standard FM-style incidence scan: a net leaves the
/// cut when `v` was its last pin outside `to`, and enters it when `v` is
/// the first pin to leave a previously-uncut net.
fn move_gain(h: &Hypergraph, p: &Partition, v: ModuleId, to: u32) -> i64 {
    let from = p.part(v);
    let mut gain = 0i64;
    for &e in h.nets(v) {
        let w = i64::from(h.net_weight(e));
        let span = net_span(h, p, e);
        let pins = h.pins(e);
        let in_from = pins.iter().filter(|&&u| p.part(u) == from).count();
        let in_to = pins.iter().filter(|&&u| p.part(u) == to).count();
        let was_cut = span > 1;
        let new_span = span - u32::from(in_from == 1) + u32::from(in_to == 0);
        let now_cut = new_span > 1;
        gain += w * (i64::from(was_cut) - i64::from(now_cut));
    }
    gain
}

/// The best legal move under a candidate filter: maximal cut gain, ties to
/// the lowest module id, then the lowest destination part.
fn best_move<F>(h: &Hypergraph, p: &Partition, fixed: &[bool], legal: F) -> Option<(ModuleId, u32)>
where
    F: Fn(ModuleId, u32, u32) -> bool,
{
    let k = p.k();
    let mut best: Option<(i64, ModuleId, u32)> = None;
    for v in h.modules() {
        if fixed.get(v.index()).copied().unwrap_or(false) || h.area(v) == 0 {
            continue;
        }
        let from = p.part(v);
        for to in 0..k {
            if to == from || !legal(v, from, to) {
                continue;
            }
            let gain = move_gain(h, p, v, to);
            // Strict `>` keeps the earliest (module, part) on gain ties:
            // modules scan in id order and parts in part order.
            if best.is_none_or(|(g, _, _)| gain > g) {
                best = Some((gain, v, to));
            }
        }
    }
    best.map(|(_, v, to)| (v, to))
}

/// Greedily repairs `p` toward the `[lo, hi]` balance window of `bounds`,
/// never moving a module whose `fixed` mask entry is `true` (pass an empty
/// slice when nothing is fixed). Returns a [`RepairRecord`] describing the
/// pass; when the record's `feasible` flag is `false` the partition could
/// not be brought inside the window and must not be emitted.
///
/// Already-feasible partitions return immediately with `moves == 0`.
pub fn repair_to_feasible(
    h: &Hypergraph,
    p: &mut Partition,
    bounds: &PartBounds,
    fixed: &[bool],
) -> RepairRecord {
    let cut_before = cut(h, p);
    let mut moves = 0u64;
    // Defensive cap: termination is proven by the monotone overflow /
    // underflow argument in the module docs, but a future edit to the
    // legality filters must degrade to `feasible: false`, not a hang.
    let cap = 4 * h.num_modules() as u64 + 64;

    // Phase 1: drain overfull parts.
    while moves < cap {
        let Some(over) = (0..p.k()).find(|&q| p.part_area(q) > bounds.hi(q)) else {
            break;
        };
        let mv = best_move(h, p, fixed, |v, from, to| {
            from == over && p.part_area(to) + h.area(v) <= bounds.hi(to)
        });
        let Some((v, to)) = mv else { break };
        p.move_module(h, v, to);
        moves += 1;
    }

    // Phase 2: fill underfull parts from donors that stay above `lo`.
    while moves < cap {
        let Some(under) = (0..p.k()).find(|&q| p.part_area(q) < bounds.lo(q)) else {
            break;
        };
        let mv = best_move(h, p, fixed, |v, from, to| {
            to == under
                && p.part_area(from) >= bounds.lo(from) + h.area(v)
                && p.part_area(to) + h.area(v) <= bounds.hi(to)
        });
        let Some((v, to)) = mv else { break };
        p.move_module(h, v, to);
        moves += 1;
    }

    RepairRecord {
        moves,
        cut_before,
        cut_after: cut(h, p),
        feasible: bounds.is_partition_feasible(p),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlpart_hypergraph::rng::seeded_rng;
    use mlpart_hypergraph::HypergraphBuilder;

    fn chain(n: usize) -> Hypergraph {
        let mut b = HypergraphBuilder::with_unit_areas(n);
        for i in 0..n - 1 {
            b.add_net([i, i + 1]).expect("valid net");
        }
        b.build().expect("valid hypergraph")
    }

    fn all_in_part(h: &Hypergraph, k: u32, part: u32) -> Partition {
        Partition::from_assignment(h, k, vec![part; h.num_modules()]).expect("valid")
    }

    #[test]
    fn already_feasible_is_a_no_op() {
        let h = chain(8);
        let mut p = Partition::from_assignment(&h, 2, vec![0, 0, 0, 0, 1, 1, 1, 1]).unwrap();
        let bounds = PartBounds::from_epsilon(&h, 2, 0.2);
        let before = p.assignment().to_vec();
        let r = repair_to_feasible(&h, &mut p, &bounds, &[]);
        assert!(r.feasible);
        assert_eq!(r.moves, 0);
        assert_eq!(r.cut_before, r.cut_after);
        assert_eq!(p.assignment(), &before[..]);
    }

    #[test]
    fn drains_an_overfull_part_to_feasibility() {
        let h = chain(10);
        let mut p = all_in_part(&h, 2, 0);
        let bounds = PartBounds::from_epsilon(&h, 2, 0.2);
        let r = repair_to_feasible(&h, &mut p, &bounds, &[]);
        assert!(r.feasible, "{r:?}");
        assert!(r.moves > 0);
        assert!(bounds.is_partition_feasible(&p));
        // A chain repaired greedily should cut few nets: the moved block
        // is contiguous from one end (highest-gain moves peel endpoints).
        assert_eq!(r.cut_after, cut(&h, &p));
    }

    #[test]
    fn repair_is_deterministic() {
        let h = chain(16);
        let bounds = PartBounds::from_epsilon(&h, 2, 0.1);
        let run = || {
            let mut p = all_in_part(&h, 2, 0);
            let r = repair_to_feasible(&h, &mut p, &bounds, &[]);
            (p.assignment().to_vec(), r)
        };
        let (a1, r1) = run();
        let (a2, r2) = run();
        assert_eq!(a1, a2);
        assert_eq!(r1, r2);
    }

    #[test]
    fn fixed_terminals_never_move() {
        let h = chain(10);
        let mut p = all_in_part(&h, 2, 0);
        let bounds = PartBounds::from_epsilon(&h, 2, 0.2);
        // Pin the first three modules to part 0.
        let mut fixed = vec![false; 10];
        for f in fixed.iter_mut().take(3) {
            *f = true;
        }
        let r = repair_to_feasible(&h, &mut p, &bounds, &fixed);
        assert!(r.feasible, "{r:?}");
        for v in 0..3 {
            assert_eq!(p.part(ModuleId::new(v)), 0, "fixed module {v} moved");
        }
    }

    #[test]
    fn impossible_repair_reports_infeasible_without_hanging() {
        let h = chain(6);
        let mut p = all_in_part(&h, 2, 0);
        let bounds = PartBounds::from_epsilon(&h, 2, 0.2);
        // Everything fixed: no legal move exists.
        let fixed = vec![true; 6];
        let r = repair_to_feasible(&h, &mut p, &bounds, &fixed);
        assert!(!r.feasible);
        assert_eq!(r.moves, 0);
        assert!(p.assignment().iter().all(|&q| q == 0), "nothing moved");
    }

    #[test]
    fn kway_overflow_repairs_across_parts() {
        let h = chain(12);
        let bounds = PartBounds::from_epsilon(&h, 4, 0.3);
        let mut p = all_in_part(&h, 4, 2);
        let r = repair_to_feasible(&h, &mut p, &bounds, &[]);
        assert!(r.feasible, "{r:?}");
        assert!(bounds.is_partition_feasible(&p));
    }

    #[test]
    fn cut_accounting_matches_metrics() {
        // Randomized-but-seeded start far from feasible; the record's cut
        // fields must agree with `metrics::cut` before and after.
        let h = chain(14);
        let bounds = PartBounds::from_epsilon(&h, 2, 0.15);
        let mut rng = seeded_rng(7);
        let mut p = Partition::random(&h, 2, &mut rng);
        // Overload part 0 on purpose.
        for v in h.modules() {
            if p.part(v) == 1 && p.part_area(0) < h.total_area() - 2 {
                p.move_module(&h, v, 0);
            }
        }
        let before = cut(&h, &p);
        let r = repair_to_feasible(&h, &mut p, &bounds, &[]);
        assert_eq!(r.cut_before, before);
        assert_eq!(r.cut_after, cut(&h, &p));
        assert!(r.feasible);
    }
}
