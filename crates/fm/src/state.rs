//! The shared refinement substrate: [`RefineState`], [`RefineWorkspace`],
//! and per-pass instrumentation ([`PassStats`]).
//!
//! Both move-based engines in the workspace — the 2-way FM/CLIP engine in
//! [`crate::engine`] and the Sanchis-style k-way engine in `mlpart-kway` —
//! run the same inner machinery: per-net pin counts split by part, per-module
//! gains, gain buckets, a lock vector, and a move log that is rolled back to
//! its best prefix. [`RefineState`] owns that machinery once, k-generically:
//! the bipartition engine is the `k = 2` specialization with a single bucket
//! structure, the k-way engine uses `k` per-destination bucket structures.
//!
//! [`RefineWorkspace`] wraps a `RefineState` so a multilevel driver can
//! allocate the scratch once and re-bind it at every level of the V-cycle
//! (`bind_nets` / `bind_modules` are grow-only: `Vec::resize` and
//! [`GainBuckets::reset`] reuse capacity). A freshly bound state is
//! observationally identical to a freshly allocated one, so refinement
//! results do not depend on whether a workspace is reused — the equivalence
//! tests in `crates/fm/tests` and `crates/kway/tests` pin this down.

use crate::bucket::{BucketPolicy, GainBuckets};
use mlpart_hypergraph::{Hypergraph, ModuleId};

/// Statistics of one refinement pass, collected by both engines.
///
/// For the bipartition engine the `cut_*` fields are the engine-visible
/// weighted cut (nets over `max_net_size` excluded); for the k-way engine
/// they are the configured objective (sum-of-degrees or net cut) over
/// visible nets.
#[derive(Debug, Clone, Copy, Eq)]
pub struct PassStats {
    /// Engine objective at the start of the pass.
    pub cut_before: u64,
    /// Engine objective after rolling back to the best prefix.
    pub cut_after: u64,
    /// Moves attempted during the pass (before rollback).
    pub attempted_moves: usize,
    /// Moves kept after rolling back to the best prefix.
    pub kept_moves: usize,
    /// Wall-clock nanoseconds spent rebuilding gains and filling the bucket
    /// structure for this pass. Excluded from equality so fixed-seed runs
    /// compare equal.
    pub fill_time_ns: u64,
}

/// Equality ignores `fill_time_ns` (wall-clock noise): two runs with the
/// same seed must compare equal even though their timings differ.
impl PartialEq for PassStats {
    fn eq(&self, other: &Self) -> bool {
        self.cut_before == other.cut_before
            && self.cut_after == other.cut_after
            && self.attempted_moves == other.attempted_moves
            && self.kept_moves == other.kept_moves
    }
}

/// The k-generic scratch state driven by the refinement engines.
///
/// Fields are public: this is a deliberately low-level substrate shared by
/// two engine crates, not an abstraction boundary. The engines own the
/// algorithmic invariants; the state owns the memory. Invariants common to
/// both engines:
///
/// * `pins_in[e * k + part]` counts the pins of net `e` in `part`, for
///   engine-visible nets only (`visible[e]`); invisible entries are zero.
/// * `buckets` holds one structure for the 2-way engine (moves always go to
///   the other side) and `k` per-destination structures for the k-way engine.
/// * `moves` logs `(module, from_part)` pairs; rollback walks it in reverse.
#[derive(Debug, Default)]
pub struct RefineState {
    /// Number of parts `k`; the stride of `pins_in`.
    pub k: u32,
    /// `true` for nets the engine sees (`net size ≤ max_net_size`, §III-B).
    pub visible: Vec<bool>,
    /// Pin counts per (net, part), k-strided: `pins_in[e * k + part]`.
    pub pins_in: Vec<u32>,
    /// Current total gain of each module (2-way engine; over visible nets).
    pub gain: Vec<i32>,
    /// Gain at the start of the pass (the CLIP reference point).
    pub gain0: Vec<i32>,
    /// Modules already moved this pass.
    pub locked: Vec<bool>,
    /// Modules pinned to their part for the whole run (k-way pre-assignment).
    pub fixed: Vec<bool>,
    /// Gain buckets: one for bipartition, `k` (per destination) for k-way.
    pub buckets: Vec<GainBuckets>,
    /// Move log of the current pass: `(module, from_part)`.
    pub moves: Vec<(ModuleId, u32)>,
    /// Incremental-reinit bookkeeping (2-way engine): modules whose gains may
    /// be stale going into the next pass.
    pub touched: Vec<u32>,
    /// Per-move visit stamps (k-way neighbor updates).
    pub stamp: Vec<u32>,
    /// Magnitude of the bucket key range.
    pub key_bound: i32,
    /// Whether `pins_in`/`gain` are valid carrying into the next pass
    /// (2-way incremental reinit).
    pub state_valid: bool,
    /// The visible cut `pins_in`/`gain` correspond to when `state_valid`.
    pub cut_cache: u64,
}

impl RefineState {
    /// Phase 1 of binding: sizes the per-net state of `self` for `h` with
    /// `k` parts, marking nets over `max_net_size` invisible, and returns
    /// the maximum total visible incident net weight over all modules —
    /// the engines derive their bucket key range from it.
    ///
    /// Grow-only: reuses existing allocations.
    pub fn bind_nets(&mut self, h: &Hypergraph, k: u32, max_net_size: usize) -> i64 {
        self.k = k;
        self.visible.clear();
        self.visible
            .extend(h.net_ids().map(|e| h.net_size(e) <= max_net_size));
        self.pins_in.clear();
        self.pins_in.resize(h.num_nets() * k as usize, 0);
        h.modules()
            .map(|v| {
                h.nets(v)
                    .iter()
                    .filter(|e| self.visible[e.index()])
                    .map(|e| h.net_weight(*e) as i64)
                    .sum::<i64>()
            })
            .max()
            .unwrap_or(0)
    }

    /// Phase 2 of binding: sizes the per-module state for `h`, resetting
    /// `num_buckets` bucket structures with keys in `[-max_key, +max_key]`.
    /// After this the state is observationally identical to a freshly
    /// allocated one.
    pub fn bind_modules(
        &mut self,
        h: &Hypergraph,
        num_buckets: usize,
        max_key: i32,
        policy: BucketPolicy,
    ) {
        let n = h.num_modules();
        self.gain.clear();
        self.gain.resize(n, 0);
        self.gain0.clear();
        self.gain0.resize(n, 0);
        self.locked.clear();
        self.locked.resize(n, false);
        self.fixed.clear();
        self.fixed.resize(n, false);
        self.buckets.truncate(num_buckets);
        for b in &mut self.buckets {
            b.reset(n, max_key, policy);
        }
        while self.buckets.len() < num_buckets {
            self.buckets.push(GainBuckets::new(n, max_key, policy));
        }
        self.moves.clear();
        self.moves.reserve(n);
        self.touched.clear();
        self.stamp.clear();
        self.stamp.resize(n, u32::MAX);
        self.key_bound = max_key;
        self.state_valid = false;
        self.cut_cache = 0;
    }

    /// Pin count of net `e` in `part`.
    #[inline]
    pub fn pins(&self, e: usize, part: usize) -> u32 {
        self.pins_in[e * self.k as usize + part]
    }
}

/// Owns the scratch memory of one refinement engine instance.
///
/// Create one per multilevel run and pass it to the `*_in` entry points
/// (`refine_in`, `fm_partition_in`, `kway_refine_in`, …): every level then
/// reuses the gain arrays, pin counts, buckets, and move log instead of
/// reallocating them. The convenience wrappers without `_in` create a
/// throwaway workspace internally and behave identically.
///
/// # Examples
///
/// ```
/// use mlpart_fm::{refine, refine_in, FmConfig, RefineWorkspace};
/// use mlpart_hypergraph::{HypergraphBuilder, Partition, rng::seeded_rng};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = HypergraphBuilder::with_unit_areas(8);
/// for i in 0..7 {
///     b.add_net([i, i + 1])?;
/// }
/// let h = b.build()?;
/// let cfg = FmConfig::default();
/// let p0 = Partition::from_assignment(&h, 2, vec![0, 1, 0, 1, 0, 1, 0, 1]).unwrap();
///
/// // A reused workspace gives bit-identical results to fresh allocation.
/// let mut ws = RefineWorkspace::new();
/// let mut p_a = p0.clone();
/// let mut p_b = p0.clone();
/// let r_a = refine_in(&h, &mut p_a, &cfg, &mut seeded_rng(7), &mut ws);
/// let r_b = refine(&h, &mut p_b, &cfg, &mut seeded_rng(7));
/// assert_eq!(p_a.assignment(), p_b.assignment());
/// assert_eq!(r_a, r_b);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct RefineWorkspace {
    /// The owned scratch state, re-bound by each `*_in` call.
    pub state: RefineState,
}

impl RefineWorkspace {
    /// Creates an empty workspace; the first engine call sizes it.
    pub fn new() -> Self {
        RefineWorkspace::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlpart_hypergraph::HypergraphBuilder;

    fn small() -> Hypergraph {
        let mut b = HypergraphBuilder::with_unit_areas(6);
        b.add_net([0, 1, 2]).unwrap();
        b.add_net([2, 3]).unwrap();
        b.add_net([3, 4, 5]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn bind_sizes_state_and_reports_max_weight() {
        let h = small();
        let mut st = RefineState::default();
        let w = st.bind_nets(&h, 2, 200);
        assert_eq!(w, 2, "modules 2 and 3 each touch two unit nets");
        st.bind_modules(&h, 1, 2, BucketPolicy::Lifo);
        assert_eq!(st.visible.len(), h.num_nets());
        assert_eq!(st.pins_in.len(), h.num_nets() * 2);
        assert_eq!(st.gain.len(), h.num_modules());
        assert_eq!(st.buckets.len(), 1);
        assert!(!st.state_valid);
    }

    #[test]
    fn rebinding_shrinks_and_grows_cleanly() {
        let h = small();
        let tiny = HypergraphBuilder::with_unit_areas(2).build().unwrap();
        let mut st = RefineState::default();
        st.bind_nets(&h, 4, 200);
        st.bind_modules(&h, 4, 5, BucketPolicy::Lifo);
        assert_eq!(st.buckets.len(), 4);
        // Shrink to the k = 2 shape with a single bucket structure.
        st.bind_nets(&tiny, 2, 200);
        st.bind_modules(&tiny, 1, 0, BucketPolicy::Fifo);
        assert_eq!(st.buckets.len(), 1);
        assert_eq!(st.pins_in.len(), 0);
        assert_eq!(st.gain.len(), 2);
        assert!(st.buckets[0].is_empty());
    }

    #[test]
    fn bind_nets_marks_large_nets_invisible() {
        let h = small();
        let mut st = RefineState::default();
        let w = st.bind_nets(&h, 2, 2);
        assert_eq!(st.visible, vec![false, true, false]);
        assert_eq!(w, 1, "only the 2-pin net counts");
    }

    #[test]
    fn pass_stats_equality_ignores_timing() {
        let a = PassStats {
            cut_before: 5,
            cut_after: 3,
            attempted_moves: 10,
            kept_moves: 4,
            fill_time_ns: 123,
        };
        let b = PassStats {
            fill_time_ns: 456_789,
            ..a
        };
        assert_eq!(a, b);
        let c = PassStats { cut_after: 2, ..a };
        assert_ne!(a, c);
    }
}
