//! Property-based tests for the FM/CLIP engines and the gain-bucket
//! structure: refinement never worsens a solution, always respects balance,
//! reports cuts consistently, and the buckets behave like a priority
//! structure under arbitrary operation sequences.

use mlpart_fm::{
    fm_partition, fm_partition_in, refine, refine_in, BucketPolicy, Engine, FmConfig, GainBuckets,
    RefineWorkspace,
};
use mlpart_hypergraph::rng::seeded_rng;
use mlpart_hypergraph::{
    metrics, BipartBalance, Hypergraph, HypergraphBuilder, ModuleId, Partition,
};
use proptest::prelude::*;

fn arb_netlist() -> impl Strategy<Value = (Vec<u64>, Vec<Vec<usize>>)> {
    (2usize..32).prop_flat_map(|n| {
        let areas = proptest::collection::vec(1u64..6, n);
        let nets = proptest::collection::vec(proptest::collection::vec(0usize..n, 2..6), 1..50);
        (areas, nets)
    })
}

fn build(areas: Vec<u64>, nets: &[Vec<usize>]) -> Hypergraph {
    let mut b = HypergraphBuilder::new(areas);
    for net in nets {
        b.add_net(net.iter().copied()).expect("in range");
    }
    b.build().expect("valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn refinement_never_worsens_and_stays_feasible(
        (areas, nets) in arb_netlist(),
        engine_clip in any::<bool>(),
        seed in 0u64..1000,
    ) {
        let h = build(areas, &nets);
        let cfg = FmConfig {
            engine: if engine_clip { Engine::Clip } else { Engine::Fm },
            ..FmConfig::default()
        };
        let balance = BipartBalance::new(&h, cfg.balance_r);
        let mut rng = seeded_rng(seed);
        // Start from a feasible random solution.
        let p0 = Partition::random(&h, 2, &mut rng);
        prop_assume!(balance.is_partition_feasible(&p0));
        let start_cut = metrics::cut(&h, &p0);
        let mut p = p0;
        let r = refine(&h, &mut p, &cfg, &mut rng);
        prop_assert!(r.cut <= start_cut, "cut worsened: {} -> {}", start_cut, r.cut);
        prop_assert!(balance.is_partition_feasible(&p), "balance violated");
        prop_assert_eq!(r.cut, metrics::cut(&h, &p));
        prop_assert!(p.validate(&h));
    }

    #[test]
    fn result_statistics_are_consistent(
        (areas, nets) in arb_netlist(),
        seed in 0u64..1000,
    ) {
        let h = build(areas, &nets);
        let mut rng = seeded_rng(seed);
        let (p, r) = fm_partition(&h, None, &FmConfig::default(), &mut rng);
        prop_assert_eq!(r.cut, metrics::cut(&h, &p));
        prop_assert!(r.internal_cut <= r.cut);
        prop_assert!(r.kept_moves <= r.attempted_moves);
        prop_assert!(r.passes >= 1);
    }

    #[test]
    fn policies_agree_on_reachability(
        (areas, nets) in arb_netlist(),
        seed in 0u64..200,
    ) {
        // All three policies must produce valid, feasible solutions (quality
        // differs; correctness must not).
        let h = build(areas, &nets);
        for policy in [BucketPolicy::Lifo, BucketPolicy::Fifo, BucketPolicy::Random] {
            let cfg = FmConfig { policy, ..FmConfig::default() };
            let balance = BipartBalance::new(&h, cfg.balance_r);
            let mut rng = seeded_rng(seed);
            let (p, r) = fm_partition(&h, None, &cfg, &mut rng);
            prop_assert!(balance.is_partition_feasible(&p));
            prop_assert_eq!(r.cut, metrics::cut(&h, &p));
        }
    }

    #[test]
    fn buckets_behave_like_priority_structure(
        ops in proptest::collection::vec((0u8..3, 0usize..16, -5i32..=5), 1..200),
    ) {
        // Model-based test: mirror GainBuckets with a simple map; selection
        // must always return a module of maximal key.
        let mut b = GainBuckets::new(16, 5, BucketPolicy::Lifo);
        let mut model: std::collections::HashMap<usize, i32> = Default::default();
        let mut rng = seeded_rng(0);
        for (op, vi, key) in ops {
            let v = ModuleId::new(vi);
            match op {
                0 => {
                    model.entry(vi).or_insert_with(|| {
                        b.insert(v, key);
                        key
                    });
                }
                1 => {
                    if model.remove(&vi).is_some() {
                        b.remove(v);
                    }
                }
                _ => {
                    if model.contains_key(&vi) {
                        b.update_key(v, key);
                        model.insert(vi, key);
                    }
                }
            }
            prop_assert_eq!(b.len(), model.len());
            let selected = b.select_where(&mut rng, |_| true);
            match selected {
                None => prop_assert!(model.is_empty()),
                Some(m) => {
                    let max = model.values().copied().max().expect("non-empty");
                    prop_assert_eq!(b.key_of(m), max);
                    prop_assert_eq!(model[&m.index()], max);
                }
            }
        }
    }

    #[test]
    fn workspace_reuse_is_bit_identical_to_fresh_allocation(
        (areas, nets) in arb_netlist(),
        engine_clip in any::<bool>(),
        seed in 0u64..1000,
    ) {
        // The refactored engine runs on a shared, reused `RefineState`; the
        // pre-refactor behavior is exactly what the fresh-workspace wrappers
        // produce. For any netlist and seed, a workspace that has already
        // been bound to *other* problems must yield the same move sequence,
        // cut, and per-pass statistics as a throwaway workspace.
        let h = build(areas, &nets);
        let cfg = FmConfig {
            engine: if engine_clip { Engine::Clip } else { Engine::Fm },
            ..FmConfig::default()
        };
        let mut ws = RefineWorkspace::new();
        // Dirty the workspace on an unrelated problem so reuse is real.
        {
            let dirty = build(vec![1, 2, 3], &[vec![0, 1], vec![1, 2]]);
            let mut rng = seeded_rng(seed ^ 0xdead);
            let _ = fm_partition_in(&dirty, None, &cfg, &mut rng, &mut ws);
        }

        let mut rng_a = seeded_rng(seed);
        let (p_fresh, r_fresh) = fm_partition(&h, None, &cfg, &mut rng_a);
        let mut rng_b = seeded_rng(seed);
        let (p_reuse, r_reuse) = fm_partition_in(&h, None, &cfg, &mut rng_b, &mut ws);
        prop_assert_eq!(p_fresh.assignment(), p_reuse.assignment());
        prop_assert_eq!(&r_fresh, &r_reuse);

        // Same property for pure refinement from a shared starting point.
        let mut rng = seeded_rng(seed.wrapping_add(1));
        let p0 = Partition::random(&h, 2, &mut rng);
        let balance = BipartBalance::new(&h, cfg.balance_r);
        prop_assume!(balance.is_partition_feasible(&p0));
        let mut p1 = p0.clone();
        let mut p2 = p0;
        let mut rng1 = seeded_rng(seed);
        let r1 = refine(&h, &mut p1, &cfg, &mut rng1);
        let mut rng2 = seeded_rng(seed);
        let r2 = refine_in(&h, &mut p2, &cfg, &mut rng2, &mut ws);
        prop_assert_eq!(p1.assignment(), p2.assignment());
        prop_assert_eq!(r1.cut, r2.cut);
        prop_assert_eq!(r1.kept_moves, r2.kept_moves);
        prop_assert_eq!(r1.attempted_moves, r2.attempted_moves);
        prop_assert_eq!(&r1.pass_stats, &r2.pass_stats);
    }

    #[test]
    fn clip_and_fm_find_equal_or_better_than_initial_on_feasible_start(
        (areas, nets) in arb_netlist(),
        assignment_bits in proptest::collection::vec(any::<bool>(), 32),
    ) {
        let h = build(areas, &nets);
        let assignment: Vec<u32> = (0..h.num_modules())
            .map(|i| u32::from(assignment_bits[i % assignment_bits.len()]))
            .collect();
        let p0 = Partition::from_assignment(&h, 2, assignment).expect("valid");
        let balance = BipartBalance::new(&h, 0.1);
        prop_assume!(balance.is_partition_feasible(&p0));
        let start = metrics::cut(&h, &p0);
        for engine in [Engine::Fm, Engine::Clip] {
            let cfg = FmConfig { engine, ..FmConfig::default() };
            let mut rng = seeded_rng(5);
            let (_, r) = fm_partition(&h, Some(p0.clone()), &cfg, &mut rng);
            prop_assert!(r.cut <= start);
        }
    }
}
