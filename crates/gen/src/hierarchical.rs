//! The hierarchical (Rent-style) synthetic circuit generator.
//!
//! Real netlists are *recursively clustered*: most nets connect modules that
//! sit close together in the design hierarchy, a few span wide scopes. The
//! generator reproduces this by laying the modules out as leaves of an
//! implicit binary tree and drawing each net inside a randomly chosen
//! subtree, with an exponentially decaying probability of escaping to wider
//! scopes. This is the structural property that the paper's phenomena —
//! clustering helps, LIFO locality helps, multilevel beats flat — depend on,
//! which is why this substitution for the (unavailable) ACM/SIGDA benchmark
//! suite preserves the experiments' shape.

use mlpart_hypergraph::{Hypergraph, HypergraphBuilder, ModuleId};
use rand::Rng;

/// Parameters for [`hierarchical`].
///
/// # Examples
///
/// ```
/// use mlpart_gen::{hierarchical, HierarchicalConfig};
/// use mlpart_hypergraph::rng::seeded_rng;
///
/// let cfg = HierarchicalConfig::with_counts(1000, 1100, 3500);
/// let mut rng = seeded_rng(1);
/// let h = hierarchical(&cfg, &mut rng);
/// assert_eq!(h.num_modules(), 1000);
/// // A few nets may collapse below 2 distinct pins, so allow slack:
/// assert!(h.num_nets() >= 1080);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HierarchicalConfig {
    /// Number of modules.
    pub modules: usize,
    /// Number of nets drawn (a handful may collapse and be dropped).
    pub nets: usize,
    /// Target total pin count; the net-size distribution is tuned so the
    /// expected total matches this within a few percent.
    pub pins: usize,
    /// Probability that a net escapes one level up the hierarchy (applied
    /// repeatedly): `0` makes every net maximally local, values near `1`
    /// destroy locality. The default `0.68` yields Rent-style scaling — the
    /// number of nets crossing a bisection grows roughly like `n^0.45`,
    /// matching the slow min-cut growth of the paper's circuits.
    pub escape: f64,
    /// Add 2-pin bridge nets so the netlist is a single connected component
    /// (real circuits are connected; an accidental zero-cut bisection would
    /// make every partitioner look alike).
    pub ensure_connected: bool,
    /// Cap on generated net sizes (the suite uses 24; the paper's `Match`
    /// ignores nets over 10 pins and `FMPartition` over 200 either way).
    pub max_net_size: usize,
}

impl HierarchicalConfig {
    /// Config matching given module/net/pin counts with default locality.
    pub fn with_counts(modules: usize, nets: usize, pins: usize) -> Self {
        HierarchicalConfig {
            modules,
            nets,
            pins,
            escape: 0.68,
            max_net_size: 24,
            ensure_connected: true,
        }
    }
}

/// Generates a hierarchical clustered netlist.
///
/// Module count is exact; net count is exact up to the few nets (typically
/// well under 1%) that collapse onto a single module inside tiny subtrees;
/// total pins land within a few percent of the target.
///
/// # Panics
///
/// Panics if `modules < 2`, `nets == 0`, or `pins < 2 * nets`.
pub fn hierarchical<R: Rng + ?Sized>(cfg: &HierarchicalConfig, rng: &mut R) -> Hypergraph {
    assert!(cfg.modules >= 2, "need at least two modules");
    assert!(cfg.nets > 0, "need at least one net");
    assert!(
        cfg.pins >= 2 * cfg.nets,
        "every net needs at least two pins"
    );
    let n = cfg.modules;
    // Mean net size s̄ ⇒ shifted-geometric parameter. The truncation at
    // max_net_size slightly lowers the realized mean; compensate by a small
    // inflation factor found adequate across the suite.
    let mean = cfg.pins as f64 / cfg.nets as f64;
    let p_geo = 1.0 / (mean - 1.0).max(1e-9);
    let p_geo = p_geo.clamp(0.02, 1.0);

    let mut b = HypergraphBuilder::with_unit_areas(n);
    let mut net: Vec<usize> = Vec::new();
    let mut all_nets: Vec<Vec<usize>> = Vec::with_capacity(cfg.nets);
    for _ in 0..cfg.nets {
        // --- Net size: 2 + Geometric(p_geo), truncated. ---
        let mut size = 2usize;
        while size < cfg.max_net_size && rng.gen::<f64>() >= p_geo {
            size += 1;
        }
        let size = size.min(n);

        // --- Locality: deepest subtree that can hold the net, then escape
        // upward with probability `escape` per level. ---
        let mut width = size.next_power_of_two().max(4).min(n);
        while width < n && rng.gen::<f64>() < cfg.escape {
            width *= 2;
        }
        let width = width.min(n);
        let windows = n.div_ceil(width);
        let end = ((rng.gen_range(0..windows) * width) + width).min(n);
        // Anchor the ragged last window at the right edge so every window
        // spans exactly `width` modules (a span-1 window would silently
        // produce a single-pin net that the builder drops).
        let start = end.saturating_sub(width);
        let span = end - start;

        // --- Draw `size` distinct modules in [start, end). ---
        net.clear();
        if size >= span {
            net.extend(start..end);
        } else {
            while net.len() < size {
                let v = start + rng.gen_range(0..span);
                if !net.contains(&v) {
                    net.push(v);
                }
            }
        }
        b.add_net(net.iter().copied()).expect("indices in range");
        all_nets.push(net.clone());
    }
    if cfg.ensure_connected {
        for link in connecting_links(n, &all_nets, rng) {
            b.add_net(link).expect("indices in range");
        }
    }
    b.build().expect("valid synthetic netlist")
}

/// Union-find pass over the drawn nets; returns one 2-pin bridge per extra
/// connected component, linking a random member of each component to a
/// random member of the first.
fn connecting_links<R: Rng + ?Sized>(
    n: usize,
    nets: &[Vec<usize>],
    rng: &mut R,
) -> Vec<[usize; 2]> {
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], mut v: u32) -> u32 {
        while parent[v as usize] != v {
            parent[v as usize] = parent[parent[v as usize] as usize];
            v = parent[v as usize];
        }
        v
    }
    for net in nets {
        let first = net[0] as u32;
        for &other in &net[1..] {
            let (a, b) = (find(&mut parent, first), find(&mut parent, other as u32));
            if a != b {
                parent[a as usize] = b;
            }
        }
    }
    // Group members by root, ordered by smallest member for determinism.
    let mut members: std::collections::BTreeMap<u32, Vec<usize>> =
        std::collections::BTreeMap::new();
    for v in 0..n {
        let root = find(&mut parent, v as u32);
        members.entry(root).or_default().push(v);
    }
    let components: Vec<Vec<usize>> = members.into_values().collect();
    let mut links = Vec::new();
    for comp in components.iter().skip(1) {
        let a = components[0][rng.gen_range(0..components[0].len())];
        let b = comp[rng.gen_range(0..comp.len())];
        links.push([a, b]);
    }
    links
}

/// Selects `count` distinct modules to act as I/O pads, preferring
/// low-degree modules (pads sit on few nets in real designs). Deterministic
/// given the RNG state.
///
/// # Panics
///
/// Panics if `count > h.num_modules()`.
pub fn select_pads<R: Rng + ?Sized>(h: &Hypergraph, count: usize, rng: &mut R) -> Vec<ModuleId> {
    assert!(count <= h.num_modules(), "more pads than modules");
    // Order modules by degree with random tie-breaking, take the lowest.
    let mut order: Vec<(usize, u64, u32)> = h
        .modules()
        .map(|v| (h.degree(v), rng.gen::<u64>(), v.raw()))
        .collect();
    order.sort_unstable();
    order
        .into_iter()
        .take(count)
        .map(|(_, _, raw)| ModuleId::from(raw))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlpart_hypergraph::rng::seeded_rng;

    #[test]
    fn counts_are_close_to_targets() {
        let cfg = HierarchicalConfig::with_counts(2000, 2200, 7000);
        let mut rng = seeded_rng(7);
        let h = hierarchical(&cfg, &mut rng);
        assert_eq!(h.num_modules(), 2000);
        assert!(
            h.num_nets() as f64 >= 0.98 * 2200.0,
            "nets={}",
            h.num_nets()
        );
        let pins = h.num_pins() as f64;
        assert!(
            (pins - 7000.0).abs() / 7000.0 < 0.12,
            "pins={pins} target=7000"
        );
    }

    #[test]
    fn net_sizes_within_bounds() {
        let cfg = HierarchicalConfig::with_counts(500, 600, 2000);
        let mut rng = seeded_rng(3);
        let h = hierarchical(&cfg, &mut rng);
        assert!(h.max_net_size() <= cfg.max_net_size);
        assert!(h.net_ids().all(|e| h.net_size(e) >= 2));
    }

    #[test]
    fn locality_produces_better_than_random_bisection() {
        // The defining property: a contiguous-halves split of a hierarchical
        // netlist cuts far fewer nets than an interleaved split.
        use mlpart_hypergraph::{metrics, Partition};
        let cfg = HierarchicalConfig::with_counts(1024, 1200, 4000);
        let mut rng = seeded_rng(11);
        let h = hierarchical(&cfg, &mut rng);
        let halves =
            Partition::from_assignment(&h, 2, (0..1024).map(|i| u32::from(i >= 512)).collect())
                .expect("valid");
        let interleaved =
            Partition::from_assignment(&h, 2, (0..1024).map(|i| (i % 2) as u32).collect())
                .expect("valid");
        let c_halves = metrics::cut(&h, &halves);
        let c_inter = metrics::cut(&h, &interleaved);
        assert!(
            (c_halves as f64) < 0.5 * c_inter as f64,
            "halves={c_halves} interleaved={c_inter}"
        );
    }

    #[test]
    fn zero_escape_keeps_nets_maximally_local() {
        let cfg = HierarchicalConfig {
            escape: 0.0,
            ensure_connected: false,
            ..HierarchicalConfig::with_counts(256, 300, 900)
        };
        let mut rng = seeded_rng(5);
        let h = hierarchical(&cfg, &mut rng);
        // Every net fits inside an aligned window of its padded size.
        for e in h.net_ids() {
            let pins: Vec<usize> = h.pins(e).iter().map(|v| v.index()).collect();
            let size = h.net_size(e);
            let width = size.next_power_of_two().max(4);
            let min = pins.iter().min().expect("non-empty");
            let max = pins.iter().max().expect("non-empty");
            assert!(max - min < width, "net {e} spans more than {width}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = HierarchicalConfig::with_counts(300, 350, 1200);
        let h1 = hierarchical(&cfg, &mut seeded_rng(9));
        let h2 = hierarchical(&cfg, &mut seeded_rng(9));
        assert_eq!(h1, h2);
    }

    #[test]
    fn pads_are_distinct_low_degree() {
        let cfg = HierarchicalConfig::with_counts(400, 500, 1600);
        let mut rng = seeded_rng(2);
        let h = hierarchical(&cfg, &mut rng);
        let pads = select_pads(&h, 40, &mut rng);
        assert_eq!(pads.len(), 40);
        let mut uniq = pads.clone();
        uniq.sort();
        uniq.dedup();
        assert_eq!(uniq.len(), 40);
        // Average pad degree must not exceed average module degree.
        let avg_all: f64 = h.modules().map(|v| h.degree(v) as f64).sum::<f64>() / 400.0;
        let avg_pads: f64 = pads.iter().map(|&v| h.degree(v) as f64).sum::<f64>() / 40.0;
        assert!(avg_pads <= avg_all);
    }

    #[test]
    #[should_panic(expected = "every net needs at least two pins")]
    fn rejects_impossible_pin_count() {
        let cfg = HierarchicalConfig::with_counts(100, 100, 150);
        let _ = hierarchical(&cfg, &mut seeded_rng(0));
    }
}
