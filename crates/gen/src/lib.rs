//! Synthetic benchmark netlists for the `mlpart` workspace.
//!
//! The paper evaluates on 23 ACM/SIGDA benchmark circuits that are no longer
//! distributable; this crate substitutes **hierarchical synthetic circuits**
//! with the same Table I module/net/pin statistics and the recursively
//! clustered structure that the paper's phenomena depend on (see `DESIGN.md`
//! for the substitution argument). It also provides small structured
//! generators with known optima for tests.
//!
//! # Examples
//!
//! Generate the synthetic stand-in for `primary1`:
//!
//! ```
//! use mlpart_gen::suite;
//!
//! let circuit = suite::by_name("primary1").expect("in suite");
//! let h = circuit.generate(42);
//! assert_eq!(h.num_modules(), 833);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod hierarchical;
pub mod simple;
pub mod suite;

pub use hierarchical::{hierarchical, select_pads, HierarchicalConfig};
pub use suite::{by_name, medium_suite, small_suite, SizeClass, SuiteCircuit, SUITE};
