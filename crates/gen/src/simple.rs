//! Small structured netlist generators with known optimal cuts, used by
//! tests and examples throughout the workspace.

use mlpart_hypergraph::{Hypergraph, HypergraphBuilder};

/// A path of `n` modules: nets `{i, i+1}`. Optimal bisection cut is 1.
///
/// # Panics
///
/// Panics if `n < 2`.
///
/// # Examples
///
/// ```
/// use mlpart_gen::simple::chain;
///
/// let h = chain(10);
/// assert_eq!(h.num_modules(), 10);
/// assert_eq!(h.num_nets(), 9);
/// ```
pub fn chain(n: usize) -> Hypergraph {
    assert!(n >= 2, "chain needs at least two modules");
    let mut b = HypergraphBuilder::with_unit_areas(n);
    for i in 0..n - 1 {
        b.add_net([i, i + 1]).expect("indices in range");
    }
    b.build().expect("valid netlist")
}

/// A `w × h` 2-D mesh with horizontal and vertical 2-pin nets. Optimal
/// bisection cut is `min(w, h)`.
///
/// # Panics
///
/// Panics if `w == 0` or `h == 0`.
pub fn grid(w: usize, h: usize) -> Hypergraph {
    assert!(w > 0 && h > 0, "grid dimensions must be positive");
    let mut b = HypergraphBuilder::with_unit_areas(w * h);
    for y in 0..h {
        for x in 0..w {
            let i = y * w + x;
            if x + 1 < w {
                b.add_net([i, i + 1]).expect("in range");
            }
            if y + 1 < h {
                b.add_net([i, i + w]).expect("in range");
            }
        }
    }
    b.build().expect("valid netlist")
}

/// `count` cliques of `size` modules each, connected in a ring by single
/// 2-pin bridges. The optimal `count`-way partition cuts exactly the `count`
/// bridges (for `count ≥ 3`; for `count == 2` the two bridges coincide...
/// no — a 2-ring has two parallel bridges).
///
/// # Panics
///
/// Panics if `count < 2` or `size < 2`.
pub fn ring_of_cliques(count: usize, size: usize) -> Hypergraph {
    assert!(count >= 2 && size >= 2, "need at least 2 cliques of 2");
    let n = count * size;
    let mut b = HypergraphBuilder::with_unit_areas(n);
    for c in 0..count {
        let base = c * size;
        for i in 0..size {
            for j in (i + 1)..size {
                b.add_net([base + i, base + j]).expect("in range");
            }
        }
        b.add_net([base + size - 1, (base + size) % n])
            .expect("in range");
    }
    b.build().expect("valid netlist")
}

/// Two communities of `half` modules (ring + chord structure) bridged by a
/// single net: the canonical "there is an obvious bisection" instance.
/// Optimal cut 1.
///
/// # Panics
///
/// Panics if `half < 4`.
pub fn two_communities(half: usize) -> Hypergraph {
    assert!(half >= 4, "communities need at least 4 modules");
    let mut b = HypergraphBuilder::with_unit_areas(2 * half);
    for base in [0, half] {
        for i in 0..half {
            b.add_net([base + i, base + (i + 1) % half])
                .expect("in range");
            b.add_net([base + i, base + (i + 3) % half])
                .expect("in range");
        }
    }
    b.add_net([half - 1, half]).expect("in range");
    b.build().expect("valid netlist")
}

/// A caterpillar: a spine chain where each spine module also drives a
/// `legs`-pin net to dedicated leaf modules. Exercises multi-pin nets and
/// degree-1 leaves (pad-like structure).
///
/// # Panics
///
/// Panics if `spine < 2` or `legs == 0`.
pub fn caterpillar(spine: usize, legs: usize) -> Hypergraph {
    assert!(spine >= 2 && legs >= 1, "need a spine and legs");
    let n = spine * (1 + legs);
    let mut b = HypergraphBuilder::with_unit_areas(n);
    for i in 0..spine - 1 {
        b.add_net([i, i + 1]).expect("in range");
    }
    for i in 0..spine {
        let mut net = vec![i];
        for l in 0..legs {
            net.push(spine + i * legs + l);
        }
        b.add_net(net).expect("in range");
    }
    b.build().expect("valid netlist")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlpart_hypergraph::{metrics, Partition};

    #[test]
    fn chain_counts() {
        let h = chain(5);
        assert_eq!(h.num_nets(), 4);
        assert_eq!(h.num_pins(), 8);
    }

    #[test]
    fn grid_optimal_cut_known() {
        let h = grid(4, 6);
        assert_eq!(h.num_modules(), 24);
        // Split along the long axis: columns 0-1 vs 2-3 ... actually modules
        // are row-major; left half {x<2} vs right half cuts 6 horizontal nets.
        let p = Partition::from_assignment(&h, 2, (0..24).map(|i| u32::from(i % 4 >= 2)).collect())
            .expect("valid");
        assert_eq!(metrics::cut(&h, &p), 6);
    }

    #[test]
    fn ring_of_cliques_counts() {
        let h = ring_of_cliques(4, 4);
        assert_eq!(h.num_modules(), 16);
        assert_eq!(h.num_nets(), 4 * 6 + 4);
    }

    #[test]
    fn two_communities_has_bridge() {
        let h = two_communities(8);
        let p = Partition::from_assignment(&h, 2, (0..16).map(|i| u32::from(i >= 8)).collect())
            .expect("valid");
        assert_eq!(metrics::cut(&h, &p), 1);
    }

    #[test]
    fn caterpillar_counts() {
        let h = caterpillar(5, 3);
        assert_eq!(h.num_modules(), 20);
        assert_eq!(h.num_nets(), 4 + 5);
        assert_eq!(h.max_net_size(), 4);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn chain_rejects_tiny() {
        let _ = chain(1);
    }
}
