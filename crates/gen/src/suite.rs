//! The synthetic reproduction of the paper's 23-circuit benchmark suite
//! (Table I).
//!
//! The original ACM/SIGDA circuits were distributed by the CAD Benchmarking
//! Laboratory (`ftp.cbl.ncsu.edu`), which no longer exists; this workspace
//! substitutes hierarchical synthetic circuits with the **same module, net,
//! and (approximate) pin counts** and clustered structure (see
//! [`hierarchical`](crate::hierarchical())). Circuit names carry a `syn-`
//! prefix to make the substitution explicit.

use crate::hierarchical::{hierarchical, select_pads, HierarchicalConfig};
use mlpart_hypergraph::rng::{child_seed, seeded_rng};
use mlpart_hypergraph::{Hypergraph, ModuleId};

/// Size class of a benchmark, used by the harness to pick defaults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SizeClass {
    /// Under 3 500 modules.
    Small,
    /// 3 500 – 30 000 modules.
    Medium,
    /// Over 30 000 modules (`syn-golem3`).
    Large,
}

/// One entry of the benchmark suite: a named circuit with the paper's
/// Table I statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuiteCircuit {
    /// Synthetic circuit name (`syn-<paper name>`).
    pub name: &'static str,
    /// Module count (exact match with Table I).
    pub modules: usize,
    /// Net count (exact match with Table I).
    pub nets: usize,
    /// Pin count target (realized within a few percent).
    pub pins: usize,
}

impl SuiteCircuit {
    /// Generates the circuit. The seed is combined with a per-circuit stream
    /// id, so the same `seed` gives each circuit an independent but
    /// reproducible netlist.
    pub fn generate(&self, seed: u64) -> Hypergraph {
        let cfg = HierarchicalConfig::with_counts(self.modules, self.nets, self.pins);
        let stream = self
            .name
            .bytes()
            .fold(0u64, |acc, b| acc.wrapping_mul(131).wrapping_add(b as u64));
        let mut rng = seeded_rng(child_seed(seed, stream));
        hierarchical(&cfg, &mut rng)
    }

    /// Generates the circuit together with a pad set sized like a real
    /// design's I/O ring (`≈ 3·√modules`, low-degree modules).
    pub fn generate_with_pads(&self, seed: u64) -> (Hypergraph, Vec<ModuleId>) {
        let h = self.generate(seed);
        let count = (3.0 * (self.modules as f64).sqrt()) as usize;
        let mut rng = seeded_rng(child_seed(seed, 0xDEAD));
        let pads = select_pads(&h, count.min(self.modules / 4), &mut rng);
        (h, pads)
    }

    /// Size class for harness scaling decisions.
    pub fn size_class(&self) -> SizeClass {
        if self.modules < 3_500 {
            SizeClass::Small
        } else if self.modules <= 30_000 {
            SizeClass::Medium
        } else {
            SizeClass::Large
        }
    }
}

/// The full 23-circuit suite in Table I order.
pub const SUITE: &[SuiteCircuit] = &[
    SuiteCircuit {
        name: "syn-balu",
        modules: 801,
        nets: 735,
        pins: 2697,
    },
    SuiteCircuit {
        name: "syn-bm1",
        modules: 882,
        nets: 903,
        pins: 2910,
    },
    SuiteCircuit {
        name: "syn-primary1",
        modules: 833,
        nets: 902,
        pins: 2908,
    },
    SuiteCircuit {
        name: "syn-test04",
        modules: 1515,
        nets: 1658,
        pins: 5975,
    },
    SuiteCircuit {
        name: "syn-test03",
        modules: 1607,
        nets: 1618,
        pins: 5807,
    },
    SuiteCircuit {
        name: "syn-test02",
        modules: 1663,
        nets: 1720,
        pins: 6134,
    },
    SuiteCircuit {
        name: "syn-test06",
        modules: 1752,
        nets: 1541,
        pins: 6638,
    },
    SuiteCircuit {
        name: "syn-struct",
        modules: 1952,
        nets: 1920,
        pins: 5471,
    },
    SuiteCircuit {
        name: "syn-test05",
        modules: 2595,
        nets: 2750,
        pins: 10076,
    },
    SuiteCircuit {
        name: "syn-19ks",
        modules: 2844,
        nets: 3282,
        pins: 10547,
    },
    SuiteCircuit {
        name: "syn-primary2",
        modules: 3014,
        nets: 3029,
        pins: 11219,
    },
    SuiteCircuit {
        name: "syn-s9234",
        modules: 5866,
        nets: 5844,
        pins: 14065,
    },
    SuiteCircuit {
        name: "syn-biomed",
        modules: 6514,
        nets: 5742,
        pins: 21040,
    },
    SuiteCircuit {
        name: "syn-s13207",
        modules: 8772,
        nets: 8651,
        pins: 20606,
    },
    SuiteCircuit {
        name: "syn-s15850",
        modules: 10470,
        nets: 10383,
        pins: 24712,
    },
    SuiteCircuit {
        name: "syn-industry2",
        modules: 12637,
        nets: 13419,
        pins: 48404,
    },
    SuiteCircuit {
        name: "syn-industry3",
        modules: 15406,
        nets: 21923,
        pins: 65792,
    },
    SuiteCircuit {
        name: "syn-s35932",
        modules: 18148,
        nets: 17828,
        pins: 48145,
    },
    SuiteCircuit {
        name: "syn-s38584",
        modules: 20995,
        nets: 20717,
        pins: 55203,
    },
    SuiteCircuit {
        name: "syn-avqsmall",
        modules: 21918,
        nets: 22124,
        pins: 76231,
    },
    SuiteCircuit {
        name: "syn-s38417",
        modules: 23849,
        nets: 23843,
        pins: 57613,
    },
    SuiteCircuit {
        name: "syn-avqlarge",
        modules: 25178,
        nets: 25384,
        pins: 82751,
    },
    SuiteCircuit {
        name: "syn-golem3",
        modules: 103048,
        nets: 144949,
        pins: 338419,
    },
];

/// Looks a suite circuit up by name (with or without the `syn-` prefix).
pub fn by_name(name: &str) -> Option<&'static SuiteCircuit> {
    let stripped = name.strip_prefix("syn-").unwrap_or(name);
    SUITE
        .iter()
        .find(|c| c.name.strip_prefix("syn-").expect("all names prefixed") == stripped)
}

/// Circuits with fewer than 3 500 modules — the harness default for table
/// regeneration at laptop scale.
pub fn small_suite() -> Vec<&'static SuiteCircuit> {
    SUITE
        .iter()
        .filter(|c| c.size_class() == SizeClass::Small)
        .collect()
}

/// Circuits between 3 500 and 30 000 modules.
pub fn medium_suite() -> Vec<&'static SuiteCircuit> {
    SUITE
        .iter()
        .filter(|c| c.size_class() == SizeClass::Medium)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_23_circuits() {
        assert_eq!(SUITE.len(), 23);
    }

    #[test]
    fn lookup_by_name_works_with_and_without_prefix() {
        assert!(by_name("syn-balu").is_some());
        assert!(by_name("balu").is_some());
        assert!(by_name("golem3").is_some());
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn small_circuit_generates_with_exact_module_count() {
        let c = by_name("balu").expect("in suite");
        let h = c.generate(1);
        assert_eq!(h.num_modules(), 801);
        assert!(h.num_nets() as f64 >= 0.97 * 735.0);
        let pins = h.num_pins() as f64;
        assert!((pins - 2697.0).abs() / 2697.0 < 0.15, "pins={pins}");
    }

    #[test]
    fn generation_is_deterministic_and_seed_sensitive() {
        let c = by_name("primary1").expect("in suite");
        assert_eq!(c.generate(5), c.generate(5));
        assert_ne!(c.generate(5), c.generate(6));
    }

    #[test]
    fn different_circuits_use_independent_streams() {
        let a = by_name("test02").expect("in suite");
        let b = by_name("test03").expect("in suite");
        // Same seed, different circuits: must differ (trivially by size, but
        // check the first net differs too, i.e. streams decorrelate).
        let ha = a.generate(1);
        let hb = b.generate(1);
        let pa: Vec<usize> = ha
            .pins(mlpart_hypergraph::NetId::new(0))
            .iter()
            .map(|v| v.index())
            .collect();
        let pb: Vec<usize> = hb
            .pins(mlpart_hypergraph::NetId::new(0))
            .iter()
            .map(|v| v.index())
            .collect();
        assert_ne!(pa, pb);
    }

    #[test]
    fn size_classes_partition_suite() {
        let small = small_suite().len();
        let medium = medium_suite().len();
        let large = SUITE
            .iter()
            .filter(|c| c.size_class() == SizeClass::Large)
            .count();
        assert_eq!(small + medium + large, 23);
        assert_eq!(large, 1); // golem3
        assert_eq!(small, 11);
    }

    #[test]
    fn pads_generated_for_placement() {
        let c = by_name("balu").expect("in suite");
        let (h, pads) = c.generate_with_pads(3);
        assert!(!pads.is_empty());
        assert!(pads.len() <= h.num_modules() / 4);
    }
}
