//! Property-based tests for the synthetic generators: arbitrary
//! configurations always yield structurally valid netlists with the promised
//! counts, connectivity, and locality.

use mlpart_gen::{hierarchical, select_pads, HierarchicalConfig};
use mlpart_hypergraph::rng::seeded_rng;
use mlpart_hypergraph::ModuleId;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn generator_respects_counts(
        modules in 8usize..400,
        net_factor in 0.8f64..1.5,
        pin_factor in 2.2f64..4.5,
        escape in 0.0f64..0.9,
        seed in 0u64..1000,
    ) {
        let nets = ((modules as f64) * net_factor) as usize + 1;
        let pins = ((nets as f64) * pin_factor) as usize + 2 * nets;
        let cfg = HierarchicalConfig {
            escape,
            ..HierarchicalConfig::with_counts(modules, nets, pins)
        };
        let mut rng = seeded_rng(seed);
        let h = hierarchical(&cfg, &mut rng);
        prop_assert_eq!(h.num_modules(), modules);
        prop_assert!(h.validate());
        // Net count: every drawn net has >= 2 distinct pins by construction,
        // and connectivity links only add.
        prop_assert!(h.num_nets() >= nets);
        // Net sizes within the cap.
        prop_assert!(h.max_net_size() <= cfg.max_net_size.max(2));
    }

    #[test]
    fn generated_netlists_are_connected(
        modules in 8usize..200,
        seed in 0u64..500,
    ) {
        let cfg = HierarchicalConfig::with_counts(modules, modules + 10, 3 * modules + 30);
        let mut rng = seeded_rng(seed);
        let h = hierarchical(&cfg, &mut rng);
        // Union-find over nets: exactly one component.
        let mut root: Vec<usize> = (0..modules).collect();
        fn find(root: &mut [usize], mut v: usize) -> usize {
            while root[v] != v {
                root[v] = root[root[v]];
                v = root[v];
            }
            v
        }
        for e in h.net_ids() {
            let first = h.pins(e)[0].index();
            for &w in &h.pins(e)[1..] {
                let (a, b) = (find(&mut root, first), find(&mut root, w.index()));
                if a != b {
                    root[a] = b;
                }
            }
        }
        let first_root = find(&mut root, 0);
        for v in 0..modules {
            prop_assert_eq!(find(&mut root, v), first_root, "module {} disconnected", v);
        }
    }

    #[test]
    fn pad_selection_is_valid(
        modules in 8usize..200,
        pad_fraction in 0.01f64..0.25,
        seed in 0u64..500,
    ) {
        let cfg = HierarchicalConfig::with_counts(modules, modules, 3 * modules);
        let mut rng = seeded_rng(seed);
        let h = hierarchical(&cfg, &mut rng);
        let count = ((modules as f64) * pad_fraction).ceil() as usize;
        let pads = select_pads(&h, count, &mut rng);
        prop_assert_eq!(pads.len(), count);
        let mut uniq: Vec<ModuleId> = pads.clone();
        uniq.sort();
        uniq.dedup();
        prop_assert_eq!(uniq.len(), count, "pads must be distinct");
        prop_assert!(pads.iter().all(|p| p.index() < modules));
    }

    #[test]
    fn generator_is_deterministic(
        modules in 8usize..100,
        seed in 0u64..200,
    ) {
        let cfg = HierarchicalConfig::with_counts(modules, modules + 5, 3 * modules + 10);
        let h1 = hierarchical(&cfg, &mut seeded_rng(seed));
        let h2 = hierarchical(&cfg, &mut seeded_rng(seed));
        prop_assert_eq!(h1, h2);
    }
}
