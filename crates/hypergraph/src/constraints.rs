//! First-class partitioning constraints: general `k`, an ε balance
//! tolerance, and fixed (pre-assigned) modules.
//!
//! The paper hard-codes free cells and the §III-B 2/4-way balance recipe;
//! production callers partition *under constraints* — terminals pinned to
//! parts (hMETIS `.fix` files, Coloquinte's fixed-vertex path) and an
//! explicit imbalance tolerance ε as in "k-way Hypergraph Partitioning via
//! n-Level Recursive Bisection". [`Constraints`] packages all three so every
//! layer of the workspace (coarsening, initial partitioning, refinement,
//! pre-flight, CLI) consumes one vocabulary instead of ad-hoc parameters.
//!
//! ε relates to the paper's tolerance `r` by `ε = 2r`: §III-B allows each
//! side of a bisection to deviate from `A(V)/2` by `r·A(V)`, i.e. by
//! `ε·A(V)/2` — a relative deviation of ε from the target. The default
//! ε = 0.2 therefore reproduces the paper's `r = 0.1` bounds bit-exactly
//! (see [`PartBounds::from_epsilon`]).

use crate::hypergraph::Hypergraph;
use crate::ids::ModuleId;
use crate::partition::{BipartBalance, KwayBalance, PartId, Partition};
use std::fmt;

/// The default balance tolerance ε, chosen so that unconstrained runs
/// reproduce the paper's `r = 0.1` bounds exactly (`ε = 2r`).
pub const DEFAULT_EPSILON: f64 = 0.2;

/// Per-part `[lo, hi]` area capacity bounds for a k-way partition.
///
/// This generalizes [`BipartBalance`] / [`KwayBalance`] (uniform bounds
/// derived from the ratio `r`) to arbitrary per-part windows: recursive
/// bisection with `k_lo ≠ k_hi` needs asymmetric targets, and ε-derived
/// bounds need not match the legacy ratio arithmetic. Conversions from the
/// legacy balance types are exact, so refactoring a feasibility check from
/// `KwayBalance` to `PartBounds` cannot change a single accept/reject
/// decision (the byte-identity contract for unconstrained runs).
///
/// # Examples
///
/// ```
/// use mlpart_hypergraph::{HypergraphBuilder, PartBounds, BipartBalance};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = HypergraphBuilder::with_unit_areas(100);
/// b.add_net([0, 1])?;
/// let h = b.build()?;
/// let eps = PartBounds::from_epsilon(&h, 2, 0.2);
/// let legacy = PartBounds::from_bipart(&BipartBalance::new(&h, 0.1));
/// assert_eq!(eps, legacy); // ε = 2r reproduces §III-B exactly
/// assert!(eps.is_area_feasible(0, 50));
/// assert!(!eps.is_area_feasible(1, 61));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartBounds {
    lo: Vec<u64>,
    hi: Vec<u64>,
    /// Cached part count; always `lo.len()`, checked to fit `u32` at
    /// construction so the hot [`k`](PartBounds::k) accessor is branch-free.
    k: u32,
}

impl PartBounds {
    /// Builds bounds from explicit per-part windows.
    ///
    /// # Panics
    ///
    /// Panics if the vectors differ in length, are empty, or any window has
    /// `lo > hi`.
    pub fn new(lo: Vec<u64>, hi: Vec<u64>) -> Self {
        assert_eq!(lo.len(), hi.len(), "per-part bound vectors differ in k");
        assert!(!lo.is_empty(), "need at least one part");
        for (p, (&l, &h)) in lo.iter().zip(hi.iter()).enumerate() {
            assert!(l <= h, "part {p} has lo {l} > hi {h}");
        }
        let k = u32::try_from(lo.len()).unwrap_or(u32::MAX);
        assert_eq!(k as usize, lo.len(), "part count exceeds u32::MAX");
        PartBounds { lo, hi, k }
    }

    /// Uniform bounds: every part in `[lo, hi]`.
    pub fn uniform(k: u32, lo: u64, hi: u64) -> Self {
        assert!(k > 0, "k must be positive");
        PartBounds::new(vec![lo; k as usize], vec![hi; k as usize])
    }

    /// The exact windows of a [`BipartBalance`] (§III-B), as per-part bounds.
    pub fn from_bipart(b: &BipartBalance) -> Self {
        PartBounds::uniform(2, b.lower(), b.upper())
    }

    /// The exact windows of a [`KwayBalance`], as per-part bounds.
    pub fn from_kway(b: &KwayBalance) -> Self {
        PartBounds::uniform(b.k(), b.lower(), b.upper())
    }

    /// ε-derived uniform bounds: every part within `A(V)/k ± ε·A(V)/k`,
    /// widened to the largest module area so a feasible solution always
    /// exists (the §III-B widening). `ε = 2r` reproduces
    /// [`KwayBalance::new`] (and [`BipartBalance::new`] at `k = 2`)
    /// bit-exactly.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `epsilon` is negative or non-finite.
    pub fn from_epsilon(h: &Hypergraph, k: u32, epsilon: f64) -> Self {
        assert!(k > 0, "k must be positive");
        assert!(
            epsilon.is_finite() && epsilon >= 0.0,
            "epsilon must be a finite non-negative tolerance"
        );
        let total = h.total_area();
        let target = total / k as u64;
        let slack_eps = (epsilon * total as f64 / k as f64).floor() as u64;
        let slack = slack_eps.max(h.max_area());
        PartBounds::uniform(k, target.saturating_sub(slack), (target + slack).min(total))
    }

    /// Asymmetric 2-way bounds for one recursive-bisection step: side 0
    /// targets `total · k_lo / (k_lo + k_hi)` (it will be split into `k_lo`
    /// final parts), side 1 the rest, each within a relative tolerance
    /// `epsilon` widened to `max_area`.
    ///
    /// # Panics
    ///
    /// Panics if either side has zero parts or `epsilon` is invalid.
    pub fn split(total: u64, max_area: u64, k_lo: u32, k_hi: u32, epsilon: f64) -> Self {
        assert!(k_lo > 0 && k_hi > 0, "both sides need at least one part");
        assert!(
            epsilon.is_finite() && epsilon >= 0.0,
            "epsilon must be a finite non-negative tolerance"
        );
        let k = (k_lo + k_hi) as u128;
        let target0 = ((total as u128 * k_lo as u128) / k) as u64;
        let target1 = total - target0;
        let window = |target: u64| {
            let slack = ((epsilon * target as f64).floor() as u64).max(max_area);
            (target.saturating_sub(slack), (target + slack).min(total))
        };
        let (lo0, hi0) = window(target0);
        let (lo1, hi1) = window(target1);
        PartBounds::new(vec![lo0, lo1], vec![hi0, hi1])
    }

    /// Bounds around explicit per-part area targets: part `p` must stay
    /// within `targets[p] ± max(⌊ε·targets[p]⌋, max_area)`, capped at
    /// `total`. This is the per-level recompute used by the constraint-aware
    /// pipelines — the widening to the largest module tracks each coarsened
    /// level's module areas the same way §III-B widens the legacy windows.
    ///
    /// # Panics
    ///
    /// Panics if `targets` is empty or `epsilon` is negative or non-finite.
    pub fn around_targets(targets: &[u64], total: u64, max_area: u64, epsilon: f64) -> Self {
        assert!(!targets.is_empty(), "need at least one part");
        assert!(
            epsilon.is_finite() && epsilon >= 0.0,
            "epsilon must be a finite non-negative tolerance"
        );
        let mut lo = Vec::with_capacity(targets.len());
        let mut hi = Vec::with_capacity(targets.len());
        for &t in targets {
            let slack = ((epsilon * t as f64).floor() as u64).max(max_area);
            lo.push(t.saturating_sub(slack));
            hi.push(t.saturating_add(slack).min(total));
        }
        PartBounds::new(lo, hi)
    }

    /// Number of parts `k`.
    #[inline]
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Lower area bound of part `p`.
    #[inline]
    pub fn lo(&self, p: PartId) -> u64 {
        self.lo[p as usize]
    }

    /// Upper area bound of part `p`.
    #[inline]
    pub fn hi(&self, p: PartId) -> u64 {
        self.hi[p as usize]
    }

    /// `true` if part `p` holding `area` satisfies its window.
    #[inline]
    pub fn is_area_feasible(&self, p: PartId, area: u64) -> bool {
        area >= self.lo[p as usize] && area <= self.hi[p as usize]
    }

    /// `true` if every part of `p` satisfies its window.
    pub fn is_partition_feasible(&self, p: &Partition) -> bool {
        debug_assert_eq!(p.k(), self.k());
        p.part_areas()
            .iter()
            .enumerate()
            .all(|(part, &a)| self.is_area_feasible(part as PartId, a))
    }
}

impl fmt::Display for PartBounds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PartBounds(")?;
        for p in 0..self.lo.len() {
            if p > 0 {
                write!(f, ", ")?;
            }
            write!(f, "[{}, {}]", self.lo[p], self.hi[p])?;
        }
        write!(f, ")")
    }
}

/// Why a [`Constraints`] value could not be constructed.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ConstraintsError {
    /// `k == 0`: no parts to assign modules to.
    ZeroParts,
    /// ε is negative or non-finite.
    BadEpsilon {
        /// The rejected tolerance.
        epsilon: f64,
    },
    /// A fixed module names a part outside `0..k`.
    PartOutOfRange {
        /// Offending module index.
        module: usize,
        /// Its requested part.
        part: PartId,
        /// The part count.
        k: u32,
    },
    /// The same module appears twice in the fixed list.
    DuplicateFixed {
        /// The duplicated module index.
        module: usize,
    },
    /// A fixed module index exceeds the netlist's module count (reported by
    /// [`Constraints::check_modules`]).
    ModuleOutOfRange {
        /// Offending module index.
        module: usize,
        /// Modules in the netlist.
        modules: usize,
    },
}

impl fmt::Display for ConstraintsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConstraintsError::ZeroParts => write!(f, "k must be at least 1"),
            ConstraintsError::BadEpsilon { epsilon } => {
                write!(
                    f,
                    "epsilon {epsilon} is not a finite non-negative tolerance"
                )
            }
            ConstraintsError::PartOutOfRange { module, part, k } => {
                write!(f, "module {module} is fixed to part {part}, but k = {k}")
            }
            ConstraintsError::DuplicateFixed { module } => {
                write!(f, "module {module} appears twice in the fixed list")
            }
            ConstraintsError::ModuleOutOfRange { module, modules } => {
                write!(
                    f,
                    "fixed module {module} out of range for {modules} module(s)"
                )
            }
        }
    }
}

impl std::error::Error for ConstraintsError {}

/// A complete constraint specification for one partitioning problem: part
/// count `k`, balance tolerance ε, and the fixed (pre-assigned) modules.
///
/// The fixed list is kept sorted by module index, so iteration order — and
/// therefore every downstream RNG-free loop over it — is deterministic
/// regardless of input order.
///
/// # Examples
///
/// ```
/// use mlpart_hypergraph::{Constraints, ModuleId};
///
/// let c = Constraints::new(4, 0.1, vec![(ModuleId::new(7), 3), (ModuleId::new(2), 0)])
///     .expect("valid");
/// assert_eq!(c.k(), 4);
/// assert_eq!(c.fixed()[0].0.index(), 2); // sorted by module
/// assert_eq!(c.part_of(ModuleId::new(7)), Some(3));
/// assert_eq!(c.part_of(ModuleId::new(0)), None);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Constraints {
    k: u32,
    epsilon: f64,
    fixed: Vec<(ModuleId, PartId)>,
}

impl Constraints {
    /// Builds a constraint set, validating `k`, ε, and the fixed list (part
    /// ids in range, no duplicate modules). The fixed list is sorted by
    /// module index.
    ///
    /// # Errors
    ///
    /// [`ConstraintsError`] on `k == 0`, invalid ε, a part id `>= k`, or a
    /// duplicated module.
    pub fn new(
        k: u32,
        epsilon: f64,
        mut fixed: Vec<(ModuleId, PartId)>,
    ) -> Result<Self, ConstraintsError> {
        if k == 0 {
            return Err(ConstraintsError::ZeroParts);
        }
        if !epsilon.is_finite() || epsilon < 0.0 {
            return Err(ConstraintsError::BadEpsilon { epsilon });
        }
        fixed.sort_by_key(|&(v, _)| v.index());
        for pair in fixed.windows(2) {
            if pair[0].0 == pair[1].0 {
                return Err(ConstraintsError::DuplicateFixed {
                    module: pair[0].0.index(),
                });
            }
        }
        if let Some(&(v, p)) = fixed.iter().find(|&&(_, p)| p >= k) {
            return Err(ConstraintsError::PartOutOfRange {
                module: v.index(),
                part: p,
                k,
            });
        }
        Ok(Constraints { k, epsilon, fixed })
    }

    /// The trivial constraint set: `k` parts, default ε, no fixed modules.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn unconstrained(k: u32) -> Self {
        Constraints::new(k, DEFAULT_EPSILON, Vec::new()).expect("k > 0 required")
    }

    /// Number of parts `k`.
    #[inline]
    pub fn k(&self) -> u32 {
        self.k
    }

    /// The balance tolerance ε.
    #[inline]
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The equivalent legacy ratio `r = ε/2` for code still parameterized by
    /// the paper's tolerance.
    #[inline]
    pub fn balance_r(&self) -> f64 {
        self.epsilon / 2.0
    }

    /// The fixed (pre-assigned) modules, sorted by module index.
    #[inline]
    pub fn fixed(&self) -> &[(ModuleId, PartId)] {
        &self.fixed
    }

    /// `true` when no module is fixed.
    #[inline]
    pub fn has_no_fixed(&self) -> bool {
        self.fixed.is_empty()
    }

    /// The part module `v` is fixed to, or `None` if it is free.
    pub fn part_of(&self, v: ModuleId) -> Option<PartId> {
        self.fixed
            .binary_search_by_key(&v.index(), |&(w, _)| w.index())
            .ok()
            .map(|i| self.fixed[i].1)
    }

    /// A dense `module → fixed?` mask of length `n`.
    pub fn fixed_mask(&self, n: usize) -> Vec<bool> {
        let mut mask = vec![false; n];
        for &(v, _) in &self.fixed {
            mask[v.index()] = true;
        }
        mask
    }

    /// Total fixed area per part under `h`'s module areas.
    pub fn fixed_areas(&self, h: &Hypergraph) -> Vec<u64> {
        let mut areas = vec![0u64; self.k as usize];
        for &(v, p) in &self.fixed {
            areas[p as usize] += h.area(v);
        }
        areas
    }

    /// ε-derived per-part capacity bounds for `h` (see
    /// [`PartBounds::from_epsilon`]).
    pub fn bounds(&self, h: &Hypergraph) -> PartBounds {
        PartBounds::from_epsilon(h, self.k, self.epsilon)
    }

    /// Checks every fixed module index against the netlist's module count —
    /// the one validation [`Constraints::new`] cannot do without a netlist.
    ///
    /// # Errors
    ///
    /// [`ConstraintsError::ModuleOutOfRange`] naming the first offender.
    pub fn check_modules(&self, num_modules: usize) -> Result<(), ConstraintsError> {
        // Sorted by module, so the last entry is the largest index.
        match self.fixed.last() {
            Some(&(v, _)) if v.index() >= num_modules => Err(ConstraintsError::ModuleOutOfRange {
                module: v.index(),
                modules: num_modules,
            }),
            _ => Ok(()),
        }
    }
}

/// The per-bisection tolerance ε′ for recursive bisection into `k` parts:
/// `(1 + ε)^(1/⌈log₂ k⌉) − 1`, so that the product of the per-level factors
/// never exceeds the requested `1 + ε` (the adaptive imbalance schedule of
/// "Engineering Multilevel Graph Partitioning Algorithms" / the n-level
/// recursive-bisection paper). For `k ≤ 2` this is ε itself.
pub fn adapted_epsilon(epsilon: f64, k: u32) -> f64 {
    assert!(
        epsilon.is_finite() && epsilon >= 0.0,
        "epsilon must be a finite non-negative tolerance"
    );
    if k <= 2 {
        return epsilon;
    }
    let depth = (k as f64).log2().ceil();
    (1.0 + epsilon).powf(1.0 / depth) - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hypergraph::HypergraphBuilder;

    fn h_units(n: usize) -> Hypergraph {
        let mut b = HypergraphBuilder::with_unit_areas(n);
        if n >= 2 {
            b.add_net([0, 1]).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn epsilon_bounds_reproduce_legacy_balance_exactly() {
        // ε = 2r must match both legacy balance types bit-exactly, across
        // sizes with odd totals and a dominant module.
        for n in [10usize, 99, 100, 257] {
            let h = h_units(n);
            for r in [0.05f64, 0.1, 0.25] {
                let eps = 2.0 * r;
                assert_eq!(
                    PartBounds::from_epsilon(&h, 2, eps),
                    PartBounds::from_bipart(&BipartBalance::new(&h, r)),
                    "n={n} r={r}"
                );
                for k in [2u32, 3, 4, 8] {
                    assert_eq!(
                        PartBounds::from_epsilon(&h, k, eps),
                        PartBounds::from_kway(&KwayBalance::new(&h, k, r)),
                        "n={n} k={k} r={r}"
                    );
                }
            }
        }
        let mut areas = vec![1u64; 70];
        areas.push(30);
        let mut b = HypergraphBuilder::new(areas);
        b.add_net([0, 1]).unwrap();
        let h = b.build().unwrap();
        assert_eq!(
            PartBounds::from_epsilon(&h, 2, 0.2),
            PartBounds::from_bipart(&BipartBalance::new(&h, 0.1))
        );
    }

    #[test]
    fn feasibility_matches_windows() {
        let b = PartBounds::new(vec![10, 20], vec![30, 40]);
        assert_eq!(b.k(), 2);
        assert!(b.is_area_feasible(0, 10) && b.is_area_feasible(0, 30));
        assert!(!b.is_area_feasible(0, 9) && !b.is_area_feasible(0, 31));
        assert!(b.is_area_feasible(1, 40) && !b.is_area_feasible(1, 41));
        let h = h_units(50);
        let p = Partition::from_assignment(&h, 2, (0..50).map(|i| u32::from(i >= 25)).collect())
            .unwrap();
        let bounds = PartBounds::uniform(2, 20, 30);
        assert!(bounds.is_partition_feasible(&p));
        let tight = PartBounds::new(vec![26, 0], vec![50, 50]);
        assert!(!tight.is_partition_feasible(&p));
    }

    #[test]
    fn split_targets_follow_part_ratio() {
        // 300 area split 2:1 at ε = 0 with unit modules: targets 200/100,
        // slack widened to max_area = 1.
        let b = PartBounds::split(300, 1, 2, 1, 0.0);
        assert_eq!((b.lo(0), b.hi(0)), (199, 201));
        assert_eq!((b.lo(1), b.hi(1)), (99, 101));
        // ε = 0.1 widens each window by 10% of its own target.
        let b = PartBounds::split(300, 1, 2, 1, 0.1);
        assert_eq!((b.lo(0), b.hi(0)), (180, 220));
        assert_eq!((b.lo(1), b.hi(1)), (90, 110));
    }

    #[test]
    fn around_targets_widens_to_max_area_and_caps_at_total() {
        // Targets 60/40 at ε = 0.1 with max module area 9: slacks are
        // max(6, 9) = 9 and max(4, 9) = 9.
        let b = PartBounds::around_targets(&[60, 40], 100, 9, 0.1);
        assert_eq!((b.lo(0), b.hi(0)), (51, 69));
        assert_eq!((b.lo(1), b.hi(1)), (31, 49));
        // Near the edges the window saturates at 0 and caps at the total.
        let b = PartBounds::around_targets(&[2, 98], 100, 1, 0.5);
        assert_eq!((b.lo(0), b.hi(0)), (1, 3));
        assert_eq!((b.lo(1), b.hi(1)), (49, 100));
    }

    #[test]
    #[should_panic(expected = "lo")]
    fn rejects_inverted_window() {
        let _ = PartBounds::new(vec![10], vec![5]);
    }

    #[test]
    fn constraints_sort_and_validate() {
        let c =
            Constraints::new(3, 0.1, vec![(ModuleId::new(5), 2), (ModuleId::new(1), 0)]).unwrap();
        assert_eq!(c.fixed()[0].0.index(), 1);
        assert_eq!(c.fixed()[1].0.index(), 5);
        assert_eq!(c.part_of(ModuleId::new(5)), Some(2));
        assert_eq!(c.part_of(ModuleId::new(2)), None);
        assert!(!c.has_no_fixed());
        assert!(Constraints::unconstrained(2).has_no_fixed());
        assert_eq!(
            c.fixed_mask(6),
            vec![false, true, false, false, false, true]
        );
        assert!((c.balance_r() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn constraints_reject_bad_input() {
        assert_eq!(
            Constraints::new(0, 0.1, vec![]),
            Err(ConstraintsError::ZeroParts)
        );
        assert!(matches!(
            Constraints::new(2, -0.5, vec![]),
            Err(ConstraintsError::BadEpsilon { .. })
        ));
        assert!(matches!(
            Constraints::new(2, f64::NAN, vec![]),
            Err(ConstraintsError::BadEpsilon { .. })
        ));
        assert_eq!(
            Constraints::new(2, 0.1, vec![(ModuleId::new(3), 2)]),
            Err(ConstraintsError::PartOutOfRange {
                module: 3,
                part: 2,
                k: 2
            })
        );
        assert_eq!(
            Constraints::new(2, 0.1, vec![(ModuleId::new(3), 0), (ModuleId::new(3), 1)]),
            Err(ConstraintsError::DuplicateFixed { module: 3 })
        );
    }

    #[test]
    fn check_modules_names_the_offender() {
        let c = Constraints::new(2, 0.1, vec![(ModuleId::new(9), 1)]).unwrap();
        assert_eq!(c.check_modules(10), Ok(()));
        assert_eq!(
            c.check_modules(9),
            Err(ConstraintsError::ModuleOutOfRange {
                module: 9,
                modules: 9
            })
        );
    }

    #[test]
    fn fixed_areas_accumulate_per_part() {
        let mut b = HypergraphBuilder::new(vec![2, 3, 5, 7]);
        b.add_net([0, 1]).unwrap();
        let h = b.build().unwrap();
        let c = Constraints::new(
            2,
            0.2,
            vec![
                (ModuleId::new(0), 0),
                (ModuleId::new(2), 1),
                (ModuleId::new(3), 1),
            ],
        )
        .unwrap();
        assert_eq!(c.fixed_areas(&h), vec![2, 12]);
        assert_eq!(c.bounds(&h), PartBounds::from_epsilon(&h, 2, 0.2));
    }

    #[test]
    fn adapted_epsilon_composes_to_the_requested_total() {
        assert!((adapted_epsilon(0.1, 2) - 0.1).abs() < 1e-12);
        // k = 8: three bisection levels, (1+ε')³ = 1+ε.
        let e = adapted_epsilon(0.1, 8);
        assert!(((1.0 + e).powi(3) - 1.1).abs() < 1e-12);
        // Non-power-of-two k uses ⌈log₂ k⌉ levels.
        let e = adapted_epsilon(0.3, 5);
        assert!(((1.0 + e).powi(3) - 1.3).abs() < 1e-12);
        assert_eq!(adapted_epsilon(0.0, 16), 0.0);
    }

    #[test]
    fn errors_render_messages() {
        let msgs = [
            ConstraintsError::ZeroParts.to_string(),
            ConstraintsError::BadEpsilon { epsilon: -1.0 }.to_string(),
            ConstraintsError::PartOutOfRange {
                module: 4,
                part: 9,
                k: 2,
            }
            .to_string(),
            ConstraintsError::DuplicateFixed { module: 4 }.to_string(),
            ConstraintsError::ModuleOutOfRange {
                module: 11,
                modules: 10,
            }
            .to_string(),
        ];
        for m in &msgs {
            assert!(!m.is_empty());
        }
        assert!(msgs[2].contains("part 9"));
        let b = PartBounds::uniform(2, 1, 3);
        assert_eq!(b.to_string(), "PartBounds([1, 3], [1, 3])");
    }
}
