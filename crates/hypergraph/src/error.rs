//! Error types for hypergraph construction and I/O.

use std::error::Error as StdError;
use std::fmt;

/// Error produced while building a [`Hypergraph`](crate::Hypergraph) from
/// user-supplied nets and areas.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BuildHypergraphError {
    /// A net referenced a module index `pin` that is `>= num_modules`.
    PinOutOfRange {
        /// Index of the offending net in insertion order.
        net: usize,
        /// The out-of-range module index.
        pin: usize,
        /// Number of modules declared on the builder.
        num_modules: usize,
    },
    /// A module was declared with zero area. The `Match` connectivity
    /// function divides by cluster areas, and the balance bounds assume every
    /// module occupies space, so zero areas are rejected up front.
    ZeroArea {
        /// The module with zero area.
        module: usize,
    },
    /// The total area of all modules overflowed `u64`.
    AreaOverflow,
    /// A net was declared with weight zero.
    ZeroWeight {
        /// Index of the offending net in insertion order.
        net: usize,
    },
    /// A net listed more pins than there are modules. Duplicates make this
    /// representable, and [`build`](crate::HypergraphBuilder::build) would
    /// silently merge them — but for file-sourced netlists an oversized net
    /// indicates corruption, so the opt-in
    /// [`validate`](crate::HypergraphBuilder::validate) rejects it.
    NetTooLarge {
        /// Index of the offending net in insertion order.
        net: usize,
        /// Raw pin count of the net (before duplicate merging).
        pins: usize,
        /// Number of modules declared on the builder.
        num_modules: usize,
    },
    /// A per-module mask (e.g. the keep mask of
    /// [`extract`](crate::Hypergraph::extract)) does not have exactly one
    /// entry per module.
    MaskLengthMismatch {
        /// Length of the provided mask.
        mask_len: usize,
        /// Number of modules in the hypergraph.
        num_modules: usize,
    },
}

impl fmt::Display for BuildHypergraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildHypergraphError::PinOutOfRange {
                net,
                pin,
                num_modules,
            } => write!(
                f,
                "net {net} references module {pin} but only {num_modules} modules exist"
            ),
            BuildHypergraphError::ZeroArea { module } => {
                write!(f, "module {module} has zero area")
            }
            BuildHypergraphError::AreaOverflow => {
                write!(f, "total module area overflows u64")
            }
            BuildHypergraphError::ZeroWeight { net } => {
                write!(f, "net {net} has zero weight")
            }
            BuildHypergraphError::NetTooLarge {
                net,
                pins,
                num_modules,
            } => write!(
                f,
                "net {net} lists {pins} pins but only {num_modules} modules exist"
            ),
            BuildHypergraphError::MaskLengthMismatch {
                mask_len,
                num_modules,
            } => write!(
                f,
                "mask has {mask_len} entries but the hypergraph has {num_modules} modules"
            ),
        }
    }
}

impl StdError for BuildHypergraphError {}

/// Error produced while parsing an hMETIS-format (`.hgr`) netlist.
#[derive(Debug)]
#[non_exhaustive]
pub enum ParseHgrError {
    /// An underlying I/O error while reading.
    Io(std::io::Error),
    /// The header line was missing or malformed.
    BadHeader {
        /// The offending line content.
        line: String,
    },
    /// A token could not be parsed as an integer.
    BadToken {
        /// 1-based line number of the offending token.
        line_no: usize,
        /// The token text.
        token: String,
    },
    /// A pin index was outside `1..=num_modules`.
    PinOutOfRange {
        /// 1-based line number.
        line_no: usize,
        /// The out-of-range 1-based pin value.
        pin: usize,
        /// Declared number of modules.
        num_modules: usize,
    },
    /// Fewer net lines than the header declared.
    TooFewNets {
        /// Number of nets declared by the header.
        expected: usize,
        /// Number of net lines actually present.
        found: usize,
    },
    /// The header declared an unsupported format code (only `0`, `1`, `10`,
    /// `11` are supported, matching hMETIS).
    UnsupportedFormat {
        /// The unsupported format code.
        fmt: u32,
    },
    /// A net line contained no pins (e.g. a weighted line whose only token
    /// was the weight). Blank lines are skipped as comments, so an empty
    /// net is always a malformed file rather than a formatting artifact.
    EmptyNet {
        /// 1-based line number of the pinless net.
        line_no: usize,
    },
    /// The netlist failed semantic validation after parsing.
    Build(BuildHypergraphError),
    /// A partition file could not be assembled into a
    /// [`Partition`](crate::Partition) (e.g. the inferred part count
    /// `max id + 1` is unrepresentable).
    BadPartition {
        /// Human-readable description of the inconsistency.
        detail: String,
    },
}

impl fmt::Display for ParseHgrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseHgrError::Io(e) => write!(f, "i/o error while reading netlist: {e}"),
            ParseHgrError::BadHeader { line } => {
                write!(f, "malformed header line: {line:?}")
            }
            ParseHgrError::BadToken { line_no, token } => {
                write!(
                    f,
                    "line {line_no}: cannot parse token {token:?} as an integer"
                )
            }
            ParseHgrError::PinOutOfRange {
                line_no,
                pin,
                num_modules,
            } => write!(
                f,
                "line {line_no}: pin {pin} out of range (1..={num_modules})"
            ),
            ParseHgrError::TooFewNets { expected, found } => {
                write!(
                    f,
                    "header declared {expected} nets but only {found} present"
                )
            }
            ParseHgrError::UnsupportedFormat { fmt } => {
                write!(f, "unsupported hMETIS format code {fmt}")
            }
            ParseHgrError::EmptyNet { line_no } => {
                write!(f, "line {line_no}: net has no pins")
            }
            ParseHgrError::Build(e) => write!(f, "invalid netlist: {e}"),
            ParseHgrError::BadPartition { detail } => {
                write!(f, "invalid partition file: {detail}")
            }
        }
    }
}

impl StdError for ParseHgrError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            ParseHgrError::Io(e) => Some(e),
            ParseHgrError::Build(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ParseHgrError {
    fn from(e: std::io::Error) -> Self {
        ParseHgrError::Io(e)
    }
}

impl From<BuildHypergraphError> for ParseHgrError {
    fn from(e: BuildHypergraphError) -> Self {
        ParseHgrError::Build(e)
    }
}

/// Error produced while parsing an hMETIS fixed-vertex (`.fix`) file — the
/// companion format Coloquinte writes beside its `.hgr` exports: one line
/// per module holding either the part the module is pinned to or `-1` for a
/// free module.
#[derive(Debug)]
#[non_exhaustive]
pub enum ParseFixError {
    /// An underlying I/O error while reading.
    Io(std::io::Error),
    /// A line could not be parsed as an integer.
    BadToken {
        /// 1-based line number of the offending token.
        line_no: usize,
        /// The token text.
        token: String,
    },
    /// A line named a part outside `0..k` (and was not the free marker
    /// `-1`).
    BadPartId {
        /// 1-based line number.
        line_no: usize,
        /// The out-of-range part id.
        part: i64,
        /// The part count the file was validated against.
        k: u32,
    },
    /// The file's line count does not match the netlist's module count —
    /// the format requires exactly one line per module.
    WrongLineCount {
        /// Modules in the companion netlist.
        expected: usize,
        /// Assignment lines actually present.
        found: usize,
    },
}

impl fmt::Display for ParseFixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseFixError::Io(e) => write!(f, "i/o error while reading fixed-vertex file: {e}"),
            ParseFixError::BadToken { line_no, token } => {
                write!(
                    f,
                    "line {line_no}: cannot parse token {token:?} as a part id"
                )
            }
            ParseFixError::BadPartId { line_no, part, k } => {
                write!(
                    f,
                    "line {line_no}: part id {part} out of range (expected -1 or 0..{k})"
                )
            }
            ParseFixError::WrongLineCount { expected, found } => {
                write!(
                    f,
                    "fixed-vertex file has {found} assignment line(s) for {expected} module(s)"
                )
            }
        }
    }
}

impl StdError for ParseFixError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            ParseFixError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ParseFixError {
    fn from(e: std::io::Error) -> Self {
        ParseFixError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = BuildHypergraphError::PinOutOfRange {
            net: 3,
            pin: 99,
            num_modules: 10,
        };
        let msg = e.to_string();
        assert!(msg.contains("net 3"));
        assert!(msg.contains("99"));
        assert!(msg.starts_with(char::is_lowercase));
    }

    #[test]
    fn parse_error_wraps_build_error() {
        let inner = BuildHypergraphError::ZeroArea { module: 4 };
        let outer = ParseHgrError::from(inner.clone());
        assert!(outer.to_string().contains("module 4"));
        assert!(StdError::source(&outer).is_some());
        assert_eq!(inner.to_string(), "module 4 has zero area");
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BuildHypergraphError>();
        assert_send_sync::<ParseHgrError>();
        assert_send_sync::<ParseFixError>();
    }

    #[test]
    fn fix_errors_render_location() {
        let e = ParseFixError::BadPartId {
            line_no: 4,
            part: 7,
            k: 2,
        };
        let msg = e.to_string();
        assert!(msg.contains("line 4"), "{msg}");
        assert!(msg.contains("7"), "{msg}");
        let e = ParseFixError::WrongLineCount {
            expected: 10,
            found: 8,
        };
        assert!(e.to_string().contains("8"));
        let io = ParseFixError::from(std::io::Error::other("x"));
        assert!(StdError::source(&io).is_some());
    }
}
