//! The netlist hypergraph `H(V, E)` in compressed sparse row form.
//!
//! Following the paper's §I: a netlist hypergraph has `n` modules
//! `V = {v1, …, vn}`; a net `e ∈ E` is a subset of `V` with size greater than
//! one. Modules carry an *area* `A(v)`; the paper's experiments use unit
//! areas, but coarsening (Definition 1) accumulates cluster areas, so areas
//! are first-class here.
//!
//! The structure is immutable after construction: the partitioners never
//! mutate the netlist, only partitions of it, and coarsening produces *new*
//! (induced) hypergraphs. Both incidence directions are stored CSR-style:
//! `net → pins` and `module → incident nets`.

use crate::error::BuildHypergraphError;
use crate::ids::{ModuleId, NetId};

/// An immutable netlist hypergraph with module areas.
///
/// Construct one with [`HypergraphBuilder`]. Nets with fewer than two
/// *distinct* pins are dropped during construction (the paper defines a net
/// as a module subset of size greater than one; single-pin nets can never be
/// cut). Duplicate pins within one net are merged.
///
/// # Examples
///
/// ```
/// use mlpart_hypergraph::{Hypergraph, HypergraphBuilder, ModuleId};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = HypergraphBuilder::with_unit_areas(4);
/// b.add_net([0, 1, 2])?;
/// b.add_net([2, 3])?;
/// let h: Hypergraph = b.build()?;
/// assert_eq!(h.num_modules(), 4);
/// assert_eq!(h.num_nets(), 2);
/// assert_eq!(h.num_pins(), 5);
/// assert_eq!(h.pins(mlpart_hypergraph::NetId::new(1)).len(), 2);
/// assert_eq!(h.total_area(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hypergraph {
    /// `net_offsets[e] .. net_offsets[e+1]` indexes `net_pins`.
    net_offsets: Vec<u32>,
    /// Concatenated pin lists of all nets.
    net_pins: Vec<ModuleId>,
    /// `mod_offsets[v] .. mod_offsets[v+1]` indexes `mod_nets`.
    mod_offsets: Vec<u32>,
    /// Concatenated incident-net lists of all modules.
    mod_nets: Vec<NetId>,
    /// Weight of each net; `1` unless built with weighted nets. The cut
    /// objective sums the weights of cut nets (the paper's unweighted cut is
    /// the all-ones special case; weights arise when coalescing duplicate
    /// coarse nets, hMETIS-style).
    net_weights: Vec<u32>,
    /// `A(v)` per module; strictly positive.
    areas: Vec<u64>,
    /// `A(V) = Σ A(v)`.
    total_area: u64,
    /// Largest single module area `A(v*)`, used by the balance bounds.
    max_area: u64,
}

impl Hypergraph {
    /// Number of modules `|V|`.
    #[inline]
    pub fn num_modules(&self) -> usize {
        self.areas.len()
    }

    /// Number of nets `|E|` (after dropping sub-2-pin nets).
    #[inline]
    pub fn num_nets(&self) -> usize {
        self.net_offsets.len() - 1
    }

    /// Total number of pins (sum of net sizes).
    #[inline]
    pub fn num_pins(&self) -> usize {
        self.net_pins.len()
    }

    /// The pins (modules) of net `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    #[inline]
    pub fn pins(&self, e: NetId) -> &[ModuleId] {
        let lo = self.net_offsets[e.index()] as usize;
        let hi = self.net_offsets[e.index() + 1] as usize;
        &self.net_pins[lo..hi]
    }

    /// The nets incident to module `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn nets(&self, v: ModuleId) -> &[NetId] {
        let lo = self.mod_offsets[v.index()] as usize;
        let hi = self.mod_offsets[v.index() + 1] as usize;
        &self.mod_nets[lo..hi]
    }

    /// Size `|e|` of net `e` (number of pins).
    #[inline]
    pub fn net_size(&self, e: NetId) -> usize {
        (self.net_offsets[e.index() + 1] - self.net_offsets[e.index()]) as usize
    }

    /// Degree of module `v` (number of incident nets).
    #[inline]
    pub fn degree(&self, v: ModuleId) -> usize {
        (self.mod_offsets[v.index() + 1] - self.mod_offsets[v.index()]) as usize
    }

    /// Area `A(v)` of module `v`.
    #[inline]
    pub fn area(&self, v: ModuleId) -> u64 {
        self.areas[v.index()]
    }

    /// Total area `A(V)`.
    #[inline]
    pub fn total_area(&self) -> u64 {
        self.total_area
    }

    /// Largest single-module area `A(v*)`; the balance bounds of §III-B use
    /// this to guarantee at least one legal move always exists.
    #[inline]
    pub fn max_area(&self) -> u64 {
        self.max_area
    }

    /// All module areas as a slice (dense by module index).
    #[inline]
    pub fn areas(&self) -> &[u64] {
        &self.areas
    }

    /// Iterator over all module ids.
    pub fn modules(&self) -> impl Iterator<Item = ModuleId> + Clone + '_ {
        crate::ids::module_ids(self.num_modules())
    }

    /// Iterator over all net ids.
    pub fn net_ids(&self) -> impl Iterator<Item = NetId> + Clone + '_ {
        crate::ids::net_ids(self.num_nets())
    }

    /// Maximum net size across the netlist; `0` for a netlist with no nets.
    pub fn max_net_size(&self) -> usize {
        self.net_ids().map(|e| self.net_size(e)).max().unwrap_or(0)
    }

    /// Maximum module degree; `0` for an empty netlist.
    pub fn max_degree(&self) -> usize {
        self.modules().map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Weight of net `e` (`1` for plain netlists).
    #[inline]
    pub fn net_weight(&self, e: NetId) -> u32 {
        self.net_weights[e.index()]
    }

    /// All net weights as a slice (dense by net index).
    #[inline]
    pub fn net_weights(&self) -> &[u32] {
        &self.net_weights
    }

    /// Sum of all net weights (`num_nets()` for plain netlists).
    pub fn total_net_weight(&self) -> u64 {
        self.net_weights.iter().map(|&w| w as u64).sum()
    }

    /// Average net size (pins per net); `0.0` for a netlist with no nets.
    pub fn avg_net_size(&self) -> f64 {
        if self.num_nets() == 0 {
            0.0
        } else {
            self.num_pins() as f64 / self.num_nets() as f64
        }
    }

    /// Extracts the sub-netlist induced by the modules with `keep[v] = true`.
    ///
    /// Nets are restricted to kept pins; restricted nets with fewer than two
    /// pins vanish. Returns the sub-netlist and the mapping from its dense
    /// module ids back to this netlist's ids.
    ///
    /// Used by recursive bisection: after a 2-way split, each side is
    /// extracted and partitioned independently.
    ///
    /// # Errors
    ///
    /// Returns [`BuildHypergraphError::MaskLengthMismatch`] when `keep`
    /// does not have one entry per module, and propagates builder errors
    /// when the extracted sub-netlist fails validation — both impossible
    /// for masks produced by the pipelines, but arbitrary callers get a
    /// value, not a panic.
    ///
    /// # Examples
    ///
    /// ```
    /// use mlpart_hypergraph::HypergraphBuilder;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let mut b = HypergraphBuilder::with_unit_areas(4);
    /// b.add_net([0, 1, 2])?;
    /// b.add_net([2, 3])?;
    /// let h = b.build()?;
    /// let (sub, back) = h.extract(&[true, true, true, false])?;
    /// assert_eq!(sub.num_modules(), 3);
    /// assert_eq!(sub.num_nets(), 1); // {2,3} collapsed to one pin
    /// assert_eq!(back[2].index(), 2);
    /// # Ok(())
    /// # }
    /// ```
    pub fn extract(
        &self,
        keep: &[bool],
    ) -> Result<(Hypergraph, Vec<ModuleId>), BuildHypergraphError> {
        if keep.len() != self.num_modules() {
            return Err(BuildHypergraphError::MaskLengthMismatch {
                mask_len: keep.len(),
                num_modules: self.num_modules(),
            });
        }
        let mut back: Vec<ModuleId> = Vec::new();
        let mut fwd = vec![usize::MAX; self.num_modules()];
        let mut areas = Vec::new();
        for v in self.modules() {
            if keep[v.index()] {
                fwd[v.index()] = back.len();
                back.push(v);
                areas.push(self.area(v));
            }
        }
        let mut builder = HypergraphBuilder::new(areas);
        let mut scratch = Vec::new();
        for e in self.net_ids() {
            scratch.clear();
            scratch.extend(
                self.pins(e)
                    .iter()
                    .filter(|v| keep[v.index()])
                    .map(|v| fwd[v.index()]),
            );
            if scratch.len() >= 2 {
                builder.add_weighted_net(scratch.iter().copied(), self.net_weight(e))?;
            }
        }
        let sub = builder.build()?;
        Ok((sub, back))
    }

    /// Checks internal CSR consistency; used by tests and debug assertions.
    ///
    /// Verifies that offsets are monotone, every pin and net reference is in
    /// range, and the two incidence directions agree.
    pub fn validate(&self) -> bool {
        let n = self.num_modules();
        let m = self.num_nets();
        if self.net_offsets.windows(2).any(|w| w[0] > w[1]) {
            return false;
        }
        if self.mod_offsets.windows(2).any(|w| w[0] > w[1]) {
            return false;
        }
        if self.net_pins.iter().any(|p| p.index() >= n) {
            return false;
        }
        if self.mod_nets.iter().any(|e| e.index() >= m) {
            return false;
        }
        // Each (net, pin) incidence must appear exactly once in each direction.
        let mut forward = 0usize;
        for e in self.net_ids() {
            for &v in self.pins(e) {
                if !self.nets(v).contains(&e) {
                    return false;
                }
                forward += 1;
            }
        }
        forward == self.mod_nets.len()
    }
}

/// Incremental builder for [`Hypergraph`].
///
/// Declare the module count (and optionally per-module areas) up front, then
/// add nets as iterators of module indices. [`build`](Self::build) validates
/// everything and produces the immutable CSR structure.
///
/// # Examples
///
/// ```
/// use mlpart_hypergraph::HypergraphBuilder;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = HypergraphBuilder::new(vec![2, 3, 5]);
/// b.add_net([0, 1])?;
/// b.add_net([0, 1, 2])?;
/// b.add_net([2])?; // single-pin: silently dropped at build()
/// let h = b.build()?;
/// assert_eq!(h.num_nets(), 2);
/// assert_eq!(h.total_area(), 10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct HypergraphBuilder {
    areas: Vec<u64>,
    /// Flattened net pins plus offsets, to avoid per-net allocations.
    pins: Vec<u32>,
    offsets: Vec<u32>,
    weights: Vec<u32>,
}

impl HypergraphBuilder {
    /// Creates a builder with explicit per-module areas.
    pub fn new(areas: Vec<u64>) -> Self {
        HypergraphBuilder {
            areas,
            pins: Vec::new(),
            offsets: vec![0],
            weights: Vec::new(),
        }
    }

    /// Creates a builder with `n` modules of unit area, matching the paper's
    /// experimental setup ("we assume unit cell area for all test cases").
    pub fn with_unit_areas(n: usize) -> Self {
        Self::new(vec![1; n])
    }

    /// Number of modules declared on this builder.
    pub fn num_modules(&self) -> usize {
        self.areas.len()
    }

    /// Number of nets added so far (including ones that may be dropped at
    /// build time for having fewer than two distinct pins).
    pub fn num_nets(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Adds a net given as an iterator of module indices.
    ///
    /// # Errors
    ///
    /// Returns [`BuildHypergraphError::PinOutOfRange`] if any index is
    /// `>= num_modules`; the builder is left unchanged in that case.
    pub fn add_net<I>(&mut self, pins: I) -> Result<(), BuildHypergraphError>
    where
        I: IntoIterator<Item = usize>,
    {
        self.add_weighted_net(pins, 1)
    }

    /// Adds a net with an explicit weight. Weighted nets contribute their
    /// weight to the cut objective; weight `1` is the ordinary case.
    ///
    /// # Errors
    ///
    /// As [`add_net`](Self::add_net); additionally rejects weight `0`
    /// (a zero-weight net would be invisible to every objective).
    pub fn add_weighted_net<I>(&mut self, pins: I, weight: u32) -> Result<(), BuildHypergraphError>
    where
        I: IntoIterator<Item = usize>,
    {
        if weight == 0 {
            return Err(BuildHypergraphError::ZeroWeight {
                net: self.offsets.len() - 1,
            });
        }
        let start = self.pins.len();
        for pin in pins {
            if pin >= self.areas.len() {
                self.pins.truncate(start);
                return Err(BuildHypergraphError::PinOutOfRange {
                    net: self.offsets.len() - 1,
                    pin,
                    num_modules: self.areas.len(),
                });
            }
            self.pins.push(pin as u32);
        }
        self.offsets.push(self.pins.len() as u32);
        self.weights.push(weight);
        Ok(())
    }

    /// Validates the accumulated netlist without consuming the builder,
    /// applying a **stricter** standard than [`build`](Self::build).
    ///
    /// [`build`](Self::build) is deliberately permissive about duplicate
    /// pins (it merges them — convenient for programmatic construction),
    /// but a file-sourced net that lists more pins than the netlist has
    /// modules can only arise from duplicates, i.e. a corrupt or
    /// adversarial input. `validate` rejects such nets with
    /// [`BuildHypergraphError::NetTooLarge`], along with everything
    /// [`build`](Self::build) itself would reject (zero areas, area
    /// overflow), so parsers can fail with a typed error before committing
    /// to construction.
    pub fn validate(&self) -> Result<(), BuildHypergraphError> {
        if let Some(z) = self.areas.iter().position(|&a| a == 0) {
            return Err(BuildHypergraphError::ZeroArea { module: z });
        }
        let mut total: u64 = 0;
        for &a in &self.areas {
            total = total
                .checked_add(a)
                .ok_or(BuildHypergraphError::AreaOverflow)?;
        }
        let n = self.areas.len();
        for (net, w) in self.offsets.windows(2).enumerate() {
            let pins = (w[1] - w[0]) as usize;
            if pins > n {
                return Err(BuildHypergraphError::NetTooLarge {
                    net,
                    pins,
                    num_modules: n,
                });
            }
        }
        Ok(())
    }

    /// Consumes the builder and produces the immutable hypergraph.
    ///
    /// Duplicate pins within a net are merged, and nets left with fewer than
    /// two pins are dropped (the paper defines nets as module subsets with
    /// size greater than one).
    ///
    /// # Errors
    ///
    /// * [`BuildHypergraphError::ZeroArea`] if any module area is zero.
    /// * [`BuildHypergraphError::AreaOverflow`] if the total area overflows.
    pub fn build(self) -> Result<Hypergraph, BuildHypergraphError> {
        let n = self.areas.len();
        if let Some(z) = self.areas.iter().position(|&a| a == 0) {
            return Err(BuildHypergraphError::ZeroArea { module: z });
        }
        let mut total_area: u64 = 0;
        for &a in &self.areas {
            total_area = total_area
                .checked_add(a)
                .ok_or(BuildHypergraphError::AreaOverflow)?;
        }
        let max_area = self.areas.iter().copied().max().unwrap_or(0);

        // Deduplicate pins per net with a stamp array (O(pins) total).
        let mut stamp = vec![u32::MAX; n];
        let mut net_offsets: Vec<u32> = Vec::with_capacity(self.offsets.len());
        let mut net_pins: Vec<ModuleId> = Vec::with_capacity(self.pins.len());
        let mut net_weights: Vec<u32> = Vec::with_capacity(self.weights.len());
        net_offsets.push(0);
        let mut kept_net: u32 = 0;
        for (net_idx, w) in self.offsets.windows(2).enumerate() {
            let (lo, hi) = (w[0] as usize, w[1] as usize);
            let start = net_pins.len();
            for &pin in &self.pins[lo..hi] {
                if stamp[pin as usize] != kept_net {
                    stamp[pin as usize] = kept_net;
                    net_pins.push(ModuleId::from(pin));
                }
            }
            if net_pins.len() - start < 2 {
                // Single-pin (or empty) net after dedup: drop it. Reset the
                // stamps we just wrote so the next net can't alias them.
                for p in net_pins.drain(start..) {
                    stamp[p.index()] = u32::MAX;
                }
            } else {
                net_offsets.push(net_pins.len() as u32);
                net_weights.push(self.weights[net_idx]);
                kept_net += 1;
            }
        }

        // Build the module -> nets direction by counting then filling.
        let mut mod_offsets = vec![0u32; n + 1];
        for &p in &net_pins {
            mod_offsets[p.index() + 1] += 1;
        }
        for i in 0..n {
            mod_offsets[i + 1] += mod_offsets[i];
        }
        let mut cursor = mod_offsets.clone();
        let mut mod_nets = vec![NetId::default(); net_pins.len()];
        for (e, w) in net_offsets.windows(2).enumerate() {
            for &p in &net_pins[w[0] as usize..w[1] as usize] {
                let c = &mut cursor[p.index()];
                mod_nets[*c as usize] = NetId::new(e);
                *c += 1;
            }
        }

        let h = Hypergraph {
            net_offsets,
            net_pins,
            mod_offsets,
            mod_nets,
            net_weights,
            areas: self.areas,
            total_area,
            max_area,
        };
        debug_assert!(h.validate());
        Ok(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Hypergraph {
        // 5 modules; nets: {0,1,2}, {1,2}, {3,4}, {0,4}
        let mut b = HypergraphBuilder::with_unit_areas(5);
        b.add_net([0, 1, 2]).unwrap();
        b.add_net([1, 2]).unwrap();
        b.add_net([3, 4]).unwrap();
        b.add_net([0, 4]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn basic_counts() {
        let h = tiny();
        assert_eq!(h.num_modules(), 5);
        assert_eq!(h.num_nets(), 4);
        assert_eq!(h.num_pins(), 9);
        assert_eq!(h.total_area(), 5);
        assert_eq!(h.max_area(), 1);
        assert!(h.validate());
    }

    #[test]
    fn incidence_directions_agree() {
        let h = tiny();
        assert_eq!(
            h.pins(NetId::new(0)),
            &[ModuleId::new(0), ModuleId::new(1), ModuleId::new(2)]
        );
        assert_eq!(h.nets(ModuleId::new(1)), &[NetId::new(0), NetId::new(1)]);
        assert_eq!(h.degree(ModuleId::new(0)), 2);
        assert_eq!(h.degree(ModuleId::new(4)), 2);
        assert_eq!(h.net_size(NetId::new(2)), 2);
    }

    #[test]
    fn stats() {
        let h = tiny();
        assert_eq!(h.max_net_size(), 3);
        assert_eq!(h.max_degree(), 2);
        assert!((h.avg_net_size() - 2.25).abs() < 1e-12);
    }

    #[test]
    fn drops_single_pin_nets() {
        let mut b = HypergraphBuilder::with_unit_areas(3);
        b.add_net([0]).unwrap();
        b.add_net([1, 2]).unwrap();
        b.add_net(std::iter::empty()).unwrap();
        let h = b.build().unwrap();
        assert_eq!(h.num_nets(), 1);
        assert_eq!(h.pins(NetId::new(0)), &[ModuleId::new(1), ModuleId::new(2)]);
    }

    #[test]
    fn merges_duplicate_pins() {
        let mut b = HypergraphBuilder::with_unit_areas(3);
        b.add_net([0, 1, 0, 1, 2]).unwrap();
        b.add_net([2, 2]).unwrap(); // collapses to single pin -> dropped
        let h = b.build().unwrap();
        assert_eq!(h.num_nets(), 1);
        assert_eq!(h.net_size(NetId::new(0)), 3);
    }

    #[test]
    fn dedup_stamp_reset_after_dropped_net() {
        // Regression: a dropped net must not leave stamps that suppress pins
        // of the *next* net.
        let mut b = HypergraphBuilder::with_unit_areas(3);
        b.add_net([0]).unwrap(); // dropped; stamps module 0 transiently
        b.add_net([0, 1]).unwrap(); // must still contain module 0
        let h = b.build().unwrap();
        assert_eq!(h.num_nets(), 1);
        assert_eq!(h.net_size(NetId::new(0)), 2);
    }

    #[test]
    fn rejects_out_of_range_pin() {
        let mut b = HypergraphBuilder::with_unit_areas(2);
        let err = b.add_net([0, 5]).unwrap_err();
        assert_eq!(
            err,
            BuildHypergraphError::PinOutOfRange {
                net: 0,
                pin: 5,
                num_modules: 2
            }
        );
        // Builder unchanged; can still add a valid net.
        b.add_net([0, 1]).unwrap();
        let h = b.build().unwrap();
        assert_eq!(h.num_nets(), 1);
    }

    #[test]
    fn rejects_zero_area() {
        let mut b = HypergraphBuilder::new(vec![1, 0, 2]);
        b.add_net([0, 2]).unwrap();
        assert_eq!(
            b.build().unwrap_err(),
            BuildHypergraphError::ZeroArea { module: 1 }
        );
    }

    #[test]
    fn rejects_area_overflow() {
        let b = HypergraphBuilder::new(vec![u64::MAX, 2]);
        assert_eq!(b.build().unwrap_err(), BuildHypergraphError::AreaOverflow);
    }

    #[test]
    fn explicit_areas_accumulate() {
        let mut b = HypergraphBuilder::new(vec![4, 7, 11]);
        b.add_net([0, 1, 2]).unwrap();
        let h = b.build().unwrap();
        assert_eq!(h.total_area(), 22);
        assert_eq!(h.max_area(), 11);
        assert_eq!(h.area(ModuleId::new(1)), 7);
        assert_eq!(h.areas(), &[4, 7, 11]);
    }

    #[test]
    fn empty_netlist_is_valid() {
        let h = HypergraphBuilder::with_unit_areas(0).build().unwrap();
        assert_eq!(h.num_modules(), 0);
        assert_eq!(h.num_nets(), 0);
        assert_eq!(h.max_net_size(), 0);
        assert_eq!(h.max_degree(), 0);
        assert!(h.validate());
    }

    #[test]
    fn extract_subnetlist() {
        let h = tiny();
        // Keep modules 0, 1, 2: nets {0,1,2} and {1,2} survive; {3,4} gone;
        // {0,4} collapses to one pin and vanishes.
        let (sub, back) = h.extract(&[true, true, true, false, false]).unwrap();
        assert_eq!(sub.num_modules(), 3);
        assert_eq!(sub.num_nets(), 2);
        assert_eq!(back.len(), 3);
        assert_eq!(back[0], ModuleId::new(0));
        assert!(sub.validate());
        assert_eq!(sub.total_area(), 3);
    }

    #[test]
    fn extract_empty_and_full() {
        let h = tiny();
        let (empty, back) = h.extract(&[false; 5]).unwrap();
        assert_eq!(empty.num_modules(), 0);
        assert!(back.is_empty());
        let (full, _) = h.extract(&[true; 5]).unwrap();
        assert_eq!(full, h);
    }

    #[test]
    fn extract_rejects_bad_mask() {
        let h = tiny();
        assert_eq!(
            h.extract(&[true]).unwrap_err(),
            BuildHypergraphError::MaskLengthMismatch {
                mask_len: 1,
                num_modules: 5
            }
        );
    }

    #[test]
    fn clone_and_eq() {
        let h = tiny();
        let h2 = h.clone();
        assert_eq!(h, h2);
    }
}
