//! Strongly-typed identifiers for modules (cells) and nets.
//!
//! The paper works with a netlist hypergraph `H(V, E)` whose vertices are
//! called *modules* and whose hyperedges are called *nets*. Using newtypes
//! instead of bare `usize` prevents an entire class of index-confusion bugs
//! (e.g. indexing the net array with a module id), which matters in a code
//! base that constantly walks both incidence directions.

use std::fmt;

/// Identifier of a module (a cell / vertex of the netlist hypergraph).
///
/// Internally a dense `u32` index in `0..num_modules`. 32 bits comfortably
/// covers the largest benchmark in the paper (`golem3`, 103 048 modules) and
/// anything a laptop-scale partitioner will see.
///
/// # Examples
///
/// ```
/// use mlpart_hypergraph::ModuleId;
///
/// let v = ModuleId::new(7);
/// assert_eq!(v.index(), 7);
/// assert_eq!(format!("{v}"), "v7");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ModuleId(u32);

/// Identifier of a net (a hyperedge of the netlist hypergraph).
///
/// Internally a dense `u32` index in `0..num_nets`.
///
/// # Examples
///
/// ```
/// use mlpart_hypergraph::NetId;
///
/// let e = NetId::new(3);
/// assert_eq!(e.index(), 3);
/// assert_eq!(format!("{e}"), "e3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NetId(u32);

impl ModuleId {
    /// Creates a module id from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32`.
    #[inline]
    pub fn new(index: usize) -> Self {
        ModuleId(u32::try_from(index).expect("module index exceeds u32::MAX"))
    }

    /// Returns the dense index as `usize`, suitable for slice indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` value.
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl NetId {
    /// Creates a net id from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32`.
    #[inline]
    pub fn new(index: usize) -> Self {
        NetId(u32::try_from(index).expect("net index exceeds u32::MAX"))
    }

    /// Returns the dense index as `usize`, suitable for slice indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` value.
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl From<u32> for ModuleId {
    fn from(raw: u32) -> Self {
        ModuleId(raw)
    }
}

impl From<ModuleId> for u32 {
    fn from(id: ModuleId) -> Self {
        id.0
    }
}

impl From<u32> for NetId {
    fn from(raw: u32) -> Self {
        NetId(raw)
    }
}

impl From<NetId> for u32 {
    fn from(id: NetId) -> Self {
        id.0
    }
}

impl fmt::Display for ModuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Iterator over all module ids `0..n`, used by several algorithms that
/// visit every module.
///
/// # Examples
///
/// ```
/// use mlpart_hypergraph::ids::module_ids;
///
/// let all: Vec<_> = module_ids(3).map(|m| m.index()).collect();
/// assert_eq!(all, vec![0, 1, 2]);
/// ```
pub fn module_ids(n: usize) -> impl Iterator<Item = ModuleId> + Clone {
    (0..u32::try_from(n).expect("module count exceeds u32::MAX")).map(ModuleId)
}

/// Iterator over all net ids `0..n`.
///
/// # Examples
///
/// ```
/// use mlpart_hypergraph::ids::net_ids;
///
/// let all: Vec<_> = net_ids(2).map(|e| e.index()).collect();
/// assert_eq!(all, vec![0, 1]);
/// ```
pub fn net_ids(n: usize) -> impl Iterator<Item = NetId> + Clone {
    (0..u32::try_from(n).expect("net count exceeds u32::MAX")).map(NetId)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn module_id_roundtrip() {
        let m = ModuleId::new(42);
        assert_eq!(m.index(), 42);
        assert_eq!(m.raw(), 42);
        assert_eq!(ModuleId::from(42u32), m);
        assert_eq!(u32::from(m), 42);
    }

    #[test]
    fn net_id_roundtrip() {
        let e = NetId::new(17);
        assert_eq!(e.index(), 17);
        assert_eq!(e.raw(), 17);
        assert_eq!(NetId::from(17u32), e);
        assert_eq!(u32::from(e), 17);
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(ModuleId::new(1) < ModuleId::new(2));
        assert!(NetId::new(0) < NetId::new(1));
    }

    #[test]
    fn display_forms() {
        assert_eq!(ModuleId::new(5).to_string(), "v5");
        assert_eq!(NetId::new(9).to_string(), "e9");
    }

    #[test]
    fn id_iterators_cover_range() {
        assert_eq!(module_ids(0).count(), 0);
        assert_eq!(module_ids(10).count(), 10);
        assert_eq!(net_ids(4).last(), Some(NetId::new(3)));
    }

    #[test]
    #[should_panic(expected = "module index exceeds u32::MAX")]
    fn module_id_overflow_panics() {
        let _ = ModuleId::new(u32::MAX as usize + 1);
    }
}
