//! Reading and writing netlists in the hMETIS `.hgr` text format.
//!
//! The paper's benchmarks circulated in netlist formats that hMETIS later
//! standardized; we support the hMETIS flavor because it is the lingua franca
//! of hypergraph partitioning:
//!
//! ```text
//! % comments start with '%'
//! <num_nets> <num_modules> [fmt]
//! <net 1 pins, 1-based module indices...>
//! ...
//! [one module weight per line if fmt is 10 or 11]
//! ```
//!
//! Format codes: `0`/absent = unweighted, `1` = net weights, `10` = module
//! weights, `11` = both. Net weights feed the weighted cut objective
//! (`1` everywhere reproduces the paper's unweighted cut).

use crate::error::{ParseFixError, ParseHgrError};
use crate::hypergraph::{Hypergraph, HypergraphBuilder};
use crate::ids::ModuleId;
use crate::partition::PartId;
use std::io::{BufRead, BufReader, Read, Write};

/// Parses a hypergraph from hMETIS `.hgr` text.
///
/// The reader can be anything implementing [`Read`]; pass `&mut reader` if
/// you need to keep using it afterwards.
///
/// # Errors
///
/// Returns a [`ParseHgrError`] describing the first malformed line, pin out
/// of range, or semantic violation encountered.
///
/// # Examples
///
/// ```
/// use mlpart_hypergraph::io::read_hgr;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let text = "% tiny\n3 4\n1 2\n2 3 4\n1 4\n";
/// let h = read_hgr(text.as_bytes())?;
/// assert_eq!(h.num_modules(), 4);
/// assert_eq!(h.num_nets(), 3);
/// # Ok(())
/// # }
/// ```
pub fn read_hgr<R: Read>(reader: R) -> Result<Hypergraph, ParseHgrError> {
    let buf = BufReader::new(reader);
    let mut lines = Vec::new();
    for line in buf.lines() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        lines.push(trimmed.to_owned());
    }
    let header = lines.first().ok_or_else(|| ParseHgrError::BadHeader {
        line: String::new(),
    })?;
    let mut head = header.split_whitespace();
    let (Some(nets_tok), Some(modules_tok)) = (head.next(), head.next()) else {
        return Err(ParseHgrError::BadHeader {
            line: header.clone(),
        });
    };
    let fmt_tok = head.next();
    if head.next().is_some() {
        return Err(ParseHgrError::BadHeader {
            line: header.clone(),
        });
    }
    let parse = |tok: &str, line_no: usize| -> Result<usize, ParseHgrError> {
        tok.parse::<usize>().map_err(|_| ParseHgrError::BadToken {
            line_no,
            token: tok.to_owned(),
        })
    };
    let num_nets = parse(nets_tok, 1)?;
    let num_modules = parse(modules_tok, 1)?;
    let fmt = match fmt_tok {
        Some(tok) => parse(tok, 1)? as u32,
        None => 0,
    };
    if !matches!(fmt, 0 | 1 | 10 | 11) {
        return Err(ParseHgrError::UnsupportedFormat { fmt });
    }
    let has_net_weights = fmt == 1 || fmt == 11;
    let has_module_weights = fmt == 10 || fmt == 11;

    if lines.len() - 1 < num_nets {
        return Err(ParseHgrError::TooFewNets {
            expected: num_nets,
            found: lines.len() - 1,
        });
    }

    let areas: Vec<u64> = if has_module_weights {
        let weight_lines = lines.get(1 + num_nets..).unwrap_or(&[]);
        if weight_lines.len() < num_modules {
            return Err(ParseHgrError::TooFewNets {
                expected: num_nets + num_modules,
                found: lines.len() - 1,
            });
        }
        let mut areas = Vec::with_capacity(num_modules);
        for (i, line) in weight_lines.iter().take(num_modules).enumerate() {
            let line_no = 2 + num_nets + i;
            let w = line.split_whitespace().next().unwrap_or("");
            areas.push(parse(w, line_no)? as u64);
        }
        areas
    } else {
        vec![1; num_modules]
    };

    let mut builder = HypergraphBuilder::new(areas);
    for (i, line) in lines.iter().skip(1).take(num_nets).enumerate() {
        let line_no = i + 2;
        let mut toks = line.split_whitespace();
        let weight = if has_net_weights {
            let w = toks.next().ok_or_else(|| ParseHgrError::BadToken {
                line_no,
                token: String::new(),
            })?;
            parse(w, line_no)? as u32
        } else {
            1
        };
        let mut pins = Vec::new();
        for tok in toks {
            let pin = parse(tok, line_no)?;
            if pin == 0 || pin > num_modules {
                return Err(ParseHgrError::PinOutOfRange {
                    line_no,
                    pin,
                    num_modules,
                });
            }
            pins.push(pin - 1);
        }
        if pins.is_empty() {
            return Err(ParseHgrError::EmptyNet { line_no });
        }
        builder
            .add_weighted_net(pins, weight)
            .map_err(ParseHgrError::Build)?;
    }
    // Strict validation for file-sourced netlists: a net listing more pins
    // than |V| can only be duplicate-laden corruption, which `build` would
    // otherwise merge away silently.
    builder.validate().map_err(ParseHgrError::Build)?;
    Ok(builder.build()?)
}

/// Writes a hypergraph in hMETIS `.hgr` format.
///
/// Module weights are emitted (fmt `10`) only when they are not all `1`.
///
/// # Errors
///
/// Propagates any I/O error from the writer. Pass `&mut writer` if you need
/// the writer afterwards.
pub fn write_hgr<W: Write>(h: &Hypergraph, mut writer: W) -> std::io::Result<()> {
    let mod_weighted = h.areas().iter().any(|&a| a != 1);
    let net_weighted = h.net_weights().iter().any(|&w| w != 1);
    let fmt = match (net_weighted, mod_weighted) {
        (false, false) => None,
        (true, false) => Some(1),
        (false, true) => Some(10),
        (true, true) => Some(11),
    };
    match fmt {
        None => writeln!(writer, "{} {}", h.num_nets(), h.num_modules())?,
        Some(code) => writeln!(writer, "{} {} {code}", h.num_nets(), h.num_modules())?,
    }
    for e in h.net_ids() {
        let mut first = true;
        if net_weighted {
            write!(writer, "{}", h.net_weight(e))?;
            first = false;
        }
        for &v in h.pins(e) {
            if first {
                write!(writer, "{}", v.index() + 1)?;
                first = false;
            } else {
                write!(writer, " {}", v.index() + 1)?;
            }
        }
        writeln!(writer)?;
    }
    if mod_weighted {
        for v in h.modules() {
            writeln!(writer, "{}", h.area(v))?;
        }
    }
    Ok(())
}

/// Writes a partition as text: one part id per line, dense by module index.
/// The companion of [`read_partition`]; compatible with hMETIS' `.part`
/// output files.
///
/// # Errors
///
/// Propagates any I/O error from the writer.
pub fn write_partition<W: Write>(p: &crate::Partition, mut writer: W) -> std::io::Result<()> {
    for &part in p.assignment() {
        writeln!(writer, "{part}")?;
    }
    Ok(())
}

/// Reads a partition written by [`write_partition`] (or hMETIS) for
/// hypergraph `h`: one part id per line.
///
/// `k` is inferred as `max(part id) + 1`.
///
/// # Errors
///
/// Returns [`ParseHgrError`] when a line is not an integer or the line count
/// does not match the module count.
pub fn read_partition<R: Read>(
    h: &crate::Hypergraph,
    reader: R,
) -> Result<crate::Partition, ParseHgrError> {
    let buf = BufReader::new(reader);
    let mut parts: Vec<u32> = Vec::with_capacity(h.num_modules());
    for (i, line) in buf.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        let part = trimmed
            .parse::<u32>()
            .map_err(|_| ParseHgrError::BadToken {
                line_no: i + 1,
                token: trimmed.to_owned(),
            })?;
        parts.push(part);
    }
    if parts.len() != h.num_modules() {
        return Err(ParseHgrError::TooFewNets {
            expected: h.num_modules(),
            found: parts.len(),
        });
    }
    let max_part = parts.iter().copied().max().unwrap_or(0);
    let k = max_part
        .checked_add(1)
        .ok_or_else(|| ParseHgrError::BadPartition {
            detail: format!("part id {max_part} overflows the inferred part count"),
        })?;
    crate::Partition::from_assignment(h, k, parts).ok_or_else(|| ParseHgrError::BadPartition {
        detail: "assignment was rejected by the partition constructor".to_string(),
    })
}

/// Reads an hMETIS fixed-vertex (`.fix`) file — the format Coloquinte
/// writes beside its `.hgr` exports: exactly one line per module holding
/// the 0-based part the module is pinned to, or `-1` for a free module.
/// Comment lines (`%`) and blank lines are skipped, matching the `.hgr`
/// reader's conventions.
///
/// `num_modules` is the companion netlist's module count (one line per
/// module is required); `k` bounds the legal part ids.
///
/// Returns the fixed modules as `(module, part)` pairs in module order —
/// free (`-1`) lines contribute nothing.
///
/// # Errors
///
/// [`ParseFixError`] on I/O failure, a non-integer line, a part id outside
/// `-1..k`, or a line count different from `num_modules`.
///
/// # Examples
///
/// ```
/// use mlpart_hypergraph::io::read_fix;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let fixed = read_fix("% pins\n1\n-1\n0\n-1\n".as_bytes(), 4, 2)?;
/// assert_eq!(fixed.len(), 2);
/// assert_eq!(fixed[0].0.index(), 0);
/// assert_eq!(fixed[0].1, 1);
/// # Ok(())
/// # }
/// ```
pub fn read_fix<R: Read>(
    reader: R,
    num_modules: usize,
    k: u32,
) -> Result<Vec<(ModuleId, PartId)>, ParseFixError> {
    let buf = BufReader::new(reader);
    let mut fixed = Vec::new();
    let mut module = 0usize;
    for (i, line) in buf.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        let line_no = i + 1;
        let part = trimmed
            .parse::<i64>()
            .map_err(|_| ParseFixError::BadToken {
                line_no,
                token: trimmed.to_owned(),
            })?;
        if part < -1 || part >= i64::from(k) {
            return Err(ParseFixError::BadPartId { line_no, part, k });
        }
        // Surplus lines are a count error, not a silent truncation; report
        // after the loop so `found` is the true line count.
        if module < num_modules && part >= 0 {
            fixed.push((ModuleId::new(module), part as PartId));
        }
        module += 1;
    }
    if module != num_modules {
        return Err(ParseFixError::WrongLineCount {
            expected: num_modules,
            found: module,
        });
    }
    Ok(fixed)
}

/// Writes a fixed-vertex file in the format [`read_fix`] parses: one line
/// per module, `-1` for free modules, the pinned part otherwise.
///
/// `fixed` may be in any order; duplicate modules keep the last assignment.
///
/// # Errors
///
/// Propagates any I/O error from the writer; a fixed module index
/// `>= num_modules` is reported as [`std::io::ErrorKind::InvalidInput`].
pub fn write_fix<W: Write>(
    fixed: &[(ModuleId, PartId)],
    num_modules: usize,
    mut writer: W,
) -> std::io::Result<()> {
    let mut line: Vec<i64> = vec![-1; num_modules];
    for &(v, p) in fixed {
        let slot = line.get_mut(v.index()).ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("fixed module {} out of range (0..{num_modules})", v.index()),
            )
        })?;
        *slot = i64::from(p);
    }
    for part in line {
        writeln!(writer, "{part}")?;
    }
    Ok(())
}

/// Removes the temp file on drop unless the rename committed it — a crash
/// or error between write and rename never leaves a stray `.tmp` behind
/// (when the process survives to unwind; a SIGKILL leaves the temp, which
/// is still harmless because readers only ever see the final path).
struct TempGuard<'a> {
    path: &'a std::path::Path,
    committed: bool,
}

impl Drop for TempGuard<'_> {
    fn drop(&mut self) {
        if !self.committed {
            let _ = std::fs::remove_file(self.path);
        }
    }
}

/// Atomically replaces `path` with whatever `write` produces: the content
/// goes to `<path>.tmp.<pid>`, is flushed and synced, and only then renamed
/// over `path`. Readers therefore observe either the old file or the
/// complete new one — never a torn intermediate — no matter when the writer
/// dies. Every artifact the workspace emits (partitions, run reports,
/// traces, bench JSON, checkpoints) goes through this helper.
///
/// # Errors
///
/// Any I/O error from creating, writing, syncing, or renaming the temp
/// file; on error the temp file is removed and `path` is untouched.
pub fn write_atomic_with<P, F>(path: P, write: F) -> std::io::Result<()>
where
    P: AsRef<std::path::Path>,
    F: FnOnce(&mut dyn Write) -> std::io::Result<()>,
{
    let path = path.as_ref();
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".tmp.{}", std::process::id()));
    let tmp = std::path::PathBuf::from(tmp);
    let mut guard = TempGuard {
        path: &tmp,
        committed: false,
    };
    {
        let file = std::fs::File::create(&tmp)?;
        let mut buf = std::io::BufWriter::new(file);
        write(&mut buf)?;
        let file = buf.into_inner().map_err(|e| e.into_error())?;
        file.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    guard.committed = true;
    Ok(())
}

/// [`write_atomic_with`] for callers that already hold the full content.
///
/// # Errors
///
/// Any I/O error from the underlying atomic write; `path` is untouched on
/// error.
pub fn write_atomic<P: AsRef<std::path::Path>>(path: P, bytes: &[u8]) -> std::io::Result<()> {
    write_atomic_with(path, |w| w.write_all(bytes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hypergraph::HypergraphBuilder;
    use crate::ids::{ModuleId, NetId};

    #[test]
    fn roundtrip_unweighted() {
        let mut b = HypergraphBuilder::with_unit_areas(4);
        b.add_net([0, 1, 2]).unwrap();
        b.add_net([2, 3]).unwrap();
        let h = b.build().unwrap();
        let mut out = Vec::new();
        write_hgr(&h, &mut out).unwrap();
        let h2 = read_hgr(&out[..]).unwrap();
        assert_eq!(h, h2);
    }

    #[test]
    fn roundtrip_weighted() {
        let mut b = HypergraphBuilder::new(vec![3, 1, 9]);
        b.add_net([0, 1]).unwrap();
        b.add_net([1, 2]).unwrap();
        let h = b.build().unwrap();
        let mut out = Vec::new();
        write_hgr(&h, &mut out).unwrap();
        assert!(String::from_utf8_lossy(&out).starts_with("2 3 10"));
        let h2 = read_hgr(&out[..]).unwrap();
        assert_eq!(h, h2);
    }

    #[test]
    fn parses_comments_and_blank_lines() {
        let text = "% header comment\n\n2 3\n% net comment\n1 2\n2 3\n";
        let h = read_hgr(text.as_bytes()).unwrap();
        assert_eq!(h.num_nets(), 2);
        assert_eq!(h.pins(NetId::new(1)), &[ModuleId::new(1), ModuleId::new(2)]);
    }

    #[test]
    fn parses_net_weights_format() {
        // fmt=1: first token of each net line is the net weight.
        let text = "2 3 1\n5 1 2\n9 2 3\n";
        let h = read_hgr(text.as_bytes()).unwrap();
        assert_eq!(h.num_nets(), 2);
        assert_eq!(h.net_size(NetId::new(0)), 2);
        assert_eq!(h.net_weight(NetId::new(0)), 5);
        assert_eq!(h.net_weight(NetId::new(1)), 9);
    }

    #[test]
    fn roundtrip_net_weighted() {
        let mut b = HypergraphBuilder::with_unit_areas(3);
        b.add_weighted_net([0, 1], 4).unwrap();
        b.add_net([1, 2]).unwrap();
        let h = b.build().unwrap();
        let mut out = Vec::new();
        write_hgr(&h, &mut out).unwrap();
        assert!(String::from_utf8_lossy(&out).starts_with("2 3 1"));
        let h2 = read_hgr(&out[..]).unwrap();
        assert_eq!(h, h2);
    }

    #[test]
    fn roundtrip_doubly_weighted() {
        let mut b = HypergraphBuilder::new(vec![2, 3, 4]);
        b.add_weighted_net([0, 1, 2], 6).unwrap();
        b.add_net([0, 2]).unwrap();
        let h = b.build().unwrap();
        let mut out = Vec::new();
        write_hgr(&h, &mut out).unwrap();
        assert!(String::from_utf8_lossy(&out).starts_with("2 3 11"));
        let h2 = read_hgr(&out[..]).unwrap();
        assert_eq!(h, h2);
    }

    #[test]
    fn rejects_bad_header() {
        assert!(matches!(
            read_hgr("one two\n".as_bytes()),
            Err(ParseHgrError::BadToken { .. })
        ));
        assert!(matches!(
            read_hgr("1 2 3 4\n1 2\n".as_bytes()),
            Err(ParseHgrError::BadHeader { .. })
        ));
        assert!(matches!(
            read_hgr("".as_bytes()),
            Err(ParseHgrError::BadHeader { .. })
        ));
        assert!(matches!(
            read_hgr("1\n1 2\n".as_bytes()),
            Err(ParseHgrError::BadHeader { .. })
        ));
    }

    #[test]
    fn rejects_pin_out_of_range() {
        let err = read_hgr("1 2\n1 3\n".as_bytes()).unwrap_err();
        match err {
            ParseHgrError::PinOutOfRange {
                pin, num_modules, ..
            } => {
                assert_eq!(pin, 3);
                assert_eq!(num_modules, 2);
            }
            other => panic!("unexpected error: {other}"),
        }
        // Pin 0 is also invalid (1-based format).
        assert!(matches!(
            read_hgr("1 2\n0 1\n".as_bytes()),
            Err(ParseHgrError::PinOutOfRange { .. })
        ));
    }

    #[test]
    fn rejects_missing_nets() {
        assert!(matches!(
            read_hgr("3 4\n1 2\n".as_bytes()),
            Err(ParseHgrError::TooFewNets {
                expected: 3,
                found: 1
            })
        ));
    }

    #[test]
    fn rejects_unsupported_format() {
        assert!(matches!(
            read_hgr("1 2 7\n1 2\n".as_bytes()),
            Err(ParseHgrError::UnsupportedFormat { fmt: 7 })
        ));
    }

    #[test]
    fn rejects_missing_module_weights() {
        assert!(matches!(
            read_hgr("1 3 10\n1 2\n4\n".as_bytes()),
            Err(ParseHgrError::TooFewNets { .. })
        ));
    }

    #[test]
    fn partition_roundtrip() {
        use crate::Partition;
        let mut b = HypergraphBuilder::with_unit_areas(4);
        b.add_net([0, 1]).unwrap();
        b.add_net([2, 3]).unwrap();
        let h = b.build().unwrap();
        let p = Partition::from_assignment(&h, 3, vec![0, 2, 1, 0]).unwrap();
        let mut out = Vec::new();
        write_partition(&p, &mut out).unwrap();
        let p2 = read_partition(&h, &out[..]).unwrap();
        assert_eq!(p.assignment(), p2.assignment());
        assert_eq!(p2.k(), 3);
    }

    #[test]
    fn partition_read_rejects_bad_input() {
        let mut b = HypergraphBuilder::with_unit_areas(3);
        b.add_net([0, 1]).unwrap();
        let h = b.build().unwrap();
        assert!(matches!(
            read_partition(&h, "0\nx\n1\n".as_bytes()),
            Err(ParseHgrError::BadToken { .. })
        ));
        assert!(matches!(
            read_partition(&h, "0\n1\n".as_bytes()),
            Err(ParseHgrError::TooFewNets { .. })
        ));
        // Sparse part ids are legal: part 1 is simply empty.
        let sparse = read_partition(&h, "0\n2\n0\n".as_bytes()).unwrap();
        assert_eq!(sparse.k(), 3);
        assert_eq!(sparse.part_sizes(), vec![2, 0, 1]);
    }

    #[test]
    fn module_weights_parsed() {
        let text = "1 3 10\n1 2\n4\n5\n6\n";
        let h = read_hgr(text.as_bytes()).unwrap();
        assert_eq!(h.total_area(), 15);
        assert_eq!(h.area(ModuleId::new(2)), 6);
    }

    fn scratch(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("mlpart-io-{}-{name}", std::process::id()))
    }

    #[test]
    fn write_atomic_replaces_whole_file() {
        let path = scratch("atomic-ok");
        std::fs::write(&path, "old content").unwrap();
        write_atomic(&path, b"new content").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "new content");
        // No temp litter next to the destination.
        let dir = path.parent().unwrap();
        let stem = path.file_name().unwrap().to_string_lossy().to_string();
        let stray = std::fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .any(|e| {
                let n = e.file_name().to_string_lossy().to_string();
                n.starts_with(&stem) && n.contains(".tmp.")
            });
        assert!(!stray, "temp file survived a committed write");
        std::fs::remove_file(&path).unwrap();
    }

    /// A failure *during* the write (between opening the temp and the
    /// rename) must leave the destination byte-identical to before and
    /// clean up the temp file.
    #[test]
    fn write_atomic_failure_leaves_destination_untouched() {
        let path = scratch("atomic-fail");
        std::fs::write(&path, "precious").unwrap();
        let err = write_atomic_with(&path, |w| {
            w.write_all(b"half a file")?;
            Err(std::io::Error::other("injected failure before rename"))
        })
        .expect_err("write failure propagates");
        assert_eq!(err.to_string(), "injected failure before rename");
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "precious");
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(format!(".tmp.{}", std::process::id()));
        assert!(
            !std::path::Path::new(&tmp).exists(),
            "temp file not cleaned up"
        );
        std::fs::remove_file(&path).unwrap();
    }

    /// A process killed after fully writing the temp but before the rename
    /// leaves a stray temp — the destination must still be the old version
    /// and a subsequent atomic write must succeed over the litter.
    #[test]
    fn write_atomic_survives_a_kill_between_write_and_rename() {
        let path = scratch("atomic-kill");
        std::fs::write(&path, "v1").unwrap();
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(format!(".tmp.{}", std::process::id()));
        // Simulate the kill: the temp exists, the rename never happened.
        std::fs::write(&tmp, "v2 complete but unrenamed").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "v1");
        // Recovery: the next atomic write wins regardless of the litter.
        write_atomic(&path, b"v3").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "v3");
        let _ = std::fs::remove_file(&tmp);
        std::fs::remove_file(&path).unwrap();
    }
}
