//! Netlist hypergraph data structures for multilevel circuit partitioning.
//!
//! This crate is the foundation of the `mlpart` workspace, a from-scratch
//! reproduction of *Multilevel Circuit Partitioning* (Alpert, Huang, Kahng —
//! DAC 1997). It provides:
//!
//! * [`Hypergraph`] — an immutable CSR netlist hypergraph with module areas,
//!   built via [`HypergraphBuilder`];
//! * [`Partition`] — k-way module assignments with incrementally maintained
//!   part areas, plus the paper's balance bounds ([`BipartBalance`],
//!   [`KwayBalance`], §III-B);
//! * [`metrics`] — cut size and the statistics columns of the paper's tables;
//! * [`io`] — hMETIS `.hgr` reading/writing;
//! * [`rng`] — seeded randomness so every experiment is reproducible.
//!
//! # Examples
//!
//! Build a small netlist, cut it, and measure:
//!
//! ```
//! use mlpart_hypergraph::{HypergraphBuilder, Partition, metrics};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = HypergraphBuilder::with_unit_areas(6);
//! b.add_net([0, 1, 2])?;
//! b.add_net([3, 4, 5])?;
//! b.add_net([2, 3])?;
//! let h = b.build()?;
//!
//! let p = Partition::from_assignment(&h, 2, vec![0, 0, 0, 1, 1, 1]).expect("valid");
//! assert_eq!(metrics::cut(&h, &p), 1); // only net {2,3} is cut
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod constraints;
pub mod error;
pub mod hypergraph;
pub mod ids;
pub mod io;
pub mod metrics;
pub mod netd;
pub mod partition;
pub mod rng;
pub mod stats;
pub mod transform;

pub use constraints::{
    adapted_epsilon, Constraints, ConstraintsError, PartBounds, DEFAULT_EPSILON,
};
pub use error::{BuildHypergraphError, ParseFixError, ParseHgrError};
pub use hypergraph::{Hypergraph, HypergraphBuilder};
pub use ids::{ModuleId, NetId};
pub use metrics::CutStats;
pub use partition::{BipartBalance, KwayBalance, PartId, Partition};
