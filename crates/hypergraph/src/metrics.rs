//! Cut-size and quality metrics.
//!
//! The paper's objective (§I): the *cut* of a bipartitioning `P = {X, Y}` is
//! the number of nets which contain modules in both `X` and `Y`. For k-way
//! partitions we provide both the natural generalization (number of nets
//! spanning ≥ 2 parts, the "net cut") and the *sum of cluster degrees* used
//! by the paper's quadrisection gain computation (§III-C): each net
//! contributes `(number of parts it spans) − 1`.

use crate::hypergraph::Hypergraph;
use crate::ids::NetId;
use crate::partition::Partition;

/// Number of distinct parts spanned by net `e` under partition `p`.
///
/// # Examples
///
/// ```
/// use mlpart_hypergraph::{HypergraphBuilder, Partition, NetId, metrics};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = HypergraphBuilder::with_unit_areas(3);
/// b.add_net([0, 1, 2])?;
/// let h = b.build()?;
/// let p = Partition::from_assignment(&h, 3, vec![0, 1, 1]).expect("valid");
/// assert_eq!(metrics::net_span(&h, &p, NetId::new(0)), 2);
/// # Ok(())
/// # }
/// ```
pub fn net_span(h: &Hypergraph, p: &Partition, e: NetId) -> u32 {
    let mut seen: u64 = 0; // bitset; fine for k <= 64
    let mut overflow: Vec<u32> = Vec::new();
    let mut count = 0u32;
    for &v in h.pins(e) {
        let part = p.part(v);
        if part < 64 {
            if seen & (1u64 << part) == 0 {
                seen |= 1u64 << part;
                count += 1;
            }
        } else if !overflow.contains(&part) {
            overflow.push(part);
            count += 1;
        }
    }
    count
}

/// `true` if net `e` is cut (spans more than one part).
pub fn is_net_cut(h: &Hypergraph, p: &Partition, e: NetId) -> bool {
    let pins = h.pins(e);
    let first = p.part(pins[0]);
    pins[1..].iter().any(|&v| p.part(v) != first)
}

/// The cut size: total weight of nets spanning more than one part. For
/// plain (weight-1) netlists this is the number of cut nets — exactly the
/// paper's `cut(P)` for `k = 2`.
pub fn cut(h: &Hypergraph, p: &Partition) -> u64 {
    h.net_ids()
        .filter(|&e| is_net_cut(h, p, e))
        .map(|e| h.net_weight(e) as u64)
        .sum()
}

/// Sum of cluster degrees: `Σ_e (span(e) − 1)`.
///
/// Equal to the cut for `k = 2`; for k-way this is the gain objective the
/// paper reports quadrisection results with ("sum of degrees gain
/// computation", §III-C). Minimizing it discourages nets from spreading over
/// many parts, not merely from being cut.
pub fn sum_of_spans_minus_one(h: &Hypergraph, p: &Partition) -> u64 {
    h.net_ids()
        .map(|e| h.net_weight(e) as u64 * (net_span(h, p, e) as u64).saturating_sub(1))
        .sum()
}

/// Cut computed only over nets with at most `max_net_size` pins.
///
/// `FMPartition` ignores nets with more than 200 modules during refinement
/// (§III-B); this helper lets tests verify the engine's *internal* objective,
/// while [`cut`] ("these nets are re-inserted when measuring solution
/// quality") remains the reported metric.
pub fn cut_with_net_size_limit(h: &Hypergraph, p: &Partition, max_net_size: usize) -> u64 {
    h.net_ids()
        .filter(|&e| h.net_size(e) <= max_net_size && is_net_cut(h, p, e))
        .map(|e| h.net_weight(e) as u64)
        .sum()
}

/// Summary statistics over a sample of cut values: the min/avg/std columns of
/// the paper's tables.
///
/// # Examples
///
/// ```
/// use mlpart_hypergraph::metrics::CutStats;
///
/// let stats = CutStats::from_samples(&[10, 20, 30]);
/// assert_eq!(stats.min, 10);
/// assert_eq!(stats.max, 30);
/// assert!((stats.avg - 20.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CutStats {
    /// Smallest observed cut.
    pub min: u64,
    /// Largest observed cut.
    pub max: u64,
    /// Mean cut.
    pub avg: f64,
    /// Population standard deviation (the paper reports σ over its 100 runs).
    pub std: f64,
    /// Number of samples.
    pub runs: usize,
}

impl CutStats {
    /// Computes statistics over a non-empty sample.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn from_samples(samples: &[u64]) -> Self {
        assert!(!samples.is_empty(), "need at least one sample");
        let mut min = u64::MAX;
        let mut max = 0u64;
        for &s in samples {
            min = min.min(s);
            max = max.max(s);
        }
        let n = samples.len() as f64;
        let avg = samples.iter().map(|&s| s as f64).sum::<f64>() / n;
        let var = samples
            .iter()
            .map(|&s| {
                let d = s as f64 - avg;
                d * d
            })
            .sum::<f64>()
            / n;
        CutStats {
            min,
            max,
            avg,
            std: var.sqrt(),
            runs: samples.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hypergraph::HypergraphBuilder;

    fn h4() -> Hypergraph {
        // nets: {0,1}, {1,2}, {2,3}, {0,1,2,3}
        let mut b = HypergraphBuilder::with_unit_areas(4);
        b.add_net([0, 1]).unwrap();
        b.add_net([1, 2]).unwrap();
        b.add_net([2, 3]).unwrap();
        b.add_net([0, 1, 2, 3]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn bipartition_cut() {
        let h = h4();
        let p = Partition::from_assignment(&h, 2, vec![0, 0, 1, 1]).unwrap();
        // Cut nets: {1,2} and the 4-pin net.
        assert_eq!(cut(&h, &p), 2);
        assert!(!is_net_cut(&h, &p, NetId::new(0)));
        assert!(is_net_cut(&h, &p, NetId::new(1)));
    }

    #[test]
    fn cut_equals_spans_minus_one_for_k2() {
        let h = h4();
        let p = Partition::from_assignment(&h, 2, vec![0, 1, 0, 1]).unwrap();
        assert_eq!(cut(&h, &p), sum_of_spans_minus_one(&h, &p));
    }

    #[test]
    fn kway_span_and_degree_sum() {
        let h = h4();
        let p = Partition::from_assignment(&h, 4, vec![0, 1, 2, 3]).unwrap();
        assert_eq!(net_span(&h, &p, NetId::new(3)), 4);
        // Every 2-pin net spans 2 parts; sum = 1+1+1+3 = 6; cut = 4 nets.
        assert_eq!(sum_of_spans_minus_one(&h, &p), 6);
        assert_eq!(cut(&h, &p), 4);
    }

    #[test]
    fn zero_cut_when_uncut() {
        let h = h4();
        let p = Partition::from_assignment(&h, 2, vec![0, 0, 0, 0]).unwrap();
        assert_eq!(cut(&h, &p), 0);
        assert_eq!(sum_of_spans_minus_one(&h, &p), 0);
    }

    #[test]
    fn net_size_limit_excludes_large_nets() {
        let h = h4();
        let p = Partition::from_assignment(&h, 2, vec![0, 0, 1, 1]).unwrap();
        assert_eq!(cut_with_net_size_limit(&h, &p, 3), 1); // only {1,2}
        assert_eq!(cut_with_net_size_limit(&h, &p, 4), 2);
    }

    #[test]
    fn stats_single_sample() {
        let s = CutStats::from_samples(&[7]);
        assert_eq!(s.min, 7);
        assert_eq!(s.max, 7);
        assert_eq!(s.avg, 7.0);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.runs, 1);
    }

    #[test]
    fn stats_known_std() {
        // Samples 2, 4, 4, 4, 5, 5, 7, 9: mean 5, population std 2.
        let s = CutStats::from_samples(&[2, 4, 4, 4, 5, 5, 7, 9]);
        assert!((s.avg - 5.0).abs() < 1e-12);
        assert!((s.std - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn stats_empty_panics() {
        let _ = CutStats::from_samples(&[]);
    }

    #[test]
    fn weighted_cut_sums_weights() {
        let mut b = HypergraphBuilder::with_unit_areas(4);
        b.add_weighted_net([0, 1], 5).unwrap();
        b.add_weighted_net([2, 3], 7).unwrap();
        b.add_weighted_net([1, 2], 3).unwrap();
        let h = b.build().unwrap();
        let p = Partition::from_assignment(&h, 2, vec![0, 0, 1, 1]).unwrap();
        assert_eq!(cut(&h, &p), 3, "only the weight-3 net is cut");
        let p2 = Partition::from_assignment(&h, 2, vec![0, 1, 0, 1]).unwrap();
        assert_eq!(cut(&h, &p2), 15, "all three nets cut: 5+7+3");
        assert_eq!(sum_of_spans_minus_one(&h, &p2), 15);
    }

    #[test]
    fn high_part_ids_use_overflow_path() {
        // k = 70 exercises the >64 bitset overflow branch in net_span.
        let mut b = HypergraphBuilder::with_unit_areas(70);
        b.add_net((0..70).collect::<Vec<_>>()).unwrap();
        let h = b.build().unwrap();
        let p = Partition::from_assignment(&h, 70, (0..70u32).collect()).unwrap();
        assert_eq!(net_span(&h, &p, NetId::new(0)), 70);
    }
}
