//! Reading the ACM/SIGDA "netD" benchmark format (`.net` / `.netD` plus the
//! companion `.are` area file).
//!
//! The paper's 23 benchmark circuits circulated in this format via the CAD
//! Benchmarking Laboratory. We cannot redistribute the files, but users who
//! hold them can load them directly:
//!
//! ```text
//! 0                      <- magic/ignored
//! <num_pins>
//! <num_nets>
//! <num_modules>
//! <pad_offset>           <- cells are a0..a<pad_offset>; pads p1..pN follow
//! a12  s I               <- pin lines: name, 's' starts a net, 'l' continues
//! p3   l O
//! ...
//! ```
//!
//! Module naming: a cell `a<i>` has dense index `i`; a pad `p<j>` (1-based)
//! has dense index `pad_offset + j`. The `.are` file lists `<name> <area>`
//! pairs; without it all areas are 1 (the paper's experimental setting).

use crate::error::ParseHgrError;
use crate::hypergraph::{Hypergraph, HypergraphBuilder};
use std::io::{BufRead, BufReader, Read};

/// Parses a module name (`a<i>` cell or `p<j>` pad) into its dense index.
fn parse_name(
    name: &str,
    pad_offset: usize,
    num_modules: usize,
    line_no: usize,
) -> Result<usize, ParseHgrError> {
    let bad = || ParseHgrError::BadToken {
        line_no,
        token: name.to_owned(),
    };
    let (kind, digits) = name.split_at(1);
    let number: usize = digits.parse().map_err(|_| bad())?;
    let index = match kind {
        "a" => number,
        "p" => {
            if number == 0 {
                return Err(bad());
            }
            pad_offset + number
        }
        _ => return Err(bad()),
    };
    if index >= num_modules {
        return Err(ParseHgrError::PinOutOfRange {
            line_no,
            pin: index,
            num_modules,
        });
    }
    Ok(index)
}

/// Parses a netD-format netlist. All module areas are 1; combine with
/// [`read_are`] to apply a `.are` area file.
///
/// # Errors
///
/// Returns [`ParseHgrError`] for malformed headers, unknown name forms,
/// out-of-range indices, or net-count mismatches.
///
/// # Examples
///
/// ```
/// use mlpart_hypergraph::netd::read_netd;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let text = "0\n5\n2\n4\n1\na0 s I\na1 l O\np1 l B\na1 s O\np2 l I\n";
/// let h = read_netd(text.as_bytes())?;
/// assert_eq!(h.num_modules(), 4);
/// assert_eq!(h.num_nets(), 2);
/// # Ok(())
/// # }
/// ```
pub fn read_netd<R: Read>(reader: R) -> Result<Hypergraph, ParseHgrError> {
    let buf = BufReader::new(reader);
    let mut lines = buf.lines().enumerate();
    let mut next_line = || -> Result<(usize, String), ParseHgrError> {
        loop {
            match lines.next() {
                None => {
                    return Err(ParseHgrError::BadHeader {
                        line: "unexpected end of file".to_owned(),
                    })
                }
                Some((i, line)) => {
                    let line = line?;
                    if !line.trim().is_empty() {
                        return Ok((i + 1, line));
                    }
                }
            }
        }
    };
    let parse_header = |(line_no, line): (usize, String)| -> Result<usize, ParseHgrError> {
        line.trim()
            .parse::<usize>()
            .map_err(|_| ParseHgrError::BadToken {
                line_no,
                token: line.trim().to_owned(),
            })
    };
    let _magic = parse_header(next_line()?)?;
    let num_pins = parse_header(next_line()?)?;
    let num_nets = parse_header(next_line()?)?;
    let num_modules = parse_header(next_line()?)?;
    let pad_offset = parse_header(next_line()?)?;

    let mut builder = HypergraphBuilder::with_unit_areas(num_modules);
    let mut current: Vec<usize> = Vec::new();
    let mut nets_seen = 0usize;
    let mut pins_seen = 0usize;
    for _ in 0..num_pins {
        let (line_no, line) = next_line()?;
        let mut toks = line.split_whitespace();
        let name = toks.next().ok_or_else(|| ParseHgrError::BadToken {
            line_no,
            token: line.clone(),
        })?;
        let marker = toks.next().ok_or_else(|| ParseHgrError::BadToken {
            line_no,
            token: line.clone(),
        })?;
        let index = parse_name(name, pad_offset, num_modules, line_no)?;
        match marker {
            "s" => {
                if !current.is_empty() {
                    builder
                        .add_net(current.drain(..))
                        .map_err(ParseHgrError::Build)?;
                    nets_seen += 1;
                }
                current.push(index);
            }
            "l" => {
                if current.is_empty() {
                    return Err(ParseHgrError::BadToken {
                        line_no,
                        token: "continuation pin before any net start".to_owned(),
                    });
                }
                current.push(index);
            }
            other => {
                return Err(ParseHgrError::BadToken {
                    line_no,
                    token: other.to_owned(),
                })
            }
        }
        pins_seen += 1;
    }
    if !current.is_empty() {
        builder
            .add_net(current.drain(..))
            .map_err(ParseHgrError::Build)?;
        nets_seen += 1;
    }
    if nets_seen != num_nets {
        return Err(ParseHgrError::TooFewNets {
            expected: num_nets,
            found: nets_seen,
        });
    }
    debug_assert_eq!(pins_seen, num_pins);
    Ok(builder.build()?)
}

/// Parses a `.are` area file (`<name> <area>` per line) into a dense area
/// vector for a netlist with the given `pad_offset` and module count.
/// Modules absent from the file keep area 1.
///
/// # Errors
///
/// Returns [`ParseHgrError`] for unparsable names/areas or out-of-range
/// modules.
pub fn read_are<R: Read>(
    reader: R,
    num_modules: usize,
    pad_offset: usize,
) -> Result<Vec<u64>, ParseHgrError> {
    let buf = BufReader::new(reader);
    let mut areas = vec![1u64; num_modules];
    for (i, line) in buf.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let line_no = i + 1;
        let mut toks = trimmed.split_whitespace();
        let name = toks.next().ok_or_else(|| ParseHgrError::BadToken {
            line_no,
            token: trimmed.to_owned(),
        })?;
        let area_tok = toks.next().ok_or_else(|| ParseHgrError::BadToken {
            line_no,
            token: trimmed.to_owned(),
        })?;
        let area: u64 = area_tok.parse().map_err(|_| ParseHgrError::BadToken {
            line_no,
            token: area_tok.to_owned(),
        })?;
        let index = parse_name(name, pad_offset, num_modules, line_no)?;
        areas[index] = area.max(1);
    }
    Ok(areas)
}

/// Convenience: parse a netD netlist and a matching `.are` file together.
///
/// # Errors
///
/// As [`read_netd`] / [`read_are`]. The rebuilt netlist re-validates areas.
pub fn read_netd_with_areas<R1: Read, R2: Read>(
    net_reader: R1,
    are_reader: R2,
    pad_offset: usize,
) -> Result<Hypergraph, ParseHgrError> {
    let unweighted = read_netd(net_reader)?;
    let areas = read_are(are_reader, unweighted.num_modules(), pad_offset)?;
    let mut builder = HypergraphBuilder::new(areas);
    for e in unweighted.net_ids() {
        builder
            .add_net(unweighted.pins(e).iter().map(|v| v.index()))
            .map_err(ParseHgrError::Build)?;
    }
    Ok(builder.build()?)
}

/// Names a dense module index back in netD convention (`a<i>` or `p<j>`).
pub fn module_name(index: usize, pad_offset: usize) -> String {
    if index <= pad_offset {
        format!("a{index}")
    } else {
        format!("p{}", index - pad_offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ModuleId, NetId};

    const SAMPLE: &str = "0\n7\n3\n5\n2\n\
a0 s I\na1 l O\np1 l B\n\
a1 s O\np2 l I\n\
a2 s B\na0 l I\n";

    #[test]
    fn parses_sample() {
        let h = read_netd(SAMPLE.as_bytes()).unwrap();
        assert_eq!(h.num_modules(), 5);
        assert_eq!(h.num_nets(), 3);
        assert_eq!(h.num_pins(), 7);
        // Net 0 = {a0, a1, p1} = {0, 1, 3}.
        assert_eq!(
            h.pins(NetId::new(0)),
            &[ModuleId::new(0), ModuleId::new(1), ModuleId::new(3)]
        );
        // Net 1 = {a1, p2} = {1, 4}.
        assert_eq!(h.pins(NetId::new(1)), &[ModuleId::new(1), ModuleId::new(4)]);
    }

    #[test]
    fn pad_indexing_follows_offset() {
        // pad_offset = 2 means cells a0..a2 and pads p1 -> 3, p2 -> 4.
        assert_eq!(parse_name("a2", 2, 5, 1).unwrap(), 2);
        assert_eq!(parse_name("p1", 2, 5, 1).unwrap(), 3);
        assert_eq!(parse_name("p2", 2, 5, 1).unwrap(), 4);
        assert!(parse_name("p0", 2, 5, 1).is_err());
        assert!(parse_name("p3", 2, 5, 1).is_err(), "index 5 out of range");
        assert!(parse_name("x1", 2, 5, 1).is_err());
        assert!(parse_name("a9", 2, 5, 1).is_err());
    }

    #[test]
    fn rejects_truncated_and_malformed() {
        assert!(read_netd("0\n5\n2\n".as_bytes()).is_err());
        // Continuation before any start.
        assert!(read_netd("0\n1\n1\n2\n0\na0 l I\n".as_bytes()).is_err());
        // Bad marker.
        assert!(read_netd("0\n1\n1\n2\n0\na0 x I\n".as_bytes()).is_err());
        // Net count mismatch (header claims 5 nets).
        assert!(matches!(
            read_netd("0\n2\n5\n2\n0\na0 s I\na1 l O\n".as_bytes()),
            Err(ParseHgrError::TooFewNets { expected: 5, .. })
        ));
    }

    #[test]
    fn are_file_applies_areas() {
        let h = read_netd(SAMPLE.as_bytes()).unwrap();
        let are = "a0 4\np1 9\n";
        let areas = read_are(are.as_bytes(), h.num_modules(), 2).unwrap();
        assert_eq!(areas, vec![4, 1, 1, 9, 1]);
        let combined = read_netd_with_areas(SAMPLE.as_bytes(), are.as_bytes(), 2).unwrap();
        assert_eq!(combined.total_area(), 4 + 1 + 1 + 9 + 1);
        assert_eq!(combined.num_nets(), 3);
    }

    #[test]
    fn are_rejects_bad_lines() {
        assert!(read_are("a0\n".as_bytes(), 5, 2).is_err());
        assert!(read_are("a0 xyz\n".as_bytes(), 5, 2).is_err());
        assert!(read_are("a9 3\n".as_bytes(), 5, 2).is_err());
    }

    #[test]
    fn module_names_roundtrip() {
        assert_eq!(module_name(0, 2), "a0");
        assert_eq!(module_name(2, 2), "a2");
        assert_eq!(module_name(3, 2), "p1");
        for index in 0..5 {
            let name = module_name(index, 2);
            assert_eq!(parse_name(&name, 2, 5, 1).unwrap(), index);
        }
    }

    #[test]
    fn blank_lines_tolerated() {
        let padded = SAMPLE.replace("a1 s O\n", "\na1 s O\n\n");
        let h = read_netd(padded.as_bytes()).unwrap();
        assert_eq!(h.num_nets(), 3);
    }
}
