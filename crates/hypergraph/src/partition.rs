//! Partition representations: the k-way assignment of modules to parts.
//!
//! A bipartitioning `P = {X, Y}` (paper §I) is the special case `k = 2`;
//! quadrisection (§III-C) is `k = 4`. The type tracks per-part areas
//! incrementally so that move-based partitioners can check balance in O(1).

use crate::hypergraph::Hypergraph;
use crate::ids::ModuleId;
use rand::seq::SliceRandom;
use rand::Rng;
use std::fmt;

/// Identifier of a part (block) in a k-way partition.
///
/// Part `0` plays the role of the paper's cluster `X` and part `1` of `Y`
/// when `k == 2`.
pub type PartId = u32;

/// A k-way partition of a hypergraph's modules with incrementally maintained
/// per-part areas.
///
/// # Examples
///
/// ```
/// use mlpart_hypergraph::{HypergraphBuilder, Partition, ModuleId};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = HypergraphBuilder::with_unit_areas(4);
/// b.add_net([0, 1])?;
/// b.add_net([2, 3])?;
/// let h = b.build()?;
///
/// let mut p = Partition::from_assignment(&h, 2, vec![0, 0, 1, 1]).expect("valid");
/// assert_eq!(p.part_area(0), 2);
/// p.move_module(&h, ModuleId::new(0), 1);
/// assert_eq!(p.part(ModuleId::new(0)), 1);
/// assert_eq!(p.part_area(1), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    k: u32,
    part_of: Vec<PartId>,
    part_areas: Vec<u64>,
}

impl Partition {
    /// Builds a partition from an explicit assignment vector (one part id per
    /// module, dense by module index).
    ///
    /// Returns `None` if the assignment length does not match the module
    /// count, or any part id is `>= k`, or `k == 0`.
    pub fn from_assignment(h: &Hypergraph, k: u32, part_of: Vec<PartId>) -> Option<Self> {
        if k == 0 || part_of.len() != h.num_modules() {
            return None;
        }
        let mut part_areas = vec![0u64; k as usize];
        for (i, &p) in part_of.iter().enumerate() {
            if p >= k {
                return None;
            }
            part_areas[p as usize] += h.area(ModuleId::new(i));
        }
        Some(Partition {
            k,
            part_of,
            part_areas,
        })
    }

    /// Generates a random area-balanced starting solution, as used by
    /// `FMPartition` when its initial solution is `NULL` (paper Fig. 2,
    /// step 6): a random permutation of the modules is split greedily so each
    /// part receives ≈ `A(V)/k` area.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn random<R: Rng + ?Sized>(h: &Hypergraph, k: u32, rng: &mut R) -> Self {
        assert!(k > 0, "k must be positive");
        let n = h.num_modules();
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.shuffle(rng);
        let mut part_of = vec![0 as PartId; n];
        let mut part_areas = vec![0u64; k as usize];
        let total = h.total_area();
        let mut current: PartId = 0;
        for &raw in &order {
            let v = ModuleId::from(raw);
            // Advance to the next part once this one reaches its target share.
            // Remaining-target division keeps the last part from starving.
            let target =
                (total - part_areas[..current as usize].iter().sum::<u64>()) / (k - current) as u64;
            if current + 1 < k && part_areas[current as usize] + h.area(v) > target {
                current += 1;
            }
            part_of[raw as usize] = current;
            part_areas[current as usize] += h.area(v);
        }
        Partition {
            k,
            part_of,
            part_areas,
        }
    }

    /// [`Partition::random`] honoring fixed (pre-assigned) modules: each
    /// fixed module sits on its pinned part, and only the free modules are
    /// shuffled, each landing on the part with the least accumulated area
    /// (ties to the lowest part id) so the start stays near-balanced even
    /// when pins pre-load some parts. The starting solution used by the
    /// constraint-aware pipelines wherever Fig. 2 step 6 calls for `NULL`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`, a fixed module or part id is out of range, or a
    /// module is fixed twice.
    pub fn random_fixed<R: Rng + ?Sized>(
        h: &Hypergraph,
        k: u32,
        fixed: &[(ModuleId, PartId)],
        rng: &mut R,
    ) -> Self {
        assert!(k > 0, "k must be positive");
        let n = h.num_modules();
        let mut part_of = vec![0 as PartId; n];
        let mut part_areas = vec![0u64; k as usize];
        let mut is_fixed = vec![false; n];
        for &(v, p) in fixed {
            assert!(v.index() < n, "fixed module out of range");
            assert!(p < k, "fixed part id out of range");
            assert!(!is_fixed[v.index()], "module fixed twice");
            is_fixed[v.index()] = true;
            part_of[v.index()] = p;
            part_areas[p as usize] += h.area(v);
        }
        let mut order: Vec<u32> = (0..n as u32).filter(|&i| !is_fixed[i as usize]).collect();
        order.shuffle(rng);
        for &raw in &order {
            let v = ModuleId::from(raw);
            let p = (0..k)
                .min_by_key(|&p| part_areas[p as usize])
                .expect("k > 0");
            part_of[raw as usize] = p;
            part_areas[p as usize] += h.area(v);
        }
        Partition {
            k,
            part_of,
            part_areas,
        }
    }

    /// Number of parts `k`.
    #[inline]
    pub fn k(&self) -> u32 {
        self.k
    }

    /// The part currently containing module `v`.
    #[inline]
    pub fn part(&self, v: ModuleId) -> PartId {
        self.part_of[v.index()]
    }

    /// Current area of part `p`.
    #[inline]
    pub fn part_area(&self, p: PartId) -> u64 {
        self.part_areas[p as usize]
    }

    /// All per-part areas, indexed by part id.
    #[inline]
    pub fn part_areas(&self) -> &[u64] {
        &self.part_areas
    }

    /// The full assignment vector, dense by module index.
    #[inline]
    pub fn assignment(&self) -> &[PartId] {
        &self.part_of
    }

    /// Moves module `v` to part `to`, updating part areas.
    ///
    /// Returns the part the module came from. Moving a module to the part it
    /// is already in is a no-op.
    ///
    /// # Panics
    ///
    /// Panics if `to >= k` or `v` is out of range.
    #[inline]
    pub fn move_module(&mut self, h: &Hypergraph, v: ModuleId, to: PartId) -> PartId {
        assert!(to < self.k, "part id out of range");
        let from = self.part_of[v.index()];
        if from != to {
            let a = h.area(v);
            self.part_areas[from as usize] -= a;
            self.part_areas[to as usize] += a;
            self.part_of[v.index()] = to;
        }
        from
    }

    /// Number of modules in each part (counts, not areas).
    pub fn part_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.k as usize];
        for &p in &self.part_of {
            sizes[p as usize] += 1;
        }
        sizes
    }

    /// `true` if every module of the hypergraph is assigned a valid part and
    /// the cached part areas match a recount. Used by tests.
    pub fn validate(&self, h: &Hypergraph) -> bool {
        if self.part_of.len() != h.num_modules() {
            return false;
        }
        if self.part_of.iter().any(|&p| p >= self.k) {
            return false;
        }
        let mut areas = vec![0u64; self.k as usize];
        for (i, &p) in self.part_of.iter().enumerate() {
            areas[p as usize] += h.area(ModuleId::new(i));
        }
        areas == self.part_areas
    }
}

impl fmt::Display for Partition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Partition(k={}, areas={:?})", self.k, self.part_areas)
    }
}

/// Balance bounds for a bipartitioning, per the paper's §III-B:
///
/// > the areas of `X` and `Y` are bounded below by
/// > `A(V)/2 − max(A(v*), r·A(V))` and above by
/// > `A(V)/2 + max(A(v*), r·A(V))`, where `v*` is the module with largest
/// > area.
///
/// Taking the max with `A(v*)` guarantees that at least one module can always
/// move, even when a single module is larger than the tolerance window.
///
/// # Examples
///
/// ```
/// use mlpart_hypergraph::{HypergraphBuilder, BipartBalance};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = HypergraphBuilder::with_unit_areas(100);
/// b.add_net([0, 1])?;
/// let h = b.build()?;
/// let bal = BipartBalance::new(&h, 0.1);
/// assert!(bal.is_feasible(50));
/// assert!(bal.is_feasible(40) && bal.is_feasible(60));
/// assert!(!bal.is_feasible(39) && !bal.is_feasible(61));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BipartBalance {
    lower: u64,
    upper: u64,
    total: u64,
}

impl BipartBalance {
    /// Computes bounds for hypergraph `h` with balance tolerance `r`
    /// (the paper's experiments use `r = 0.1`).
    pub fn new(h: &Hypergraph, r: f64) -> Self {
        let total = h.total_area();
        let slack_r = (r * total as f64).floor() as u64;
        let slack = slack_r.max(h.max_area());
        let half = total / 2;
        BipartBalance {
            lower: half.saturating_sub(slack),
            upper: (half + slack).min(total),
            total,
        }
    }

    /// Lower area bound for either side.
    #[inline]
    pub fn lower(&self) -> u64 {
        self.lower
    }

    /// Upper area bound for either side.
    #[inline]
    pub fn upper(&self) -> u64 {
        self.upper
    }

    /// `true` if a side of area `area_x` (the other side implicitly holding
    /// `total − area_x`) satisfies both bounds.
    #[inline]
    pub fn is_feasible(&self, area_x: u64) -> bool {
        let area_y = self.total - area_x.min(self.total);
        area_x >= self.lower && area_x <= self.upper && area_y >= self.lower && area_y <= self.upper
    }

    /// `true` if the given bipartition satisfies the bounds.
    pub fn is_partition_feasible(&self, p: &Partition) -> bool {
        debug_assert_eq!(p.k(), 2);
        self.is_feasible(p.part_area(0))
    }
}

/// Balance bounds for a k-way partition.
///
/// The paper only specifies the 2-way formula; we generalize it so that
/// `k = 2` reproduces §III-B exactly: each part's area must lie within
/// `A(V)/k ± max(A(v*), r·A(V)·2/k)`. With `k = 2` the slack is
/// `max(A(v*), r·A(V))` as in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KwayBalance {
    lower: u64,
    upper: u64,
    k: u32,
}

impl KwayBalance {
    /// Computes per-part bounds for a k-way partition with tolerance `r`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(h: &Hypergraph, k: u32, r: f64) -> Self {
        assert!(k > 0, "k must be positive");
        let total = h.total_area();
        let target = total / k as u64;
        let slack_r = (r * total as f64 * 2.0 / k as f64).floor() as u64;
        let slack = slack_r.max(h.max_area());
        KwayBalance {
            lower: target.saturating_sub(slack),
            upper: (target + slack).min(total),
            k,
        }
    }

    /// Lower area bound for every part.
    #[inline]
    pub fn lower(&self) -> u64 {
        self.lower
    }

    /// Upper area bound for every part.
    #[inline]
    pub fn upper(&self) -> u64 {
        self.upper
    }

    /// The part count these bounds were computed for.
    #[inline]
    pub fn k(&self) -> u32 {
        self.k
    }

    /// `true` if every part of `p` satisfies the bounds.
    pub fn is_partition_feasible(&self, p: &Partition) -> bool {
        debug_assert_eq!(p.k(), self.k);
        p.part_areas()
            .iter()
            .all(|&a| a >= self.lower && a <= self.upper)
    }

    /// `true` if a single part of area `area` satisfies the bounds.
    #[inline]
    pub fn is_area_feasible(&self, area: u64) -> bool {
        area >= self.lower && area <= self.upper
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hypergraph::HypergraphBuilder;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn h_units(n: usize) -> Hypergraph {
        let mut b = HypergraphBuilder::with_unit_areas(n);
        if n >= 2 {
            b.add_net([0, 1]).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn from_assignment_validates() {
        let h = h_units(3);
        assert!(Partition::from_assignment(&h, 2, vec![0, 1, 0]).is_some());
        assert!(Partition::from_assignment(&h, 2, vec![0, 2, 0]).is_none());
        assert!(Partition::from_assignment(&h, 2, vec![0, 1]).is_none());
        assert!(Partition::from_assignment(&h, 0, vec![]).is_none());
    }

    #[test]
    fn move_module_updates_areas() {
        let h = h_units(4);
        let mut p = Partition::from_assignment(&h, 2, vec![0, 0, 1, 1]).unwrap();
        let from = p.move_module(&h, ModuleId::new(1), 1);
        assert_eq!(from, 0);
        assert_eq!(p.part_area(0), 1);
        assert_eq!(p.part_area(1), 3);
        assert!(p.validate(&h));
        // No-op move.
        let from = p.move_module(&h, ModuleId::new(1), 1);
        assert_eq!(from, 1);
        assert_eq!(p.part_area(1), 3);
    }

    #[test]
    #[cfg_attr(miri, ignore)] // multi-seed loop: too slow under the interpreter
    fn random_is_roughly_balanced_bipartition() {
        let h = h_units(1001);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10 {
            let p = Partition::random(&h, 2, &mut rng);
            assert!(p.validate(&h));
            let a0 = p.part_area(0);
            assert!((a0 as i64 - 500).unsigned_abs() <= 1, "a0={a0}");
        }
    }

    #[test]
    fn random_is_roughly_balanced_quadrisection() {
        let h = h_units(1000);
        let mut rng = SmallRng::seed_from_u64(7);
        let p = Partition::random(&h, 4, &mut rng);
        assert!(p.validate(&h));
        for part in 0..4 {
            let a = p.part_area(part);
            assert!((a as i64 - 250).unsigned_abs() <= 1, "part {part}: {a}");
        }
    }

    #[test]
    fn random_fixed_honors_pins_and_balances_free_modules() {
        let h = h_units(100);
        let fixed = vec![
            (ModuleId::new(0), 1),
            (ModuleId::new(7), 0),
            (ModuleId::new(99), 1),
        ];
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..5 {
            let p = Partition::random_fixed(&h, 2, &fixed, &mut rng);
            assert!(p.validate(&h));
            for &(v, part) in &fixed {
                assert_eq!(p.part(v), part);
            }
            // Least-filled greedy keeps unit-area parts within one of even.
            assert!((p.part_area(0) as i64 - 50).unsigned_abs() <= 1);
        }
        // Pins pre-loading one part still yield a full valid assignment.
        let heavy: Vec<_> = (0..40).map(|i| (ModuleId::new(i), 0)).collect();
        let p = Partition::random_fixed(&h, 4, &heavy, &mut rng);
        assert!(p.validate(&h));
        assert!(heavy.iter().all(|&(v, part)| p.part(v) == part));
    }

    #[test]
    #[should_panic(expected = "module fixed twice")]
    fn random_fixed_rejects_duplicate_pins() {
        let h = h_units(4);
        let mut rng = SmallRng::seed_from_u64(0);
        let _ = Partition::random_fixed(
            &h,
            2,
            &[(ModuleId::new(1), 0), (ModuleId::new(1), 1)],
            &mut rng,
        );
    }

    #[test]
    fn random_handles_nonuniform_areas() {
        let mut b = HypergraphBuilder::new(vec![10, 1, 1, 1, 1, 1, 1, 1, 1, 2]);
        b.add_net([0, 1]).unwrap();
        let h = b.build().unwrap();
        let mut rng = SmallRng::seed_from_u64(3);
        let p = Partition::random(&h, 2, &mut rng);
        assert!(p.validate(&h));
        assert_eq!(p.part_area(0) + p.part_area(1), 20);
    }

    #[test]
    fn bipart_balance_matches_paper_formula() {
        // 100 unit modules, r = 0.1: slack = max(1, 10) = 10 -> [40, 60].
        let h = h_units(100);
        let bal = BipartBalance::new(&h, 0.1);
        assert_eq!(bal.lower(), 40);
        assert_eq!(bal.upper(), 60);
    }

    #[test]
    fn bipart_balance_large_module_dominates() {
        // One module of area 30 out of total 100: slack = max(30, 10) = 30.
        let mut areas = vec![1u64; 70];
        areas.push(30);
        let mut b = HypergraphBuilder::new(areas);
        b.add_net([0, 1]).unwrap();
        let h = b.build().unwrap();
        let bal = BipartBalance::new(&h, 0.1);
        assert_eq!(bal.lower(), 20);
        assert_eq!(bal.upper(), 80);
    }

    #[test]
    fn bipart_feasibility_is_symmetric() {
        let h = h_units(100);
        let bal = BipartBalance::new(&h, 0.1);
        for a in 0..=100u64 {
            assert_eq!(bal.is_feasible(a), bal.is_feasible(100 - a), "a={a}");
        }
    }

    #[test]
    fn kway_balance_reduces_to_bipart_at_k2() {
        let h = h_units(100);
        let b2 = BipartBalance::new(&h, 0.1);
        let bk = KwayBalance::new(&h, 2, 0.1);
        assert_eq!(b2.lower(), bk.lower());
        assert_eq!(b2.upper(), bk.upper());
    }

    #[test]
    fn kway_balance_quadrisection() {
        // 100 unit modules, k=4, r=0.1: target 25, slack = max(1, 5) = 5.
        let h = h_units(100);
        let bal = KwayBalance::new(&h, 4, 0.1);
        assert_eq!(bal.lower(), 20);
        assert_eq!(bal.upper(), 30);
        let p =
            Partition::from_assignment(&h, 4, (0..100).map(|i| (i % 4) as u32).collect()).unwrap();
        assert!(bal.is_partition_feasible(&p));
    }

    #[test]
    fn part_sizes_counts_modules() {
        let h = h_units(5);
        let p = Partition::from_assignment(&h, 3, vec![0, 1, 1, 2, 2]).unwrap();
        assert_eq!(p.part_sizes(), vec![1, 2, 2]);
    }

    #[test]
    fn display_mentions_k() {
        let h = h_units(2);
        let p = Partition::from_assignment(&h, 2, vec![0, 1]).unwrap();
        assert!(p.to_string().contains("k=2"));
    }
}
