//! Seeded randomness utilities shared by every stochastic algorithm in the
//! workspace.
//!
//! All of the paper's algorithms are randomized (random initial solutions,
//! random module permutations in `Match`, random tie-breaking). To make every
//! table reproducible we thread explicit seeds everywhere and standardize on
//! one fast PRNG.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// The PRNG used throughout the workspace. `SmallRng` is deterministic for a
/// given seed and fast enough to sit inside inner loops.
pub type MlRng = SmallRng;

/// Creates the workspace PRNG from a 64-bit seed.
///
/// # Examples
///
/// ```
/// use mlpart_hypergraph::rng::{seeded_rng, random_permutation};
///
/// let mut rng = seeded_rng(42);
/// let p1 = random_permutation(5, &mut rng);
/// let mut rng = seeded_rng(42);
/// let p2 = random_permutation(5, &mut rng);
/// assert_eq!(p1, p2); // deterministic given the seed
/// ```
pub fn seeded_rng(seed: u64) -> MlRng {
    MlRng::seed_from_u64(seed)
}

/// Derives an independent child seed from a base seed and a stream index.
///
/// The experiment harness runs each (circuit, algorithm, run-index) cell with
/// `child_seed(base, cell_index)` so adding a new column never perturbs the
/// random streams of existing ones. Uses the SplitMix64 finalizer, whose
/// output is equidistributed over `u64`.
pub fn child_seed(base: u64, stream: u64) -> u64 {
    let mut z = base.wrapping_add(0x9E37_79B9_7F4A_7C15_u64.wrapping_mul(stream.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A uniformly random permutation of `0..n`, as used by `Match` (Fig. 3,
/// step 1: "Construct random permutation π of [1..n]").
pub fn random_permutation<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Vec<u32> {
    let mut perm = Vec::new();
    random_permutation_into(n, rng, &mut perm);
    perm
}

/// [`random_permutation`] into a caller-owned buffer, reusing its
/// allocation. Consumes the identical RNG stream and produces the identical
/// permutation; the multilevel coarsener calls `Match` once per level, and
/// this keeps that loop from allocating a fresh permutation every pass.
pub fn random_permutation_into<R: Rng + ?Sized>(n: usize, rng: &mut R, buf: &mut Vec<u32>) {
    buf.clear();
    buf.extend(0..n as u32);
    buf.shuffle(rng);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permutation_is_a_permutation() {
        let mut rng = seeded_rng(7);
        let p = random_permutation(100, &mut rng);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
    }

    #[test]
    fn different_seeds_differ() {
        let p1 = random_permutation(50, &mut seeded_rng(1));
        let p2 = random_permutation(50, &mut seeded_rng(2));
        assert_ne!(p1, p2);
    }

    #[test]
    fn empty_permutation() {
        assert!(random_permutation(0, &mut seeded_rng(0)).is_empty());
    }

    #[test]
    fn permutation_into_reuses_buffer_and_matches_stream() {
        let mut rng_a = seeded_rng(11);
        let mut rng_b = seeded_rng(11);
        let mut buf = Vec::new();
        for n in [100usize, 40, 7, 0, 64] {
            random_permutation_into(n, &mut rng_a, &mut buf);
            assert_eq!(buf, random_permutation(n, &mut rng_b), "n={n}");
        }
        assert!(buf.capacity() >= 100, "buffer allocation is reused");
    }

    #[test]
    fn child_seeds_distinct_across_streams() {
        let seeds: Vec<u64> = (0..1000).map(|i| child_seed(12345, i)).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len());
    }

    #[test]
    fn child_seed_is_deterministic() {
        assert_eq!(child_seed(9, 3), child_seed(9, 3));
        assert_ne!(child_seed(9, 3), child_seed(10, 3));
    }
}
