//! Structural statistics of a netlist: degree and net-size distributions.
//!
//! Used to validate that the synthetic suite matches the paper's Table I
//! characteristics, and handy when diagnosing why a partitioner behaves
//! differently on two netlists.

use crate::hypergraph::Hypergraph;

/// Summary of a discrete distribution (degrees or net sizes).
#[derive(Debug, Clone, PartialEq)]
pub struct Distribution {
    /// Smallest observed value.
    pub min: usize,
    /// Largest observed value.
    pub max: usize,
    /// Mean value.
    pub mean: f64,
    /// Histogram: `histogram[v]` = number of items with value `v`
    /// (trailing zero buckets trimmed).
    pub histogram: Vec<usize>,
}

impl Distribution {
    fn from_values(values: impl Iterator<Item = usize> + Clone) -> Option<Self> {
        let mut count = 0usize;
        let mut sum = 0usize;
        let mut max = 0usize;
        let mut min = usize::MAX;
        for v in values.clone() {
            count += 1;
            sum += v;
            max = max.max(v);
            min = min.min(v);
        }
        if count == 0 {
            return None;
        }
        let mut histogram = vec![0usize; max + 1];
        for v in values {
            histogram[v] += 1;
        }
        Some(Distribution {
            min,
            max,
            mean: sum as f64 / count as f64,
            histogram,
        })
    }

    /// The `q`-quantile value (0 ≤ q ≤ 1) of the distribution.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not within `[0, 1]`.
    pub fn quantile(&self, q: f64) -> usize {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        let total: usize = self.histogram.iter().sum();
        let target = ((total as f64) * q).ceil() as usize;
        let mut acc = 0usize;
        for (value, &count) in self.histogram.iter().enumerate() {
            acc += count;
            if acc >= target.max(1) {
                return value;
            }
        }
        self.max
    }
}

/// Full structural profile of a netlist.
///
/// # Examples
///
/// ```
/// use mlpart_hypergraph::{HypergraphBuilder, stats::NetlistStats};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = HypergraphBuilder::with_unit_areas(4);
/// b.add_net([0, 1, 2])?;
/// b.add_net([2, 3])?;
/// let h = b.build()?;
/// let stats = NetlistStats::measure(&h);
/// assert_eq!(stats.modules, 4);
/// assert_eq!(stats.pins, 5);
/// assert_eq!(stats.net_sizes.expect("has nets").max, 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NetlistStats {
    /// Module count.
    pub modules: usize,
    /// Net count.
    pub nets: usize,
    /// Pin count.
    pub pins: usize,
    /// Total area.
    pub total_area: u64,
    /// Net-size distribution; `None` for a netless netlist.
    pub net_sizes: Option<Distribution>,
    /// Module-degree distribution; `None` for an empty netlist.
    pub degrees: Option<Distribution>,
}

impl NetlistStats {
    /// Measures `h`.
    pub fn measure(h: &Hypergraph) -> Self {
        NetlistStats {
            modules: h.num_modules(),
            nets: h.num_nets(),
            pins: h.num_pins(),
            total_area: h.total_area(),
            net_sizes: Distribution::from_values(h.net_ids().map(|e| h.net_size(e))),
            degrees: Distribution::from_values(h.modules().map(|v| h.degree(v))),
        }
    }
}

impl std::fmt::Display for NetlistStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} modules, {} nets, {} pins",
            self.modules, self.nets, self.pins
        )?;
        if let Some(ns) = &self.net_sizes {
            write!(f, "; net size {:.2} avg (max {})", ns.mean, ns.max)?;
        }
        if let Some(d) = &self.degrees {
            write!(f, "; degree {:.2} avg (max {})", d.mean, d.max)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hypergraph::HypergraphBuilder;

    fn sample() -> Hypergraph {
        let mut b = HypergraphBuilder::with_unit_areas(5);
        b.add_net([0, 1]).unwrap();
        b.add_net([0, 1, 2]).unwrap();
        b.add_net([2, 3, 4]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn measures_counts_and_means() {
        let s = NetlistStats::measure(&sample());
        assert_eq!(s.modules, 5);
        assert_eq!(s.nets, 3);
        assert_eq!(s.pins, 8);
        let ns = s.net_sizes.expect("has nets");
        assert_eq!(ns.min, 2);
        assert_eq!(ns.max, 3);
        assert!((ns.mean - 8.0 / 3.0).abs() < 1e-12);
        let d = s.degrees.expect("has modules");
        assert_eq!(d.max, 2);
        assert_eq!(d.min, 1);
    }

    #[test]
    fn histogram_counts() {
        let s = NetlistStats::measure(&sample());
        let ns = s.net_sizes.expect("has nets");
        assert_eq!(ns.histogram[2], 1);
        assert_eq!(ns.histogram[3], 2);
    }

    #[test]
    fn quantiles() {
        let s = NetlistStats::measure(&sample());
        let ns = s.net_sizes.expect("has nets");
        assert_eq!(ns.quantile(0.0), 2);
        assert_eq!(ns.quantile(1.0), 3);
        assert_eq!(ns.quantile(0.5), 3);
    }

    #[test]
    fn empty_netlist() {
        let h = HypergraphBuilder::with_unit_areas(0).build().unwrap();
        let s = NetlistStats::measure(&h);
        assert!(s.net_sizes.is_none());
        assert!(s.degrees.is_none());
        assert_eq!(s.to_string(), "0 modules, 0 nets, 0 pins");
    }

    #[test]
    fn display_mentions_sizes() {
        let s = NetlistStats::measure(&sample());
        let text = s.to_string();
        assert!(text.contains("5 modules"));
        assert!(text.contains("net size"));
    }

    #[test]
    #[should_panic(expected = "quantile must be in")]
    fn quantile_rejects_out_of_range() {
        let s = NetlistStats::measure(&sample());
        let _ = s.net_sizes.expect("has nets").quantile(1.5);
    }
}
