//! Hypergraph-to-graph transformations: clique and star expansion.
//!
//! The paper's footnote 2 notes that graph-based multilevel partitioners
//! (Metis, and the GMetis adaptation in Table VII) "have to transform the
//! netlist hypergraph to a weighted graph" first, while "our implementation
//! coarsens and partitions the hypergraph directly" — and attributes
//! GMetis's inferior cuts to exactly this lossy transformation. These
//! expansions make that claim testable: partition the expanded graph, then
//! measure the *true* hypergraph cut of the result (see the `ablation`
//! harness binary).
//!
//! Weights are scaled integers: a clique edge of an `s`-pin net carries
//! weight `round(scale / (s − 1))` (the standard normalization, so every net
//! contributes ≈ `scale·s/2` total weight); a star edge carries
//! `round(scale / s)` against a zero-area... — star centers must occupy
//! area, so they get area 1 and the caller's balance tolerance absorbs the
//! dilution (documented on [`star_expansion`]).
//!
//! All entry points return typed errors instead of panicking: the
//! expansions feed arbitrary parsed benchmarks, so invalid inputs must
//! surface as values the harness can report.

use crate::error::BuildHypergraphError;
use crate::hypergraph::{Hypergraph, HypergraphBuilder};

/// The default weight scale: small enough to keep summed weights well inside
/// the engines' bucket ranges, large enough that `scale/(s−1)` distinguishes
/// net sizes up to the `Match` limit.
pub const DEFAULT_WEIGHT_SCALE: u32 = 12;

/// Why an expansion or expanded-cut measurement was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransformError {
    /// The weight scale was zero; every edge weight would round to a
    /// meaningless floor.
    ZeroScale,
    /// The expanded graph failed hypergraph validation.
    Build(BuildHypergraphError),
    /// The assignment handed to [`hypergraph_cut_of_expanded`] is shorter
    /// than the original module count.
    AssignmentTooShort {
        /// Length of the provided assignment.
        len: usize,
        /// Module count of the original hypergraph.
        num_modules: usize,
    },
    /// The assignment contains a part id `>= k`.
    InvalidAssignment {
        /// The part count the assignment was checked against.
        k: u32,
    },
}

impl std::fmt::Display for TransformError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransformError::ZeroScale => write!(f, "weight scale must be positive"),
            TransformError::Build(e) => write!(f, "expanded graph is invalid: {e}"),
            TransformError::AssignmentTooShort { len, num_modules } => write!(
                f,
                "assignment has {len} entries but the original hypergraph has {num_modules} modules"
            ),
            TransformError::InvalidAssignment { k } => {
                write!(f, "assignment contains a part id >= k = {k}")
            }
        }
    }
}

impl std::error::Error for TransformError {}

impl From<BuildHypergraphError> for TransformError {
    fn from(e: BuildHypergraphError) -> Self {
        TransformError::Build(e)
    }
}

/// Clique expansion: every `s`-pin net becomes `s·(s−1)/2` weighted 2-pin
/// nets with weight `max(1, round(scale/(s−1)))`. Module count and areas are
/// unchanged, so a partition of the expansion is directly a partition of the
/// original hypergraph.
///
/// Nets larger than `max_net_size` are dropped (a 200-pin net would expand
/// to ~20k edges; graph partitioners make the same cut).
///
/// # Errors
///
/// [`TransformError::ZeroScale`] when `scale == 0`;
/// [`TransformError::Build`] when the expanded graph fails validation.
///
/// # Examples
///
/// ```
/// use mlpart_hypergraph::{HypergraphBuilder, transform::clique_expansion};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = HypergraphBuilder::with_unit_areas(3);
/// b.add_net([0, 1, 2])?;
/// let h = b.build()?;
/// let g = clique_expansion(&h, 12, 50)?;
/// assert_eq!(g.num_nets(), 3);           // the triangle
/// assert_eq!(g.net_weight(mlpart_hypergraph::NetId::new(0)), 6); // 12/(3-1)
/// # Ok(())
/// # }
/// ```
pub fn clique_expansion(
    h: &Hypergraph,
    scale: u32,
    max_net_size: usize,
) -> Result<Hypergraph, TransformError> {
    if scale == 0 {
        return Err(TransformError::ZeroScale);
    }
    let mut builder = HypergraphBuilder::new(h.areas().to_vec());
    for e in h.net_ids() {
        let s = h.net_size(e);
        if s > max_net_size {
            continue;
        }
        let weight =
            ((scale as f64 * h.net_weight(e) as f64 / (s as f64 - 1.0)).round() as u32).max(1);
        let pins = h.pins(e);
        for i in 0..s {
            for j in (i + 1)..s {
                builder.add_weighted_net([pins[i].index(), pins[j].index()], weight)?;
            }
        }
    }
    Ok(builder.build()?)
}

/// Star expansion: every `s`-pin net gains an auxiliary center module
/// (area 1) connected to each pin by a weighted 2-pin net. Linear in pins,
/// unlike the clique's quadratic blowup.
///
/// Returns the expanded graph and the number of original modules (the
/// centers occupy indices `original..`); project a partition back by
/// truncating the assignment to the original modules.
///
/// # Errors
///
/// [`TransformError::ZeroScale`] when `scale == 0`;
/// [`TransformError::Build`] when the expanded graph fails validation.
pub fn star_expansion(
    h: &Hypergraph,
    scale: u32,
    max_net_size: usize,
) -> Result<(Hypergraph, usize), TransformError> {
    if scale == 0 {
        return Err(TransformError::ZeroScale);
    }
    let n = h.num_modules();
    let expanded: Vec<_> = h
        .net_ids()
        .filter(|&e| h.net_size(e) <= max_net_size)
        .collect();
    let mut areas = h.areas().to_vec();
    areas.extend(std::iter::repeat_n(1, expanded.len()));
    let mut builder = HypergraphBuilder::new(areas);
    for (center_idx, &e) in expanded.iter().enumerate() {
        let center = n + center_idx;
        let weight =
            ((scale as f64 * h.net_weight(e) as f64 / h.net_size(e) as f64).round() as u32).max(1);
        for &v in h.pins(e) {
            builder.add_weighted_net([v.index(), center], weight)?;
        }
    }
    Ok((builder.build()?, n))
}

/// Measures the true hypergraph cut of a partition expressed over the
/// expanded graph's modules (identity mapping for clique expansion;
/// truncation for star expansion).
///
/// # Errors
///
/// [`TransformError::AssignmentTooShort`] when `assignment` has fewer than
/// `h.num_modules()` entries; [`TransformError::InvalidAssignment`] when a
/// part id is `>= k`.
pub fn hypergraph_cut_of_expanded(
    h: &Hypergraph,
    assignment: &[u32],
    k: u32,
) -> Result<u64, TransformError> {
    if assignment.len() < h.num_modules() {
        return Err(TransformError::AssignmentTooShort {
            len: assignment.len(),
            num_modules: h.num_modules(),
        });
    }
    let p = crate::Partition::from_assignment(h, k, assignment[..h.num_modules()].to_vec())
        .ok_or(TransformError::InvalidAssignment { k })?;
    Ok(crate::metrics::cut(h, &p))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;
    use crate::Partition;

    fn h_mixed() -> Hypergraph {
        let mut b = HypergraphBuilder::with_unit_areas(5);
        b.add_net([0, 1]).unwrap();
        b.add_net([1, 2, 3]).unwrap();
        b.add_net([0, 2, 3, 4]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn clique_counts_and_weights() {
        let h = h_mixed();
        let g = clique_expansion(&h, 12, 50).unwrap();
        assert_eq!(g.num_modules(), 5);
        // 1 + 3 + 6 = 10 edges.
        assert_eq!(g.num_nets(), 10);
        // 2-pin net keeps full scale weight; 3-pin: 6; 4-pin: 4.
        let weights: Vec<u32> = g.net_weights().to_vec();
        assert_eq!(weights.iter().filter(|&&w| w == 12).count(), 1);
        assert_eq!(weights.iter().filter(|&&w| w == 6).count(), 3);
        assert_eq!(weights.iter().filter(|&&w| w == 4).count(), 6);
    }

    #[test]
    fn clique_cut_bounds_hypergraph_cut() {
        // A cut hyperedge contributes >= one cut clique edge, so a zero-cut
        // clique partition is zero-cut on the hypergraph and vice versa.
        let h = h_mixed();
        let g = clique_expansion(&h, 12, 50).unwrap();
        for mask in 0u32..32 {
            let assignment: Vec<u32> = (0..5).map(|i| (mask >> i) & 1).collect();
            let ph = Partition::from_assignment(&h, 2, assignment.clone()).unwrap();
            let pg = Partition::from_assignment(&g, 2, assignment).unwrap();
            assert_eq!(
                metrics::cut(&h, &ph) == 0,
                metrics::cut(&g, &pg) == 0,
                "mask {mask}"
            );
        }
    }

    #[test]
    fn clique_drops_oversized_nets() {
        let h = h_mixed();
        let g = clique_expansion(&h, 12, 3).unwrap();
        assert_eq!(g.num_nets(), 1 + 3, "4-pin net dropped");
    }

    #[test]
    fn star_structure() {
        let h = h_mixed();
        let (g, original) = star_expansion(&h, 12, 50).unwrap();
        assert_eq!(original, 5);
        assert_eq!(g.num_modules(), 5 + 3, "one center per net");
        assert_eq!(g.num_pins(), 2 * (2 + 3 + 4), "one 2-pin edge per pin");
        // Star edge weights: 12/2=6, 12/3=4, 12/4=3.
        assert!(g.net_weights().contains(&6));
        assert!(g.net_weights().contains(&4));
        assert!(g.net_weights().contains(&3));
    }

    #[test]
    fn expanded_cut_projection() {
        let h = h_mixed();
        let (g, original) = star_expansion(&h, 12, 50).unwrap();
        // Assign originals 0,1 | 2,3,4 and put centers wherever.
        let mut assignment = vec![0u32, 0, 1, 1, 1];
        assignment.extend(vec![0u32; g.num_modules() - original]);
        let true_cut = hypergraph_cut_of_expanded(&h, &assignment, 2).unwrap();
        let direct = Partition::from_assignment(&h, 2, assignment[..5].to_vec()).unwrap();
        assert_eq!(true_cut, metrics::cut(&h, &direct));
    }

    #[test]
    fn rejects_zero_scale() {
        let h = h_mixed();
        assert_eq!(
            clique_expansion(&h, 0, 50).unwrap_err(),
            TransformError::ZeroScale
        );
        assert_eq!(
            star_expansion(&h, 0, 50).unwrap_err(),
            TransformError::ZeroScale
        );
    }

    #[test]
    fn expanded_cut_rejects_bad_assignments() {
        let h = h_mixed();
        assert_eq!(
            hypergraph_cut_of_expanded(&h, &[0, 1], 2).unwrap_err(),
            TransformError::AssignmentTooShort {
                len: 2,
                num_modules: 5
            }
        );
        assert_eq!(
            hypergraph_cut_of_expanded(&h, &[0, 1, 2, 0, 1], 2).unwrap_err(),
            TransformError::InvalidAssignment { k: 2 }
        );
    }
}
