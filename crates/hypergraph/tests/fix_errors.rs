//! Error-path coverage for the fixed-vertex (`.fix`) reader, mirroring the
//! `.hgr` error suite: one test per [`ParseFixError`] variant, driven by
//! inline byte readers.

use mlpart_hypergraph::io::{read_fix, write_fix};
use mlpart_hypergraph::{ModuleId, ParseFixError};
use std::io::Read;

/// A reader that fails after yielding nothing, to exercise the `Io` variant.
struct FailingReader;

impl Read for FailingReader {
    fn read(&mut self, _buf: &mut [u8]) -> std::io::Result<usize> {
        Err(std::io::Error::other("synthetic read failure"))
    }
}

#[test]
fn io_error_is_propagated() {
    let err = read_fix(FailingReader, 4, 2).unwrap_err();
    match err {
        ParseFixError::Io(e) => assert!(e.to_string().contains("synthetic")),
        other => panic!("expected Io, got {other:?}"),
    }
}

#[test]
fn non_integer_line_is_bad_token() {
    let err = read_fix("0\nfree\n1\n".as_bytes(), 3, 2).unwrap_err();
    match err {
        ParseFixError::BadToken { line_no, token } => {
            assert_eq!(line_no, 2);
            assert_eq!(token, "free");
        }
        other => panic!("expected BadToken, got {other:?}"),
    }
}

#[test]
fn part_out_of_range_is_bad_part_id() {
    let err = read_fix("0\n2\n1\n".as_bytes(), 3, 2).unwrap_err();
    match err {
        ParseFixError::BadPartId { line_no, part, k } => {
            assert_eq!(line_no, 2);
            assert_eq!(part, 2);
            assert_eq!(k, 2);
        }
        other => panic!("expected BadPartId, got {other:?}"),
    }
}

#[test]
fn negative_part_below_free_marker_is_bad_part_id() {
    let err = read_fix("-2\n".as_bytes(), 1, 2).unwrap_err();
    assert!(matches!(err, ParseFixError::BadPartId { part: -2, .. }));
}

#[test]
fn too_few_lines_is_wrong_line_count() {
    let err = read_fix("0\n1\n".as_bytes(), 3, 2).unwrap_err();
    match err {
        ParseFixError::WrongLineCount { expected, found } => {
            assert_eq!(expected, 3);
            assert_eq!(found, 2);
        }
        other => panic!("expected WrongLineCount, got {other:?}"),
    }
}

#[test]
fn too_many_lines_is_wrong_line_count() {
    let err = read_fix("0\n1\n0\n1\n".as_bytes(), 3, 2).unwrap_err();
    assert!(matches!(
        err,
        ParseFixError::WrongLineCount {
            expected: 3,
            found: 4
        }
    ));
}

#[test]
fn display_carries_location() {
    let err = read_fix("0\n9\n".as_bytes(), 2, 4).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("line 2"), "{msg}");
    assert!(msg.contains("9"), "{msg}");
    assert!(msg.contains("0..4"), "{msg}");
}

#[test]
fn comments_and_blanks_are_skipped() {
    let fixed = read_fix("% header\n\n1\n-1\n0\n".as_bytes(), 3, 2).expect("valid");
    assert_eq!(fixed, vec![(ModuleId::new(0), 1), (ModuleId::new(2), 0)]);
}

#[test]
fn all_free_file_yields_no_fixed_modules() {
    let fixed = read_fix("-1\n-1\n-1\n".as_bytes(), 3, 8).expect("valid");
    assert!(fixed.is_empty());
}

#[test]
fn write_then_read_round_trips() {
    let fixed = vec![(ModuleId::new(1), 3), (ModuleId::new(4), 0)];
    let mut out = Vec::new();
    write_fix(&fixed, 6, &mut out).expect("write");
    let text = String::from_utf8(out).expect("utf8");
    assert_eq!(text, "-1\n3\n-1\n-1\n0\n-1\n");
    let back = read_fix(text.as_bytes(), 6, 4).expect("read back");
    assert_eq!(back, fixed);
}
