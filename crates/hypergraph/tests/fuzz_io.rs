//! Parser robustness fuzzing: arbitrary mutations — truncation, byte
//! corruption, token injection — of well-formed hMETIS files must surface as
//! typed [`ParseHgrError`]s (or parse successfully), never as panics. The
//! partitioner is driven from the CLI on user-supplied files, so the parser
//! is the widest attack surface for malformed input.

use mlpart_hypergraph::io::{read_hgr, read_partition, write_hgr, write_partition};
use mlpart_hypergraph::rng::seeded_rng;
use mlpart_hypergraph::HypergraphBuilder;
use proptest::prelude::*;
use rand::Rng;

/// A syntactically valid `.hgr` file derived deterministically from `seed`,
/// covering all four format codes (0/1/10/11) plus comments and blank lines.
fn random_hgr_text(seed: u64) -> String {
    let mut rng = seeded_rng(seed);
    let modules = rng.gen_range(2..40usize);
    let nets = rng.gen_range(1..40usize);
    let fmt = [0u32, 1, 10, 11][rng.gen_range(0..4usize)];
    let mut s = String::new();
    if rng.gen_range(0..4u32) == 0 {
        s.push_str("% generated test netlist\n\n");
    }
    if fmt == 0 {
        s.push_str(&format!("{nets} {modules}\n"));
    } else {
        s.push_str(&format!("{nets} {modules} {fmt}\n"));
    }
    let net_weighted = fmt == 1 || fmt == 11;
    let mod_weighted = fmt == 10 || fmt == 11;
    for _ in 0..nets {
        let mut toks: Vec<String> = Vec::new();
        if net_weighted {
            toks.push(rng.gen_range(1..9u32).to_string());
        }
        let len = rng.gen_range(1..6usize);
        for _ in 0..len {
            toks.push((rng.gen_range(0..modules) + 1).to_string());
        }
        s.push_str(&toks.join(" "));
        s.push('\n');
    }
    if mod_weighted {
        for _ in 0..modules {
            s.push_str(&rng.gen_range(1..20u32).to_string());
            s.push('\n');
        }
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Prefix truncation at any byte offset: a cut-off transfer must be a
    /// typed error (or still-valid shorter file), never a panic. The input
    /// is pure ASCII, so every offset is a char boundary.
    #[test]
    fn truncated_files_never_panic(seed in 0u64..100_000, frac in 0usize..=100) {
        let text = random_hgr_text(seed);
        let cut = text.len() * frac / 100;
        let _ = read_hgr(&text.as_bytes()[..cut]);
    }

    /// Single-byte corruption anywhere in the file.
    #[test]
    fn corrupted_files_never_panic(
        seed in 0u64..100_000,
        pos in 0usize..10_000,
        byte in 0u8..128,
    ) {
        let mut bytes = random_hgr_text(seed).into_bytes();
        let idx = pos % bytes.len();
        bytes[idx] = byte;
        let _ = read_hgr(&bytes[..]);
    }

    /// Token injection: splice a hostile token (huge number, negative,
    /// non-numeric, empty line) at an arbitrary line boundary.
    #[test]
    fn injected_tokens_never_panic(
        seed in 0u64..100_000,
        line in 0usize..64,
        which in 0usize..6,
    ) {
        let text = random_hgr_text(seed);
        let token = [
            "18446744073709551616", // > u64::MAX
            "-3",
            "x y z",
            "",
            "0",
            "99999999 99999999 99999999",
        ][which];
        let mut lines: Vec<&str> = text.lines().collect();
        let at = line % (lines.len() + 1);
        lines.insert(at, token);
        let _ = read_hgr(lines.join("\n").as_bytes());
    }

    /// Every valid generated file round-trips through its parsed form.
    #[test]
    fn generated_files_roundtrip(seed in 0u64..100_000) {
        let text = random_hgr_text(seed);
        if let Ok(h) = read_hgr(text.as_bytes()) {
            let mut out = Vec::new();
            write_hgr(&h, &mut out).expect("write to memory");
            let h2 = read_hgr(&out[..]).expect("own output must parse");
            prop_assert_eq!(h, h2);
        }
    }

    /// Partition files: corrupt a valid part file (or feed garbage) and the
    /// reader must return a typed error, never panic.
    #[test]
    fn partition_files_never_panic(
        seed in 0u64..100_000,
        modules in 2usize..20,
        which in 0usize..5,
    ) {
        let mut rng = seeded_rng(seed);
        let h = HypergraphBuilder::with_unit_areas(modules).build().expect("valid");
        let mut text = match which {
            // Valid file with a line chopped off.
            0 => {
                let p = mlpart_hypergraph::Partition::from_assignment(
                    &h,
                    2,
                    (0..modules).map(|i| (i % 2) as u32).collect(),
                ).expect("valid assignment");
                let mut out = Vec::new();
                write_partition(&p, &mut out).expect("write to memory");
                let mut s = String::from_utf8(out).expect("ascii");
                s.truncate(s.len().saturating_sub(rng.gen_range(0..4usize)));
                s
            }
            1 => "not a number\n".repeat(modules),
            2 => format!("{}\n", u64::MAX).repeat(modules),
            3 => String::new(),
            _ => "0\n".repeat(modules + rng.gen_range(1..5usize)),
        };
        if rng.gen_range(0..2u32) == 0 {
            text.push_str("% trailing comment\n");
        }
        let _ = read_partition(&h, text.as_bytes());
    }
}

/// The strict net-size validation introduced for file inputs: a net listing
/// more pins than the netlist has modules is rejected with a typed error
/// instead of being silently deduplicated.
#[test]
fn oversized_net_is_a_typed_error() {
    use mlpart_hypergraph::{BuildHypergraphError, ParseHgrError};
    // 3 modules; the single net lists 5 pins (with duplicates).
    let err = read_hgr("1 3\n1 2 1 2 3\n".as_bytes()).unwrap_err();
    match err {
        ParseHgrError::Build(BuildHypergraphError::NetTooLarge {
            net,
            pins,
            num_modules,
        }) => {
            assert_eq!(net, 0);
            assert_eq!(pins, 5);
            assert_eq!(num_modules, 3);
        }
        other => panic!("expected NetTooLarge, got {other}"),
    }
}
