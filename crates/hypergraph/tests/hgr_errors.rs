//! Error-path coverage for the hMETIS `.hgr` parser: every malformed-input
//! class must surface as the matching typed [`ParseHgrError`] variant, with
//! enough context (line numbers, offending values) to locate the defect.

use mlpart_hypergraph::io::read_hgr;
use mlpart_hypergraph::ParseHgrError;
use std::io::Read;

#[test]
fn truncated_net_section_reports_counts() {
    // Header declares 4 nets; the file ends after 2.
    let err = read_hgr("4 5\n1 2\n2 3\n".as_bytes()).unwrap_err();
    match err {
        ParseHgrError::TooFewNets { expected, found } => {
            assert_eq!(expected, 4);
            assert_eq!(found, 2);
        }
        other => panic!("expected TooFewNets, got {other}"),
    }
}

#[test]
fn truncated_module_weight_section() {
    // fmt=10 requires one weight line per module; only 2 of 3 present.
    let err = read_hgr("1 3 10\n1 2\n7\n8\n".as_bytes()).unwrap_err();
    assert!(matches!(err, ParseHgrError::TooFewNets { .. }), "{err}");
}

#[test]
fn completely_empty_file_is_a_header_error() {
    let err = read_hgr("".as_bytes()).unwrap_err();
    assert!(matches!(err, ParseHgrError::BadHeader { .. }), "{err}");
    // Comments only, no header either.
    let err = read_hgr("% nothing\n% here\n".as_bytes()).unwrap_err();
    assert!(matches!(err, ParseHgrError::BadHeader { .. }), "{err}");
}

#[test]
fn pin_above_module_count_is_localized() {
    let err = read_hgr("2 3\n1 2\n2 9\n".as_bytes()).unwrap_err();
    match err {
        ParseHgrError::PinOutOfRange {
            line_no,
            pin,
            num_modules,
        } => {
            assert_eq!(line_no, 3);
            assert_eq!(pin, 9);
            assert_eq!(num_modules, 3);
        }
        other => panic!("expected PinOutOfRange, got {other}"),
    }
}

#[test]
fn pin_zero_is_rejected_in_one_based_format() {
    let err = read_hgr("1 3\n0 2\n".as_bytes()).unwrap_err();
    assert!(
        matches!(err, ParseHgrError::PinOutOfRange { pin: 0, .. }),
        "{err}"
    );
}

#[test]
fn zero_pin_net_line_is_typed() {
    // fmt=1: the only token on the net line is its weight — no pins.
    let err = read_hgr("2 3 1\n5\n9 2 3\n".as_bytes()).unwrap_err();
    match err {
        ParseHgrError::EmptyNet { line_no } => assert_eq!(line_no, 2),
        other => panic!("expected EmptyNet, got {other}"),
    }
}

#[test]
fn single_pin_nets_are_dropped_not_errors() {
    // A 1-pin net is legal input (the builder drops it, per the paper's
    // net definition), unlike a 0-pin line which is malformed.
    let h = read_hgr("2 3\n2\n1 3\n".as_bytes()).unwrap();
    assert_eq!(h.num_nets(), 1);
}

#[test]
fn non_numeric_tokens_are_localized() {
    let err = read_hgr("1 2\n1 x\n".as_bytes()).unwrap_err();
    match err {
        ParseHgrError::BadToken { line_no, token } => {
            assert_eq!(line_no, 2);
            assert_eq!(token, "x");
        }
        other => panic!("expected BadToken, got {other}"),
    }
}

#[test]
fn unsupported_format_code_is_typed() {
    let err = read_hgr("1 2 2\n1 2\n".as_bytes()).unwrap_err();
    assert!(
        matches!(err, ParseHgrError::UnsupportedFormat { fmt: 2 }),
        "{err}"
    );
}

/// A reader that fails mid-stream, as a genuinely truncated transfer would.
struct FailingReader {
    served: bool,
}

impl Read for FailingReader {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.served {
            Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "stream cut off",
            ))
        } else {
            self.served = true;
            let head = b"3 4\n1 2\n";
            buf[..head.len()].copy_from_slice(head);
            Ok(head.len())
        }
    }
}

#[test]
fn io_failures_surface_as_io_variant() {
    let err = read_hgr(FailingReader { served: false }).unwrap_err();
    match err {
        ParseHgrError::Io(e) => assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof),
        other => panic!("expected Io, got {other}"),
    }
    // And the error chain exposes the source.
    let err = read_hgr(FailingReader { served: false }).unwrap_err();
    assert!(std::error::Error::source(&err).is_some());
}

#[test]
fn error_displays_carry_location() {
    let e = ParseHgrError::EmptyNet { line_no: 7 };
    assert_eq!(e.to_string(), "line 7: net has no pins");
}
